// epicast — heartbeat-based failure detection for the live cluster.
//
// The simulator knows who is alive; a real cluster has to find out. Each
// daemon periodically sends a HeartbeatMessage (Control channel — exempt
// from synthetic ε and Gilbert–Elliott loss, but *not* from blackholes: a
// dead link carries nothing) to every current overlay neighbour, and treats
// any received frame from a peer as proof of life. Silence accumulates in
// missed-interval strikes:
//
//     suspect_after_missed  → suspected:  the recovery protocol's
//                             peer-health table is primed so gossip-round
//                             target selection steers around the peer;
//     dead_after_missed     → confirmed dead: the daemon's route-repair
//                             callback runs (link break + deterministic
//                             detour links via the Reconfigurator path).
//
// Heartbeats carry the sender's incarnation (journal boot count). An
// incarnation jump is a restart observation: the peer died and came back —
// the returned-callback re-attaches its links and re-advertises routes.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "epicast/pubsub/dispatcher.hpp"
#include "epicast/pubsub/messages.hpp"
#include "epicast/runtime/async_runtime.hpp"

namespace epicast::daemon {

struct FailureDetectorConfig {
  Duration interval = Duration::millis(250);
  std::uint32_t suspect_after_missed = 3;
  std::uint32_t dead_after_missed = 8;
  /// This node's boot count, carried in every heartbeat.
  std::uint64_t incarnation = 1;
  /// Stream watermarks piggybacked per heartbeat (anti-entropy): each beat
  /// carries the next `marks_per_beat` entries of the recovery protocol's
  /// witnessed-watermark table, rotating through it. 0 disables the
  /// piggyback (pure liveness beacons).
  std::size_t marks_per_beat = 64;
};

class FailureDetector {
 public:
  using PeerCallback = std::function<void(NodeId)>;

  FailureDetector(Dispatcher& dispatcher, runtime::AsyncRuntime& rt,
                  FailureDetectorConfig config);

  /// Fired once per peer on suspicion onset / death confirmation / return
  /// (first liveness signal after suspicion or death, or an incarnation
  /// jump). All run inside the event loop.
  void set_on_peer_suspected(PeerCallback cb) { on_suspected_ = std::move(cb); }
  void set_on_peer_dead(PeerCallback cb) { on_dead_ = std::move(cb); }
  void set_on_peer_returned(PeerCallback cb) { on_returned_ = std::move(cb); }

  /// Starts the heartbeat/check timer; every current neighbour gets a
  /// fresh liveness deadline (no instant suspicion at boot).
  void start();
  void stop();

  /// Any frame from `from` proves the process behind it is alive — wired
  /// to the runtime's frame observer so data traffic suppresses false
  /// suspicion even when heartbeats are lost to blackholes one way.
  void note_traffic(NodeId from);

  /// HeartbeatMessage arrived (the dispatcher's heartbeat listener).
  void on_heartbeat(NodeId from, const HeartbeatMessage& hb);

  [[nodiscard]] bool suspected(NodeId peer) const;
  [[nodiscard]] bool confirmed_dead(NodeId peer) const;
  [[nodiscard]] const FailureDetectorConfig& config() const { return cfg_; }

 private:
  struct PeerState {
    SimTime last_heard;
    std::uint64_t incarnation = 0;  ///< 0 = no heartbeat seen yet
    bool suspected = false;
    bool dead = false;
  };

  void tick();
  void mark_alive(NodeId from);

  Dispatcher& d_;
  runtime::AsyncRuntime& rt_;
  FailureDetectorConfig cfg_;
  PeerCallback on_suspected_;
  PeerCallback on_dead_;
  PeerCallback on_returned_;
  std::unordered_map<std::uint32_t, PeerState> peers_;
  runtime::PeriodicTimer timer_;
  /// Rotation position in the recovery protocol's watermark table.
  std::size_t mark_cursor_ = 0;
  std::vector<StreamMark> marks_scratch_;
};

}  // namespace epicast::daemon
