// epicast — epicastd's crash-durable append-only journal.
//
// One journal file per node. Every record is one text line written with a
// single O_APPEND write(2), so a SIGKILL can lose at most the record being
// written — never corrupt earlier ones — and the page cache makes the
// common case free. On boot the daemon replays the file to learn:
//
//   * how many times this node has booted (the heartbeat incarnation);
//   * every event id it published or delivered in earlier incarnations
//     (restores the dispatcher's duplicate-suppression set, keeping the
//     unique-delivery oracle true across restarts);
//   * its publish counters (so new events continue the id sequence);
//   * its full publish/delivery logs (so the final stats dump is cumulative
//     over all incarnations — the harness sees one node, not N lifetimes).
//
// Record grammar (space-separated, '#' illegal — this is not a config):
//
//   B <incarnation> <warm|cold>          one per boot
//   P <seq> <t_s> <p1,p2,...>            own publish
//   D <src> <seq> <t_s> <0|1>            delivery (1 = via recovery)
//
// A warm-restart cache snapshot rides alongside as `<journal>.cache`:
// concatenated wire-codec Event frames, rewritten atomically (tmp+rename)
// by a periodic timer, decoded best-effort on boot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "epicast/fault/restart_policy.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast::daemon {

class Journal {
 public:
  struct PublishEntry {
    std::uint64_t seq = 0;  ///< EventId::source_seq
    double t_s = 0.0;
    std::vector<std::uint32_t> patterns;
  };
  struct DeliveryEntry {
    std::uint32_t source = 0;
    std::uint64_t seq = 0;
    double t_s = 0.0;
    bool recovered = false;
  };
  struct Replay {
    std::uint64_t boots = 0;  ///< B records seen (0 = fresh journal)
    std::vector<PublishEntry> publishes;
    std::vector<DeliveryEntry> deliveries;
  };

  /// Opens (creating if missing) and replays `path`. Unparseable lines —
  /// at most the torn tail of a crashed write — are skipped, not fatal.
  /// Throws std::runtime_error when the file cannot be opened.
  explicit Journal(std::string path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  [[nodiscard]] const Replay& replay() const { return replay_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  void log_boot(std::uint64_t incarnation, fault::RestartPolicy policy);
  void log_publish(const PublishEntry& e);
  void log_delivery(const DeliveryEntry& e);

 private:
  void append(const std::string& line);

  std::string path_;
  int fd_ = -1;
  Replay replay_;
};

/// Atomically replaces `path` with `events` as concatenated codec Event
/// frames. Failures are swallowed: the snapshot is an optimization, losing
/// one rewrite only costs warm-restart cache freshness.
void write_cache_snapshot(const std::string& path,
                          const std::vector<EventPtr>& events);

/// Decodes a snapshot written by write_cache_snapshot. Missing or corrupt
/// files yield what was decodable (possibly nothing) — best-effort by
/// design.
[[nodiscard]] std::vector<EventPtr> read_cache_snapshot(
    const std::string& path);

}  // namespace epicast::daemon
