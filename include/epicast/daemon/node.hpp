// epicast — epicastd's core: one dispatching server on real UDP sockets.
//
// A NodeDaemon is the runtime-seam counterpart of one PubSubNetwork slot:
// it owns an AsyncRuntime, attaches a single Dispatcher to it, installs the
// converged subscription routes for the whole (static) cluster, starts the
// configured recovery protocol, generates this node's share of the
// workload, and records every publish and delivery for offline aggregation
// by the cluster harness.
//
// Routes are bootstrapped the way PubSubNetwork::rebuild_routes() does it
// in simulation (oracle bootstrap): each daemon computes the cluster-wide
// BFS routing oracle from the shared config file and installs its own rows
// — no subscription flooding phase, and all daemons agree by construction.
#pragma once

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "epicast/daemon/failure_detector.hpp"
#include "epicast/daemon/journal.hpp"
#include "epicast/fault/restart_policy.hpp"
#include "epicast/metrics/latency_histogram.hpp"
#include "epicast/oracle/checks.hpp"
#include "epicast/oracle/oracle.hpp"
#include "epicast/pubsub/dispatcher.hpp"
#include "epicast/pubsub/pattern.hpp"
#include "epicast/runtime/async_runtime.hpp"
#include "epicast/runtime/cluster.hpp"

namespace epicast::daemon {

/// Per-process knobs that are not cluster-wide state (and thus not in the
/// shared ClusterConfig): where this node journals, and how it remembers a
/// previous life.
struct DaemonOptions {
  /// Append-only journal path; empty disables journaling (and with it
  /// crash-restart recovery — a relaunch then starts from scratch).
  std::string journal_path;
  /// State-loss policy applied when the journal shows earlier boots.
  fault::RestartPolicy restart_policy = fault::RestartPolicy::Warm;
  /// Under Warm, periodically snapshot the retransmission buffer to
  /// `<journal>.cache` and preload it on restart.
  bool cache_snapshot = false;
};

class NodeDaemon {
 public:
  /// Validates `cluster`, builds the runtime (this is where a non-Wire
  /// sizing mode becomes a hard std::invalid_argument), binds the node's
  /// socket, installs routes, and wires recovery + oracles. The daemon is
  /// ready to run() afterwards. When `opts` names a journal with earlier
  /// boots in it, the constructor replays it: duplicate-suppression and
  /// publish counters are restored, the recovery protocol is told
  /// on_restart(policy), and publish/delivery logs continue cumulatively.
  NodeDaemon(runtime::ClusterConfig cluster, NodeId self,
             DaemonOptions opts = {});

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  /// Executes the full lifecycle: settle, publish window, drain. Returns
  /// when the drain ends or when `stop_flag` (a signal handler's
  /// sig_atomic_t) becomes non-zero.
  void run(const volatile std::sig_atomic_t* stop_flag = nullptr);

  /// Per-node stats document: publishes, deliveries, subscription set,
  /// transport and gossip counters, plus an embedded
  /// epicast::metrics::result_json of the locally known ScenarioResult
  /// fields (the same serializer epicast_sim --json uses).
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] runtime::AsyncRuntime& runtime() { return *rt_; }
  [[nodiscard]] Dispatcher& dispatcher() { return *dispatcher_; }
  [[nodiscard]] const runtime::ClusterConfig& cluster() const {
    return cluster_;
  }
  [[nodiscard]] const oracle::OracleSuite* oracles() const {
    return oracles_.get();
  }
  /// nullptr when heartbeat-interval-ms is 0.
  [[nodiscard]] FailureDetector* failure_detector() {
    return failure_detector_.get();
  }
  /// This process lifetime's 1-based boot count (journal B records + 1).
  [[nodiscard]] std::uint64_t incarnation() const { return incarnation_; }
  /// True when the journal showed earlier boots (this run is a restart).
  [[nodiscard]] bool restarted() const { return restarted_; }
  [[nodiscard]] const metrics::LatencyHistogram& latency() const {
    return latency_;
  }

  struct PublishRecord {
    std::uint64_t seq;  ///< EventId::source_seq
    double t_s;
    std::vector<std::uint32_t> patterns;
  };
  struct DeliveryRecord {
    std::uint32_t source;
    std::uint64_t seq;
    double t_s;
    bool recovered;
  };
  [[nodiscard]] const std::vector<PublishRecord>& published() const {
    return published_;
  }
  [[nodiscard]] const std::vector<DeliveryRecord>& delivered() const {
    return delivered_;
  }

 private:
  void install_routes();
  void schedule_next_publish();
  void publish_one();
  [[nodiscard]] bool is_publisher() const;
  void replay_journal();
  void repair_routes_around(NodeId dead);
  void restore_links_of(NodeId returned);
  void write_snapshot();

  runtime::ClusterConfig cluster_;
  NodeId self_;
  DaemonOptions opts_;
  std::unique_ptr<runtime::AsyncRuntime> rt_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<oracle::OracleSuite> oracles_;
  oracle::WireRoundTripOracle* wire_oracle_ = nullptr;  // owned by oracles_
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<FailureDetector> failure_detector_;

  PatternUniverse universe_;
  Rng pub_rng_;
  SimTime publish_start_;
  SimTime publish_end_;
  SimTime drain_end_;
  runtime::TimerHandle publish_timer_;
  runtime::PeriodicTimer snapshot_timer_;

  std::uint64_t incarnation_ = 1;
  bool restarted_ = false;
  metrics::LatencyHistogram latency_;

  std::vector<PublishRecord> published_;
  std::vector<DeliveryRecord> delivered_;
};

}  // namespace epicast::daemon
