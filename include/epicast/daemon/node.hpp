// epicast — epicastd's core: one dispatching server on real UDP sockets.
//
// A NodeDaemon is the runtime-seam counterpart of one PubSubNetwork slot:
// it owns an AsyncRuntime, attaches a single Dispatcher to it, installs the
// converged subscription routes for the whole (static) cluster, starts the
// configured recovery protocol, generates this node's share of the
// workload, and records every publish and delivery for offline aggregation
// by the cluster harness.
//
// Routes are bootstrapped the way PubSubNetwork::rebuild_routes() does it
// in simulation (oracle bootstrap): each daemon computes the cluster-wide
// BFS routing oracle from the shared config file and installs its own rows
// — no subscription flooding phase, and all daemons agree by construction.
#pragma once

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "epicast/oracle/checks.hpp"
#include "epicast/oracle/oracle.hpp"
#include "epicast/pubsub/dispatcher.hpp"
#include "epicast/pubsub/pattern.hpp"
#include "epicast/runtime/async_runtime.hpp"
#include "epicast/runtime/cluster.hpp"

namespace epicast::daemon {

class NodeDaemon {
 public:
  /// Validates `cluster`, builds the runtime (this is where a non-Wire
  /// sizing mode becomes a hard std::invalid_argument), binds the node's
  /// socket, installs routes, and wires recovery + oracles. The daemon is
  /// ready to run() afterwards.
  NodeDaemon(runtime::ClusterConfig cluster, NodeId self);

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  /// Executes the full lifecycle: settle, publish window, drain. Returns
  /// when the drain ends or when `stop_flag` (a signal handler's
  /// sig_atomic_t) becomes non-zero.
  void run(const volatile std::sig_atomic_t* stop_flag = nullptr);

  /// Per-node stats document: publishes, deliveries, subscription set,
  /// transport and gossip counters, plus an embedded
  /// epicast::metrics::result_json of the locally known ScenarioResult
  /// fields (the same serializer epicast_sim --json uses).
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] runtime::AsyncRuntime& runtime() { return *rt_; }
  [[nodiscard]] Dispatcher& dispatcher() { return *dispatcher_; }
  [[nodiscard]] const runtime::ClusterConfig& cluster() const {
    return cluster_;
  }
  [[nodiscard]] const oracle::OracleSuite* oracles() const {
    return oracles_.get();
  }

  struct PublishRecord {
    std::uint64_t seq;  ///< EventId::source_seq
    double t_s;
    std::vector<std::uint32_t> patterns;
  };
  struct DeliveryRecord {
    std::uint32_t source;
    std::uint64_t seq;
    double t_s;
    bool recovered;
  };
  [[nodiscard]] const std::vector<PublishRecord>& published() const {
    return published_;
  }
  [[nodiscard]] const std::vector<DeliveryRecord>& delivered() const {
    return delivered_;
  }

 private:
  void install_routes();
  void schedule_next_publish();
  void publish_one();
  [[nodiscard]] bool is_publisher() const;

  runtime::ClusterConfig cluster_;
  NodeId self_;
  std::unique_ptr<runtime::AsyncRuntime> rt_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<oracle::OracleSuite> oracles_;
  oracle::WireRoundTripOracle* wire_oracle_ = nullptr;  // owned by oracles_

  PatternUniverse universe_;
  Rng pub_rng_;
  SimTime publish_start_;
  SimTime publish_end_;
  SimTime drain_end_;
  runtime::TimerHandle publish_timer_;

  std::vector<PublishRecord> published_;
  std::vector<DeliveryRecord> delivered_;
};

}  // namespace epicast::daemon
