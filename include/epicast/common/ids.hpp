// epicast — strongly-typed identifiers.
//
// Raw integers for node ids, patterns, and sequence numbers invite silent
// transposition bugs (Core Guidelines I.4: make interfaces precisely and
// strongly typed). Each id is a distinct value type with explicit
// construction and an `value()` accessor; arithmetic is only provided where
// it is meaningful (sequence numbers).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace epicast {

/// Identifies one dispatcher (a dispatching server) in the overlay network.
/// Dense, 0-based: valid ids are [0, N) for an N-node network.
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalid; }

  friend constexpr auto operator<=>(NodeId, NodeId) = default;

  /// Sentinel for "no node" (e.g., the origin of a locally published event).
  static constexpr NodeId invalid() { return NodeId{kInvalid}; }

 private:
  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();
  std::uint32_t v_ = kInvalid;
};

/// A content pattern. The paper models an event pattern as a single number
/// drawn from the universe [0, Π); an event matches a subscription iff the
/// event's number sequence contains the subscribed number.
class Pattern {
 public:
  constexpr Pattern() = default;
  constexpr explicit Pattern(std::uint32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }

  friend constexpr auto operator<=>(Pattern, Pattern) = default;

 private:
  std::uint32_t v_ = 0;
};

/// Per-(source, pattern) sequence number, incremented at the source each
/// time an event matching that pattern is published (paper §III-B, Pull).
class SeqNo {
 public:
  constexpr SeqNo() = default;
  constexpr explicit SeqNo(std::uint64_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  [[nodiscard]] constexpr SeqNo next() const { return SeqNo{v_ + 1}; }

  friend constexpr auto operator<=>(SeqNo, SeqNo) = default;

 private:
  std::uint64_t v_ = 0;
};

/// Globally unique event identifier: the pair (source, per-source counter)
/// — exactly the scheme of paper footnote 3.
struct EventId {
  NodeId source;
  std::uint64_t source_seq = 0;

  friend constexpr auto operator<=>(const EventId&, const EventId&) = default;
};

}  // namespace epicast

template <>
struct std::hash<epicast::NodeId> {
  std::size_t operator()(epicast::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct std::hash<epicast::Pattern> {
  std::size_t operator()(epicast::Pattern p) const noexcept {
    return std::hash<std::uint32_t>{}(p.value());
  }
};

template <>
struct std::hash<epicast::EventId> {
  std::size_t operator()(const epicast::EventId& id) const noexcept {
    // Splitmix-style combine; source ids are dense so the shift spreads them.
    std::uint64_t x =
        (static_cast<std::uint64_t>(id.source.value()) << 40) ^ id.source_seq;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};
