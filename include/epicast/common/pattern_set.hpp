// epicast — width-dynamic bitset over the pattern universe.
//
// The paper's universe is Π ≤ 70 patterns, so a pattern set fits in the two
// inline 64-bit words and never touches the allocator — that layout (and
// the ascending-bit iteration order) is bit-identical to the fixed two-word
// bitset it replaced, which is what keeps the seed-guarded figure scenarios
// stable. Larger universes (Zipf-skewed 1k–10k patterns from CLI-configured
// scenarios) widen the word array on demand — from an Arena when the set
// was constructed with one (per-scenario node state), else from the heap —
// instead of falling back to sorted side maps.
//
// Invariants:
//   * width only grows, and only via set() / reserve() / |= — test() on a
//     pattern beyond the current width is simply false, so width is an
//     implementation detail: two sets are equal iff their members are,
//     regardless of width;
//   * iteration and nth() enumerate set bits in ascending pattern order,
//     which equals the sorted order of the vectors they replaced — this is
//     what keeps RNG-driven sampling (`patterns[rng.next_below(n)]`)
//     bit-identical across layout migrations.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "epicast/common/arena.hpp"
#include "epicast/common/assert.hpp"
#include "epicast/common/ids.hpp"

namespace epicast {

class PatternSet {
 public:
  /// Patterns below this live in the inline words — no allocation ever.
  static constexpr std::uint32_t kInlineCapacity = 128;

  constexpr PatternSet() = default;

  /// Pre-sized for patterns in [0, universe). Widths beyond the inline
  /// words come from `arena` when given (per-scenario state), else the
  /// heap. The set auto-grows past `universe` if asked to.
  explicit PatternSet(std::uint32_t universe, Arena* arena = nullptr)
      : arena_(arena) {
    reserve(universe);
  }

  PatternSet(const PatternSet& o) { assign(o); }
  PatternSet& operator=(const PatternSet& o) {
    if (this != &o) assign(o);
    return *this;
  }
  PatternSet(PatternSet&& o) noexcept { steal(o); }
  PatternSet& operator=(PatternSet&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  ~PatternSet() { release(); }

  /// Number of pattern values the current width can hold. Grows on demand;
  /// mostly interesting for memory accounting and tests.
  [[nodiscard]] std::uint32_t capacity() const { return nwords_ * 64; }

  /// Bytes owned outside the object itself (0 while inline).
  [[nodiscard]] std::size_t memory_bytes() const {
    return words_ == inline_ ? 0 : nwords_ * sizeof(std::uint64_t);
  }

  /// Widens the set so patterns in [0, universe) need no further growth.
  void reserve(std::uint32_t universe) {
    const std::uint32_t need = words_for(universe);
    if (need > nwords_) grow(need);
  }

  /// Sets the bit for `p`, widening if needed. Returns true if newly set.
  bool set(Pattern p) {
    const std::uint32_t v = p.value();
    if (v >= capacity()) grow_for(v);
    std::uint64_t& w = words_[v >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (v & 63);
    const bool added = (w & bit) == 0;
    w |= bit;
    return added;
  }

  /// Clears the bit for `p`. Returns true if it was set.
  bool clear(Pattern p) {
    const std::uint32_t v = p.value();
    if (v >= capacity()) return false;
    std::uint64_t& w = words_[v >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (v & 63);
    const bool removed = (w & bit) != 0;
    w &= ~bit;
    return removed;
  }

  /// Membership test; false beyond the current width (such patterns were
  /// never set), so width never changes observable behavior.
  [[nodiscard]] bool test(Pattern p) const {
    const std::uint32_t v = p.value();
    if (v >= capacity()) return false;
    return (words_[v >> 6] >> (v & 63)) & 1;
  }

  [[nodiscard]] bool any() const {
    if (nwords_ == kInlineWords) return (words_[0] | words_[1]) != 0;
    for (std::uint32_t i = 0; i < nwords_; ++i) {
      if (words_[i] != 0) return true;
    }
    return false;
  }
  [[nodiscard]] bool none() const { return !any(); }

  [[nodiscard]] std::size_t count() const {
    if (nwords_ == kInlineWords) {
      return static_cast<std::size_t>(std::popcount(words_[0]) +
                                      std::popcount(words_[1]));
    }
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < nwords_; ++i) n += std::popcount(words_[i]);
    return n;
  }

  /// True if the two sets share at least one pattern.
  [[nodiscard]] bool intersects(const PatternSet& o) const {
    if (nwords_ == kInlineWords && o.nwords_ == kInlineWords) {
      return ((words_[0] & o.words_[0]) | (words_[1] & o.words_[1])) != 0;
    }
    const std::uint32_t common = nwords_ < o.nwords_ ? nwords_ : o.nwords_;
    for (std::uint32_t i = 0; i < common; ++i) {
      if ((words_[i] & o.words_[i]) != 0) return true;
    }
    return false;
  }

  PatternSet& operator|=(const PatternSet& o) {
    if (o.nwords_ > nwords_ && o.top_set_word() >= nwords_) {
      grow(o.nwords_);
    }
    const std::uint32_t common = nwords_ < o.nwords_ ? nwords_ : o.nwords_;
    for (std::uint32_t i = 0; i < common; ++i) words_[i] |= o.words_[i];
    return *this;
  }
  PatternSet& operator&=(const PatternSet& o) {
    const std::uint32_t common = nwords_ < o.nwords_ ? nwords_ : o.nwords_;
    for (std::uint32_t i = 0; i < common; ++i) words_[i] &= o.words_[i];
    for (std::uint32_t i = common; i < nwords_; ++i) words_[i] = 0;
    return *this;
  }
  friend PatternSet operator|(PatternSet a, const PatternSet& b) {
    return a |= b;
  }
  friend PatternSet operator&(PatternSet a, const PatternSet& b) {
    return a &= b;
  }

  /// Width-insensitive: equal iff the same members are set.
  friend bool operator==(const PatternSet& a, const PatternSet& b) {
    const std::uint32_t common = a.nwords_ < b.nwords_ ? a.nwords_ : b.nwords_;
    for (std::uint32_t i = 0; i < common; ++i) {
      if (a.words_[i] != b.words_[i]) return false;
    }
    const PatternSet& wide = a.nwords_ < b.nwords_ ? b : a;
    for (std::uint32_t i = common; i < wide.nwords_; ++i) {
      if (wide.words_[i] != 0) return false;
    }
    return true;
  }

  /// Calls `f(Pattern)` for every member, in ascending pattern order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::uint32_t word = 0; word < nwords_; ++word) {
      std::uint64_t w = words_[word];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        f(Pattern{word * 64 + static_cast<std::uint32_t>(bit)});
        w &= w - 1;  // clear lowest set bit
      }
    }
  }

  /// The k-th member in ascending order. Precondition: k < count().
  [[nodiscard]] Pattern nth(std::size_t k) const {
    for (std::uint32_t word = 0; word < nwords_; ++word) {
      std::uint64_t w = words_[word];
      const auto pop = static_cast<std::size_t>(std::popcount(w));
      if (k >= pop) {
        k -= pop;
        continue;
      }
      // Pattern counts per word are tiny, so a clear-lowest-bit loop beats
      // fancier selects in practice and stays portable.
      while (k-- > 0) w &= w - 1;
      return Pattern{word * 64 + static_cast<std::uint32_t>(std::countr_zero(w))};
    }
    EPICAST_ASSERT(false && "nth(k) with k >= count()");
    return Pattern{0};
  }

 private:
  static constexpr std::uint32_t kInlineWords = 2;

  [[nodiscard]] static constexpr std::uint32_t words_for(std::uint32_t universe) {
    const std::uint32_t w = (universe + 63) / 64;
    return w < kInlineWords ? kInlineWords : w;
  }

  /// Index just past the highest non-zero word (0 if empty).
  [[nodiscard]] std::uint32_t top_set_word() const {
    for (std::uint32_t i = nwords_; i > 0; --i) {
      if (words_[i - 1] != 0) return i - 1;
    }
    return 0;
  }

  void grow_for(std::uint32_t pattern_value) {
    std::uint32_t need = words_for(pattern_value + 1);
    // Geometric growth so repeated set() of ascending patterns stays O(n).
    if (need < nwords_ * 2) need = nwords_ * 2;
    grow(need);
  }

  void grow(std::uint32_t new_words) {
    EPICAST_ASSERT(new_words > nwords_);
    auto* w = arena_ != nullptr
                  ? arena_->allocate_array<std::uint64_t>(new_words)
                  : new std::uint64_t[new_words]{};
    for (std::uint32_t i = 0; i < nwords_; ++i) w[i] = words_[i];
    release();
    words_ = w;
    nwords_ = new_words;
  }

  void assign(const PatternSet& o) {
    // Copies keep the destination's own arena policy — a default-constructed
    // destination grows via the heap even when the source is arena-backed.
    if (o.nwords_ > nwords_) grow(o.nwords_);
    for (std::uint32_t i = 0; i < o.nwords_; ++i) words_[i] = o.words_[i];
    for (std::uint32_t i = o.nwords_; i < nwords_; ++i) words_[i] = 0;
  }

  void steal(PatternSet& o) {
    if (o.words_ == o.inline_) {
      words_ = inline_;
      inline_[0] = o.inline_[0];
      inline_[1] = o.inline_[1];
      nwords_ = kInlineWords;
    } else {
      words_ = o.words_;
      nwords_ = o.nwords_;
    }
    arena_ = o.arena_;
    o.words_ = o.inline_;
    o.nwords_ = kInlineWords;
    o.inline_[0] = 0;
    o.inline_[1] = 0;
  }

  void release() {
    // Arena blocks are abandoned (reclaimed at scenario teardown).
    if (words_ != inline_ && arena_ == nullptr) delete[] words_;
  }

  std::uint64_t inline_[kInlineWords] = {0, 0};
  std::uint64_t* words_ = inline_;
  std::uint32_t nwords_ = kInlineWords;
  Arena* arena_ = nullptr;
};

}  // namespace epicast
