// epicast — fixed-width bitset over the pattern universe.
//
// The paper's universe is Π ≤ 70 patterns, so a pattern set fits in two
// 64-bit words. The hot paths that used to rebuild sorted
// std::vector<Pattern> per event or per gossip round (matching, sampling
// populations) operate on these masks instead: membership is a bit test,
// intersection is two ANDs, and "the k-th pattern" is a select on set bits.
//
// Invariants:
//   * only patterns with value() < kCapacity are representable — callers
//     that admit larger universes must keep an overflow side structure
//     (SubscriptionTable and LostBuffer do);
//   * iteration and nth() enumerate set bits in ascending pattern order,
//     which equals the sorted order of the vectors they replace — this is
//     what keeps RNG-driven sampling (`patterns[rng.next_below(n)]`)
//     bit-identical after the migration.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "epicast/common/assert.hpp"
#include "epicast/common/ids.hpp"

namespace epicast {

class PatternSet {
 public:
  /// Largest representable pattern value + 1 (two 64-bit words).
  static constexpr std::uint32_t kCapacity = 128;

  constexpr PatternSet() = default;

  /// True if `p` can be held in the bitset at all.
  [[nodiscard]] static constexpr bool representable(Pattern p) {
    return p.value() < kCapacity;
  }

  /// Sets the bit for `p`. Returns true if it was newly set.
  /// Precondition: representable(p).
  constexpr bool set(Pattern p) {
    EPICAST_ASSERT(representable(p));
    std::uint64_t& w = w_[p.value() >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (p.value() & 63);
    const bool added = (w & bit) == 0;
    w |= bit;
    return added;
  }

  /// Clears the bit for `p`. Returns true if it was set.
  /// Precondition: representable(p).
  constexpr bool clear(Pattern p) {
    EPICAST_ASSERT(representable(p));
    std::uint64_t& w = w_[p.value() >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (p.value() & 63);
    const bool removed = (w & bit) != 0;
    w &= ~bit;
    return removed;
  }

  /// Membership test; false for non-representable patterns (they are never
  /// stored here), so a mask can safely pre-filter an overflow lookup.
  [[nodiscard]] constexpr bool test(Pattern p) const {
    if (!representable(p)) return false;
    return (w_[p.value() >> 6] >> (p.value() & 63)) & 1;
  }

  [[nodiscard]] constexpr bool any() const { return (w_[0] | w_[1]) != 0; }
  [[nodiscard]] constexpr bool none() const { return !any(); }

  [[nodiscard]] constexpr std::size_t count() const {
    return static_cast<std::size_t>(std::popcount(w_[0]) +
                                    std::popcount(w_[1]));
  }

  /// True if the two sets share at least one pattern.
  [[nodiscard]] constexpr bool intersects(const PatternSet& o) const {
    return ((w_[0] & o.w_[0]) | (w_[1] & o.w_[1])) != 0;
  }

  constexpr PatternSet& operator|=(const PatternSet& o) {
    w_[0] |= o.w_[0];
    w_[1] |= o.w_[1];
    return *this;
  }
  constexpr PatternSet& operator&=(const PatternSet& o) {
    w_[0] &= o.w_[0];
    w_[1] &= o.w_[1];
    return *this;
  }
  friend constexpr PatternSet operator|(PatternSet a, const PatternSet& b) {
    return a |= b;
  }
  friend constexpr PatternSet operator&(PatternSet a, const PatternSet& b) {
    return a &= b;
  }

  friend constexpr bool operator==(const PatternSet&,
                                   const PatternSet&) = default;

  /// Calls `f(Pattern)` for every member, in ascending pattern order.
  template <typename F>
  constexpr void for_each(F&& f) const {
    for (int word = 0; word < 2; ++word) {
      std::uint64_t w = w_[word];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        f(Pattern{static_cast<std::uint32_t>(word * 64 + bit)});
        w &= w - 1;  // clear lowest set bit
      }
    }
  }

  /// The k-th member in ascending order. Precondition: k < count().
  [[nodiscard]] constexpr Pattern nth(std::size_t k) const {
    std::uint64_t w = w_[0];
    std::uint32_t base = 0;
    const auto pop0 = static_cast<std::size_t>(std::popcount(w));
    if (k >= pop0) {
      k -= pop0;
      w = w_[1];
      base = 64;
    }
    EPICAST_ASSERT(k < static_cast<std::size_t>(std::popcount(w)));
    // Pattern counts are tiny (Π ≤ 70), so a clear-lowest-bit loop beats
    // fancier selects in practice and stays portable.
    while (k-- > 0) w &= w - 1;
    return Pattern{base + static_cast<std::uint32_t>(std::countr_zero(w))};
  }

 private:
  std::uint64_t w_[2] = {0, 0};
};

}  // namespace epicast
