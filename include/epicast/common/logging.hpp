// epicast — minimal leveled logging.
//
// Simulation runs are large (millions of events); logging therefore defaults
// to Warn and formats lazily. Intended for debugging scenarios and examples,
// not for metric output (see epicast/metrics).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace epicast {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

namespace log {

/// Returns the current global threshold (default Warn).
LogLevel level();

/// Sets the global threshold. Not thread-safe by design: the simulator is
/// single-threaded and tests set the level up front.
void set_level(LogLevel level);

/// True if a message at `level` would be emitted.
bool enabled(LogLevel level);

/// Emits one line to stderr: "[level] message".
void write(LogLevel level, std::string_view message);

}  // namespace log

/// Stream-style log statement; the stream body is not evaluated when the
/// level is disabled.
#define EPICAST_LOG(lvl, body)                                   \
  do {                                                           \
    if (::epicast::log::enabled(lvl)) {                          \
      std::ostringstream epicast_log_os;                         \
      epicast_log_os << body;                                    \
      ::epicast::log::write(lvl, epicast_log_os.str());          \
    }                                                            \
  } while (false)

#define EPICAST_DEBUG(body) EPICAST_LOG(::epicast::LogLevel::Debug, body)
#define EPICAST_INFO(body) EPICAST_LOG(::epicast::LogLevel::Info, body)
#define EPICAST_WARN(body) EPICAST_LOG(::epicast::LogLevel::Warn, body)

}  // namespace epicast
