// epicast — deterministic random-number streams.
//
// Every stochastic decision in the simulator (tree generation, link loss,
// gossip fan-out, workload) draws from an explicitly seeded stream so that a
// scenario is bit-reproducible from its seed. No global random state
// (Core Guidelines: avoid non-const global variables).
//
// The generator is xoshiro256**, which is small, fast, and has no observable
// correlation between streams derived via `fork`.
#pragma once

#include <cstdint>
#include <limits>

namespace epicast {

/// A single deterministic pseudo-random stream.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream. Two Rng constructed with the same seed produce the
  /// same sequence; different seeds produce statistically independent ones.
  explicit Rng(std::uint64_t seed);

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Derives an independent child stream; deterministic in (parent seed,
  /// sequence of fork calls). Used to give each component its own stream so
  /// adding draws in one component does not perturb another.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace epicast
