// epicast — chunked bump allocator for per-scenario node state.
//
// Large scenarios (N ≥ 10⁴) allocate many small, never-individually-freed
// blocks: multi-word pattern masks, seen-set word tables, CSR scratch. A
// general-purpose heap charges per-allocation headers and scatters them
// across the address space; the arena packs them into few large chunks with
// stable addresses (chunks never move or shrink), and its byte counters
// feed the per-component memory accounting in ScenarioResult::memory.
//
// There is no per-block free: memory is reclaimed when the arena dies with
// its owning component at scenario teardown. Components whose blocks grow
// (a pattern mask widening) simply allocate the bigger block and abandon
// the old one — growth is geometric, so the waste is bounded by ~2×.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace epicast {

class Arena {
 public:
  /// `chunk_bytes` is the default chunk size; nothing is allocated until
  /// the first request, so an unused arena costs only this object.
  explicit Arena(std::size_t chunk_bytes = 4096)
      : chunk_bytes_(chunk_bytes == 0 ? 4096 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A maximally-aligned block of `bytes`. Blocks larger than the chunk
  /// size get a dedicated chunk. Never returns nullptr (asserts on OOM via
  /// operator new).
  void* allocate(std::size_t bytes) {
    constexpr std::size_t kAlign = alignof(std::max_align_t);
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (bytes > chunk_bytes_ - used_ || chunks_.empty()) {
      const std::size_t chunk = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
      chunks_.push_back(std::make_unique<std::byte[]>(chunk));
      chunk_sizes_.push_back(chunk);
      reserved_ += chunk;
      used_ = 0;
    }
    std::byte* out = chunks_.back().get() + used_;
    used_ += bytes;
    allocated_ += bytes;
    return out;
  }

  /// A zero-initialized array of `n` trivially-destructible `T`.
  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena blocks are never destroyed individually");
    T* out = static_cast<T*>(allocate(n * sizeof(T)));
    for (std::size_t i = 0; i < n; ++i) out[i] = T{};
    return out;
  }

  /// Bytes handed out (live + abandoned-by-growth).
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }
  /// Bytes reserved from the heap (chunk totals) — the resident footprint.
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }

 private:
  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<std::size_t> chunk_sizes_;
  std::size_t used_ = 0;       // into the last chunk
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace epicast
