// epicast — contract-checking assertions.
//
// The library follows the C++ Core Guidelines (I.6/I.8: state preconditions
// and postconditions). EPICAST_ASSERT is active in all build types: the
// simulator is the test oracle for the paper's experiments, so silently
// corrupted state would invalidate results. Failures print the expression,
// location, and an optional formatted message, then abort.
#pragma once

#include <string_view>

namespace epicast::detail {

/// Prints a diagnostic for a failed contract and aborts. Never returns.
[[noreturn]] void assert_fail(std::string_view expr, std::string_view file,
                              int line, std::string_view msg);

}  // namespace epicast::detail

#define EPICAST_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      ::epicast::detail::assert_fail(#expr, __FILE__, __LINE__, {});      \
    }                                                                     \
  } while (false)

#define EPICAST_ASSERT_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      ::epicast::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                     \
  } while (false)

/// Marks an unreachable code path; aborts if ever executed.
#define EPICAST_UNREACHABLE(msg)                                          \
  ::epicast::detail::assert_fail("unreachable", __FILE__, __LINE__, (msg))
