// epicast — per-scenario slab/freelist allocator for messages and events.
//
// End-to-end profiling attributes a large slice of scenario wall time to
// shared_ptr control-block churn: every hop allocates an EventMessage, every
// gossip round allocates digests/requests/replies, and all of them die
// within microseconds of simulated time. The pool recycles those blocks:
// allocations are bucketed into 64-byte size classes carved from large
// slabs, frees push onto per-class freelists, and the next allocation of
// the same class pops in O(1) with no malloc traffic.
//
// Lifetime rules:
//   * One pool per Simulator (i.e., per scenario). Scenarios are
//     single-threaded inside sweep workers, so the pool defaults to
//     UNSYNCHRONIZED — never share one across threads unless
//     set_thread_safe(true) was called (the sharded engine's threaded
//     windows do: a MessagePtr allocated on one lane can drop its last
//     reference on another, or at the barrier replay).
//   * `make_pooled<T>` uses std::allocate_shared with an allocator that
//     holds a shared_ptr to the pool's internal state, so outstanding
//     objects (and their control blocks) stay valid even if they outlive
//     the MessagePool handle itself; slabs are reclaimed when the last
//     pooled object dies.
//   * Under AddressSanitizer the pool runs in PassThrough mode (plain
//     operator new/delete per object) so ASan keeps poisoning freed
//     memory; EPICAST_POOL=off forces PassThrough in any build for A/B
//     measurements, EPICAST_POOL=on forces pooling even under ASan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace epicast {

#if defined(__SANITIZE_ADDRESS__)
#define EPICAST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EPICAST_ASAN 1
#endif
#endif

class MessagePool {
 public:
  enum class Mode {
    Pooling,      ///< slab/freelist recycling (the fast path)
    PassThrough,  ///< one operator new/delete per object (ASan-friendly)
  };

  struct Stats {
    std::uint64_t allocations = 0;    ///< total allocate() calls
    std::uint64_t deallocations = 0;  ///< total deallocate() calls
    std::uint64_t reuses = 0;         ///< allocations served from a freelist
    std::uint64_t oversize = 0;       ///< fell through to operator new
    std::uint64_t slab_bytes = 0;     ///< bytes reserved in slabs

    [[nodiscard]] std::uint64_t live() const {
      return allocations - deallocations;
    }
  };

  /// Default-constructs with default_mode() (ASan/EPICAST_POOL aware).
  MessagePool() : MessagePool(default_mode()) {}
  explicit MessagePool(Mode mode);

  [[nodiscard]] Mode mode() const;
  [[nodiscard]] const Stats& stats() const;

  /// Raw allocation interface (size classes of kGranularity bytes, larger
  /// requests fall through to operator new). Blocks are aligned for any
  /// type with alignment <= alignof(std::max_align_t).
  [[nodiscard]] void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes) noexcept;

  /// Serializes allocate/deallocate behind a mutex. The scenario runner
  /// enables this before a threaded run; off (the default) the pool stays
  /// lock-free single-threaded with zero overhead.
  void set_thread_safe(bool on);

  /// The process-wide default: PassThrough under ASan or EPICAST_POOL=off,
  /// Pooling otherwise (EPICAST_POOL=on overrides the ASan default).
  [[nodiscard]] static Mode default_mode();

  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = 16;  ///< up to 1024-byte blocks
  static constexpr std::size_t kSlabBytes = 64 * 1024;

 private:
  struct State {
    explicit State(Mode m) : mode(m) {}
    State(const State&) = delete;
    State& operator=(const State&) = delete;
    ~State();

    [[nodiscard]] void* allocate(std::size_t bytes);
    void deallocate(void* p, std::size_t bytes) noexcept;

    Mode mode;
    bool thread_safe = false;  ///< set before threads exist, stable after
    std::mutex mu;             ///< taken only when thread_safe
    Stats stats;
    /// Freelist heads per size class; each free block's first word links to
    /// the next free block of the class.
    void* free_[kClasses] = {};
    /// Bump area of the most recent slab.
    std::byte* bump = nullptr;
    std::size_t bump_left = 0;
    std::vector<void*> slabs;
  };

  std::shared_ptr<State> state_;

 public:
  /// std::allocate_shared-compatible allocator keeping the pool state alive
  /// for as long as any allocation (object or control block) is live.
  template <typename T>
  class Allocator {
   public:
    using value_type = T;

    explicit Allocator(const MessagePool& pool) : state_(pool.state_) {}
    template <typename U>
    Allocator(const Allocator<U>& o) : state_(o.state_) {}  // NOLINT

    [[nodiscard]] T* allocate(std::size_t n) {
      return static_cast<T*>(state_->allocate(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t n) noexcept {
      state_->deallocate(p, n * sizeof(T));
    }

    template <typename U>
    [[nodiscard]] bool operator==(const Allocator<U>& o) const {
      return state_ == o.state_;
    }

   private:
    template <typename U>
    friend class Allocator;
    std::shared_ptr<State> state_;
  };
};

/// Allocates a shared_ptr-managed T (object + control block in one pooled
/// allocation). Drop-in replacement for std::make_shared on hot paths that
/// have a Simulator (and thus a pool) at hand.
template <typename T, typename... Args>
[[nodiscard]] std::shared_ptr<T> make_pooled(const MessagePool& pool,
                                             Args&&... args) {
  return std::allocate_shared<T>(MessagePool::Allocator<T>(pool),
                                 std::forward<Args>(args)...);
}

}  // namespace epicast
