// epicast — typed decode errors of the wire layer.
//
// Strict decoding: a frame that is truncated, corrupt, non-canonical, or of
// an unknown kind/version is rejected with a DecodeError — never undefined
// behaviour, never a partial message. The error taxonomy is deliberately
// fine-grained so tests (and, later, a real socket backend's peer
// diagnostics) can assert *why* a frame was refused.
#pragma once

namespace epicast::wire {

enum class DecodeError {
  /// Frame shorter than the fixed header (length prefix + version + kind).
  TruncatedHeader,
  /// Length prefix inconsistent with itself (shorter than version + kind).
  BadLength,
  /// Length prefix claims more bytes than the caller supplied.
  TruncatedPayload,
  /// Bytes left over after the last field (or length prefix shorter than
  /// the supplied buffer): the frame and its payload disagree.
  TrailingBytes,
  /// Version byte this codec does not speak.
  UnknownVersion,
  /// Kind byte naming no known message type.
  UnknownKind,
  /// Varint longer than necessary (non-canonical zero padding) or longer
  /// than the 64-bit maximum.
  OverlongVarint,
  /// A field decoded fine but its value is out of domain (e.g. a 32-bit id
  /// carried a larger value).
  ValueOutOfRange,
  /// A list length prefix promises more elements than the remaining bytes
  /// could possibly hold.
  BadCount,
};

[[nodiscard]] const char* to_string(DecodeError e);

}  // namespace epicast::wire
