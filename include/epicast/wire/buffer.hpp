// epicast — byte-level primitives of the wire format.
//
// WireBuffer is the reusable encode sink: clear() keeps its capacity, so a
// sender that encodes many frames (the hot path of a socket backend, or the
// codec micro-benchmark) allocates only until the high-water mark is
// reached. WireReader is the strict, bounds-checked decode source: the
// first failure latches a DecodeError and every later read returns zero, so
// decoders can run straight-line and check ok() once.
//
// Integers are little-endian; ids, counts, and sizes are LEB128 varints
// (canonical form only: an encoding with redundant trailing zero groups is
// rejected as OverlongVarint). Signed values use zigzag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "epicast/wire/error.hpp"

namespace epicast::wire {

/// Bytes a value occupies as a LEB128 varint (1..10).
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Growable, reusable byte sink for frame encoding.
class WireBuffer {
 public:
  /// Drops the content, keeps the capacity (allocation-free reuse).
  void clear() { bytes_.clear(); }

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] bool empty() const { return bytes_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return bytes_.capacity(); }
  [[nodiscard]] const std::uint8_t* data() const { return bytes_.data(); }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return bytes_; }

  void reserve(std::size_t n) { bytes_.reserve(n); }

  void put_u8(std::uint8_t v) { bytes_.push_back(v); }

  void put_u32le(std::uint32_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 16));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 24));
  }

  /// Overwrites 4 previously appended bytes (frame-length back-patching).
  void patch_u32le(std::size_t offset, std::uint32_t v) {
    bytes_[offset] = static_cast<std::uint8_t>(v);
    bytes_[offset + 1] = static_cast<std::uint8_t>(v >> 8);
    bytes_[offset + 2] = static_cast<std::uint8_t>(v >> 16);
    bytes_[offset + 3] = static_cast<std::uint8_t>(v >> 24);
  }

  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  void put_zigzag(std::int64_t v) { put_varint(zigzag(v)); }

  /// Appends `n` zero bytes — stand-in for payload content the simulator
  /// does not model but a byte-accurate frame must still carry.
  void put_zero_bytes(std::size_t n) { bytes_.resize(bytes_.size() + n, 0); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Strict bounds-checked byte source. The first failure latches; subsequent
/// reads are no-ops returning zero.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const { return !err_.has_value(); }
  [[nodiscard]] DecodeError error() const { return *err_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  /// Latches `e` unless an earlier error already did.
  void fail(DecodeError e) {
    if (!err_) err_ = e;
  }

  std::uint8_t u8() {
    if (!ok()) return 0;
    if (remaining() < 1) {
      fail(DecodeError::TruncatedPayload);
      return 0;
    }
    return bytes_[pos_++];
  }

  std::uint32_t u32le() {
    if (!ok()) return 0;
    if (remaining() < 4) {
      fail(DecodeError::TruncatedPayload);
      return 0;
    }
    const std::uint32_t v = static_cast<std::uint32_t>(bytes_[pos_]) |
                            static_cast<std::uint32_t>(bytes_[pos_ + 1]) << 8 |
                            static_cast<std::uint32_t>(bytes_[pos_ + 2]) << 16 |
                            static_cast<std::uint32_t>(bytes_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::uint64_t varint() {
    if (!ok()) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 10; ++i) {
      if (remaining() < 1) {
        fail(DecodeError::TruncatedPayload);
        return 0;
      }
      const std::uint8_t b = bytes_[pos_++];
      if (i == 9) {
        // 9 groups cover 63 bits; the 10th byte may only be exactly 1
        // (setting bit 63). 0 is zero padding, anything larger overflows,
        // a continuation bit makes the varint too long.
        if (b != 1) {
          fail(DecodeError::OverlongVarint);
          return 0;
        }
        return v | (std::uint64_t{1} << 63);
      }
      v |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
      if ((b & 0x80) == 0) {
        if (i > 0 && b == 0) {
          // Canonical form forbids a zero final group ("0x80 0x00" for 0).
          fail(DecodeError::OverlongVarint);
          return 0;
        }
        return v;
      }
    }
    return 0;  // unreachable: the i == 9 branch always returns
  }

  std::uint32_t varint32() {
    const std::uint64_t v = varint();
    if (ok() && v > 0xFFFFFFFFull) {
      fail(DecodeError::ValueOutOfRange);
      return 0;
    }
    return static_cast<std::uint32_t>(v);
  }

  std::int64_t zigzag64() { return unzigzag(varint()); }

  /// A list length prefix, rejected when it promises more elements than the
  /// remaining bytes could possibly hold (≥ `min_element_bytes` each).
  std::size_t count(std::size_t min_element_bytes) {
    const std::uint64_t n = varint();
    if (!ok()) return 0;
    if (n > remaining() / (min_element_bytes == 0 ? 1 : min_element_bytes)) {
      fail(DecodeError::BadCount);
      return 0;
    }
    return static_cast<std::size_t>(n);
  }

  void skip(std::size_t n) {
    if (!ok()) return;
    if (remaining() < n) {
      fail(DecodeError::TruncatedPayload);
      return;
    }
    pos_ += n;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  std::optional<DecodeError> err_;
};

}  // namespace epicast::wire
