// epicast — byte-accurate serialization of every message the transport can
// carry.
//
// Frame layout (little-endian, varints are canonical LEB128):
//
//   ┌──────────┬─────────┬──────┬────────────────────────────┐
//   │ len: u32 │ ver: u8 │ kind │ payload (len − 2 bytes)    │
//   └──────────┴─────────┴──────┴────────────────────────────┘
//        │
//        └── number of bytes after the length field (version + kind +
//            payload), so a stream reader can frame before it parses.
//
// One frame per message; the payload encodings are documented per kind in
// DESIGN.md ("Wire format"). Event payload content is not modelled by the
// simulator, so the codec carries `payload_bytes` of zeros — frames have
// exactly the size a real transport would put on the wire.
//
// decode() is strict: truncated, corrupt, non-canonical, unknown-version
// and unknown-kind frames yield a typed DecodeError (wire/error.hpp), never
// UB and never a partially initialized message. Decoded gossip messages
// report the frame size as their nominal size, so re-sending a decoded
// message charges its true wire cost in either sizing mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "epicast/net/message.hpp"
#include "epicast/wire/buffer.hpp"
#include "epicast/wire/error.hpp"

namespace epicast::wire {

/// Discriminates frames on the wire. Values are part of the format: append
/// new kinds, never renumber (versioning rule, see DESIGN.md).
enum class FrameKind : std::uint8_t {
  Event = 0,
  Subscribe = 1,
  PushDigest = 2,
  SubscriberPullDigest = 3,
  PublisherPullDigest = 4,
  RandomPullDigest = 5,
  RecoveryRequest = 6,
  RecoveryReply = 7,
  Heartbeat = 8,
};

[[nodiscard]] const char* to_string(FrameKind k);

/// Result of Codec::decode — a message or a typed error.
class Decoded {
 public:
  /*implicit*/ Decoded(MessagePtr msg) : msg_(std::move(msg)) {}
  /*implicit*/ Decoded(DecodeError err) : err_(err) {}

  [[nodiscard]] bool ok() const { return msg_ != nullptr; }
  [[nodiscard]] const MessagePtr& message() const { return msg_; }
  [[nodiscard]] DecodeError error() const { return err_; }

 private:
  MessagePtr msg_;
  DecodeError err_ = DecodeError::TruncatedHeader;
};

class Codec {
 public:
  /// Format version emitted by encode() and required by decode().
  static constexpr std::uint8_t kVersion = 1;
  /// Length prefix + version byte + kind byte.
  static constexpr std::size_t kHeaderBytes = 6;
  /// Hard ceiling on the length prefix — no legitimate message comes close,
  /// and it bounds what a corrupt frame can make a stream reader buffer.
  static constexpr std::uint32_t kMaxFrameLen = 64u * 1024u * 1024u;

  /// Appends one frame for `msg` to `out` (which is not cleared: callers
  /// batching frames into one buffer concatenate naturally).
  static void encode(const Message& msg, WireBuffer& out);

  /// Exact frame size encode() would produce, computed without serializing
  /// — this is Message::wire_size_bytes()'s backend and the hot path of
  /// SizingMode::Wire. A round-trip test pins it to encode(). Messages the
  /// codec has no frame for (foreign subclasses, e.g. the pure-gossip
  /// comparator's) fall back to their nominal size_bytes(), so
  /// SizingMode::Wire stays total over the whole Message hierarchy.
  [[nodiscard]] static std::size_t encoded_size(const Message& msg);

  /// Decodes exactly one frame spanning the whole of `frame`.
  [[nodiscard]] static Decoded decode(std::span<const std::uint8_t> frame);

  /// The kind byte `msg` encodes to; nullopt for Message subclasses the
  /// codec has no frame format for.
  [[nodiscard]] static std::optional<FrameKind> try_kind_of(
      const Message& msg);

  /// As try_kind_of, but the message must be encodable (asserts).
  [[nodiscard]] static FrameKind kind_of(const Message& msg);
};

}  // namespace epicast::wire
