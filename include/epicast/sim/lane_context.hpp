// epicast — per-lane execution context for threaded lookahead windows.
//
// While the sharded engine executes a parallel window, each worker thread
// drains one or more shard lanes. Code running under a worker must not
// touch the master Simulator's clock or profiler, and side effects whose
// order the serial engine defines globally (observer callbacks, tracker
// updates) must not fire immediately — the worker only knows its own
// lane's order. The LaneContext is the thread-local bridge:
//
//   * `now` is the timestamp of the lane event being executed (the
//     threaded replacement for Simulator::now());
//   * `profiler` is the lane's private HotpathProfiler shard, merged into
//     the scenario totals at the end of the run;
//   * `defer()` buffers a side-effect callback. The engine replays all
//     lanes' buffers at the window barrier in merged global (time, seq)
//     order — exactly the serial observation order — on the master thread,
//     with the master clock advanced to the originating event's time.
//
// Outside parallel windows (serial engine, serial windows, replay itself)
// `current()` is null and every call site falls back to its direct path,
// so single-threaded behaviour is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "epicast/sim/callback.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

class HotpathProfiler;  // metrics/hotpath_profiler.hpp

struct LaneContext {
  std::uint32_t lane = 0;
  SimTime now;
  HotpathProfiler* profiler = nullptr;
  /// Deferred side effects of this lane's window prefix, in execution
  /// order. The engine records how many each event appended and replays
  /// them grouped under the originating event at the barrier.
  std::vector<SmallCallback> effects;

  /// Buffers a side effect for barrier replay. The callback runs on the
  /// master thread with the master clock at the originating event's time;
  /// it must not schedule lane events or send messages.
  void defer(SmallCallback cb) { effects.push_back(std::move(cb)); }

  /// The context of the worker executing on this thread, or null when no
  /// parallel window is open (or this is the master thread).
  [[nodiscard]] static LaneContext* current() { return slot(); }

  /// `now` of the active lane context, or `fallback` (typically
  /// Simulator::now()) outside parallel windows.
  [[nodiscard]] static SimTime now_or(SimTime fallback) {
    const LaneContext* ctx = slot();
    return ctx != nullptr ? ctx->now : fallback;
  }

  /// Binds/unbinds this context to the calling thread (engine internals).
  static void set_current(LaneContext* ctx) { slot() = ctx; }

 private:
  static LaneContext*& slot() {
    static thread_local LaneContext* ctx = nullptr;
    return ctx;
  }
};

}  // namespace epicast
