// epicast — sharded conservative discrete-event engine.
//
// Partitions one scenario's nodes into K shards, each a logical process
// with its own 4-ary slab heap (a lane), plus one master lane for
// scenario-level events (workload publishes, fault plans, snapshots).
// Cross-shard traffic — transport arrivals — travels through per-pair
// mailboxes stamped with the delivery time, and lanes only advance inside
// bounded lookahead windows, the classic conservative (bounded-lag /
// time-window) synchronization scheme.
//
// The lookahead L comes from the link model: every overlay hop costs at
// least the propagation delay and every direct-channel message at least
// direct_latency_min, so an event executing at time t can only produce
// arrivals at >= t + L. Within a window [w, w+L) every lane's pending
// events are causally independent of the other lanes' (their arrivals land
// at or beyond w+L), which admits two execution strategies with identical
// results:
//
//  * serial windows (threads == 1, or windows a master-lane event or a
//    single busy lane makes not worth parallelising): the engine executes
//    the globally minimal (time, seq) event across all lanes, all lanes
//    drawing tie-break seqs from ONE shared counter — exactly the serial
//    scheduler's order.
//
//  * parallel windows (threads > 1): a persistent worker pool drains each
//    shard lane's strictly-below-window-end prefix concurrently. Per-lane
//    state makes this race-free (lane heaps, per-sender RNG streams,
//    per-lane profilers and mailbox rows); side effects whose order the
//    serial engine defines globally — observer callbacks, tracker updates
//    — are buffered per lane (sim/lane_context.hpp) and replayed at the
//    window barrier in merged global (time, seq) order on the master
//    thread. Tie-break seqs are drawn from per-lane provisional counters
//    and renumbered at the barrier to the exact values the shared counter
//    would have produced, so heap order, mailbox order, and the next
//    window's draws all match the serial run bit-for-bit.
//
// Either way results are bit-identical to the serial scheduler by
// construction, for every seed, shard count, and thread count. The
// equivalence tier (tests/parallel) proves it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/metrics/hotpath_profiler.hpp"
#include "epicast/sim/lane_context.hpp"
#include "epicast/sim/scheduler.hpp"
#include "epicast/sim/simulator.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

/// Handle to a not-yet-drained mailbox entry; allows cross-shard
/// cancellation. Cancelling after the barrier drain has moved the entry
/// into the destination lane's heap is a no-op (returns false) — cancel
/// the lane EventHandle instead for post-drain control.
struct MailRef {
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
  std::uint32_t pair = kInvalid;  ///< mailbox index (from_lane, to_lane)
  std::uint32_t index = 0;        ///< entry index within the mailbox
  std::uint64_t epoch = 0;        ///< drain epoch the entry belongs to
};

class ShardEngine {
 public:
  using Callback = Scheduler::Callback;

  struct Stats {
    std::uint64_t windows = 0;           ///< lookahead windows opened
    std::uint64_t parallel_windows = 0;  ///< ... executed on the worker pool
    std::uint64_t window_events = 0;     ///< events executed inside windows
    std::uint64_t mailbox_posted = 0;    ///< arrivals routed through mailboxes
    std::uint64_t cross_posted = 0;      ///< ... of which crossed a shard
    std::uint64_t drained = 0;           ///< entries moved into lane heaps
    std::uint64_t cancelled = 0;         ///< entries cancelled pre-drain
    /// Master wall-clock nanoseconds spent waiting on the window barrier
    /// (includes the workers' execution time — the master only coordinates).
    std::uint64_t barrier_wait_ns = 0;
  };

  /// `sim` is the master simulator: its clock is advanced in lockstep with
  /// the engine (so components reading sim.now() see the executing event's
  /// time) but its own heap must stay empty — all scheduling goes through
  /// the engine. `lookahead` must be positive; use compute_lookahead().
  /// `threads` > 1 starts a persistent worker pool executing parallel
  /// windows; it is clamped to the shard count (the unit of parallelism).
  ShardEngine(Simulator& sim, std::uint32_t nodes, std::uint32_t shards,
              Duration lookahead, std::uint32_t threads = 1);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Largest window the link model allows: an event at t can only cause
  /// arrivals at >= t + min(overlay propagation, direct latency minimum).
  /// The direct bound backs off 1ns because the uniform latency draw is
  /// rounded to the nearest nanosecond, which may land half a nanosecond
  /// below the configured minimum. Non-positive result means the model
  /// gives no lookahead and the caller must fall back to the serial path.
  static Duration compute_lookahead(Duration link_propagation,
                                    Duration direct_latency_min);

  [[nodiscard]] std::uint32_t shard_count() const { return shards_; }
  [[nodiscard]] std::uint32_t thread_count() const { return threads_; }
  [[nodiscard]] std::uint32_t master_lane() const { return shards_; }
  [[nodiscard]] std::uint32_t lane_of(NodeId node) const {
    EPICAST_ASSERT(node.value() < nodes_);
    return static_cast<std::uint32_t>(node.value()) / block_;
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// The shard lane's private profiler (lane < shard_count()). Components
  /// living on a shard lane charge this one — from a worker thread during
  /// parallel windows, from the master otherwise — and the scenario runner
  /// merges all lane snapshots into the run totals.
  [[nodiscard]] HotpathProfiler& lane_profiler(std::uint32_t lane) {
    EPICAST_ASSERT(lane < shards_);
    return lane_profilers_[lane];
  }

  /// Hook run on the master thread right before each parallel window's
  /// workers start — the place to settle lazily-rebuilt shared caches that
  /// workers may only read (the topology's CSR adjacency pack).
  void set_parallel_prologue(std::function<void()> hook) {
    prologue_ = std::move(hook);
  }

  /// Total events executed across all lanes (matches the serial
  /// scheduler's executed() count for the same scenario).
  [[nodiscard]] std::uint64_t executed() const;

  /// Schedules onto an explicit lane's heap (timers, shard-local work).
  /// From a worker, only the worker's own lane is schedulable.
  EventHandle schedule_lane(std::uint32_t lane, SimTime at, Callback cb);

  /// Schedules onto the owning shard of `node`.
  EventHandle schedule_node_at(NodeId node, SimTime at, Callback cb) {
    return schedule_lane(lane_of(node), at, std::move(cb));
  }

  /// Schedules scenario-level work on the master lane.
  EventHandle schedule_master_at(SimTime at, Callback cb) {
    return schedule_lane(master_lane(), at, std::move(cb));
  }

  /// Routes a transport arrival for `node` through the mailbox grid.
  /// Stamped (now + delay, seq) at post time; inserted into the owning
  /// lane's heap at the next window barrier. While a window is open this
  /// asserts the conservative invariant delay >= lookahead.
  MailRef schedule_arrival(NodeId node, Duration delay, Callback cb);

  /// Cancels a mailbox entry that has not been drained yet. Returns true
  /// iff this call removed it. Master thread only (crash paths run in
  /// serial windows).
  bool cancel(const MailRef& ref);

  /// Runs windows until no event at or before `deadline` remains;
  /// afterwards now() == deadline on the engine and the master simulator.
  void run_until(SimTime deadline);

 private:
  struct MailEntry {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
    bool cancelled = false;
  };
  struct Mailbox {
    std::vector<MailEntry> entries;
    std::uint64_t drain_epoch = 0;
  };

  /// One executed worker event, in lane order: enough to replay the
  /// window's global interleaving at the barrier without re-running it.
  struct ExecRec {
    SimTime at;
    std::uint64_t seq;      ///< pre-execution key (may be provisional)
    std::uint32_t created;  ///< seq draws during execution (heap + mailbox)
    std::uint32_t effects;  ///< deferred callbacks appended by this event
  };

  /// Per-lane window state. Shard lanes use all of it; the master lane's
  /// entry only carries the dirty-pair list and post counters.
  struct LaneWindow {
    LaneContext ctx;
    std::vector<ExecRec> execs;
    /// finals[i] = the exact shared-counter seq of this lane's i-th
    /// in-window creation, assigned in merged replay order.
    std::vector<std::uint64_t> finals;
    std::uint64_t prov_next = 0;  ///< per-window provisional seq counter
    std::size_t merged = 0;       ///< execs consumed by the merge so far
    std::size_t fx_replayed = 0;  ///< effects consumed by the replay so far
    std::uint64_t posted = 0;     ///< mailbox posts (folded into stats_)
    std::uint64_t crossed = 0;
    /// Pair indices this lane made nonempty since the last drain — the
    /// drain and the barrier renumber walk only these.
    std::vector<std::uint32_t> dirty;
  };

  /// Provisional seq encoding: bit 63 set, creating lane in bits 40..62,
  /// per-lane creation index in bits 0..39. All provisional seqs order
  /// after every real seq, and within a lane in creation order — the two
  /// properties lane-local heap ordering needs before the renumber.
  static constexpr std::uint64_t kProvBit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kProvIdxMask = (std::uint64_t{1} << 40) - 1;

  [[nodiscard]] std::uint32_t lane_count() const { return shards_ + 1; }
  [[nodiscard]] Mailbox& mailbox(std::uint32_t from, std::uint32_t to) {
    return mail_[from * lane_count() + to];
  }
  void drain_mailboxes();
  /// Earliest live (at, seq) across every lane heap; false when all empty.
  bool global_min(SimTime& at, std::uint64_t& seq, std::uint32_t& lane);

  /// True when the open window [now, window_end_) has no master-lane event
  /// and at least two shard lanes with work — the only shape where the
  /// worker pool beats the serial scan.
  bool can_run_parallel(SimTime deadline);
  void run_parallel_window(SimTime deadline);
  /// Replays the window's per-lane event lists in merged global (time,
  /// seq) order: assigns final seqs, runs deferred effects with the master
  /// clock in lockstep, then renumbers provisional seqs in mailboxes and
  /// lane heaps.
  void merge_and_replay();
  /// Final seq of a (possibly provisional) pre-execution key.
  [[nodiscard]] std::uint64_t resolve_seq(std::uint64_t seq) const;
  void worker_main(std::uint32_t worker);
  void run_lane_window(std::uint32_t lane);

  Simulator& sim_;
  std::uint32_t nodes_;
  std::uint32_t shards_;
  std::uint32_t block_;  // nodes per shard (ceil)
  Duration lookahead_;
  std::uint32_t threads_;  // 1 = no pool, pure serial windows
  std::vector<std::unique_ptr<Scheduler>> lanes_;  // [0..K) shards, [K] master
  std::vector<Mailbox> mail_;                      // (K+1)² pair grid
  std::vector<LaneWindow> lw_;                     // per-lane window state
  std::vector<HotpathProfiler> lane_profilers_;    // [0..K) shard lanes
  std::uint64_t next_seq_ = 0;  // shared tie-break counter for all lanes
  SimTime now_;
  std::uint32_t current_lane_;  // lane of the executing event (posts charge it)
  bool in_window_ = false;
  SimTime window_end_;
  SimTime work_deadline_;  // run_until deadline, visible to workers
  Stats stats_;
  std::function<void()> prologue_;

  // Worker pool: workers sleep between windows; the master publishes a
  // window by bumping work_epoch_ under mu_ and waits for outstanding_ to
  // hit zero. Lane l is always drained by worker l % threads_, so a lane's
  // heap and window state stay single-writer across windows.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t work_epoch_ = 0;
  std::uint32_t outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace epicast
