// epicast — sharded conservative discrete-event engine.
//
// Partitions one scenario's nodes into K shards, each a logical process
// with its own 4-ary slab heap (a lane), plus one master lane for
// scenario-level events (workload publishes, fault plans, snapshots).
// Cross-shard traffic — transport arrivals — travels through per-pair
// mailboxes stamped with the delivery time, and lanes only advance inside
// bounded lookahead windows, the classic conservative (bounded-lag /
// time-window) synchronization scheme.
//
// The lookahead L comes from the link model: every overlay hop costs at
// least the propagation delay and every direct-channel message at least
// direct_latency_min, so an event executing at time t can only produce
// arrivals at >= t + L. Within a window [w, w+L) the engine executes the
// globally minimal (time, seq) event across all lanes, where every lane
// draws its tie-break seq from ONE shared counter. Execution order is
// therefore exactly the serial engine's order — same RNG draws on shared
// streams, same observer callbacks, same stats — which is what makes
// results bit-identical to the serial scheduler by construction, for every
// seed and shard count. The equivalence tier (tests/parallel) proves it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/sim/scheduler.hpp"
#include "epicast/sim/simulator.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

/// Handle to a not-yet-drained mailbox entry; allows cross-shard
/// cancellation. Cancelling after the barrier drain has moved the entry
/// into the destination lane's heap is a no-op (returns false) — cancel
/// the lane EventHandle instead for post-drain control.
struct MailRef {
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
  std::uint32_t pair = kInvalid;  ///< mailbox index (from_lane, to_lane)
  std::uint32_t index = 0;        ///< entry index within the mailbox
  std::uint64_t epoch = 0;        ///< drain epoch the entry belongs to
};

class ShardEngine {
 public:
  using Callback = Scheduler::Callback;

  struct Stats {
    std::uint64_t windows = 0;         ///< lookahead windows opened
    std::uint64_t mailbox_posted = 0;  ///< arrivals routed through mailboxes
    std::uint64_t cross_posted = 0;    ///< ... of which crossed a shard
    std::uint64_t drained = 0;         ///< entries moved into lane heaps
    std::uint64_t cancelled = 0;       ///< entries cancelled pre-drain
  };

  /// `sim` is the master simulator: its clock is advanced in lockstep with
  /// the engine (so components reading sim.now() see the executing event's
  /// time) but its own heap must stay empty — all scheduling goes through
  /// the engine. `lookahead` must be positive; use compute_lookahead().
  ShardEngine(Simulator& sim, std::uint32_t nodes, std::uint32_t shards,
              Duration lookahead);

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Largest window the link model allows: an event at t can only cause
  /// arrivals at >= t + min(overlay propagation, direct latency minimum).
  /// The direct bound backs off 1ns because the uniform latency draw is
  /// rounded to the nearest nanosecond, which may land half a nanosecond
  /// below the configured minimum. Non-positive result means the model
  /// gives no lookahead and the caller must fall back to the serial path.
  static Duration compute_lookahead(Duration link_propagation,
                                    Duration direct_latency_min);

  [[nodiscard]] std::uint32_t shard_count() const { return shards_; }
  [[nodiscard]] std::uint32_t master_lane() const { return shards_; }
  [[nodiscard]] std::uint32_t lane_of(NodeId node) const {
    EPICAST_ASSERT(node.value() < nodes_);
    return static_cast<std::uint32_t>(node.value()) / block_;
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Total events executed across all lanes (matches the serial
  /// scheduler's executed() count for the same scenario).
  [[nodiscard]] std::uint64_t executed() const;

  /// Schedules onto an explicit lane's heap (timers, shard-local work).
  EventHandle schedule_lane(std::uint32_t lane, SimTime at, Callback cb);

  /// Schedules onto the owning shard of `node`.
  EventHandle schedule_node_at(NodeId node, SimTime at, Callback cb) {
    return schedule_lane(lane_of(node), at, std::move(cb));
  }

  /// Schedules scenario-level work on the master lane.
  EventHandle schedule_master_at(SimTime at, Callback cb) {
    return schedule_lane(master_lane(), at, std::move(cb));
  }

  /// Routes a transport arrival for `node` through the mailbox grid.
  /// Stamped (now + delay, seq) at post time; inserted into the owning
  /// lane's heap at the next window barrier. While a window is open this
  /// asserts the conservative invariant delay >= lookahead.
  MailRef schedule_arrival(NodeId node, Duration delay, Callback cb);

  /// Cancels a mailbox entry that has not been drained yet. Returns true
  /// iff this call removed it.
  bool cancel(const MailRef& ref);

  /// Runs windows until no event at or before `deadline` remains;
  /// afterwards now() == deadline on the engine and the master simulator.
  void run_until(SimTime deadline);

 private:
  struct MailEntry {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
    bool cancelled = false;
  };
  struct Mailbox {
    std::vector<MailEntry> entries;
    std::uint64_t drain_epoch = 0;
  };

  [[nodiscard]] std::uint32_t lane_count() const { return shards_ + 1; }
  [[nodiscard]] Mailbox& mailbox(std::uint32_t from, std::uint32_t to) {
    return mail_[from * lane_count() + to];
  }
  void drain_mailboxes();
  /// Earliest live (at, seq) across every lane heap; false when all empty.
  bool global_min(SimTime& at, std::uint64_t& seq, std::uint32_t& lane);

  Simulator& sim_;
  std::uint32_t nodes_;
  std::uint32_t shards_;
  std::uint32_t block_;  // nodes per shard (ceil)
  Duration lookahead_;
  std::vector<std::unique_ptr<Scheduler>> lanes_;  // [0..K) shards, [K] master
  std::vector<Mailbox> mail_;                      // (K+1)² pair grid
  std::uint64_t next_seq_ = 0;  // shared tie-break counter for all lanes
  SimTime now_;
  std::uint32_t current_lane_;  // lane of the executing event (posts charge it)
  bool in_window_ = false;
  SimTime window_end_;
  Stats stats_;
};

}  // namespace epicast
