// epicast — small-buffer callable for the scheduler hot path.
//
// `SmallCallback` is a move-only `void()` wrapper that stores callables of
// up to kInlineBytes inline, so scheduling an event performs no heap
// allocation for the closures the simulator actually creates (the largest,
// Transport's in-flight-message delivery, captures ~40 bytes). Larger or
// potentially-throwing-on-move callables transparently fall back to a
// heap-owned box, preserving std::function-like generality.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace epicast {

class SmallCallback {
 public:
  /// Inline capacity: sized for the library's biggest hot-path closure
  /// (Transport delivery: this + two NodeIds + shared_ptr + version).
  static constexpr std::size_t kInlineBytes = 48;

  SmallCallback() = default;
  SmallCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallCallback(SmallCallback&& other) noexcept { move_from(other); }
  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallCallback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  /// True if a callable is stored.
  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs into `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<F*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      F* from = static_cast<F*>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* p) noexcept { static_cast<F*>(p)->~F(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static F*& boxed(void* p) { return *static_cast<F**>(p); }
    static void invoke(void* p) { (*boxed(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) (F*)(boxed(src));
    }
    static void destroy(void* p) noexcept { delete boxed(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    constexpr bool fits_inline =
        sizeof(D) <= kInlineBytes &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;
    if constexpr (fits_inline) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void move_from(SmallCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

}  // namespace epicast
