// epicast — simulation clock.
//
// Simulation time is an integer count of nanoseconds. Integers (rather than
// doubles) make event ordering exact and runs bit-reproducible; nanosecond
// resolution comfortably covers the paper's scales (gossip intervals of
// 10–55 ms, link serialization of ~0.8 ms, runs of tens of seconds).
#pragma once

#include <compare>
#include <concepts>
#include <cstdint>
#include <string>

namespace epicast {

/// A duration in simulation time. Signed so differences are representable.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t ns) {
    return Duration{ns};
  }
  [[nodiscard]] static constexpr Duration micros(std::int64_t us) {
    return Duration{us * 1000};
  }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) {
    return Duration{ms * 1'000'000};
  }
  /// From (possibly fractional) seconds; rounds to the nearest nanosecond.
  [[nodiscard]] static Duration seconds(double s);

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return ns_ * 1e-9; }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  template <std::integral I>
  friend constexpr Duration operator*(Duration a, I k) {
    return Duration{a.ns_ * static_cast<std::int64_t>(k)};
  }
  friend Duration operator*(Duration a, double k) {
    return Duration::seconds(a.to_seconds() * k);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulation clock. Time zero is the start of
/// the simulation.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{}; }
  [[nodiscard]] static SimTime seconds(double s) {
    return SimTime{} + Duration::seconds(s);
  }

  [[nodiscard]] constexpr std::int64_t nanos_since_start() const {
    return ns_;
  }
  [[nodiscard]] constexpr double to_seconds() const { return ns_ * 1e-9; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.ns_ + d.count_nanos()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// "12.345s"-style rendering for logs and reports.
std::string to_string(Duration d);
std::string to_string(SimTime t);

}  // namespace epicast
