// epicast — the event queue at the heart of the discrete-event engine.
//
// A binary heap of (time, tie-break sequence, callback). Two properties the
// rest of the library depends on:
//   * determinism — events at equal times fire in scheduling order
//     (FIFO tie-break), so a run is a pure function of config + seed;
//   * O(log n) cancellation — timers (gossip rounds, reconfigurations) are
//     cancelled lazily via shared tombstone flags.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "epicast/sim/time.hpp"

namespace epicast {

/// Handle to a scheduled callback; allows cancellation. Default-constructed
/// handles refer to nothing and are safely cancellable no-ops.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the callback from running if it has not fired yet.
  /// Idempotent. Returns true if this call actually cancelled it.
  bool cancel();

  /// True if the callback is still scheduled to fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

/// Priority queue of timestamped callbacks.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time: the timestamp of the event being executed, or
  /// of the last executed event when idle.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `at`. Precondition: at >= now().
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` from now. Precondition: delay >= 0.
  EventHandle schedule_after(Duration delay, Callback cb);

  /// Runs the earliest pending event. Returns false when the queue is empty
  /// (cancelled entries are skipped transparently).
  bool step();

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with timestamp <= deadline; afterwards now() == deadline
  /// even if the queue drained early.
  void run_until(SimTime deadline);

  /// Number of scheduled entries, including not-yet-collected cancellations.
  [[nodiscard]] std::size_t queued() const { return heap_.size(); }

  /// Total events executed so far (cancelled entries excluded).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback cb;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops entries until a live one is found; returns false if none.
  bool pop_live(Entry& out);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace epicast
