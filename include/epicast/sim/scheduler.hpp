// epicast — the event queue at the heart of the discrete-event engine.
//
// A slab of pooled event records plus a 4-ary implicit heap of
// {time, tie-break sequence, slot} PODs. Three properties the rest of the
// library depends on:
//   * determinism — events at equal times fire in scheduling order
//     (FIFO tie-break), so a run is a pure function of config + seed;
//   * O(1) cancellation — an EventHandle addresses its slab record by
//     {index, generation}; cancelling bumps the generation, releases the
//     callback, and leaves a stale heap entry to be skipped on pop;
//   * allocation-free steady state — fired and cancelled records return to
//     a free list, heap sift operations move 24-byte PODs (never
//     callbacks), and closures up to SmallCallback::kInlineBytes are stored
//     inline in the slab.
#pragma once

#include <cstdint>
#include <vector>

#include "epicast/common/assert.hpp"
#include "epicast/sim/callback.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

class Scheduler;

/// Handle to a scheduled callback; allows cancellation. Default-constructed
/// handles refer to nothing and are safely cancellable no-ops. A handle
/// addresses its event by {slot, generation}: once the event fires or is
/// cancelled the generation is bumped, so every copy of the handle becomes
/// inert even if the slot is reused. Handles must not outlive the Scheduler
/// they came from.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the callback from running if it has not fired yet.
  /// Idempotent. Returns true if this call actually cancelled it.
  bool cancel();

  /// True if the callback is still scheduled to fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* scheduler, std::uint32_t slot, std::uint64_t gen)
      : scheduler_(scheduler), generation_(gen), slot_(slot) {}

  Scheduler* scheduler_ = nullptr;
  std::uint64_t generation_ = 0;
  std::uint32_t slot_ = 0;
};

/// Priority queue of timestamped callbacks.
class Scheduler {
 public:
  using Callback = SmallCallback;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time: the timestamp of the event being executed, or
  /// of the last executed event when idle.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `at`. Precondition: at >= now().
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` from now. Precondition: delay >= 0.
  EventHandle schedule_after(Duration delay, Callback cb);

  // -- sharded-engine hooks (sim/shard_engine.hpp) ---------------------------
  // The conservative engine splits one scenario across several of these
  // heaps. Equal-time ordering must stay global, so all lanes draw their
  // tie-break sequences from one shared counter, and the engine pumps events
  // itself (peek/take_front) instead of through step().

  /// Draw tie-break sequences from `counter` instead of the internal one.
  /// Set once, before anything is scheduled.
  void use_external_seq(std::uint64_t* counter) {
    EPICAST_ASSERT(heap_.empty() && next_seq_ == 0);
    external_seq_ = counter;
  }

  /// Re-points the external tie-break counter. The threaded engine swaps in
  /// a per-lane provisional counter for the span of a parallel window (so
  /// workers never contend on the shared one) and swaps the shared counter
  /// back at the barrier. Only valid on a scheduler already in external-seq
  /// mode.
  void rebind_external_seq(std::uint64_t* counter) {
    EPICAST_ASSERT(external_seq_ != nullptr && counter != nullptr);
    external_seq_ = counter;
  }

  /// Rewrites every pending entry whose seq is >= `threshold` through `fn`
  /// (provisional seq -> final seq). `fn` must be strictly monotone over
  /// the seqs present in this heap — the heap's (at, seq) order is then
  /// unchanged and no re-sift is needed. Entries cancelled after creation
  /// are mapped too (their stale heap keys must stay well-ordered until
  /// lazily collected); their slots are untouched because live_seq no
  /// longer matches.
  template <typename Fn>
  void renumber_pending(std::uint64_t threshold, Fn&& fn) {
    for (HeapEntry& e : heap_) {
      if (e.seq < threshold) continue;
      const std::uint64_t renumbered = fn(e.seq);
      Slot& s = slots_[e.slot];
      if (s.live_seq == e.seq) s.live_seq = renumbered;
      e.seq = renumbered;
    }
  }

  /// Schedules `cb` with a caller-assigned tie-break sequence (mailbox
  /// drains re-inserting entries stamped at send time). `seq` must be unique
  /// across all heaps sharing the counter.
  EventHandle schedule_at_seq(SimTime at, std::uint64_t seq, Callback cb);

  /// Key of the earliest live entry (lazily discarding cancelled ones), or
  /// false when the heap is empty.
  bool peek(SimTime& at, std::uint64_t& seq);

  /// Pops the earliest live entry, advances now() to it, and returns its
  /// callback without invoking it. Precondition: peek() just returned true.
  Callback take_front();

  /// Runs the earliest pending event. Returns false when the queue is empty
  /// (cancelled entries are skipped transparently).
  bool step();

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with timestamp <= deadline; afterwards now() == deadline
  /// even if the queue drained early.
  void run_until(SimTime deadline);

  /// Number of scheduled entries, including not-yet-collected cancellations.
  [[nodiscard]] std::size_t queued() const { return heap_.size(); }

  /// Total events executed so far (cancelled entries excluded).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  friend class EventHandle;

  /// 24-byte POD ordered by (at, seq); `slot` addresses the slab record.
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::uint32_t slot;
  };

  /// Pooled event record. `live_seq` is the seq of the heap entry that owns
  /// this slot (kFreeSeq when none): a popped heap entry is live iff its seq
  /// still matches. `generation` is bumped on every fire/cancel, outdating
  /// all handles to the previous occupant.
  struct Slot {
    Callback cb;
    std::uint64_t live_seq = kFreeSeq;
    std::uint64_t generation = 0;
  };
  static constexpr std::uint64_t kFreeSeq = ~std::uint64_t{0};

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  void heap_push(HeapEntry e);
  void heap_pop_front();

  /// Shared tail of schedule_at / schedule_at_seq: slot + heap insertion.
  EventHandle insert_entry(SimTime at, std::uint64_t seq, Callback cb);

  [[nodiscard]] bool entry_live(const HeapEntry& e) const {
    return slots_[e.slot].live_seq == e.seq;
  }

  /// Bumps the generation, frees the slot, and returns its callback.
  Callback release_slot(std::uint32_t slot);

  /// EventHandle backends.
  bool cancel_slot(std::uint32_t slot, std::uint64_t gen);
  [[nodiscard]] bool slot_pending(std::uint32_t slot, std::uint64_t gen) const;

  std::vector<HeapEntry> heap_;  // 4-ary implicit min-heap
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t* external_seq_ = nullptr;  // shared tie-break counter, if any
  std::uint64_t executed_ = 0;
};

}  // namespace epicast
