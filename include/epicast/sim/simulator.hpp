// epicast — simulation context.
//
// `Simulator` bundles the scheduler with the root RNG and a few utilities
// (periodic timers, run bookkeeping). All model components receive a
// `Simulator&` and must draw time from it and randomness from streams forked
// off it — never from wall-clock or global state — which is what makes every
// scenario a deterministic function of (config, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "epicast/common/message_pool.hpp"
#include "epicast/common/rng.hpp"
#include "epicast/metrics/hotpath_profiler.hpp"
#include "epicast/sim/scheduler.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

/// A repeating timer. Owns its scheduling; cancelled on destruction, so a
/// component holding one by value cannot leave callbacks dangling
/// (RAII per Core Guidelines R.1).
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  PeriodicTimer(PeriodicTimer&&) = default;
  PeriodicTimer& operator=(PeriodicTimer&& other) noexcept {
    if (this != &other) {
      stop();
      state_ = std::move(other.state_);
    }
    return *this;
  }

  /// True while ticking.
  [[nodiscard]] bool running() const { return state_ != nullptr; }

  /// Stops future ticks. Idempotent.
  void stop();

  /// Changes the interval; takes effect from the next tick.
  void set_interval(Duration interval);

 private:
  friend class Simulator;
  struct State {
    Scheduler* scheduler = nullptr;
    Duration interval;
    std::function<void()> on_tick;
    EventHandle handle;
  };
  static void arm(const std::shared_ptr<State>& state);

  std::shared_ptr<State> state_;
};

/// The simulation context: scheduler + deterministic randomness.
class Simulator {
 public:
  /// Creates a simulator whose entire stochastic behaviour derives from
  /// `seed`.
  explicit Simulator(std::uint64_t seed);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] SimTime now() const { return scheduler_.now(); }

  /// Schedules a one-shot callback after `delay`.
  EventHandle after(Duration delay, Scheduler::Callback cb) {
    return scheduler_.schedule_after(delay, std::move(cb));
  }

  /// Schedules a one-shot callback at absolute time `at`.
  EventHandle at(SimTime at, Scheduler::Callback cb) {
    return scheduler_.schedule_at(at, std::move(cb));
  }

  /// Starts a periodic timer with the first tick after `first_delay` and
  /// subsequent ticks every `interval`.
  PeriodicTimer every(Duration first_delay, Duration interval,
                      std::function<void()> on_tick);

  /// Derives an independent RNG stream for a component. Call order matters
  /// (and is deterministic); components should fork their streams during
  /// construction.
  Rng fork_rng() { return root_rng_.fork(); }

  /// Runs until no events remain.
  void run() { scheduler_.run(); }

  /// Runs until the given simulation time.
  void run_until(SimTime deadline) { scheduler_.run_until(deadline); }

  /// Seed this simulator was constructed with (for reports).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Per-scenario message/event allocation pool. Scenarios are
  /// single-threaded, so the pool is unsynchronized by design; everything
  /// allocated through it may outlive this Simulator (the pool state is
  /// reference-counted by outstanding allocations).
  [[nodiscard]] MessagePool& pool() { return pool_; }

  /// Hot-path phase counters (ops always, ns when a scenario enables
  /// timing); aggregated into ScenarioResult.
  [[nodiscard]] HotpathProfiler& profiler() { return profiler_; }

 private:
  std::uint64_t seed_;
  Scheduler scheduler_;
  Rng root_rng_;
  MessagePool pool_;
  HotpathProfiler profiler_;
};

}  // namespace epicast
