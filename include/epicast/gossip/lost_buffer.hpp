// epicast — the Lost buffer (§III-B, Pull).
//
// Holds the (source, pattern, seq) triples of events known to be missing.
// Pull gossip rounds draw digests from it; entries disappear when the event
// is finally received, when they exceed the recovery TTL, or when the
// buffer overflows (oldest first).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/pattern_set.hpp"
#include "epicast/gossip/messages.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

class LostBuffer {
 public:
  LostBuffer(std::size_t capacity, Duration ttl);

  /// Registers a missing event. Returns false if already present.
  bool add(const LostEntryInfo& entry, SimTime now);

  /// Removes one entry (typically because the event arrived).
  /// Returns true if it was present.
  bool remove(const LostEntryInfo& entry);

  /// Drops entries older than the TTL. Returns how many expired.
  std::size_t expire(SimTime now);

  [[nodiscard]] bool contains(const LostEntryInfo& entry) const;
  [[nodiscard]] std::size_t size() const { return by_key_.size(); }
  [[nodiscard]] bool empty() const { return by_key_.empty(); }

  /// Entries whose pattern is `p` (subscriber-based digests), oldest first,
  /// at most `max_entries` (0 = all).
  [[nodiscard]] std::vector<LostEntryInfo> entries_for_pattern(
      Pattern p, std::size_t max_entries) const;

  /// As above into a caller-owned scratch buffer (cleared first) — pull
  /// rounds build one digest per round per node.
  void entries_for_pattern_into(Pattern p, std::size_t max_entries,
                                std::vector<LostEntryInfo>& out) const;

  /// Entries whose source is `s` (publisher-based digests), oldest first.
  [[nodiscard]] std::vector<LostEntryInfo> entries_for_source(
      NodeId s, std::size_t max_entries) const;

  /// All entries, oldest first (random pull digests).
  [[nodiscard]] std::vector<LostEntryInfo> all_entries(
      std::size_t max_entries) const;

  /// Distinct patterns with at least one entry, sorted.
  [[nodiscard]] std::vector<Pattern> patterns_with_losses() const;

  /// Number of distinct patterns with at least one entry — the pull
  /// sampling population size, without materializing the vector.
  [[nodiscard]] std::size_t patterns_with_losses_count() const {
    return pattern_mask_.count();
  }
  /// The k-th distinct pattern in ascending order
  /// (k < patterns_with_losses_count()) — equals patterns_with_losses()[k].
  [[nodiscard]] Pattern pattern_with_losses_at(std::size_t k) const;

  /// Distinct sources with at least one entry, sorted.
  [[nodiscard]] std::vector<NodeId> sources_with_losses() const;

  /// Distinct sources ordered by the age of their oldest pending entry
  /// (oldest first), keeping only those accepted by `pred`; at most
  /// `max_sources`.
  [[nodiscard]] std::vector<NodeId> oldest_sources(
      std::size_t max_sources,
      const std::function<bool(NodeId)>& pred) const;

  /// Forgets every pending entry (cold restart). Counters are kept.
  void clear();

  struct Stats {
    std::uint64_t added = 0;
    std::uint64_t recovered = 0;  ///< removed because the event arrived
    std::uint64_t expired = 0;
    std::uint64_t overflowed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Node {
    LostEntryInfo info;
    SimTime detected_at;
  };
  struct KeyHash {
    std::size_t operator()(const LostEntryInfo& k) const noexcept {
      std::uint64_t x = (static_cast<std::uint64_t>(k.source.value()) << 32) ^
                        k.pattern.value();
      x ^= k.seq.value() * 0x9e3779b97f4a7c15ULL;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };

  template <typename Pred>
  [[nodiscard]] std::vector<LostEntryInfo> collect(
      Pred&& pred, std::size_t max_entries) const;

  void note_added(Pattern p);
  void note_removed(Pattern p);
  /// True if no entry can possibly have this pattern — lets remove() (one
  /// call per pattern of every received event, overwhelmingly misses)
  /// skip the hash lookup. test() is false beyond the mask's width, so any
  /// universe size is covered.
  [[nodiscard]] bool surely_absent(Pattern p) const {
    return !pattern_mask_.test(p);
  }

  std::size_t capacity_;
  Duration ttl_;
  std::list<Node> order_;  // oldest first
  std::unordered_map<LostEntryInfo, std::list<Node>::iterator, KeyHash>
      by_key_;
  /// Distinct-pattern summary: a bit per pattern with >= 1 entry plus
  /// per-pattern entry counts (so the bit can be cleared on last removal).
  /// Both the width-dynamic mask and the counts vector grow with the
  /// highest pattern value seen, so any universe size stays on this path.
  PatternSet pattern_mask_;
  std::vector<std::uint32_t> pattern_counts_;
  Stats stats_;
};

}  // namespace epicast
