// epicast — shared machinery of the pull algorithms (§III-B).
//
// All pull variants are reactive: they detect losses from per-(source,
// pattern) sequence gaps, keep the missing triples in the Lost buffer, and
// gossip negative digests. They differ only in how a round *steers* the
// digest — towards subscribers, towards the publisher, randomly, or a
// probabilistic mix — so the detection, bookkeeping, and digest handling
// live here and every variant implements just its round.
//
// A dispatcher receiving any pull digest serves what it can from its cache
// (replying out-of-band directly to the gossiper) and forwards only the
// still-unresolved remainder — the "short-circuit" effect the paper credits
// for pull's low overhead (§IV-E).
#pragma once

#include "epicast/gossip/loss_detector.hpp"
#include "epicast/gossip/lost_buffer.hpp"
#include "epicast/gossip/protocol.hpp"
#include "epicast/gossip/routes_buffer.hpp"

namespace epicast {

class PullProtocolBase : public GossipProtocolBase {
 public:
  PullProtocolBase(Dispatcher& dispatcher, GossipConfig config);

  /// Extends caching with loss detection (locally subscribed patterns
  /// only), Lost-buffer reconciliation, and route recording.
  void on_event(const EventPtr& event, const EventContext& ctx) override;

  /// Cold restarts additionally drop the pull bookkeeping: loss watermarks
  /// (losses across the outage become undetectable — the paper's
  /// first-contact rule applies anew), pending losses, and stored routes.
  void on_restart(fault::RestartPolicy policy) override;

  /// Warm-restart restore: beyond refilling the cache, seeds the loss
  /// watermarks from the snapshot's per-(source, pattern) sequence numbers.
  /// Without this the relaunched process would re-baseline on the first
  /// live event and the whole outage window would be undetectable.
  void preload_cache(const std::vector<EventPtr>& events) override;

  /// Anti-entropy via heartbeat watermarks: a neighbour's mark beyond this
  /// node's expectation for a locally subscribed stream reveals losses the
  /// gap detector cannot see — the tail of a stream, a lost stream head,
  /// or an outage window with no successor event. The difference (from the
  /// current watermark, or from sequence number 1 for a stream never heard
  /// from — unlike the paper's abstract setting, history is knowable here)
  /// goes into the Lost buffer for ordinary pull recovery, clamped by
  /// max_gap_report.
  void on_stream_marks(const std::vector<StreamMark>& marks) override;

  [[nodiscard]] const LostBuffer& lost() const { return lost_; }
  [[nodiscard]] const LossDetector& detector() const { return detector_; }
  [[nodiscard]] const RoutesBuffer& routes() const { return routes_; }

 protected:
  /// One subscriber-based round: a digest of losses for one locally
  /// subscribed pattern, routed along that pattern's subscription routes.
  /// Returns false if there was nothing to ask for.
  bool round_subscriber();

  /// One publisher-based round: a digest of losses from one source, routed
  /// back along the recorded route towards that publisher.
  bool round_publisher();

  /// Handles all pull digest kinds (subscriber, publisher, random): serve
  /// from cache, reply, forward the remainder.
  void handle_digest(NodeId from, const GossipMessage& msg) override;

  LossDetector detector_;
  LostBuffer lost_;
  RoutesBuffer routes_;

 private:
  void handle_subscriber_digest(NodeId from,
                                const SubscriberPullDigestMessage& msg);
  void handle_publisher_digest(const PublisherPullDigestMessage& msg);
  void handle_random_digest(NodeId from, const RandomPullDigestMessage& msg);

  /// Sends a publisher-bound digest to the next hop of its route: over the
  /// overlay if still a neighbour, out-of-band otherwise (the recorded
  /// route may predate a reconfiguration).
  void forward_towards_publisher(NodeId gossiper, NodeId source,
                                 std::vector<LostEntryInfo> wanted,
                                 std::vector<NodeId> route, bool originated);

  /// Retry hardening: schedules a silence check for an originated digest —
  /// if every wanted entry is still lost after the request timeout, the
  /// exchange produced nothing and each target is noted as silent.
  void watch_digest(const std::vector<NodeId>& targets,
                    const std::vector<LostEntryInfo>& wanted);
};

}  // namespace epicast
