// epicast — shared machinery of the pull algorithms (§III-B).
//
// All pull variants are reactive: they detect losses from per-(source,
// pattern) sequence gaps, keep the missing triples in the Lost buffer, and
// gossip negative digests. They differ only in how a round *steers* the
// digest — towards subscribers, towards the publisher, randomly, or a
// probabilistic mix — so the detection, bookkeeping, and digest handling
// live here and every variant implements just its round.
//
// A dispatcher receiving any pull digest serves what it can from its cache
// (replying out-of-band directly to the gossiper) and forwards only the
// still-unresolved remainder — the "short-circuit" effect the paper credits
// for pull's low overhead (§IV-E).
#pragma once

#include "epicast/gossip/loss_detector.hpp"
#include "epicast/gossip/lost_buffer.hpp"
#include "epicast/gossip/protocol.hpp"
#include "epicast/gossip/routes_buffer.hpp"

namespace epicast {

class PullProtocolBase : public GossipProtocolBase {
 public:
  PullProtocolBase(Dispatcher& dispatcher, GossipConfig config);

  /// Extends caching with loss detection (locally subscribed patterns
  /// only), Lost-buffer reconciliation, and route recording.
  void on_event(const EventPtr& event, const EventContext& ctx) override;

  /// Cold restarts additionally drop the pull bookkeeping: loss watermarks
  /// (losses across the outage become undetectable — the paper's
  /// first-contact rule applies anew), pending losses, and stored routes.
  void on_restart(fault::RestartPolicy policy) override;

  [[nodiscard]] const LostBuffer& lost() const { return lost_; }
  [[nodiscard]] const LossDetector& detector() const { return detector_; }
  [[nodiscard]] const RoutesBuffer& routes() const { return routes_; }

 protected:
  /// One subscriber-based round: a digest of losses for one locally
  /// subscribed pattern, routed along that pattern's subscription routes.
  /// Returns false if there was nothing to ask for.
  bool round_subscriber();

  /// One publisher-based round: a digest of losses from one source, routed
  /// back along the recorded route towards that publisher.
  bool round_publisher();

  /// Handles all pull digest kinds (subscriber, publisher, random): serve
  /// from cache, reply, forward the remainder.
  void handle_digest(NodeId from, const GossipMessage& msg) override;

  LossDetector detector_;
  LostBuffer lost_;
  RoutesBuffer routes_;

 private:
  void handle_subscriber_digest(NodeId from,
                                const SubscriberPullDigestMessage& msg);
  void handle_publisher_digest(const PublisherPullDigestMessage& msg);
  void handle_random_digest(NodeId from, const RandomPullDigestMessage& msg);

  /// Sends a publisher-bound digest to the next hop of its route: over the
  /// overlay if still a neighbour, out-of-band otherwise (the recorded
  /// route may predate a reconfiguration).
  void forward_towards_publisher(NodeId gossiper, NodeId source,
                                 std::vector<LostEntryInfo> wanted,
                                 std::vector<NodeId> route, bool originated);

  /// Retry hardening: schedules a silence check for an originated digest —
  /// if every wanted entry is still lost after the request timeout, the
  /// exchange produced nothing and each target is noted as silent.
  void watch_digest(const std::vector<NodeId>& targets,
                    const std::vector<LostEntryInfo>& wanted);
};

}  // namespace epicast
