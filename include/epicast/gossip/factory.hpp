// epicast — the single construction point for gossip wire messages.
//
// Every digest, request, and reply the recovery protocols emit is built
// here, so the wire-level concerns live in one place: the nominal size the
// paper's accounting assigns (GossipConfig::gossip_message_bytes), and —
// because every product is a codec-encodable Message — the byte-accurate
// frame size SizingMode::Wire charges via Message::wire_size_bytes().
// When constructed with a MessagePool (the scenario path hands it the
// Simulator's), every product is pool-allocated via make_pooled; without
// one it falls back to std::make_shared (standalone/test construction).
// Future wire features (MTU fragmentation, digest batching) hook in here
// without touching the protocol logic.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/message_pool.hpp"
#include "epicast/gossip/messages.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

class GossipMessageFactory {
 public:
  /// `self` is the owning dispatcher — the gossiper of every message that
  /// originates locally (requests, replies, round-0 digests). `pool`, when
  /// given, must outlive the factory (the Simulator's pool does).
  GossipMessageFactory(NodeId self, std::size_t nominal_bytes,
                       const MessagePool* pool = nullptr)
      : self_(self), nominal_bytes_(nominal_bytes), pool_(pool) {}

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] std::size_t nominal_bytes() const { return nominal_bytes_; }

  /// Digests carry an explicit `gossiper`: forwarding preserves the
  /// originator while the frame travels the tree.
  [[nodiscard]] MessagePtr push_digest(NodeId gossiper, Pattern pattern,
                                       std::vector<EventId> ids,
                                       std::uint32_t hops) const {
    return build<PushDigestMessage>(gossiper, nominal_bytes_, pattern,
                                    std::move(ids), hops);
  }

  [[nodiscard]] MessagePtr subscriber_pull_digest(
      NodeId gossiper, Pattern pattern, std::vector<LostEntryInfo> wanted,
      std::uint32_t hops) const {
    return build<SubscriberPullDigestMessage>(gossiper, nominal_bytes_,
                                              pattern, std::move(wanted),
                                              hops);
  }

  [[nodiscard]] MessagePtr publisher_pull_digest(
      NodeId gossiper, NodeId source, std::vector<LostEntryInfo> wanted,
      std::vector<NodeId> route) const {
    return build<PublisherPullDigestMessage>(gossiper, nominal_bytes_, source,
                                             std::move(wanted),
                                             std::move(route));
  }

  [[nodiscard]] MessagePtr random_pull_digest(NodeId gossiper,
                                              std::vector<LostEntryInfo> wanted,
                                              std::uint32_t hops) const {
    return build<RandomPullDigestMessage>(gossiper, nominal_bytes_,
                                          std::move(wanted), hops);
  }

  [[nodiscard]] MessagePtr request(std::vector<EventId> ids) const {
    return build<RecoveryRequestMessage>(self_, nominal_bytes_,
                                         std::move(ids));
  }

  [[nodiscard]] MessagePtr reply(std::vector<EventPtr> events) const {
    return build<RecoveryReplyMessage>(self_, nominal_bytes_,
                                       std::move(events));
  }

 private:
  template <typename T, typename... Args>
  [[nodiscard]] MessagePtr build(Args&&... args) const {
    if (pool_ != nullptr) {
      return make_pooled<T>(*pool_, std::forward<Args>(args)...);
    }
    return std::make_shared<T>(std::forward<Args>(args)...);
  }

  NodeId self_;
  std::size_t nominal_bytes_;
  const MessagePool* pool_;
};

}  // namespace epicast
