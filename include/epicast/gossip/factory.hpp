// epicast — the single construction point for gossip wire messages.
//
// Every digest, request, and reply the recovery protocols emit is built
// here, so the wire-level concerns live in one place: the nominal size the
// paper's accounting assigns (GossipConfig::gossip_message_bytes), and —
// because every product is a codec-encodable Message — the byte-accurate
// frame size SizingMode::Wire charges via Message::wire_size_bytes().
// Future wire features (MTU fragmentation, digest batching) hook in here
// without touching the protocol logic.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/gossip/messages.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

class GossipMessageFactory {
 public:
  /// `self` is the owning dispatcher — the gossiper of every message that
  /// originates locally (requests, replies, round-0 digests).
  GossipMessageFactory(NodeId self, std::size_t nominal_bytes)
      : self_(self), nominal_bytes_(nominal_bytes) {}

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] std::size_t nominal_bytes() const { return nominal_bytes_; }

  /// Digests carry an explicit `gossiper`: forwarding preserves the
  /// originator while the frame travels the tree.
  [[nodiscard]] MessagePtr push_digest(NodeId gossiper, Pattern pattern,
                                       std::vector<EventId> ids,
                                       std::uint32_t hops) const {
    return std::make_shared<PushDigestMessage>(gossiper, nominal_bytes_,
                                               pattern, std::move(ids), hops);
  }

  [[nodiscard]] MessagePtr subscriber_pull_digest(
      NodeId gossiper, Pattern pattern, std::vector<LostEntryInfo> wanted,
      std::uint32_t hops) const {
    return std::make_shared<SubscriberPullDigestMessage>(
        gossiper, nominal_bytes_, pattern, std::move(wanted), hops);
  }

  [[nodiscard]] MessagePtr publisher_pull_digest(
      NodeId gossiper, NodeId source, std::vector<LostEntryInfo> wanted,
      std::vector<NodeId> route) const {
    return std::make_shared<PublisherPullDigestMessage>(
        gossiper, nominal_bytes_, source, std::move(wanted), std::move(route));
  }

  [[nodiscard]] MessagePtr random_pull_digest(NodeId gossiper,
                                              std::vector<LostEntryInfo> wanted,
                                              std::uint32_t hops) const {
    return std::make_shared<RandomPullDigestMessage>(
        gossiper, nominal_bytes_, std::move(wanted), hops);
  }

  [[nodiscard]] MessagePtr request(std::vector<EventId> ids) const {
    return std::make_shared<RecoveryRequestMessage>(self_, nominal_bytes_,
                                                    std::move(ids));
  }

  [[nodiscard]] MessagePtr reply(std::vector<EventPtr> events) const {
    return std::make_shared<RecoveryReplyMessage>(self_, nominal_bytes_,
                                                  std::move(events));
  }

 private:
  NodeId self_;
  std::size_t nominal_bytes_;
};

}  // namespace epicast
