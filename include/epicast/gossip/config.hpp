// epicast — configuration of the epidemic recovery layer.
//
// Names follow the paper's parameter table (Fig. 2): gossip interval T,
// buffer size β, fan-out probability P_forward, and the combined-pull mixing
// probability P_source. Extensions beyond the paper (cache eviction policy,
// adaptive interval) are opt-in and default to the paper's behaviour.
#pragma once

#include <cstddef>
#include <cstdint>

#include "epicast/sim/time.hpp"

namespace epicast {

/// The recovery algorithms evaluated in the paper (§IV).
enum class Algorithm {
  NoRecovery,      ///< best-effort baseline
  Push,            ///< proactive push, positive digests
  SubscriberPull,  ///< reactive pull steered towards subscribers
  PublisherPull,   ///< reactive pull steered towards the publisher
  CombinedPull,    ///< per-round mix of the two pulls (P_source)
  RandomPull,      ///< control: gossip routed entirely at random
};

[[nodiscard]] const char* to_string(Algorithm a);

/// Cache eviction policies; the paper uses FIFO (§IV-A), the others exist
/// for the ablation benchmark.
enum class CachePolicy { Fifo, Lru, Random };

[[nodiscard]] const char* to_string(CachePolicy p);

struct AdaptiveIntervalConfig {
  /// Off by default — the paper suggests adaptivity as future work (§IV-E,
  /// ref [14]); this implements that suggestion.
  bool enabled = false;
  Duration min_interval = Duration::millis(10);
  Duration max_interval = Duration::millis(200);
  /// Multiplicative back-off applied while the protocol sees no loss.
  double backoff_factor = 1.5;
};

struct GossipConfig {
  /// T: time between two gossip rounds (Fig. 2 default 0.03 s).
  Duration interval = Duration::millis(30);

  /// β: events held in the retransmission buffer (Fig. 2 default 1500).
  std::size_t buffer_size = 1500;

  /// P_forward: probability that a gossip digest is forwarded to each
  /// eligible neighbour (value unspecified in the paper; see DESIGN.md).
  double forward_probability = 0.5;

  /// P_source: in combined pull, probability of running a publisher-based
  /// round instead of a subscriber-based one.
  double source_probability = 0.5;

  /// Nominal wire size of every gossip message. The paper's overhead charts
  /// assume gossip and event messages have equal size (§IV-E).
  std::size_t gossip_message_bytes = 200;

  /// Cap on digest entries (0 = unlimited, the paper's implicit choice).
  std::size_t max_digest_entries = 0;

  /// Publisher-based rounds send one digest per source (as in the paper);
  /// this many distinct sources, oldest pending loss first, are served per
  /// round. With one source per round a dispatcher cannot cycle through all
  /// N publishers within the loss TTL under the paper's high-load scenario;
  /// 3 restores the capacity balance (see DESIGN.md).
  std::size_t publisher_sources_per_round = 2;

  /// Publisher-bound digests traverse at most this many hops of the stored
  /// route (harvesting short-circuit hits near the gossiper), then jump
  /// out-of-band directly to the publisher. Reflects the paper's own
  /// observation that a stale route is likely to share "at least the first
  /// portion or, in the worst case, the publisher" (§III-B).
  std::size_t publisher_route_hops = 2;

  /// Safety TTL for digest propagation along the tree.
  std::uint32_t max_hops = 32;

  /// Loss-buffer entries older than this are abandoned.
  Duration lost_entry_ttl = Duration::seconds(5.0);

  /// Capacity of the Lost buffer.
  std::size_t lost_capacity = 8192;

  /// Largest sequence gap reported as individual losses by one observation;
  /// larger gaps (e.g. after a long partition) are clamped to the most
  /// recent entries.
  std::uint64_t max_gap_report = 256;

  /// Cache eviction policy (paper: FIFO).
  CachePolicy cache_policy = CachePolicy::Fifo;

  /// Probabilistic cache admission — a lightweight take on the buffer
  /// optimizations the paper says it is investigating (§IV-C, ref [13]):
  /// a *subscriber* caches a received event only with this probability, so
  /// for a fixed β each cached event persists ~1/q longer while the event
  /// usually remains cached at some other subscriber or at the publisher
  /// (which always caches its own events, as publisher-based pull
  /// requires). 1.0 reproduces the paper's behaviour exactly.
  double cache_admission_probability = 1.0;

  /// Desynchronizes the first round across dispatchers (uniform in [0, T)).
  bool start_jitter = true;

  /// Pull-side fault hardening (zero = off, the paper's behaviour — and
  /// the determinism seed guards pin that default). When positive, every
  /// out-of-band retransmission request is tracked: ids still unseen after
  /// this timeout count a timeout, are re-requested with exponential
  /// backoff (request_backoff, at most request_max_retries times), then
  /// abandoned. Digest exchanges that produce nothing within the timeout
  /// mark their targets as silent; rounds then steer around peers with two
  /// consecutive timeouts (crash-aware re-selection).
  Duration request_timeout = Duration::zero();
  std::uint32_t request_max_retries = 3;
  double request_backoff = 2.0;

  AdaptiveIntervalConfig adaptive;
};

}  // namespace epicast
