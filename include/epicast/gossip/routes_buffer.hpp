// epicast — the Routes buffer (§III-B, Publisher-Based Pull).
//
// Publisher-based pull needs a way back to each publisher. Event messages
// record the dispatchers they traverse; for every source, this buffer keeps
// the reverse of the most recently observed route ("e.g., based on the route
// information stored in the event most recently received from it"). The
// stored route may be stale after a reconfiguration — the algorithm
// tolerates that, since at worst the final element (the publisher itself)
// is still right.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "epicast/common/ids.hpp"

namespace epicast {

class RoutesBuffer {
 public:
  /// Records the route of an event received from `source`. `forward_route`
  /// is as carried by the event message: publisher first, last forwarder
  /// last (the receiving dispatcher itself is not included). Empty routes
  /// are ignored.
  void update(NodeId source, const std::vector<NodeId>& forward_route);

  /// The way back to `source`: first the most recent upstream hop, …,
  /// finally the publisher itself. Empty if unknown.
  [[nodiscard]] const std::vector<NodeId>& route_to(NodeId source) const;

  [[nodiscard]] bool knows(NodeId source) const {
    return routes_.contains(source);
  }
  [[nodiscard]] std::size_t size() const { return routes_.size(); }

  /// Sources with a known route, sorted (deterministic sampling).
  [[nodiscard]] std::vector<NodeId> known_sources() const;

  /// Forgets every stored route (cold restart); routes re-learn from the
  /// next events received.
  void clear() { routes_.clear(); }

 private:
  std::unordered_map<NodeId, std::vector<NodeId>> routes_;
  std::vector<NodeId> empty_;
};

}  // namespace epicast
