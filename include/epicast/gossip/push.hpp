// epicast — the Push algorithm (§III-B).
//
// Proactive gossip with positive digests. Each round the gossiper picks a
// random pattern p from its *whole* subscription table (local subscriptions
// and routes alike — being on a route towards a subscriber is enough), puts
// the ids of all cached events matching p in a digest, and sends it along
// the dispatching tree as if it were an event matching p, except that each
// hop forwards only to a P_forward-random subset of the neighbours
// subscribed to p. A receiver subscribed to p requests the ids it has never
// seen over the out-of-band channel; the gossiper replies with the events.
#pragma once

#include "epicast/gossip/protocol.hpp"

namespace epicast {

class PushProtocol final : public GossipProtocolBase {
 public:
  PushProtocol(Dispatcher& dispatcher, GossipConfig config)
      : GossipProtocolBase(dispatcher, config) {}

  [[nodiscard]] const char* name() const override { return "push"; }

  void on_restart(fault::RestartPolicy policy) override {
    GossipProtocolBase::on_restart(policy);
    saw_request_since_round_ = false;
  }

 protected:
  bool on_round() override;
  void handle_digest(NodeId from, const GossipMessage& msg) override;
  void handle_request(NodeId from, const RecoveryRequestMessage& msg) override;

 private:
  /// Requests received since the previous round — the adaptive-interval
  /// activity signal for a proactive protocol.
  bool saw_request_since_round_ = false;
};

}  // namespace epicast
