// epicast — the Publisher-Based Pull algorithm (§III-B).
//
// Reactive gossip steered towards the event *source*: the gossiper keeps,
// for every publisher, the reverse of the most recent route an event from it
// travelled (RoutesBuffer) and sends the negative digest back along that
// route. Any dispatcher on the way may short-circuit the request from its
// own cache; the publisher — which caches everything it publishes — is the
// backstop. Complements subscriber-based pull precisely when a pattern has
// very few subscribers.
#pragma once

#include "epicast/gossip/pull_base.hpp"

namespace epicast {

class PublisherPullProtocol final : public PullProtocolBase {
 public:
  PublisherPullProtocol(Dispatcher& dispatcher, GossipConfig config)
      : PullProtocolBase(dispatcher, config) {}

  [[nodiscard]] const char* name() const override { return "publisher-pull"; }

 protected:
  bool on_round() override { return round_publisher(); }
};

}  // namespace epicast
