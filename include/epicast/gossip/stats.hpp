// epicast — per-protocol gossip counters, aggregatable across dispatchers.
//
// Lives in its own header (not protocol.hpp) so the recovery interface can
// expose the counters without dragging in the whole protocol machinery.
#pragma once

#include <cstdint>

namespace epicast {

struct GossipStats {
  std::uint64_t rounds = 0;
  /// Rounds with no recovery demand: for pulls, no pending losses; for
  /// push, no requests received since the previous round.
  std::uint64_t rounds_skipped = 0;
  std::uint64_t digests_originated = 0;
  std::uint64_t digests_forwarded = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t events_served = 0;     ///< events retransmitted to others
  std::uint64_t events_recovered = 0;  ///< new events obtained via gossip
  std::uint64_t reply_duplicates = 0;  ///< replies carrying known events
  /// Retry hardening (GossipConfig::request_timeout > 0; all three stay 0
  /// otherwise): exchanges that produced nothing within the timeout,
  /// requests re-sent after a timeout, and requests given up on after
  /// request_max_retries.
  std::uint64_t request_timeouts = 0;
  std::uint64_t request_retries = 0;
  std::uint64_t requests_abandoned = 0;

  GossipStats& operator+=(const GossipStats& o) {
    rounds += o.rounds;
    rounds_skipped += o.rounds_skipped;
    digests_originated += o.digests_originated;
    digests_forwarded += o.digests_forwarded;
    requests_sent += o.requests_sent;
    replies_sent += o.replies_sent;
    events_served += o.events_served;
    events_recovered += o.events_recovered;
    reply_duplicates += o.reply_duplicates;
    request_timeouts += o.request_timeouts;
    request_retries += o.request_retries;
    requests_abandoned += o.requests_abandoned;
    return *this;
  }
};

}  // namespace epicast
