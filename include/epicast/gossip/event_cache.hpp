// epicast — the retransmission buffer (β in the paper).
//
// Each dispatcher keeps a bounded cache of events "for which it is either
// the publisher or a subscriber" (§IV-A); retransmission requests are served
// from it. The paper uses FIFO eviction; LRU and random eviction are
// provided for the cache-policy ablation.
//
// Lookup paths (all O(1) expected):
//   * by event id        — serves push requests;
//   * by (source, pattern, seq) — serves pull digests;
//   * ids matching a pattern    — builds push digests (amortized via a
//     per-pattern index, purged eagerly on eviction and lazily on lookup).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/rng.hpp"
#include "epicast/gossip/config.hpp"
#include "epicast/metrics/hotpath_profiler.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

class EventCache {
 public:
  EventCache(std::size_t capacity, CachePolicy policy, Rng rng);

  /// Optional hot-path profiler: every public cache operation counts one
  /// HotPhase::CacheOp. Pass nullptr to detach.
  void set_profiler(HotpathProfiler* profiler) { profiler_ = profiler; }

  /// Inserts an event, evicting per policy if full. Returns false (and does
  /// nothing) if the event is already cached. Precondition: capacity > 0.
  bool insert(const EventPtr& event);

  [[nodiscard]] bool contains(const EventId& id) const;

  /// Event by id, or nullptr. Counts a hit/miss; refreshes recency for LRU.
  [[nodiscard]] EventPtr get(const EventId& id);

  /// Event that the source tagged with (pattern, seq), or nullptr.
  [[nodiscard]] EventPtr find(NodeId source, Pattern pattern, SeqNo seq);

  /// Ids of cached events matching `pattern`, oldest first; at most
  /// `max_entries` (0 = all).
  [[nodiscard]] std::vector<EventId> ids_matching(Pattern pattern,
                                                  std::size_t max_entries);

  /// As above into a caller-owned scratch buffer (cleared first) — the push
  /// round builds one digest per round per node.
  void ids_matching_into(Pattern pattern, std::size_t max_entries,
                         std::vector<EventId>& out);

  /// Total entries across the per-pattern id index, live + stale
  /// (introspection: tests pin the eager-purge bound on this).
  [[nodiscard]] std::size_t pattern_index_entries() const;

  [[nodiscard]] std::size_t size() const { return by_id_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] CachePolicy policy() const { return policy_; }

  /// Estimated bytes owned by the cache's containers (slots + indexes,
  /// excluding the shared events themselves) — per-component memory
  /// accounting for the scale figures.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Drops every cached event and all indexes (cold restart). Counters are
  /// kept — a crash does not un-happen the traffic that preceded it.
  void clear();

  /// Every cached event in eviction order (next victim first). Warm-restart
  /// snapshots serialize this; re-inserting the list into an empty cache of
  /// the same capacity reproduces the eviction order exactly.
  [[nodiscard]] std::vector<EventPtr> snapshot_events() const;

  struct Stats {
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct SpKey {
    NodeId source;
    Pattern pattern;
    SeqNo seq;
    friend constexpr auto operator<=>(const SpKey&, const SpKey&) = default;
  };
  struct SpKeyHash {
    std::size_t operator()(const SpKey& k) const noexcept;
  };

  void evict_one();
  void drop(const EventId& id);
  void index_patterns(const EventPtr& event);
  void unindex_patterns(const EventData& event);
  /// get() without the profiler hook (shared by get and find).
  [[nodiscard]] EventPtr lookup(const EventId& id);

  static constexpr std::uint32_t kNil = ~std::uint32_t{0};
  void link_back(std::uint32_t slot);
  void unlink(std::uint32_t slot);

  std::size_t capacity_;
  CachePolicy policy_;
  Rng rng_;
  Stats stats_;
  HotpathProfiler* profiler_ = nullptr;

  /// Eviction-order storage: a flat slot vector threaded with an intrusive
  /// doubly-linked index list (head_ = next victim for FIFO/LRU, tail_ =
  /// newest). Slots recycle through free_, so the steady state allocates
  /// nothing per insert/evict — the caches' insert-evict churn at full β is
  /// the hottest allocation site a scenario has. LRU refresh is an
  /// unlink/link_back pair; Random evicts a uniform element of the dense
  /// pool below.
  struct Node {
    EventPtr event;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::unordered_map<EventId, std::uint32_t> by_id_;
  /// For Random eviction: dense id vector enabling O(1) uniform sampling.
  std::vector<EventId> random_pool_;
  std::unordered_map<EventId, std::size_t> random_pos_;

  std::unordered_map<SpKey, EventId, SpKeyHash> by_source_pattern_;
  /// Per-pattern id index, insertion-ordered. Stale (evicted) ids are
  /// purged eagerly from the deque fronts on every eviction — under FIFO
  /// the victim *is* the front, so the index stays tight at small β — and
  /// lazily elsewhere in ids_matching() (LRU/random scatter).
  std::unordered_map<Pattern, std::deque<EventId>> by_pattern_;
};

}  // namespace epicast
