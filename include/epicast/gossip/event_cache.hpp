// epicast — the retransmission buffer (β in the paper).
//
// Each dispatcher keeps a bounded cache of events "for which it is either
// the publisher or a subscriber" (§IV-A); retransmission requests are served
// from it. The paper uses FIFO eviction; LRU and random eviction are
// provided for the cache-policy ablation.
//
// Lookup paths (all O(1) expected):
//   * by event id        — serves push requests;
//   * by (source, pattern, seq) — serves pull digests;
//   * ids matching a pattern    — builds push digests (amortized via a
//     per-pattern index with lazy purge of evicted entries).
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/rng.hpp"
#include "epicast/gossip/config.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

class EventCache {
 public:
  EventCache(std::size_t capacity, CachePolicy policy, Rng rng);

  /// Inserts an event, evicting per policy if full. Returns false (and does
  /// nothing) if the event is already cached. Precondition: capacity > 0.
  bool insert(const EventPtr& event);

  [[nodiscard]] bool contains(const EventId& id) const;

  /// Event by id, or nullptr. Counts a hit/miss; refreshes recency for LRU.
  [[nodiscard]] EventPtr get(const EventId& id);

  /// Event that the source tagged with (pattern, seq), or nullptr.
  [[nodiscard]] EventPtr find(NodeId source, Pattern pattern, SeqNo seq);

  /// Ids of cached events matching `pattern`, oldest first; at most
  /// `max_entries` (0 = all).
  [[nodiscard]] std::vector<EventId> ids_matching(Pattern pattern,
                                                  std::size_t max_entries);

  [[nodiscard]] std::size_t size() const { return by_id_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] CachePolicy policy() const { return policy_; }

  struct Stats {
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct SpKey {
    NodeId source;
    Pattern pattern;
    SeqNo seq;
    friend constexpr auto operator<=>(const SpKey&, const SpKey&) = default;
  };
  struct SpKeyHash {
    std::size_t operator()(const SpKey& k) const noexcept;
  };

  void evict_one();
  void drop(const EventId& id);
  void index_patterns(const EventPtr& event);
  void unindex_patterns(const EventData& event);

  std::size_t capacity_;
  CachePolicy policy_;
  Rng rng_;
  Stats stats_;

  /// Eviction order. FIFO: push_back on insert, evict front. LRU: also
  /// splice-to-back on access. Random: evict a uniformly random element
  /// (found via by_id_ → iterator).
  std::list<EventPtr> order_;
  std::unordered_map<EventId, std::list<EventPtr>::iterator> by_id_;
  /// For Random eviction: dense id vector enabling O(1) uniform sampling.
  std::vector<EventId> random_pool_;
  std::unordered_map<EventId, std::size_t> random_pos_;

  std::unordered_map<SpKey, EventId, SpKeyHash> by_source_pattern_;
  /// Per-pattern id index, insertion-ordered; entries are lazily purged when
  /// the event has been evicted.
  std::unordered_map<Pattern, std::deque<EventId>> by_pattern_;
};

}  // namespace epicast
