// epicast — adaptive gossip interval (extension).
//
// The paper notes (§IV-E) that push's proactive gossiping wastes bandwidth
// when losses are rare, and suggests adapting T dynamically "according to
// the current state of the system", citing PlanetP [14]. This controller
// implements that suggestion with a standard AIMD-flavoured rule:
//   * a round that observed recovery activity snaps T back to min_interval;
//   * an idle round multiplies T by backoff_factor, up to max_interval.
// Disabled (the paper's fixed-T behaviour) by default.
#pragma once

#include "epicast/gossip/config.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

class AdaptiveIntervalController {
 public:
  AdaptiveIntervalController(const AdaptiveIntervalConfig& config,
                             Duration base_interval);

  /// Reports the outcome of a round; returns the interval to the next one.
  Duration next(bool had_activity);

  [[nodiscard]] Duration current() const { return current_; }
  [[nodiscard]] bool enabled() const { return config_.enabled; }

 private:
  AdaptiveIntervalConfig config_;
  Duration base_;
  Duration current_;
};

}  // namespace epicast
