// epicast — common machinery of the epidemic recovery protocols (§III-B).
//
// All algorithms share: a gossip-round timer (interval T, desynchronized
// across dispatchers), the retransmission buffer (EventCache, size β), the
// P_forward fan-out rule, and the out-of-band request/reply exchange.
// Concrete algorithms implement on_round() and handle_digest().
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "epicast/gossip/adaptive_interval.hpp"
#include "epicast/gossip/config.hpp"
#include "epicast/gossip/event_cache.hpp"
#include "epicast/gossip/factory.hpp"
#include "epicast/gossip/messages.hpp"
#include "epicast/gossip/stats.hpp"
#include "epicast/metrics/hotpath_profiler.hpp"
#include "epicast/pubsub/dispatcher.hpp"
#include "epicast/pubsub/recovery.hpp"

namespace epicast {

class GossipProtocolBase : public RecoveryProtocol {
 public:
  GossipProtocolBase(Dispatcher& dispatcher, GossipConfig config);

  void start() override;
  void stop() override;

  /// Cold restarts drop the retransmission buffer and invalidate pending
  /// retry deadlines (restart-epoch guard); peer-health observations are
  /// discarded either way — the node's own outage garbles them.
  void on_restart(fault::RestartPolicy policy) override;

  /// External liveness signals (the daemon's failure detector) feed the
  /// same peer-health table the retry machinery uses, so a suspect peer is
  /// steered around during round target selection whichever layer noticed
  /// it first.
  void on_peer_alive(NodeId peer) override;
  void on_peer_suspected(NodeId peer) override;

  /// Warm-restart snapshot restore: inserts `events` into the
  /// retransmission buffer (normal eviction applies).
  void preload_cache(const std::vector<EventPtr>& events) override;

  /// Rotating slice of the stream watermarks this node has witnessed (every
  /// event crossing the dispatcher advances them, cached or not — a mark
  /// means "this seq exists", not "I can serve it"). Piggybacked on
  /// heartbeats by the daemon's failure detector.
  std::size_t stream_marks_into(std::size_t cursor, std::size_t max_entries,
                                std::vector<StreamMark>& out) const override;

  /// Default behaviour: cache the event iff this dispatcher is responsible
  /// for it — it is the publisher or a local subscriber (§IV-A). Pull
  /// protocols extend this with loss detection and route recording.
  void on_event(const EventPtr& event, const EventContext& ctx) override;

  /// Dispatches by GossipKind to handle_digest / handle_request /
  /// handle_reply.
  void on_gossip(NodeId from, const MessagePtr& msg) final;

  [[nodiscard]] EventCache& cache() { return cache_; }
  [[nodiscard]] const GossipConfig& config() const { return cfg_; }
  [[nodiscard]] Duration current_interval() const {
    return adaptive_.enabled() ? adaptive_.current() : cfg_.interval;
  }

  /// Counters live in gossip/stats.hpp (GossipStats) so they can be summed
  /// across dispatchers; the alias keeps existing call sites compiling.
  using Stats = GossipStats;
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const GossipStats* gossip_stats() const override {
    return &stats_;
  }
  [[nodiscard]] const EventCache* event_cache() const override {
    return &cache_;
  }

 protected:
  /// One gossip round. Return true if the round did useful work (drives the
  /// adaptive-interval extension); return false for skipped rounds.
  virtual bool on_round() = 0;

  /// A digest arrived (push or pull flavours).
  virtual void handle_digest(NodeId from, const GossipMessage& msg) = 0;

  /// A request for cached events arrived; default serves from the cache.
  virtual void handle_request(NodeId from, const RecoveryRequestMessage& msg);

  /// A reply arrived; injects its events into the dispatcher.
  void handle_reply(const RecoveryReplyMessage& msg);

  /// Serves a negative digest from the cache: replies out-of-band to the
  /// gossiper with every wanted event found, returns the remainder. Shared
  /// by the pull digest handlers and by cross-protocol tolerance (a node
  /// running a different algorithm can still serve what it holds).
  std::vector<LostEntryInfo> serve_from_cache(
      NodeId gossiper, const std::vector<LostEntryInfo>& wanted);

  /// Keeps each candidate independently with probability P_forward.
  /// With `ensure_progress` (used when a digest is "propagated along the
  /// dispatching tree as if it were a normal event message", §III-B), a
  /// non-empty candidate set never yields an empty subset: P_forward thins
  /// the fan-out at branches but cannot stall the digest on a chain.
  [[nodiscard]] std::vector<NodeId> fanout(std::vector<NodeId> candidates,
                                           bool ensure_progress);

  /// As fanout() into a caller-owned buffer (cleared first; must not alias
  /// `candidates`). Identical RNG draw sequence.
  void fanout_into(std::span<const NodeId> candidates, bool ensure_progress,
                   std::vector<NodeId>& out);

  void send_digest(NodeId to, MessagePtr msg, bool originated);
  void send_request(NodeId to, std::vector<EventId> ids);
  void send_reply(NodeId to, std::vector<EventPtr> events);

  /// True if this dispatcher must cache the event (publisher or subscriber).
  [[nodiscard]] bool responsible_for(const EventData& event,
                                     bool local_publish) const;

  /// True when the pull-hardening machinery is active
  /// (GossipConfig::request_timeout > 0).
  [[nodiscard]] bool retry_hardening() const {
    return cfg_.request_timeout > Duration::zero();
  }
  /// Peer-health bookkeeping, meaningful only under retry_hardening():
  /// any gossip heard from a peer clears its record; a timed-out exchange
  /// increments it; two consecutive timeouts make the peer suspect.
  [[nodiscard]] bool peer_suspect(NodeId peer) const;
  void note_peer_alive(NodeId peer);
  void note_peer_timeout(NodeId peer);
  /// Removes suspect peers from `targets` — unless every target is suspect,
  /// in which case the set is left alone (a bad guess beats silence).
  void prune_suspects(std::vector<NodeId>& targets) const;

  /// Duplicate-digest suppression for cyclic overlays. §III-B propagates
  /// digests "along the dispatching tree", where every node sees a digest
  /// at most once per round; on the scale overlays the per-pattern route
  /// graph has cycles, so the same digest arrives along several paths and
  /// every copy would be re-forwarded — an exponential flood the hop TTL
  /// alone cannot tame. Returns true (caller drops the copy) iff `key` was
  /// recorded within the last half gossip interval. Origination is
  /// per-round (≥ one interval apart), so tree runs never trip this and
  /// the paper figures stay bit-identical. Keys are content hashes; a
  /// collision merely suppresses one forward.
  [[nodiscard]] bool digest_duplicate(std::uint64_t key);
  /// splitmix64-style mixer for digest keys.
  [[nodiscard]] static std::uint64_t mix_digest_key(std::uint64_t a,
                                                    std::uint64_t b);

  /// Guards deadline callbacks across restarts: a callback scheduled before
  /// a cold restart must not act on the reborn node's state.
  [[nodiscard]] std::uint64_t restart_epoch() const { return restart_epoch_; }
  /// True while the round timer runs (false while crashed or stopped).
  [[nodiscard]] bool active() const { return timer_.running(); }

  Dispatcher& d_;
  GossipConfig cfg_;
  EventCache cache_;
  /// Builds every outgoing gossip message (digests, requests, replies) —
  /// pool-allocated from the owning Simulator's MessagePool.
  GossipMessageFactory msgs_;
  Stats stats_;

  /// Per-round / per-handler scratch buffers. Safe to reuse: sends are
  /// asynchronous (the transport schedules delivery), so no callee
  /// re-enters the protocol while a round or digest handler is running.
  std::vector<NodeId> targets_scratch_;
  std::vector<NodeId> fanout_scratch_;
  std::vector<EventId> ids_scratch_;
  std::vector<LostEntryInfo> wanted_scratch_;

 private:
  void run_round();
  /// Advances the witnessed watermark for each of the event's streams.
  void note_stream_marks(const EventData& event);
  /// Schedules the deadline check for a pending request (retry hardening).
  void track_request(NodeId to, std::vector<EventId> ids,
                     std::uint32_t attempt);

  static constexpr std::uint32_t kSuspectAfterTimeouts = 2;

  HotpathProfiler& prof_;

  AdaptiveIntervalController adaptive_;
  runtime::PeriodicTimer timer_;
  /// Direct-mapped recent-digest table (see digest_duplicate()); the size
  /// must stay a power of two.
  struct DigestMark {
    std::uint64_t key = 0;
    SimTime at;
  };
  std::array<DigestMark, 128> digest_marks_{};
  /// Consecutive timed-out exchanges per peer (keyed by NodeId value);
  /// empty unless retry_hardening().
  std::unordered_map<std::uint32_t, std::uint32_t> peer_timeouts_;
  std::uint64_t restart_epoch_ = 0;
  /// Highest sequence number witnessed per (source, pattern) — the feed
  /// for stream_marks_into(). Ordered so the rotation cursor is stable;
  /// cleared on cold restart along with the cache.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
      stream_marks_;
};

/// The baseline: plain best-effort dispatching, no recovery (§IV's
/// "no recovery" curves).
class NoRecoveryProtocol final : public RecoveryProtocol {
 public:
  void on_event(const EventPtr&, const EventContext&) override {}
  void on_gossip(NodeId, const MessagePtr&) override {}
  [[nodiscard]] const char* name() const override { return "no-recovery"; }
};

/// Creates the protocol implementing `algorithm` for `dispatcher`.
[[nodiscard]] std::unique_ptr<RecoveryProtocol> make_recovery(
    Algorithm algorithm, Dispatcher& dispatcher, const GossipConfig& config);

/// True if the algorithm needs event messages to record their routes
/// (publisher-based and combined pull); the scenario layer uses this to set
/// DispatcherConfig::record_routes.
[[nodiscard]] bool algorithm_needs_routes(Algorithm algorithm);

}  // namespace epicast
