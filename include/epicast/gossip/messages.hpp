// epicast — gossip-layer wire messages (§III-B).
//
// Digests ride the overlay tree (class GossipDigest); retransmission
// requests and replies use the out-of-band channel (GossipRequest /
// GossipReply). Every gossip message reports the nominal size configured in
// GossipConfig, matching the paper's equal-size accounting assumption.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/net/message.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

/// Identifies one lost event in a negative digest: the source, the matched
/// pattern, and the per-(source, pattern) sequence number (§III-B, Pull).
struct LostEntryInfo {
  NodeId source;
  Pattern pattern;
  SeqNo seq;

  friend constexpr auto operator<=>(const LostEntryInfo&,
                                    const LostEntryInfo&) = default;
};

/// Discriminates gossip message types without RTTI.
enum class GossipKind {
  PushDigest,
  SubscriberPullDigest,
  PublisherPullDigest,
  RandomPullDigest,
  Request,
  Reply,
};

class GossipMessage : public Message {
 public:
  GossipMessage(NodeId gossiper, std::size_t nominal_bytes)
      : gossiper_(gossiper), nominal_bytes_(nominal_bytes) {}

  [[nodiscard]] virtual GossipKind kind() const = 0;
  /// The dispatcher whose gossip round originated this exchange.
  [[nodiscard]] NodeId gossiper() const { return gossiper_; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return nominal_bytes_;
  }

 private:
  NodeId gossiper_;
  std::size_t nominal_bytes_;
};

/// Push (§III-B): positive digest of cached event ids matching `pattern`,
/// routed along the tree as if it were an event matching that pattern.
class PushDigestMessage final : public GossipMessage {
 public:
  PushDigestMessage(NodeId gossiper, std::size_t nominal_bytes,
                    Pattern pattern, std::vector<EventId> ids,
                    std::uint32_t hops)
      : GossipMessage(gossiper, nominal_bytes),
        pattern_(pattern),
        ids_(std::move(ids)),
        hops_(hops) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::GossipDigest;
  }
  [[nodiscard]] GossipKind kind() const override {
    return GossipKind::PushDigest;
  }

  [[nodiscard]] Pattern pattern() const { return pattern_; }
  [[nodiscard]] const std::vector<EventId>& ids() const { return ids_; }
  [[nodiscard]] std::uint32_t hops() const { return hops_; }

 private:
  Pattern pattern_;
  std::vector<EventId> ids_;
  std::uint32_t hops_;
};

/// Subscriber-based pull (§III-B): negative digest of events the gossiper
/// is missing for `pattern`, routed along the tree like push.
class SubscriberPullDigestMessage final : public GossipMessage {
 public:
  SubscriberPullDigestMessage(NodeId gossiper, std::size_t nominal_bytes,
                              Pattern pattern,
                              std::vector<LostEntryInfo> wanted,
                              std::uint32_t hops)
      : GossipMessage(gossiper, nominal_bytes),
        pattern_(pattern),
        wanted_(std::move(wanted)),
        hops_(hops) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::GossipDigest;
  }
  [[nodiscard]] GossipKind kind() const override {
    return GossipKind::SubscriberPullDigest;
  }

  [[nodiscard]] Pattern pattern() const { return pattern_; }
  [[nodiscard]] const std::vector<LostEntryInfo>& wanted() const {
    return wanted_;
  }
  [[nodiscard]] std::uint32_t hops() const { return hops_; }

 private:
  Pattern pattern_;
  std::vector<LostEntryInfo> wanted_;
  std::uint32_t hops_;
};

/// Publisher-based pull (§III-B): negative digest for one source, routed
/// back towards the publisher along the recorded route. `route` holds the
/// hops still to visit (next hop first, publisher last).
class PublisherPullDigestMessage final : public GossipMessage {
 public:
  PublisherPullDigestMessage(NodeId gossiper, std::size_t nominal_bytes,
                             NodeId source, std::vector<LostEntryInfo> wanted,
                             std::vector<NodeId> route)
      : GossipMessage(gossiper, nominal_bytes),
        source_(source),
        wanted_(std::move(wanted)),
        route_(std::move(route)) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::GossipDigest;
  }
  [[nodiscard]] GossipKind kind() const override {
    return GossipKind::PublisherPullDigest;
  }

  [[nodiscard]] NodeId source() const { return source_; }
  [[nodiscard]] const std::vector<LostEntryInfo>& wanted() const {
    return wanted_;
  }
  [[nodiscard]] const std::vector<NodeId>& route() const { return route_; }

 private:
  NodeId source_;
  std::vector<LostEntryInfo> wanted_;
  std::vector<NodeId> route_;
};

/// Random pull (§IV): negative digest forwarded to random neighbours —
/// the control showing that steering gossip is worth the effort.
class RandomPullDigestMessage final : public GossipMessage {
 public:
  RandomPullDigestMessage(NodeId gossiper, std::size_t nominal_bytes,
                          std::vector<LostEntryInfo> wanted,
                          std::uint32_t hops)
      : GossipMessage(gossiper, nominal_bytes),
        wanted_(std::move(wanted)),
        hops_(hops) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::GossipDigest;
  }
  [[nodiscard]] GossipKind kind() const override {
    return GossipKind::RandomPullDigest;
  }

  [[nodiscard]] const std::vector<LostEntryInfo>& wanted() const {
    return wanted_;
  }
  [[nodiscard]] std::uint32_t hops() const { return hops_; }

 private:
  std::vector<LostEntryInfo> wanted_;
  std::uint32_t hops_;
};

/// Out-of-band request for full events, sent to the dispatcher that
/// advertised them in a push digest.
class RecoveryRequestMessage final : public GossipMessage {
 public:
  RecoveryRequestMessage(NodeId gossiper, std::size_t nominal_bytes,
                         std::vector<EventId> ids)
      : GossipMessage(gossiper, nominal_bytes), ids_(std::move(ids)) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::GossipRequest;
  }
  [[nodiscard]] GossipKind kind() const override {
    return GossipKind::Request;
  }

  [[nodiscard]] const std::vector<EventId>& ids() const { return ids_; }

 private:
  std::vector<EventId> ids_;
};

/// Out-of-band retransmission of full events to the dispatcher that needs
/// them (the gossiper for pulls; the requester for push).
class RecoveryReplyMessage final : public GossipMessage {
 public:
  RecoveryReplyMessage(NodeId gossiper, std::size_t nominal_bytes,
                       std::vector<EventPtr> events)
      : GossipMessage(gossiper, nominal_bytes), events_(std::move(events)) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::GossipReply;
  }
  [[nodiscard]] GossipKind kind() const override { return GossipKind::Reply; }

  [[nodiscard]] const std::vector<EventPtr>& events() const {
    return events_;
  }

 private:
  std::vector<EventPtr> events_;
};

}  // namespace epicast
