// epicast — the Subscriber-Based Pull algorithm (§III-B).
//
// Reactive gossip with negative digests, steered towards other subscribers:
// the gossiper picks a locally subscribed pattern with pending losses and
// routes the digest along that pattern's subscription routes. Weak exactly
// where the paper says: when a pattern has few subscribers there is almost
// no one to gossip with.
#pragma once

#include "epicast/gossip/pull_base.hpp"

namespace epicast {

class SubscriberPullProtocol final : public PullProtocolBase {
 public:
  SubscriberPullProtocol(Dispatcher& dispatcher, GossipConfig config)
      : PullProtocolBase(dispatcher, config) {}

  [[nodiscard]] const char* name() const override { return "subscriber-pull"; }

 protected:
  bool on_round() override { return round_subscriber(); }
};

}  // namespace epicast
