// epicast — sequence-gap loss detection (§III-B, Pull).
//
// Content-based systems have no per-subject sequence numbers, so the paper
// tags every event, at its source, with a per-(source, pattern) sequence
// number. A subscriber of pattern p observes the stream of sequence numbers
// for each (source, p) it hears from; a jump reveals exactly which events
// were lost.
//
// The first event heard from a (source, pattern) initializes the expectation
// — losses before that point are undetectable, as in the paper.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "epicast/common/ids.hpp"

namespace epicast {

class LossDetector {
 public:
  /// Gaps larger than `max_gap_report` yield only the newest entries, so a
  /// long partition cannot flood the Lost buffer with unrecoverable history.
  explicit LossDetector(std::uint64_t max_gap_report);

  /// Records the reception of sequence number `seq` for (source, pattern)
  /// and returns the sequence numbers now known to be missing (possibly
  /// empty). Out-of-order receipt of an old number is not a loss.
  [[nodiscard]] std::vector<SeqNo> observe(NodeId source, Pattern pattern,
                                           SeqNo seq);

  /// Highest sequence number seen for (source, pattern), or SeqNo{0}.
  [[nodiscard]] SeqNo high_watermark(NodeId source, Pattern pattern) const;

  /// Raises the expectation for (source, pattern) to at least `seq` without
  /// reporting a gap. A warm-restarted daemon seeds its detector from the
  /// cache snapshot so the first live event after relaunch exposes the
  /// outage window as a gap instead of silently re-baselining on it.
  void seed(NodeId source, Pattern pattern, SeqNo seq);

  [[nodiscard]] std::uint64_t gaps_detected() const { return gaps_detected_; }
  [[nodiscard]] std::uint64_t streams_tracked() const {
    return static_cast<std::uint64_t>(high_.size());
  }

  /// Forgets every per-stream watermark (cold restart): the next event from
  /// each (source, pattern) re-baselines the expectation, so losses across
  /// the restart are undetectable — exactly the paper's first-contact rule.
  void reset() { high_.clear(); }

 private:
  struct Key {
    NodeId source;
    Pattern pattern;
    friend constexpr auto operator<=>(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.source.value()) << 32) ^
          k.pattern.value());
    }
  };

  std::uint64_t max_gap_report_;
  std::unordered_map<Key, std::uint64_t, KeyHash> high_;
  std::uint64_t gaps_detected_ = 0;
};

}  // namespace epicast
