// epicast — the Combined Pull algorithm (§IV).
//
// Each gossip round runs the publisher-based variant with probability
// P_source and the subscriber-based variant otherwise. The two complement
// each other — publisher steering wins when a pattern has few subscribers,
// subscriber steering when it has many — and the paper finds the mix
// performs on par with push while gossiping only on demand.
#pragma once

#include "epicast/gossip/pull_base.hpp"

namespace epicast {

class CombinedPullProtocol final : public PullProtocolBase {
 public:
  CombinedPullProtocol(Dispatcher& dispatcher, GossipConfig config)
      : PullProtocolBase(dispatcher, config) {}

  [[nodiscard]] const char* name() const override { return "combined-pull"; }

 protected:
  bool on_round() override;
};

}  // namespace epicast
