// epicast — the Random Pull control (§IV).
//
// Identical loss detection and digests as the other pulls, but the digest
// is forwarded to uniformly random neighbours with no steering at all. The
// paper uses it to show that deciding *where* to route gossip messages is
// worth the effort ("random push" is omitted, as in the paper, because its
// performance is extremely poor).
#pragma once

#include "epicast/gossip/pull_base.hpp"

namespace epicast {

class RandomPullProtocol final : public PullProtocolBase {
 public:
  RandomPullProtocol(Dispatcher& dispatcher, GossipConfig config)
      : PullProtocolBase(dispatcher, config) {}

  [[nodiscard]] const char* name() const override { return "random-pull"; }

 protected:
  bool on_round() override;
};

}  // namespace epicast
