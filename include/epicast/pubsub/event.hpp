// epicast — events and their identifiers.
//
// Following the paper's model (§IV-A), an event's content is a short
// sequence of distinct numbers, each denoting one pattern; an event matches
// a subscription iff its content contains the subscribed number.
//
// The identifier carries everything the epidemic algorithms need (§III-B):
//   * (source, source_seq) — globally unique id (footnote 3), used by push
//     digests and for duplicate suppression;
//   * for every matched pattern, the per-(source, pattern) sequence number
//     assigned at the source — the information that makes loss *detectable*
//     in a content-based system, enabling the pull algorithms.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/pattern_set.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

/// One (pattern, per-(source,pattern) sequence number) element of an event.
struct PatternSeq {
  Pattern pattern;
  SeqNo seq;

  friend constexpr auto operator<=>(const PatternSeq&,
                                    const PatternSeq&) = default;
};

/// An immutable published event. Shared by pointer throughout the system so
/// that tree fan-out, caching, and retransmission never copy the payload.
class EventData {
 public:
  EventData(EventId id, std::vector<PatternSeq> patterns,
            std::size_t payload_bytes, SimTime published_at);

  [[nodiscard]] const EventId& id() const { return id_; }
  [[nodiscard]] NodeId source() const { return id_.source; }

  /// The matched patterns with their sequence numbers. Sorted by pattern,
  /// at most a few entries (the paper assumes ≤ 3).
  [[nodiscard]] const std::vector<PatternSeq>& patterns() const {
    return patterns_;
  }

  [[nodiscard]] bool matches(Pattern p) const;

  /// The per-(source, p) sequence number, if the event matches p.
  [[nodiscard]] std::optional<SeqNo> seq_for(Pattern p) const;

  /// Bitset of the event's patterns — the matching hot path is a mask AND
  /// against SubscriptionTable's masks. The width-dynamic mask covers every
  /// pattern the event carries (it widens past the inline two words only
  /// for CLI-configured universes beyond the paper's Π ≤ 70).
  [[nodiscard]] const PatternSet& pattern_mask() const { return mask_; }

  [[nodiscard]] std::size_t payload_bytes() const { return payload_bytes_; }
  [[nodiscard]] SimTime published_at() const { return published_at_; }

 private:
  EventId id_;
  std::vector<PatternSeq> patterns_;  // sorted by pattern
  PatternSet mask_;
  std::size_t payload_bytes_;
  SimTime published_at_;
};

using EventPtr = std::shared_ptr<const EventData>;

}  // namespace epicast
