// epicast — the assembled dispatching network.
//
// Owns one Dispatcher per topology node, wires them to the transport, and
// provides the two pieces of global machinery the simulation needs:
//
//  * route rebuilding after a topological reconfiguration — the converged
//    outcome of the reconfiguration protocol of paper ref [7] (see
//    DESIGN.md, substitution table);
//  * a consistency oracle that recomputes, from global knowledge, what every
//    subscription table must contain on the current tree — used by tests to
//    verify that the distributed subscription-forwarding protocol and the
//    rebuild produce identical state.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "epicast/net/topology.hpp"
#include "epicast/net/transport.hpp"
#include "epicast/pubsub/dispatcher.hpp"
#include "epicast/runtime/sim_runtime.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {

class PubSubNetwork {
 public:
  /// Creates one dispatcher per node of `transport.topology()`. The
  /// dispatchers talk to a SimRuntime assembled here over (sim, transport);
  /// the network itself keeps direct access to both — it is sim-side
  /// machinery (oracle rebuilds, global consistency checks), not protocol
  /// code.
  PubSubNetwork(Simulator& sim, Transport& transport,
                DispatcherConfig dispatcher_config);

  /// Picks the runtime a given node's dispatcher runs on — the sharded
  /// engine maps each node to its shard-lane ShardRuntime. Returned
  /// references must outlive this network.
  using RuntimeProvider = std::function<runtime::Runtime&(NodeId)>;

  /// As above, but each dispatcher runs on `per_node(its id)` instead of
  /// the shared SimRuntime. Dispatchers are still constructed in node
  /// order, so RNG fork order is unchanged.
  PubSubNetwork(Simulator& sim, Transport& transport,
                DispatcherConfig dispatcher_config,
                const RuntimeProvider& per_node);

  /// The runtime seam the dispatchers run on (for wiring more components,
  /// e.g. the Reconfigurator, onto the same seam). With a RuntimeProvider
  /// this SimRuntime exists but is unused by the dispatchers.
  [[nodiscard]] runtime::SimRuntime& runtime() { return runtime_; }

  PubSubNetwork(const PubSubNetwork&) = delete;
  PubSubNetwork& operator=(const PubSubNetwork&) = delete;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Dispatcher& node(NodeId id);
  [[nodiscard]] const Dispatcher& node(NodeId id) const;

  /// Applies `fn` to every dispatcher.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& d : nodes_) fn(*d);
  }

  /// Installs the same delivery listener on every dispatcher.
  void set_delivery_listener(Dispatcher::DeliveryListener listener);

  /// Rebuilds every subscription table from local subscriptions and the
  /// *current* topology: clears all routes, then installs, for every
  /// (subscriber, pattern), the reverse-path entries along the tree; also
  /// reconstructs the duplicate-suppression state so later dynamic
  /// (un)subscriptions keep working. Call after a reconfiguration repair.
  void rebuild_routes();

  /// Switches reconfiguration handling to the *distributed* protocol (in
  /// the spirit of paper ref [7]): from now on, every topology change
  /// triggers message-level retraction and re-advertisement at the two
  /// endpoints, and the tables converge through ordinary subscription
  /// forwarding instead of an oracle rebuild. Call at most once.
  void enable_protocol_reconfiguration();

  /// True if every table matches the oracle computed from global knowledge.
  [[nodiscard]] bool routes_consistent() const;

  /// The dispatchers (with a local subscription) that an event with the
  /// given content would reach on a fully reliable network — the
  /// denominator of the paper's delivery rate.
  [[nodiscard]] std::vector<NodeId> expected_receivers(
      const std::vector<Pattern>& content) const;

  /// Number of distinct local subscribers of pattern `p`.
  [[nodiscard]] std::size_t subscriber_count(Pattern p) const;

 private:
  /// The route entries each node must hold, as one pattern bitmask per
  /// next-hop neighbour (entries sorted by NodeId) — mirrors the
  /// SubscriptionTable layout. The old (pattern, next_hop)-pair lists were
  /// O(N · subscribers · π_max) pairs and dominated memory at N = 10⁴;
  /// the mask form is O(E · Π/8) bytes total.
  struct OracleEntry {
    NodeId next_hop;
    PatternSet patterns;
  };
  using Oracle = std::vector<std::vector<OracleEntry>>;
  [[nodiscard]] Oracle compute_oracle() const;

  Simulator& sim_;
  Transport& transport_;
  runtime::SimRuntime runtime_;
  std::vector<std::unique_ptr<Dispatcher>> nodes_;
};

}  // namespace epicast
