// epicast — concrete wire messages of the pub-sub layer.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/net/message.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

/// An event travelling the dispatching tree. The payload is shared; the
/// per-hop `route` (used by publisher-based pull, §III-B) is copied and
/// extended at each hop when route recording is enabled.
class EventMessage final : public Message {
 public:
  EventMessage(EventPtr event, std::vector<NodeId> route)
      : event_(std::move(event)), route_(std::move(route)) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::Event;
  }
  [[nodiscard]] std::size_t size_bytes() const override {
    return event_->payload_bytes();
  }

  [[nodiscard]] const EventPtr& event() const { return event_; }

  /// Dispatchers traversed so far, publisher first. Empty when route
  /// recording is disabled.
  [[nodiscard]] const std::vector<NodeId>& route() const { return route_; }

 private:
  EventPtr event_;
  std::vector<NodeId> route_;
};

/// Subscription-forwarding control message (subscribe or unsubscribe).
class SubscribeMessage final : public Message {
 public:
  static constexpr std::size_t kWireBytes = 64;

  SubscribeMessage(Pattern pattern, bool subscribe)
      : pattern_(pattern), subscribe_(subscribe) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::Control;
  }
  [[nodiscard]] std::size_t size_bytes() const override { return kWireBytes; }

  [[nodiscard]] Pattern pattern() const { return pattern_; }
  [[nodiscard]] bool is_subscribe() const { return subscribe_; }

 private:
  Pattern pattern_;
  bool subscribe_;
};

}  // namespace epicast
