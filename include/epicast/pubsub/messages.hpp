// epicast — concrete wire messages of the pub-sub layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/net/message.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

/// An event travelling the dispatching tree. The payload is shared; the
/// per-hop `route` (used by publisher-based pull, §III-B) is copied and
/// extended at each hop when route recording is enabled.
class EventMessage final : public Message {
 public:
  EventMessage(EventPtr event, std::vector<NodeId> route)
      : event_(std::move(event)), route_(std::move(route)) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::Event;
  }
  [[nodiscard]] std::size_t size_bytes() const override {
    return event_->payload_bytes();
  }

  [[nodiscard]] const EventPtr& event() const { return event_; }

  /// Dispatchers traversed so far, publisher first. Empty when route
  /// recording is disabled.
  [[nodiscard]] const std::vector<NodeId>& route() const { return route_; }

 private:
  EventPtr event_;
  std::vector<NodeId> route_;
};

/// One per-stream high-watermark: "sequence numbers for (source, pattern)
/// exist up to and including seq". Carried piggyback on heartbeats so the
/// liveness layer doubles as anti-entropy: a subscriber whose sequence-gap
/// detector would otherwise never learn about a loss (the *last* event of a
/// stream, or a whole outage window with no successor event) hears about it
/// from a neighbour's watermark and can pull it.
struct StreamMark {
  NodeId source;
  Pattern pattern;
  SeqNo seq;
  friend constexpr bool operator==(const StreamMark&,
                                   const StreamMark&) = default;
};

/// Liveness beacon of the live-cluster failure detector (daemon mode): each
/// node periodically sends one to every overlay neighbour on the Control
/// channel. `incarnation` counts the sender's process lifetimes (1 on first
/// boot, bumped on every restart) so a receiver can tell a recovered peer
/// from one that never died — an incarnation jump is a restart observation.
/// `marks` is a rotating slice of the sender's stream watermarks (may be
/// empty). The simulator never sends these; they exist for real-socket
/// deployments where no global scheduler knows who is alive.
class HeartbeatMessage final : public Message {
 public:
  static constexpr std::size_t kWireBytes = 16;
  static constexpr std::size_t kMarkBytes = 8;

  explicit HeartbeatMessage(std::uint64_t incarnation,
                            std::vector<StreamMark> marks = {})
      : incarnation_(incarnation), marks_(std::move(marks)) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::Control;
  }
  [[nodiscard]] std::size_t size_bytes() const override {
    return kWireBytes + marks_.size() * kMarkBytes;
  }

  [[nodiscard]] std::uint64_t incarnation() const { return incarnation_; }
  [[nodiscard]] const std::vector<StreamMark>& marks() const { return marks_; }

 private:
  std::uint64_t incarnation_;
  std::vector<StreamMark> marks_;
};

/// Subscription-forwarding control message (subscribe or unsubscribe).
class SubscribeMessage final : public Message {
 public:
  static constexpr std::size_t kWireBytes = 64;

  SubscribeMessage(Pattern pattern, bool subscribe)
      : pattern_(pattern), subscribe_(subscribe) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::Control;
  }
  [[nodiscard]] std::size_t size_bytes() const override { return kWireBytes; }

  [[nodiscard]] Pattern pattern() const { return pattern_; }
  [[nodiscard]] bool is_subscribe() const { return subscribe_; }

 private:
  Pattern pattern_;
  bool subscribe_;
};

}  // namespace epicast
