// epicast — the pattern universe.
//
// The paper draws all patterns from a fixed universe of Π numbers (Π = 70 in
// the evaluation). `PatternUniverse` provides uniform sampling of distinct
// patterns — used both for subscriptions (πmax patterns per dispatcher) and
// for event content (up to 3 patterns per event).
#pragma once

#include <cstdint>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/rng.hpp"

namespace epicast {

class PatternUniverse {
 public:
  explicit PatternUniverse(std::uint32_t count);

  [[nodiscard]] std::uint32_t count() const { return count_; }

  [[nodiscard]] Pattern at(std::uint32_t index) const;

  /// `k` distinct patterns, uniform over the universe, in sorted order.
  /// Precondition: k <= count().
  [[nodiscard]] std::vector<Pattern> sample_distinct(std::uint32_t k,
                                                     Rng& rng) const;

  /// All patterns in the universe, ascending.
  [[nodiscard]] std::vector<Pattern> all() const;

  /// Probability that a random subscriber (with `subs` distinct patterns)
  /// matches a random event (with `event_patterns` distinct patterns) —
  /// the closed form behind the paper's Fig. 7 discussion.
  [[nodiscard]] double match_probability(std::uint32_t subs,
                                         std::uint32_t event_patterns) const;

 private:
  std::uint32_t count_;
};

}  // namespace epicast
