// epicast — duplicate-suppression set over event ids.
//
// Event ids are (source, per-source counter) with counters assigned densely
// from 0 (paper footnote 3), so "which ids has this dispatcher seen" is a
// per-source bitmap, not a hash set: membership is two array indexations
// and a bit test. Dispatchers consult this on every event reception and —
// hotter still — once per id of every push digest received, where the hash
// set's cold-bucket probes dominated the gossip-handling profile.
//
// Two layouts behind one interface:
//   * dense (default, and any N up to kDenseSourceLimit): one bitmap row
//     per source, grown on demand — the paper-scale layout, byte-identical
//     in behavior to what it replaced;
//   * sparse (hinted N beyond the limit): per-node row headers alone would
//     cost O(N²) across N dispatchers (≈2.4 GB at N=10⁴), yet each node
//     only ever sees events from the sources that publish near it — so the
//     rows collapse into one open-addressed table keyed
//     (source, seq-block) → 64-bit word, sized by what was actually seen.
#pragma once

#include <cstdint>
#include <vector>

#include "epicast/common/ids.hpp"

namespace epicast {

class SeenSet {
 public:
  /// Hinted-source-count threshold above which the sparse layout is used.
  static constexpr std::uint32_t kDenseSourceLimit = 2048;

  SeenSet() = default;

  /// `sources` is the number of dispatchers in the scenario (a sizing hint,
  /// not a bound). Small scenarios keep the dense per-source rows; beyond
  /// kDenseSourceLimit the sparse table takes over.
  explicit SeenSet(std::uint32_t sources)
      : sparse_(sources > kDenseSourceLimit) {
    if (sparse_) slots_.resize(kInitialSlots, Slot{kEmptyKey, 0});
  }

  /// Marks `id` as seen. Returns true if it was not seen before (mirrors
  /// std::unordered_set::insert().second).
  bool insert(const EventId& id) {
    std::uint64_t& word =
        sparse_ ? sparse_word(key_of(id)) : dense_word(id);
    const std::uint64_t bit = std::uint64_t{1} << (id.source_seq & 63);
    if ((word & bit) != 0) return false;
    word |= bit;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(const EventId& id) const {
    const std::uint64_t bit = std::uint64_t{1} << (id.source_seq & 63);
    if (sparse_) {
      const Slot* s = find_slot(key_of(id));
      return s != nullptr && (s->bits & bit) != 0;
    }
    const std::size_t src = id.source.value();
    if (src >= rows_.size()) return false;
    const std::vector<std::uint64_t>& row = rows_[src];
    const std::size_t word = id.source_seq >> 6;
    return word < row.size() && (row[word] & bit) != 0;
  }

  /// Number of distinct ids inserted.
  [[nodiscard]] std::uint64_t size() const { return size_; }

  /// Bytes owned beyond the object itself — per-component accounting.
  [[nodiscard]] std::size_t memory_bytes() const {
    if (sparse_) return slots_.capacity() * sizeof(Slot);
    std::size_t n = rows_.capacity() * sizeof(rows_[0]);
    for (const auto& row : rows_) n += row.capacity() * sizeof(std::uint64_t);
    return n;
  }

 private:
  // -- dense layout ---------------------------------------------------------

  std::uint64_t& dense_word(const EventId& id) {
    const std::size_t src = id.source.value();
    if (src >= rows_.size()) rows_.resize(src + 1);
    std::vector<std::uint64_t>& row = rows_[src];
    const std::size_t word = id.source_seq >> 6;
    if (word >= row.size()) row.resize(word + 1, 0);
    return row[word];
  }

  // -- sparse layout --------------------------------------------------------

  struct Slot {
    std::uint64_t key;
    std::uint64_t bits;
  };
  /// NodeId::invalid() never publishes, so this key cannot collide with a
  /// real (source, block).
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  static constexpr std::size_t kInitialSlots = 64;  // power of two

  [[nodiscard]] static std::uint64_t key_of(const EventId& id) {
    return (static_cast<std::uint64_t>(id.source.value()) << 32) |
           (id.source_seq >> 6);
  }

  [[nodiscard]] static std::size_t hash_of(std::uint64_t key) {
    // splitmix64 finalizer — full avalanche for the probe start.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  [[nodiscard]] const Slot* find_slot(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash_of(key) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s;
      if (s.key == kEmptyKey) return nullptr;
    }
  }

  std::uint64_t& sparse_word(std::uint64_t key) {
    if ((used_ + 1) * 8 > slots_.size() * 7) grow_slots();
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash_of(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == key) return s.bits;
      if (s.key == kEmptyKey) {
        s.key = key;
        ++used_;
        return s.bits;
      }
    }
  }

  void grow_slots() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{kEmptyKey, 0});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = hash_of(s.key) & mask;
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  bool sparse_ = false;
  std::vector<std::vector<std::uint64_t>> rows_;  // dense mode
  std::vector<Slot> slots_;                       // sparse mode
  std::size_t used_ = 0;                          // occupied slots
  std::uint64_t size_ = 0;
};

}  // namespace epicast
