// epicast — duplicate-suppression set over event ids.
//
// Event ids are (source, per-source counter) with counters assigned densely
// from 0 (paper footnote 3), so "which ids has this dispatcher seen" is a
// per-source bitmap, not a hash set: membership is two array indexations
// and a bit test. Dispatchers consult this on every event reception and —
// hotter still — once per id of every push digest received, where the hash
// set's cold-bucket probes dominated the gossip-handling profile.
//
// Memory: one bit per published event per source, ~e.g. a 10 s run at 50
// events/s/source costs 63 bytes per source row. Rows grow on demand.
#pragma once

#include <cstdint>
#include <vector>

#include "epicast/common/ids.hpp"

namespace epicast {

class SeenSet {
 public:
  /// Marks `id` as seen. Returns true if it was not seen before (mirrors
  /// std::unordered_set::insert().second).
  bool insert(const EventId& id) {
    std::vector<std::uint64_t>& row = row_for(id.source);
    const std::size_t word = id.source_seq >> 6;
    if (word >= row.size()) row.resize(word + 1, 0);
    const std::uint64_t bit = std::uint64_t{1} << (id.source_seq & 63);
    if ((row[word] & bit) != 0) return false;
    row[word] |= bit;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(const EventId& id) const {
    const std::size_t src = id.source.value();
    if (src >= rows_.size()) return false;
    const std::vector<std::uint64_t>& row = rows_[src];
    const std::size_t word = id.source_seq >> 6;
    return word < row.size() &&
           (row[word] & (std::uint64_t{1} << (id.source_seq & 63))) != 0;
  }

  /// Number of distinct ids inserted.
  [[nodiscard]] std::uint64_t size() const { return size_; }

 private:
  std::vector<std::uint64_t>& row_for(NodeId source) {
    const std::size_t src = source.value();
    if (src >= rows_.size()) rows_.resize(src + 1);
    return rows_[src];
  }

  std::vector<std::vector<std::uint64_t>> rows_;
  std::uint64_t size_ = 0;
};

}  // namespace epicast
