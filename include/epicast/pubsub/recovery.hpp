// epicast — interface between the best-effort dispatcher and an epidemic
// recovery protocol.
//
// The paper's algorithms sit *on top of* a best-effort content-based
// publish-subscribe system (§III): the dispatcher notifies its recovery
// protocol of every accepted event (so it can cache and detect losses) and
// hands it every gossip-class message; the protocol injects recovered events
// back via Dispatcher::accept_recovered. Concrete implementations live in
// epicast/gossip.
#pragma once

#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/fault/restart_policy.hpp"
#include "epicast/net/message.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

struct GossipStats;
class EventCache;

class RecoveryProtocol {
 public:
  virtual ~RecoveryProtocol() = default;

  /// How an event reached this dispatcher.
  struct EventContext {
    /// Upstream neighbour, or invalid() for a local publish or a recovery.
    NodeId from;
    /// Dispatchers traversed (publisher first, sender last); empty unless
    /// route recording is enabled and the event arrived via the overlay.
    std::vector<NodeId> route;
    /// The dispatcher itself published this event.
    bool local_publish = false;
    /// The event arrived via the recovery machinery, not normal routing.
    bool recovered = false;
  };

  /// Begins periodic activity (gossip rounds). Called once after wiring.
  virtual void start() {}

  /// Stops periodic activity.
  virtual void stop() {}

  /// The node hosting this protocol came back from a crash (the protocol
  /// was stop()ped at crash time; start() follows this call). Cold restarts
  /// must drop recovery-layer soft state — event cache, loss watermarks,
  /// pending-loss and route buffers — as a real process losing its memory
  /// would; Warm restarts keep everything. The dispatcher's delivery-dedup
  /// state is durable and survives either way.
  virtual void on_restart(fault::RestartPolicy /*policy*/) {}

  /// A new (never seen before) event was accepted by the dispatcher.
  virtual void on_event(const EventPtr& event, const EventContext& ctx) = 0;

  /// A gossip-class message arrived (digest over the overlay, or
  /// request/reply over the out-of-band channel).
  virtual void on_gossip(NodeId from, const MessagePtr& msg) = 0;

  /// Human-readable protocol name for reports.
  [[nodiscard]] virtual const char* name() const = 0;

  /// The gossip counters of this protocol, or nullptr for protocols that
  /// keep none (e.g. the no-recovery baseline). Lets aggregation code sum
  /// stats without downcasting to a concrete protocol type.
  [[nodiscard]] virtual const GossipStats* gossip_stats() const {
    return nullptr;
  }

  /// The retransmission buffer (β) of this protocol, or nullptr for
  /// protocols that keep none. Read-only introspection for the metrics and
  /// conformance-oracle layers (buffer-bound and digest-coverage checks).
  [[nodiscard]] virtual const EventCache* event_cache() const {
    return nullptr;
  }
};

}  // namespace epicast
