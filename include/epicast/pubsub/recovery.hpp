// epicast — interface between the best-effort dispatcher and an epidemic
// recovery protocol.
//
// The paper's algorithms sit *on top of* a best-effort content-based
// publish-subscribe system (§III): the dispatcher notifies its recovery
// protocol of every accepted event (so it can cache and detect losses) and
// hands it every gossip-class message; the protocol injects recovered events
// back via Dispatcher::accept_recovered. Concrete implementations live in
// epicast/gossip.
#pragma once

#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/fault/restart_policy.hpp"
#include "epicast/net/message.hpp"
#include "epicast/pubsub/event.hpp"
#include "epicast/pubsub/messages.hpp"

namespace epicast {

struct GossipStats;
class EventCache;

class RecoveryProtocol {
 public:
  virtual ~RecoveryProtocol() = default;

  /// How an event reached this dispatcher.
  struct EventContext {
    /// Upstream neighbour, or invalid() for a local publish or a recovery.
    NodeId from;
    /// Dispatchers traversed (publisher first, sender last); empty unless
    /// route recording is enabled and the event arrived via the overlay.
    std::vector<NodeId> route;
    /// The dispatcher itself published this event.
    bool local_publish = false;
    /// The event arrived via the recovery machinery, not normal routing.
    bool recovered = false;
  };

  /// Begins periodic activity (gossip rounds). Called once after wiring.
  virtual void start() {}

  /// Stops periodic activity.
  virtual void stop() {}

  /// The node hosting this protocol came back from a crash (the protocol
  /// was stop()ped at crash time; start() follows this call). Cold restarts
  /// must drop recovery-layer soft state — event cache, loss watermarks,
  /// pending-loss and route buffers — as a real process losing its memory
  /// would; Warm restarts keep everything. The dispatcher's delivery-dedup
  /// state is durable and survives either way.
  virtual void on_restart(fault::RestartPolicy /*policy*/) {}

  /// Liveness signal from the environment (daemon mode: the failure
  /// detector heard a heartbeat or any traffic from `peer`). Clears
  /// suspicion bookkeeping so round-target pruning stops avoiding it.
  virtual void on_peer_alive(NodeId /*peer*/) {}

  /// The environment suspects `peer` is down (daemon mode: missed
  /// heartbeats). Protocols with peer-health tracking mark it suspect so
  /// gossip-round target selection steers around it.
  virtual void on_peer_suspected(NodeId /*peer*/) {}

  /// Seeds the retransmission buffer with events recovered from a
  /// warm-restart snapshot, before start(). Protocols without a cache
  /// ignore it.
  virtual void preload_cache(const std::vector<EventPtr>& /*events*/) {}

  /// Copies up to `max_entries` of this protocol's per-(source, pattern)
  /// stream watermarks into `out`, starting at rotation position `cursor`,
  /// and returns the cursor for the next call (daemon mode: the failure
  /// detector piggybacks the slice on outgoing heartbeats). Protocols that
  /// track no watermarks leave `out` untouched and return 0.
  virtual std::size_t stream_marks_into(std::size_t /*cursor*/,
                                        std::size_t /*max_entries*/,
                                        std::vector<StreamMark>& /*out*/) const {
    return 0;
  }

  /// A neighbour's heartbeat carried stream watermarks: anything it has
  /// seen beyond this node's own expectation is a loss this node would
  /// never detect from sequence gaps alone (tail of a stream, outage
  /// window with no successor). Pull protocols enqueue the difference for
  /// normal recovery; others ignore it.
  virtual void on_stream_marks(const std::vector<StreamMark>& /*marks*/) {}

  /// A new (never seen before) event was accepted by the dispatcher.
  virtual void on_event(const EventPtr& event, const EventContext& ctx) = 0;

  /// A gossip-class message arrived (digest over the overlay, or
  /// request/reply over the out-of-band channel).
  virtual void on_gossip(NodeId from, const MessagePtr& msg) = 0;

  /// Human-readable protocol name for reports.
  [[nodiscard]] virtual const char* name() const = 0;

  /// The gossip counters of this protocol, or nullptr for protocols that
  /// keep none (e.g. the no-recovery baseline). Lets aggregation code sum
  /// stats without downcasting to a concrete protocol type.
  [[nodiscard]] virtual const GossipStats* gossip_stats() const {
    return nullptr;
  }

  /// The retransmission buffer (β) of this protocol, or nullptr for
  /// protocols that keep none. Read-only introspection for the metrics and
  /// conformance-oracle layers (buffer-bound and digest-coverage checks).
  [[nodiscard]] virtual const EventCache* event_cache() const {
    return nullptr;
  }
};

}  // namespace epicast
