// epicast — one dispatching server of the content-based pub-sub network.
//
// Implements the best-effort behaviour of §II:
//   * subscription forwarding with per-direction duplicate suppression,
//     and tree-pruning unsubscription;
//   * reverse-path event routing along subscription routes;
//   * duplicate suppression by event id;
//   * local delivery to the (implicit) clients, reported via a listener.
//
// The optional RecoveryProtocol (epicast/gossip) is notified of every
// accepted event and receives all gossip-class traffic; recovered events
// re-enter through accept_recovered().
//
// Clients are not modelled (paper §IV-A): subscribe()/publish() are invoked
// directly on the dispatcher, which "is a subscriber if at least one of its
// clients is".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/message_pool.hpp"
#include "epicast/common/rng.hpp"
#include "epicast/metrics/hotpath_profiler.hpp"
#include "epicast/pubsub/event.hpp"
#include "epicast/pubsub/messages.hpp"
#include "epicast/pubsub/recovery.hpp"
#include "epicast/pubsub/seen_set.hpp"
#include "epicast/pubsub/subscription_table.hpp"
#include "epicast/runtime/runtime.hpp"

namespace epicast {

struct DispatcherConfig {
  /// Payload size used by publish() unless overridden per call.
  std::size_t default_payload_bytes = 1000;
  /// Append traversed dispatcher addresses to event messages (needed by
  /// publisher-based and combined pull, §III-B).
  bool record_routes = false;
};

class Dispatcher final : public TransportReceiver {
 public:
  /// The dispatcher talks to its environment exclusively through the
  /// runtime seam: SimRuntime in simulation, AsyncRuntime on real sockets.
  Dispatcher(NodeId id, runtime::Runtime& rt, DispatcherConfig config);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] runtime::Runtime& runtime() { return rt_; }
  /// Current time, message pool, and hot-path profiler of the runtime —
  /// cached references, so the event hot path pays no virtual dispatch.
  [[nodiscard]] SimTime now() const { return clock_.now(); }
  [[nodiscard]] MessagePool& pool() { return pool_; }
  [[nodiscard]] HotpathProfiler& profiler() { return prof_; }
  [[nodiscard]] SubscriptionTable& table() { return table_; }
  [[nodiscard]] const SubscriptionTable& table() const { return table_; }
  [[nodiscard]] const DispatcherConfig& config() const { return config_; }
  /// Deterministic per-dispatcher random stream (shared with its recovery
  /// protocol).
  [[nodiscard]] Rng& rng() { return rng_; }

  // -- client-facing API ----------------------------------------------------

  /// Subscribes this dispatcher to `p` and floods the subscription.
  void subscribe(Pattern p);

  /// Marks the local subscription without flooding it — used by the oracle
  /// subscription bootstrap at scale, where PubSubNetwork::rebuild_routes()
  /// installs the converged routes directly instead of simulating O(Π·N)
  /// subscription floods.
  void subscribe_local(Pattern p) { table_.add_local(p); }

  /// Removes the local subscription and prunes routes that are no longer
  /// needed anywhere behind this dispatcher.
  void unsubscribe(Pattern p);

  /// Publishes an event whose content is `content` (distinct patterns).
  /// Assigns the global id and the per-(source, pattern) sequence numbers,
  /// delivers locally if subscribed, and forwards along subscription routes.
  EventPtr publish(const std::vector<Pattern>& content);
  EventPtr publish(const std::vector<Pattern>& content,
                   std::size_t payload_bytes);

  // -- recovery wiring ------------------------------------------------------

  void set_recovery(std::unique_ptr<RecoveryProtocol> recovery);
  [[nodiscard]] RecoveryProtocol* recovery() { return recovery_.get(); }

  /// Called for every local delivery: on first reception of an event that
  /// matches a local subscription. `recovered` distinguishes deliveries
  /// made possible by the recovery machinery.
  using DeliveryListener =
      std::function<void(NodeId node, const EventPtr&, bool recovered)>;
  void set_delivery_listener(DeliveryListener listener) {
    on_delivery_ = std::move(listener);
  }

  /// Called for every HeartbeatMessage arriving on the overlay (daemon-mode
  /// liveness beacons). Heartbeats never reach handle_control: without a
  /// listener they are simply absorbed.
  using HeartbeatListener =
      std::function<void(NodeId from, const HeartbeatMessage&)>;
  void set_heartbeat_listener(HeartbeatListener listener) {
    on_heartbeat_ = std::move(listener);
  }

  // -- API used by recovery protocols --------------------------------------

  /// True if this dispatcher already received (or published) the event.
  [[nodiscard]] bool has_seen(const EventId& id) const {
    return seen_.contains(id);
  }

  /// Injects an event obtained through recovery. Duplicates are ignored.
  /// Returns true if the event was new here.
  bool accept_recovered(const EventPtr& event);

  // -- crash-restart journal replay (daemon mode) ---------------------------

  /// Marks `id` as already received without delivering or forwarding —
  /// journal replay rebuilds the duplicate-suppression set of a restarted
  /// daemon so re-gossiped events it delivered in a previous incarnation
  /// are not delivered twice.
  void note_seen(const EventId& id) { seen_.insert(id); }

  /// Restores the publish counters of a restarted daemon so its next
  /// publish continues the id sequence instead of reusing ids the cluster
  /// has already seen (which note_seen would then suppress everywhere).
  void restore_sequences(
      std::uint64_t next_source_seq,
      const std::unordered_map<Pattern, std::uint64_t>& next_pattern_seq) {
    next_source_seq_ = next_source_seq;
    next_pattern_seq_ = next_pattern_seq;
  }

  /// Convenience senders (from this node).
  void send_overlay(NodeId to, MessagePtr msg) {
    tr_.send_overlay(id_, to, std::move(msg));
  }
  void send_direct(NodeId to, MessagePtr msg) {
    tr_.send_direct(id_, to, std::move(msg));
  }

  /// Current overlay neighbours (invalidated by topology mutations).
  [[nodiscard]] std::span<const NodeId> neighbors() const {
    return tr_.neighbors(id_);
  }

  /// True iff the overlay currently links this node to `other`.
  [[nodiscard]] bool has_link_to(NodeId other) const {
    return tr_.has_link(id_, other);
  }

  // -- route-rebuild support (PubSubNetwork) --------------------------------

  /// Records that sub(p) was (or counts as) sent towards `neighbor`
  /// — duplicate-suppression state of subscription forwarding.
  void note_sub_sent(Pattern p, NodeId neighbor);
  void clear_sub_sent();

  // -- distributed reconfiguration (protocol mode) ----------------------------
  // The message-level reaction to overlay changes, in the spirit of the
  // reconfiguration protocol of paper ref [7]. The alternative is
  // PubSubNetwork::rebuild_routes(), which installs the converged outcome
  // instantly (the library default).

  /// The link to `neighbor` vanished: drop its routes and suppression
  /// marks, then retract subscriptions in directions that no longer lead
  /// to any subscriber.
  void handle_link_break(NodeId neighbor);

  /// A link to `neighbor` appeared: advertise every pattern for which a
  /// subscriber exists on this side, so routes grow across the new link.
  void handle_link_add(NodeId neighbor);

  // -- TransportReceiver ----------------------------------------------------

  void on_overlay_message(NodeId from, const MessagePtr& msg) override;
  void on_direct_message(NodeId from, const MessagePtr& msg) override;

  // -- introspection ---------------------------------------------------------

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t delivered = 0;            ///< local deliveries, any path
    std::uint64_t delivered_recovered = 0;  ///< subset via recovery
    std::uint64_t duplicates = 0;           ///< suppressed re-receptions
    std::uint64_t forwarded = 0;            ///< event copies sent downstream
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Bytes owned by routing state: the subscription table plus the
  /// per-neighbour duplicate-suppression masks.
  [[nodiscard]] std::size_t routing_memory_bytes() const;

  /// Bytes owned by the event duplicate-suppression set.
  [[nodiscard]] std::size_t seen_memory_bytes() const {
    return seen_.memory_bytes();
  }

 private:
  void handle_event(NodeId from, const EventMessage& msg);
  void handle_control(NodeId from, const SubscribeMessage& msg);
  /// Common path for every first-time acceptance of an event.
  void accept_event(const EventPtr& event,
                    const RecoveryProtocol::EventContext& ctx);
  void forward_event(const EventPtr& event, NodeId exclude,
                     const std::vector<NodeId>& route_so_far);
  /// Sends unsub(p) in directions that no longer lead to any subscriber.
  void maybe_propagate_unsub(Pattern p, NodeId skip);
  [[nodiscard]] bool sub_sent(Pattern p, NodeId neighbor) const;
  struct SubSentMarks;
  [[nodiscard]] const SubSentMarks* find_sub_sent(NodeId neighbor) const;

  NodeId id_;
  runtime::Runtime& rt_;
  /// Hot-path caches of rt_'s accessors (one virtual call at construction
  /// instead of two per send/now/alloc).
  runtime::Transport& tr_;
  const runtime::Clock& clock_;
  MessagePool& pool_;
  HotpathProfiler& prof_;
  DispatcherConfig config_;
  Rng rng_;
  SubscriptionTable table_;
  std::unique_ptr<RecoveryProtocol> recovery_;
  DeliveryListener on_delivery_;
  HeartbeatListener on_heartbeat_;

  SeenSet seen_;
  /// Duplicate-suppression state of subscription forwarding: per neighbour
  /// (sorted by NodeId), the patterns a sub() was sent towards. A pattern
  /// bitmask per direction instead of a per-pattern hash map — O(degree ·
  /// Π/8) bytes, the layout that keeps 10⁴-node scenarios in budget.
  struct SubSentMarks {
    NodeId neighbor;
    PatternSet patterns;
  };
  std::vector<SubSentMarks> sub_sent_;

  std::uint64_t next_source_seq_ = 0;
  std::unordered_map<Pattern, std::uint64_t> next_pattern_seq_;
  Stats stats_;

  /// Scratch for forward_event: sends are asynchronous (the transport
  /// schedules delivery), so no callee re-enters forwarding while this is
  /// in use.
  std::vector<NodeId> forward_targets_scratch_;
};

}  // namespace epicast
