// epicast — per-dispatcher subscription table.
//
// For every pattern the table records (a) whether this dispatcher is itself
// a subscriber ("local", i.e., one of its clients subscribed) and (b) the
// set of neighbour next-hops behind which subscribers live — the routes laid
// down by subscription forwarding (paper §II, Fig. 1).
//
// The push algorithm draws its gossip pattern from the *whole* table (local
// + routes), the pull algorithms only from local subscriptions (§III-B) —
// hence the separate enumeration helpers.
//
// Hot-path layout: patterns below PatternSet::kCapacity (all of the paper's
// Π ≤ 70) live in a dense array indexed by pattern value, with `known_mask_`
// / `local_mask_` bitsets summarizing which entries exist — matching an
// event is a mask AND, and the per-round sampling populations are popcounts
// + bit selects instead of rebuilt vectors. Larger patterns (possible only
// via CLI-configured universes) fall back to a sorted overflow map; every
// enumeration keeps ascending pattern order, identical to the sorted
// vectors this replaced.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/pattern_set.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

class SubscriptionTable {
 public:
  SubscriptionTable() : dense_(PatternSet::kCapacity) {}

  /// Marks this dispatcher as a subscriber for `p`.
  /// Returns false if it already was.
  bool add_local(Pattern p);

  /// Clears the local-subscriber mark. Returns false if it was not set.
  bool remove_local(Pattern p);

  /// Records that events matching `p` must be forwarded to `next_hop`.
  /// Returns false if that route was already present.
  bool add_route(Pattern p, NodeId next_hop);

  /// Removes one route. Returns false if it was not present.
  bool remove_route(Pattern p, NodeId next_hop);

  /// Drops every route through `neighbor` (e.g., its link broke).
  void remove_neighbor(NodeId neighbor);

  /// Drops all routes, keeping local subscriptions (used when routes are
  /// rebuilt after a reconfiguration).
  void clear_routes();

  [[nodiscard]] bool has_local(Pattern p) const;
  [[nodiscard]] bool has_route(Pattern p, NodeId next_hop) const;
  /// True if the table has any entry (local or route) for p.
  [[nodiscard]] bool knows(Pattern p) const;

  /// True if this dispatcher is locally subscribed to any of the event's
  /// patterns — i.e., the event must be delivered here. A mask intersection
  /// on the fast path; events/universes beyond the bitset range fall back
  /// to per-pattern lookups.
  [[nodiscard]] bool matches_local(const EventData& event) const;

  /// Union of next-hops for all the event's patterns, minus `exclude`
  /// (the neighbour the event arrived from). Deterministic order.
  [[nodiscard]] std::vector<NodeId> route_targets(const EventData& event,
                                                  NodeId exclude) const;

  /// As above, but reusing `out` (cleared first) — the forwarding hot path
  /// calls this once per received event, so a caller-owned scratch buffer
  /// avoids an allocation per event.
  void route_targets_into(const EventData& event, NodeId exclude,
                          std::vector<NodeId>& out) const;

  /// Next-hops for a single pattern, minus `exclude`.
  [[nodiscard]] std::vector<NodeId> route_targets(Pattern p,
                                                  NodeId exclude) const;

  /// Scratch-buffer variant of the above (gossip rounds route one digest
  /// per round per node).
  void route_targets_into(Pattern p, NodeId exclude,
                          std::vector<NodeId>& out) const;

  /// Patterns with any entry — the push algorithm's sampling population.
  [[nodiscard]] std::vector<Pattern> known_patterns() const;
  /// As above into a caller-owned scratch buffer (cleared first).
  void known_patterns_into(std::vector<Pattern>& out) const;
  /// Size of the sampling population without materializing it.
  [[nodiscard]] std::size_t known_pattern_count() const;
  /// The k-th known pattern in ascending order (k < known_pattern_count())
  /// — equals known_patterns()[k], without building the vector.
  [[nodiscard]] Pattern known_pattern_at(std::size_t k) const;

  /// Patterns with a local subscription — the pull sampling population.
  [[nodiscard]] std::vector<Pattern> local_patterns() const;
  /// As above into a caller-owned scratch buffer (cleared first).
  void local_patterns_into(std::vector<Pattern>& out) const;

  /// Bitset of locally subscribed patterns (below PatternSet::kCapacity).
  [[nodiscard]] const PatternSet& local_mask() const { return local_mask_; }
  /// Bitset of all known patterns (below PatternSet::kCapacity).
  [[nodiscard]] const PatternSet& known_mask() const { return known_mask_; }

  [[nodiscard]] std::size_t entry_count() const;

 private:
  struct Entry {
    bool local = false;
    std::vector<NodeId> next_hops;  // sorted, unique

    [[nodiscard]] bool empty() const { return !local && next_hops.empty(); }
  };

  [[nodiscard]] Entry* find_entry(Pattern p);
  [[nodiscard]] const Entry* find_entry(Pattern p) const;
  [[nodiscard]] Entry& entry_for(Pattern p);
  /// Reconciles the masks / overflow map after `p`'s entry changed.
  void note_changed(Pattern p);

  /// Entries for patterns < PatternSet::kCapacity, indexed by value;
  /// existence is tracked by known_mask_ (an entry outside the mask is
  /// empty and ignored).
  std::vector<Entry> dense_;
  PatternSet known_mask_;
  PatternSet local_mask_;
  /// Entries for oversized patterns; std::map keeps ascending order so
  /// enumerations stay sorted.
  std::map<Pattern, Entry> overflow_;
};

}  // namespace epicast
