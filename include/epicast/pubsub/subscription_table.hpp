// epicast — per-dispatcher subscription table.
//
// For every pattern the table records (a) whether this dispatcher is itself
// a subscriber ("local", i.e., one of its clients subscribed) and (b) the
// set of neighbour next-hops behind which subscribers live — the routes laid
// down by subscription forwarding (paper §II, Fig. 1).
//
// The push algorithm draws its gossip pattern from the *whole* table (local
// + routes), the pull algorithms only from local subscriptions (§III-B) —
// hence the separate enumeration helpers.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

class SubscriptionTable {
 public:
  /// Marks this dispatcher as a subscriber for `p`.
  /// Returns false if it already was.
  bool add_local(Pattern p);

  /// Clears the local-subscriber mark. Returns false if it was not set.
  bool remove_local(Pattern p);

  /// Records that events matching `p` must be forwarded to `next_hop`.
  /// Returns false if that route was already present.
  bool add_route(Pattern p, NodeId next_hop);

  /// Removes one route. Returns false if it was not present.
  bool remove_route(Pattern p, NodeId next_hop);

  /// Drops every route through `neighbor` (e.g., its link broke).
  void remove_neighbor(NodeId neighbor);

  /// Drops all routes, keeping local subscriptions (used when routes are
  /// rebuilt after a reconfiguration).
  void clear_routes();

  [[nodiscard]] bool has_local(Pattern p) const;
  [[nodiscard]] bool has_route(Pattern p, NodeId next_hop) const;
  /// True if the table has any entry (local or route) for p.
  [[nodiscard]] bool knows(Pattern p) const;

  /// True if this dispatcher is locally subscribed to any of the event's
  /// patterns — i.e., the event must be delivered here.
  [[nodiscard]] bool matches_local(const EventData& event) const;

  /// Union of next-hops for all the event's patterns, minus `exclude`
  /// (the neighbour the event arrived from). Deterministic order.
  [[nodiscard]] std::vector<NodeId> route_targets(const EventData& event,
                                                  NodeId exclude) const;

  /// As above, but reusing `out` (cleared first) — the forwarding hot path
  /// calls this once per received event, so a caller-owned scratch buffer
  /// avoids an allocation per event.
  void route_targets_into(const EventData& event, NodeId exclude,
                          std::vector<NodeId>& out) const;

  /// Next-hops for a single pattern, minus `exclude`.
  [[nodiscard]] std::vector<NodeId> route_targets(Pattern p,
                                                  NodeId exclude) const;

  /// Patterns with any entry — the push algorithm's sampling population.
  [[nodiscard]] std::vector<Pattern> known_patterns() const;

  /// Patterns with a local subscription — the pull sampling population.
  [[nodiscard]] std::vector<Pattern> local_patterns() const;

  [[nodiscard]] std::size_t entry_count() const;

 private:
  struct Entry {
    bool local = false;
    std::vector<NodeId> next_hops;  // sorted, unique

    [[nodiscard]] bool empty() const { return !local && next_hops.empty(); }
  };

  /// Erases `p` if its entry became empty (keeps known_patterns() exact).
  void prune(Pattern p);

  std::unordered_map<Pattern, Entry> entries_;
};

}  // namespace epicast
