// epicast — per-dispatcher subscription table.
//
// For every pattern the table records (a) whether this dispatcher is itself
// a subscriber ("local", i.e., one of its clients subscribed) and (b) the
// set of neighbour next-hops behind which subscribers live — the routes laid
// down by subscription forwarding (paper §II, Fig. 1).
//
// The push algorithm draws its gossip pattern from the *whole* table (local
// + routes), the pull algorithms only from local subscriptions (§III-B) —
// hence the separate enumeration helpers.
//
// Hot-path layout: one width-dynamic PatternSet per neighbour with at least
// one route, plus `local_mask_` / `known_mask_` summaries. This replaces
// the per-pattern next-hop vectors (O(Π · degree) pointers per node): a
// node's whole routing state is now O(degree · Π/8) bytes of bitmask, the
// layout that makes 10⁴-node scenarios with 10³-pattern universes fit in
// cache. Every enumeration keeps ascending pattern order and ascending
// NodeId order for route targets — identical to the sorted vectors this
// replaced (the event path used to sort + dedup the union; iterating
// neighbours in ascending NodeId order yields exactly that).
#pragma once

#include <cstdint>
#include <vector>

#include "epicast/common/arena.hpp"
#include "epicast/common/ids.hpp"
#include "epicast/common/pattern_set.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast {

class SubscriptionTable {
 public:
  SubscriptionTable() = default;

  /// Pre-sizes the summary masks for patterns in [0, universe), drawing
  /// multi-word storage from `arena` (per-scenario node state). Optional:
  /// the masks auto-grow without it; this avoids the growth copies and
  /// keeps large-universe state arena-resident.
  void reserve_universe(std::uint32_t universe, Arena* arena);

  /// Marks this dispatcher as a subscriber for `p`.
  /// Returns false if it already was.
  bool add_local(Pattern p);

  /// Clears the local-subscriber mark. Returns false if it was not set.
  bool remove_local(Pattern p);

  /// Records that events matching `p` must be forwarded to `next_hop`.
  /// Returns false if that route was already present.
  bool add_route(Pattern p, NodeId next_hop);

  /// Removes one route. Returns false if it was not present.
  bool remove_route(Pattern p, NodeId next_hop);

  /// Drops every route through `neighbor` (e.g., its link broke).
  void remove_neighbor(NodeId neighbor);

  /// Drops all routes, keeping local subscriptions (used when routes are
  /// rebuilt after a reconfiguration).
  void clear_routes();

  [[nodiscard]] bool has_local(Pattern p) const;
  [[nodiscard]] bool has_route(Pattern p, NodeId next_hop) const;
  /// True if the table has any entry (local or route) for p.
  [[nodiscard]] bool knows(Pattern p) const;

  /// True if this dispatcher is locally subscribed to any of the event's
  /// patterns — i.e., the event must be delivered here. A single mask
  /// intersection regardless of universe size.
  [[nodiscard]] bool matches_local(const EventData& event) const;

  /// Union of next-hops for all the event's patterns, minus `exclude`
  /// (the neighbour the event arrived from). Ascending NodeId order.
  [[nodiscard]] std::vector<NodeId> route_targets(const EventData& event,
                                                  NodeId exclude) const;

  /// As above, but reusing `out` (cleared first) — the forwarding hot path
  /// calls this once per received event, so a caller-owned scratch buffer
  /// avoids an allocation per event.
  void route_targets_into(const EventData& event, NodeId exclude,
                          std::vector<NodeId>& out) const;

  /// Next-hops for a single pattern, minus `exclude`.
  [[nodiscard]] std::vector<NodeId> route_targets(Pattern p,
                                                  NodeId exclude) const;

  /// Scratch-buffer variant of the above (gossip rounds route one digest
  /// per round per node).
  void route_targets_into(Pattern p, NodeId exclude,
                          std::vector<NodeId>& out) const;

  /// Patterns with any entry — the push algorithm's sampling population.
  [[nodiscard]] std::vector<Pattern> known_patterns() const;
  /// As above into a caller-owned scratch buffer (cleared first).
  void known_patterns_into(std::vector<Pattern>& out) const;
  /// Size of the sampling population without materializing it.
  [[nodiscard]] std::size_t known_pattern_count() const;
  /// The k-th known pattern in ascending order (k < known_pattern_count())
  /// — equals known_patterns()[k], without building the vector.
  [[nodiscard]] Pattern known_pattern_at(std::size_t k) const;

  /// Patterns with a local subscription — the pull sampling population.
  [[nodiscard]] std::vector<Pattern> local_patterns() const;
  /// As above into a caller-owned scratch buffer (cleared first).
  void local_patterns_into(std::vector<Pattern>& out) const;

  /// Bitset of locally subscribed patterns (complete at any universe size).
  [[nodiscard]] const PatternSet& local_mask() const { return local_mask_; }
  /// Bitset of all known patterns (complete at any universe size).
  [[nodiscard]] const PatternSet& known_mask() const { return known_mask_; }

  [[nodiscard]] std::size_t entry_count() const;

  /// Bytes owned by this table beyond the object itself (mask storage +
  /// per-neighbour entries) — per-component memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  /// All routes through one neighbour, as a pattern bitmask.
  struct NeighborRoutes {
    NodeId neighbor;
    PatternSet patterns;
  };

  [[nodiscard]] NeighborRoutes* find_routes(NodeId neighbor);
  [[nodiscard]] const NeighborRoutes* find_routes(NodeId neighbor) const;
  /// After clearing `p` somewhere: drop the known bit unless `p` is still
  /// local or routed via some neighbour.
  void reconcile_known(Pattern p);

  /// Sorted by neighbour id; entries with an all-zero mask are erased so
  /// route_targets never scans dead neighbours.
  std::vector<NeighborRoutes> routes_;
  PatternSet known_mask_;
  PatternSet local_mask_;
  Arena* arena_ = nullptr;
  std::uint32_t universe_hint_ = 0;
};

}  // namespace epicast
