// epicast — workload generation (§IV-A).
//
// Two responsibilities:
//   * subscriptions — each dispatcher subscribes to exactly πmax distinct
//     patterns drawn uniformly from the universe Π (stable for the whole
//     run, as in the paper);
//   * publications — every dispatcher publishes as a Poisson process with
//     the configured rate; each event's content is `patterns_per_event`
//     distinct uniform patterns.
//
// Scale extensions, all default-off (the defaults reproduce the paper's
// draws bit-for-bit):
//   * zipf_exponent > 0 — pattern popularity follows a Zipf law, for
//     subscriptions and event content alike (popular content is popular to
//     publish about);
//   * subscription_skew > 0 — per-node subscription counts follow a
//     truncated power law instead of the constant πmax;
//   * SubscriptionBootstrap::Oracle — subscriptions are installed locally
//     (no floods); the runner then calls PubSubNetwork::rebuild_routes().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "epicast/common/rng.hpp"
#include "epicast/pubsub/network.hpp"
#include "epicast/pubsub/pattern.hpp"
#include "epicast/scenario/config.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {

class Workload {
 public:
  Workload(Simulator& sim, PubSubNetwork& network,
           const ScenarioConfig& config);

  /// Draws each dispatcher's πmax patterns and issues the subscriptions
  /// (the subscription-forwarding floods start immediately).
  void issue_subscriptions();

  /// Called right after each publish with the event just created.
  using PublishListener = std::function<void(const EventPtr&)>;
  void set_publish_listener(PublishListener listener) {
    on_publish_ = std::move(listener);
  }

  /// Starts every dispatcher's Poisson publishing at `at`, until `until`.
  void start_publishing(SimTime at, SimTime until);

  /// Reroutes publish events to a per-node scheduler — the sharded engine
  /// places each publisher's events on its owning shard lane. The default
  /// schedules on the simulator heap. Set before start_publishing.
  using NodeScheduler =
      std::function<void(NodeId, SimTime, Scheduler::Callback)>;
  void set_node_scheduler(NodeScheduler sched) {
    node_sched_ = std::move(sched);
  }

  [[nodiscard]] std::uint64_t events_published() const {
    return published_.load(std::memory_order_relaxed);
  }

  /// The patterns node `n` was subscribed to (valid after
  /// issue_subscriptions).
  [[nodiscard]] const std::vector<Pattern>& subscriptions_of(NodeId n) const;

 private:
  void schedule_next_publish(NodeId node, SimTime until);
  void schedule_node(NodeId node, SimTime at, Scheduler::Callback cb);
  /// `k` distinct patterns via the configured popularity law: uniform
  /// (exactly the PatternUniverse draws) unless zipf_exponent > 0.
  [[nodiscard]] std::vector<Pattern> draw_patterns(std::uint32_t k, Rng& rng);
  /// This node's subscription count: πmax, or a skewed draw.
  [[nodiscard]] std::uint32_t draw_subscription_count(Rng& rng);

  Simulator& sim_;
  PubSubNetwork& network_;
  const ScenarioConfig& cfg_;
  PatternUniverse universe_;
  Rng rng_;
  std::vector<Rng> node_rngs_;  // one stream per publisher
  std::vector<std::vector<Pattern>> subscriptions_;
  PublishListener on_publish_;
  NodeScheduler node_sched_;
  /// Relaxed: publish callbacks run on worker lanes during threaded
  /// windows; the total is an order-independent sum.
  std::atomic<std::uint64_t> published_{0};

  /// CDF of the Zipf pattern-popularity law (empty when uniform).
  std::vector<double> zipf_cdf_;
  /// CDF of the subscription-count law over counts [1..size()] (empty when
  /// every node takes exactly πmax).
  std::vector<double> sub_count_cdf_;
};

}  // namespace epicast
