// epicast — scenario configuration: the paper's Fig. 2 parameter table plus
// the simulation housekeeping the paper leaves implicit.
//
// A scenario is fully reproducible from this struct: same config + seed →
// bit-identical run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "epicast/fault/plan.hpp"
#include "epicast/gossip/config.hpp"
#include "epicast/net/message.hpp"
#include "epicast/net/overlays.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

struct ScenarioConfig {
  // -- identity --------------------------------------------------------------
  std::uint64_t seed = 1;

  // -- dispatching network (Fig. 2) -------------------------------------------
  std::uint32_t nodes = 100;                ///< N
  std::uint32_t max_degree = 4;             ///< tree degree cap (§IV-A)
  std::uint32_t pattern_universe = 70;      ///< Π
  std::uint32_t patterns_per_subscriber = 2;///< πmax (each node subscribes to
                                            ///< exactly this many patterns)
  std::uint32_t patterns_per_event = 3;     ///< paper: events match ≤ 3
  double publish_rate_hz = 50.0;            ///< per dispatcher (Poisson)
  /// Event message size. The paper leaves this unspecified; 200 B keeps the
  /// 10 Mbit/s links in the loss-dominated regime the paper evaluates (the
  /// baseline delivery rate is set by ε, not by queueing) even at the high
  /// publish load. See DESIGN.md.
  std::size_t event_payload_bytes = 200;

  // -- scale overlays and skewed workloads (beyond Fig. 2) ---------------------
  /// Overlay family. `Tree` is the paper's random tree (built with
  /// `max_degree`, bit-identical to the seed runs); the other families are
  /// the scale-study overlays of net/overlays.hpp, parameterized by
  /// `overlay_degree` (BA attachment count is overlay_degree/2, so the mean
  /// degree lands near the tree's cap).
  OverlayKind overlay = OverlayKind::Tree;
  std::uint32_t overlay_degree = 4;
  /// Watts–Strogatz rewiring probability (ignored by other families).
  double ws_rewire = 0.1;

  /// Zipf exponent s of pattern popularity: pattern rank r is drawn with
  /// probability ∝ 1/(r+1)^s for subscriptions and event content alike.
  /// 0 keeps the paper's uniform draws — and the exact RNG sequence.
  double zipf_exponent = 0.0;
  /// Skew of per-node subscription counts: 0 gives every node exactly
  /// πmax patterns (the paper); s > 0 draws each node's count from a
  /// truncated power law P(k) ∝ k^(-s) over [1, min(Π, max(2·πmax, 8))].
  double subscription_skew = 0.0;

  /// How many dispatchers publish. 0 (the paper, and the default) means
  /// every dispatcher runs its own Poisson publisher. A positive count
  /// restricts publishing to that many evenly-spaced dispatcher ids, each
  /// still publishing at `publish_rate_hz` — the few-producers/many-
  /// consumers regime of real deployments, and the only way to keep
  /// per-(source, pattern) streams dense enough for sequence-gap loss
  /// detection once per-node rate shrinks with N.
  std::uint32_t publisher_count = 0;

  /// How subscriptions become routing state. `Flood` simulates the §II
  /// subscription-forwarding floods (the paper's behaviour, verified
  /// against the oracle). `Oracle` installs the converged tables directly
  /// (Dispatcher::subscribe_local + rebuild_routes) — the only affordable
  /// bootstrap at 10⁴⁺ nodes, where the floods alone would dominate the
  /// simulation.
  enum class SubscriptionBootstrap { Flood, Oracle };
  SubscriptionBootstrap bootstrap = SubscriptionBootstrap::Flood;

  // -- sources of event loss ---------------------------------------------------
  double link_error_rate = 0.1;             ///< ε
  /// Loss rate of the out-of-band channel; defaults to ε when unset
  /// ("not necessarily reliable, e.g. UDP-based", §III-B).
  std::optional<double> oob_loss_rate;
  /// ρ: interval between reconfigurations; nullopt = ∞ (no churn, Fig. 2).
  std::optional<Duration> reconfiguration_interval;
  Duration repair_time = Duration::millis(100);

  /// How subscription routes are restored after a topology change:
  /// `Oracle` installs the converged outcome of ref [7]'s protocol
  /// instantly at repair time (the paper-equivalent default); `Protocol`
  /// runs the distributed retraction/re-advertisement over control
  /// messages, so restoration itself takes time and traffic.
  enum class RouteRepair { Oracle, Protocol };
  RouteRepair route_repair = RouteRepair::Oracle;

  // -- recovery ----------------------------------------------------------------
  Algorithm algorithm = Algorithm::NoRecovery;
  GossipConfig gossip;  ///< T, β, P_forward, P_source, …

  // -- fault injection ---------------------------------------------------------
  /// Declarative chaos plan (node churn, bursty links, slowdowns, scripted
  /// partitions); times are relative to publish_start(). The default comes
  /// from EPICAST_FAULTS; an empty plan constructs no controller at all and
  /// the run is bit-identical to a fault-free build.
  fault::FaultPlan faults = fault::default_fault_plan();

  /// How message sizes are charged to links and byte counters: `Nominal`
  /// uses the configured constants (the paper's equal-size assumption —
  /// keeps published figures bit-identical), `Wire` uses the codec-computed
  /// frame size of each message. Defaults from EPICAST_SIZING.
  SizingMode sizing_mode = default_sizing_mode();

  /// Wire the runtime conformance oracles (epicast/oracle) into the run:
  /// pure observers checking delivery/buffer/digest/wire safety properties
  /// live, aborting on the first violation. Defaults on; EPICAST_ORACLES=0
  /// (or a library built with -DEPICAST_ORACLES=OFF) turns them off for
  /// overhead-sensitive benchmarking.
  bool oracles = oracle_default_enabled();

  /// oracle::oracles_enabled_by_default(), re-declared here so this header
  /// stays independent of the oracle module.
  [[nodiscard]] static bool oracle_default_enabled();

  /// Nanosecond timing for the hot-path phase profiler. Op counts are always
  /// collected (ScenarioResult::hotpath); enabling this adds two clock reads
  /// per phase entry, so it is off by default. Defaults from
  /// EPICAST_PROFILE=1. Timing changes no RNG draw and no simulated time:
  /// results stay bit-identical either way.
  bool profile_hotpath = profile_default_enabled();

  /// True iff EPICAST_PROFILE is set to a truthy value ("1", "on").
  [[nodiscard]] static bool profile_default_enabled();

  /// Shard count of the conservative parallel engine (`--shards`). 1 (the
  /// default) runs the serial scheduler; K > 1 partitions the nodes into K
  /// contiguous blocks driven through per-shard heaps with cross-shard
  /// mailboxes. Results are bit-identical either way (the tests/parallel
  /// tier proves it). Defaults from EPICAST_SHARDS.
  std::uint32_t shards = shards_default();

  /// EPICAST_SHARDS as a shard count; 1 when unset or invalid.
  [[nodiscard]] static std::uint32_t shards_default();

  /// Worker threads of the sharded engine (`--threads`). 1 (the default)
  /// executes windows serially on the calling thread; N > 1 drains shard
  /// lanes concurrently on a persistent pool, with deferred side effects
  /// replayed at window barriers so results stay byte-identical to the
  /// serial run for every thread count. Only meaningful with shards > 1;
  /// the runner clamps to min(shards, host parallelism). Defaults from
  /// EPICAST_THREADS.
  std::uint32_t threads = threads_default();

  /// EPICAST_THREADS as a thread count; 1 when unset or invalid.
  [[nodiscard]] static std::uint32_t threads_default();

  // -- link details -------------------------------------------------------------
  double link_bandwidth_bps = 10e6;         ///< 10 Mbit/s Ethernet (§IV-A)
  Duration link_propagation = Duration::micros(50);
  Duration direct_latency_min = Duration::micros(500);
  Duration direct_latency_max = Duration::millis(2);

  // -- timeline ----------------------------------------------------------------
  /// Subscription-forwarding floods run and settle during this phase.
  Duration subscription_phase = Duration::seconds(0.5);
  /// Publishing (and losses, and gossip) before measurement starts.
  Duration warmup = Duration::seconds(1.5);
  /// Length of the measurement window.
  Duration measure = Duration::seconds(10.0);
  /// A delivery counts if it happens within this horizon of publication;
  /// the simulation runs this much past the window so late buckets are not
  /// biased. The default is of the order of the buffer persistence at the
  /// paper's defaults (β=1500 ≈ 3.5 s) — recovery beyond the buffer
  /// lifetime is impossible anyway.
  Duration recovery_horizon = Duration::seconds(3.0);
  /// Publish-time bucket width of the delivery-rate time series.
  Duration bucket_width = Duration::millis(100);

  // -- derived -----------------------------------------------------------------
  [[nodiscard]] SimTime publish_start() const {
    return SimTime::zero() + subscription_phase;
  }
  [[nodiscard]] SimTime window_start() const {
    return publish_start() + warmup;
  }
  [[nodiscard]] SimTime window_end() const { return window_start() + measure; }
  [[nodiscard]] SimTime end_time() const {
    return window_end() + recovery_horizon + Duration::millis(200);
  }
  [[nodiscard]] double effective_oob_loss() const {
    return oob_loss_rate.value_or(link_error_rate);
  }

  /// Aborts (with a message) on inconsistent parameters.
  void validate() const;

  /// Paper defaults (Fig. 2) with the given algorithm.
  [[nodiscard]] static ScenarioConfig paper_defaults(Algorithm algorithm);

  /// Human-readable one-per-line dump (bench_fig2_params).
  [[nodiscard]] std::string describe() const;
};

}  // namespace epicast
