// epicast — parallel sweep engine.
//
// Every paper figure is a sweep of independent deterministic scenarios
// (run_scenario is a pure function of config + seed and shares no state),
// so sweeps parallelize without changing results. SweepRunner owns a fixed
// pool of N worker threads that claim scenarios in input order from a
// shared cursor — no work stealing, no task queue — and write results into
// pre-sized slots, so the output order equals the input order regardless of
// completion order and the run is deterministic for any job count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "epicast/scenario/config.hpp"
#include "epicast/scenario/runner.hpp"

namespace epicast {

struct LabeledConfig {
  std::string label;
  ScenarioConfig config;
};

struct LabeledResult {
  std::string label;
  ScenarioResult result;
};

struct SweepOptions {
  /// Worker threads. 0 resolves via EPICAST_JOBS, then
  /// hardware_concurrency (see SweepRunner::resolve_jobs).
  unsigned jobs = 0;
  /// Print one progress line per finished scenario to stderr.
  bool progress = true;
};

/// Timing record of the last run() — per-scenario and aggregate wall time.
struct SweepStats {
  unsigned jobs_used = 0;
  double wall_seconds = 0.0;                  ///< whole sweep, start to join
  std::vector<double> scenario_wall_seconds;  ///< input order
  std::uint64_t sim_events_executed = 0;      ///< summed over scenarios
  std::size_t scenarios = 0;

  [[nodiscard]] double scenarios_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(scenarios) / wall_seconds
               : 0.0;
  }
  [[nodiscard]] double events_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(sim_events_executed) / wall_seconds
               : 0.0;
  }
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Worker threads this runner will use (options resolved at construction).
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Runs every config; results come back in input order.
  [[nodiscard]] std::vector<ScenarioResult> run(
      const std::vector<ScenarioConfig>& configs);

  /// As above, with a label carried through to the result and the progress
  /// output.
  [[nodiscard]] std::vector<LabeledResult> run(
      std::vector<LabeledConfig> configs);

  /// Timings of the most recent run().
  [[nodiscard]] const SweepStats& last_stats() const { return stats_; }

  /// 0 → EPICAST_JOBS environment variable, if unset/invalid →
  /// available_parallelism(), never less than 1. An explicit request (arg
  /// or env) is honored verbatim; only the auto-detected default is clamped
  /// to the CPUs this process may actually run on.
  [[nodiscard]] static unsigned resolve_jobs(unsigned requested);

  /// CPUs available to this process: hardware_concurrency clamped to the
  /// scheduling affinity mask (a container limited to 1 CPU reports 1 here
  /// even when the machine has more cores). Never less than 1.
  [[nodiscard]] static unsigned available_parallelism();

 private:
  std::vector<ScenarioResult> run_indexed(
      const std::vector<const ScenarioConfig*>& configs,
      const std::vector<const std::string*>& labels);

  SweepOptions options_;
  unsigned jobs_;
  SweepStats stats_;
};

}  // namespace epicast
