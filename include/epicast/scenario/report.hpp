// epicast — sweep execution and reporting helpers for benches/examples.
//
// Every paper figure is a sweep: a list of (label, config) pairs whose
// results become rows of a text table. Scenarios are independent and
// deterministic, so sweeps run on a thread pool; results come back in input
// order.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "epicast/scenario/config.hpp"
#include "epicast/scenario/runner.hpp"
#include "epicast/scenario/sweep.hpp"

namespace epicast {

/// Runs all configs on a SweepRunner with `max_parallel` worker threads
/// (0 = EPICAST_JOBS / hardware concurrency). Prints one progress line per
/// finished run to stderr when `verbose`. Results are returned in input
/// order.
[[nodiscard]] std::vector<LabeledResult> run_sweep(
    std::vector<LabeledConfig> configs, unsigned max_parallel = 0,
    bool verbose = true);

/// One-paragraph human summary of a run (examples use this).
void print_summary(std::ostream& os, const std::string& label,
                   const ScenarioResult& result);

/// Machine-readable result as one JSON object. Deliberately excludes
/// wall-clock and profiler-timing fields so the same (config, seed) run
/// serializes byte-identically — CI's determinism smoke diffs two of these.
[[nodiscard]] std::string result_json(const ScenarioResult& result);

/// Replicated execution over consecutive seeds — the paper's §IV-A
/// methodology check ("results of 10 simulations ran with different random
/// seeds showed that variations are limited, around 1%-2%").
struct ReplicatedResult {
  std::vector<ScenarioResult> runs;
  double mean_delivery = 0.0;
  double stddev_delivery = 0.0;     ///< population standard deviation
  double min_delivery = 1.0;
  double max_delivery = 0.0;
  double mean_gossip_per_dispatcher = 0.0;
  double mean_gossip_event_ratio = 0.0;
};

[[nodiscard]] ReplicatedResult run_replicated(ScenarioConfig base,
                                              unsigned replicas,
                                              unsigned max_parallel = 0);

/// Writes series sharing an x-axis as CSV: header "x,name1,name2,...",
/// one row per x value, empty cells for missing points.
void write_series_csv(std::ostream& os, const std::string& x_label,
                      const std::vector<TimeSeries>& series);

/// Renders a figure table: one row per x value, one column per algorithm
/// series. `extract` maps a result to the y value.
[[nodiscard]] std::string sweep_table(
    const std::string& x_label,
    const std::vector<std::string>& series_names,
    const std::vector<double>& xs,
    const std::vector<LabeledResult>& results,  // row-major: x × series
    const std::function<double(const ScenarioResult&)>& extract);

}  // namespace epicast
