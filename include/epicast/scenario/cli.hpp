// epicast — command-line configuration of scenarios.
//
// Backs the `epicast_sim` tool (examples/epicast_sim.cpp): a small,
// dependency-free flag parser mapping --key=value pairs onto
// ScenarioConfig. Kept in the library so it is unit-testable and reusable
// by downstream tools.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "epicast/scenario/config.hpp"

namespace epicast {

struct CliParse {
  ScenarioConfig config;
  bool show_help = false;
  bool emit_csv = false;     ///< --csv: print the delivery series as CSV
  bool emit_json = false;    ///< --json: print the machine-readable result
  /// Set iff parsing failed; describes the offending flag.
  std::optional<std::string> error;
};

/// Parses `args` (argv[1..]) onto paper defaults. Recognized flags:
///   --algorithm=<no-recovery|push|subscriber-pull|publisher-pull|
///                combined-pull|random-pull>
///   --nodes=N --epsilon=E --rate=R --seed=S
///   --beta=B --interval=T --pforward=P --psource=P
///   --pi-max=K --patterns-per-event=K --universe=K
///   --measure=SECONDS --warmup=SECONDS --horizon=SECONDS
///   --reconfig=RHO_SECONDS (enables churn; links become reliable unless
///                           --epsilon is also given)
///   --overlay=<tree|barabasi-albert|watts-strogatz|random-regular|
///              geo-cluster> --overlay-degree=D --ws-rewire=P
///   --zipf=S --sub-skew=S --publishers=K --bootstrap=<flood|oracle>
///   --faults=PLAN (fault-plan grammar, see epicast/fault/plan.hpp)
///   --pull-timeout=SECONDS --pull-retries=N (request retry hardening)
///   --oob-loss=E --csv --json --help
[[nodiscard]] CliParse parse_cli(const std::vector<std::string>& args);

/// The --help text.
[[nodiscard]] std::string cli_usage();

}  // namespace epicast
