// epicast — end-to-end scenario execution.
//
// Builds the full stack (topology → transport → dispatchers → recovery →
// workload → metrics) from a ScenarioConfig, runs the simulation timeline,
// and returns every quantity the paper's figures need.
//
// Timeline:
//   0 ……………………… subscription floods settle (verified against the oracle)
//   publish_start … Poisson publishing + gossip rounds (+ churn) begin
//   window_start …… measurement window opens (warmup excluded)
//   window_end ……… window closes; publishing continues so late gaps are
//                    still detectable
//   end_time ………… recovery horizon past the window; simulation stops
#pragma once

#include <cstdint>

#include "epicast/common/message_pool.hpp"
#include "epicast/fault/plan.hpp"
#include "epicast/gossip/protocol.hpp"
#include "epicast/metrics/hotpath_profiler.hpp"
#include "epicast/metrics/message_stats.hpp"
#include "epicast/metrics/time_series.hpp"
#include "epicast/scenario/config.hpp"

namespace epicast {

struct ScenarioResult {
  // -- delivery (§IV-B) -------------------------------------------------------
  double delivery_rate = 0.0;           ///< within the recovery horizon
  double eventual_delivery_rate = 0.0;  ///< ignoring the horizon
  double receivers_per_event = 0.0;     ///< Fig. 7 metric
  double mean_recovery_latency_s = 0.0;
  double recovery_latency_p50_s = 0.0;
  double recovery_latency_p90_s = 0.0;
  double recovery_latency_p99_s = 0.0;
  std::uint64_t events_published = 0;   ///< whole run
  std::uint64_t events_tracked = 0;     ///< inside the window
  std::uint64_t expected_pairs = 0;
  std::uint64_t delivered_pairs = 0;
  std::uint64_t recovered_pairs = 0;
  TimeSeries delivery_series;           ///< delivery rate vs publish time

  // -- overhead (§IV-E), measured inside the window ----------------------------
  double gossip_msgs_per_dispatcher = 0.0;
  double gossip_event_ratio = 0.0;
  /// Byte-denominated counterparts, in the configured SizingMode's units
  /// (nominal constants or codec wire-frame sizes).
  double gossip_bytes_per_dispatcher = 0.0;
  double gossip_event_byte_ratio = 0.0;
  MessageStats::Snapshot traffic;

  // -- recovery-protocol internals, whole run, summed over dispatchers ---------
  GossipProtocolBase::Stats gossip_totals;

  // -- environment --------------------------------------------------------------
  double mean_pairwise_distance = 0.0;  ///< of the initial tree
  std::uint64_t reconfig_breaks = 0;
  std::uint64_t reconfig_repairs = 0;
  std::uint64_t reconfig_deferred = 0;  ///< repairs re-queued (crashed side)
  std::uint64_t drops_no_link = 0;      ///< stale-route drops, whole run

  // -- fault injection ------------------------------------------------------------
  /// Execution counters, per-epoch delivery ratios, and post-heal
  /// convergence latency for the run's FaultPlan (all-zero when empty).
  fault::FaultSummary fault;

  // -- hot-path attribution ------------------------------------------------------
  /// Per-phase op counts (always) and inclusive nanoseconds (when
  /// ScenarioConfig::profile_hotpath was set).
  HotpathProfiler::Snapshot hotpath;
  /// Message-pool counters for the run (allocations, reuses, slab bytes).
  MessagePool::Stats pool;

  // -- memory footprint (scale figures) -----------------------------------------
  /// Bytes owned by the hot per-node state at scenario end, by component.
  /// `routing` covers subscription tables + duplicate-suppression masks
  /// across all dispatchers; `seen` the event dedup sets; `caches` the
  /// retransmission buffers' containers (not the shared events); `topology`
  /// the adjacency (mutation vectors + CSR + BFS scratch); `tracker` the
  /// delivery-metric bookkeeping.
  struct MemoryBreakdown {
    std::uint32_t node_count = 0;
    std::size_t topology_bytes = 0;
    std::size_t routing_bytes = 0;
    std::size_t seen_bytes = 0;
    std::size_t cache_bytes = 0;
    std::size_t tracker_bytes = 0;
    [[nodiscard]] std::size_t total_bytes() const {
      return topology_bytes + routing_bytes + seen_bytes + cache_bytes +
             tracker_bytes;
    }
    [[nodiscard]] double bytes_per_node() const {
      return node_count == 0
                 ? 0.0
                 : static_cast<double>(total_bytes()) / node_count;
    }
  };
  MemoryBreakdown memory;

  // -- sharded-engine execution (not serialized into result_json — the
  // engine must not influence the scientific output, only how fast it is
  // computed) ------------------------------------------------------------------
  struct ShardExecution {
    std::uint32_t shards = 1;            ///< effective shard count
    std::uint32_t threads = 1;           ///< effective worker threads
    std::uint64_t windows = 0;           ///< lookahead windows opened
    std::uint64_t parallel_windows = 0;  ///< ... run on the worker pool
    double events_per_window = 0.0;      ///< mean events inside a window
    double cross_post_ratio = 0.0;       ///< cross-shard share of arrivals
    double barrier_wait_seconds = 0.0;   ///< master wall time at barriers
  };
  ShardExecution shard;

  // -- bookkeeping ----------------------------------------------------------------
  std::uint64_t sim_events_executed = 0;
  /// Conformance checks performed by the oracle suite (0 when oracles are
  /// disabled). Tests assert this is non-zero to prove oracles were active.
  std::uint64_t oracle_checks = 0;
  double wall_seconds = 0.0;
};

/// Runs one scenario to completion. Deterministic in (config, seed);
/// thread-safe (no shared state), so sweeps may run scenarios in parallel.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

}  // namespace epicast
