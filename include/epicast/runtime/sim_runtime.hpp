// epicast — the simulation backend of the runtime seam.
//
// Stateless adapters over an existing Simulator and (optionally) a
// net::Transport: every seam call delegates 1:1 to the wrapped object, in
// caller order, with no extra RNG forks and no extra scheduler events — the
// refactor from Simulator&/Transport& to Runtime& is therefore provably
// inert for the determinism seed guards.
//
// The transport is optional so components that only need clock/timers/RNG
// (the Reconfigurator, unit tests) can run on a bare Simulator; calling
// transport() without one is a programming error.
#pragma once

#include "epicast/runtime/runtime.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {
class Transport;  // net/transport.hpp
class Topology;
}  // namespace epicast

namespace epicast::runtime {

class SimRuntime final : public Runtime {
 public:
  /// Keeps references to `sim` and `transport`; both must outlive this
  /// runtime. `transport` may be null for timer/clock/RNG-only use.
  explicit SimRuntime(Simulator& sim, epicast::Transport* transport = nullptr);

  SimRuntime(const SimRuntime&) = delete;
  SimRuntime& operator=(const SimRuntime&) = delete;

  [[nodiscard]] Clock& clock() override { return clock_; }
  [[nodiscard]] const Clock& clock() const override { return clock_; }
  [[nodiscard]] TimerService& timers() override { return timers_; }
  [[nodiscard]] Transport& transport() override;
  Rng fork_rng() override { return sim_.fork_rng(); }
  [[nodiscard]] MessagePool& pool() override { return sim_.pool(); }
  [[nodiscard]] HotpathProfiler& profiler() override {
    return sim_.profiler();
  }

  [[nodiscard]] Simulator& simulator() { return sim_; }

 private:
  struct SimClock final : Clock {
    Simulator* sim = nullptr;
    [[nodiscard]] SimTime now() const override;
  };

  struct SimTimers final : TimerService {
    Simulator* sim = nullptr;
    TimerHandle after(Duration delay, Callback cb) override;
  };

  struct SimTransport final : Transport {
    epicast::Transport* net = nullptr;
    void attach(NodeId node, TransportReceiver& receiver) override;
    void send_overlay(NodeId from, NodeId to, MessagePtr msg) override;
    void send_direct(NodeId from, NodeId to, MessagePtr msg) override;
    [[nodiscard]] std::span<const NodeId> neighbors(
        NodeId node) const override;
    [[nodiscard]] bool has_link(NodeId a, NodeId b) const override;
    [[nodiscard]] std::uint32_t node_count() const override;
  };

  Simulator& sim_;
  SimClock clock_;
  SimTimers timers_;
  SimTransport transport_;
};

}  // namespace epicast::runtime
