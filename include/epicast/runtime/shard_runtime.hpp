// epicast — the sharded-engine backend of the runtime seam.
//
// One ShardRuntime per lane (K shard lanes for the dispatchers, one master
// lane for scenario-level components). Timers land on the lane's own heap,
// the clock reads the engine's global clock (kept in lockstep with the
// master Simulator), RNG forks delegate to the master Simulator so the
// fork order — the determinism-critical order — is identical to the serial
// run, and each shard lane owns its MessagePool so allocation stays
// shard-local. Transport calls pass straight through to the simulated
// net::Transport, whose arrival router feeds the engine's mailboxes.
#pragma once

#include <memory>

#include "epicast/runtime/runtime.hpp"
#include "epicast/sim/shard_engine.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {
class Transport;  // net/transport.hpp
}  // namespace epicast

namespace epicast::runtime {

class ShardRuntime final : public Runtime {
 public:
  /// Keeps references to `engine`, `sim`, and `transport`; all must outlive
  /// this runtime. `own_pool` gives the lane its own MessagePool (shard
  /// lanes); the master lane shares the Simulator's pool.
  ShardRuntime(ShardEngine& engine, std::uint32_t lane, Simulator& sim,
               epicast::Transport* transport, bool own_pool);

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  [[nodiscard]] Clock& clock() override { return clock_; }
  [[nodiscard]] const Clock& clock() const override { return clock_; }
  [[nodiscard]] TimerService& timers() override { return timers_; }
  [[nodiscard]] Transport& transport() override;
  Rng fork_rng() override { return sim_.fork_rng(); }
  [[nodiscard]] MessagePool& pool() override {
    return pool_ != nullptr ? *pool_ : sim_.pool();
  }
  /// Shard lanes charge their lane's private profiler (race-free under the
  /// worker pool; the runner merges lane snapshots into the run totals);
  /// the master lane charges the Simulator's.
  [[nodiscard]] HotpathProfiler& profiler() override {
    return lane_ < engine_->shard_count() ? engine_->lane_profiler(lane_)
                                          : sim_.profiler();
  }

  [[nodiscard]] std::uint32_t lane() const { return lane_; }

 private:
  struct ShardClock final : Clock {
    ShardEngine* engine = nullptr;
    [[nodiscard]] SimTime now() const override;
  };

  struct ShardTimers final : TimerService {
    ShardEngine* engine = nullptr;
    std::uint32_t lane = 0;
    TimerHandle after(Duration delay, Callback cb) override;
  };

  struct NetTransport final : Transport {
    epicast::Transport* net = nullptr;
    void attach(NodeId node, TransportReceiver& receiver) override;
    void send_overlay(NodeId from, NodeId to, MessagePtr msg) override;
    void send_direct(NodeId from, NodeId to, MessagePtr msg) override;
    [[nodiscard]] std::span<const NodeId> neighbors(
        NodeId node) const override;
    [[nodiscard]] bool has_link(NodeId a, NodeId b) const override;
    [[nodiscard]] std::uint32_t node_count() const override;
  };

  Simulator& sim_;
  ShardEngine* engine_ = nullptr;
  std::uint32_t lane_;
  std::unique_ptr<MessagePool> pool_;  // shard-local pool, if owned
  ShardClock clock_;
  ShardTimers timers_;
  NetTransport transport_;
};

}  // namespace epicast::runtime
