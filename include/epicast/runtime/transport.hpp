// epicast — the transport face of the runtime seam.
//
// Protocol code (Dispatcher, gossip protocols) sends and receives through
// this interface only; whether a message crosses a simulated link
// (runtime::SimRuntime over net::Transport) or a real UDP socket
// (runtime::AsyncRuntime) is invisible above the seam. The receiver and
// observer interfaces live here — in namespace epicast, their historical
// home — because both backends share them verbatim.
#pragma once

#include <cstdint>
#include <span>

#include "epicast/common/ids.hpp"
#include "epicast/net/message.hpp"

namespace epicast {

/// Where incoming messages are handed to. One receiver per node, typically
/// the node's Dispatcher.
class TransportReceiver {
 public:
  virtual ~TransportReceiver() = default;

  /// A message arrived over an overlay link from neighbour `from`.
  virtual void on_overlay_message(NodeId from, const MessagePtr& msg) = 0;

  /// A message arrived over the out-of-band channel from `from`.
  virtual void on_direct_message(NodeId from, const MessagePtr& msg) = 0;
};

/// Observes transport activity; implemented by the metrics layer and the
/// conformance-oracle suite.
class TransportObserver {
 public:
  virtual ~TransportObserver() = default;

  /// True when the observer may be invoked inline from a worker thread
  /// while the sharded engine executes a parallel window. That requires the
  /// hooks to only read state owned by the sending node's lane and to keep
  /// any own mutable state race-free (atomics or lane-partitioned). The
  /// default (false) makes the simulated transport defer the callback to
  /// the window barrier, where it replays on the master thread in the exact
  /// serial observation order — the safe choice for anything with plain
  /// counters or cross-node containers.
  [[nodiscard]] virtual bool concurrent_safe() const { return false; }

  virtual void on_send(NodeId from, NodeId to, const Message& msg,
                       bool overlay) = 0;
  virtual void on_loss(NodeId from, NodeId to, const Message& msg,
                       bool overlay) = 0;
  /// A send attempted over a missing overlay link (stale route), or whose
  /// link broke mid-flight.
  virtual void on_drop_no_link(NodeId from, NodeId to,
                               const Message& msg) = 0;
};

}  // namespace epicast

namespace epicast::runtime {

/// The two-channel message-passing contract of the paper's model (§III-B):
/// the overlay channel follows the dispatching-tree links; the direct
/// channel is out-of-band unicast for retransmission requests/replies.
/// Sends are asynchronous and unreliable on both channels; delivery, when
/// it happens, invokes the destination's attached TransportReceiver.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers the receiver for `node`. Must be called before traffic
  /// addressed to `node` arrives.
  virtual void attach(NodeId node, TransportReceiver& receiver) = 0;

  virtual void send_overlay(NodeId from, NodeId to, MessagePtr msg) = 0;
  virtual void send_direct(NodeId from, NodeId to, MessagePtr msg) = 0;

  /// Current overlay neighbours of `node`. The span is invalidated by
  /// topology mutations.
  [[nodiscard]] virtual std::span<const NodeId> neighbors(
      NodeId node) const = 0;

  /// True iff the overlay currently has a link a—b.
  [[nodiscard]] virtual bool has_link(NodeId a, NodeId b) const = 0;

  /// Number of nodes in the overlay (NodeId values are dense in
  /// [0, node_count)).
  [[nodiscard]] virtual std::uint32_t node_count() const = 0;
};

}  // namespace epicast::runtime
