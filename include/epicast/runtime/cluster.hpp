// epicast — static cluster description for real-socket deployments.
//
// One text file describes the whole cluster: topology, endpoints,
// subscriptions, the recovery algorithm and its knobs, and the workload the
// daemons generate. Every epicastd process loads the same file and picks its
// own row by --node-id, so the cluster's shared state is a file — no
// membership protocol, matching the paper's static-deployment evaluation
// model (§IV-A).
//
// Format: one directive per line, '#' starts a comment.
//
//   node <id> <ipv4> <port>       # one per node; ids dense [0, N)
//   link <a> <b>                  # overlay link (symmetric)
//   sub <node> <pattern>          # node subscribes to pattern
//   algorithm <name>              # none|push|subscriber-pull|
//                                 #   publisher-pull|combined-pull|random-pull
//   gossip-interval-ms <float>    # T  (paper Fig. 2: 30)
//   beta <int>                    # β  retransmission buffer size
//   pforward <float>              # P_forward
//   psource <float>               # P_source (combined pull)
//   request-timeout-ms <float>    # pull retry hardening (0 = off)
//   pattern-universe <int>        # Π
//   patterns-per-event <int>      # patterns drawn per published event
//   payload-bytes <int>           # event payload size
//   rate <float>                  # per-publisher publish rate (events/s)
//   publisher <id>                # repeatable; none listed = all publish
//   settle <float>                # seconds before publishing starts
//   run <float>                   # seconds of measured publishing
//   drain <float>                 # seconds of recovery tail after publishing
//   drop-rate <float>             # synthetic receive-side ε
//   seed <int>                    # RNG seed base (node id is added)
//   sizing wire|nominal           # must be wire for real sockets
//   queue-capacity <int>          # bounded inbound frame queue
//   oracles on|off                # runtime conformance oracles
//   heartbeat-interval-ms <float> # failure-detector beacons (0 = off)
//   epoch-ns <int>                # shared CLOCK_MONOTONIC epoch (-1 = local)
//   faults <spec>                 # wire fault plan: burst/slow/partition
//                                 #   (fault/plan.hpp grammar; churn invalid)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/fault/plan.hpp"
#include "epicast/gossip/config.hpp"
#include "epicast/net/message.hpp"
#include "epicast/runtime/async_runtime.hpp"

namespace epicast::runtime {

struct ClusterConfig {
  /// endpoints[i] is node i's UDP endpoint; ids must be dense [0, N).
  std::vector<PeerEndpoint> endpoints;
  std::vector<std::pair<NodeId, NodeId>> links;
  std::vector<std::pair<NodeId, Pattern>> subscriptions;

  Algorithm algorithm = Algorithm::CombinedPull;
  GossipConfig gossip;

  std::uint32_t pattern_universe = 16;
  std::uint32_t patterns_per_event = 1;
  std::size_t event_payload_bytes = 1000;
  /// Poisson publish rate per publishing node (events/second).
  double publish_rate_hz = 10.0;
  /// Nodes that publish; empty = every node.
  std::vector<NodeId> publishers;

  double settle_seconds = 1.0;
  double run_seconds = 10.0;
  double drain_seconds = 2.0;

  double drop_rate = 0.0;
  std::uint64_t seed = 1;
  SizingMode sizing = SizingMode::Wire;
  std::size_t queue_capacity = 4096;
  bool oracles = true;

  /// True once a request-timeout-ms directive appeared. Daemon mode turns
  /// retry hardening on by default (3× the gossip interval) when the
  /// config is silent; the simulator default stays off (seed guards pin
  /// fault-free sim results bit-exactly).
  bool request_timeout_set = false;

  /// Liveness beacon period of the daemon's failure detector; 0 disables
  /// heartbeats (and with them suspicion, death confirmation, and route
  /// repair).
  double heartbeat_interval_ms = 250.0;

  /// Shared CLOCK_MONOTONIC epoch (see AsyncRuntimeConfig::clock_epoch_ns);
  /// the cluster harness writes time.monotonic_ns() here so every daemon —
  /// including ones relaunched mid-run — lives on one timeline. -1 keeps
  /// per-process construction epochs.
  std::int64_t clock_epoch_ns = -1;

  /// Wire-level fault plan executed by every daemon's AsyncRuntime
  /// (`faults <spec>` directive / epicastd --faults override). Churn specs
  /// are invalid here — the harness --chaos schedule kills real processes.
  fault::FaultPlan faults;

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(endpoints.size());
  }

  /// Throws std::invalid_argument on inconsistency (missing nodes, ids out
  /// of range, patterns outside the universe, bad probabilities, ...).
  void validate() const;
};

/// Parses the directive format above. Throws std::invalid_argument with the
/// offending line number on syntax errors; the result is validate()d.
[[nodiscard]] ClusterConfig parse_cluster_config(const std::string& text);

/// Reads and parses `path`. Throws std::runtime_error if unreadable.
[[nodiscard]] ClusterConfig load_cluster_config(const std::string& path);

/// Parses an algorithm name as used by the `algorithm` directive (and the
/// epicast_sim --algorithm flag). Throws std::invalid_argument on unknown
/// names.
[[nodiscard]] Algorithm parse_algorithm_name(const std::string& name);

}  // namespace epicast::runtime
