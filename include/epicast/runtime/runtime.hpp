// epicast — the runtime seam: clock, timers, transport, randomness.
//
// Everything a protocol component needs from its environment, behind one
// interface. The simulation backend (SimRuntime) adapts the deterministic
// scheduler and the simulated links; the socket backend (AsyncRuntime)
// adapts a monotonic clock, timerfd-backed timers, and epoll UDP sockets.
// Protocol code written against `Runtime` runs on either unchanged — the
// property the conformance suite in tests/runtime/ pins.
//
// Determinism contract (SimRuntime): the adapters add no RNG forks and no
// scheduler events beyond what the wrapped calls themselves make, and they
// issue those calls in exactly the order the caller makes them — so a
// protocol refactored from Simulator& to Runtime& produces bit-identical
// runs (the seed guards in tests/test_determinism.cpp enforce this).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "epicast/common/message_pool.hpp"
#include "epicast/common/rng.hpp"
#include "epicast/metrics/hotpath_profiler.hpp"
#include "epicast/runtime/transport.hpp"
#include "epicast/sim/time.hpp"

namespace epicast::runtime {

/// Time source. Simulated time or monotonic-since-start; either way a
/// SimTime that only moves forward.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// Cancellation token for a one-shot timer. Copyable; all copies refer to
/// the same scheduled callback. A default-constructed handle is inert.
class TimerHandle {
 public:
  /// Backend-owned state behind a handle.
  class State {
   public:
    virtual ~State() = default;
    /// Cancels the pending callback; returns true if it was still pending.
    virtual bool cancel() = 0;
    [[nodiscard]] virtual bool pending() const = 0;
  };

  TimerHandle() = default;
  explicit TimerHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  bool cancel() { return state_ != nullptr && state_->cancel(); }
  [[nodiscard]] bool pending() const {
    return state_ != nullptr && state_->pending();
  }

 private:
  std::shared_ptr<State> state_;
};

/// One-shot timer scheduling.
class TimerService {
 public:
  using Callback = std::function<void()>;

  virtual ~TimerService() = default;

  /// Schedules `cb` to run after `delay`. Timers with equal deadlines fire
  /// in scheduling order (FIFO) — protocol determinism relies on it.
  virtual TimerHandle after(Duration delay, Callback cb) = 0;
};

/// A repeating timer over any TimerService. Owns its scheduling; cancelled
/// on destruction, so a component holding one by value cannot leave
/// callbacks dangling. Mirrors epicast::PeriodicTimer (sim/simulator.hpp)
/// call-for-call: the re-arm sequence issues exactly the same
/// schedule-after calls, which keeps SimRuntime bit-identical.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  PeriodicTimer(PeriodicTimer&&) = default;
  PeriodicTimer& operator=(PeriodicTimer&& other) noexcept {
    if (this != &other) {
      stop();
      state_ = std::move(other.state_);
    }
    return *this;
  }

  /// True while ticking.
  [[nodiscard]] bool running() const { return state_ != nullptr; }

  /// Stops future ticks. Idempotent.
  void stop();

  /// Changes the interval; the next tick happens `interval` from now.
  void set_interval(Duration interval);

 private:
  friend class Runtime;
  struct State {
    TimerService* timers = nullptr;
    Duration interval;
    std::function<void()> on_tick;
    TimerHandle handle;
  };
  static void arm(const std::shared_ptr<State>& state);

  std::shared_ptr<State> state_;
};

/// The full seam: what a protocol component may touch of its environment.
/// References returned by the accessors stay valid for the runtime's
/// lifetime.
class Runtime {
 public:
  virtual ~Runtime() = default;

  [[nodiscard]] virtual Clock& clock() = 0;
  [[nodiscard]] virtual const Clock& clock() const = 0;
  [[nodiscard]] virtual TimerService& timers() = 0;
  [[nodiscard]] virtual Transport& transport() = 0;

  /// Derives an independent RNG stream for a component. Call order matters
  /// (and, under SimRuntime, is the determinism-critical fork order);
  /// components fork their streams during construction.
  virtual Rng fork_rng() = 0;

  /// Message/event allocation pool shared by every component on this
  /// runtime.
  [[nodiscard]] virtual MessagePool& pool() = 0;

  /// Hot-path phase counters.
  [[nodiscard]] virtual HotpathProfiler& profiler() = 0;

  // -- conveniences ---------------------------------------------------------

  [[nodiscard]] SimTime now() const { return clock().now(); }

  TimerHandle after(Duration delay, TimerService::Callback cb) {
    return timers().after(delay, std::move(cb));
  }

  /// Starts a periodic timer with the first tick after `first_delay` and
  /// subsequent ticks every `interval`.
  PeriodicTimer every(Duration first_delay, Duration interval,
                      std::function<void()> on_tick);
};

}  // namespace epicast::runtime
