// epicast — the real-socket backend of the runtime seam.
//
// A single-threaded epoll event loop: one UDP socket per attached local
// node, timerfd-backed timers on CLOCK_MONOTONIC, and a bounded inbound
// frame queue between the sockets and the protocol handlers (drop-newest on
// overflow, in the style of the EventStreamCore dispatcher — losing a frame
// under overload is exactly the unreliability the recovery protocols are
// built for, so the bound is a feature, not a failure mode).
//
// Messages cross the wire as epicast::wire codec frames behind a small
// datagram header (magic, channel, sender id). Because real bytes are on
// real links, the runtime refuses to run in SizingMode::Nominal: construct
// it with SizingMode::Wire or get a std::invalid_argument.
//
// Several local nodes may attach to one AsyncRuntime (in-process cluster
// tests); epicastd attaches exactly one. Peers living in other processes
// are reached through the static peer table (ClusterConfig).
#pragma once

#include <csignal>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "epicast/common/message_pool.hpp"
#include "epicast/common/rng.hpp"
#include "epicast/fault/gilbert_elliott.hpp"
#include "epicast/fault/plan.hpp"
#include "epicast/metrics/hotpath_profiler.hpp"
#include "epicast/runtime/runtime.hpp"
#include "epicast/wire/buffer.hpp"

namespace epicast::runtime {

struct AsyncRuntimeConfig {
  /// Root of every RNG stream forked off this runtime (start jitter, gossip
  /// fan-out draws, ...). Real-socket runs are not bit-reproducible — the
  /// kernel schedules datagrams — but seeding keeps the *draw sequences*
  /// reproducible for debugging.
  std::uint64_t seed = 1;
  /// Must be SizingMode::Wire; anything else is a hard config error.
  SizingMode sizing = SizingMode::Wire;
  /// Bounded inbound frame queue shared by all local sockets; when full,
  /// newly drained datagrams are dropped and counted.
  std::size_t inbound_queue_capacity = 4096;
  /// Synthetic receive-side Bernoulli drop rate emulating the paper's link
  /// error rate ε on an otherwise-reliable localhost (control frames are
  /// exempt, mirroring TransportConfig::control_lossless).
  double inbound_drop_rate = 0.0;
  /// SO_RCVBUF requested for every node socket.
  int socket_rcvbuf_bytes = 1 << 20;
  /// Wire-level fault injection, the live analog of the simulator's
  /// FaultController: `burst` runs a Gilbert–Elliott chain per directed
  /// link (non-control frames only, mirroring control_lossless), `slow`
  /// delays inbound non-control dispatch by frame_bytes / (bandwidth ×
  /// factor), and `partition` blackholes k scheduled links entirely —
  /// control included, as a removed link carries nothing. `churn` specs
  /// are rejected: process death is real in daemon mode (the cluster
  /// harness --chaos schedule SIGKILLs daemons instead).
  fault::FaultPlan faults;
  /// Plan times are seconds relative to this instant on this runtime's
  /// clock (daemon mode passes the cluster's publish_start).
  double fault_origin_s = 0.0;
  /// Seed for fault draws that must agree across every process of the
  /// cluster (blackhole link choice) — the cluster-wide seed, not the
  /// per-node one.
  std::uint64_t fault_seed = 1;
  /// Synthetic link bandwidth backing `slow` windows.
  double slow_bandwidth_bytes_per_s = 1.25e6;
  /// Maps SimTime::zero() to this absolute CLOCK_MONOTONIC instant instead
  /// of the construction instant, so every process on one host shares one
  /// timeline — cross-process publish→deliver latency becomes measurable
  /// and a restarted daemon rejoins the cluster's lifecycle mid-phase.
  /// Negative (the default) keeps the construction-time epoch.
  std::int64_t clock_epoch_ns = -1;
};

/// Where a node's socket binds / where its datagrams are sent.
struct PeerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = bind ephemeral (in-process clusters)
};

class AsyncRuntime final : public Runtime,
                           public Clock,
                           public TimerService,
                           public Transport {
 public:
  explicit AsyncRuntime(AsyncRuntimeConfig config = {});
  ~AsyncRuntime() override;

  AsyncRuntime(const AsyncRuntime&) = delete;
  AsyncRuntime& operator=(const AsyncRuntime&) = delete;

  // -- cluster wiring (before attach) ---------------------------------------

  /// Declares node `id` at `ep`. Node ids must end up dense [0, N).
  void set_peer(NodeId id, const PeerEndpoint& ep);

  /// Declares an overlay link a—b (symmetric).
  void add_link(NodeId a, NodeId b);
  void remove_link(NodeId a, NodeId b);

  /// The endpoint a node is reachable at — after attach() this reflects the
  /// actually bound port (ephemeral binds resolve here).
  [[nodiscard]] const PeerEndpoint& peer(NodeId id) const;

  // -- Runtime --------------------------------------------------------------

  [[nodiscard]] Clock& clock() override { return *this; }
  [[nodiscard]] const Clock& clock() const override { return *this; }
  [[nodiscard]] TimerService& timers() override { return *this; }
  [[nodiscard]] Transport& transport() override { return *this; }
  Rng fork_rng() override { return root_rng_.fork(); }
  [[nodiscard]] MessagePool& pool() override { return pool_; }
  [[nodiscard]] HotpathProfiler& profiler() override { return profiler_; }

  // -- Clock ----------------------------------------------------------------

  /// Monotonic time since construction, mapped onto SimTime.
  [[nodiscard]] SimTime now() const override;

  // -- TimerService ---------------------------------------------------------

  TimerHandle after(Duration delay, Callback cb) override;

  // -- Transport ------------------------------------------------------------

  /// Binds the node's UDP socket (per its PeerEndpoint) and registers the
  /// receiver. Ephemeral binds write the resolved port back to the peer
  /// table, so in-process peers find each other.
  void attach(NodeId node, TransportReceiver& receiver) override;

  void send_overlay(NodeId from, NodeId to, MessagePtr msg) override;
  void send_direct(NodeId from, NodeId to, MessagePtr msg) override;
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId node) const override;
  [[nodiscard]] bool has_link(NodeId a, NodeId b) const override;
  [[nodiscard]] std::uint32_t node_count() const override;

  // -- event loop -----------------------------------------------------------

  /// One loop turn: fire due timers, wait for socket/timerfd readiness up
  /// to `max_wait`, drain sockets into the bounded queue, dispatch queued
  /// frames, fire timers that came due meanwhile.
  void poll(Duration max_wait);

  /// Polls until `deadline` (on this runtime's clock) or request_stop().
  void run_until(SimTime deadline);
  void run_for(Duration d) { run_until(now() + d); }

  /// Makes run_until return at the next loop turn. Safe to call from a
  /// signal handler via a watched flag — see set_stop_flag().
  void request_stop() { stop_ = true; }
  [[nodiscard]] bool stop_requested() const { return stop_; }
  /// An external flag (e.g. a sig_atomic_t set by a SIGTERM handler) the
  /// loop checks every turn.
  void set_stop_flag(const volatile std::sig_atomic_t* flag) {
    stop_flag_ = flag;
  }

  // -- observability --------------------------------------------------------

  /// TransportObserver hooks fire exactly as on the simulated transport:
  /// on_send before the datagram leaves, on_loss for synthetic inbound
  /// drops, on_drop_no_link for overlay sends without a link.
  void add_observer(TransportObserver& observer) {
    observers_.push_back(&observer);
  }

  /// Receive-side tap: every accepted frame, raw bytes plus decoded
  /// message, before the receiver runs. The oracle-over-real-traffic tests
  /// feed WireRoundTripOracle::verify_bytes from here.
  using FrameObserver = std::function<void(
      NodeId from, NodeId to, bool overlay,
      std::span<const std::uint8_t> frame, const MessagePtr& decoded)>;
  void set_frame_observer(FrameObserver obs) { frame_obs_ = std::move(obs); }

  struct Stats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t send_failures = 0;    ///< sendto errors (incl. EAGAIN)
    std::uint64_t decode_errors = 0;    ///< malformed frames discarded
    std::uint64_t queue_overflows = 0;  ///< inbound frames dropped (full)
    std::uint64_t drops_injected = 0;   ///< synthetic ε drops
    std::uint64_t drops_no_link = 0;    ///< overlay sends without a link
    std::uint64_t timers_fired = 0;
    // Wire-level fault injection (AsyncRuntimeConfig::faults):
    std::uint64_t burst_drops = 0;      ///< Gilbert–Elliott window losses
    std::uint64_t blackhole_drops = 0;  ///< scheduled blackhole losses
    std::uint64_t slowdown_delays = 0;  ///< frames delayed by slow windows
    // Liveness layer (fed by the daemon's FailureDetector via note_*):
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t heartbeats_received = 0;
    std::uint64_t peers_suspected = 0;       ///< suspicion onsets
    std::uint64_t peers_confirmed_dead = 0;  ///< confirmations
    std::uint64_t restarts_observed = 0;     ///< incarnation jumps seen
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Liveness counters live in the runtime's Stats so one stats dump covers
  /// the whole transport story; the failure detector drives them from the
  /// daemon layer through these hooks.
  void note_heartbeat_sent() { ++stats_.heartbeats_sent; }
  void note_heartbeat_received() { ++stats_.heartbeats_received; }
  void note_peer_suspected() { ++stats_.peers_suspected; }
  void note_peer_confirmed_dead() { ++stats_.peers_confirmed_dead; }
  void note_restart_observed() { ++stats_.restarts_observed; }

  [[nodiscard]] const AsyncRuntimeConfig& config() const { return config_; }

 private:
  struct AsyncTimerState;
  struct LocalNode;
  struct InboundFrame {
    NodeId to;
    NodeId from;
    bool overlay = false;
    std::vector<std::uint8_t> frame;  ///< codec frame (header stripped)
  };

  void send(NodeId from, NodeId to, MessagePtr msg, bool overlay);
  void drain_socket(LocalNode& node);
  void process_inbound();
  void fire_due_timers();
  void rearm_timerfd();
  [[nodiscard]] std::int64_t mono_ns() const;

  /// Final leg of inbound dispatch (frame observer + receiver), shared by
  /// the immediate path and slow-window delayed delivery.
  void deliver_frame(const InboundFrame& f, const MessagePtr& msg);
  /// True if a fault process eats this frame (counts + observer notified).
  [[nodiscard]] bool fault_drops_frame(const InboundFrame& f,
                                       const Message& msg);
  /// Slow-window delay for an inbound frame (zero outside windows).
  [[nodiscard]] Duration slow_delay(std::size_t frame_bytes) const;
  [[nodiscard]] bool window_active(Duration start,
                                   const std::optional<Duration>& stop) const;

  AsyncRuntimeConfig config_;
  Rng root_rng_;
  Rng drop_rng_;
  MessagePool pool_;
  HotpathProfiler profiler_;

  std::int64_t start_ns_ = 0;
  int epoll_fd_ = -1;
  int timer_fd_ = -1;

  std::vector<PeerEndpoint> peers_;             // indexed by NodeId
  /// peers_ resolved for sendto: (IPv4 address net order, port host order).
  std::vector<std::pair<std::uint32_t, std::uint16_t>> addr4_;
  std::vector<std::vector<NodeId>> links_;      // sorted adjacency
  std::vector<std::unique_ptr<LocalNode>> local_;  // indexed by NodeId

  /// Pending timers ordered by (deadline, sequence) — FIFO at equal
  /// deadlines, matching the sim scheduler's tie-break.
  std::map<std::pair<std::int64_t, std::uint64_t>,
           std::shared_ptr<AsyncTimerState>>
      timers_;
  std::uint64_t timer_seq_ = 0;
  std::int64_t armed_deadline_ns_ = -1;

  std::deque<InboundFrame> inbound_;
  std::vector<TransportObserver*> observers_;
  FrameObserver frame_obs_;
  wire::WireBuffer encode_buf_;
  std::vector<std::uint8_t> recv_buf_;

  bool stop_ = false;
  const volatile std::sig_atomic_t* stop_flag_ = nullptr;
  Stats stats_;

  /// Wire fault state (one entry per plan process, plan order).
  struct WireBurst {
    fault::BurstSpec spec;
    Rng rng{0};  ///< per-spec stream; channels fork from it lazily
    /// One Gilbert–Elliott chain per directed link, keyed (from<<32)|to,
    /// created in first-traffic order.
    std::unordered_map<std::uint64_t, fault::GilbertElliottChannel> channels;
  };
  struct WireBlackhole {
    fault::PartitionSpec spec;
    Rng rng{0};  ///< forked from fault_seed — identical in every process
    /// Undirected victim links, chosen deterministically from fault_seed
    /// and the static topology snapshot — every daemon of the cluster
    /// blackholes the same links.
    std::vector<std::pair<NodeId, NodeId>> victims;
    bool chosen = false;
  };
  void choose_blackhole_victims(WireBlackhole& bh);
  std::vector<WireBurst> wire_bursts_;
  std::vector<WireBlackhole> wire_blackholes_;
  /// Undirected link universe snapshotted at first attach (blackhole
  /// choices must not depend on later dynamic route repair).
  std::vector<std::pair<NodeId, NodeId>> static_links_;
};

}  // namespace epicast::runtime
