// epicast — pure-gossip dissemination comparator (paper §V).
//
// The paper contrasts its approach with hpcast, where gossip is not a
// recovery add-on but the *only* routing mechanism: full events (not
// digests) hop between nodes probabilistically, with no subscription
// routes. The paper lists the drawbacks: events reach non-interested
// nodes, the same node can receive an event several times, gossip
// messages carry entire event contents, and delivery is not guaranteed
// even without faults.
//
// This module implements that style of dissemination on the same overlay,
// transport, and workload, so `bench_compare_pure_gossip` can quantify the
// §V claims: how much more traffic pure gossip needs for comparable
// delivery, and how much of it lands on nodes that never wanted the event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/rng.hpp"
#include "epicast/net/transport.hpp"
#include "epicast/pubsub/event.hpp"
#include "epicast/pubsub/subscription_table.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {

struct PureGossipConfig {
  /// Neighbours each node forwards a fresh event to (its "infection"
  /// fan-out). Capped by the node's degree.
  std::uint32_t fanout = 2;
  /// Hop TTL; bounds how far an infection travels.
  std::uint32_t max_hops = 16;
};

/// A full event riding a gossip hop (hpcast-style: content, not digest).
class PureGossipMessage final : public Message {
 public:
  PureGossipMessage(EventPtr event, std::uint32_t hops)
      : event_(std::move(event)), hops_(hops) {}

  [[nodiscard]] MessageClass message_class() const override {
    return MessageClass::Event;  // it *is* the event traffic
  }
  [[nodiscard]] std::size_t size_bytes() const override {
    return event_->payload_bytes();
  }
  [[nodiscard]] const EventPtr& event() const { return event_; }
  [[nodiscard]] std::uint32_t hops() const { return hops_; }

 private:
  EventPtr event_;
  std::uint32_t hops_;
};

class PureGossipNode final : public TransportReceiver {
 public:
  PureGossipNode(NodeId id, Simulator& sim, Transport& transport,
                 PureGossipConfig config);

  [[nodiscard]] NodeId id() const { return id_; }

  /// Local subscription only — there is no subscription forwarding in this
  /// scheme; interest lives at the edge.
  void subscribe(Pattern p) { table_.add_local(p); }
  [[nodiscard]] const SubscriptionTable& table() const { return table_; }

  /// Publishes an event: delivers locally if interested and starts the
  /// infection towards `fanout` random neighbours.
  EventPtr publish(const std::vector<Pattern>& content,
                   std::size_t payload_bytes);

  using DeliveryListener =
      std::function<void(NodeId node, const EventPtr& event)>;
  void set_delivery_listener(DeliveryListener listener) {
    on_delivery_ = std::move(listener);
  }

  void on_overlay_message(NodeId from, const MessagePtr& msg) override;
  void on_direct_message(NodeId from, const MessagePtr& msg) override;

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t delivered = 0;       ///< interested first receptions
    std::uint64_t uninterested = 0;    ///< first receptions nobody wanted
    std::uint64_t duplicates = 0;      ///< repeat receptions (§V drawback)
    std::uint64_t forwarded = 0;       ///< copies sent onward
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void infect(const EventPtr& event, std::uint32_t hops, NodeId exclude);

  NodeId id_;
  Simulator& sim_;
  Transport& transport_;
  PureGossipConfig cfg_;
  Rng rng_;
  SubscriptionTable table_;
  std::unordered_set<EventId> seen_;
  std::uint64_t next_source_seq_ = 0;
  std::unordered_map<Pattern, std::uint64_t> next_pattern_seq_;
  DeliveryListener on_delivery_;
  Stats stats_;
};

/// One PureGossipNode per topology node, attached to the transport.
class PureGossipNetwork {
 public:
  PureGossipNetwork(Simulator& sim, Transport& transport,
                    PureGossipConfig config);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] PureGossipNode& node(NodeId id);

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& n : nodes_) fn(*n);
  }

  void set_delivery_listener(PureGossipNode::DeliveryListener listener);

  /// Sums the per-node statistics.
  [[nodiscard]] PureGossipNode::Stats total_stats() const;

 private:
  std::vector<std::unique_ptr<PureGossipNode>> nodes_;
};

}  // namespace epicast
