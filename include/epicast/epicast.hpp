// epicast — umbrella header.
//
// epicast is a C++20 library reproducing "Epidemic Algorithms for Reliable
// Content-Based Publish-Subscribe: An Evaluation" (Costa, Migliavacca,
// Picco, Cugola — ICDCS 2004): a distributed content-based pub-sub
// dispatching network with push / subscriber-pull / publisher-pull /
// combined-pull / random-pull epidemic event recovery, on a deterministic
// discrete-event simulation substrate.
//
// Typical entry points:
//   * epicast::ScenarioConfig + epicast::run_scenario — whole experiments;
//   * epicast::PubSubNetwork / Dispatcher — assemble networks by hand;
//   * epicast::make_recovery — attach an epidemic recovery protocol.
#pragma once

#include "epicast/common/assert.hpp"
#include "epicast/common/ids.hpp"
#include "epicast/common/logging.hpp"
#include "epicast/common/rng.hpp"
#include "epicast/compare/pure_gossip.hpp"
#include "epicast/fault/controller.hpp"
#include "epicast/fault/gilbert_elliott.hpp"
#include "epicast/fault/plan.hpp"
#include "epicast/fault/restart_policy.hpp"
#include "epicast/gossip/combined_pull.hpp"
#include "epicast/gossip/config.hpp"
#include "epicast/gossip/event_cache.hpp"
#include "epicast/gossip/messages.hpp"
#include "epicast/gossip/protocol.hpp"
#include "epicast/gossip/publisher_pull.hpp"
#include "epicast/gossip/push.hpp"
#include "epicast/gossip/random_pull.hpp"
#include "epicast/gossip/subscriber_pull.hpp"
#include "epicast/metrics/delivery_tracker.hpp"
#include "epicast/metrics/message_stats.hpp"
#include "epicast/metrics/time_series.hpp"
#include "epicast/net/link_model.hpp"
#include "epicast/oracle/checks.hpp"
#include "epicast/oracle/oracle.hpp"
#include "epicast/net/message.hpp"
#include "epicast/net/overlays.hpp"
#include "epicast/net/reconfigurator.hpp"
#include "epicast/net/topology.hpp"
#include "epicast/net/transport.hpp"
#include "epicast/pubsub/dispatcher.hpp"
#include "epicast/pubsub/event.hpp"
#include "epicast/pubsub/messages.hpp"
#include "epicast/pubsub/network.hpp"
#include "epicast/pubsub/pattern.hpp"
#include "epicast/pubsub/subscription_table.hpp"
#include "epicast/scenario/cli.hpp"
#include "epicast/scenario/config.hpp"
#include "epicast/scenario/report.hpp"
#include "epicast/scenario/runner.hpp"
#include "epicast/scenario/sweep.hpp"
#include "epicast/scenario/workload.hpp"
#include "epicast/sim/scheduler.hpp"
#include "epicast/sim/simulator.hpp"
#include "epicast/sim/time.hpp"
#include "epicast/wire/buffer.hpp"
#include "epicast/wire/codec.hpp"
#include "epicast/wire/error.hpp"
