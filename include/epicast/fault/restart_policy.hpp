// epicast — crash/restart state-loss policy.
//
// Lives in its own header (no dependencies) so the pubsub layer can declare
// RecoveryProtocol::on_restart without pulling in the fault-plan machinery.
#pragma once

namespace epicast::fault {

/// What a restarting node remembers (RecoveryProtocol::on_restart).
/// Warm keeps the recovery layer's soft state (event cache, loss-detector
/// watermarks, lost/routes buffers); Cold drops it, modelling a process
/// that lost its in-memory state. Dispatcher-level duplicate suppression is
/// treated as durable either way — delivery logs survive a crash, and the
/// unique-delivery oracle holds across restarts.
enum class RestartPolicy { Warm, Cold };

[[nodiscard]] constexpr const char* to_string(RestartPolicy p) {
  return p == RestartPolicy::Warm ? "warm" : "cold";
}

}  // namespace epicast::fault
