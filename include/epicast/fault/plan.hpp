// epicast — declarative fault plans.
//
// A FaultPlan is a deterministic script of fault *processes* layered onto a
// scenario: node crash/restart churn (with a warm/cold state-loss policy),
// Gilbert–Elliott bursty link loss, timed bandwidth degradation, and
// scheduled multi-link partitions. The plan is pure data — execution (and
// every RNG stream it needs) belongs to FaultController — so ScenarioConfig
// can carry a plan by value and an empty plan costs nothing: run_scenario
// constructs no controller, forks no RNG, and stays bit-identical to a
// fault-free build (the determinism seed guards pin this).
//
// Plans have a compact textual grammar for --faults / EPICAST_FAULTS:
//
//   churn(period=1,down=0.3,policy=cold,start=0,stop=8)
//   burst(p=0.05,r=0.5,start=2,stop=6)
//   slow(factor=0.25,start=3,stop=5)
//   partition(links=3,at=4,heal=5.5)
//
// Processes are ';'-separated; keys may appear in any order; omitted keys
// take the struct defaults below. All times are seconds relative to the
// scenario's publish_start (the fault timeline begins when publishing does).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "epicast/fault/gilbert_elliott.hpp"
#include "epicast/fault/restart_policy.hpp"
#include "epicast/sim/time.hpp"

namespace epicast::fault {

/// Node crash/restart churn: every `period`, one random alive node crashes
/// and restarts `downtime` later under `policy`.
struct ChurnSpec {
  Duration period = Duration::seconds(1.0);
  Duration downtime = Duration::seconds(0.3);
  RestartPolicy policy = RestartPolicy::Warm;
  Duration start = Duration::zero();        ///< relative to publish_start
  std::optional<Duration> stop;             ///< nullopt = whole run
};

/// Gilbert–Elliott bursty loss on every overlay link inside the window.
struct BurstSpec {
  GilbertElliottParams channel;
  Duration start = Duration::zero();
  std::optional<Duration> stop;
};

/// Bandwidth degradation: links run at `factor` of their configured
/// bandwidth inside the window.
struct SlowSpec {
  double factor = 0.25;
  Duration start = Duration::zero();
  std::optional<Duration> stop;
};

/// Scheduled partition: `links` random overlay links removed at `at`,
/// re-added (degree cap permitting) at `heal`.
struct PartitionSpec {
  std::uint32_t links = 1;
  Duration at = Duration::zero();
  Duration heal = Duration::seconds(1.0);
};

struct FaultPlan {
  std::vector<ChurnSpec> churns;
  std::vector<BurstSpec> bursts;
  std::vector<SlowSpec> slows;
  std::vector<PartitionSpec> partitions;

  [[nodiscard]] bool empty() const {
    return churns.empty() && bursts.empty() && slows.empty() &&
           partitions.empty();
  }
  [[nodiscard]] std::size_t process_count() const {
    return churns.size() + bursts.size() + slows.size() + partitions.size();
  }

  /// Aborts (with a message) on inconsistent parameters.
  void validate() const;

  /// The plan back in grammar form ("" for an empty plan).
  [[nodiscard]] std::string describe() const;
};

/// Parses the grammar above. Returns nullopt and sets `error` (if given)
/// on malformed input.
[[nodiscard]] std::optional<FaultPlan> parse_plan(const std::string& spec,
                                                  std::string* error = nullptr);

/// The plan EPICAST_FAULTS specifies, read once per process; the empty plan
/// when unset. Malformed specs abort — a silently ignored fault plan would
/// invalidate whatever experiment asked for it.
[[nodiscard]] const FaultPlan& default_fault_plan();

/// Execution counters, filled by FaultController.
struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t cold_restarts = 0;     ///< subset of restarts
  std::uint64_t crash_drops = 0;       ///< messages dropped at crashed nodes
  std::uint64_t burst_drops = 0;       ///< Gilbert–Elliott losses
  std::uint64_t bursts_entered = 0;    ///< Good→Bad transitions, all links
  std::uint64_t partitions_applied = 0;///< links removed by partition specs
  std::uint64_t partitions_healed = 0; ///< links restored
  std::uint64_t heal_skipped_links = 0;///< re-adds skipped (degree/duplicate)
  std::uint64_t slow_windows = 0;      ///< bandwidth windows applied
};

/// Delivery degradation over one fault window, by publish time
/// (DeliveryTracker::pairs_in_range).
struct FaultEpoch {
  std::string label;        ///< e.g. "churn", "burst", "partition"
  double start_s = 0.0;     ///< absolute sim time, seconds
  double end_s = 0.0;
  std::uint64_t expected_pairs = 0;
  std::uint64_t delivered_pairs = 0;      ///< within the recovery horizon
  std::uint64_t eventual_pairs = 0;       ///< ignoring the horizon
  [[nodiscard]] double delivery_ratio() const {
    return expected_pairs == 0
               ? 1.0
               : static_cast<double>(delivered_pairs) /
                     static_cast<double>(expected_pairs);
  }
  [[nodiscard]] double eventual_ratio() const {
    return expected_pairs == 0
               ? 1.0
               : static_cast<double>(eventual_pairs) /
                     static_cast<double>(expected_pairs);
  }
};

/// Everything a run reports about its faults (ScenarioResult::fault).
struct FaultSummary {
  FaultStats stats;
  std::vector<FaultEpoch> epochs;
  /// When the plan's last heal/restart happened (seconds, 0 if none).
  double last_heal_s = 0.0;
  /// Seconds between the last heal and the last recovery-path delivery —
  /// how long the epidemic needed to converge once the network was whole
  /// again. 0 when nothing was recovered after the last heal.
  double post_heal_convergence_s = 0.0;
};

}  // namespace epicast::fault
