// epicast — Gilbert–Elliott two-state bursty loss channel.
//
// The paper evaluates reliability only under i.i.d. Bernoulli loss (ε per
// message, LinkModel). Real links lose messages in *bursts*: a fading radio
// path or a congested queue stays bad for a while. The classic model is a
// two-state Markov chain — Good and Bad — with per-message transition
// probabilities p (Good→Bad) and r (Bad→Good) and per-state loss rates
// (≈0 in Good, ≈1 in Bad). The stationary loss rate has the closed form
//
//     L = (r·loss_good + p·loss_bad) / (p + r)
//
// which reduces to the textbook p/(p+r) for loss_good=0, loss_bad=1; the
// mean burst length is 1/r messages. FaultController lazily forks one
// channel per directed overlay link, layered on top of LinkModel's ε.
#pragma once

#include <cstdint>

#include "epicast/common/rng.hpp"

namespace epicast::fault {

struct GilbertElliottParams {
  double p_enter = 0.05;   ///< p: P(Good→Bad) per message
  double p_exit = 0.5;     ///< r: P(Bad→Good) per message
  double loss_good = 0.0;  ///< loss rate while Good
  double loss_bad = 1.0;   ///< loss rate while Bad

  /// True iff every probability is a valid probability and the chain can
  /// actually leave the Bad state it enters (p_exit > 0 or p_enter == 0).
  [[nodiscard]] bool valid() const;

  /// Closed-form stationary loss rate of the chain.
  [[nodiscard]] double stationary_loss_rate() const;

  /// Expected burst length in messages (1 / p_exit); 0 if the chain never
  /// enters the Bad state.
  [[nodiscard]] double mean_burst_length() const;
};

/// One directed channel instance: owns its Markov state and RNG stream.
/// Deterministic in (params, rng seed, call sequence).
class GilbertElliottChannel {
 public:
  GilbertElliottChannel(GilbertElliottParams params, Rng rng);

  /// Advances the chain by one message and draws its loss trial.
  /// Transition-then-loss order: the state the message sees is the state
  /// after this step's transition.
  [[nodiscard]] bool transmit_lost();

  [[nodiscard]] bool in_bad_state() const { return bad_; }
  [[nodiscard]] const GilbertElliottParams& params() const { return params_; }

  /// Returns to the Good state without consuming randomness (fault windows
  /// reset the chain when they reopen).
  void reset() { bad_ = false; }

  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t lost = 0;
    std::uint64_t bursts_entered = 0;  ///< Good→Bad transitions
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  GilbertElliottParams params_;
  Rng rng_;
  bool bad_ = false;
  Stats stats_;
};

}  // namespace epicast::fault
