// epicast — execution engine for declarative fault plans.
//
// FaultController turns a FaultPlan into scheduled simulator events and a
// transport fault filter:
//
//  * **churn** — every period one random alive node crashes: its recovery
//    protocol is stop()ped and all its traffic (both channels) is dropped.
//    After the downtime it restarts: on_restart(policy) then start(). The
//    application layer is modelled as still producing events while down
//    (they reach nobody), so per-(source, pattern) sequence streams keep
//    moving and subscribers detect the outage as gaps once traffic resumes.
//  * **burst** — inside the window every directed overlay link runs a
//    Gilbert–Elliott chain layered on top of LinkModel's ε; control traffic
//    is exempt when the transport's control channel is lossless (the chain
//    still advances, mirroring LinkModel's draw-even-when-lossless rule).
//  * **slow** — the window scales every link's effective bandwidth.
//  * **partition** — removes k random links at `at`, restores them at
//    `heal` (skipping links that would reconnect an already-connected pair
//    or violate the degree cap), then fires the heal listener.
//
// Determinism: the controller forks one RNG stream per plan process in plan
// order (churns, bursts, partitions) at construction. Each burst process
// further forks one stream per *sender* node in node order, and per-link
// burst channels fork from their sender's stream in that sender's
// first-traffic order — a node's sends all execute on its own engine lane,
// so threaded lookahead windows consume these streams in exactly the serial
// order without locking. A run with an empty plan constructs no controller
// at all and is bit-identical to a fault-free build.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "epicast/fault/gilbert_elliott.hpp"
#include "epicast/fault/plan.hpp"
#include "epicast/net/transport.hpp"
#include "epicast/pubsub/network.hpp"
#include "epicast/runtime/runtime.hpp"

namespace epicast::fault {

struct FaultControllerConfig {
  /// Plan times are relative to this instant (the scenario's publish_start).
  SimTime plan_origin;
  /// Where open-ended windows close for epoch accounting.
  SimTime end_time;
};

class FaultController {
 public:
  /// Validates the plan, forks the per-process RNG streams, and installs
  /// the crash/burst fault filter. References must outlive the controller.
  /// Scheduling and forks go through the runtime seam, so the controller
  /// runs unchanged on the serial simulator and the sharded engine's
  /// master lane.
  FaultController(runtime::Runtime& rt, Transport& transport,
                  PubSubNetwork& network, FaultPlan plan,
                  FaultControllerConfig config);

  FaultController(const FaultController&) = delete;
  FaultController& operator=(const FaultController&) = delete;

  /// Schedules every plan process. Call once, after the network is wired.
  void start();

  [[nodiscard]] bool is_crashed(NodeId node) const {
    return crashed_[node.value()] != 0;
  }

  /// Called after each partition heal (the scenario layer rebuilds routes
  /// here when running in oracle-repair mode).
  void set_heal_listener(std::function<void()> listener) {
    heal_listener_ = std::move(listener);
  }

  /// Execution counters; burst-channel totals are folded in at call time.
  [[nodiscard]] FaultStats stats() const;

  /// One labelled window per plan process (delivery counters unfilled —
  /// the scenario layer computes those from the DeliveryTracker).
  [[nodiscard]] std::vector<FaultEpoch> epoch_windows() const;

  /// When the last fault condition ended so far (restart, partition heal,
  /// burst/slow window close); SimTime::zero() if none has yet.
  [[nodiscard]] SimTime last_heal() const { return last_heal_; }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  struct ChurnState {
    ChurnSpec spec;
    Rng rng;
    runtime::PeriodicTimer timer;
  };
  struct BurstState {
    BurstSpec spec;
    /// One stream per sender node (forked in node order at construction);
    /// channels[from] forks lazily from senders[from] per destination, in
    /// the sender's first-traffic order. Partitioned by sender so the send
    /// path stays lane-local under the threaded engine.
    std::vector<Rng> senders;
    std::vector<std::unordered_map<std::uint32_t, GilbertElliottChannel>>
        channels;
    bool active = false;  ///< master-written (serial windows), worker-read
  };
  struct PartitionState {
    PartitionSpec spec;
    Rng rng;
    std::vector<Link> removed;
  };

  bool allow(NodeId from, NodeId to, const Message& msg, bool overlay);
  void churn_tick(ChurnState& churn);
  void crash(NodeId victim, const ChurnSpec& spec);
  void restart(NodeId node, RestartPolicy policy);
  void apply_partition(PartitionState& partition);
  void heal_partition(PartitionState& partition);
  void note_heal() {
    if (last_heal_ < rt_.now()) last_heal_ = rt_.now();
  }
  /// Absolute → relative scheduling across the seam (TimerService only has
  /// after()); exact in integer nanoseconds, clamped for past targets.
  void at_time(SimTime at, runtime::TimerService::Callback cb);

  runtime::Runtime& rt_;
  Transport& transport_;
  PubSubNetwork& network_;
  FaultPlan plan_;
  FaultControllerConfig config_;
  std::function<void()> heal_listener_;

  std::vector<ChurnState> churns_;
  std::vector<BurstState> bursts_;
  std::vector<PartitionState> partitions_;
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint32_t> alive_scratch_;
  FaultStats stats_;
  /// allow() runs on the send path — worker lanes during threaded windows —
  /// so its drop counters are relaxed atomics, folded into stats() (an
  /// order-independent sum, hence still deterministic).
  std::atomic<std::uint64_t> crash_drops_{0};
  std::atomic<std::uint64_t> burst_drops_{0};
  SimTime last_heal_ = SimTime::zero();
};

}  // namespace epicast::fault
