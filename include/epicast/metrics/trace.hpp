// epicast — event tracing for debugging and analysis.
//
// A TraceLog records what happened and when: every transport send / loss /
// stale-route drop (it is a TransportObserver), plus deliveries and
// reconfigurations fed in through explicit hooks. The log is bounded (a
// ring of the most recent records), renders to a human-readable listing,
// and supports simple filtering — enough to answer "what happened to event
// (7, 142) around t=2.3s?" without a debugger.
//
// Tracing is strictly opt-in: nothing in the library records traces unless
// a TraceLog is attached (see examples/trace_debug.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/net/topology.hpp"
#include "epicast/net/transport.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {

enum class TraceKind {
  Send,        ///< a message left a node (overlay or direct)
  Loss,        ///< a message was lost in transit
  StaleDrop,   ///< a message hit a missing link
  Delivery,    ///< an event was delivered to a local subscriber
  LinkChange,  ///< a topology link appeared or disappeared
};

[[nodiscard]] const char* to_string(TraceKind kind);

struct TraceRecord {
  SimTime at;
  TraceKind kind = TraceKind::Send;
  NodeId from;                       ///< acting node
  NodeId to;                         ///< peer (invalid when n/a)
  MessageClass message_class = MessageClass::Event;  ///< Send/Loss/StaleDrop
  bool overlay = true;               ///< Send/Loss: channel used
  std::optional<EventId> event;      ///< Delivery (and Send/Loss of events)
  bool flag = false;                 ///< Delivery: recovered; LinkChange: added
};

class TraceLog final : public TransportObserver {
 public:
  /// Keeps at most `capacity` most-recent records.
  explicit TraceLog(Simulator& sim, std::size_t capacity = 65536);

  // -- TransportObserver ------------------------------------------------------
  void on_send(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;
  void on_loss(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;
  void on_drop_no_link(NodeId from, NodeId to, const Message& msg) override;

  // -- explicit hooks -----------------------------------------------------------
  /// Wire as (or inside) a Dispatcher delivery listener.
  void record_delivery(NodeId node, const EventId& event, bool recovered);
  /// Wire as a Topology change listener.
  void record_link_change(const Link& link, bool added);

  // -- access -------------------------------------------------------------------
  [[nodiscard]] const std::deque<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t dropped_records() const { return dropped_; }
  void clear();

  /// Records of one kind, oldest first.
  [[nodiscard]] std::vector<TraceRecord> of_kind(TraceKind kind) const;

  /// Everything that mentions `event` — its send/loss/delivery history.
  [[nodiscard]] std::vector<TraceRecord> history_of(const EventId& id) const;

  /// Human-readable listing; at most `max_lines` (0 = all).
  void dump(std::ostream& os, std::size_t max_lines = 0) const;

 private:
  void push(TraceRecord record);
  /// Event id carried by a message, if its concrete type exposes one.
  static std::optional<EventId> event_of(const Message& msg);

  Simulator& sim_;
  std::size_t capacity_;
  std::deque<TraceRecord> records_;
  std::size_t dropped_ = 0;
};

}  // namespace epicast
