// epicast — tiny series container used by reports and benchmarks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epicast {

struct SeriesPoint {
  double x = 0.0;
  double y = 0.0;
};

/// An (x, y) series with a name — e.g. "delivery rate vs time" for one
/// algorithm. Deliberately minimal: benches print these as aligned columns.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { points_.push_back(SeriesPoint{x, y}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<SeriesPoint>& points() const {
    return points_;
  }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  [[nodiscard]] double mean_y() const;
  [[nodiscard]] double min_y() const;
  [[nodiscard]] double max_y() const;

 private:
  std::string name_;
  std::vector<SeriesPoint> points_;
};

/// Renders several series sharing an x-axis as an aligned text table:
/// one row per x value, one column per series (the paper-figure format).
[[nodiscard]] std::string render_series_table(
    const std::string& x_label, const std::vector<TimeSeries>& series);

}  // namespace epicast
