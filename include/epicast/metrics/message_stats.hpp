// epicast — traffic accounting for the paper's overhead figures (§IV-E).
//
// Counts every send per message class, per node. "Gossip messages" are all
// recovery-layer sends (digest hops + requests + replies); "event messages"
// are per-hop event forwards — exactly the two quantities whose ratio the
// paper plots in Fig. 9. Snapshots allow measuring only inside the
// measurement window (warmup excluded).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "epicast/net/transport.hpp"

namespace epicast {

class MessageStats final : public TransportObserver {
 public:
  static constexpr std::size_t kClassCount = 5;

  explicit MessageStats(std::uint32_t node_count);

  void on_send(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;
  void on_loss(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;
  void on_drop_no_link(NodeId from, NodeId to, const Message& msg) override;

  /// Aggregate counters at one instant; subtract two snapshots to get the
  /// traffic of a window.
  struct Snapshot {
    std::array<std::uint64_t, kClassCount> sends{};
    std::array<std::uint64_t, kClassCount> losses{};
    std::uint64_t drops_no_link = 0;
    std::uint64_t overlay_sends = 0;
    std::uint64_t direct_sends = 0;

    [[nodiscard]] std::uint64_t sends_of(MessageClass c) const {
      return sends[static_cast<std::size_t>(c)];
    }
    [[nodiscard]] std::uint64_t losses_of(MessageClass c) const {
      return losses[static_cast<std::size_t>(c)];
    }
    /// Digest + request + reply sends.
    [[nodiscard]] std::uint64_t gossip_sends() const;
    [[nodiscard]] std::uint64_t event_sends() const {
      return sends_of(MessageClass::Event);
    }
    /// Gossip sends ÷ event sends (0 if no events flowed).
    [[nodiscard]] double gossip_event_ratio() const;

    friend Snapshot operator-(Snapshot a, const Snapshot& b);
  };

  [[nodiscard]] Snapshot snapshot() const { return totals_; }

  /// Gossip sends originated or forwarded by one node (all classes).
  [[nodiscard]] std::uint64_t gossip_sends_by(NodeId node) const;
  [[nodiscard]] std::uint64_t event_sends_by(NodeId node) const;

 private:
  Snapshot totals_;
  /// per node × class
  std::vector<std::array<std::uint64_t, kClassCount>> by_node_;
};

}  // namespace epicast
