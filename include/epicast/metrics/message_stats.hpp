// epicast — traffic accounting for the paper's overhead figures (§IV-E).
//
// Counts every send per message class, per node. "Gossip messages" are all
// recovery-layer sends (digest hops + requests + replies); "event messages"
// are per-hop event forwards — exactly the two quantities whose ratio the
// paper plots in Fig. 9. Snapshots allow measuring only inside the
// measurement window (warmup excluded).
//
// Alongside message counts, bytes are accounted per class using the
// configured SizingMode: nominal (the paper's equal-size assumption) or
// wire (codec-computed frame sizes) — the latter makes the Fig. 9/10
// overhead results byte-accurate instead of estimated.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "epicast/net/transport.hpp"

namespace epicast {

class MessageStats final : public TransportObserver {
 public:
  static constexpr std::size_t kClassCount = 5;

  /// `sizing` selects the per-message byte figure the byte counters use;
  /// message counts are mode-independent.
  explicit MessageStats(std::uint32_t node_count,
                        SizingMode sizing = default_sizing_mode());

  void on_send(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;
  void on_loss(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;
  void on_drop_no_link(NodeId from, NodeId to, const Message& msg) override;

  /// Aggregate counters at one instant; subtract two snapshots to get the
  /// traffic of a window.
  struct Snapshot {
    std::array<std::uint64_t, kClassCount> sends{};
    std::array<std::uint64_t, kClassCount> losses{};
    /// Bytes sent per class, in the configured SizingMode's units.
    std::array<std::uint64_t, kClassCount> send_bytes{};
    std::uint64_t drops_no_link = 0;
    std::uint64_t overlay_sends = 0;
    std::uint64_t direct_sends = 0;

    [[nodiscard]] std::uint64_t sends_of(MessageClass c) const {
      return sends[static_cast<std::size_t>(c)];
    }
    [[nodiscard]] std::uint64_t losses_of(MessageClass c) const {
      return losses[static_cast<std::size_t>(c)];
    }
    [[nodiscard]] std::uint64_t bytes_of(MessageClass c) const {
      return send_bytes[static_cast<std::size_t>(c)];
    }
    /// Digest + request + reply sends.
    [[nodiscard]] std::uint64_t gossip_sends() const;
    [[nodiscard]] std::uint64_t event_sends() const {
      return sends_of(MessageClass::Event);
    }
    /// Digest + request + reply bytes.
    [[nodiscard]] std::uint64_t gossip_bytes() const;
    [[nodiscard]] std::uint64_t event_bytes() const {
      return bytes_of(MessageClass::Event);
    }
    /// Gossip sends ÷ event sends (0 if no events flowed).
    [[nodiscard]] double gossip_event_ratio() const;
    /// Gossip bytes ÷ event bytes (0 if no event bytes flowed).
    [[nodiscard]] double gossip_event_byte_ratio() const;

    friend Snapshot operator-(Snapshot a, const Snapshot& b);
  };

  [[nodiscard]] Snapshot snapshot() const { return totals_; }
  [[nodiscard]] SizingMode sizing() const { return sizing_; }

  /// Gossip sends originated or forwarded by one node (all classes).
  [[nodiscard]] std::uint64_t gossip_sends_by(NodeId node) const;
  [[nodiscard]] std::uint64_t event_sends_by(NodeId node) const;

 private:
  SizingMode sizing_;
  Snapshot totals_;
  /// per node × class
  std::vector<std::array<std::uint64_t, kClassCount>> by_node_;
};

}  // namespace epicast
