// epicast — log-bucketed publish→deliver latency histogram.
//
// Daemon-mode latency spans processes: the publisher stamps published_at on
// the shared CLOCK_MONOTONIC epoch (AsyncRuntimeConfig::clock_epoch_ns) and
// the subscriber subtracts on delivery. Latencies range from microseconds
// (one loopback hop) to seconds (an event recovered after a crash-restart),
// so the buckets are powers of two of nanoseconds: bucket i counts
// latencies in [2^i, 2^(i+1)) ns (bucket 0 also absorbs 0). 64 buckets
// cover everything an int64 nanosecond count can hold, the histogram is
// fixed-size POD, and merging across nodes is element-wise addition — the
// cluster harness sums the per-node JSON bucket arrays.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace epicast::metrics {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// Records one latency sample. Negative values (cross-process clock skew
  /// on an unshared epoch) clamp to bucket 0 rather than poisoning the
  /// distribution.
  void record(std::int64_t latency_ns);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t max_ns() const { return max_ns_; }

  /// Quantile estimate in seconds: the geometric midpoint of the bucket
  /// holding the q-th sample (q in [0,1]). 0 when empty.
  [[nodiscard]] double quantile_seconds(double q) const;

  /// {"count":N,"p50_s":...,"p90_s":...,"p99_s":...,"max_s":...,
  ///  "buckets":[[i,count],...]} — only non-empty buckets are listed, so a
  /// quiet node costs a few bytes and the harness merge is sparse.
  [[nodiscard]] std::string json() const;

  void merge(const LatencyHistogram& other);

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t max_ns_ = 0;
};

}  // namespace epicast::metrics
