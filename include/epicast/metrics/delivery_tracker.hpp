// epicast — the paper's delivery-rate metric (§IV-B).
//
// For every published event the simulation computes, with global knowledge,
// the set of dispatchers that would receive it over a fully reliable
// network (the dispatchers locally subscribed to one of its patterns,
// excluding the publisher itself). Each such (event, subscriber) pair is
// *expected*; it becomes *delivered* when the subscriber first receives the
// event — directly or through recovery — within a fixed recovery horizon of
// its publication.
//
// delivery rate = delivered pairs / expected pairs. The time series buckets
// pairs by *publish* time, which makes loss bursts (reconfigurations) show
// up as the dips of the paper's Fig. 3(b).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/metrics/time_series.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

class DeliveryTracker {
 public:
  DeliveryTracker(Duration bucket_width, Duration recovery_horizon);

  /// Only events published inside [start, end) are tracked.
  void set_measure_window(SimTime start, SimTime end);

  /// Registers a publication. `expected_receivers` excludes the publisher;
  /// events nobody subscribes to are ignored.
  void on_publish(const EventId& id, SimTime when,
                  std::uint32_t expected_receivers);

  /// Registers the first delivery of `id` at `node` (the dispatcher layer
  /// already suppresses duplicates). Self-deliveries at the publisher and
  /// deliveries of untracked events are ignored.
  void on_delivery(NodeId node, const EventId& id, SimTime when,
                   bool recovered);

  // -- results ---------------------------------------------------------------

  /// Delivered-within-horizon / expected, over the whole window.
  [[nodiscard]] double delivery_rate() const;

  /// Ignoring the horizon (counts late recoveries too).
  [[nodiscard]] double eventual_delivery_rate() const;

  /// Delivery rate per publish-time bucket; x = bucket start in seconds.
  [[nodiscard]] TimeSeries delivery_series(const char* name) const;

  /// Mean expected receivers per tracked event (the paper's Fig. 7 metric).
  [[nodiscard]] double receivers_per_event() const;

  /// Mean publish→delivery latency of recovered pairs, seconds.
  [[nodiscard]] double mean_recovery_latency() const;

  /// Quantile (q in [0,1]) of the recovery latency distribution, seconds;
  /// 0 when nothing was recovered. q=0.5 is the median.
  [[nodiscard]] double recovery_latency_quantile(double q) const;

  /// Pair counters restricted to events published in [start, end) — the
  /// fault layer's per-epoch delivery ratios. O(tracked events) per call.
  struct PairWindow {
    std::uint64_t expected = 0;
    std::uint64_t delivered = 0;      ///< within horizon
    std::uint64_t delivered_any = 0;  ///< ignoring the horizon
  };
  [[nodiscard]] PairWindow pairs_in_range(SimTime start, SimTime end) const;

  [[nodiscard]] std::uint64_t events_tracked() const {
    return events_tracked_;
  }
  [[nodiscard]] std::uint64_t expected_pairs() const {
    return expected_pairs_;
  }
  [[nodiscard]] std::uint64_t delivered_pairs() const {
    return delivered_pairs_;
  }
  /// Pairs delivered through the recovery machinery (within horizon).
  [[nodiscard]] std::uint64_t recovered_pairs() const {
    return recovered_pairs_;
  }

  /// Estimated bytes owned by the tracker's containers — per-component
  /// memory accounting for the scale figures.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct EventRec {
    SimTime published_at;
    std::uint32_t expected = 0;
    std::uint32_t delivered = 0;   // within horizon
    std::uint32_t delivered_any = 0;
    std::uint32_t recovered = 0;   // subset of `delivered`
  };

  Duration bucket_width_;
  Duration horizon_;
  SimTime window_start_;
  SimTime window_end_;
  bool window_set_ = false;

  std::unordered_map<EventId, EventRec> events_;
  std::uint64_t events_tracked_ = 0;
  std::uint64_t expected_pairs_ = 0;
  std::uint64_t delivered_pairs_ = 0;
  std::uint64_t delivered_any_pairs_ = 0;
  std::uint64_t recovered_pairs_ = 0;
  double recovery_latency_sum_ = 0.0;
  /// One entry per recovered pair; sorted lazily by the quantile query.
  mutable std::vector<double> recovery_latencies_;
  mutable bool latencies_sorted_ = true;
};

}  // namespace epicast
