// epicast — always-on phase counters for the protocol hot path.
//
// Every perf PR needs attribution: which phase of a scenario got faster or
// slower. The profiler keeps one {ops, ns} pair per hot phase. Op counts
// are always maintained (one increment per phase entry — cheap enough for
// production runs and aggregated into ScenarioResult); nanosecond timing
// costs two steady_clock reads per phase entry, so it is off by default and
// enabled per scenario (ScenarioConfig::profile_hotpath / EPICAST_PROFILE=1
// or by bench_hotpath).
//
// Phases nest (a dispatch includes the forwards and cache ops it triggers),
// so per-phase ns are INCLUSIVE of nested phases; ops are exact.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace epicast {

enum class HotPhase : unsigned {
  Dispatch = 0,     ///< overlay event reception (dedup, deliver, hand-off)
  Forward,          ///< reverse-path fan-out of one event
  Control,          ///< subscription forwarding machinery
  GossipRound,      ///< one timer-driven gossip round
  GossipHandle,     ///< one received gossip message (digest/request/reply)
  CacheOp,          ///< one EventCache operation (insert/get/find/match)
  TransportOverlay, ///< one overlay send (observers, link model, schedule)
  TransportDirect,  ///< one out-of-band send
};
inline constexpr std::size_t kHotPhaseCount = 8;

[[nodiscard]] constexpr const char* to_string(HotPhase p) {
  switch (p) {
    case HotPhase::Dispatch: return "dispatch";
    case HotPhase::Forward: return "forward";
    case HotPhase::Control: return "control";
    case HotPhase::GossipRound: return "gossip_round";
    case HotPhase::GossipHandle: return "gossip_handle";
    case HotPhase::CacheOp: return "cache_op";
    case HotPhase::TransportOverlay: return "transport_overlay";
    case HotPhase::TransportDirect: return "transport_direct";
  }
  return "?";
}

class HotpathProfiler {
 public:
  struct PhaseTotals {
    std::uint64_t ops = 0;
    std::uint64_t ns = 0;  ///< 0 unless timing was enabled

    PhaseTotals& operator+=(const PhaseTotals& o) {
      ops += o.ops;
      ns += o.ns;
      return *this;
    }
  };

  /// Copyable aggregate for ScenarioResult / cross-scenario summing.
  struct Snapshot {
    std::array<PhaseTotals, kHotPhaseCount> phase{};
    bool timed = false;

    [[nodiscard]] const PhaseTotals& operator[](HotPhase p) const {
      return phase[static_cast<std::size_t>(p)];
    }
    Snapshot& operator+=(const Snapshot& o) {
      for (std::size_t i = 0; i < kHotPhaseCount; ++i) phase[i] += o.phase[i];
      timed = timed || o.timed;
      return *this;
    }
  };

  /// Turns nanosecond timing on/off; op counting is unconditional.
  void enable_timing(bool on) { timed_ = on; }
  [[nodiscard]] bool timing_enabled() const { return timed_; }

  /// Counts one entry of `p` without timing (for leaf ops where even a
  /// branch on timed_ is unwanted).
  void count(HotPhase p) { ++phase_[static_cast<std::size_t>(p)].ops; }

  [[nodiscard]] PhaseTotals& totals(HotPhase p) {
    return phase_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.phase = phase_;
    s.timed = timed_;
    return s;
  }

  /// RAII phase marker: one op count always; enter/exit timestamps only
  /// when timing is enabled.
  class Scope {
   public:
    Scope(HotpathProfiler& prof, HotPhase p)
        : totals_(&prof.phase_[static_cast<std::size_t>(p)]),
          timed_(prof.timed_) {
      ++totals_->ops;
      if (timed_) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (timed_) {
        totals_->ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTotals* totals_;
    bool timed_;
    std::chrono::steady_clock::time_point start_{};
  };

  /// As Scope, but tolerates a null profiler (components wired with an
  /// optional pointer, e.g. EventCache).
  class MaybeScope {
   public:
    MaybeScope(HotpathProfiler* prof, HotPhase p) {
      if (prof != nullptr) {
        totals_ = &prof->phase_[static_cast<std::size_t>(p)];
        ++totals_->ops;
        timed_ = prof->timed_;
        if (timed_) start_ = std::chrono::steady_clock::now();
      }
    }
    ~MaybeScope() {
      if (timed_) {
        totals_->ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
      }
    }
    MaybeScope(const MaybeScope&) = delete;
    MaybeScope& operator=(const MaybeScope&) = delete;

   private:
    PhaseTotals* totals_ = nullptr;
    bool timed_ = false;
    std::chrono::steady_clock::time_point start_{};
  };

 private:
  std::array<PhaseTotals, kHotPhaseCount> phase_{};
  bool timed_ = false;
};

}  // namespace epicast
