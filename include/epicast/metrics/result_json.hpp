// epicast — shared ScenarioResult → JSON serialization.
//
// One serializer, two producers: epicast_sim --json emits it for simulated
// runs, and epicastd embeds it in each node's stats dump — so the cluster
// harness compares real-socket runs against the sim by parsing the same
// document shape on both sides.
#pragma once

#include <string>

#include "epicast/scenario/runner.hpp"

namespace epicast::metrics {

/// The machine-readable result document (stable keys; the cluster harness
/// and plotting scripts parse it).
[[nodiscard]] std::string result_json(const ScenarioResult& result);

}  // namespace epicast::metrics
