// epicast — scale overlay generators (beyond the paper's random tree).
//
// The paper evaluates N = 100 dispatchers on a degree-capped random tree
// (§IV-A). To study the recovery algorithms at 10⁴–10⁵ nodes we need
// overlays with realistic structure; this module provides the standard
// families used in the epidemic-broadcast literature:
//
//   * Barabási–Albert preferential attachment — heavy-tailed degrees,
//     hub-dominated routing (Internet/AS-like);
//   * Watts–Strogatz small world — high clustering, short paths
//     (social/collaboration-like);
//   * random regular — the classic homogeneous gossip substrate;
//   * geometric cluster — k-nearest-neighbour graph of points in the unit
//     square, a proxy for latency-clustered deployments.
//
// All generators return *connected* overlays: families that can fracture
// (WS at high rewire, geometric with tight k) are patched by linking each
// stray component to the main one, so delivery-rate denominators stay
// meaningful. Generation is deterministic in (parameters, rng state).
//
// The analysis helpers (degree histogram, clustering coefficient, CCDF
// log-log slope) back the conformance tier's shape assertions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "epicast/common/rng.hpp"
#include "epicast/net/topology.hpp"

namespace epicast {

enum class OverlayKind {
  Tree,             ///< the paper's degree-capped random tree (default)
  BarabasiAlbert,   ///< preferential attachment, m = degree links per node
  WattsStrogatz,    ///< ring lattice (k = degree) with rewiring
  RandomRegular,    ///< stub-matching d-regular graph, d = degree
  GeoCluster,       ///< k-nearest-neighbour geometric graph, k = degree
};

[[nodiscard]] const char* to_string(OverlayKind kind);
[[nodiscard]] std::optional<OverlayKind> overlay_from_string(
    const std::string& name);

/// Preferential attachment: starts from a (m+1)-clique, every later node
/// attaches to `m` distinct existing nodes sampled proportionally to their
/// degree. Connected by construction; degrees are heavy-tailed.
[[nodiscard]] Topology barabasi_albert(std::uint32_t nodes, std::uint32_t m,
                                       Rng& rng);

/// Small world: ring lattice where each node links to its k/2 nearest ring
/// neighbours on each side (k rounded up to even), then every lattice edge
/// is rewired to a uniform random endpoint with probability `rewire`.
[[nodiscard]] Topology watts_strogatz(std::uint32_t nodes, std::uint32_t k,
                                      double rewire, Rng& rng);

/// Random d-regular graph by stub matching, resampled until simple (a few
/// conflicting pairs may be dropped after the retry budget; with n·d odd one
/// node ends at degree d-1).
[[nodiscard]] Topology random_regular(std::uint32_t nodes, std::uint32_t d,
                                      Rng& rng);

/// Latency-clustered proxy: nodes are uniform points in the unit square,
/// each linked to its k nearest neighbours (grid-bucketed search, so
/// generation is near-linear in N).
[[nodiscard]] Topology geo_cluster(std::uint32_t nodes, std::uint32_t k,
                                   Rng& rng);

/// Dispatch on `kind`. `degree` parameterizes every family (see above);
/// `Tree` uses Topology::random_tree with the classic degree cap and
/// ignores `ws_rewire`. Draws from `rng` exactly as the underlying
/// generator does — the Tree path is bit-identical to calling random_tree
/// directly.
[[nodiscard]] Topology make_overlay(OverlayKind kind, std::uint32_t nodes,
                                    std::uint32_t degree, double ws_rewire,
                                    Rng& rng);

// -- shape analysis (conformance tier) ---------------------------------------

/// Degree histogram: hist[d] = number of nodes with degree d.
[[nodiscard]] std::vector<std::uint32_t> degree_histogram(const Topology& t);

/// Mean local clustering coefficient (fraction of closed neighbour pairs,
/// averaged over nodes of degree >= 2).
[[nodiscard]] double clustering_coefficient(const Topology& t);

/// Least-squares slope of log10 CCDF(d) vs log10 d over degrees with at
/// least one node — the heavy-tail witness (BA: roughly -(γ-1) ≈ -2).
/// Returns 0 when fewer than 3 distinct degrees exist.
[[nodiscard]] double degree_ccdf_slope(const Topology& t);

}  // namespace epicast
