// epicast — the overlay network topology.
//
// The paper's dispatching network is a single *unrooted tree* of dispatchers
// with at most four neighbours each (§IV-A). `Topology` maintains that
// adjacency, generates random degree-capped trees, and supports the
// reconfiguration primitive of §IV-A: remove one link (splitting the tree in
// two) and later add a replacement that reconnects the components.
//
// Scale overlays (net/overlays.hpp) reuse the same structure for cyclic
// graphs — the tree invariant is checked on demand, never assumed here.
//
// Layout: mutations run against per-node vectors (append order preserved —
// neighbour order is part of the deterministic behavior), while neighbors()
// serves from a flat CSR copy (offsets + one contiguous NodeId array),
// repacked lazily whenever the change-listener version counter has moved.
// Event forwarding and gossip fan-out iterate neighbours once per message,
// so at N=10⁴ the contiguous layout is what keeps those scans in cache;
// repacking is O(N+E) per mutation *batch* (reconfigurations are rare and
// paper-scale), not per query.
//
// The structure tolerates being temporarily a two-component forest — that is
// precisely the state during a repair window — and checks the tree invariant
// (N-1 edges, acyclic) on demand.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/rng.hpp"

namespace epicast {

/// An undirected overlay link, stored with endpoints in ascending order.
struct Link {
  NodeId a;
  NodeId b;

  Link(NodeId x, NodeId y) : a(x < y ? x : y), b(x < y ? y : x) {}
  friend auto operator<=>(const Link&, const Link&) = default;
};

class Topology {
 public:
  /// An edgeless topology over `node_count` nodes.
  Topology(std::uint32_t node_count, std::uint32_t max_degree);

  /// Builds a uniform random degree-capped tree: nodes are joined in random
  /// order, each new node attaching to a uniformly chosen node that still
  /// has degree headroom. Requires max_degree >= 2 for node_count > 2.
  static Topology random_tree(std::uint32_t node_count,
                              std::uint32_t max_degree, Rng& rng);

  /// A path (line) topology; handy in tests where hop counts must be exact.
  static Topology line(std::uint32_t node_count);

  /// A star with node 0 at the centre (requires max_degree >= N-1).
  static Topology star(std::uint32_t node_count);

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(adj_.size());
  }
  [[nodiscard]] std::uint32_t max_degree() const { return max_degree_; }
  [[nodiscard]] std::size_t link_count() const { return link_count_; }

  [[nodiscard]] bool has_link(NodeId a, NodeId b) const;
  /// Neighbours of `n` in link-insertion order, served from the flat CSR
  /// copy. The span is invalidated by the next add_link/remove_link.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId n) const;
  [[nodiscard]] std::uint32_t degree(NodeId n) const;

  /// Adds a link. Preconditions: distinct valid endpoints, link absent,
  /// both degrees below the cap.
  void add_link(NodeId a, NodeId b);

  /// Removes a link. Precondition: the link exists.
  void remove_link(NodeId a, NodeId b);

  /// All links, each reported once, in deterministic (sorted) order.
  [[nodiscard]] std::vector<Link> links() const;

  /// True if every node is reachable from node 0 (vacuously true for N=0).
  [[nodiscard]] bool connected() const;

  /// True if the graph is a single tree: connected with exactly N-1 links.
  [[nodiscard]] bool is_tree() const;

  /// Shortest path from `from` to `to` (inclusive of both endpoints), or
  /// nullopt if unreachable. On a tree this is the unique path.
  [[nodiscard]] std::optional<std::vector<NodeId>> path(NodeId from,
                                                        NodeId to) const;

  /// Hop distance, or nullopt if unreachable.
  [[nodiscard]] std::optional<std::uint32_t> distance(NodeId from,
                                                      NodeId to) const;

  /// Nodes in the connected component containing `n`.
  [[nodiscard]] std::vector<NodeId> component_of(NodeId n) const;

  /// Mean hop distance over all unordered node pairs (components only);
  /// used for calibration reports. `sample_sources` > 0 estimates from a
  /// deterministic stride sample of BFS sources instead of all N — the
  /// exact all-pairs scan is O(N·E), unaffordable at 10⁵ nodes.
  [[nodiscard]] double mean_pairwise_distance(
      std::uint32_t sample_sources = 0) const;

  /// Called after every add_link/remove_link with the affected link.
  /// Observers must not mutate the topology re-entrantly.
  using ChangeListener = std::function<void(const Link&, bool added)>;
  void add_change_listener(ChangeListener listener);

  /// Monotone counter bumped on every structural change; lets caches detect
  /// staleness cheaply (the internal CSR copy uses it too).
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Bytes owned by the adjacency structures (mutation vectors + CSR copy
  /// + BFS scratch) — per-component memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Graphviz rendering of the current overlay (debugging, examples):
  /// `dot -Tpng` turns it into a picture of the dispatching tree.
  [[nodiscard]] std::string to_dot() const;

 private:
  void check_node(NodeId n) const;
  /// Rebuilds the flat CSR copy if the version moved since the last pack.
  void repack_if_stale() const;
  /// Stamps the BFS scratch for a fresh traversal and returns the stamp.
  std::uint32_t fresh_visit_stamp() const;

  std::vector<std::vector<NodeId>> adj_;
  std::uint32_t max_degree_;
  std::size_t link_count_ = 0;
  std::uint64_t version_ = 0;
  std::vector<ChangeListener> listeners_;

  /// Flat CSR adjacency: neighbours of n are
  /// flat_neighbors_[flat_offsets_[n] .. flat_offsets_[n+1]).
  mutable std::vector<std::uint32_t> flat_offsets_;
  mutable std::vector<NodeId> flat_neighbors_;
  mutable std::uint64_t flat_version_ = ~std::uint64_t{0};

  /// Reusable BFS state: visit_stamp_[i] == visit_epoch_ means "seen in the
  /// current traversal" — no per-call allocation, no clearing between
  /// traversals (the Reconfigurator repair path calls path/component_of
  /// repeatedly; per-call vectors showed up at N >= 10k).
  mutable std::vector<std::uint32_t> visit_stamp_;
  mutable std::uint32_t visit_epoch_ = 0;
  mutable std::vector<NodeId> bfs_queue_;
  mutable std::vector<NodeId> bfs_parent_;
};

}  // namespace epicast
