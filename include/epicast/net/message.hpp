// epicast — wire message abstraction.
//
// The transport layer is agnostic of message content: it sees only a class
// tag (used for loss policy and accounting) and a size (used for
// serialization delay). Concrete message types live in the pubsub and gossip
// modules and derive from `Message`.
//
// Messages are immutable once sent and shared by pointer, so a fan-out of an
// event to many neighbours costs no copies.
#pragma once

#include <cstddef>
#include <memory>

namespace epicast {

/// Traffic classes, used for (a) per-class accounting in the paper's
/// overhead figures and (b) loss policy (control traffic may be configured
/// reliable, modelling a TCP-backed control channel).
enum class MessageClass {
  Event,          ///< published event propagating along subscription routes
  Control,        ///< subscribe / unsubscribe propagation
  GossipDigest,   ///< a gossip round's digest travelling the tree
  GossipRequest,  ///< out-of-band retransmission request
  GossipReply,    ///< out-of-band retransmitted events
};

[[nodiscard]] constexpr bool is_gossip(MessageClass c) {
  return c == MessageClass::GossipDigest || c == MessageClass::GossipRequest ||
         c == MessageClass::GossipReply;
}

[[nodiscard]] const char* to_string(MessageClass c);

/// Base class of everything the transport can carry.
class Message {
 public:
  virtual ~Message() = default;

  /// Traffic class for accounting and loss policy.
  [[nodiscard]] virtual MessageClass message_class() const = 0;

  /// Serialized size used to compute link occupancy. The paper assumes event
  /// and gossip messages have equal size (§IV-E); the scenario layer follows
  /// suit but the model supports any size.
  [[nodiscard]] virtual std::size_t size_bytes() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace epicast
