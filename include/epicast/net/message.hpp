// epicast — wire message abstraction.
//
// The transport layer is agnostic of message content: it sees only a class
// tag (used for loss policy and accounting) and a size (used for
// serialization delay). Concrete message types live in the pubsub and gossip
// modules and derive from `Message`.
//
// Messages are immutable once sent and shared by pointer, so a fan-out of an
// event to many neighbours costs no copies.
//
// Two sizes coexist per message (SizingMode):
//   * nominal — the configured constant the paper's equal-size overhead
//     accounting assumes (§IV-E); the default, keeps every figure
//     bit-identical to the original evaluation;
//   * wire — the exact byte count of the message's serialized frame,
//     computed by epicast::wire::Codec (see wire/codec.hpp), for
//     byte-accurate link occupancy and traffic accounting.
#pragma once

#include <cstddef>
#include <memory>

namespace epicast {

/// Traffic classes, used for (a) per-class accounting in the paper's
/// overhead figures and (b) loss policy (control traffic may be configured
/// reliable, modelling a TCP-backed control channel).
enum class MessageClass {
  Event,          ///< published event propagating along subscription routes
  Control,        ///< subscribe / unsubscribe propagation
  GossipDigest,   ///< a gossip round's digest travelling the tree
  GossipRequest,  ///< out-of-band retransmission request
  GossipReply,    ///< out-of-band retransmitted events
};

[[nodiscard]] constexpr bool is_gossip(MessageClass c) {
  return c == MessageClass::GossipDigest || c == MessageClass::GossipRequest ||
         c == MessageClass::GossipReply;
}

[[nodiscard]] const char* to_string(MessageClass c);

/// Which size the link model charges and the metrics layer accounts.
enum class SizingMode {
  Nominal,  ///< configured constants — the paper's assumption (default)
  Wire,     ///< codec-computed frame bytes — byte-accurate
};

[[nodiscard]] const char* to_string(SizingMode m);

/// Process-wide default sizing mode: SizingMode::Wire when the EPICAST_SIZING
/// environment variable is "wire" (read once, first call), Nominal
/// otherwise. Lets the whole test/bench suite run in wire mode without
/// touching every config literal (the CI wire-sizing job does exactly that).
[[nodiscard]] SizingMode default_sizing_mode();

/// Base class of everything the transport can carry.
class Message {
 public:
  virtual ~Message() = default;

  /// Traffic class for accounting and loss policy.
  [[nodiscard]] virtual MessageClass message_class() const = 0;

  /// Nominal serialized size used to compute link occupancy. The paper
  /// assumes event and gossip messages have equal size (§IV-E); the
  /// scenario layer follows suit but the model supports any size.
  [[nodiscard]] virtual std::size_t size_bytes() const = 0;

  /// Exact size of this message's wire frame (epicast::wire::Codec).
  /// Computed on first call and cached — messages are immutable, and one
  /// message never crosses scenario threads.
  [[nodiscard]] std::size_t wire_size_bytes() const;

 private:
  mutable std::size_t wire_size_cache_ = 0;  // 0 = not yet computed
};

/// The size `mode` charges for `msg` — nominal constant or codec frame size.
[[nodiscard]] inline std::size_t sized_bytes(const Message& msg,
                                             SizingMode mode) {
  return mode == SizingMode::Wire ? msg.wire_size_bytes() : msg.size_bytes();
}

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace epicast
