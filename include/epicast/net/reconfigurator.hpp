// epicast — topological reconfiguration driver.
//
// Models the paper's second unreliable scenario (§IV-A): every ρ seconds a
// random overlay link breaks; after a repair time of 0.1 s a replacement
// link is installed that reconnects the two components (respecting the
// degree cap), and the dispatching layer is notified so it can restore
// subscription routes — the converged outcome of the reconfiguration
// protocol of ref [7].
//
// With ρ larger than the repair time reconfigurations are non-overlapping
// (paper's ρ = 0.2 s); with ρ smaller, several links can be down at once
// (ρ = 0.03 s), the paper's "extreme test case".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "epicast/common/rng.hpp"
#include "epicast/net/topology.hpp"
#include "epicast/runtime/runtime.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {

struct ReconfigConfig {
  /// ρ: time between consecutive link breakages.
  Duration interval = Duration::millis(200);
  /// How long the network stays split before the replacement link appears.
  Duration repair_time = Duration::millis(100);
  /// First breakage happens at start_at (then every `interval`).
  SimTime start_at = SimTime::zero();
  /// Optional end of the churn period.
  std::optional<SimTime> stop_at;
};

class Reconfigurator {
 public:
  /// What happened during one repair.
  struct Repair {
    Link removed;
    std::optional<Link> added;  ///< nullopt if the components had already
                                ///< been reconnected by a concurrent repair,
                                ///< or if no node had degree headroom
                                ///< (see exhausted_repairs())
  };

  /// Called when a link breaks.
  using BreakListener = std::function<void(const Link&)>;
  /// Called after the replacement link (if any) is installed.
  using RepairListener = std::function<void(const Repair&)>;

  /// The reconfigurator draws time, timers, and randomness from the
  /// runtime seam; `rt` and `topology` must outlive it.
  Reconfigurator(runtime::Runtime& rt, Topology& topology,
                 ReconfigConfig config);

  /// Convenience for sim-side callers and tests: runs on a private
  /// SimRuntime over `sim`. Identical RNG fork order and scheduling as the
  /// pre-seam constructor.
  Reconfigurator(Simulator& sim, Topology& topology, ReconfigConfig config);

  Reconfigurator(const Reconfigurator&) = delete;
  Reconfigurator& operator=(const Reconfigurator&) = delete;

  /// Begins the periodic break/repair cycle.
  void start();

  /// Stops scheduling further breakages (pending repairs still complete).
  void stop();

  void set_break_listener(BreakListener listener) {
    on_break_ = std::move(listener);
  }
  void set_repair_listener(RepairListener listener) {
    on_repair_ = std::move(listener);
  }

  /// Restricts which nodes may anchor a replacement link: the filter returns
  /// false for nodes that must not be wired up right now (FaultController
  /// marks crashed nodes). A repair whose only candidates are filtered out
  /// is *deferred* — re-checked one repair_time later — rather than silently
  /// installing a link to a dead endpoint. No filter = every node eligible.
  using NodeFilter = std::function<bool(NodeId)>;
  void set_node_filter(NodeFilter filter) { node_filter_ = std::move(filter); }

  /// Breaks one random link immediately and schedules its repair; usable
  /// directly in tests and examples without start().
  void force_reconfiguration();

  [[nodiscard]] std::uint64_t breaks() const { return breaks_; }
  [[nodiscard]] std::uint64_t repairs() const { return repairs_; }
  /// Repairs that found the components already reconnected.
  [[nodiscard]] std::uint64_t skipped_repairs() const {
    return skipped_repairs_;
  }
  /// Repairs abandoned because a separated component had no node with
  /// degree headroom left (possible with a degree cap of 1 or links added
  /// outside the reconfigurator); the partition persists until a later
  /// repair can reconnect it.
  [[nodiscard]] std::uint64_t exhausted_repairs() const {
    return exhausted_repairs_;
  }
  /// Repairs postponed because every attachable node on a side was rejected
  /// by the node filter (e.g., the only candidates were crashed).
  [[nodiscard]] std::uint64_t deferred_repairs() const {
    return deferred_repairs_;
  }
  /// Links currently down (broken, repair pending).
  [[nodiscard]] std::uint32_t pending_repairs() const { return pending_; }

 private:
  void break_one();
  void repair(Link removed);
  /// Picks a node with degree headroom (passing the node filter, if any)
  /// from the component of `anchor`.
  std::optional<NodeId> pick_attachable(NodeId anchor);
  /// True iff `anchor`'s component has degree headroom somewhere but every
  /// such node is currently rejected by the node filter.
  bool side_blocked(NodeId anchor) const;

  /// Set only by the Simulator& convenience constructor (declared before
  /// rt_ so the reference below can bind to it).
  std::unique_ptr<runtime::Runtime> owned_rt_;
  runtime::Runtime& rt_;
  Topology& topology_;
  ReconfigConfig config_;
  Rng rng_;
  runtime::PeriodicTimer timer_;
  BreakListener on_break_;
  RepairListener on_repair_;
  NodeFilter node_filter_;
  std::uint64_t breaks_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t skipped_repairs_ = 0;
  std::uint64_t exhausted_repairs_ = 0;
  std::uint64_t deferred_repairs_ = 0;
  std::uint32_t pending_ = 0;
};

}  // namespace epicast
