// epicast — message delivery over the overlay and out-of-band channels.
//
// Two channels, mirroring the paper's model (§III-B):
//
//  * the **overlay channel** carries event, control, and gossip-digest
//    traffic hop-by-hop along tree links, subject to the link model
//    (serialization, propagation, Bernoulli loss ε). A send over a link that
//    no longer exists — stale routes during a reconfiguration — is dropped,
//    as is a message in flight when its link breaks.
//
//  * the **direct channel** is the out-of-band unicast transport ("not
//    necessarily reliable, e.g. UDP-based") used for retransmission
//    requests and replies. It is independent of the overlay topology and
//    has its own latency band and loss rate.
//
// Control traffic (subscriptions) defaults to lossless, modelling the
// TCP-backed control connections real dispatching networks use.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/net/link_model.hpp"
#include "epicast/net/message.hpp"
#include "epicast/net/topology.hpp"
// TransportReceiver and TransportObserver moved to the runtime seam (they
// are shared with the socket backend); re-exported here for existing users.
#include "epicast/runtime/transport.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {

struct TransportConfig {
  LinkParams link;                    ///< overlay link behaviour
  bool control_lossless = true;       ///< subscriptions ride a reliable channel
  Duration direct_latency_min = Duration::micros(500);
  Duration direct_latency_max = Duration::millis(2);
  double direct_loss_rate = 0.0;      ///< out-of-band loss
  /// Which message size the link model charges: the configured nominal
  /// constants (paper §IV-E accounting, the default) or the codec-computed
  /// wire frame size. Follows EPICAST_SIZING unless overridden.
  SizingMode sizing = default_sizing_mode();
};

class Transport {
 public:
  /// The transport keeps references to `sim` and `topology`; both must
  /// outlive it.
  Transport(Simulator& sim, Topology& topology, TransportConfig config);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Registers the receiver for `node`. Must be called for every node
  /// before traffic addressed to it arrives.
  void attach(NodeId node, TransportReceiver& receiver);

  /// Registers an additional observer (metrics, tracing); all registered
  /// observers see every send/loss/drop, in registration order. During
  /// threaded windows, observers whose concurrent_safe() is false observe
  /// deferred replays at the window barrier instead of inline calls (same
  /// per-observer order; see TransportObserver).
  void add_observer(TransportObserver& observer) {
    observers_.push_back(&observer);
    if (!observer.concurrent_safe()) have_deferred_observers_ = true;
  }

  /// Deterministic fault injection (FaultController, tests, failure-injection
  /// examples): return false to drop that send. Filters stack — every
  /// registered filter is consulted in registration order and any one of them
  /// may drop. Evaluated before the stochastic loss draw; dropped sends are
  /// reported to the observer as losses. `overlay` distinguishes the two
  /// channels (true = overlay link, false = out-of-band).
  using FaultFilter = std::function<bool(NodeId from, NodeId to,
                                         const Message& msg, bool overlay)>;
  void add_fault_filter(FaultFilter filter) {
    faults_.push_back(std::move(filter));
  }

  /// Reroutes delivery events. By default an arrival is scheduled on the
  /// simulator heap; the sharded engine installs a router that sends it
  /// through the cross-shard mailbox grid instead. The loss draws, delay
  /// computation, and observer callbacks are unaffected — only where the
  /// delivery callback waits changes.
  using ArrivalRouter =
      std::function<void(NodeId to, Duration delay, Scheduler::Callback cb)>;
  void set_arrival_router(ArrivalRouter router) {
    router_ = std::move(router);
  }

  /// Sends over the overlay link (from → to). If the link does not exist
  /// the message is dropped (stale-route drop).
  void send_overlay(NodeId from, NodeId to, MessagePtr msg);

  /// Sends over the out-of-band channel. `from == to` is a programming
  /// error — recovery never gossips with itself.
  void send_direct(NodeId from, NodeId to, MessagePtr msg);

  [[nodiscard]] const TransportConfig& config() const { return config_; }
  [[nodiscard]] Topology& topology() { return topology_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }
  /// Link-behaviour knobs (FaultController's bandwidth degradation).
  [[nodiscard]] LinkModel& link_model() { return link_model_; }

 private:
  TransportReceiver& receiver_for(NodeId node) const;
  bool faults_allow(NodeId from, NodeId to, const Message& msg,
                    bool overlay) const;
  /// Observer fan-out, lane-aware: outside parallel windows every observer
  /// fires inline in registration order; under a worker lane the
  /// concurrent-safe ones fire inline and the rest are deferred to the
  /// window barrier (the MessagePtr keeps the message alive until replay).
  void notify_send(NodeId from, NodeId to, const MessagePtr& msg,
                   bool overlay);
  void notify_loss(NodeId from, NodeId to, const MessagePtr& msg,
                   bool overlay);
  void notify_drop_no_link(NodeId from, NodeId to, const MessagePtr& msg);

  Simulator& sim_;
  Topology& topology_;
  TransportConfig config_;
  LinkModel link_model_;
  /// One direct-channel stream (loss + latency draws) per sender node; a
  /// node's direct sends all execute on its own engine lane, so threaded
  /// windows consume these streams in serial order without locking.
  std::vector<Rng> direct_rngs_;
  std::vector<TransportReceiver*> receivers_;
  std::vector<TransportObserver*> observers_;
  bool have_deferred_observers_ = false;
  std::vector<FaultFilter> faults_;
  ArrivalRouter router_;
};

}  // namespace epicast
