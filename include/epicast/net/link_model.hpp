// epicast — physical behaviour of one overlay hop.
//
// Each overlay link behaves as a full-duplex 10 Mbit/s Ethernet-like channel
// (paper §IV-A): per-direction FIFO serialization (a message must wait for
// the previous one to finish transmitting), a fixed propagation delay, and
// independent Bernoulli loss with rate ε applied per message.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/common/rng.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {

struct LinkParams {
  double bandwidth_bps = 10e6;                       ///< 10 Mbit/s default
  Duration propagation = Duration::micros(50);       ///< per-hop latency
  double loss_rate = 0.0;                            ///< ε, per message
};

class LinkModel {
 public:
  /// Forks one loss-trial stream per sender node off `base` (in node-id
  /// order), and keeps the per-direction queue state partitioned by sender
  /// too. All of a node's sends execute on its own engine lane, so the
  /// threaded windows draw from these streams in exactly the serial order —
  /// no lock, no divergence.
  LinkModel(LinkParams params, Rng base, std::uint32_t nodes);

  struct Outcome {
    Duration delay;  ///< queueing + transmission + propagation
    bool lost;       ///< message corrupted in transit
  };

  /// Accounts for transmitting `bytes` from `from` to `to` starting no
  /// earlier than `now`, and draws the loss trial. `lossless` suppresses the
  /// loss draw (reliable control channel) but still occupies the link.
  Outcome transmit(NodeId from, NodeId to, std::size_t bytes, SimTime now,
                   bool lossless);

  /// Transmission time of `bytes` at the current effective bandwidth.
  [[nodiscard]] Duration serialization_time(std::size_t bytes) const;

  [[nodiscard]] const LinkParams& params() const { return params_; }

  /// Scales the effective bandwidth of every link to `scale` × the
  /// configured rate (FaultController's timed degradation windows).
  /// Must be in (0, 1]; 1.0 restores nominal behaviour.
  void set_bandwidth_scale(double scale);
  [[nodiscard]] double bandwidth_scale() const { return bandwidth_scale_; }

  /// Forgets per-link queue state (e.g., between scenario phases).
  void reset();

 private:
  LinkParams params_;
  double bandwidth_scale_ = 1.0;
  /// One loss-trial stream per sender, forked in node-id order.
  std::vector<Rng> rngs_;
  /// Per sender: destination node -> when that direction's sender side
  /// becomes free. Indexed by the sending node, so each entry is only ever
  /// touched by that node's lane.
  std::vector<std::unordered_map<std::uint32_t, SimTime>> next_free_;
};

}  // namespace epicast
