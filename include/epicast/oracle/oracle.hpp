// epicast — runtime conformance oracles.
//
// A verification layer for live runs: an Oracle observes a scenario through
// hooks the stack already exposes — transport sends (TransportObserver),
// local deliveries (Dispatcher::DeliveryListener), publishes (Workload's
// publish listener) — and checks one protocol-level safety property while
// the simulation executes. run_scenario wires the default suite
// (oracle/checks.hpp) into every run unless ScenarioConfig::oracles is off,
// so every ctest scenario doubles as a conformance check.
//
// Oracles are pure observers: they schedule no simulator events, draw no
// random numbers, and mutate no protocol state, so enabling them cannot
// change a run's outcome — the determinism seed-guard in
// test_determinism.cpp pins exactly that.
//
// A violated property either aborts immediately with sim-time + node id
// (FailMode::Abort, what run_scenario uses) or is recorded for inspection
// (FailMode::Record, what the oracle self-tests use to prove each oracle
// fires on bad input).
//
// Building with -DEPICAST_ORACLES=OFF (or running with EPICAST_ORACLES=0)
// removes the wiring from run_scenario entirely, for overhead-sensitive
// benchmarking; see docs/EXTENDING.md for how to register a new oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "epicast/common/ids.hpp"
#include "epicast/net/transport.hpp"
#include "epicast/pubsub/event.hpp"
#include "epicast/sim/time.hpp"

namespace epicast {
class PubSubNetwork;
}

namespace epicast::oracle {

/// One violated property: where and when it fired, which oracle, and a
/// human-readable account of the offending observation.
struct Violation {
  SimTime when;
  NodeId node;
  std::string oracle;  ///< Oracle::name() of the check that fired
  std::string detail;
};

/// What the suite lets its oracles see of the scenario under test. The
/// network may be null in unit harnesses that drive hooks by hand; oracles
/// needing it skip their checks then.
struct OracleContext {
  Simulator* sim = nullptr;
  PubSubNetwork* network = nullptr;
  SizingMode sizing = SizingMode::Nominal;
};

class OracleSuite;

/// One safety property. Override the hooks the property needs; every hook
/// is optional. Within a hook, call checked() for each performed check and
/// fail() when the property is violated.
class Oracle {
 public:
  virtual ~Oracle() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// True when every hook of this oracle only reads state owned by the
  /// lane invoking it (e.g. the sending node's own retransmission buffer)
  /// and keeps no cross-node mutable members. Such oracles check sends
  /// inline on worker threads during threaded windows — necessary when the
  /// property is only meaningful synchronously with the send (a cache read
  /// deferred to the barrier could see later evictions). Everything else
  /// observes the deferred replay at the window barrier.
  [[nodiscard]] virtual bool concurrent_safe() const { return false; }

  /// A dispatcher published a new event.
  virtual void on_publish(const EventPtr& event) { (void)event; }

  /// A dispatcher delivered an event locally (first reception of a
  /// matching event; `recovered` marks deliveries via the recovery
  /// machinery).
  virtual void on_delivery(NodeId node, const EventPtr& event,
                           bool recovered) {
    (void)node, (void)event, (void)recovered;
  }

  /// The transport accepted a send (before any loss draw).
  virtual void on_send(NodeId from, NodeId to, const Message& msg,
                       bool overlay) {
    (void)from, (void)to, (void)msg, (void)overlay;
  }

  /// Called once after the simulation finishes — end-of-run global checks.
  virtual void on_scenario_end() {}

 protected:
  [[nodiscard]] const OracleContext& ctx() const;

  /// Counts one performed check (surfaces as ScenarioResult::oracle_checks,
  /// the proof that oracles were active).
  void checked();

  /// Reports a violation at `node`, stamped with the current sim time.
  /// Aborts or records depending on the suite's FailMode.
  void fail(NodeId node, std::string detail);

 private:
  friend class OracleSuite;
  OracleSuite* suite_ = nullptr;
};

enum class FailMode {
  Abort,   ///< first violation aborts the process (run_scenario)
  Record,  ///< violations accumulate in violations() (self-tests)
};

/// Owns a set of oracles and fans the scenario hooks out to them. Doubles
/// as the TransportObserver to register with Transport::add_observer; the
/// delivery/publish hooks are forwarded by the scenario runner's listeners.
class OracleSuite final : public TransportObserver {
 public:
  OracleSuite(OracleContext ctx, FailMode mode);

  /// Registers an oracle; it observes every subsequent hook invocation.
  void add(std::unique_ptr<Oracle> oracle);

  void notify_publish(const EventPtr& event);
  void notify_delivery(NodeId node, const EventPtr& event, bool recovered);
  void notify_scenario_end();

  // -- TransportObserver ----------------------------------------------------
  // The suite itself stays a deferred observer (concurrent_safe() false):
  // when sync_observer() has been registered it dispatches on_send only to
  // the non-concurrent-safe oracles; otherwise to all of them.
  void on_send(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;
  void on_loss(NodeId, NodeId, const Message&, bool) override {}
  void on_drop_no_link(NodeId, NodeId, const Message&) override {}

  /// A second TransportObserver dispatching on_send only to the
  /// concurrent-safe oracles, inline on the sending lane. Register it
  /// *alongside* the suite (the scenario runner does) whenever the
  /// transport may run threaded windows; from the first call on, the
  /// suite's own on_send stops covering the safe oracles, so each send is
  /// checked exactly once per oracle in serial and threaded runs alike.
  [[nodiscard]] TransportObserver& sync_observer();

  [[nodiscard]] const OracleContext& context() const { return ctx_; }
  [[nodiscard]] std::size_t oracle_count() const { return oracles_.size(); }
  /// Total checks performed across all oracles.
  [[nodiscard]] std::uint64_t checks() const {
    return checks_.load(std::memory_order_relaxed);
  }
  /// Recorded violations (FailMode::Record only — Abort never returns).
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

 private:
  friend class Oracle;
  void report(const Oracle& oracle, NodeId node, std::string detail);
  void dispatch_send(NodeId from, NodeId to, const Message& msg, bool overlay,
                     bool safe_group);

  struct SyncObserver final : TransportObserver {
    OracleSuite* suite = nullptr;
    [[nodiscard]] bool concurrent_safe() const override { return true; }
    void on_send(NodeId from, NodeId to, const Message& msg,
                 bool overlay) override {
      suite->dispatch_send(from, to, msg, overlay, /*safe_group=*/true);
    }
    void on_loss(NodeId, NodeId, const Message&, bool) override {}
    void on_drop_no_link(NodeId, NodeId, const Message&) override {}
  };

  OracleContext ctx_;
  FailMode mode_;
  std::vector<std::unique_ptr<Oracle>> oracles_;
  std::vector<Violation> violations_;
  /// Relaxed: checked() may fire from worker lanes; the total is an
  /// order-independent sum, so the count (and result_json's oracle_checks)
  /// stays deterministic.
  std::atomic<std::uint64_t> checks_{0};
  /// Guards violations_ in Record mode (worker-lane oracles may fail too).
  std::mutex report_mu_;
  SyncObserver sync_;
  bool split_dispatch_ = false;  ///< sync_observer() handed out
};

/// Installs the six built-in oracles (oracle/checks.hpp) into `suite`.
void add_default_oracles(OracleSuite& suite);

/// Whether run_scenario wires an OracleSuite by default: false when the
/// library was built with EPICAST_ORACLES=OFF, otherwise true unless the
/// EPICAST_ORACLES environment variable is "0"/"off" (read once, first
/// call — same pattern as default_sizing_mode()).
[[nodiscard]] bool oracles_enabled_by_default();

}  // namespace epicast::oracle
