// epicast — the built-in conformance oracles.
//
// Six safety properties of the paper's model, checked live during every
// oracle-enabled run (see oracle/oracle.hpp for the wiring):
//
//   1. unique-delivery    — at most one delivery per (event, subscriber);
//   2. matching-delivery  — deliveries only reach locally subscribed nodes;
//   3. conservation       — delivered ⊆ published (never before the publish
//                           instant), and every *recovered* delivery was
//                           preceded by a retransmission reply carrying that
//                           event to that node;
//   4. buffer-bound       — retransmission-buffer occupancy never exceeds β;
//   5. digest-coverage    — originated push digests advertise only events
//                           the sender actually buffers, and recovery
//                           replies carry only events the sender buffers;
//   6. wire-round-trip    — under SizingMode::Wire, every encodable frame
//                           decodes back and re-encodes to identical bytes,
//                           and its size matches wire_size_bytes().
//
// Each oracle also exposes its core check as a public verify_* method, so
// the self-tests can prove it fires by feeding violating inputs directly —
// the live hooks funnel into the same methods.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "epicast/oracle/oracle.hpp"
#include "epicast/wire/buffer.hpp"

namespace epicast::oracle {

/// Key of one (event, subscriber) delivery pair.
struct DeliveryKey {
  EventId event;
  NodeId node;

  friend constexpr auto operator<=>(const DeliveryKey&,
                                    const DeliveryKey&) = default;
};

struct DeliveryKeyHash {
  std::size_t operator()(const DeliveryKey& k) const noexcept {
    return std::hash<EventId>{}(k.event) ^
           (std::hash<NodeId>{}(k.node) * 0x9e3779b97f4a7c15ULL);
  }
};

/// 1. No duplicate delivery per (event, subscriber) — the dispatcher's
/// duplicate suppression (seen-set + accept_recovered) must hold under
/// every recovery algorithm, churn, and loss pattern.
class UniqueDeliveryOracle final : public Oracle {
 public:
  [[nodiscard]] const char* name() const override { return "unique-delivery"; }
  void on_delivery(NodeId node, const EventPtr& event, bool recovered) override;

 private:
  std::unordered_set<DeliveryKey, DeliveryKeyHash> delivered_;
};

/// 2. Delivery only to matching subscribers: the delivering node's
/// subscription table must match the event's content locally.
class MatchingDeliveryOracle final : public Oracle {
 public:
  [[nodiscard]] const char* name() const override {
    return "matching-delivery";
  }
  void on_delivery(NodeId node, const EventPtr& event, bool recovered) override;
};

/// 3. Event conservation. delivered ⊆ published: every delivered event was
/// published, no earlier than its publish instant. recovered ⊆ previously
/// lost is not directly observable (a loss leaves no trace at the loser),
/// so the enforced form is causal: a recovered delivery of event e at node
/// n requires a prior RecoveryReplyMessage send carrying e to n — recovered
/// events can only enter through the retransmission machinery.
///
/// The publisher's own local delivery happens inside Dispatcher::publish(),
/// before the workload's publish listener runs; a first delivery at the
/// event's source with the event's own publish stamp is therefore accepted
/// as the publish observation.
class ConservationOracle final : public Oracle {
 public:
  [[nodiscard]] const char* name() const override { return "conservation"; }
  void on_publish(const EventPtr& event) override;
  void on_delivery(NodeId node, const EventPtr& event, bool recovered) override;
  void on_send(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;

 private:
  std::unordered_set<EventId> published_;
  /// (event, destination) pairs offered via a retransmission reply.
  std::unordered_set<DeliveryKey, DeliveryKeyHash> offered_;
};

/// 4. Buffer occupancy ≤ β. Checked on every gossip send of a node exposing
/// its cache (RecoveryProtocol::event_cache()) and once more per node at
/// scenario end.
class BufferBoundOracle final : public Oracle {
 public:
  [[nodiscard]] const char* name() const override { return "buffer-bound"; }
  /// Stateless and reads only the *sender's* cache — must run inline on the
  /// sending lane (a barrier-deferred read could see later evictions).
  [[nodiscard]] bool concurrent_safe() const override { return true; }
  void on_send(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;
  void on_scenario_end() override;

  /// The core predicate: occupancy within the bound. Public so self-tests
  /// can feed a violating occupancy directly.
  void verify_occupancy(NodeId node, std::size_t size, std::size_t capacity);
};

/// 5. Gossip digests only reference buffered events. Enforced on the sends
/// where the claim is synchronous with the cache read:
///   * an *originated* push digest (gossiper == sender, hops == 0) — its
///     ids were just read from the sender's cache. Forwarded digests keep
///     the originator's ids and are exempt (the forwarder never claimed to
///     buffer them);
///   * every recovery reply — its events were just fetched from the
///     sender's cache.
class DigestCoverageOracle final : public Oracle {
 public:
  [[nodiscard]] const char* name() const override { return "digest-coverage"; }
  /// Stateless and reads only the sender's own cache; the digest/cache
  /// agreement is only meaningful synchronously with the send.
  [[nodiscard]] bool concurrent_safe() const override { return true; }
  void on_send(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;
};

/// 6. Wire-frame round-trip identity (SizingMode::Wire only): every message
/// with a frame format must encode, decode back without error, re-encode to
/// the identical byte string, and report encode()'s size as its
/// wire_size_bytes().
class WireRoundTripOracle final : public Oracle {
 public:
  [[nodiscard]] const char* name() const override { return "wire-round-trip"; }
  void on_send(NodeId from, NodeId to, const Message& msg,
               bool overlay) override;

  /// Encodes `msg` (if the codec has a frame for it) and round-trips the
  /// bytes. Public for self-tests.
  void verify_frame(NodeId node, const Message& msg);

  /// Round-trips an already encoded frame: decode must succeed and
  /// re-encode must reproduce `frame` exactly. Public so self-tests can
  /// feed corrupted bytes.
  void verify_bytes(NodeId node, std::span<const std::uint8_t> frame);

 private:
  wire::WireBuffer encode_buf_;
  wire::WireBuffer reencode_buf_;
};

}  // namespace epicast::oracle
