#!/usr/bin/env python3
"""Launch and evaluate a real-UDP epicastd cluster on localhost.

The harness is the cluster-side counterpart of running one epicast_sim
scenario: it generates a seeded random-tree topology and subscription set,
writes the shared cluster config file, reserves N free UDP ports, launches
one epicastd process per node, waits for the settle/run/drain lifecycle to
finish, then aggregates the per-node JSON stats dumps into cluster-wide
delivery, overhead and latency numbers.

Delivery accounting mirrors the simulator's DeliveryTracker: for every
publish record (source s, seq q, patterns P), the expected receivers are the
nodes n != s whose subscription set intersects P; the event counts as
delivered at n when n's stats dump records a delivery of (s, q). The
process exits non-zero when eventual delivery falls below
--min-eventual-delivery, when any node records a duplicate delivery, when
any daemon exits unsuccessfully (an aborted conformance oracle shows up
here), or when a daemon dies without the chaos schedule asking for it.

Chaos mode (--chaos) injects real process failures mid-run:

    --chaos 'kill(node=3,at=1.0,restart=1.5,policy=warm);kill(node=7,at=2.0)'

SIGKILLs node 3 one second after publishing starts and relaunches it 1.5 s
later with the same journal, which the restarted daemon replays to rebuild
its duplicate-suppression state before rejoining the run. Times are
relative to the start of the publish window, like the fault-plan grammar.
All daemons share one CLOCK_MONOTONIC epoch (epoch-ns in the generated
config), so a relaunched process rejoins the lifecycle mid-phase instead of
restarting it. Wire-level faults (bursty loss, slowdowns, blackholes) are
passed through with --faults using the fault-plan grammar.

With --compare-sim=PATH/TO/epicast_sim the same workload shape is also run
in simulation and the two eventual-delivery numbers are required to agree
within --sim-tolerance — the cross-check that the socket backend and the
simulated transport implement the same protocol.

Example (from a build directory):

    python3 ../scripts/cluster_harness.py --epicastd examples/epicastd \
        --nodes 16 --algorithm combined-pull --rate 20 --drop-rate 0.05 \
        --run 5 --drain 2 --min-eventual-delivery 0.99
"""

import argparse
import json
import math
import os
import random
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time


def reserve_udp_ports(n):
    """Reserve n distinct UDP ports. Returns (ports, sockets): the sockets
    stay bound (SO_REUSEADDR) until the moment each daemon is launched, so
    another process cannot grab a port between reservation and launch —
    release_port() closes the placeholder just before the Popen."""
    socks = []
    for _ in range(n):
        s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind(("127.0.0.1", 0))
        socks.append(s)
    return [s.getsockname()[1] for s in socks], socks


def release_port(socks, node):
    if socks[node] is not None:
        socks[node].close()
        socks[node] = None


def parse_chaos(spec):
    """Parse a chaos schedule: ';'-separated kill(...) clauses.

        kill(node=3,at=1.0[,restart=1.0][,policy=warm|cold])

    `at` is seconds after the publish window opens; `restart` is how long
    the node stays dead before relaunch (the relaunch is mandatory — the
    stats dump of the final incarnation is what the aggregator reads)."""
    events = []
    for part in filter(None, (p.strip() for p in spec.split(";"))):
        m = re.fullmatch(r"kill\(([^()]*)\)", part)
        if not m:
            raise ValueError(f"bad chaos clause '{part}' "
                             "(expected kill(node=,at=,restart=,policy=))")
        kv = {}
        for item in filter(None, (s.strip() for s in m.group(1).split(","))):
            key, eq, value = item.partition("=")
            if not eq:
                raise ValueError(f"bad chaos parameter '{item}'")
            kv[key.strip()] = value.strip()
        unknown = set(kv) - {"node", "at", "restart", "policy"}
        if unknown:
            raise ValueError(f"unknown chaos parameter(s) {sorted(unknown)}")
        if "node" not in kv or "at" not in kv:
            raise ValueError(f"chaos clause '{part}' needs node= and at=")
        ev = {
            "node": int(kv["node"]),
            "at": float(kv["at"]),
            "restart": float(kv.get("restart", 1.0)),
            "policy": kv.get("policy", "warm"),
        }
        if ev["at"] < 0 or ev["restart"] < 0:
            raise ValueError("chaos times must be >= 0")
        if ev["policy"] not in ("warm", "cold"):
            raise ValueError("chaos policy must be warm or cold")
        events.append(ev)
    return events


def build_topology(args, rng):
    """Random tree (node i attaches to a random earlier node) plus a
    subscription set: every node subscribes to `pi` distinct patterns."""
    links = [(i, rng.randrange(i)) for i in range(1, args.nodes)]
    subs = []
    for node in range(args.nodes):
        for p in rng.sample(range(args.universe), args.pi):
            subs.append((node, p))
    return links, subs


def write_config(path, args, ports, links, subs, epoch_ns):
    lines = ["# generated by cluster_harness.py"]
    for i, port in enumerate(ports):
        lines.append(f"node {i} 127.0.0.1 {port}")
    for a, b in links:
        lines.append(f"link {a} {b}")
    for node, p in subs:
        lines.append(f"sub {node} {p}")
    lines += [
        f"algorithm {args.algorithm}",
        f"pattern-universe {args.universe}",
        f"patterns-per-event {args.patterns_per_event}",
        f"payload-bytes {args.payload_bytes}",
        f"rate {args.rate}",
        f"settle {args.settle}",
        f"run {args.run}",
        f"drain {args.drain}",
        f"drop-rate {args.drop_rate}",
        f"seed {args.seed}",
        "sizing wire",
        f"oracles {'on' if args.oracles else 'off'}",
        # One shared CLOCK_MONOTONIC epoch: every daemon (including one
        # relaunched mid-run) anchors its settle/run/drain phases here.
        f"epoch-ns {epoch_ns}",
    ]
    if args.gossip_interval_ms is not None:
        lines.append(f"gossip-interval-ms {args.gossip_interval_ms}")
    if args.beta is not None:
        lines.append(f"beta {args.beta}")
    if args.heartbeat_interval_ms is not None:
        lines.append(f"heartbeat-interval-ms {args.heartbeat_interval_ms}")
    if args.faults is not None:
        lines.append(f"faults {args.faults}")
    with open(path, "w") as f:
        f.write("\n".join(lines) + "\n")


def write_manifest(out_dir, args, ports, chaos, epoch_ns):
    """Everything needed to replay or debug this run, stamped by --seed."""
    manifest = {
        "seed": args.seed,
        "argv": sys.argv[1:],
        "nodes": args.nodes,
        "algorithm": args.algorithm,
        "ports": ports,
        "epoch_ns": epoch_ns,
        "chaos": chaos,
        "faults": args.faults,
        "config": "cluster.conf",
    }
    path = os.path.join(out_dir, "manifest.json")
    with open(path, "w") as f:
        json.dump(manifest, f, indent=2)
        f.write("\n")
    return path


class Cluster:
    """Launch state: one daemon per node, relaunchable under chaos."""

    def __init__(self, args, config_path, out_dir, socks, journaled):
        self.args = args
        self.config_path = config_path
        self.out_dir = out_dir
        self.socks = socks
        self.journaled = journaled
        self.procs = {}  # node -> Popen (current incarnation)
        self.logs = {}   # node -> open log file
        self.stats = {i: os.path.join(out_dir, f"node{i}.json")
                      for i in range(args.nodes)}

    def launch(self, node, policy="warm"):
        cmd = [
            self.args.epicastd,
            f"--config={self.config_path}",
            f"--node-id={node}",
            f"--stats-out={self.stats[node]}",
        ]
        if self.journaled:
            cmd.append(
                f"--journal={os.path.join(self.out_dir, f'node{node}.journal')}")
            cmd.append(f"--restart-policy={policy}")
            if self.args.snapshot and policy == "warm":
                cmd.append("--snapshot")
        if node not in self.logs:
            self.logs[node] = open(
                os.path.join(self.out_dir, f"node{node}.log"), "a")
        release_port(self.socks, node)  # just-in-time: minimal race window
        self.procs[node] = subprocess.Popen(
            cmd, stdout=self.logs[node], stderr=self.logs[node])

    def launch_all(self):
        for node in range(self.args.nodes):
            self.launch(node)

    def kill(self, node):
        self.procs[node].kill()
        self.procs[node].wait()

    def terminate_all(self):
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in self.procs.values():
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def close_logs(self):
        for log in self.logs.values():
            log.close()


def run_lifecycle(args, cluster, chaos, epoch_ns):
    """Drive the cluster to completion, firing the chaos schedule on the
    shared monotonic clock. Returns (exit_codes, unscheduled_crashes)."""
    # Chaos times are relative to the publish window; the daemons anchor
    # their phases at epoch_ns on the same CLOCK_MONOTONIC we read here.
    def now():
        return (time.monotonic_ns() - epoch_ns) / 1e9

    actions = []  # (t, "kill"|"relaunch", event)
    for ev in chaos:
        actions.append((args.settle + ev["at"], "kill", ev))
    actions.sort(key=lambda a: a[0])

    deadline = args.settle + args.run + args.drain + 20.0
    sanctioned = set()  # nodes whose current incarnation we killed
    crashes = []        # (node, code) deaths the schedule did not order
    exit_codes = {}
    overrun = False

    while True:
        t = now()
        while actions and actions[0][0] <= t:
            _, what, ev = actions.pop(0)
            node = ev["node"]
            if what == "kill":
                print(f"chaos: t={t:.2f}s SIGKILL node {node} "
                      f"(restart +{ev['restart']}s, {ev['policy']})")
                sanctioned.add(node)
                cluster.kill(node)
                actions.append((args.settle + ev["at"] + ev["restart"],
                                "relaunch", ev))
                actions.sort(key=lambda a: a[0])
            else:
                print(f"chaos: t={t:.2f}s relaunch node {node} "
                      f"({ev['policy']})")
                sanctioned.discard(node)
                exit_codes.pop(node, None)
                cluster.launch(node, policy=ev["policy"])

        for node, proc in cluster.procs.items():
            code = proc.poll()
            if code is None or node in exit_codes:
                continue
            exit_codes[node] = code
            if node not in sanctioned and code != 0:
                crashes.append((node, code))

        live = [n for n, p in cluster.procs.items()
                if p.poll() is None or n in sanctioned]
        if not actions and not live:
            break
        if t > deadline:
            overrun = True
            print("FAIL: lifecycle overran its deadline, terminating",
                  file=sys.stderr)
            cluster.terminate_all()
            for node, proc in cluster.procs.items():
                exit_codes.setdefault(node, proc.poll())
            break
        time.sleep(0.05)

    cluster.close_logs()
    if overrun:
        crashes.append((-1, "deadline"))
    return exit_codes, crashes


def merge_latency(dumps):
    """Element-wise merge of the per-node publish→deliver histograms
    (log-bucketed: bucket i covers [2^i, 2^(i+1)) ns), then cluster-wide
    quantiles at the geometric bucket midpoint 2^i·√2 ns."""
    buckets = {}
    count = 0
    max_s = 0.0
    for dump in dumps:
        lat = dump.get("latency")
        if not lat:
            continue
        count += lat.get("count", 0)
        max_s = max(max_s, lat.get("max_s", 0.0))
        for i, n in lat.get("buckets", []):
            buckets[i] = buckets.get(i, 0) + n

    def quantile(q):
        if count == 0:
            return 0.0
        rank = max(1, math.ceil(q * count))
        seen = 0
        for i in sorted(buckets):
            seen += buckets[i]
            if seen >= rank:
                return (2.0 ** i) * math.sqrt(2.0) * 1e-9
        return max_s

    return {
        "count": count,
        "p50_s": quantile(0.5),
        "p90_s": quantile(0.9),
        "p99_s": quantile(0.99),
        "max_s": max_s,
    }


def aggregate(args, stats_paths, subs):
    """Cluster-wide delivery/overhead/latency numbers from the dumps."""
    dumps = []
    for path in stats_paths:
        with open(path) as f:
            dumps.append(json.load(f))

    sub_patterns = {}
    for node, p in subs:
        sub_patterns.setdefault(node, set()).add(p)

    delivered = {}  # node -> set((source, seq))
    duplicates = 0
    for dump in dumps:
        node = dump["node"]
        seen = set()
        for rec in dump["delivered"]:
            key = (rec["src"], rec["seq"])
            if key in seen:
                duplicates += 1
            seen.add(key)
        delivered[node] = seen

    pairs_expected = 0
    pairs_delivered = 0
    events = 0
    for dump in dumps:
        src = dump["node"]
        for rec in dump["published"]:
            events += 1
            patterns = set(rec["patterns"])
            for node in range(args.nodes):
                if node == src:
                    continue  # local delivery is the dispatcher's own leg
                if not (sub_patterns.get(node, set()) & patterns):
                    continue
                pairs_expected += 1
                if (src, rec["seq"]) in delivered.get(node, set()):
                    pairs_delivered += 1

    transport = {}
    for dump in dumps:
        for key, value in dump["transport"].items():
            transport[key] = transport.get(key, 0) + value
    oracle_checks = sum(d.get("oracle_checks", 0) for d in dumps)
    restarts = sum(1 for d in dumps if d.get("restarted"))

    delivery = pairs_delivered / pairs_expected if pairs_expected else 1.0
    return {
        "nodes": args.nodes,
        "algorithm": args.algorithm,
        "events_published": events,
        "pairs_expected": pairs_expected,
        "pairs_delivered": pairs_delivered,
        "eventual_delivery_rate": delivery,
        "duplicate_deliveries": duplicates,
        "oracle_checks": oracle_checks,
        "nodes_restarted": restarts,
        "latency": merge_latency(dumps),
        "transport": transport,
    }


def run_sim_reference(args):
    """Same workload shape through epicast_sim; returns its JSON result."""
    cmd = [
        args.compare_sim,
        "--json",
        f"--algorithm={args.algorithm}",
        f"--nodes={args.nodes}",
        f"--epsilon={args.drop_rate}",
        f"--rate={args.rate}",
        f"--seed={args.seed}",
        f"--universe={args.universe}",
        f"--patterns-per-event={args.patterns_per_event}",
        f"--pi-max={args.pi}",
        f"--measure={args.run}",
        f"--horizon={args.drain}",
    ]
    out = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    if out.returncode != 0:
        raise RuntimeError(f"epicast_sim failed: {out.stderr[:500]}")
    return json.loads(out.stdout)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--epicastd", required=True, help="path to the daemon")
    ap.add_argument("--nodes", type=int, default=8)
    ap.add_argument("--algorithm", default="combined-pull")
    ap.add_argument("--rate", type=float, default=10.0,
                    help="per-publisher events/s")
    ap.add_argument("--settle", type=float, default=0.5)
    ap.add_argument("--run", type=float, default=5.0)
    ap.add_argument("--drain", type=float, default=2.0)
    ap.add_argument("--drop-rate", type=float, default=0.0)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--universe", type=int, default=16)
    ap.add_argument("--pi", type=int, default=4,
                    help="patterns per subscriber")
    ap.add_argument("--patterns-per-event", type=int, default=1)
    ap.add_argument("--payload-bytes", type=int, default=1000)
    ap.add_argument("--gossip-interval-ms", type=float, default=None)
    ap.add_argument("--beta", type=int, default=None)
    ap.add_argument("--heartbeat-interval-ms", type=float, default=None,
                    help="failure-detector beacon period (0 disables)")
    ap.add_argument("--faults", default=None,
                    help="wire fault plan, e.g. 'burst(p=0.05,r=0.25)'")
    ap.add_argument("--chaos", default=None,
                    help="kill schedule, e.g. "
                         "'kill(node=3,at=1.0,restart=1.5,policy=warm)'")
    ap.add_argument("--snapshot", action="store_true",
                    help="warm restarts preload a periodic cache snapshot")
    ap.add_argument("--no-oracles", dest="oracles", action="store_false")
    ap.add_argument("--min-eventual-delivery", type=float, default=0.0)
    ap.add_argument("--compare-sim", default=None,
                    help="path to epicast_sim for a simulation cross-check")
    ap.add_argument("--sim-tolerance", type=float, default=0.05,
                    help="allowed |cluster - sim| eventual-delivery gap")
    ap.add_argument("--out-dir", default=None,
                    help="keep config/logs/stats here (default: temp dir)")
    args = ap.parse_args()

    if args.nodes < 2:
        ap.error("--nodes must be >= 2")
    if args.pi > args.universe:
        ap.error("--pi cannot exceed --universe")
    try:
        chaos = parse_chaos(args.chaos) if args.chaos else []
    except ValueError as e:
        ap.error(str(e))
    for ev in chaos:
        if not 0 <= ev["node"] < args.nodes:
            ap.error(f"chaos kills node {ev['node']} outside [0, "
                     f"{args.nodes})")

    out_dir = args.out_dir or tempfile.mkdtemp(prefix="epicast-cluster-")
    os.makedirs(out_dir, exist_ok=True)

    rng = random.Random(args.seed)
    links, subs = build_topology(args, rng)
    ports, socks = reserve_udp_ports(args.nodes)
    epoch_ns = time.monotonic_ns()
    config_path = os.path.join(out_dir, "cluster.conf")
    write_config(config_path, args, ports, links, subs, epoch_ns)
    write_manifest(out_dir, args, ports, chaos, epoch_ns)

    print(f"cluster: {args.nodes} nodes, {args.algorithm}, "
          f"drop-rate {args.drop_rate}, "
          f"{len(chaos)} chaos kill(s), out-dir {out_dir}")
    cluster = Cluster(args, config_path, out_dir, socks,
                      journaled=bool(chaos))
    cluster.launch_all()
    exit_codes, crashes = run_lifecycle(args, cluster, chaos, epoch_ns)

    failed = [n for n, c in sorted(exit_codes.items()) if c != 0]
    if failed or crashes:
        for n in failed:
            log = os.path.join(out_dir, f"node{n}.log")
            with open(log) as f:
                tail = f.read()[-1000:]
            print(f"node {n} exited {exit_codes[n]}:\n{tail}",
                  file=sys.stderr)
        for node, code in crashes:
            print(f"FAIL: unscheduled daemon death (node {node}, "
                  f"code {code})", file=sys.stderr)
        if failed:
            print(f"FAIL: nodes {failed} exited non-zero", file=sys.stderr)
        return 1

    summary = aggregate(args, [cluster.stats[i] for i in range(args.nodes)],
                        subs)
    print(json.dumps(summary, indent=2))

    ok = True
    if summary["duplicate_deliveries"] > 0:
        print(f"FAIL: {summary['duplicate_deliveries']} duplicate "
              "deliveries", file=sys.stderr)
        ok = False
    if args.oracles and summary["oracle_checks"] == 0:
        print("FAIL: oracles enabled but no checks recorded",
              file=sys.stderr)
        ok = False
    if chaos and summary["nodes_restarted"] < len({e["node"] for e in chaos}):
        print(f"FAIL: {summary['nodes_restarted']} restarted stats dumps "
              f"for {len({e['node'] for e in chaos})} chaos-killed node(s)",
              file=sys.stderr)
        ok = False
    if summary["eventual_delivery_rate"] < args.min_eventual_delivery:
        print(f"FAIL: eventual delivery "
              f"{summary['eventual_delivery_rate']:.4f} < "
              f"{args.min_eventual_delivery}", file=sys.stderr)
        ok = False

    if args.compare_sim:
        sim = run_sim_reference(args)
        gap = abs(summary["eventual_delivery_rate"] -
                  sim["eventual_delivery_rate"])
        print(f"sim eventual delivery {sim['eventual_delivery_rate']:.4f} "
              f"vs cluster {summary['eventual_delivery_rate']:.4f} "
              f"(gap {gap:.4f}, tolerance {args.sim_tolerance})")
        if gap > args.sim_tolerance:
            print("FAIL: cluster diverges from simulation", file=sys.stderr)
            ok = False

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
