// Unit tests for the link model: serialization delay, per-direction FIFO
// queueing, propagation, and the Bernoulli loss process.
#include "epicast/net/link_model.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

LinkParams fast_params(double loss = 0.0) {
  LinkParams p;
  p.bandwidth_bps = 10e6;  // 10 Mbit/s: 1000 B = 0.8 ms
  p.propagation = Duration::micros(50);
  p.loss_rate = loss;
  return p;
}

TEST(LinkModel, SerializationTimeMatchesBandwidth) {
  LinkModel link(fast_params(), Rng{1}, /*nodes=*/4);
  EXPECT_EQ(link.serialization_time(1000), Duration::micros(800));
  EXPECT_EQ(link.serialization_time(125), Duration::micros(100));
}

TEST(LinkModel, IdleLinkDelayIsTxPlusPropagation) {
  LinkModel link(fast_params(), Rng{1}, /*nodes=*/4);
  const auto out = link.transmit(NodeId{0}, NodeId{1}, 1000, SimTime::zero(),
                                 /*lossless=*/true);
  EXPECT_EQ(out.delay, Duration::micros(850));
  EXPECT_FALSE(out.lost);
}

TEST(LinkModel, BackToBackMessagesQueue) {
  LinkModel link(fast_params(), Rng{1}, /*nodes=*/4);
  const SimTime t0 = SimTime::zero();
  const auto first = link.transmit(NodeId{0}, NodeId{1}, 1000, t0, true);
  const auto second = link.transmit(NodeId{0}, NodeId{1}, 1000, t0, true);
  EXPECT_EQ(first.delay, Duration::micros(850));
  EXPECT_EQ(second.delay, Duration::micros(1650));  // waits for the first
}

TEST(LinkModel, DirectionsAreIndependent) {
  LinkModel link(fast_params(), Rng{1}, /*nodes=*/4);
  const SimTime t0 = SimTime::zero();
  (void)link.transmit(NodeId{0}, NodeId{1}, 1000, t0, true);
  const auto reverse = link.transmit(NodeId{1}, NodeId{0}, 1000, t0, true);
  EXPECT_EQ(reverse.delay, Duration::micros(850));  // no queueing
}

TEST(LinkModel, DistinctLinksAreIndependent) {
  LinkModel link(fast_params(), Rng{1}, /*nodes=*/4);
  const SimTime t0 = SimTime::zero();
  (void)link.transmit(NodeId{0}, NodeId{1}, 1000, t0, true);
  const auto other = link.transmit(NodeId{0}, NodeId{2}, 1000, t0, true);
  EXPECT_EQ(other.delay, Duration::micros(850));
}

TEST(LinkModel, QueueDrainsOverTime) {
  LinkModel link(fast_params(), Rng{1}, /*nodes=*/4);
  (void)link.transmit(NodeId{0}, NodeId{1}, 1000, SimTime::zero(), true);
  const auto later = link.transmit(NodeId{0}, NodeId{1}, 1000,
                                   SimTime::seconds(1.0), true);
  EXPECT_EQ(later.delay, Duration::micros(850));
}

TEST(LinkModel, ResetClearsQueues) {
  LinkModel link(fast_params(), Rng{1}, /*nodes=*/4);
  (void)link.transmit(NodeId{0}, NodeId{1}, 1000, SimTime::zero(), true);
  link.reset();
  const auto out = link.transmit(NodeId{0}, NodeId{1}, 1000, SimTime::zero(),
                                 true);
  EXPECT_EQ(out.delay, Duration::micros(850));
}

TEST(LinkModel, LossRateIsRespectedStatistically) {
  LinkModel link(fast_params(0.1), Rng{7}, /*nodes=*/4);
  int lost = 0;
  constexpr int kSends = 50'000;
  for (int i = 0; i < kSends; ++i) {
    lost += link.transmit(NodeId{0}, NodeId{1}, 100, SimTime::seconds(i),
                          /*lossless=*/false)
                .lost
                ? 1
                : 0;
  }
  EXPECT_NEAR(static_cast<double>(lost) / kSends, 0.1, 0.01);
}

TEST(LinkModel, LosslessSuppressesLossButKeepsRngAligned) {
  // Two identical models; one sends a lossless message in the middle. The
  // loss outcomes of all *other* messages must match, so toggling control
  // reliability cannot perturb the rest of the run.
  LinkModel a(fast_params(0.5), Rng{11}, /*nodes=*/4);
  LinkModel b(fast_params(0.5), Rng{11}, /*nodes=*/4);
  std::vector<bool> lost_a, lost_b;
  for (int i = 0; i < 100; ++i) {
    const bool lossless = (i == 50);
    lost_a.push_back(
        a.transmit(NodeId{0}, NodeId{1}, 10, SimTime::seconds(i), lossless)
            .lost);
    lost_b.push_back(
        b.transmit(NodeId{0}, NodeId{1}, 10, SimTime::seconds(i), false)
            .lost);
  }
  EXPECT_FALSE(lost_a[50]);
  for (int i = 0; i < 100; ++i) {
    if (i != 50) {
      EXPECT_EQ(lost_a[i], lost_b[i]) << i;
    }
  }
}

}  // namespace
}  // namespace epicast
