// Tests for PubSubNetwork: the routing oracle, protocol-vs-oracle
// equivalence on random topologies (property test), route rebuilding after
// reconfigurations, and expected-receiver computation.
#include "epicast/pubsub/network.hpp"

#include <gtest/gtest.h>

#include "epicast/net/reconfigurator.hpp"
#include "epicast/pubsub/pattern.hpp"

namespace epicast {
namespace {

TransportConfig lossless() {
  TransportConfig c;
  c.link.loss_rate = 0.0;
  return c;
}

class SubscriptionForwardingProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubscriptionForwardingProperty, ProtocolMatchesOracleOnRandomTrees) {
  // On a random tree with random subscriptions, the distributed
  // subscription-forwarding protocol must produce exactly the tables the
  // global oracle predicts.
  Simulator sim(GetParam());
  Rng topo_rng = sim.fork_rng();
  Topology topo = Topology::random_tree(40, 4, topo_rng);
  Transport transport(sim, topo, lossless());
  PubSubNetwork net(sim, transport, DispatcherConfig{});

  PatternUniverse universe(20);
  Rng rng = sim.fork_rng();
  for (std::uint32_t i = 0; i < 40; ++i) {
    for (Pattern p : universe.sample_distinct(3, rng)) {
      net.node(NodeId{i}).subscribe(p);
    }
  }
  sim.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(net.routes_consistent());
}

TEST_P(SubscriptionForwardingProperty, RebuildReproducesProtocolState) {
  // rebuild_routes() (used after reconfigurations) must land in the same
  // state the protocol itself produces — including the suppression state,
  // which we probe by doing more (un)subscriptions afterwards.
  Simulator sim(GetParam() ^ 0xabcd);
  Rng topo_rng = sim.fork_rng();
  Topology topo = Topology::random_tree(30, 4, topo_rng);
  Transport transport(sim, topo, lossless());
  PubSubNetwork net(sim, transport, DispatcherConfig{});

  PatternUniverse universe(10);
  Rng rng = sim.fork_rng();
  for (std::uint32_t i = 0; i < 30; ++i) {
    for (Pattern p : universe.sample_distinct(2, rng)) {
      net.node(NodeId{i}).subscribe(p);
    }
  }
  sim.run_until(SimTime::seconds(1.0));
  ASSERT_TRUE(net.routes_consistent());

  net.rebuild_routes();
  EXPECT_TRUE(net.routes_consistent());

  // Dynamic behaviour still correct after a rebuild.
  net.node(NodeId{7}).subscribe(universe.at(9));
  net.node(NodeId{3}).unsubscribe(universe.at(0));
  sim.run_until(sim.now() + Duration::seconds(1.0));
  EXPECT_TRUE(net.routes_consistent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubscriptionForwardingProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(PubSubNetwork, RebuildAfterReconfigurationRestoresDelivery) {
  Simulator sim(5);
  Rng topo_rng = sim.fork_rng();
  Topology topo = Topology::random_tree(25, 4, topo_rng);
  Transport transport(sim, topo, lossless());
  PubSubNetwork net(sim, transport, DispatcherConfig{});

  net.node(NodeId{24}).subscribe(Pattern{1});
  sim.run_until(SimTime::seconds(0.5));
  ASSERT_TRUE(net.routes_consistent());

  ReconfigConfig rc;
  rc.repair_time = Duration::millis(100);
  Reconfigurator rec(sim, topo, rc);
  rec.set_repair_listener(
      [&net](const Reconfigurator::Repair&) { net.rebuild_routes(); });
  for (int i = 0; i < 5; ++i) {
    rec.force_reconfiguration();
    sim.run_until(sim.now() + Duration::seconds(0.5));
    ASSERT_TRUE(topo.is_tree());
    ASSERT_TRUE(net.routes_consistent()) << "after reconfiguration " << i;
  }

  // Events still reach the subscriber on the reshaped tree.
  int deliveries = 0;
  net.set_delivery_listener(
      [&](NodeId node, const EventPtr&, bool) {
        EXPECT_EQ(node, NodeId{24});
        ++deliveries;
      });
  net.node(NodeId{0}).publish({Pattern{1}});
  sim.run_until(sim.now() + Duration::seconds(0.5));
  EXPECT_EQ(deliveries, 1);
}

TEST(PubSubNetwork, ExpectedReceiversMatchesLocalSubscriptions) {
  Simulator sim(2);
  Topology topo = Topology::line(5);
  Transport transport(sim, topo, lossless());
  PubSubNetwork net(sim, transport, DispatcherConfig{});
  net.node(NodeId{1}).subscribe(Pattern{1});
  net.node(NodeId{3}).subscribe(Pattern{2});
  net.node(NodeId{4}).subscribe(Pattern{1});
  sim.run_until(SimTime::seconds(0.5));

  const auto both = net.expected_receivers({Pattern{1}, Pattern{2}});
  EXPECT_EQ(both, (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{4}}));
  EXPECT_EQ(net.expected_receivers({Pattern{3}}).size(), 0u);
  EXPECT_EQ(net.subscriber_count(Pattern{1}), 2u);
  EXPECT_EQ(net.subscriber_count(Pattern{2}), 1u);
  EXPECT_EQ(net.subscriber_count(Pattern{9}), 0u);
}

TEST(PubSubNetwork, ForEachVisitsAllNodes) {
  Simulator sim(2);
  Topology topo = Topology::line(7);
  Transport transport(sim, topo, lossless());
  PubSubNetwork net(sim, transport, DispatcherConfig{});
  int count = 0;
  net.for_each([&](Dispatcher& d) {
    EXPECT_EQ(d.id().value(), static_cast<std::uint32_t>(count));
    ++count;
  });
  EXPECT_EQ(count, 7);
  EXPECT_EQ(net.size(), 7u);
}

}  // namespace
}  // namespace epicast
