// Unit tests for events, identifiers, and matching.
#include "epicast/pubsub/event.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "epicast/common/ids.hpp"

namespace epicast {
namespace {

EventPtr make_event(std::uint32_t source, std::uint64_t seq,
                    std::vector<PatternSeq> patterns) {
  return std::make_shared<EventData>(EventId{NodeId{source}, seq},
                                     std::move(patterns), 100,
                                     SimTime::zero());
}

TEST(EventId, EqualityAndHash) {
  const EventId a{NodeId{1}, 7};
  const EventId b{NodeId{1}, 7};
  const EventId c{NodeId{1}, 8};
  const EventId d{NodeId{2}, 7};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  std::unordered_set<EventId> set{a, b, c, d};
  EXPECT_EQ(set.size(), 3u);
}

TEST(EventId, HashSpreadsDenseIds) {
  std::unordered_set<std::size_t> hashes;
  std::hash<EventId> h;
  for (std::uint32_t src = 0; src < 10; ++src) {
    for (std::uint64_t seq = 0; seq < 100; ++seq) {
      hashes.insert(h(EventId{NodeId{src}, seq}));
    }
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on a small dense set
}

TEST(EventData, MatchesItsPatterns) {
  auto e = make_event(0, 1,
                      {{Pattern{5}, SeqNo{1}}, {Pattern{9}, SeqNo{3}}});
  EXPECT_TRUE(e->matches(Pattern{5}));
  EXPECT_TRUE(e->matches(Pattern{9}));
  EXPECT_FALSE(e->matches(Pattern{7}));
}

TEST(EventData, SeqForReturnsPerPatternSequence) {
  auto e = make_event(3, 1,
                      {{Pattern{5}, SeqNo{10}}, {Pattern{9}, SeqNo{20}}});
  EXPECT_EQ(e->seq_for(Pattern{5}), SeqNo{10});
  EXPECT_EQ(e->seq_for(Pattern{9}), SeqNo{20});
  EXPECT_EQ(e->seq_for(Pattern{1}), std::nullopt);
}

TEST(EventData, PatternsAreSortedOnConstruction) {
  auto e = make_event(0, 1,
                      {{Pattern{9}, SeqNo{1}},
                       {Pattern{2}, SeqNo{2}},
                       {Pattern{5}, SeqNo{3}}});
  ASSERT_EQ(e->patterns().size(), 3u);
  EXPECT_EQ(e->patterns()[0].pattern, Pattern{2});
  EXPECT_EQ(e->patterns()[1].pattern, Pattern{5});
  EXPECT_EQ(e->patterns()[2].pattern, Pattern{9});
}

TEST(EventData, CarriesMetadata) {
  auto e = std::make_shared<EventData>(
      EventId{NodeId{4}, 9}, std::vector<PatternSeq>{{Pattern{1}, SeqNo{1}}},
      512, SimTime::seconds(1.5));
  EXPECT_EQ(e->source(), NodeId{4});
  EXPECT_EQ(e->id().source_seq, 9u);
  EXPECT_EQ(e->payload_bytes(), 512u);
  EXPECT_EQ(e->published_at(), SimTime::seconds(1.5));
}

TEST(EventDataDeath, RejectsEmptyAndDuplicatePatterns) {
  EXPECT_DEATH(make_event(0, 1, {}), "match >= 1 pattern");
  EXPECT_DEATH(
      make_event(0, 1, {{Pattern{5}, SeqNo{1}}, {Pattern{5}, SeqNo{2}}}),
      "distinct");
}

TEST(NodeId, InvalidSentinel) {
  EXPECT_FALSE(NodeId::invalid().valid());
  EXPECT_TRUE(NodeId{0}.valid());
  EXPECT_NE(NodeId::invalid(), NodeId{0});
}

TEST(SeqNo, NextIncrements) {
  EXPECT_EQ(SeqNo{4}.next(), SeqNo{5});
  EXPECT_LT(SeqNo{4}, SeqNo{5});
}

}  // namespace
}  // namespace epicast
