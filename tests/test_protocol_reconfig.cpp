// Tests for the distributed reconfiguration protocol (ref [7] spirit):
// message-level retraction and re-advertisement must converge to exactly
// the tables the global oracle predicts, across random churn histories.
#include <gtest/gtest.h>

#include "epicast/net/reconfigurator.hpp"
#include "epicast/pubsub/network.hpp"
#include "epicast/pubsub/pattern.hpp"
#include "epicast/scenario/runner.hpp"

namespace epicast {
namespace {

TransportConfig lossless() {
  TransportConfig c;
  c.link.loss_rate = 0.0;
  return c;
}

struct ProtocolRig {
  explicit ProtocolRig(std::uint64_t seed, std::uint32_t nodes = 30)
      : sim(seed),
        topo_rng(sim.fork_rng()),
        topo(Topology::random_tree(nodes, 4, topo_rng)),
        transport(sim, topo, lossless()),
        net(sim, transport, DispatcherConfig{}) {}

  void subscribe_random(std::uint32_t per_node, std::uint32_t universe) {
    PatternUniverse u(universe);
    Rng rng = sim.fork_rng();
    for (std::uint32_t i = 0; i < net.size(); ++i) {
      for (Pattern p : u.sample_distinct(per_node, rng)) {
        net.node(NodeId{i}).subscribe(p);
      }
    }
    settle();
  }
  void settle() { sim.run_until(sim.now() + Duration::seconds(1.0)); }

  Simulator sim;
  Rng topo_rng;
  Topology topo;
  Transport transport;
  PubSubNetwork net;
};

TEST(ProtocolReconfig, BreakRetractsStaleRoutes) {
  // Line 0-1-2-3; 3 subscribes. Breaking 2-3 must retract pattern routes
  // all the way back to 0.
  Simulator sim(1);
  Topology topo = Topology::line(4);
  Transport transport(sim, topo, lossless());
  PubSubNetwork net(sim, transport, DispatcherConfig{});
  net.enable_protocol_reconfiguration();

  net.node(NodeId{3}).subscribe(Pattern{1});
  sim.run_until(SimTime::seconds(0.5));
  ASSERT_TRUE(net.node(NodeId{0}).table().knows(Pattern{1}));

  topo.remove_link(NodeId{2}, NodeId{3});
  sim.run_until(SimTime::seconds(1.0));
  EXPECT_FALSE(net.node(NodeId{0}).table().knows(Pattern{1}));
  EXPECT_FALSE(net.node(NodeId{1}).table().knows(Pattern{1}));
  EXPECT_FALSE(net.node(NodeId{2}).table().knows(Pattern{1}));
  EXPECT_TRUE(net.node(NodeId{3}).table().has_local(Pattern{1}));
  EXPECT_TRUE(net.routes_consistent());
}

TEST(ProtocolReconfig, RejoinReadvertisesAcrossNewLink) {
  Simulator sim(2);
  Topology topo = Topology::line(4);
  Transport transport(sim, topo, lossless());
  PubSubNetwork net(sim, transport, DispatcherConfig{});
  net.enable_protocol_reconfiguration();

  net.node(NodeId{3}).subscribe(Pattern{1});
  net.node(NodeId{0}).subscribe(Pattern{2});
  sim.run_until(SimTime::seconds(0.5));

  // Detach node 3 and re-attach it to node 0 instead.
  topo.remove_link(NodeId{2}, NodeId{3});
  sim.run_until(sim.now() + Duration::seconds(0.5));
  topo.add_link(NodeId{0}, NodeId{3});
  sim.run_until(sim.now() + Duration::seconds(1.0));

  EXPECT_TRUE(net.routes_consistent());
  // Events flow along the new shape in both directions.
  int deliveries = 0;
  net.set_delivery_listener(
      [&](NodeId, const EventPtr&, bool) { ++deliveries; });
  net.node(NodeId{2}).publish({Pattern{1}});  // 2 → 1 → 0 → 3
  net.node(NodeId{3}).publish({Pattern{2}});  // 3 → 0
  sim.run_until(sim.now() + Duration::seconds(0.5));
  EXPECT_EQ(deliveries, 2);
}

TEST(ProtocolReconfig, SubscribeDuringPartitionPropagatesAfterRejoin) {
  // A subscription issued while the overlay is split can only flood its own
  // component; the new-link advertisement must carry it across once the
  // partition heals.
  Simulator sim(3);
  Topology topo = Topology::line(4);
  Transport transport(sim, topo, lossless());
  PubSubNetwork net(sim, transport, DispatcherConfig{});
  net.enable_protocol_reconfiguration();

  topo.remove_link(NodeId{1}, NodeId{2});
  sim.run_until(SimTime::seconds(0.2));

  net.node(NodeId{3}).subscribe(Pattern{5});  // floods only {2, 3}
  sim.run_until(SimTime::seconds(0.7));
  EXPECT_TRUE(net.node(NodeId{2}).table().knows(Pattern{5}));
  EXPECT_FALSE(net.node(NodeId{0}).table().knows(Pattern{5}));

  topo.add_link(NodeId{1}, NodeId{2});
  sim.run_until(SimTime::seconds(1.5));
  EXPECT_TRUE(net.routes_consistent());
  EXPECT_TRUE(net.node(NodeId{0}).table().has_route(Pattern{5}, NodeId{1}));

  int deliveries = 0;
  net.set_delivery_listener(
      [&](NodeId node, const EventPtr&, bool) {
        EXPECT_EQ(node, NodeId{3});
        ++deliveries;
      });
  net.node(NodeId{0}).publish({Pattern{5}});
  sim.run_until(sim.now() + Duration::seconds(0.5));
  EXPECT_EQ(deliveries, 1);
}

TEST(ProtocolReconfig, UnsubscribeDuringPartitionAlsoConverges) {
  Simulator sim(4);
  Topology topo = Topology::line(4);
  Transport transport(sim, topo, lossless());
  PubSubNetwork net(sim, transport, DispatcherConfig{});
  net.enable_protocol_reconfiguration();

  net.node(NodeId{3}).subscribe(Pattern{5});
  sim.run_until(SimTime::seconds(0.5));
  ASSERT_TRUE(net.node(NodeId{0}).table().knows(Pattern{5}));

  topo.remove_link(NodeId{1}, NodeId{2});
  sim.run_until(sim.now() + Duration::seconds(0.3));
  // The break already retracted the route on the far side.
  EXPECT_FALSE(net.node(NodeId{0}).table().knows(Pattern{5}));

  net.node(NodeId{3}).unsubscribe(Pattern{5});  // retracts within {2, 3}
  sim.run_until(sim.now() + Duration::seconds(0.3));
  topo.add_link(NodeId{1}, NodeId{2});
  sim.run_until(sim.now() + Duration::seconds(1.0));

  EXPECT_TRUE(net.routes_consistent());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(net.node(NodeId{i}).table().knows(Pattern{5})) << i;
  }
}

class ProtocolChurnProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ProtocolChurnProperty, ConvergesToOracleAfterEveryRepair) {
  ProtocolRig rig(GetParam());
  rig.net.enable_protocol_reconfiguration();
  rig.subscribe_random(3, 12);
  ASSERT_TRUE(rig.net.routes_consistent());

  ReconfigConfig rc;
  rc.repair_time = Duration::millis(100);
  Reconfigurator rec(rig.sim, rig.topo, rc);
  for (int round = 0; round < 8; ++round) {
    rec.force_reconfiguration();
    rig.settle();  // repair lands + control floods drain
    ASSERT_TRUE(rig.topo.is_tree());
    ASSERT_TRUE(rig.net.routes_consistent())
        << "seed " << GetParam() << " round " << round;
  }
}

TEST_P(ProtocolChurnProperty, SurvivesOverlappingChurnBursts) {
  ProtocolRig rig(GetParam() ^ 0xfeed);
  rig.net.enable_protocol_reconfiguration();
  rig.subscribe_random(2, 8);

  ReconfigConfig rc;
  rc.interval = Duration::millis(40);  // overlapping with 100 ms repair
  rc.repair_time = Duration::millis(100);
  rc.stop_at = rig.sim.now() + Duration::seconds(1.5);
  Reconfigurator rec(rig.sim, rig.topo, rc);
  rec.start();
  rig.sim.run_until(rig.sim.now() + Duration::seconds(4.0));

  ASSERT_TRUE(rig.topo.is_tree());
  EXPECT_TRUE(rig.net.routes_consistent()) << "seed " << (GetParam() ^ 0xfeed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolChurnProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ProtocolReconfig, ScenarioRunsEndToEnd) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(Algorithm::CombinedPull);
  cfg.nodes = 30;
  cfg.seed = 5;
  cfg.link_error_rate = 0.0;
  cfg.reconfiguration_interval = Duration::millis(200);
  cfg.route_repair = ScenarioConfig::RouteRepair::Protocol;
  cfg.warmup = Duration::seconds(1.0);
  cfg.measure = Duration::seconds(2.0);
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_GT(r.reconfig_breaks, 5u);
  EXPECT_GT(r.delivery_rate, 0.85);  // recovery masks the longer repairs
  EXPECT_GT(r.traffic.sends_of(MessageClass::Control), 0u);
}

TEST(ProtocolReconfig, ProtocolRepairIsSlowerThanOracle) {
  // The distributed repair needs control-message round trips, so its
  // delivery under churn cannot beat the instantaneous oracle repair.
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(Algorithm::NoRecovery);
  cfg.nodes = 30;
  cfg.seed = 9;
  cfg.link_error_rate = 0.0;
  cfg.reconfiguration_interval = Duration::millis(150);
  cfg.warmup = Duration::seconds(1.0);
  cfg.measure = Duration::seconds(2.0);
  const ScenarioResult oracle = run_scenario(cfg);
  cfg.route_repair = ScenarioConfig::RouteRepair::Protocol;
  const ScenarioResult protocol = run_scenario(cfg);
  EXPECT_LE(protocol.delivery_rate, oracle.delivery_rate + 0.01);
}

}  // namespace
}  // namespace epicast
