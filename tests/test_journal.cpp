// The crash journal: append-only one-line records, replay on reopen, torn
// tails skipped, and the warm-restart cache snapshot round-trip through the
// wire codec.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "epicast/daemon/journal.hpp"
#include "epicast/fault/restart_policy.hpp"
#include "epicast/pubsub/event.hpp"

namespace epicast::daemon {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "epicast_" + name + "_" +
         std::to_string(::getpid());
}

TEST(Journal, FreshFileReplaysEmpty) {
  const std::string path = temp_path("journal_fresh");
  std::remove(path.c_str());
  Journal j(path);
  EXPECT_EQ(j.replay().boots, 0u);
  EXPECT_TRUE(j.replay().publishes.empty());
  EXPECT_TRUE(j.replay().deliveries.empty());
  std::remove(path.c_str());
}

TEST(Journal, RecordsSurviveReopen) {
  const std::string path = temp_path("journal_reopen");
  std::remove(path.c_str());
  {
    Journal j(path);
    j.log_boot(1, fault::RestartPolicy::Warm);
    j.log_publish({7, 1.25, {2, 5}});
    j.log_delivery({3, 9, 1.5, true});
    j.log_delivery({4, 1, 1.75, false});
  }
  Journal j(path);
  EXPECT_EQ(j.replay().boots, 1u);
  ASSERT_EQ(j.replay().publishes.size(), 1u);
  EXPECT_EQ(j.replay().publishes[0].seq, 7u);
  EXPECT_DOUBLE_EQ(j.replay().publishes[0].t_s, 1.25);
  EXPECT_EQ(j.replay().publishes[0].patterns,
            (std::vector<std::uint32_t>{2, 5}));
  ASSERT_EQ(j.replay().deliveries.size(), 2u);
  EXPECT_EQ(j.replay().deliveries[0].source, 3u);
  EXPECT_EQ(j.replay().deliveries[0].seq, 9u);
  EXPECT_TRUE(j.replay().deliveries[0].recovered);
  EXPECT_FALSE(j.replay().deliveries[1].recovered);
  std::remove(path.c_str());
}

TEST(Journal, BootCountAccumulatesAcrossIncarnations) {
  const std::string path = temp_path("journal_boots");
  std::remove(path.c_str());
  for (std::uint64_t boot = 0; boot < 3; ++boot) {
    Journal j(path);
    EXPECT_EQ(j.replay().boots, boot);
    j.log_boot(boot + 1, fault::RestartPolicy::Cold);
  }
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsSkippedNotFatal) {
  const std::string path = temp_path("journal_torn");
  std::remove(path.c_str());
  {
    Journal j(path);
    j.log_boot(1, fault::RestartPolicy::Warm);
    j.log_publish({1, 0.5, {0}});
  }
  // A SIGKILL mid-write leaves a truncated last line; replay must keep
  // every complete record and drop only the tail.
  {
    std::ofstream f(path, std::ios::app);
    f << "D 2 11 3.0";  // missing the recovered flag and the newline
  }
  Journal j(path);
  EXPECT_EQ(j.replay().boots, 1u);
  EXPECT_EQ(j.replay().publishes.size(), 1u);
  EXPECT_TRUE(j.replay().deliveries.empty());
  std::remove(path.c_str());
}

TEST(CacheSnapshot, RoundTripsEventsThroughTheCodec) {
  const std::string path = temp_path("journal_cache");
  std::remove(path.c_str());
  std::vector<EventPtr> events;
  for (std::uint64_t i = 0; i < 4; ++i) {
    events.push_back(std::make_shared<EventData>(
        EventId{NodeId{2}, i},
        std::vector<PatternSeq>{{Pattern{static_cast<std::uint32_t>(i % 3)},
                                 SeqNo{i + 1}}},
        64, SimTime::zero()));
  }
  write_cache_snapshot(path, events);
  const std::vector<EventPtr> back = read_cache_snapshot(path);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i]->id(), events[i]->id());
  }
  std::remove(path.c_str());
}

TEST(CacheSnapshot, MissingFileYieldsNothing) {
  EXPECT_TRUE(read_cache_snapshot(temp_path("journal_nope")).empty());
}

TEST(CacheSnapshot, CorruptTailYieldsThePrefix) {
  const std::string path = temp_path("journal_corrupt");
  std::remove(path.c_str());
  std::vector<EventPtr> events = {std::make_shared<EventData>(
      EventId{NodeId{1}, 5},
      std::vector<PatternSeq>{{Pattern{0}, SeqNo{1}}}, 64, SimTime::zero())};
  write_cache_snapshot(path, events);
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "\xff\xff\xff";  // truncated frame header
  }
  const std::vector<EventPtr> back = read_cache_snapshot(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0]->id(), events[0]->id());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace epicast::daemon
