// Behavioural tests for the Push protocol (§III-B): caching policy, digest
// propagation along subscription routes, request/reply recovery, and the
// cases where push must stay silent.
#include "epicast/gossip/push.hpp"

#include <gtest/gtest.h>

#include "gossip_harness.hpp"

namespace epicast {
namespace {

using testing::GossipHarness;

TEST(Push, RecoversEventDroppedOnOneLink) {
  // 0 — 1 — 2; 0 and 2 subscribe to p. An event published at 0 is dropped
  // on the 1→2 hop; push gossip must restore it at 2.
  GossipHarness h(3, Algorithm::Push);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  // Publish a first event so we can learn its id; then drop the second.
  const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
  h.drop_event_on_link(NodeId{1}, NodeId{2}, e->id());
  // Re-publish is impossible (ids are unique); instead drop BEFORE delivery:
  // the fault filter applies to the 1→2 forward which has not happened yet
  // (the message is still serializing on 0→1).
  h.run_for(2.0);

  EXPECT_TRUE(h.delivered(2, e->id()));
  EXPECT_TRUE(h.recovered(2, e->id()));
  EXPECT_GT(h.protocol(2)->stats().requests_sent, 0u);
  EXPECT_GT(h.protocol(0)->stats().events_served, 0u);
}

TEST(Push, PublisherCachesOwnEvents) {
  GossipHarness h(3, Algorithm::Push);
  h.subscribe_and_settle({{2, 1}});
  const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
  h.run_for(0.2);
  EXPECT_TRUE(h.protocol(0)->cache().contains(e->id()));   // publisher
  EXPECT_TRUE(h.protocol(2)->cache().contains(e->id()));   // subscriber
  EXPECT_FALSE(h.protocol(1)->cache().contains(e->id()));  // mere router
}

TEST(Push, NonSubscriberDoesNotRequest) {
  // Node 1 routes pattern 1 but is not subscribed: even though it forwards
  // digests, it must never request events for itself.
  GossipHarness h(3, Algorithm::Push);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();
  const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
  h.drop_event_on_link(NodeId{0}, NodeId{1}, e->id());
  h.run_for(2.0);
  EXPECT_EQ(h.protocol(1)->stats().requests_sent, 0u);
  // 2 never got the event either (it died on the first hop), but push
  // still recovers it at 2 straight from the publisher's digests.
  EXPECT_TRUE(h.delivered(2, e->id()));
}

TEST(Push, SkipsRoundsWithEmptyCache) {
  GossipHarness h(3, Algorithm::Push);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();
  h.run_for(1.0);  // nothing was ever published
  EXPECT_GT(h.protocol(0)->stats().rounds, 20u);
  EXPECT_EQ(h.protocol(0)->stats().digests_originated, 0u);
  EXPECT_EQ(h.stats().snapshot().gossip_sends(), 0u);
}

TEST(Push, DigestsFollowSubscriptionRoutesOnly) {
  // 5-node line, subscribers at 0 and 1 only: digests about p must never
  // travel beyond node 1 towards 4 (no routes point there).
  GossipHarness h(5, Algorithm::Push);
  h.subscribe_and_settle({{0, 1}, {1, 1}});
  h.start_recovery();
  h.net().node(NodeId{0}).publish({Pattern{1}});
  h.run_for(1.0);
  EXPECT_EQ(h.stats().gossip_sends_by(NodeId{3}), 0u);
  EXPECT_EQ(h.stats().gossip_sends_by(NodeId{4}), 0u);
}

TEST(Push, RecoversAcrossLongerPaths) {
  // 6-node line with subscribers at the two ends.
  GossipHarness h(6, Algorithm::Push);
  h.subscribe_and_settle({{0, 1}, {5, 1}});
  h.start_recovery();
  const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
  h.drop_event_on_link(NodeId{4}, NodeId{5}, e->id());
  h.run_for(3.0);
  EXPECT_TRUE(h.recovered(5, e->id()));
}

TEST(Push, ManyDroppedEventsAllRecovered) {
  GossipHarness h(3, Algorithm::Push);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
    if (i % 2 == 0) h.drop_event_on_link(NodeId{1}, NodeId{2}, e->id());
    ids.push_back(e->id());
    h.run_for(0.05);
  }
  h.run_for(3.0);
  for (const EventId& id : ids) {
    EXPECT_TRUE(h.delivered(2, id));
  }
}

TEST(Push, MaxHopsBoundsDigestTravel) {
  // With a 1-hop TTL, digests from the publisher cannot cross the 5-link
  // line to the far subscriber; with a generous TTL they can.
  for (const std::uint32_t max_hops : {1u, 16u}) {
    GossipConfig g = GossipHarness::default_gossip();
    g.max_hops = max_hops;
    g.forward_probability = 1.0;  // determinism: only the TTL varies
    GossipHarness h(6, Algorithm::Push, g);
    h.subscribe_and_settle({{0, 1}, {5, 1}});
    h.start_recovery();
    const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
    h.drop_event_on_link(NodeId{4}, NodeId{5}, e->id());
    h.run_for(2.0);
    if (max_hops == 1u) {
      EXPECT_FALSE(h.recovered(5, e->id())) << "ttl=" << max_hops;
    } else {
      EXPECT_TRUE(h.recovered(5, e->id())) << "ttl=" << max_hops;
    }
  }
}

TEST(Push, DigestCapAdvertisesNewestEvents) {
  GossipConfig g = GossipHarness::default_gossip();
  g.max_digest_entries = 2;
  g.forward_probability = 1.0;
  GossipHarness h(2, Algorithm::Push, g);
  h.subscribe_and_settle({{0, 1}, {1, 1}});

  // Fill the publisher's cache with 5 events, all dropped towards node 1.
  h.drop_all_events_on_link(NodeId{0}, NodeId{1});
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) {
    const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
    ids.push_back(e->id());
    h.run_for(0.01);
  }
  h.start_recovery();
  h.run_for(1.5);
  // Only the two newest ids fit a digest; older ones are never advertised.
  EXPECT_FALSE(h.delivered(1, ids[0]));
  EXPECT_FALSE(h.delivered(1, ids[1]));
  EXPECT_FALSE(h.delivered(1, ids[2]));
  EXPECT_TRUE(h.delivered(1, ids[3]));
  EXPECT_TRUE(h.delivered(1, ids[4]));
}

TEST(Push, StopHaltsGossip) {
  GossipHarness h(3, Algorithm::Push);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();
  h.net().node(NodeId{0}).publish({Pattern{1}});
  h.run_for(0.5);
  const auto rounds = h.protocol(0)->stats().rounds;
  EXPECT_GT(rounds, 0u);
  h.net().for_each([](Dispatcher& d) { d.recovery()->stop(); });
  h.run_for(1.0);
  EXPECT_EQ(h.protocol(0)->stats().rounds, rounds);
}

TEST(Push, AdaptiveIntervalBacksOffWhenIdle) {
  GossipConfig g = GossipHarness::default_gossip();
  g.adaptive.enabled = true;
  g.adaptive.min_interval = Duration::millis(10);
  g.adaptive.max_interval = Duration::millis(200);
  GossipHarness h(3, Algorithm::Push, g);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();
  h.net().node(NodeId{0}).publish({Pattern{1}});
  h.run_for(3.0);
  // Nothing was lost, so no requests arrive and the interval backs off to
  // its maximum: far fewer rounds than 3 s / 10 ms = 300.
  EXPECT_LT(h.protocol(0)->stats().rounds, 120u);
  EXPECT_EQ(h.protocol(0)->current_interval(), Duration::millis(200));
}

TEST(NoRecoveryProtocol, DoesNothing) {
  GossipHarness h(3, Algorithm::NoRecovery);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  // NoRecovery has no start(); publishing with a drop stays lost.
  const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
  h.drop_event_on_link(NodeId{1}, NodeId{2}, e->id());
  h.run_for(2.0);
  EXPECT_FALSE(h.delivered(2, e->id()));
  EXPECT_EQ(h.stats().snapshot().gossip_sends(), 0u);
}

}  // namespace
}  // namespace epicast
