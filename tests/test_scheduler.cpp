// Unit tests for the discrete-event scheduler and the simulation context:
// ordering, FIFO tie-breaking, cancellation semantics, run_until, periodic
// timers, and determinism.
#include "epicast/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "epicast/sim/simulator.hpp"

namespace epicast {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::seconds(3.0), [&] { order.push_back(3); });
  s.schedule_at(SimTime::seconds(1.0), [&] { order.push_back(1); });
  s.schedule_at(SimTime::seconds(2.0), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::seconds(3.0));
}

TEST(Scheduler, EqualTimesAreFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, NowAdvancesDuringExecution) {
  Scheduler s;
  s.schedule_at(SimTime::seconds(2.5), [&] {
    EXPECT_EQ(s.now(), SimTime::seconds(2.5));
  });
  EXPECT_EQ(s.now(), SimTime::zero());
  s.run();
  EXPECT_EQ(s.now(), SimTime::seconds(2.5));
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  std::vector<double> at;
  s.schedule_after(Duration::seconds(1.0), [&] {
    at.push_back(s.now().to_seconds());
    s.schedule_after(Duration::seconds(0.5),
                     [&] { at.push_back(s.now().to_seconds()); });
  });
  s.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], 1.0);
  EXPECT_DOUBLE_EQ(at[1], 1.5);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  EventHandle h = s.schedule_at(SimTime::seconds(1.0), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());  // idempotent
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler s;
  EventHandle h = s.schedule_at(SimTime::seconds(1.0), [] {});
  s.run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(Scheduler, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::seconds(1.0), [&] { order.push_back(1); });
  s.schedule_at(SimTime::seconds(2.0), [&] { order.push_back(2); });
  s.schedule_at(SimTime::seconds(3.0), [&] { order.push_back(3); });
  s.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // deadline inclusive
  EXPECT_EQ(s.now(), SimTime::seconds(2.0));
  s.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::seconds(10.0));  // advances even when idle
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(SimTime::seconds(1.0), [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ExecutedCountsOnlyLiveEvents) {
  Scheduler s;
  s.schedule_at(SimTime::seconds(1.0), [] {});
  EventHandle h = s.schedule_at(SimTime::seconds(2.0), [] {});
  h.cancel();
  s.run();
  EXPECT_EQ(s.executed(), 1u);
}

TEST(Scheduler, EventsScheduledFromCallbacksRun) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(Duration::millis(1), recurse);
  };
  s.schedule_at(SimTime::zero() + Duration::millis(1), recurse);
  s.run();
  EXPECT_EQ(depth, 5);
}

TEST(Scheduler, CancelAfterFireStaysInertWhenSlotIsReused) {
  // The fired event's slab slot is recycled by later schedules; the old
  // handle's generation is stale, so it must neither report pending nor
  // cancel the new occupant.
  Scheduler s;
  EventHandle old_handle = s.schedule_at(SimTime::seconds(1.0), [] {});
  s.run();
  EXPECT_FALSE(old_handle.pending());

  bool ran = false;
  EventHandle fresh = s.schedule_at(SimTime::seconds(2.0), [&] { ran = true; });
  EXPECT_FALSE(old_handle.cancel());
  EXPECT_FALSE(old_handle.pending());
  EXPECT_TRUE(fresh.pending());
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, CancelledSlotReuseKeepsHandlesIndependent) {
  // Cancel frees the slot immediately; a chain of schedule/cancel pairs
  // exercises generation bumps on the same few slots.
  Scheduler s;
  std::vector<EventHandle> stale;
  for (int round = 0; round < 100; ++round) {
    EventHandle h = s.schedule_at(SimTime::seconds(1.0), [] { FAIL(); });
    EXPECT_TRUE(h.cancel());
    stale.push_back(h);
  }
  for (EventHandle& h : stale) {
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());  // double-cancel across generations
  }
  bool ran = false;
  s.schedule_at(SimTime::seconds(1.0), [&] { ran = true; });
  for (EventHandle& h : stale) EXPECT_FALSE(h.cancel());
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.executed(), 1u);
}

TEST(Scheduler, CopiedHandlesShareCancellationState) {
  Scheduler s;
  bool ran = false;
  EventHandle a = s.schedule_at(SimTime::seconds(1.0), [&] { ran = true; });
  EventHandle b = a;
  EXPECT_TRUE(b.cancel());
  EXPECT_FALSE(a.cancel());
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, FifoSurvivesHeavyCancelChurnAtEqualTimestamps) {
  // Interleave schedules and cancellations at one timestamp: survivors must
  // still fire in scheduling order, exactly once.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 300; ++i) {
    handles.push_back(s.schedule_at(SimTime::seconds(1.0),
                                    [&order, i] { order.push_back(i); }));
    if (i % 3 == 1) handles[i - 1].cancel();  // cancel the previous one
  }
  s.run();
  std::vector<int> expected;
  for (int i = 0; i < 300; ++i) {
    if (i % 3 != 0) expected.push_back(i);  // multiples of 3 were cancelled
  }
  EXPECT_EQ(order, expected);
  EXPECT_EQ(s.executed(), expected.size());
}

TEST(Scheduler, PendingIsFalseInsideOwnCallback) {
  Scheduler s;
  EventHandle h;
  bool checked = false;
  h = s.schedule_at(SimTime::seconds(1.0), [&] {
    checked = true;
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
  });
  s.run();
  EXPECT_TRUE(checked);
}

TEST(Scheduler, CallbackLargerThanInlineBufferStillRuns) {
  // Closures above SmallCallback::kInlineBytes take the heap fallback; the
  // semantics must be unchanged.
  Scheduler s;
  std::array<std::uint64_t, 16> big{};  // 128 bytes captured by value
  big[15] = 42;
  std::uint64_t sum = 0;
  s.schedule_at(SimTime::seconds(1.0), [big, &sum] { sum = big[15]; });
  s.run();
  EXPECT_EQ(sum, 42u);
}

TEST(Simulator, PeriodicTimerTicksAtInterval) {
  Simulator sim(1);
  std::vector<double> ticks;
  PeriodicTimer t = sim.every(Duration::millis(10), Duration::millis(30),
                              [&] { ticks.push_back(sim.now().to_seconds()); });
  sim.run_until(SimTime::seconds(0.1));
  ASSERT_EQ(ticks.size(), 4u);  // 10, 40, 70, 100 ms
  EXPECT_DOUBLE_EQ(ticks[0], 0.010);
  EXPECT_DOUBLE_EQ(ticks[1], 0.040);
  EXPECT_DOUBLE_EQ(ticks[3], 0.100);
}

TEST(Simulator, PeriodicTimerStops) {
  Simulator sim(1);
  int ticks = 0;
  PeriodicTimer t =
      sim.every(Duration::millis(10), Duration::millis(10), [&] { ++ticks; });
  sim.run_until(SimTime::seconds(0.035));
  t.stop();
  EXPECT_FALSE(t.running());
  sim.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(ticks, 3);
}

TEST(Simulator, PeriodicTimerStopsOnDestruction) {
  Simulator sim(1);
  int ticks = 0;
  {
    PeriodicTimer t = sim.every(Duration::millis(10), Duration::millis(10),
                                [&] { ++ticks; });
  }
  sim.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(ticks, 0);
}

TEST(Simulator, PeriodicTimerSetIntervalTakesEffect) {
  Simulator sim(1);
  std::vector<double> ticks;
  PeriodicTimer t = sim.every(Duration::millis(10), Duration::millis(10),
                              [&] { ticks.push_back(sim.now().to_seconds()); });
  sim.run_until(SimTime::seconds(0.01));
  t.set_interval(Duration::millis(50));
  sim.run_until(SimTime::seconds(0.2));
  ASSERT_GE(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[0], 0.010);
  EXPECT_DOUBLE_EQ(ticks[1], 0.060);
  EXPECT_DOUBLE_EQ(ticks[2], 0.110);
}

TEST(Simulator, ForkRngIsDeterministic) {
  Simulator a(99), b(99);
  Rng ra = a.fork_rng();
  Rng rb = b.fork_rng();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ra.next(), rb.next());
}

TEST(Simulator, MovedTimerKeepsTicking) {
  Simulator sim(1);
  int ticks = 0;
  PeriodicTimer outer;
  {
    PeriodicTimer inner = sim.every(Duration::millis(10), Duration::millis(10),
                                    [&] { ++ticks; });
    outer = std::move(inner);
  }
  sim.run_until(SimTime::seconds(0.05));
  EXPECT_EQ(ticks, 5);
}

}  // namespace
}  // namespace epicast
