// Unit tests for the Routes buffer used by publisher-based pull.
#include "epicast/gossip/routes_buffer.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

TEST(RoutesBuffer, StoresReversedRoute) {
  RoutesBuffer routes;
  routes.update(NodeId{0}, {NodeId{0}, NodeId{3}, NodeId{7}});
  EXPECT_TRUE(routes.knows(NodeId{0}));
  EXPECT_EQ(routes.route_to(NodeId{0}),
            (std::vector<NodeId>{NodeId{7}, NodeId{3}, NodeId{0}}));
}

TEST(RoutesBuffer, DirectNeighborRoute) {
  RoutesBuffer routes;
  routes.update(NodeId{4}, {NodeId{4}});
  EXPECT_EQ(routes.route_to(NodeId{4}), (std::vector<NodeId>{NodeId{4}}));
}

TEST(RoutesBuffer, MostRecentRouteWins) {
  RoutesBuffer routes;
  routes.update(NodeId{0}, {NodeId{0}, NodeId{1}});
  routes.update(NodeId{0}, {NodeId{0}, NodeId{2}, NodeId{5}});
  EXPECT_EQ(routes.route_to(NodeId{0}),
            (std::vector<NodeId>{NodeId{5}, NodeId{2}, NodeId{0}}));
  EXPECT_EQ(routes.size(), 1u);
}

TEST(RoutesBuffer, UnknownSourceYieldsEmpty) {
  RoutesBuffer routes;
  EXPECT_FALSE(routes.knows(NodeId{9}));
  EXPECT_TRUE(routes.route_to(NodeId{9}).empty());
}

TEST(RoutesBuffer, EmptyRouteIsIgnored) {
  RoutesBuffer routes;
  routes.update(NodeId{1}, {});
  EXPECT_FALSE(routes.knows(NodeId{1}));
}

TEST(RoutesBuffer, KnownSourcesSorted) {
  RoutesBuffer routes;
  routes.update(NodeId{5}, {NodeId{5}});
  routes.update(NodeId{1}, {NodeId{1}});
  routes.update(NodeId{3}, {NodeId{3}});
  EXPECT_EQ(routes.known_sources(),
            (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{5}}));
}

TEST(RoutesBufferDeath, RouteMustStartAtSource) {
  RoutesBuffer routes;
  EXPECT_DEATH(routes.update(NodeId{1}, {NodeId{2}, NodeId{1}}),
               "start at the publisher");
}

}  // namespace
}  // namespace epicast
