// Tests for topological reconfiguration: break/repair cycles keep the
// overlay a degree-capped tree, overlapping churn behaves, and listeners
// fire in order.
#include "epicast/net/reconfigurator.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

TEST(Reconfigurator, ForcedBreakSplitsThenRepairReconnects) {
  Simulator sim(1);
  Rng rng = sim.fork_rng();
  Topology topo = Topology::random_tree(20, 4, rng);

  ReconfigConfig cfg;
  cfg.repair_time = Duration::millis(100);
  Reconfigurator rec(sim, topo, cfg);

  bool broke = false;
  bool repaired = false;
  rec.set_break_listener([&](const Link&) {
    broke = true;
    EXPECT_FALSE(topo.connected());
    EXPECT_EQ(topo.link_count(), 18u);
  });
  rec.set_repair_listener([&](const Reconfigurator::Repair& r) {
    repaired = true;
    EXPECT_TRUE(r.added.has_value());
    EXPECT_TRUE(topo.is_tree());
  });

  rec.force_reconfiguration();
  EXPECT_TRUE(broke);
  EXPECT_EQ(rec.pending_repairs(), 1u);
  sim.run_until(SimTime::seconds(0.2));
  EXPECT_TRUE(repaired);
  EXPECT_EQ(rec.pending_repairs(), 0u);
  EXPECT_EQ(rec.breaks(), 1u);
  EXPECT_EQ(rec.repairs(), 1u);
}

TEST(Reconfigurator, RepairWaitsRepairTime) {
  Simulator sim(2);
  Rng rng = sim.fork_rng();
  Topology topo = Topology::random_tree(10, 4, rng);
  ReconfigConfig cfg;
  cfg.repair_time = Duration::millis(100);
  Reconfigurator rec(sim, topo, cfg);
  rec.force_reconfiguration();
  sim.run_until(SimTime::seconds(0.099));
  EXPECT_FALSE(topo.connected());
  sim.run_until(SimTime::seconds(0.101));
  EXPECT_TRUE(topo.is_tree());
}

class ChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChurnSweep, PeriodicChurnPreservesTreeAtQuietPoints) {
  // ρ = 200 ms (non-overlapping) and ρ = 30 ms (overlapping, the paper's
  // extreme case) over several seeds: after churn stops and repairs drain,
  // the overlay must be a degree-capped tree again.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  for (const Duration rho : {Duration::millis(200), Duration::millis(30)}) {
    Simulator sim(seed);
    Rng rng = sim.fork_rng();
    Topology topo = Topology::random_tree(50, 4, rng);

    ReconfigConfig cfg;
    cfg.interval = rho;
    cfg.repair_time = Duration::millis(100);
    cfg.stop_at = SimTime::seconds(3.0);
    Reconfigurator rec(sim, topo, cfg);
    rec.start();

    sim.run_until(SimTime::seconds(5.0));
    EXPECT_EQ(rec.pending_repairs(), 0u);
    EXPECT_TRUE(topo.is_tree());
    for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
      ASSERT_LE(topo.degree(NodeId{i}), 4u);
    }
    EXPECT_GE(rec.breaks(), 10u);
    EXPECT_EQ(rec.breaks(), rec.repairs());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep, ::testing::Range(1, 8));

TEST(Reconfigurator, OverlappingRepairsMaySkip) {
  // With very aggressive churn some repairs find the components already
  // reconnected; those must be counted and must not add extra links.
  Simulator sim(11);
  Rng rng = sim.fork_rng();
  Topology topo = Topology::random_tree(30, 4, rng);
  ReconfigConfig cfg;
  cfg.interval = Duration::millis(10);
  cfg.repair_time = Duration::millis(100);
  cfg.stop_at = SimTime::seconds(2.0);
  Reconfigurator rec(sim, topo, cfg);
  rec.start();
  sim.run_until(SimTime::seconds(3.0));
  EXPECT_TRUE(topo.is_tree());
  EXPECT_EQ(topo.link_count(), 29u);
}

TEST(Reconfigurator, StopHaltsChurn) {
  Simulator sim(3);
  Rng rng = sim.fork_rng();
  Topology topo = Topology::random_tree(10, 4, rng);
  ReconfigConfig cfg;
  cfg.interval = Duration::millis(50);
  cfg.repair_time = Duration::millis(10);
  Reconfigurator rec(sim, topo, cfg);
  rec.start();
  sim.run_until(SimTime::seconds(0.25));
  const auto breaks = rec.breaks();
  EXPECT_GT(breaks, 0u);
  rec.stop();
  sim.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(rec.breaks(), breaks);
  EXPECT_TRUE(topo.is_tree());
}

}  // namespace
}  // namespace epicast
