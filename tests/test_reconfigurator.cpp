// Tests for topological reconfiguration: break/repair cycles keep the
// overlay a degree-capped tree, overlapping churn behaves, and listeners
// fire in order.
#include "epicast/net/reconfigurator.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

TEST(Reconfigurator, ForcedBreakSplitsThenRepairReconnects) {
  Simulator sim(1);
  Rng rng = sim.fork_rng();
  Topology topo = Topology::random_tree(20, 4, rng);

  ReconfigConfig cfg;
  cfg.repair_time = Duration::millis(100);
  Reconfigurator rec(sim, topo, cfg);

  bool broke = false;
  bool repaired = false;
  rec.set_break_listener([&](const Link&) {
    broke = true;
    EXPECT_FALSE(topo.connected());
    EXPECT_EQ(topo.link_count(), 18u);
  });
  rec.set_repair_listener([&](const Reconfigurator::Repair& r) {
    repaired = true;
    EXPECT_TRUE(r.added.has_value());
    EXPECT_TRUE(topo.is_tree());
  });

  rec.force_reconfiguration();
  EXPECT_TRUE(broke);
  EXPECT_EQ(rec.pending_repairs(), 1u);
  sim.run_until(SimTime::seconds(0.2));
  EXPECT_TRUE(repaired);
  EXPECT_EQ(rec.pending_repairs(), 0u);
  EXPECT_EQ(rec.breaks(), 1u);
  EXPECT_EQ(rec.repairs(), 1u);
}

TEST(Reconfigurator, RepairWaitsRepairTime) {
  Simulator sim(2);
  Rng rng = sim.fork_rng();
  Topology topo = Topology::random_tree(10, 4, rng);
  ReconfigConfig cfg;
  cfg.repair_time = Duration::millis(100);
  Reconfigurator rec(sim, topo, cfg);
  rec.force_reconfiguration();
  sim.run_until(SimTime::seconds(0.099));
  EXPECT_FALSE(topo.connected());
  sim.run_until(SimTime::seconds(0.101));
  EXPECT_TRUE(topo.is_tree());
}

class ChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChurnSweep, PeriodicChurnPreservesTreeAtQuietPoints) {
  // ρ = 200 ms (non-overlapping) and ρ = 30 ms (overlapping, the paper's
  // extreme case) over several seeds: after churn stops and repairs drain,
  // the overlay must be a degree-capped tree again.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  for (const Duration rho : {Duration::millis(200), Duration::millis(30)}) {
    Simulator sim(seed);
    Rng rng = sim.fork_rng();
    Topology topo = Topology::random_tree(50, 4, rng);

    ReconfigConfig cfg;
    cfg.interval = rho;
    cfg.repair_time = Duration::millis(100);
    cfg.stop_at = SimTime::seconds(3.0);
    Reconfigurator rec(sim, topo, cfg);
    rec.start();

    sim.run_until(SimTime::seconds(5.0));
    EXPECT_EQ(rec.pending_repairs(), 0u);
    EXPECT_TRUE(topo.is_tree());
    for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
      ASSERT_LE(topo.degree(NodeId{i}), 4u);
    }
    EXPECT_GE(rec.breaks(), 10u);
    EXPECT_EQ(rec.breaks(), rec.repairs());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep, ::testing::Range(1, 8));

TEST(Reconfigurator, OverlappingRepairsMaySkip) {
  // With very aggressive churn some repairs find the components already
  // reconnected; those must be counted and must not add extra links.
  Simulator sim(11);
  Rng rng = sim.fork_rng();
  Topology topo = Topology::random_tree(30, 4, rng);
  ReconfigConfig cfg;
  cfg.interval = Duration::millis(10);
  cfg.repair_time = Duration::millis(100);
  cfg.stop_at = SimTime::seconds(2.0);
  Reconfigurator rec(sim, topo, cfg);
  rec.start();
  sim.run_until(SimTime::seconds(3.0));
  EXPECT_TRUE(topo.is_tree());
  EXPECT_EQ(topo.link_count(), 29u);
}

TEST(Reconfigurator, ExhaustedComponentsLeaveRepairPending) {
  // Degree cap 1, single link 0-1 over four nodes. Break the only link,
  // then saturate both components out-of-band before the repair fires:
  // every node is at the cap, so the repair must give up gracefully —
  // counted as exhausted, no link added, no assertion failure.
  Simulator sim(5);
  Topology topo(4, 1);
  topo.add_link(NodeId{0}, NodeId{1});

  ReconfigConfig cfg;
  cfg.repair_time = Duration::millis(100);
  Reconfigurator rec(sim, topo, cfg);

  std::optional<Reconfigurator::Repair> seen;
  rec.set_repair_listener(
      [&](const Reconfigurator::Repair& r) { seen = r; });

  rec.force_reconfiguration();  // only link 0-1 can be the victim
  EXPECT_FALSE(topo.connected());
  topo.add_link(NodeId{0}, NodeId{2});
  topo.add_link(NodeId{1}, NodeId{3});

  sim.run_until(SimTime::seconds(0.2));
  EXPECT_EQ(rec.repairs(), 1u);
  EXPECT_EQ(rec.exhausted_repairs(), 1u);
  EXPECT_EQ(rec.skipped_repairs(), 0u);
  EXPECT_EQ(rec.pending_repairs(), 0u);
  ASSERT_TRUE(seen.has_value());
  EXPECT_FALSE(seen->added.has_value());
  // The partition persists: {0,2} and {1,3} stay separate components.
  EXPECT_FALSE(topo.distance(NodeId{0}, NodeId{1}).has_value());
}

TEST(Reconfigurator, BackToBackBreaksInsideOneRepairWindow) {
  // Two breakages 30 ms apart, both inside the first break's 100 ms repair
  // window: repairs run in break order, every pending repair completes,
  // and the overlay is a degree-capped tree again afterwards.
  Simulator sim(7);
  Rng rng = sim.fork_rng();
  Topology topo = Topology::random_tree(20, 4, rng);

  ReconfigConfig cfg;
  cfg.repair_time = Duration::millis(100);
  Reconfigurator rec(sim, topo, cfg);

  rec.force_reconfiguration();
  EXPECT_EQ(rec.pending_repairs(), 1u);
  sim.run_until(SimTime::seconds(0.03));
  rec.force_reconfiguration();
  EXPECT_EQ(rec.pending_repairs(), 2u);
  EXPECT_EQ(topo.link_count(), 17u);

  // After the first repair only the second is still open.
  sim.run_until(SimTime::seconds(0.11));
  EXPECT_EQ(rec.pending_repairs(), 1u);

  sim.run_until(SimTime::seconds(0.3));
  EXPECT_EQ(rec.pending_repairs(), 0u);
  EXPECT_EQ(rec.breaks(), 2u);
  EXPECT_EQ(rec.repairs(), 2u);
  // Whether the second repair added a link or found the sides already
  // reconnected, the quiet-point state is a full tree within the cap.
  EXPECT_TRUE(topo.is_tree());
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    ASSERT_LE(topo.degree(NodeId{i}), 4u);
  }
}

TEST(Reconfigurator, RepairDefersWhileEndpointCrashed) {
  // Two nodes, one link. Break it while node 1 is crashed (excluded by the
  // node filter): the repair window expires but installing the link would
  // wire the tree to a dead endpoint, so the repair defers — pending stays
  // up, the deferral is counted — and lands once the node is back.
  Simulator sim(9);
  Topology topo(2, 1);
  topo.add_link(NodeId{0}, NodeId{1});

  ReconfigConfig cfg;
  cfg.repair_time = Duration::millis(100);
  Reconfigurator rec(sim, topo, cfg);
  bool crashed = true;
  rec.set_node_filter(
      [&crashed](NodeId n) { return !(crashed && n == NodeId{1}); });

  rec.force_reconfiguration();  // the only link is the victim
  EXPECT_EQ(topo.link_count(), 0u);

  sim.run_until(SimTime::seconds(0.15));  // first repair attempt has fired
  EXPECT_EQ(rec.repairs(), 0u);
  EXPECT_GE(rec.deferred_repairs(), 1u);
  EXPECT_EQ(rec.pending_repairs(), 1u);
  EXPECT_EQ(topo.link_count(), 0u);  // nothing wired to the dead node

  crashed = false;  // node 1 restarts
  sim.run_until(SimTime::seconds(0.35));
  EXPECT_EQ(rec.repairs(), 1u);
  EXPECT_EQ(rec.pending_repairs(), 0u);
  EXPECT_TRUE(topo.is_tree());
  EXPECT_EQ(topo.link_count(), 1u);
}

TEST(Reconfigurator, NodeFilterPassingEveryoneChangesNothing) {
  // A filter that rejects nobody must leave the repair draw sequence
  // untouched: same seed with and without the filter → same added links.
  auto run_once = [](bool with_filter) {
    Simulator sim(13);
    Rng rng = sim.fork_rng();
    Topology topo = Topology::random_tree(20, 4, rng);
    ReconfigConfig cfg;
    cfg.interval = Duration::millis(40);
    cfg.repair_time = Duration::millis(60);
    cfg.stop_at = SimTime::seconds(1.0);
    Reconfigurator rec(sim, topo, cfg);
    if (with_filter) rec.set_node_filter([](NodeId) { return true; });
    std::vector<std::pair<std::uint32_t, std::uint32_t>> added;
    rec.set_repair_listener([&](const Reconfigurator::Repair& r) {
      if (r.added) added.emplace_back(r.added->a.value(), r.added->b.value());
    });
    rec.start();
    sim.run_until(SimTime::seconds(2.0));
    return added;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(Reconfigurator, StopHaltsChurn) {
  Simulator sim(3);
  Rng rng = sim.fork_rng();
  Topology topo = Topology::random_tree(10, 4, rng);
  ReconfigConfig cfg;
  cfg.interval = Duration::millis(50);
  cfg.repair_time = Duration::millis(10);
  Reconfigurator rec(sim, topo, cfg);
  rec.start();
  sim.run_until(SimTime::seconds(0.25));
  const auto breaks = rec.breaks();
  EXPECT_GT(breaks, 0u);
  rec.stop();
  sim.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(rec.breaks(), breaks);
  EXPECT_TRUE(topo.is_tree());
}

}  // namespace
}  // namespace epicast
