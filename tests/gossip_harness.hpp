// Shared harness for recovery-protocol tests: a small lossless line network
// with per-link fault injection, so individual event messages can be dropped
// deterministically and the recovery observed.
#pragma once

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "epicast/gossip/protocol.hpp"
#include "epicast/metrics/message_stats.hpp"
#include "epicast/net/topology.hpp"
#include "epicast/net/transport.hpp"
#include "epicast/pubsub/network.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast::testing {

class GossipHarness {
 public:
  /// A line of `nodes` dispatchers with reliable links and the given
  /// algorithm attached (but not yet started) on every node.
  GossipHarness(std::uint32_t nodes, Algorithm algorithm,
                GossipConfig gossip = default_gossip())
      : sim_(1),
        topo_(Topology::line(nodes)),
        transport_(sim_, topo_, lossless()),
        stats_(nodes),
        net_(sim_, transport_, dispatcher_config(algorithm)) {
    transport_.add_observer(stats_);
    // One composable filter installed up front; the drop_* mutators only
    // edit the rule sets it consults.
    transport_.add_fault_filter(
        [this](NodeId from, NodeId to, const Message& msg, bool /*overlay*/) {
          if (msg.message_class() != MessageClass::Event) return true;
          if (dropped_links_.contains({from, to})) return false;
          const auto& em = static_cast<const EventMessage&>(msg);
          return !dropped_.contains(DropRule{from, to, em.event()->id()});
        });
    net_.for_each([&](Dispatcher& d) {
      d.set_recovery(make_recovery(algorithm, d, gossip));
    });
    net_.set_delivery_listener(
        [this](NodeId node, const EventPtr& e, bool recovered) {
          deliveries_.emplace_back(node, e->id());
          if (recovered) recovered_.emplace_back(node, e->id());
        });
  }

  static GossipConfig default_gossip() {
    GossipConfig g;
    g.interval = Duration::millis(30);
    g.buffer_size = 64;
    g.forward_probability = 0.5;
    return g;
  }

  static TransportConfig lossless() {
    TransportConfig c;
    c.link.loss_rate = 0.0;
    c.direct_loss_rate = 0.0;
    return c;
  }

  static DispatcherConfig dispatcher_config(Algorithm algorithm) {
    DispatcherConfig dc;
    dc.record_routes = algorithm_needs_routes(algorithm);
    return dc;
  }

  void subscribe_and_settle(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& subs) {
    for (auto [node, pattern] : subs) {
      net_.node(NodeId{node}).subscribe(Pattern{pattern});
    }
    run_for(0.5);
  }

  void start_recovery() {
    net_.for_each([](Dispatcher& d) { d.recovery()->start(); });
  }

  /// Drops event messages carrying `id` on the directed link from→to.
  void drop_event_on_link(NodeId from, NodeId to, EventId id) {
    dropped_.insert(DropRule{from, to, id});
  }

  /// Drops every event message on the directed link from→to.
  void drop_all_events_on_link(NodeId from, NodeId to) {
    dropped_links_.insert({from, to});
  }

  void clear_drops() {
    dropped_.clear();
    dropped_links_.clear();
  }

  void run_for(double seconds) {
    sim_.run_until(sim_.now() + Duration::seconds(seconds));
  }

  [[nodiscard]] bool delivered(std::uint32_t node, const EventId& id) const {
    for (const auto& [n, e] : deliveries_) {
      if (n == NodeId{node} && e == id) return true;
    }
    return false;
  }
  [[nodiscard]] bool recovered(std::uint32_t node, const EventId& id) const {
    for (const auto& [n, e] : recovered_) {
      if (n == NodeId{node} && e == id) return true;
    }
    return false;
  }

  [[nodiscard]] GossipProtocolBase* protocol(std::uint32_t node) {
    return dynamic_cast<GossipProtocolBase*>(net_.node(NodeId{node}).recovery());
  }

  Simulator& sim() { return sim_; }
  PubSubNetwork& net() { return net_; }
  MessageStats& stats() { return stats_; }
  Topology& topology() { return topo_; }
  Transport& transport() { return transport_; }

 private:
  struct DropRule {
    NodeId from, to;
    EventId id;
    friend auto operator<=>(const DropRule&, const DropRule&) = default;
  };

  Simulator sim_;
  Topology topo_;
  Transport transport_;
  MessageStats stats_;
  PubSubNetwork net_;
  std::set<DropRule> dropped_;
  std::set<std::pair<NodeId, NodeId>> dropped_links_;
  std::vector<std::pair<NodeId, EventId>> deliveries_;
  std::vector<std::pair<NodeId, EventId>> recovered_;
};

}  // namespace epicast::testing
