// Tests for the TraceLog debugging facility.
#include "epicast/metrics/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "epicast/metrics/message_stats.hpp"
#include "epicast/pubsub/network.hpp"

namespace epicast {
namespace {

struct TraceRig {
  TraceRig()
      : sim(1),
        topo(Topology::line(3)),
        transport(sim, topo, config()),
        trace(sim, 128),
        net(sim, transport, DispatcherConfig{}) {
    transport.add_observer(trace);
    topo.add_change_listener([this](const Link& l, bool added) {
      trace.record_link_change(l, added);
    });
    net.set_delivery_listener(
        [this](NodeId node, const EventPtr& e, bool recovered) {
          trace.record_delivery(node, e->id(), recovered);
        });
  }

  static TransportConfig config() {
    TransportConfig c;
    c.link.loss_rate = 0.0;
    return c;
  }

  void run(double s) { sim.run_until(sim.now() + Duration::seconds(s)); }

  Simulator sim;
  Topology topo;
  Transport transport;
  TraceLog trace;
  PubSubNetwork net;
};

TEST(TraceLog, RecordsSendsAndDeliveries) {
  TraceRig rig;
  rig.net.node(NodeId{2}).subscribe(Pattern{1});
  rig.run(0.5);
  rig.trace.clear();

  const EventPtr e = rig.net.node(NodeId{0}).publish({Pattern{1}});
  rig.run(0.5);

  const auto sends = rig.trace.of_kind(TraceKind::Send);
  ASSERT_EQ(sends.size(), 2u);  // 0→1 and 1→2
  EXPECT_EQ(sends[0].from, NodeId{0});
  EXPECT_EQ(sends[0].to, NodeId{1});
  EXPECT_TRUE(sends[0].overlay);
  ASSERT_TRUE(sends[0].event.has_value());
  EXPECT_EQ(*sends[0].event, e->id());

  const auto deliveries = rig.trace.of_kind(TraceKind::Delivery);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].from, NodeId{2});
  EXPECT_FALSE(deliveries[0].flag);  // not recovered
}

TEST(TraceLog, HistoryOfFollowsOneEvent) {
  TraceRig rig;
  rig.net.node(NodeId{2}).subscribe(Pattern{1});
  rig.run(0.5);
  rig.trace.clear();

  const EventPtr a = rig.net.node(NodeId{0}).publish({Pattern{1}});
  const EventPtr b = rig.net.node(NodeId{0}).publish({Pattern{1}});
  rig.run(0.5);

  const auto history = rig.trace.history_of(a->id());
  ASSERT_EQ(history.size(), 3u);  // 2 sends + 1 delivery
  for (const TraceRecord& r : history) {
    EXPECT_EQ(*r.event, a->id());
  }
  EXPECT_EQ(rig.trace.history_of(b->id()).size(), 3u);
}

TEST(TraceLog, RecordsLinkChangesAndStaleDrops) {
  TraceRig rig;
  rig.net.node(NodeId{2}).subscribe(Pattern{1});
  rig.run(0.5);
  rig.trace.clear();

  rig.topo.remove_link(NodeId{1}, NodeId{2});
  rig.net.node(NodeId{0}).publish({Pattern{1}});
  rig.run(0.5);

  const auto changes = rig.trace.of_kind(TraceKind::LinkChange);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_FALSE(changes[0].flag);  // removed
  EXPECT_EQ(rig.trace.of_kind(TraceKind::StaleDrop).size(), 1u);
}

TEST(TraceLog, RingDropsOldest) {
  TraceRig rig;
  TraceLog small(rig.sim, 4);
  for (int i = 0; i < 10; ++i) {
    small.record_delivery(NodeId{static_cast<std::uint32_t>(i)},
                          EventId{NodeId{0}, static_cast<std::uint64_t>(i)},
                          false);
  }
  EXPECT_EQ(small.records().size(), 4u);
  EXPECT_EQ(small.dropped_records(), 6u);
  EXPECT_EQ(small.records().front().event->source_seq, 6u);
}

TEST(TraceLog, DumpIsHumanReadable) {
  TraceRig rig;
  rig.net.node(NodeId{2}).subscribe(Pattern{1});
  rig.run(0.5);
  rig.net.node(NodeId{0}).publish({Pattern{1}});
  rig.run(0.5);

  std::ostringstream os;
  rig.trace.dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("send"), std::string::npos);
  EXPECT_NE(text.find("delivery"), std::string::npos);
  EXPECT_NE(text.find("event(0,0)"), std::string::npos);

  std::ostringstream capped;
  rig.trace.dump(capped, 1);
  EXPECT_NE(capped.str().find("more)"), std::string::npos);
}

TEST(TraceLog, CoexistsWithMessageStats) {
  TraceRig rig;
  MessageStats stats(3);
  rig.transport.add_observer(stats);  // second observer
  rig.net.node(NodeId{2}).subscribe(Pattern{1});
  rig.run(0.5);
  rig.net.node(NodeId{0}).publish({Pattern{1}});
  rig.run(0.5);
  EXPECT_EQ(stats.snapshot().sends_of(MessageClass::Event), 2u);
  EXPECT_GE(rig.trace.of_kind(TraceKind::Send).size(), 2u);
}

}  // namespace
}  // namespace epicast
