// Unit and property tests for the overlay topology: construction, invariant
// enforcement, path queries, change notifications, and random-tree
// generation across many seeds.
#include "epicast/net/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace epicast {
namespace {

TEST(Topology, LineHasExpectedStructure) {
  Topology t = Topology::line(5);
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.link_count(), 4u);
  EXPECT_TRUE(t.is_tree());
  EXPECT_EQ(t.degree(NodeId{0}), 1u);
  EXPECT_EQ(t.degree(NodeId{2}), 2u);
  EXPECT_TRUE(t.has_link(NodeId{1}, NodeId{2}));
  EXPECT_FALSE(t.has_link(NodeId{0}, NodeId{2}));
}

TEST(Topology, StarHasHubAtZero) {
  Topology t = Topology::star(6);
  EXPECT_TRUE(t.is_tree());
  EXPECT_EQ(t.degree(NodeId{0}), 5u);
  for (std::uint32_t i = 1; i < 6; ++i) {
    EXPECT_EQ(t.degree(NodeId{i}), 1u);
  }
}

TEST(Topology, PathOnLineIsTheLine) {
  Topology t = Topology::line(6);
  auto p = t.path(NodeId{1}, NodeId{4});
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->size(), 4u);
  EXPECT_EQ((*p)[0], NodeId{1});
  EXPECT_EQ((*p)[3], NodeId{4});
  EXPECT_EQ(t.distance(NodeId{1}, NodeId{4}), 3u);
  EXPECT_EQ(t.distance(NodeId{2}, NodeId{2}), 0u);
}

TEST(Topology, PathAcrossComponentsIsNull) {
  Topology t{4, 3};
  t.add_link(NodeId{0}, NodeId{1});
  t.add_link(NodeId{2}, NodeId{3});
  EXPECT_FALSE(t.path(NodeId{0}, NodeId{3}).has_value());
  EXPECT_FALSE(t.distance(NodeId{1}, NodeId{2}).has_value());
  EXPECT_FALSE(t.connected());
  EXPECT_FALSE(t.is_tree());
}

TEST(Topology, ComponentOfReportsReachableSet) {
  Topology t{5, 3};
  t.add_link(NodeId{0}, NodeId{1});
  t.add_link(NodeId{1}, NodeId{2});
  auto comp = t.component_of(NodeId{2});
  std::sort(comp.begin(), comp.end());
  EXPECT_EQ(comp, (std::vector<NodeId>{NodeId{0}, NodeId{1}, NodeId{2}}));
  EXPECT_EQ(t.component_of(NodeId{4}).size(), 1u);
}

TEST(Topology, RemoveLinkSplitsTree) {
  Topology t = Topology::line(4);
  t.remove_link(NodeId{1}, NodeId{2});
  EXPECT_FALSE(t.connected());
  EXPECT_EQ(t.component_of(NodeId{0}).size(), 2u);
  EXPECT_EQ(t.component_of(NodeId{3}).size(), 2u);
}

TEST(TopologyDeath, RejectsDuplicateAndSelfLinks) {
  Topology t{3, 4};
  t.add_link(NodeId{0}, NodeId{1});
  EXPECT_DEATH(t.add_link(NodeId{0}, NodeId{1}), "already present");
  EXPECT_DEATH(t.add_link(NodeId{1}, NodeId{0}), "already present");
  EXPECT_DEATH(t.add_link(NodeId{1}, NodeId{1}), "self-link");
  EXPECT_DEATH(t.remove_link(NodeId{0}, NodeId{2}), "not present");
}

TEST(TopologyDeath, EnforcesDegreeCap) {
  Topology t{5, 2};
  t.add_link(NodeId{0}, NodeId{1});
  t.add_link(NodeId{0}, NodeId{2});
  EXPECT_DEATH(t.add_link(NodeId{0}, NodeId{3}), "degree cap");
}

TEST(Topology, LinksAreSortedAndUnique) {
  Topology t = Topology::star(4);
  const auto links = t.links();
  ASSERT_EQ(links.size(), 3u);
  EXPECT_TRUE(std::is_sorted(links.begin(), links.end()));
  for (const Link& l : links) EXPECT_LT(l.a, l.b);
}

TEST(Topology, ChangeListenerSeesAddAndRemove) {
  Topology t{3, 4};
  std::vector<std::pair<Link, bool>> events;
  t.add_change_listener(
      [&](const Link& l, bool added) { events.emplace_back(l, added); });
  t.add_link(NodeId{0}, NodeId{1});
  t.remove_link(NodeId{1}, NodeId{0});  // order-insensitive
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].second);
  EXPECT_FALSE(events[1].second);
  EXPECT_EQ(events[0].first, (Link{NodeId{0}, NodeId{1}}));
}

TEST(Topology, VersionBumpsOnEveryChange) {
  Topology t{3, 4};
  const auto v0 = t.version();
  t.add_link(NodeId{0}, NodeId{1});
  const auto v1 = t.version();
  t.remove_link(NodeId{0}, NodeId{1});
  const auto v2 = t.version();
  EXPECT_LT(v0, v1);
  EXPECT_LT(v1, v2);
}

TEST(Topology, MeanPairwiseDistanceOnLine) {
  // Line of 4: pairs (0,1),(0,2),(0,3),(1,2),(1,3),(2,3) → 1+2+3+1+2+1 = 10/6.
  Topology t = Topology::line(4);
  EXPECT_NEAR(t.mean_pairwise_distance(), 10.0 / 6.0, 1e-12);
}

TEST(Topology, ToDotListsEveryLinkOnce) {
  Topology t = Topology::line(3);
  const std::string dot = t.to_dot();
  EXPECT_NE(dot.find("graph overlay {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
  EXPECT_EQ(dot.find("1 -- 0;"), std::string::npos);
}

class RandomTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeProperty, GeneratesDegreeCappedTrees) {
  Rng rng(GetParam());
  for (std::uint32_t n : {2u, 3u, 10u, 50u, 100u, 200u}) {
    Topology t = Topology::random_tree(n, 4, rng);
    ASSERT_TRUE(t.is_tree()) << "n=" << n;
    ASSERT_EQ(t.link_count(), n - 1u);
    for (std::uint32_t i = 0; i < n; ++i) {
      ASSERT_LE(t.degree(NodeId{i}), 4u);
    }
  }
}

TEST_P(RandomTreeProperty, SameSeedSameTree) {
  Rng a(GetParam()), b(GetParam());
  Topology ta = Topology::random_tree(60, 4, a);
  Topology tb = Topology::random_tree(60, 4, b);
  EXPECT_EQ(ta.links(), tb.links());
}

TEST_P(RandomTreeProperty, MeanDistanceIsInPaperRegime) {
  // The paper's baseline delivery (≈55% at ε=0.1, ≈75% at ε=0.05) implies a
  // mean hop distance around 5–7 for N=100; the generator must stay there.
  Rng rng(GetParam() ^ 0x5eed);
  Topology t = Topology::random_tree(100, 4, rng);
  const double d = t.mean_pairwise_distance();
  EXPECT_GT(d, 4.0);
  EXPECT_LT(d, 8.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace epicast
