// Tests for sweep execution and report formatting.
#include "epicast/scenario/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace epicast {
namespace {

ScenarioConfig tiny(Algorithm a, std::uint64_t seed) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(a);
  cfg.nodes = 12;
  cfg.seed = seed;
  cfg.warmup = Duration::seconds(0.5);
  cfg.measure = Duration::seconds(1.0);
  return cfg;
}

TEST(RunSweep, PreservesInputOrderAndLabels) {
  std::vector<LabeledConfig> configs;
  configs.push_back({"first", tiny(Algorithm::NoRecovery, 1)});
  configs.push_back({"second", tiny(Algorithm::NoRecovery, 2)});
  configs.push_back({"third", tiny(Algorithm::CombinedPull, 1)});
  const auto results = run_sweep(configs, 2, /*verbose=*/false);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].label, "first");
  EXPECT_EQ(results[2].label, "third");
  EXPECT_GT(results[2].result.traffic.gossip_sends(), 0u);
}

TEST(RunSweep, ParallelEqualsSerial) {
  std::vector<LabeledConfig> configs;
  for (int i = 0; i < 3; ++i) {
    configs.push_back({"s", tiny(Algorithm::CombinedPull, 7)});
  }
  const auto serial = run_sweep(configs, 1, false);
  const auto parallel = run_sweep(configs, 3, false);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(serial[i].result.delivery_rate,
                     parallel[i].result.delivery_rate);
    EXPECT_EQ(serial[i].result.sim_events_executed,
              parallel[i].result.sim_events_executed);
  }
}

TEST(PrintSummary, ContainsHeadlineNumbers) {
  const ScenarioResult r = run_scenario(tiny(Algorithm::CombinedPull, 3));
  std::ostringstream os;
  print_summary(os, "headline", r);
  const std::string text = os.str();
  EXPECT_NE(text.find("headline"), std::string::npos);
  EXPECT_NE(text.find("delivery rate"), std::string::npos);
  EXPECT_NE(text.find("gossip msgs per dispatcher"), std::string::npos);
}

TEST(RunReplicated, AggregatesAcrossSeeds) {
  const auto agg = run_replicated(tiny(Algorithm::CombinedPull, 100), 4, 2);
  ASSERT_EQ(agg.runs.size(), 4u);
  EXPECT_GE(agg.max_delivery, agg.mean_delivery);
  EXPECT_LE(agg.min_delivery, agg.mean_delivery);
  EXPECT_GE(agg.stddev_delivery, 0.0);
  EXPECT_GT(agg.mean_gossip_per_dispatcher, 0.0);
  // Distinct seeds really were used.
  EXPECT_NE(agg.runs[0].sim_events_executed, agg.runs[1].sim_events_executed);
}

TEST(RunReplicated, SingleReplicaEqualsPlainRun) {
  const ScenarioConfig cfg = tiny(Algorithm::NoRecovery, 42);
  const auto agg = run_replicated(cfg, 1);
  const ScenarioResult direct = run_scenario(cfg);
  EXPECT_DOUBLE_EQ(agg.mean_delivery, direct.delivery_rate);
  EXPECT_DOUBLE_EQ(agg.stddev_delivery, 0.0);
}

TEST(WriteSeriesCsv, ProducesParseableRows) {
  TimeSeries a{"alpha"};
  a.add(1.0, 0.5);
  a.add(2.0, 0.75);
  TimeSeries b{"beta"};
  b.add(1.0, 0.25);
  std::ostringstream os;
  write_series_csv(os, "x", {a, b});
  const std::string csv = os.str();
  EXPECT_NE(csv.find("x,alpha,beta\n"), std::string::npos);
  EXPECT_NE(csv.find("1,0.5,0.25\n"), std::string::npos);
  EXPECT_NE(csv.find("2,0.75,\n"), std::string::npos);  // missing cell empty
}

TEST(SweepTable, LaysOutRowMajorResults) {
  std::vector<LabeledConfig> configs;
  for (double x : {1.0, 2.0}) {
    (void)x;
    configs.push_back({"a", tiny(Algorithm::NoRecovery, 1)});
    configs.push_back({"b", tiny(Algorithm::NoRecovery, 2)});
  }
  const auto results = run_sweep(configs, 2, false);
  const std::string table = sweep_table(
      "x", {"a", "b"}, {1.0, 2.0}, results,
      [](const ScenarioResult& r) { return r.delivery_rate; });
  EXPECT_NE(table.find("a"), std::string::npos);
  EXPECT_NE(table.find("b"), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);
}

}  // namespace
}  // namespace epicast
