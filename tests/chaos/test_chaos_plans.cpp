// End-to-end chaos plans through run_scenario with the conformance oracles
// live: churn-only (warm and cold), burst-only, and partition+churn. The
// load-bearing claim is *post-heal convergence*: once the plan's last fault
// heals, pull-based recovery must close every remaining gap, so eventual
// delivery reaches 1.0 even though in-window delivery degraded.
#include <gtest/gtest.h>

#include "epicast/fault/plan.hpp"
#include "epicast/scenario/runner.hpp"

namespace epicast {
namespace {

// Small, loss-free (ε = 0) combined-pull scenario: every missing pair is
// attributable to the injected faults, and the timeline leaves ≥ 2 s of
// fault-free tail after the last plan window (plans below stop ≤ 2 s into
// publishing; end_time = 0.5 + 0.5 + 2.0 + 2.0 + 0.2 = 5.2 s).
//
// Convergence to exactly 1.0 needs every (source, pattern) stream baselined
// before faults begin: the loss detector's first-contact rule (paper §III-B)
// makes losses before a stream's first received event undetectable. Hence
// the small pattern universe (dense per-stream traffic) and fault windows
// starting 1 s into publishing — by then each publisher has emitted ~25
// events, so no stream is still waiting for its first contact.
ScenarioConfig chaos_config(std::uint64_t seed) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(Algorithm::CombinedPull);
  cfg.nodes = 18;
  cfg.seed = seed;
  cfg.link_error_rate = 0.0;
  cfg.publish_rate_hz = 25.0;
  cfg.pattern_universe = 6;
  cfg.warmup = Duration::seconds(0.5);
  cfg.measure = Duration::seconds(2.0);
  cfg.recovery_horizon = Duration::seconds(2.0);
  return cfg;
}

ScenarioConfig with_plan(std::uint64_t seed, const std::string& spec) {
  ScenarioConfig cfg = chaos_config(seed);
  std::string error;
  const auto plan = fault::parse_plan(spec, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  cfg.faults = *plan;
  return cfg;
}

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

TEST(ChaosPlans, WarmChurnConvergesAfterChurnStops) {
  for (const std::uint64_t seed : kSeeds) {
    const ScenarioResult r = run_scenario(
        with_plan(seed, "churn(period=0.3,down=0.15,start=1,stop=2)"));
    SCOPED_TRACE(seed);
    EXPECT_GT(r.oracle_checks, 0u);  // oracles were live the whole run
    EXPECT_GE(r.fault.stats.crashes, 3u);
    EXPECT_EQ(r.fault.stats.restarts, r.fault.stats.crashes);
    EXPECT_EQ(r.fault.stats.cold_restarts, 0u);
    EXPECT_GT(r.fault.stats.crash_drops, 0u);
    // Churn ends 2.65 s in; the fault-free tail lets recovery finish.
    EXPECT_DOUBLE_EQ(r.eventual_delivery_rate, 1.0);

    // Degradation metrics: the churn epoch overlaps the window, so it has
    // measured pairs, and its eventual ratio matches global convergence.
    ASSERT_EQ(r.fault.epochs.size(), 1u);
    EXPECT_EQ(r.fault.epochs[0].label, "churn");
    EXPECT_GT(r.fault.epochs[0].expected_pairs, 0u);
    EXPECT_DOUBLE_EQ(r.fault.epochs[0].eventual_ratio(), 1.0);
    EXPECT_LE(r.fault.epochs[0].delivery_ratio(), 1.0);
    EXPECT_GT(r.fault.last_heal_s, 0.0);
    EXPECT_GT(r.fault.post_heal_convergence_s, 0.0);
  }
}

TEST(ChaosPlans, ColdChurnKeepsOraclesGreen) {
  // Cold restarts wipe recovery soft state; the cold node cannot detect its
  // own outage gap, so eventual delivery is NOT asserted — what must hold
  // is that every safety oracle stays green and the counters add up.
  for (const std::uint64_t seed : kSeeds) {
    const ScenarioResult r = run_scenario(
        with_plan(seed, "churn(period=0.4,down=0.2,policy=cold,stop=2)"));
    SCOPED_TRACE(seed);
    EXPECT_GT(r.oracle_checks, 0u);
    EXPECT_GE(r.fault.stats.cold_restarts, 3u);
    EXPECT_EQ(r.fault.stats.cold_restarts, r.fault.stats.restarts);
    EXPECT_LE(r.delivery_rate, r.eventual_delivery_rate);
    EXPECT_GT(r.eventual_delivery_rate, 0.5);
  }
}

TEST(ChaosPlans, BurstOnlyRecoversEverythingAfterTheBurst) {
  // Gilbert–Elliott loss (~15 % stationary) on every overlay link while the
  // window is open, gone 2.5 s in. Every burst loss must be pulled back.
  for (const std::uint64_t seed : kSeeds) {
    const ScenarioResult r =
        run_scenario(with_plan(seed, "burst(p=0.08,r=0.45,start=1,stop=2)"));
    SCOPED_TRACE(seed);
    EXPECT_GT(r.oracle_checks, 0u);
    EXPECT_GT(r.fault.stats.bursts_entered, 0u);
    EXPECT_GT(r.fault.stats.burst_drops, 0u);
    EXPECT_EQ(r.fault.stats.crashes, 0u);
    EXPECT_DOUBLE_EQ(r.eventual_delivery_rate, 1.0);
    ASSERT_EQ(r.fault.epochs.size(), 1u);
    EXPECT_EQ(r.fault.epochs[0].label, "burst");
    EXPECT_GT(r.fault.epochs[0].expected_pairs, 0u);
  }
}

TEST(ChaosPlans, PartitionPlusChurnHealsAndConverges) {
  // Two overlay links cut while churn crashes nodes; routes are rebuilt at
  // heal (Oracle route repair). Post-heal the epidemic must close all gaps.
  for (const std::uint64_t seed : kSeeds) {
    const ScenarioResult r = run_scenario(with_plan(
        seed,
        "partition(links=2,at=1,heal=1.9);"
        "churn(period=0.4,down=0.15,start=1,stop=1.8)"));
    SCOPED_TRACE(seed);
    EXPECT_GT(r.oracle_checks, 0u);
    EXPECT_EQ(r.fault.stats.partitions_applied, 2u);
    EXPECT_EQ(r.fault.stats.partitions_healed + r.fault.stats.heal_skipped_links,
              2u);
    EXPECT_GT(r.fault.stats.crashes, 0u);
    EXPECT_GT(r.fault.last_heal_s, 0.0);
    EXPECT_DOUBLE_EQ(r.eventual_delivery_rate, 1.0);
    // Two overlapping epochs: the partition window and the churn window.
    ASSERT_EQ(r.fault.epochs.size(), 2u);
  }
}

TEST(ChaosPlans, RetryCountersFireUnderChurnAndStayZeroWithoutFaults) {
  // Pull-side hardening (request_timeout > 0): crashed peers swallow
  // requests, so timeouts/retries must register under churn — and the same
  // hardened config on a fault-free run must never arm a timer in anger.
  GossipStats under_churn;
  for (const std::uint64_t seed : kSeeds) {
    ScenarioConfig cfg =
        with_plan(seed, "churn(period=0.35,down=0.2,stop=2)");
    cfg.gossip.request_timeout = Duration::millis(50);
    cfg.gossip.request_max_retries = 3;
    under_churn += run_scenario(cfg).gossip_totals;

    ScenarioConfig clean = chaos_config(seed);
    clean.gossip.request_timeout = Duration::millis(50);
    clean.gossip.request_max_retries = 3;
    const ScenarioResult baseline = run_scenario(clean);
    SCOPED_TRACE(seed);
    EXPECT_EQ(baseline.gossip_totals.request_timeouts, 0u);
    EXPECT_EQ(baseline.gossip_totals.request_retries, 0u);
    EXPECT_EQ(baseline.gossip_totals.requests_abandoned, 0u);
  }
  // Aggregate over the seed sweep: the hardening demonstrably engaged.
  EXPECT_GT(under_churn.request_timeouts, 0u);
}

}  // namespace
}  // namespace epicast
