// Fault-plan determinism: a chaos run is a pure function of (config, seed).
// Same plan + same seed must be bit-identical — including the JSON report,
// which CI diffs byte-for-byte — and the plan must demonstrably fire, so
// the identity is not vacuous.
#include <gtest/gtest.h>

#include "epicast/fault/plan.hpp"
#include "epicast/scenario/report.hpp"
#include "epicast/scenario/runner.hpp"

namespace epicast {
namespace {

ScenarioConfig chaos_config(std::uint64_t seed) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(Algorithm::CombinedPull);
  cfg.nodes = 16;
  cfg.seed = seed;
  cfg.link_error_rate = 0.0;  // all loss comes from the injected faults
  cfg.publish_rate_hz = 25.0;
  cfg.warmup = Duration::seconds(0.5);
  cfg.measure = Duration::seconds(1.0);
  cfg.recovery_horizon = Duration::seconds(1.0);
  return cfg;
}

ScenarioConfig with_plan(std::uint64_t seed, const std::string& spec) {
  ScenarioConfig cfg = chaos_config(seed);
  std::string error;
  const auto plan = fault::parse_plan(spec, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  cfg.faults = *plan;
  return cfg;
}

constexpr const char* kPlan =
    "churn(period=0.3,down=0.1,stop=1);burst(p=0.08,r=0.5,start=0.5,stop=1.5)";

TEST(FaultDeterminism, SamePlanSameSeedIsBitIdentical) {
  const ScenarioConfig cfg = with_plan(7, kPlan);
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);

  // The identity must not be vacuous: both fault processes actually fired.
  EXPECT_GT(a.fault.stats.crashes, 0u);
  EXPECT_GT(a.fault.stats.burst_drops, 0u);

  EXPECT_EQ(a.sim_events_executed, b.sim_events_executed);
  EXPECT_EQ(a.delivered_pairs, b.delivered_pairs);
  EXPECT_EQ(a.recovered_pairs, b.recovered_pairs);
  EXPECT_EQ(a.fault.stats.crashes, b.fault.stats.crashes);
  EXPECT_EQ(a.fault.stats.crash_drops, b.fault.stats.crash_drops);
  EXPECT_EQ(a.fault.stats.burst_drops, b.fault.stats.burst_drops);
  EXPECT_EQ(a.fault.stats.bursts_entered, b.fault.stats.bursts_entered);

  // The byte-level contract the CI determinism smoke relies on:
  // epicast_sim --faults … --json twice must diff clean.
  EXPECT_EQ(result_json(a), result_json(b));
}

TEST(FaultDeterminism, DifferentSeedsProduceDifferentRuns) {
  const ScenarioResult a = run_scenario(with_plan(1, kPlan));
  const ScenarioResult b = run_scenario(with_plan(2, kPlan));
  EXPECT_NE(result_json(a), result_json(b));
}

TEST(FaultDeterminism, DifferentPlansProduceDifferentRuns) {
  const ScenarioResult churned = run_scenario(with_plan(3, kPlan));
  const ScenarioResult clean = run_scenario(chaos_config(3));
  EXPECT_TRUE(clean.fault.epochs.empty());
  EXPECT_EQ(clean.fault.stats.crashes, 0u);
  EXPECT_NE(result_json(churned), result_json(clean));
}

}  // namespace
}  // namespace epicast
