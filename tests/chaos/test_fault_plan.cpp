// Fault-plan grammar: parse → structs, describe → grammar, round trips,
// and precise rejection of malformed specs (a silently misread chaos plan
// would invalidate the experiment that asked for it).
#include <gtest/gtest.h>

#include "epicast/fault/plan.hpp"

namespace epicast::fault {
namespace {

TEST(FaultPlan, ParsesEveryProcessKind) {
  std::string error;
  const auto plan = parse_plan(
      "churn(period=0.4,down=0.2,policy=cold,start=1,stop=3);"
      "burst(p=0.05,r=0.5,loss_good=0.01,loss_bad=0.9,start=2,stop=6);"
      "slow(factor=0.25,start=3,stop=5);"
      "partition(links=3,at=4,heal=5.5)",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->churns.size(), 1u);
  ASSERT_EQ(plan->bursts.size(), 1u);
  ASSERT_EQ(plan->slows.size(), 1u);
  ASSERT_EQ(plan->partitions.size(), 1u);
  EXPECT_EQ(plan->process_count(), 4u);

  const ChurnSpec& c = plan->churns[0];
  EXPECT_DOUBLE_EQ(c.period.to_seconds(), 0.4);
  EXPECT_DOUBLE_EQ(c.downtime.to_seconds(), 0.2);
  EXPECT_EQ(c.policy, RestartPolicy::Cold);
  EXPECT_DOUBLE_EQ(c.start.to_seconds(), 1.0);
  ASSERT_TRUE(c.stop.has_value());
  EXPECT_DOUBLE_EQ(c.stop->to_seconds(), 3.0);

  const BurstSpec& b = plan->bursts[0];
  EXPECT_DOUBLE_EQ(b.channel.p_enter, 0.05);
  EXPECT_DOUBLE_EQ(b.channel.p_exit, 0.5);
  EXPECT_DOUBLE_EQ(b.channel.loss_good, 0.01);
  EXPECT_DOUBLE_EQ(b.channel.loss_bad, 0.9);

  EXPECT_DOUBLE_EQ(plan->slows[0].factor, 0.25);
  EXPECT_EQ(plan->partitions[0].links, 3u);
  EXPECT_DOUBLE_EQ(plan->partitions[0].heal.to_seconds(), 5.5);

  plan->validate();  // must not abort
}

TEST(FaultPlan, OmittedKeysTakeDefaultsAndOrderIsFree) {
  const auto plan = parse_plan("churn(down=0.1, period=2)");
  ASSERT_TRUE(plan.has_value());
  const ChurnSpec& c = plan->churns[0];
  EXPECT_DOUBLE_EQ(c.period.to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(c.downtime.to_seconds(), 0.1);
  EXPECT_EQ(c.policy, RestartPolicy::Warm);  // default
  EXPECT_TRUE(c.start.is_zero());
  EXPECT_FALSE(c.stop.has_value());
}

TEST(FaultPlan, EmptySpecIsTheEmptyPlan) {
  const auto plan = parse_plan("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->describe(), "");
  // Stray separators are tolerated, still empty.
  const auto sloppy = parse_plan(" ; ;");
  ASSERT_TRUE(sloppy.has_value());
  EXPECT_TRUE(sloppy->empty());
}

TEST(FaultPlan, DescribeRoundTrips) {
  const std::string spec =
      "churn(period=0.4,down=0.2,policy=cold,stop=3);"
      "burst(p=0.05,r=0.5,start=2,stop=6);"
      "slow(factor=0.25,start=3,stop=5);"
      "partition(links=3,at=4,heal=5.5)";
  const auto plan = parse_plan(spec);
  ASSERT_TRUE(plan.has_value());
  const std::string described = plan->describe();
  const auto reparsed = parse_plan(described);
  ASSERT_TRUE(reparsed.has_value()) << described;
  // Grammar → structs → grammar is a fixed point.
  EXPECT_EQ(reparsed->describe(), described);
  EXPECT_EQ(reparsed->process_count(), plan->process_count());
}

TEST(FaultPlan, MalformedSpecsAreRejectedWithAMessage) {
  const char* bad[] = {
      "nuke(at=1)",                       // unknown process
      "churn(perod=1)",                   // misspelled key
      "churn(period)",                    // missing value
      "churn(period=abc)",                // non-numeric
      "churn(period=-1)",                 // negative time
      "churn",                            // no parentheses
      "churn(period=1",                   // unterminated
      "churn(policy=lukewarm)",           // bad enum
      "burst(p=1.5)",                     // probability out of range
      "burst(p=0.5,r=0)",                 // absorbing Bad state
      "slow(factor=0)",                   // factor out of (0, 1]
      "slow(factor=1.5)",
      "partition(links=0)",               // no links
      "partition(at=5,heal=4)",           // heal before at
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(parse_plan(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(FaultPlan, DefaultPlanIsEmptyWithoutEnv) {
  // The test environment must not set EPICAST_FAULTS; the cached default
  // is then the empty plan, which is what keeps ScenarioConfig inert.
  EXPECT_TRUE(default_fault_plan().empty());
}

}  // namespace
}  // namespace epicast::fault
