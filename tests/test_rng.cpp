// Unit and statistical tests for the deterministic RNG streams.
#include "epicast/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace epicast {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  // Chi-square with 9 dof: 99.9th percentile ≈ 27.9.
  double chi2 = 0.0;
  const double expect = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) chi2 += (c - expect) * (c - expect) / expect;
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double min = 1.0, max = 0.0, sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    min = std::min(min, x);
    max = std::max(max, x);
    sum += x;
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  constexpr int kDraws = 100'000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(23);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    ASSERT_GE(x, -2.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(29);
  constexpr int kDraws = 200'000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.exponential(0.02);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 0.02, 0.0005);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(31), b(31);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, ForkedStreamsAreIndependentOfParentUse) {
  // Drawing more from the parent after forking must not change the child.
  Rng a(37);
  Rng child_a = a.fork();
  std::vector<std::uint64_t> seq;
  for (int i = 0; i < 10; ++i) seq.push_back(child_a.next());

  Rng b(37);
  Rng child_b = b.fork();
  for (int i = 0; i < 50; ++i) (void)b.next();  // extra parent draws
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child_b.next(), seq[i]);
}

TEST(Rng, ForksDoNotCollide) {
  Rng root(41);
  std::set<std::uint64_t> firsts;
  for (int i = 0; i < 100; ++i) firsts.insert(root.fork().next());
  EXPECT_EQ(firsts.size(), 100u);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, MeanOfBitsIsBalanced) {
  Rng rng(GetParam());
  int ones = 0;
  constexpr int kDraws = 10'000;
  for (int i = 0; i < kDraws; ++i) ones += rng.next() & 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull,
                                           0xDEADBEEFull, ~0ull));

}  // namespace
}  // namespace epicast
