// Unit tests for the delivery-rate metric (§IV-B).
#include "epicast/metrics/delivery_tracker.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

EventId id(std::uint32_t src, std::uint64_t seq) {
  return EventId{NodeId{src}, seq};
}

class DeliveryTrackerTest : public ::testing::Test {
 protected:
  DeliveryTrackerTest()
      : tracker_(Duration::millis(100), Duration::seconds(1.0)) {
    tracker_.set_measure_window(SimTime::seconds(1.0), SimTime::seconds(2.0));
  }
  DeliveryTracker tracker_;
};

TEST_F(DeliveryTrackerTest, CountsExpectedAndDeliveredPairs) {
  tracker_.on_publish(id(0, 1), SimTime::seconds(1.1), 3);
  tracker_.on_delivery(NodeId{1}, id(0, 1), SimTime::seconds(1.2), false);
  tracker_.on_delivery(NodeId{2}, id(0, 1), SimTime::seconds(1.3), false);
  EXPECT_EQ(tracker_.expected_pairs(), 3u);
  EXPECT_EQ(tracker_.delivered_pairs(), 2u);
  EXPECT_NEAR(tracker_.delivery_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(tracker_.events_tracked(), 1u);
}

TEST_F(DeliveryTrackerTest, IgnoresEventsOutsideWindow) {
  tracker_.on_publish(id(0, 1), SimTime::seconds(0.5), 2);  // before
  tracker_.on_publish(id(0, 2), SimTime::seconds(2.0), 2);  // at end (excl.)
  tracker_.on_delivery(NodeId{1}, id(0, 1), SimTime::seconds(1.2), false);
  EXPECT_EQ(tracker_.expected_pairs(), 0u);
  EXPECT_EQ(tracker_.delivery_rate(), 1.0);  // vacuous
}

TEST_F(DeliveryTrackerTest, IgnoresEventsWithNoSubscribers) {
  tracker_.on_publish(id(0, 1), SimTime::seconds(1.1), 0);
  EXPECT_EQ(tracker_.events_tracked(), 0u);
}

TEST_F(DeliveryTrackerTest, PublisherSelfDeliveryIgnored) {
  tracker_.on_publish(id(7, 1), SimTime::seconds(1.1), 2);
  tracker_.on_delivery(NodeId{7}, id(7, 1), SimTime::seconds(1.1), false);
  EXPECT_EQ(tracker_.delivered_pairs(), 0u);
}

TEST_F(DeliveryTrackerTest, HorizonSeparatesLateDeliveries) {
  tracker_.on_publish(id(0, 1), SimTime::seconds(1.0), 2);
  tracker_.on_delivery(NodeId{1}, id(0, 1), SimTime::seconds(1.9), true);
  tracker_.on_delivery(NodeId{2}, id(0, 1), SimTime::seconds(2.5), true);
  EXPECT_EQ(tracker_.delivered_pairs(), 1u);     // within 1 s horizon
  EXPECT_NEAR(tracker_.delivery_rate(), 0.5, 1e-12);
  EXPECT_NEAR(tracker_.eventual_delivery_rate(), 1.0, 1e-12);
}

TEST_F(DeliveryTrackerTest, RecoveredPairsAndLatency) {
  tracker_.on_publish(id(0, 1), SimTime::seconds(1.0), 2);
  tracker_.on_delivery(NodeId{1}, id(0, 1), SimTime::seconds(1.1), false);
  tracker_.on_delivery(NodeId{2}, id(0, 1), SimTime::seconds(1.5), true);
  EXPECT_EQ(tracker_.recovered_pairs(), 1u);
  EXPECT_NEAR(tracker_.mean_recovery_latency(), 0.5, 1e-9);
}

TEST_F(DeliveryTrackerTest, ReceiversPerEventAverages) {
  tracker_.on_publish(id(0, 1), SimTime::seconds(1.1), 2);
  tracker_.on_publish(id(0, 2), SimTime::seconds(1.2), 6);
  EXPECT_NEAR(tracker_.receivers_per_event(), 4.0, 1e-12);
}

TEST_F(DeliveryTrackerTest, SeriesBucketsByPublishTime) {
  tracker_.on_publish(id(0, 1), SimTime::seconds(1.05), 2);   // bucket 0
  tracker_.on_publish(id(0, 2), SimTime::seconds(1.25), 2);   // bucket 2
  tracker_.on_delivery(NodeId{1}, id(0, 1), SimTime::seconds(1.1), false);
  tracker_.on_delivery(NodeId{2}, id(0, 1), SimTime::seconds(1.1), false);
  tracker_.on_delivery(NodeId{1}, id(0, 2), SimTime::seconds(1.3), false);
  const TimeSeries series = tracker_.delivery_series("x");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series.points()[0].x, 1.0, 1e-9);
  EXPECT_NEAR(series.points()[0].y, 1.0, 1e-12);
  EXPECT_NEAR(series.points()[1].x, 1.2, 1e-9);
  EXPECT_NEAR(series.points()[1].y, 0.5, 1e-12);
}

TEST_F(DeliveryTrackerTest, RecoveryLatencyQuantiles) {
  tracker_.on_publish(id(0, 1), SimTime::seconds(1.0), 10);
  // Recovered deliveries at 0.1, 0.2, ..., 0.9 s after publication.
  for (int i = 1; i <= 9; ++i) {
    tracker_.on_delivery(NodeId{static_cast<std::uint32_t>(i)}, id(0, 1),
                         SimTime::seconds(1.0 + 0.1 * i), true);
  }
  EXPECT_NEAR(tracker_.recovery_latency_quantile(0.0), 0.1, 1e-9);
  EXPECT_NEAR(tracker_.recovery_latency_quantile(0.5), 0.5, 1e-9);
  EXPECT_NEAR(tracker_.recovery_latency_quantile(1.0), 0.9, 1e-9);
  EXPECT_NEAR(tracker_.mean_recovery_latency(), 0.5, 1e-9);
}

TEST_F(DeliveryTrackerTest, QuantileWithNoRecoveriesIsZero) {
  EXPECT_DOUBLE_EQ(tracker_.recovery_latency_quantile(0.5), 0.0);
}

TEST_F(DeliveryTrackerTest, UnknownEventDeliveryIsIgnored) {
  tracker_.on_delivery(NodeId{1}, id(9, 9), SimTime::seconds(1.5), false);
  EXPECT_EQ(tracker_.delivered_pairs(), 0u);
}

TEST(DeliveryTrackerDeath, OverDeliveryIsAContractViolation) {
  DeliveryTracker t(Duration::millis(100), Duration::seconds(1.0));
  t.set_measure_window(SimTime::zero(), SimTime::seconds(10.0));
  t.on_publish(EventId{NodeId{0}, 1}, SimTime::seconds(1.0), 1);
  t.on_delivery(NodeId{1}, EventId{NodeId{0}, 1}, SimTime::seconds(1.1),
                false);
  EXPECT_DEATH(t.on_delivery(NodeId{2}, EventId{NodeId{0}, 1},
                             SimTime::seconds(1.2), false),
               "more deliveries than expected");
}

}  // namespace
}  // namespace epicast
