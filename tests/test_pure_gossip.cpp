// Tests for the pure-gossip (hpcast-style) comparator of §V.
#include "epicast/compare/pure_gossip.hpp"

#include <gtest/gtest.h>

#include "epicast/net/topology.hpp"

namespace epicast {
namespace {

struct Rig {
  explicit Rig(std::uint32_t nodes, PureGossipConfig cfg,
               std::uint64_t seed = 1, double loss = 0.0)
      : sim(seed),
        topo(Topology::line(nodes)),
        transport(sim, topo, transport_config(loss)),
        net(sim, transport, cfg) {}

  static TransportConfig transport_config(double loss) {
    TransportConfig c;
    c.link.loss_rate = loss;
    return c;
  }

  void run(double seconds) {
    sim.run_until(sim.now() + Duration::seconds(seconds));
  }

  Simulator sim;
  Topology topo;
  Transport transport;
  PureGossipNetwork net;
};

TEST(PureGossip, FloodsLineWhenFanoutCoversDegree) {
  PureGossipConfig cfg;
  cfg.fanout = 2;  // = max degree of a line's interior
  Rig rig(6, cfg);
  for (std::uint32_t i = 0; i < 6; ++i) {
    rig.net.node(NodeId{i}).subscribe(Pattern{1});
  }
  std::vector<NodeId> delivered_at;
  rig.net.set_delivery_listener(
      [&](NodeId n, const EventPtr&) { delivered_at.push_back(n); });

  rig.net.node(NodeId{0}).publish({Pattern{1}}, 100);
  rig.run(1.0);
  EXPECT_EQ(delivered_at.size(), 6u);  // everyone, publisher included
}

TEST(PureGossip, ReachesUninterestedNodesToo) {
  PureGossipConfig cfg;
  cfg.fanout = 2;
  Rig rig(5, cfg);
  rig.net.node(NodeId{4}).subscribe(Pattern{1});  // only the far end cares
  rig.net.node(NodeId{0}).publish({Pattern{1}}, 100);
  rig.run(1.0);
  const auto total = rig.net.total_stats();
  EXPECT_EQ(total.delivered, 1u);
  // Nodes 1, 2, 3 received an event they never subscribed to (§V).
  EXPECT_EQ(total.uninterested, 3u);
}

TEST(PureGossip, TtlBoundsPropagation) {
  PureGossipConfig cfg;
  cfg.fanout = 2;
  cfg.max_hops = 2;
  Rig rig(6, cfg);
  for (std::uint32_t i = 0; i < 6; ++i) {
    rig.net.node(NodeId{i}).subscribe(Pattern{1});
  }
  rig.net.node(NodeId{0}).publish({Pattern{1}}, 100);
  rig.run(1.0);
  // Hops 1 and 2 reach nodes 1 and 2; nodes 3+ never see it.
  EXPECT_EQ(rig.net.total_stats().delivered, 3u);
}

TEST(PureGossip, DuplicatesAreCountedNotRedelivered) {
  // On a 3-node star-with-extra... use a line: node 1 gets the event from
  // 0, forwards to 2; 2 forwards back towards 1? fanout excludes the
  // sender, so on a line duplicates require a cycle — use a triangle-free
  // construction with two paths instead: a 4-node "diamond" 0-1, 0-2,
  // 1-3, 2-3.
  Simulator sim(1);
  Topology topo(4, 3);
  topo.add_link(NodeId{0}, NodeId{1});
  topo.add_link(NodeId{0}, NodeId{2});
  topo.add_link(NodeId{1}, NodeId{3});
  topo.add_link(NodeId{2}, NodeId{3});
  TransportConfig tc;
  Transport transport(sim, topo, tc);
  PureGossipConfig cfg;
  cfg.fanout = 3;
  PureGossipNetwork net(sim, transport, cfg);
  for (std::uint32_t i = 0; i < 4; ++i) {
    net.node(NodeId{i}).subscribe(Pattern{1});
  }
  net.node(NodeId{0}).publish({Pattern{1}}, 100);
  sim.run_until(SimTime::seconds(1.0));

  const auto total = net.total_stats();
  EXPECT_EQ(total.delivered, 4u);        // each node exactly once
  EXPECT_GT(total.duplicates, 0u);       // node 3 heard it twice
  EXPECT_EQ(net.node(NodeId{3}).stats().delivered, 1u);
}

TEST(PureGossip, LowFanoutMayMissSubscribersEvenWithoutFaults) {
  // §V: "even in absence of faults it does not guarantee that events are
  // delivered correctly". With fanout 1 at a branching point, the
  // infection picks one branch and the subscriber on another one misses.
  PureGossipConfig cfg;
  cfg.fanout = 1;
  cfg.max_hops = 8;
  int missed = 0;
  int delivered = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Simulator sim(seed);
    Topology topo = Topology::star(4);  // hub 0, leaves 1..3
    TransportConfig tc;
    Transport transport(sim, topo, tc);
    PureGossipNetwork net(sim, transport, cfg);
    net.node(NodeId{1}).subscribe(Pattern{1});
    net.node(NodeId{2}).publish({Pattern{1}}, 100);  // 2 → 0 → (1|3)
    sim.run_until(SimTime::seconds(1.0));
    if (net.total_stats().delivered == 0) {
      ++missed;
    } else {
      ++delivered;
    }
  }
  EXPECT_GT(missed, 0);
  EXPECT_GT(delivered, 0);  // ...but it is not hopeless either
}

TEST(PureGossip, DeterministicAcrossReruns) {
  auto run_once = [](std::uint64_t seed) {
    PureGossipConfig cfg;
    cfg.fanout = 2;
    Rig rig(10, cfg, seed, /*loss=*/0.2);
    for (std::uint32_t i = 0; i < 10; ++i) {
      rig.net.node(NodeId{i}).subscribe(Pattern{1});
    }
    for (int e = 0; e < 20; ++e) {
      rig.net.node(NodeId{static_cast<std::uint32_t>(e % 10)}).publish({Pattern{1}}, 100);
    }
    rig.run(2.0);
    const auto s = rig.net.total_stats();
    return std::make_pair(s.delivered, s.duplicates);
  };
  EXPECT_EQ(run_once(9), run_once(9));
}

}  // namespace
}  // namespace epicast
