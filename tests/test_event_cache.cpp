// Unit tests for the retransmission buffer: capacity, eviction policies,
// id and (source, pattern, seq) lookup, and the per-pattern digest index.
#include "epicast/gossip/event_cache.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

EventPtr ev(std::uint32_t source, std::uint64_t seq,
            std::vector<PatternSeq> patterns) {
  return std::make_shared<EventData>(EventId{NodeId{source}, seq},
                                     std::move(patterns), 64, SimTime::zero());
}

TEST(EventCache, InsertAndGetById) {
  EventCache cache(4, CachePolicy::Fifo, Rng{1});
  auto e = ev(0, 1, {{Pattern{1}, SeqNo{1}}});
  EXPECT_TRUE(cache.insert(e));
  EXPECT_FALSE(cache.insert(e));  // duplicate
  EXPECT_TRUE(cache.contains(e->id()));
  EXPECT_EQ(cache.get(e->id()), e);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(EventCache, MissingLookupsCountMisses) {
  EventCache cache(4, CachePolicy::Fifo, Rng{1});
  EXPECT_EQ(cache.get(EventId{NodeId{9}, 9}), nullptr);
  EXPECT_EQ(cache.find(NodeId{9}, Pattern{1}, SeqNo{1}), nullptr);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(EventCache, FindBySourcePatternSeq) {
  EventCache cache(4, CachePolicy::Fifo, Rng{1});
  auto e = ev(3, 1, {{Pattern{5}, SeqNo{7}}, {Pattern{9}, SeqNo{2}}});
  cache.insert(e);
  EXPECT_EQ(cache.find(NodeId{3}, Pattern{5}, SeqNo{7}), e);
  EXPECT_EQ(cache.find(NodeId{3}, Pattern{9}, SeqNo{2}), e);
  EXPECT_EQ(cache.find(NodeId{3}, Pattern{5}, SeqNo{8}), nullptr);
  EXPECT_EQ(cache.find(NodeId{4}, Pattern{5}, SeqNo{7}), nullptr);
}

TEST(EventCache, FifoEvictsOldestFirst) {
  EventCache cache(3, CachePolicy::Fifo, Rng{1});
  auto e1 = ev(0, 1, {{Pattern{1}, SeqNo{1}}});
  auto e2 = ev(0, 2, {{Pattern{1}, SeqNo{2}}});
  auto e3 = ev(0, 3, {{Pattern{1}, SeqNo{3}}});
  auto e4 = ev(0, 4, {{Pattern{1}, SeqNo{4}}});
  cache.insert(e1);
  cache.insert(e2);
  cache.insert(e3);
  (void)cache.get(e1->id());  // access does not protect FIFO entries
  cache.insert(e4);
  EXPECT_FALSE(cache.contains(e1->id()));
  EXPECT_TRUE(cache.contains(e2->id()));
  EXPECT_TRUE(cache.contains(e4->id()));
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Secondary index is purged with the eviction.
  EXPECT_EQ(cache.find(NodeId{0}, Pattern{1}, SeqNo{1}), nullptr);
}

TEST(EventCache, LruKeepsRecentlyAccessed) {
  EventCache cache(3, CachePolicy::Lru, Rng{1});
  auto e1 = ev(0, 1, {{Pattern{1}, SeqNo{1}}});
  auto e2 = ev(0, 2, {{Pattern{1}, SeqNo{2}}});
  auto e3 = ev(0, 3, {{Pattern{1}, SeqNo{3}}});
  auto e4 = ev(0, 4, {{Pattern{1}, SeqNo{4}}});
  cache.insert(e1);
  cache.insert(e2);
  cache.insert(e3);
  (void)cache.get(e1->id());  // refresh e1 → e2 becomes the LRU victim
  cache.insert(e4);
  EXPECT_TRUE(cache.contains(e1->id()));
  EXPECT_FALSE(cache.contains(e2->id()));
}

TEST(EventCache, RandomEvictionKeepsCapacityAndConsistency) {
  EventCache cache(16, CachePolicy::Random, Rng{42});
  std::vector<EventPtr> events;
  for (std::uint64_t i = 0; i < 200; ++i) {
    auto e = ev(1, i, {{Pattern{static_cast<std::uint32_t>(i % 5)},
                        SeqNo{i + 1}}});
    events.push_back(e);
    cache.insert(e);
    ASSERT_LE(cache.size(), 16u);
  }
  EXPECT_EQ(cache.size(), 16u);
  // Every retained event is findable both ways; evicted ones by neither.
  int retained = 0;
  for (const auto& e : events) {
    const bool by_id = cache.get(e->id()) != nullptr;
    const auto& ps = e->patterns()[0];
    const bool by_sp =
        cache.find(NodeId{1}, ps.pattern, ps.seq) != nullptr;
    ASSERT_EQ(by_id, by_sp);
    retained += by_id ? 1 : 0;
  }
  EXPECT_EQ(retained, 16);
}

TEST(EventCache, IdsMatchingFiltersByPattern) {
  EventCache cache(10, CachePolicy::Fifo, Rng{1});
  auto e1 = ev(0, 1, {{Pattern{1}, SeqNo{1}}});
  auto e2 = ev(0, 2, {{Pattern{2}, SeqNo{1}}});
  auto e3 = ev(0, 3, {{Pattern{1}, SeqNo{2}}, {Pattern{2}, SeqNo{2}}});
  cache.insert(e1);
  cache.insert(e2);
  cache.insert(e3);
  const auto ids1 = cache.ids_matching(Pattern{1}, 0);
  EXPECT_EQ(ids1, (std::vector<EventId>{e1->id(), e3->id()}));
  const auto ids2 = cache.ids_matching(Pattern{2}, 0);
  EXPECT_EQ(ids2, (std::vector<EventId>{e2->id(), e3->id()}));
  EXPECT_TRUE(cache.ids_matching(Pattern{3}, 0).empty());
}

TEST(EventCache, IdsMatchingDropsEvictedEntries) {
  EventCache cache(2, CachePolicy::Fifo, Rng{1});
  auto e1 = ev(0, 1, {{Pattern{1}, SeqNo{1}}});
  auto e2 = ev(0, 2, {{Pattern{1}, SeqNo{2}}});
  auto e3 = ev(0, 3, {{Pattern{1}, SeqNo{3}}});
  cache.insert(e1);
  cache.insert(e2);
  cache.insert(e3);  // evicts e1
  const auto ids = cache.ids_matching(Pattern{1}, 0);
  EXPECT_EQ(ids, (std::vector<EventId>{e2->id(), e3->id()}));
}

TEST(EventCache, IdsMatchingHonoursCapKeepingNewest) {
  EventCache cache(10, CachePolicy::Fifo, Rng{1});
  std::vector<EventPtr> events;
  for (std::uint64_t i = 0; i < 6; ++i) {
    auto e = ev(0, i, {{Pattern{1}, SeqNo{i + 1}}});
    events.push_back(e);
    cache.insert(e);
  }
  const auto ids = cache.ids_matching(Pattern{1}, 2);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], events[4]->id());
  EXPECT_EQ(ids[1], events[5]->id());
}

class CachePolicySweep : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(CachePolicySweep, NeverExceedsCapacityAndStaysConsistent) {
  EventCache cache(32, GetParam(), Rng{7});
  Rng rng(99);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto e = ev(static_cast<std::uint32_t>(rng.next_below(4)), i,
                {{Pattern{static_cast<std::uint32_t>(rng.next_below(8))},
                  SeqNo{i + 1}}});
    cache.insert(e);
    ASSERT_LE(cache.size(), 32u);
    // Index and store agree on a random probe.
    const auto probe = cache.ids_matching(
        Pattern{static_cast<std::uint32_t>(rng.next_below(8))}, 0);
    for (const EventId& id : probe) ASSERT_TRUE(cache.contains(id));
  }
  EXPECT_EQ(cache.stats().evictions, cache.stats().insertions - 32);
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicySweep,
                         ::testing::Values(CachePolicy::Fifo, CachePolicy::Lru,
                                           CachePolicy::Random));

}  // namespace
}  // namespace epicast
