// Unit tests for the retransmission buffer: capacity, eviction policies,
// id and (source, pattern, seq) lookup, and the per-pattern digest index.
#include "epicast/gossip/event_cache.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

EventPtr ev(std::uint32_t source, std::uint64_t seq,
            std::vector<PatternSeq> patterns) {
  return std::make_shared<EventData>(EventId{NodeId{source}, seq},
                                     std::move(patterns), 64, SimTime::zero());
}

TEST(EventCache, InsertAndGetById) {
  EventCache cache(4, CachePolicy::Fifo, Rng{1});
  auto e = ev(0, 1, {{Pattern{1}, SeqNo{1}}});
  EXPECT_TRUE(cache.insert(e));
  EXPECT_FALSE(cache.insert(e));  // duplicate
  EXPECT_TRUE(cache.contains(e->id()));
  EXPECT_EQ(cache.get(e->id()), e);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(EventCache, MissingLookupsCountMisses) {
  EventCache cache(4, CachePolicy::Fifo, Rng{1});
  EXPECT_EQ(cache.get(EventId{NodeId{9}, 9}), nullptr);
  EXPECT_EQ(cache.find(NodeId{9}, Pattern{1}, SeqNo{1}), nullptr);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(EventCache, FindBySourcePatternSeq) {
  EventCache cache(4, CachePolicy::Fifo, Rng{1});
  auto e = ev(3, 1, {{Pattern{5}, SeqNo{7}}, {Pattern{9}, SeqNo{2}}});
  cache.insert(e);
  EXPECT_EQ(cache.find(NodeId{3}, Pattern{5}, SeqNo{7}), e);
  EXPECT_EQ(cache.find(NodeId{3}, Pattern{9}, SeqNo{2}), e);
  EXPECT_EQ(cache.find(NodeId{3}, Pattern{5}, SeqNo{8}), nullptr);
  EXPECT_EQ(cache.find(NodeId{4}, Pattern{5}, SeqNo{7}), nullptr);
}

TEST(EventCache, FifoEvictsOldestFirst) {
  EventCache cache(3, CachePolicy::Fifo, Rng{1});
  auto e1 = ev(0, 1, {{Pattern{1}, SeqNo{1}}});
  auto e2 = ev(0, 2, {{Pattern{1}, SeqNo{2}}});
  auto e3 = ev(0, 3, {{Pattern{1}, SeqNo{3}}});
  auto e4 = ev(0, 4, {{Pattern{1}, SeqNo{4}}});
  cache.insert(e1);
  cache.insert(e2);
  cache.insert(e3);
  (void)cache.get(e1->id());  // access does not protect FIFO entries
  cache.insert(e4);
  EXPECT_FALSE(cache.contains(e1->id()));
  EXPECT_TRUE(cache.contains(e2->id()));
  EXPECT_TRUE(cache.contains(e4->id()));
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Secondary index is purged with the eviction.
  EXPECT_EQ(cache.find(NodeId{0}, Pattern{1}, SeqNo{1}), nullptr);
}

TEST(EventCache, LruKeepsRecentlyAccessed) {
  EventCache cache(3, CachePolicy::Lru, Rng{1});
  auto e1 = ev(0, 1, {{Pattern{1}, SeqNo{1}}});
  auto e2 = ev(0, 2, {{Pattern{1}, SeqNo{2}}});
  auto e3 = ev(0, 3, {{Pattern{1}, SeqNo{3}}});
  auto e4 = ev(0, 4, {{Pattern{1}, SeqNo{4}}});
  cache.insert(e1);
  cache.insert(e2);
  cache.insert(e3);
  (void)cache.get(e1->id());  // refresh e1 → e2 becomes the LRU victim
  cache.insert(e4);
  EXPECT_TRUE(cache.contains(e1->id()));
  EXPECT_FALSE(cache.contains(e2->id()));
}

TEST(EventCache, RandomEvictionKeepsCapacityAndConsistency) {
  EventCache cache(16, CachePolicy::Random, Rng{42});
  std::vector<EventPtr> events;
  for (std::uint64_t i = 0; i < 200; ++i) {
    auto e = ev(1, i, {{Pattern{static_cast<std::uint32_t>(i % 5)},
                        SeqNo{i + 1}}});
    events.push_back(e);
    cache.insert(e);
    ASSERT_LE(cache.size(), 16u);
  }
  EXPECT_EQ(cache.size(), 16u);
  // Every retained event is findable both ways; evicted ones by neither.
  int retained = 0;
  for (const auto& e : events) {
    const bool by_id = cache.get(e->id()) != nullptr;
    const auto& ps = e->patterns()[0];
    const bool by_sp =
        cache.find(NodeId{1}, ps.pattern, ps.seq) != nullptr;
    ASSERT_EQ(by_id, by_sp);
    retained += by_id ? 1 : 0;
  }
  EXPECT_EQ(retained, 16);
}

TEST(EventCache, IdsMatchingFiltersByPattern) {
  EventCache cache(10, CachePolicy::Fifo, Rng{1});
  auto e1 = ev(0, 1, {{Pattern{1}, SeqNo{1}}});
  auto e2 = ev(0, 2, {{Pattern{2}, SeqNo{1}}});
  auto e3 = ev(0, 3, {{Pattern{1}, SeqNo{2}}, {Pattern{2}, SeqNo{2}}});
  cache.insert(e1);
  cache.insert(e2);
  cache.insert(e3);
  const auto ids1 = cache.ids_matching(Pattern{1}, 0);
  EXPECT_EQ(ids1, (std::vector<EventId>{e1->id(), e3->id()}));
  const auto ids2 = cache.ids_matching(Pattern{2}, 0);
  EXPECT_EQ(ids2, (std::vector<EventId>{e2->id(), e3->id()}));
  EXPECT_TRUE(cache.ids_matching(Pattern{3}, 0).empty());
}

TEST(EventCache, IdsMatchingDropsEvictedEntries) {
  EventCache cache(2, CachePolicy::Fifo, Rng{1});
  auto e1 = ev(0, 1, {{Pattern{1}, SeqNo{1}}});
  auto e2 = ev(0, 2, {{Pattern{1}, SeqNo{2}}});
  auto e3 = ev(0, 3, {{Pattern{1}, SeqNo{3}}});
  cache.insert(e1);
  cache.insert(e2);
  cache.insert(e3);  // evicts e1
  const auto ids = cache.ids_matching(Pattern{1}, 0);
  EXPECT_EQ(ids, (std::vector<EventId>{e2->id(), e3->id()}));
}

TEST(EventCache, IdsMatchingHonoursCapKeepingNewest) {
  EventCache cache(10, CachePolicy::Fifo, Rng{1});
  std::vector<EventPtr> events;
  for (std::uint64_t i = 0; i < 6; ++i) {
    auto e = ev(0, i, {{Pattern{1}, SeqNo{i + 1}}});
    events.push_back(e);
    cache.insert(e);
  }
  const auto ids = cache.ids_matching(Pattern{1}, 2);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], events[4]->id());
  EXPECT_EQ(ids[1], events[5]->id());
}

class CachePolicySweep : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(CachePolicySweep, NeverExceedsCapacityAndStaysConsistent) {
  EventCache cache(32, GetParam(), Rng{7});
  Rng rng(99);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto e = ev(static_cast<std::uint32_t>(rng.next_below(4)), i,
                {{Pattern{static_cast<std::uint32_t>(rng.next_below(8))},
                  SeqNo{i + 1}}});
    cache.insert(e);
    ASSERT_LE(cache.size(), 32u);
    // Index and store agree on a random probe.
    const auto probe = cache.ids_matching(
        Pattern{static_cast<std::uint32_t>(rng.next_below(8))}, 0);
    for (const EventId& id : probe) ASSERT_TRUE(cache.contains(id));
  }
  EXPECT_EQ(cache.stats().evictions, cache.stats().insertions - 32);
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicySweep,
                         ::testing::Values(CachePolicy::Fifo, CachePolicy::Lru,
                                           CachePolicy::Random));

TEST_P(CachePolicySweep, IdsMatchingIntoAgreesWithAllocatingVariant) {
  EventCache a(16, GetParam(), Rng{5});
  EventCache b(16, GetParam(), Rng{5});
  Rng rng(123);
  std::vector<EventId> scratch;
  for (std::uint64_t i = 0; i < 400; ++i) {
    auto e = ev(static_cast<std::uint32_t>(rng.next_below(3)), i,
                {{Pattern{static_cast<std::uint32_t>(rng.next_below(6))},
                  SeqNo{i + 1}}});
    a.insert(e);
    b.insert(e);
    const Pattern probe{static_cast<std::uint32_t>(rng.next_below(6))};
    const std::size_t cap = rng.next_below(4);  // include cap=0 (= all)
    // ids_matching() may compact the bucket, so query twin caches with
    // identical history rather than the same cache twice.
    b.ids_matching_into(probe, cap, scratch);
    ASSERT_EQ(scratch, a.ids_matching(probe, cap));
  }
}

TEST(EventCache, PatternIndexStaysTightUnderFifoChurn) {
  // The eager head purge keeps the per-pattern index at O(live entries)
  // under FIFO eviction: every victim's ids sit at its buckets' fronts.
  EventCache cache(8, CachePolicy::Fifo, Rng{1});
  for (std::uint64_t i = 0; i < 1000; ++i) {
    cache.insert(ev(0, i,
                    {{Pattern{static_cast<std::uint32_t>(i % 2)},
                      SeqNo{i + 1}}}));
    ASSERT_LE(cache.pattern_index_entries(), cache.size());
  }
  EXPECT_EQ(cache.pattern_index_entries(), 8u);
}

TEST(EventCache, FifoDigestNeedsNoLivenessFiltering) {
  // Interleave two patterns so evictions hit buckets the query never
  // touches; the FIFO digest must still be exactly the live ids.
  EventCache cache(4, CachePolicy::Fifo, Rng{1});
  std::vector<EventPtr> events;
  for (std::uint64_t i = 0; i < 12; ++i) {
    auto e = ev(0, i,
                {{Pattern{static_cast<std::uint32_t>(i % 3)}, SeqNo{i + 1}}});
    events.push_back(e);
    cache.insert(e);
  }
  // Live ids are the newest 4 insertions: seqs 8..11 → patterns 2,0,1,2.
  EXPECT_EQ(cache.ids_matching(Pattern{0}, 0),
            (std::vector<EventId>{events[9]->id()}));
  EXPECT_EQ(cache.ids_matching(Pattern{2}, 0),
            (std::vector<EventId>{events[8]->id(), events[11]->id()}));
}

TEST(EventCache, LruRefreshSurvivesLongChurn) {
  // Pin one event by touching it before every insert; the flat-slot LRU
  // list must keep it resident across many evictions.
  EventCache cache(4, CachePolicy::Lru, Rng{1});
  auto pinned = ev(9, 0, {{Pattern{1}, SeqNo{1}}});
  cache.insert(pinned);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    ASSERT_EQ(cache.get(pinned->id()), pinned);
    cache.insert(ev(0, i, {{Pattern{1}, SeqNo{i + 1}}}));
  }
  EXPECT_TRUE(cache.contains(pinned->id()));
  EXPECT_EQ(cache.size(), 4u);
}

TEST(EventCache, SlotRecyclingPreservesLookups) {
  // Heavy insert/evict churn recycles slots; spot-check both lookup paths
  // for the survivors after every batch.
  EventCache cache(6, CachePolicy::Fifo, Rng{1});
  std::vector<EventPtr> events;
  for (std::uint64_t i = 0; i < 300; ++i) {
    auto e = ev(static_cast<std::uint32_t>(i % 2), i,
                {{Pattern{2}, SeqNo{i + 1}}});
    events.push_back(e);
    cache.insert(e);
    if (i < 6) continue;
    for (std::uint64_t back = 0; back < 6; ++back) {
      const auto& live = events[i - back];
      ASSERT_EQ(cache.get(live->id()), live);
      ASSERT_EQ(cache.find(live->source(), Pattern{2},
                           live->patterns()[0].seq),
                live);
    }
    ASSERT_FALSE(cache.contains(events[i - 6]->id()));
  }
}

}  // namespace
}  // namespace epicast
