// Behavioural tests for the pull family (§III-B): loss detection through
// sequence gaps, subscriber-based steering, publisher-based steering with
// route truncation and short-circuiting, the combined mix, and the random
// control.
#include <gtest/gtest.h>

#include "epicast/gossip/combined_pull.hpp"
#include "epicast/gossip/publisher_pull.hpp"
#include "epicast/gossip/pull_base.hpp"
#include "epicast/gossip/random_pull.hpp"
#include "epicast/gossip/subscriber_pull.hpp"
#include "gossip_harness.hpp"

namespace epicast {
namespace {

using testing::GossipHarness;

/// Publishes e0 (initializes sequence expectations everywhere), then e1
/// which is dropped on `from`→`to`, then e2 which reveals the gap.
/// Returns e1's id.
EventId publish_with_gap(GossipHarness& h, std::uint32_t publisher,
                         std::uint32_t pattern, NodeId from, NodeId to) {
  auto& pub = h.net().node(NodeId{publisher});
  (void)pub.publish({Pattern{pattern}});
  h.run_for(0.1);
  const EventPtr lost = pub.publish({Pattern{pattern}});
  h.drop_event_on_link(from, to, lost->id());
  h.run_for(0.1);
  (void)pub.publish({Pattern{pattern}});
  h.run_for(0.1);
  return lost->id();
}

PullProtocolBase* pull(GossipHarness& h, std::uint32_t node) {
  auto* p = dynamic_cast<PullProtocolBase*>(h.protocol(node));
  EXPECT_NE(p, nullptr);
  return p;
}

TEST(PullDetection, GapPopulatesLostBuffer) {
  GossipHarness h(3, Algorithm::SubscriberPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  // Recovery attached but not started: detection is passive.
  const EventId lost_id = publish_with_gap(h, 0, 1, NodeId{1}, NodeId{2});
  EXPECT_EQ(pull(h, 2)->lost().size(), 1u);
  EXPECT_TRUE(pull(h, 2)->lost().contains(
      LostEntryInfo{NodeId{0}, Pattern{1}, SeqNo{2}}));
  EXPECT_FALSE(h.delivered(2, lost_id));
  // Node 0 (which received everything it published) detected nothing.
  EXPECT_TRUE(pull(h, 0)->lost().empty());
}

TEST(PullDetection, PreloadedSnapshotSeedsTheWatermarks) {
  // A warm-restarted daemon refills its cache from the snapshot; the pull
  // layer must also lift its loss watermarks to the snapshot's sequence
  // numbers so the outage window reads as a gap, not a fresh baseline.
  GossipHarness h(3, Algorithm::SubscriberPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  const EventPtr snap = std::make_shared<EventData>(
      EventId{NodeId{0}, 0},
      std::vector<PatternSeq>{{Pattern{1}, SeqNo{6}}}, 64, SimTime::zero());
  pull(h, 2)->preload_cache({snap});
  EXPECT_EQ(pull(h, 2)->detector().high_watermark(NodeId{0}, Pattern{1}),
            SeqNo{6});
  EXPECT_TRUE(pull(h, 2)->cache().contains(snap->id()));
}

TEST(PullDetection, StreamMarksRevealLossesGapsCannotSee) {
  // The tail of a stream: the last event is lost, and no successor will
  // ever reveal the gap. A neighbour's heartbeat watermark must.
  GossipHarness h(3, Algorithm::SubscriberPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});  // seq 1: baselines everyone
  h.run_for(0.1);
  EXPECT_EQ(pull(h, 2)->detector().high_watermark(NodeId{0}, Pattern{1}),
            SeqNo{1});
  // Node 2 hears (via heartbeat piggyback) that seqs up to 3 exist.
  pull(h, 2)->on_stream_marks({{NodeId{0}, Pattern{1}, SeqNo{3}}});
  EXPECT_TRUE(pull(h, 2)->lost().contains(
      LostEntryInfo{NodeId{0}, Pattern{1}, SeqNo{2}}));
  EXPECT_TRUE(pull(h, 2)->lost().contains(
      LostEntryInfo{NodeId{0}, Pattern{1}, SeqNo{3}}));
  EXPECT_EQ(pull(h, 2)->detector().high_watermark(NodeId{0}, Pattern{1}),
            SeqNo{3});
  // A stale or equal mark changes nothing.
  pull(h, 2)->on_stream_marks({{NodeId{0}, Pattern{1}, SeqNo{2}}});
  EXPECT_EQ(pull(h, 2)->lost().size(), 2u);
}

TEST(PullDetection, StreamMarksBackfillUnknownStreamsFromOne) {
  GossipHarness h(3, Algorithm::SubscriberPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  // Node 2 has never heard from source 1 on pattern 1 — the stream's head
  // was lost. Sequence numbers start at 1 by construction, so a mark pins
  // down the missing range exactly; no unknowable history here.
  pull(h, 2)->on_stream_marks({{NodeId{1}, Pattern{1}, SeqNo{2}}});
  EXPECT_EQ(pull(h, 2)->lost().size(), 2u);
  EXPECT_TRUE(pull(h, 2)->lost().contains(
      LostEntryInfo{NodeId{1}, Pattern{1}, SeqNo{1}}));
  EXPECT_EQ(pull(h, 2)->detector().high_watermark(NodeId{1}, Pattern{1}),
            SeqNo{2});
  // Marks for patterns without a local subscription are ignored outright.
  pull(h, 2)->on_stream_marks({{NodeId{0}, Pattern{2}, SeqNo{5}}});
  EXPECT_EQ(pull(h, 2)->detector().high_watermark(NodeId{0}, Pattern{2}),
            SeqNo{0});
}

TEST(PullDetection, StreamMarkBackfillIsClampedLikeTheGapDetector) {
  GossipHarness h(3, Algorithm::SubscriberPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  const std::uint64_t clamp = pull(h, 2)->config().max_gap_report;
  pull(h, 2)->on_stream_marks(
      {{NodeId{1}, Pattern{1}, SeqNo{clamp + 100}}});
  EXPECT_EQ(pull(h, 2)->lost().size(), clamp);
  EXPECT_FALSE(pull(h, 2)->lost().contains(
      LostEntryInfo{NodeId{1}, Pattern{1}, SeqNo{100}}));
  EXPECT_TRUE(pull(h, 2)->lost().contains(
      LostEntryInfo{NodeId{1}, Pattern{1}, SeqNo{101}}));
}

TEST(PullDetection, StreamMarksRotateThroughTheWitnessedTable) {
  GossipHarness h(3, Algorithm::SubscriberPull);
  h.subscribe_and_settle({{0, 1}, {0, 2}, {2, 1}, {2, 2}});
  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  (void)pub.publish({Pattern{2}});
  h.run_for(0.1);
  // Node 1 forwarded both events; its witnessed table covers both streams
  // even though it subscribes to neither (a mark is knowledge, not stock).
  std::vector<StreamMark> out;
  std::size_t cursor = pull(h, 1)->stream_marks_into(0, 1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(cursor, 1u);
  cursor = pull(h, 1)->stream_marks_into(cursor, 1, out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(cursor, 0u);  // wrapped
  EXPECT_NE(out[0].pattern, out[1].pattern);
  EXPECT_EQ(out[0].source, NodeId{0});
  // Asking for more than exists yields each entry exactly once.
  out.clear();
  (void)pull(h, 1)->stream_marks_into(0, 99, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(PullDetection, NonSubscribersDoNotDetect) {
  GossipHarness h(3, Algorithm::SubscriberPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  (void)publish_with_gap(h, 0, 1, NodeId{1}, NodeId{2});
  EXPECT_TRUE(pull(h, 1)->lost().empty());  // node 1 only routes
}

TEST(SubscriberPull, RecoversFromOtherSubscribersCache) {
  // 0 — 1 — 2; both ends subscribe. 2 misses an event, learns of it from
  // the gap, pulls along the route towards 0, which holds it.
  GossipHarness h(3, Algorithm::SubscriberPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();
  const EventId lost_id = publish_with_gap(h, 0, 1, NodeId{1}, NodeId{2});
  h.run_for(2.0);
  EXPECT_TRUE(h.recovered(2, lost_id));
  EXPECT_TRUE(pull(h, 2)->lost().empty());  // bookkeeping cleaned up
  EXPECT_GT(h.protocol(0)->stats().events_served, 0u);
}

TEST(SubscriberPull, SoleSubscriberCannotRecover) {
  // Only node 2 subscribes to p: its subscriber digests have nowhere to go
  // (no routes exist at node 2), exactly the weakness the paper describes.
  GossipHarness h(3, Algorithm::SubscriberPull);
  h.subscribe_and_settle({{2, 1}});
  h.start_recovery();
  const EventId lost_id = publish_with_gap(h, 0, 1, NodeId{1}, NodeId{2});
  h.run_for(2.0);
  EXPECT_FALSE(h.delivered(2, lost_id));
  EXPECT_EQ(h.protocol(2)->stats().digests_originated, 0u);
}

TEST(PublisherPull, RecoversFromThePublisher) {
  // Only node 2 subscribes — publisher-based pull handles exactly the case
  // subscriber-based cannot.
  GossipHarness h(3, Algorithm::PublisherPull);
  h.subscribe_and_settle({{2, 1}});
  h.start_recovery();
  const EventId lost_id = publish_with_gap(h, 0, 1, NodeId{1}, NodeId{2});
  h.run_for(2.0);
  EXPECT_TRUE(h.recovered(2, lost_id));
  EXPECT_GT(h.protocol(0)->stats().events_served, 0u);
}

TEST(PublisherPull, IntermediateCacheShortCircuits) {
  // 0 — 1 — 2 — 3; 1 and 3 subscribe to p. 3 misses an event that 1 has
  // cached: the publisher-bound digest must be served by 1 (2 hops away)
  // without ever reaching 0.
  GossipHarness h(4, Algorithm::PublisherPull);
  h.subscribe_and_settle({{1, 1}, {3, 1}});
  h.start_recovery();
  const EventId lost_id = publish_with_gap(h, 0, 1, NodeId{2}, NodeId{3});
  h.run_for(2.0);
  EXPECT_TRUE(h.recovered(3, lost_id));
  EXPECT_GT(h.protocol(1)->stats().events_served +
                h.protocol(2)->stats().events_served +
                h.protocol(0)->stats().events_served,
            0u);
}

TEST(PublisherPull, RoutesBufferTracksPublisher) {
  GossipHarness h(4, Algorithm::PublisherPull);
  h.subscribe_and_settle({{3, 1}});
  (void)h.net().node(NodeId{0}).publish({Pattern{1}});
  h.run_for(0.2);
  EXPECT_TRUE(pull(h, 3)->routes().knows(NodeId{0}));
  EXPECT_EQ(pull(h, 3)->routes().route_to(NodeId{0}),
            (std::vector<NodeId>{NodeId{2}, NodeId{1}, NodeId{0}}));
}

TEST(PublisherPull, SurvivesStaleRouteAfterReconfiguration) {
  // After learning the route, rewire the tree so the recorded next hop is
  // no longer a neighbour; the digest must still reach the publisher via
  // the out-of-band fallback.
  GossipHarness h(4, Algorithm::PublisherPull);
  h.subscribe_and_settle({{3, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  h.run_for(0.2);

  const EventPtr lost = pub.publish({Pattern{1}});
  h.drop_event_on_link(NodeId{2}, NodeId{3}, lost->id());
  h.run_for(0.1);
  (void)pub.publish({Pattern{1}});  // reveals the gap at 3
  h.run_for(0.1);

  // Rewire: 3 detaches from 2 and attaches to 0. Stored route 3→[2,1,0] is
  // now stale in its first hop.
  h.topology().remove_link(NodeId{2}, NodeId{3});
  h.topology().add_link(NodeId{0}, NodeId{3});
  h.net().rebuild_routes();
  h.run_for(2.0);
  EXPECT_TRUE(h.recovered(3, lost->id()));
}

TEST(CombinedPull, RecoversBothScarceAndPopularPatterns) {
  // 5-node line. Pattern 1 has subscribers {0, 4}; pattern 2 only {4}.
  // Combined pull must recover losses of both kinds at node 4.
  GossipHarness h(5, Algorithm::CombinedPull);
  h.subscribe_and_settle({{0, 1}, {4, 1}, {4, 2}});
  h.start_recovery();

  const EventId lost_popular = publish_with_gap(h, 1, 1, NodeId{3}, NodeId{4});
  const EventId lost_scarce = publish_with_gap(h, 1, 2, NodeId{3}, NodeId{4});
  h.run_for(3.0);
  EXPECT_TRUE(h.recovered(4, lost_popular));
  EXPECT_TRUE(h.recovered(4, lost_scarce));
}

TEST(RandomPull, EventuallyRecoversOnSmallNetwork) {
  GossipHarness h(3, Algorithm::RandomPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();
  const EventId lost_id = publish_with_gap(h, 0, 1, NodeId{1}, NodeId{2});
  h.run_for(4.0);  // random walks need more rounds
  EXPECT_TRUE(h.recovered(2, lost_id));
}

TEST(PublisherPull, RouteTruncationJumpsOutOfBand) {
  // 6-node line, subscriber only at the far end: the stored route back to
  // the publisher is 5 hops, but publisher_route_hops=2 means the digest
  // visits two neighbours and then jumps straight to the publisher over
  // the out-of-band channel — observable as a direct-channel digest send.
  GossipConfig g = GossipHarness::default_gossip();
  g.publisher_route_hops = 2;
  GossipHarness h(6, Algorithm::PublisherPull, g);
  h.subscribe_and_settle({{5, 1}});
  h.start_recovery();
  const EventId lost_id = publish_with_gap(h, 0, 1, NodeId{4}, NodeId{5});
  h.run_for(2.0);
  EXPECT_TRUE(h.recovered(5, lost_id));
  // At least one digest used the direct channel (the jump), and digests
  // also travelled the first overlay hops.
  std::uint64_t direct_digests = 0;
  const auto snap = h.stats().snapshot();
  direct_digests = snap.direct_sends - snap.sends_of(MessageClass::GossipReply) -
                   snap.sends_of(MessageClass::GossipRequest);
  EXPECT_GT(direct_digests, 0u);
}

TEST(PublisherPull, FullRouteTraversalWhenTruncationDisabled) {
  // publisher_route_hops = 0 disables the truncation: every hop of the
  // stored route is visited over the overlay; the only direct traffic is
  // the reply.
  GossipConfig g = GossipHarness::default_gossip();
  g.publisher_route_hops = 0;
  GossipHarness h(4, Algorithm::PublisherPull, g);
  h.subscribe_and_settle({{3, 1}});
  h.start_recovery();
  const EventId lost_id = publish_with_gap(h, 0, 1, NodeId{2}, NodeId{3});
  h.run_for(2.0);
  EXPECT_TRUE(h.recovered(3, lost_id));
  const auto snap = h.stats().snapshot();
  EXPECT_EQ(snap.direct_sends, snap.sends_of(MessageClass::GossipReply) +
                                   snap.sends_of(MessageClass::GossipRequest));
}

TEST(PullRounds, SkipWhenNothingIsLost) {
  for (Algorithm a : {Algorithm::SubscriberPull, Algorithm::PublisherPull,
                      Algorithm::CombinedPull, Algorithm::RandomPull}) {
    GossipHarness h(3, a);
    h.subscribe_and_settle({{0, 1}, {2, 1}});
    h.start_recovery();
    (void)h.net().node(NodeId{0}).publish({Pattern{1}});
    h.run_for(1.0);
    EXPECT_EQ(h.stats().snapshot().gossip_sends(), 0u) << to_string(a);
    EXPECT_GT(h.protocol(2)->stats().rounds_skipped, 0u) << to_string(a);
  }
}

TEST(PullRounds, LostEntriesExpireAfterTtl) {
  GossipConfig g = GossipHarness::default_gossip();
  g.lost_entry_ttl = Duration::seconds(0.5);
  // Sole subscriber + subscriber pull: recovery is impossible, so the
  // entry must eventually be abandoned.
  GossipHarness h(3, Algorithm::SubscriberPull, g);
  h.subscribe_and_settle({{2, 1}});
  h.start_recovery();
  (void)publish_with_gap(h, 0, 1, NodeId{1}, NodeId{2});
  EXPECT_EQ(pull(h, 2)->lost().size(), 1u);
  h.run_for(1.5);
  EXPECT_TRUE(pull(h, 2)->lost().empty());
  EXPECT_GT(pull(h, 2)->lost().stats().expired, 0u);
}

TEST(PullRecovered, RecoveredEventRemovesAllItsLostEntries) {
  // An event matching two locally subscribed patterns creates two Lost
  // entries; its recovery must clear both.
  GossipHarness h(3, Algorithm::CombinedPull);
  h.subscribe_and_settle({{0, 1}, {0, 2}, {2, 1}, {2, 2}});

  // Detection is passive (no rounds yet), so the Lost entries are stable.
  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}, Pattern{2}});
  h.run_for(0.1);
  const EventPtr lost = pub.publish({Pattern{1}, Pattern{2}});
  h.drop_event_on_link(NodeId{1}, NodeId{2}, lost->id());
  h.run_for(0.1);
  (void)pub.publish({Pattern{1}, Pattern{2}});
  h.run_for(0.2);
  EXPECT_EQ(pull(h, 2)->lost().size(), 2u);

  h.start_recovery();
  h.run_for(2.0);
  EXPECT_TRUE(h.recovered(2, lost->id()));
  EXPECT_TRUE(pull(h, 2)->lost().empty());
}

}  // namespace
}  // namespace epicast
