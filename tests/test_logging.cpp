// Tests for the logging facility.
#include "epicast/common/logging.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log::level()) {}
  ~LogLevelGuard() { log::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, DefaultThresholdIsWarn) {
  LogLevelGuard guard;
  log::set_level(LogLevel::Warn);
  EXPECT_FALSE(log::enabled(LogLevel::Debug));
  EXPECT_FALSE(log::enabled(LogLevel::Info));
  EXPECT_TRUE(log::enabled(LogLevel::Warn));
  EXPECT_TRUE(log::enabled(LogLevel::Error));
}

TEST(Logging, OffDisablesEverything) {
  LogLevelGuard guard;
  log::set_level(LogLevel::Off);
  EXPECT_FALSE(log::enabled(LogLevel::Error));
  EXPECT_FALSE(log::enabled(LogLevel::Off));
}

TEST(Logging, TraceEnablesEverything) {
  LogLevelGuard guard;
  log::set_level(LogLevel::Trace);
  EXPECT_TRUE(log::enabled(LogLevel::Trace));
  EXPECT_TRUE(log::enabled(LogLevel::Error));
}

TEST(Logging, MacroDoesNotEvaluateBodyWhenDisabled) {
  LogLevelGuard guard;
  log::set_level(LogLevel::Error);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "x";
  };
  EPICAST_DEBUG("value: " << expensive());
  EXPECT_EQ(evaluations, 0);
  log::set_level(LogLevel::Debug);
  EPICAST_DEBUG("value: " << expensive());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace epicast
