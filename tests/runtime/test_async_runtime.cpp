// AsyncRuntime specifics beyond the shared seam conformance: the hard
// wire-sizing requirement (nominal sizing makes no sense over real
// datagrams — the bytes on the wire ARE the codec frames), ephemeral port
// resolution, synthetic inbound loss, and the oracle attachment over real
// traffic — WireRoundTripOracle fed from captured UDP frames.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "epicast/daemon/node.hpp"
#include "epicast/fault/plan.hpp"
#include "epicast/oracle/checks.hpp"
#include "epicast/oracle/oracle.hpp"
#include "epicast/pubsub/event.hpp"
#include "epicast/pubsub/messages.hpp"
#include "epicast/runtime/async_runtime.hpp"
#include "epicast/runtime/cluster.hpp"

namespace epicast {
namespace {

runtime::AsyncRuntimeConfig wire_config() {
  runtime::AsyncRuntimeConfig c;
  c.sizing = SizingMode::Wire;
  return c;
}

EventPtr make_event(std::uint32_t source, std::uint64_t seq) {
  return std::make_shared<EventData>(
      EventId{NodeId{source}, seq},
      std::vector<PatternSeq>{{Pattern{2}, SeqNo{seq}}}, 100,
      SimTime::zero());
}

// -- satellite: nominal sizing is a hard configuration error ------------------

TEST(AsyncRuntimeSizing, NominalSizingIsAHardError) {
  runtime::AsyncRuntimeConfig c;
  c.sizing = SizingMode::Nominal;
  try {
    runtime::AsyncRuntime rt(c);
    FAIL() << "AsyncRuntime accepted SizingMode::Nominal";
  } catch (const std::invalid_argument& e) {
    // The message must tell the operator what to change, not just reject.
    const std::string what = e.what();
    EXPECT_NE(what.find("wire"), std::string::npos) << what;
    EXPECT_NE(what.find("nominal"), std::string::npos) << what;
  }
}

TEST(AsyncRuntimeSizing, NodeDaemonRejectsNominalClusterConfig) {
  runtime::ClusterConfig cfg;
  cfg.endpoints = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  cfg.links = {{NodeId{0}, NodeId{1}}};
  cfg.subscriptions = {{NodeId{1}, Pattern{0}}};
  cfg.sizing = SizingMode::Nominal;
  EXPECT_THROW(daemon::NodeDaemon(cfg, NodeId{0}), std::invalid_argument);
}

TEST(AsyncRuntimeSizing, ClusterParserUnderstandsBothSizings) {
  const std::string base =
      "node 0 127.0.0.1 0\n"
      "node 1 127.0.0.1 0\n"
      "link 0 1\n"
      "sub 1 0\n";
  EXPECT_EQ(runtime::parse_cluster_config(base + "sizing wire\n").sizing,
            SizingMode::Wire);
  EXPECT_EQ(runtime::parse_cluster_config(base + "sizing nominal\n").sizing,
            SizingMode::Nominal);
}

TEST(AsyncRuntime, ZeroQueueCapacityRejected) {
  runtime::AsyncRuntimeConfig c = wire_config();
  c.inbound_queue_capacity = 0;
  EXPECT_THROW(runtime::AsyncRuntime rt(c), std::invalid_argument);
}

// -- endpoint management ------------------------------------------------------

TEST(AsyncRuntime, EphemeralPortResolvesOnAttach) {
  runtime::AsyncRuntime rt(wire_config());
  rt.set_peer(NodeId{0}, runtime::PeerEndpoint{"127.0.0.1", 0});
  EXPECT_EQ(rt.peer(NodeId{0}).port, 0);

  class NullSink final : public TransportReceiver {
    void on_overlay_message(NodeId, const MessagePtr&) override {}
    void on_direct_message(NodeId, const MessagePtr&) override {}
  } sink;
  rt.attach(NodeId{0}, sink);
  // The OS picked a concrete port and the peer table learned it, so other
  // local nodes (and the stats) see where this node actually listens.
  EXPECT_GT(rt.peer(NodeId{0}).port, 0);
}

// -- synthetic inbound loss ---------------------------------------------------

TEST(AsyncRuntime, InboundDropRateLosesEventsButNeverControl) {
  runtime::AsyncRuntimeConfig c = wire_config();
  c.inbound_drop_rate = 1.0;  // every droppable frame is dropped
  runtime::AsyncRuntime rt(c);
  rt.set_peer(NodeId{0}, runtime::PeerEndpoint{"127.0.0.1", 0});
  rt.set_peer(NodeId{1}, runtime::PeerEndpoint{"127.0.0.1", 0});
  rt.add_link(NodeId{0}, NodeId{1});

  struct CountSink final : TransportReceiver {
    int events = 0;
    int control = 0;
    void on_overlay_message(NodeId, const MessagePtr& msg) override {
      (msg->message_class() == MessageClass::Control ? control : events)++;
    }
    void on_direct_message(NodeId, const MessagePtr&) override {}
  } sinks[2];
  rt.attach(NodeId{0}, sinks[0]);
  rt.attach(NodeId{1}, sinks[1]);

  for (int i = 0; i < 5; ++i) {
    rt.send_overlay(NodeId{0}, NodeId{1},
                    std::make_shared<EventMessage>(
                        make_event(0, static_cast<std::uint64_t>(i)),
                        std::vector<NodeId>{}));
    rt.send_overlay(NodeId{0}, NodeId{1},
                    std::make_shared<SubscribeMessage>(Pattern{1}, true));
  }
  for (int i = 0; i < 20; ++i) rt.poll(Duration::millis(5));

  // Control frames model the lossless (TCP-backed) control channel and are
  // exempt from the synthetic drop, exactly like control_lossless in the
  // simulated transport.
  EXPECT_EQ(sinks[1].events, 0);
  EXPECT_EQ(sinks[1].control, 5);
  EXPECT_EQ(rt.stats().drops_injected, 5u);
}

// -- satellite: oracles over real traffic -------------------------------------

TEST(AsyncRuntimeOracles, WireRoundTripOracleVerifiesCapturedFrames) {
  runtime::AsyncRuntime rt(wire_config());
  rt.set_peer(NodeId{0}, runtime::PeerEndpoint{"127.0.0.1", 0});
  rt.set_peer(NodeId{1}, runtime::PeerEndpoint{"127.0.0.1", 0});
  rt.add_link(NodeId{0}, NodeId{1});

  class NullSink final : public TransportReceiver {
    void on_overlay_message(NodeId, const MessagePtr&) override {}
    void on_direct_message(NodeId, const MessagePtr&) override {}
  } sinks[2];
  rt.attach(NodeId{0}, sinks[0]);
  rt.attach(NodeId{1}, sinks[1]);

  oracle::OracleContext ctx;
  ctx.sizing = SizingMode::Wire;
  oracle::OracleSuite suite(ctx, oracle::FailMode::Record);
  auto wire = std::make_unique<oracle::WireRoundTripOracle>();
  oracle::WireRoundTripOracle* wire_ptr = wire.get();
  suite.add(std::move(wire));
  rt.add_observer(suite);  // send-side hook: verify_frame on every send

  // Receive-side hook: every frame that actually crossed the socket is
  // round-tripped through the codec, exactly as epicastd wires it.
  int frames_seen = 0;
  std::vector<std::uint8_t> last_frame;
  rt.set_frame_observer([&](NodeId, NodeId to, bool,
                            std::span<const std::uint8_t> frame,
                            const MessagePtr&) {
    ++frames_seen;
    last_frame.assign(frame.begin(), frame.end());
    wire_ptr->verify_bytes(to, frame);
  });

  rt.send_overlay(NodeId{0}, NodeId{1},
                  std::make_shared<EventMessage>(make_event(0, 7),
                                                 std::vector<NodeId>{}));
  rt.send_direct(NodeId{1}, NodeId{0},
                 std::make_shared<SubscribeMessage>(Pattern{4}, true));
  for (int i = 0; i < 20; ++i) rt.poll(Duration::millis(5));

  EXPECT_EQ(frames_seen, 2);
  EXPECT_GE(suite.checks(), 2u);
  EXPECT_TRUE(suite.violations().empty())
      << suite.violations().front().detail;

  // And the oracle is not vacuous: corrupting a captured frame fires it.
  ASSERT_FALSE(last_frame.empty());
  last_frame.back() ^= 0xff;
  wire_ptr->verify_bytes(NodeId{0}, last_frame);
  EXPECT_FALSE(suite.violations().empty());
}

// -- wire-level fault injection (tentpole) ------------------------------------

struct CountSink final : TransportReceiver {
  int events = 0;
  int control = 0;
  void on_overlay_message(NodeId, const MessagePtr& msg) override {
    (msg->message_class() == MessageClass::Control ? control : events)++;
  }
  void on_direct_message(NodeId, const MessagePtr&) override {}
};

runtime::AsyncRuntimeConfig faulty_config(const std::string& plan) {
  runtime::AsyncRuntimeConfig c = wire_config();
  std::string error;
  const auto parsed = fault::parse_plan(plan, &error);
  EXPECT_TRUE(parsed) << error;
  c.faults = *parsed;
  return c;
}

void two_node_pair(runtime::AsyncRuntime& rt, CountSink sinks[2]) {
  rt.set_peer(NodeId{0}, runtime::PeerEndpoint{"127.0.0.1", 0});
  rt.set_peer(NodeId{1}, runtime::PeerEndpoint{"127.0.0.1", 0});
  rt.add_link(NodeId{0}, NodeId{1});
  rt.attach(NodeId{0}, sinks[0]);
  rt.attach(NodeId{1}, sinks[1]);
}

TEST(AsyncRuntimeFaults, BurstLossDropsEventsButNeverControl) {
  // p_enter=1, loss_bad=1: the chain enters Bad on the first transition
  // (transition-then-loss) and r=1e-9 keeps it there — every non-control
  // frame is lost, exactly like a fade that outlasts the test.
  runtime::AsyncRuntime rt(faulty_config("burst(p=1,r=0.000000001)"));
  CountSink sinks[2];
  two_node_pair(rt, sinks);

  for (int i = 0; i < 5; ++i) {
    rt.send_overlay(NodeId{0}, NodeId{1},
                    std::make_shared<EventMessage>(
                        make_event(0, static_cast<std::uint64_t>(i)),
                        std::vector<NodeId>{}));
    rt.send_overlay(NodeId{0}, NodeId{1},
                    std::make_shared<SubscribeMessage>(Pattern{1}, true));
  }
  for (int i = 0; i < 20; ++i) rt.poll(Duration::millis(5));

  EXPECT_EQ(sinks[1].events, 0);
  EXPECT_EQ(sinks[1].control, 5);  // GE models the lossy data path only
  EXPECT_EQ(rt.stats().burst_drops, 5u);
  EXPECT_EQ(rt.stats().drops_injected, 0u);  // distinct from Bernoulli ε
}

TEST(AsyncRuntimeFaults, BurstWindowNotYetOpenDropsNothing) {
  runtime::AsyncRuntime rt(
      faulty_config("burst(p=1,r=0.000000001,start=3600)"));
  CountSink sinks[2];
  two_node_pair(rt, sinks);

  rt.send_overlay(NodeId{0}, NodeId{1},
                  std::make_shared<EventMessage>(make_event(0, 1),
                                                 std::vector<NodeId>{}));
  for (int i = 0; i < 20; ++i) rt.poll(Duration::millis(5));

  EXPECT_EQ(sinks[1].events, 1);
  EXPECT_EQ(rt.stats().burst_drops, 0u);
}

TEST(AsyncRuntimeFaults, BlackholeSilencesTheLinkIncludingControl) {
  // One link, partition(links=1): the victim choice has no freedom — the
  // 0–1 link is black for [at, heal), and unlike loss models a dead link
  // carries nothing, control included.
  runtime::AsyncRuntime rt(faulty_config("partition(links=1,at=0,heal=3600)"));
  CountSink sinks[2];
  two_node_pair(rt, sinks);

  rt.send_overlay(NodeId{0}, NodeId{1},
                  std::make_shared<EventMessage>(make_event(0, 1),
                                                 std::vector<NodeId>{}));
  rt.send_overlay(NodeId{0}, NodeId{1},
                  std::make_shared<SubscribeMessage>(Pattern{1}, true));
  for (int i = 0; i < 20; ++i) rt.poll(Duration::millis(5));

  EXPECT_EQ(sinks[1].events, 0);
  EXPECT_EQ(sinks[1].control, 0);
  EXPECT_EQ(rt.stats().blackhole_drops, 2u);
}

TEST(AsyncRuntimeFaults, SlowdownDelaysButStillDelivers) {
  runtime::AsyncRuntimeConfig c = faulty_config("slow(factor=0.01)");
  c.slow_bandwidth_bytes_per_s = 1.25e6;
  runtime::AsyncRuntime rt(c);
  CountSink sinks[2];
  two_node_pair(rt, sinks);

  rt.send_overlay(NodeId{0}, NodeId{1},
                  std::make_shared<EventMessage>(make_event(0, 1),
                                                 std::vector<NodeId>{}));
  for (int i = 0; i < 40; ++i) {
    rt.poll(Duration::millis(5));
    if (sinks[1].events > 0) break;
  }

  // ~150 wire bytes at 1.25e6·0.01 B/s ≈ 12 ms of injected serialisation
  // delay: the frame arrives, later, through an after() timer.
  EXPECT_EQ(sinks[1].events, 1);
  EXPECT_GE(rt.stats().slowdown_delays, 1u);
}

TEST(AsyncRuntimeFaults, ChurnSpecsAreRejected) {
  // Process death is real in daemon mode — the harness --chaos schedule
  // owns it; a runtime-simulated churn would be a lie.
  runtime::AsyncRuntimeConfig c =
      faulty_config("churn(period=1,down=0.3)");
  try {
    runtime::AsyncRuntime rt(c);
    FAIL() << "AsyncRuntime accepted a churn spec";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("chaos"), std::string::npos)
        << e.what();
  }
}

TEST(AsyncRuntimeFaults, LivenessHooksFeedTheStats) {
  runtime::AsyncRuntime rt(wire_config());
  rt.note_heartbeat_sent();
  rt.note_heartbeat_sent();
  rt.note_heartbeat_received();
  rt.note_peer_suspected();
  rt.note_peer_confirmed_dead();
  rt.note_restart_observed();
  const auto& st = rt.stats();
  EXPECT_EQ(st.heartbeats_sent, 2u);
  EXPECT_EQ(st.heartbeats_received, 1u);
  EXPECT_EQ(st.peers_suspected, 1u);
  EXPECT_EQ(st.peers_confirmed_dead, 1u);
  EXPECT_EQ(st.restarts_observed, 1u);
}

// -- transport stats ----------------------------------------------------------

TEST(AsyncRuntime, StatsCountBytesAndDatagrams) {
  runtime::AsyncRuntime rt(wire_config());
  rt.set_peer(NodeId{0}, runtime::PeerEndpoint{"127.0.0.1", 0});
  rt.set_peer(NodeId{1}, runtime::PeerEndpoint{"127.0.0.1", 0});
  rt.add_link(NodeId{0}, NodeId{1});
  class NullSink final : public TransportReceiver {
    void on_overlay_message(NodeId, const MessagePtr&) override {}
    void on_direct_message(NodeId, const MessagePtr&) override {}
  } sinks[2];
  rt.attach(NodeId{0}, sinks[0]);
  rt.attach(NodeId{1}, sinks[1]);

  rt.send_overlay(NodeId{0}, NodeId{1},
                  std::make_shared<SubscribeMessage>(Pattern{0}, true));
  for (int i = 0; i < 20; ++i) rt.poll(Duration::millis(5));

  const auto& st = rt.stats();
  EXPECT_EQ(st.datagrams_sent, 1u);
  EXPECT_EQ(st.datagrams_received, 1u);
  EXPECT_GT(st.bytes_sent, 0u);
  EXPECT_EQ(st.bytes_sent, st.bytes_received);
  EXPECT_EQ(st.send_failures, 0u);
  EXPECT_EQ(st.decode_errors, 0u);
}

}  // namespace
}  // namespace epicast
