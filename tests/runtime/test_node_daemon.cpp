// In-process epicastd clusters: several NodeDaemons, each owning its own
// AsyncRuntime and UDP socket, run in parallel threads over localhost and
// must reproduce the delivery behaviour the simulation defines — complete
// delivery without loss, recovery-driven delivery under synthetic loss,
// with the conformance oracles live on every node.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "epicast/daemon/node.hpp"
#include "epicast/runtime/cluster.hpp"

namespace epicast {
namespace {

/// Reserves `n` distinct free UDP ports by binding them all before
/// releasing any — the usual bind(0)/close trick, with the window between
/// close and the daemons' re-bind kept as small as possible.
std::vector<std::uint16_t> free_udp_ports(std::size_t n) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    fds.push_back(fd);
    ports.push_back(ntohs(addr.sin_port));
  }
  for (int fd : fds) ::close(fd);
  return ports;
}

/// A line cluster 0—1—…—(n-1): node 0 publishes, the tail node subscribes
/// to every pattern of a 1-pattern universe, so every event must reach it
/// across n-1 real UDP hops.
runtime::ClusterConfig line_cluster(std::uint32_t n, double drop_rate,
                                    double rate_hz, double run_s,
                                    double drain_s) {
  runtime::ClusterConfig cfg;
  const std::vector<std::uint16_t> ports = free_udp_ports(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    cfg.endpoints.push_back({"127.0.0.1", ports[i]});
  }
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    cfg.links.emplace_back(NodeId{i}, NodeId{i + 1});
  }
  cfg.pattern_universe = 1;
  cfg.patterns_per_event = 1;
  cfg.subscriptions.emplace_back(NodeId{n - 1}, Pattern{0});
  cfg.publishers = {NodeId{0}};
  cfg.publish_rate_hz = rate_hz;
  cfg.event_payload_bytes = 200;
  cfg.settle_seconds = 0.3;  // covers thread startup: all sockets bound
  cfg.run_seconds = run_s;
  cfg.drain_seconds = drain_s;
  cfg.drop_rate = drop_rate;
  cfg.seed = 42;
  return cfg;
}

/// Runs one daemon per node to completion, all in parallel.
void run_cluster(std::vector<std::unique_ptr<daemon::NodeDaemon>>& daemons) {
  std::vector<std::thread> threads;
  threads.reserve(daemons.size());
  for (auto& d : daemons) {
    threads.emplace_back([&d]() { d->run(); });
  }
  for (auto& t : threads) t.join();
}

TEST(NodeDaemon, LosslessLineClusterDeliversEverything) {
  runtime::ClusterConfig cfg =
      line_cluster(3, /*drop_rate=*/0.0, /*rate_hz=*/25.0,
                   /*run_s=*/1.0, /*drain_s=*/0.8);
  std::vector<std::unique_ptr<daemon::NodeDaemon>> daemons;
  for (std::uint32_t i = 0; i < 3; ++i) {
    daemons.push_back(
        std::make_unique<daemon::NodeDaemon>(cfg, NodeId{i}));
  }
  run_cluster(daemons);

  const auto& published = daemons[0]->published();
  const auto& delivered = daemons[2]->delivered();
  ASSERT_GT(published.size(), 0u) << "publisher generated no workload";

  std::set<std::uint64_t> delivered_seqs;
  for (const auto& d : delivered) {
    EXPECT_EQ(d.source, 0u);
    delivered_seqs.insert(d.seq);
  }
  // No loss, two real UDP hops: every published event reaches the
  // subscriber exactly once.
  EXPECT_EQ(delivered_seqs.size(), delivered.size()) << "duplicate delivery";
  for (const auto& p : published) {
    EXPECT_TRUE(delivered_seqs.count(p.seq))
        << "event " << p.seq << " never delivered";
  }

  // The middle node forwards but does not deliver (it has no subscription).
  EXPECT_TRUE(daemons[1]->delivered().empty());

  // Oracles were live on every node and saw traffic.
  for (const auto& d : daemons) {
    ASSERT_NE(d->oracles(), nullptr);
    EXPECT_GT(d->oracles()->checks(), 0u);
  }
}

TEST(NodeDaemon, LossyClusterRecoversViaCombinedPull) {
  runtime::ClusterConfig cfg =
      line_cluster(3, /*drop_rate=*/0.08, /*rate_hz=*/40.0,
                   /*run_s=*/1.2, /*drain_s=*/1.5);
  cfg.algorithm = Algorithm::CombinedPull;
  std::vector<std::unique_ptr<daemon::NodeDaemon>> daemons;
  for (std::uint32_t i = 0; i < 3; ++i) {
    daemons.push_back(
        std::make_unique<daemon::NodeDaemon>(cfg, NodeId{i}));
  }
  run_cluster(daemons);

  const auto& published = daemons[0]->published();
  const auto& delivered = daemons[2]->delivered();
  ASSERT_GT(published.size(), 10u);

  std::set<std::uint64_t> delivered_seqs;
  for (const auto& d : delivered) delivered_seqs.insert(d.seq);
  EXPECT_EQ(delivered_seqs.size(), delivered.size()) << "duplicate delivery";

  // With ε=8% per hop over two hops, raw delivery would be ≈0.85; pull
  // recovery must close most of the gap. The tail events of the run can be
  // undetectably lost (no later event reveals the gap), so the bound is
  // deliberately loose.
  const double delivery = static_cast<double>(delivered_seqs.size()) /
                          static_cast<double>(published.size());
  EXPECT_GE(delivery, 0.9) << delivered_seqs.size() << "/"
                           << published.size();

  // Loss actually happened and recovery actually ran — otherwise this test
  // proves nothing about the pull machinery over real sockets.
  std::uint64_t injected = 0;
  for (auto& d : daemons) injected += d->runtime().stats().drops_injected;
  EXPECT_GT(injected, 0u);
  const bool recovered_any =
      std::any_of(delivered.begin(), delivered.end(),
                  [](const auto& d) { return d.recovered; });
  if (delivery < 1.0 || injected > 0) {
    EXPECT_TRUE(recovered_any) << "loss injected but nothing recovered";
  }
}

TEST(NodeDaemon, StatsJsonCarriesTheAgreedKeys) {
  runtime::ClusterConfig cfg =
      line_cluster(2, /*drop_rate=*/0.0, /*rate_hz=*/30.0,
                   /*run_s=*/0.5, /*drain_s=*/0.3);
  std::vector<std::unique_ptr<daemon::NodeDaemon>> daemons;
  daemons.push_back(std::make_unique<daemon::NodeDaemon>(cfg, NodeId{0}));
  daemons.push_back(std::make_unique<daemon::NodeDaemon>(cfg, NodeId{1}));
  run_cluster(daemons);

  for (const auto& d : daemons) {
    const std::string json = d->stats_json();
    for (const char* key :
         {"\"node\"", "\"algorithm\"", "\"subscriptions\"", "\"published\"",
          "\"delivered\"", "\"transport\"", "\"oracle_checks\"",
          "\"result\""}) {
      EXPECT_NE(json.find(key), std::string::npos)
          << "missing " << key << " in " << json.substr(0, 200);
    }
  }
}

// -- live subscription handling (tentpole: restart re-announce path) ----------

TEST(NodeDaemon, LiveSubscribeAndUnsubscribeOverTheWire) {
  // Three daemons, polled from this thread instead of run(): node 2 has no
  // configured subscription, subscribes mid-run (a real SubscribeMessage
  // flood over UDP), receives an event published at node 0, unsubscribes,
  // and stops receiving — the exact machinery a restarted daemon uses to
  // re-announce itself.
  runtime::ClusterConfig cfg =
      line_cluster(3, /*drop_rate=*/0.0, /*rate_hz=*/0.0,
                   /*run_s=*/5.0, /*drain_s=*/1.0);
  cfg.subscriptions = {{NodeId{1}, Pattern{0}}};  // node 2 starts cold
  std::vector<std::unique_ptr<daemon::NodeDaemon>> daemons;
  for (std::uint32_t i = 0; i < 3; ++i) {
    daemons.push_back(std::make_unique<daemon::NodeDaemon>(cfg, NodeId{i}));
  }
  auto poll_all = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (auto& d : daemons) d->runtime().poll(Duration::millis(2));
    }
  };

  daemons[0]->dispatcher().publish({Pattern{0}});
  poll_all(20);
  EXPECT_EQ(daemons[2]->delivered().size(), 0u);

  daemons[2]->dispatcher().subscribe(Pattern{0});
  poll_all(20);  // sub flood: 2 → 1 → 0
  daemons[0]->dispatcher().publish({Pattern{0}});
  poll_all(20);
  ASSERT_EQ(daemons[2]->delivered().size(), 1u);
  EXPECT_EQ(daemons[2]->delivered()[0].source, 0u);

  daemons[2]->dispatcher().unsubscribe(Pattern{0});
  poll_all(20);
  daemons[0]->dispatcher().publish({Pattern{0}});
  poll_all(20);
  EXPECT_EQ(daemons[2]->delivered().size(), 1u)
      << "delivery after live unsubscribe";

  // The latency histogram saw the one delivery.
  EXPECT_EQ(daemons[2]->latency().count(), 1u);
}

// -- failure detection (tentpole) ---------------------------------------------

TEST(NodeDaemon, HeartbeatsFlowAndAreCounted) {
  runtime::ClusterConfig cfg =
      line_cluster(2, /*drop_rate=*/0.0, /*rate_hz=*/5.0,
                   /*run_s=*/0.8, /*drain_s=*/0.3);
  cfg.heartbeat_interval_ms = 50.0;
  std::vector<std::unique_ptr<daemon::NodeDaemon>> daemons;
  daemons.push_back(std::make_unique<daemon::NodeDaemon>(cfg, NodeId{0}));
  daemons.push_back(std::make_unique<daemon::NodeDaemon>(cfg, NodeId{1}));
  run_cluster(daemons);

  for (auto& d : daemons) {
    ASSERT_NE(d->failure_detector(), nullptr);
    const auto& st = d->runtime().stats();
    EXPECT_GT(st.heartbeats_sent, 0u);
    EXPECT_GT(st.heartbeats_received, 0u);
    // Both peers lived: no suspicion, no deaths, no restarts observed.
    EXPECT_EQ(st.peers_suspected, 0u);
    EXPECT_EQ(st.peers_confirmed_dead, 0u);
    EXPECT_EQ(st.restarts_observed, 0u);
    const std::string json = d->stats_json();
    for (const char* key :
         {"\"heartbeats_sent\"", "\"heartbeats_received\"",
          "\"peers_suspected\"", "\"peers_confirmed_dead\"",
          "\"restarts_observed\"", "\"burst_drops\"", "\"blackhole_drops\"",
          "\"slowdown_delays\"", "\"incarnation\"", "\"restarted\"",
          "\"latency\""}) {
      EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
    }
  }
}

TEST(NodeDaemon, HeartbeatZeroDisablesTheDetector) {
  runtime::ClusterConfig cfg =
      line_cluster(2, /*drop_rate=*/0.0, /*rate_hz=*/5.0,
                   /*run_s=*/0.4, /*drain_s=*/0.2);
  cfg.heartbeat_interval_ms = 0.0;
  daemon::NodeDaemon d(cfg, NodeId{0});
  EXPECT_EQ(d.failure_detector(), nullptr);
}

TEST(NodeDaemon, SilentPeerIsSuspectedThenConfirmedDead) {
  // Node 1 never runs: node 0's detector must walk the full escalation —
  // suspect after 3 missed beats, dead after 8 — against real silence.
  runtime::ClusterConfig cfg =
      line_cluster(2, /*drop_rate=*/0.0, /*rate_hz=*/0.0,
                   /*run_s=*/1.5, /*drain_s=*/0.2);
  cfg.heartbeat_interval_ms = 50.0;
  std::vector<std::unique_ptr<daemon::NodeDaemon>> daemons;
  daemons.push_back(std::make_unique<daemon::NodeDaemon>(cfg, NodeId{0}));
  run_cluster(daemons);

  const auto& st = daemons[0]->runtime().stats();
  EXPECT_GE(st.peers_suspected, 1u);
  EXPECT_GE(st.peers_confirmed_dead, 1u);
  EXPECT_TRUE(daemons[0]->failure_detector()->confirmed_dead(NodeId{1}));
}

// -- crash-restart recovery (tentpole) ----------------------------------------

TEST(NodeDaemon, JournalReplayRestoresStateAcrossRestart) {
  const std::string journal =
      testing::TempDir() + "epicast_daemon_journal_" +
      std::to_string(::getpid());
  std::remove(journal.c_str());

  runtime::ClusterConfig cfg =
      line_cluster(2, /*drop_rate=*/0.0, /*rate_hz=*/30.0,
                   /*run_s=*/0.6, /*drain_s=*/0.3);
  daemon::DaemonOptions opts;
  opts.journal_path = journal;

  std::size_t first_life_published = 0;
  std::size_t first_life_delivered = 0;
  {
    std::vector<std::unique_ptr<daemon::NodeDaemon>> daemons;
    daemons.push_back(
        std::make_unique<daemon::NodeDaemon>(cfg, NodeId{0}, opts));
    daemons.push_back(std::make_unique<daemon::NodeDaemon>(cfg, NodeId{1}));
    run_cluster(daemons);
    EXPECT_EQ(daemons[0]->incarnation(), 1u);
    EXPECT_FALSE(daemons[0]->restarted());
    first_life_published = daemons[0]->published().size();
    first_life_delivered = daemons[0]->delivered().size();
    ASSERT_GT(first_life_published, 0u);
  }

  // Second incarnation: same journal, fresh process state. The replay must
  // restore the cumulative logs, the boot count, and the id sequence — the
  // next publish continues where the first life stopped.
  daemon::NodeDaemon reborn(cfg, NodeId{0}, opts);
  EXPECT_EQ(reborn.incarnation(), 2u);
  EXPECT_TRUE(reborn.restarted());
  EXPECT_EQ(reborn.published().size(), first_life_published);
  EXPECT_EQ(reborn.delivered().size(), first_life_delivered);
  const EventPtr next = reborn.dispatcher().publish({Pattern{0}});
  EXPECT_EQ(next->id().source_seq, first_life_published);
  // Replayed ids are marked seen: a re-gossiped copy of a first-life event
  // is a duplicate, not a second delivery (the unique-delivery oracle
  // stays true across the crash).
  EXPECT_TRUE(reborn.dispatcher().has_seen(EventId{NodeId{0}, 0}));

  std::remove(journal.c_str());
  std::remove((journal + ".cache").c_str());
}

TEST(NodeDaemon, StopFlagEndsTheRunEarly) {
  runtime::ClusterConfig cfg =
      line_cluster(2, /*drop_rate=*/0.0, /*rate_hz=*/5.0,
                   /*run_s=*/30.0, /*drain_s=*/30.0);  // would run a minute
  daemon::NodeDaemon d(cfg, NodeId{0});
  volatile std::sig_atomic_t stop = 0;
  std::thread stopper([&stop]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop = 1;
  });
  const auto t0 = std::chrono::steady_clock::now();
  d.run(&stop);
  stopper.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  // A stopped daemon still produces a coherent stats document.
  EXPECT_NE(d.stats_json().find("\"node\""), std::string::npos);
}

}  // namespace
}  // namespace epicast
