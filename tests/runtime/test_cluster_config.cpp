// The cluster config file is the only shared state of an epicastd
// deployment — every daemon parses the same bytes and must agree on the
// topology, routes, and workload it implies. These tests pin the directive
// grammar, the line-numbered syntax errors, and the cross-field validation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "epicast/runtime/cluster.hpp"

namespace epicast::runtime {
namespace {

const std::string kMinimal =
    "node 0 127.0.0.1 9000\n"
    "node 1 127.0.0.1 9001\n"
    "link 0 1\n"
    "sub 1 3\n";

TEST(ClusterConfig, ParsesMinimalCluster) {
  const ClusterConfig cfg = parse_cluster_config(kMinimal);
  ASSERT_EQ(cfg.node_count(), 2u);
  EXPECT_EQ(cfg.endpoints[0].host, "127.0.0.1");
  EXPECT_EQ(cfg.endpoints[0].port, 9000);
  EXPECT_EQ(cfg.endpoints[1].port, 9001);
  ASSERT_EQ(cfg.links.size(), 1u);
  EXPECT_EQ(cfg.links[0].first, NodeId{0});
  EXPECT_EQ(cfg.links[0].second, NodeId{1});
  ASSERT_EQ(cfg.subscriptions.size(), 1u);
  EXPECT_EQ(cfg.subscriptions[0].first, NodeId{1});
  EXPECT_EQ(cfg.subscriptions[0].second, Pattern{3});
  // Defaults: the paper's combined pull with wire sizing and oracles on.
  EXPECT_EQ(cfg.algorithm, Algorithm::CombinedPull);
  EXPECT_EQ(cfg.sizing, SizingMode::Wire);
  EXPECT_TRUE(cfg.oracles);
}

TEST(ClusterConfig, ParsesAllKnobs) {
  const ClusterConfig cfg = parse_cluster_config(
      "# full knob coverage\n"
      "node 0 10.0.0.1 9000\n"
      "node 1 10.0.0.2 9001   # trailing comment\n"
      "link 0 1\n"
      "sub 0 2\n"
      "sub 1 5\n"
      "algorithm push\n"
      "gossip-interval-ms 25\n"
      "beta 500\n"
      "pforward 0.08\n"
      "psource 0.5\n"
      "request-timeout-ms 90\n"
      "pattern-universe 32\n"
      "patterns-per-event 2\n"
      "payload-bytes 512\n"
      "rate 42.5\n"
      "publisher 0\n"
      "settle 0.5\n"
      "run 3\n"
      "drain 1.5\n"
      "drop-rate 0.01\n"
      "seed 99\n"
      "sizing wire\n"
      "queue-capacity 128\n"
      "oracles off\n");
  EXPECT_EQ(cfg.algorithm, Algorithm::Push);
  EXPECT_EQ(cfg.gossip.interval, Duration::millis(25));
  EXPECT_EQ(cfg.gossip.buffer_size, 500u);
  EXPECT_DOUBLE_EQ(cfg.gossip.forward_probability, 0.08);
  EXPECT_DOUBLE_EQ(cfg.gossip.source_probability, 0.5);
  EXPECT_EQ(cfg.gossip.request_timeout, Duration::millis(90));
  EXPECT_EQ(cfg.pattern_universe, 32u);
  EXPECT_EQ(cfg.patterns_per_event, 2u);
  EXPECT_EQ(cfg.event_payload_bytes, 512u);
  EXPECT_DOUBLE_EQ(cfg.publish_rate_hz, 42.5);
  ASSERT_EQ(cfg.publishers.size(), 1u);
  EXPECT_EQ(cfg.publishers[0], NodeId{0});
  EXPECT_DOUBLE_EQ(cfg.settle_seconds, 0.5);
  EXPECT_DOUBLE_EQ(cfg.run_seconds, 3.0);
  EXPECT_DOUBLE_EQ(cfg.drain_seconds, 1.5);
  EXPECT_DOUBLE_EQ(cfg.drop_rate, 0.01);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.queue_capacity, 128u);
  EXPECT_FALSE(cfg.oracles);
}

TEST(ClusterConfig, AlgorithmNamesMatchSimCli) {
  EXPECT_EQ(parse_algorithm_name("no-recovery"), Algorithm::NoRecovery);
  EXPECT_EQ(parse_algorithm_name("none"), Algorithm::NoRecovery);
  EXPECT_EQ(parse_algorithm_name("push"), Algorithm::Push);
  EXPECT_EQ(parse_algorithm_name("subscriber-pull"),
            Algorithm::SubscriberPull);
  EXPECT_EQ(parse_algorithm_name("publisher-pull"), Algorithm::PublisherPull);
  EXPECT_EQ(parse_algorithm_name("combined-pull"), Algorithm::CombinedPull);
  EXPECT_EQ(parse_algorithm_name("random-pull"), Algorithm::RandomPull);
  EXPECT_THROW(parse_algorithm_name("lazy-pull"), std::invalid_argument);
}

void expect_error(const std::string& text, const std::string& needle) {
  try {
    parse_cluster_config(text);
    FAIL() << "expected invalid_argument mentioning '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ClusterConfig, SyntaxErrorsCarryLineNumbers) {
  expect_error(kMinimal + "bogus-directive 1\n", "line 5");
  expect_error(kMinimal + "bogus-directive 1\n", "bogus-directive");
  expect_error("node 0 127.0.0.1\n", "'node' takes 3");
  expect_error(kMinimal + "rate fast\n", "expected a number");
  expect_error(kMinimal + "seed abc\n", "unsigned");
  expect_error(kMinimal + "sizing fancy\n", "'wire' or 'nominal'");
  expect_error(kMinimal + "oracles maybe\n", "'on' or 'off'");
  expect_error("node 0 127.0.0.1 70000\n", "port out of range");
}

TEST(ClusterConfig, ValidationCatchesInconsistencies) {
  expect_error("", "no nodes");
  // Sparse ids: node 2 declared without node 1.
  expect_error("node 0 127.0.0.1 9000\nnode 2 127.0.0.1 9002\n", "dense");
  expect_error(kMinimal + "link 0 5\n", "outside");
  expect_error(kMinimal + "link 1 1\n", "self");
  expect_error(kMinimal + "sub 0 99\n", "universe");
  expect_error(kMinimal + "publisher 9\n", "outside");
  expect_error(kMinimal + "patterns-per-event 40\n", "patterns-per-event");
  expect_error(kMinimal + "drop-rate 1.0\n", "drop-rate");
  expect_error(kMinimal + "run 0\n", "run");
  expect_error(kMinimal + "queue-capacity 0\n", "queue-capacity");
  expect_error(kMinimal + "pforward 1.5\n", "pforward");
}

TEST(ClusterConfig, ParsesLiveClusterDirectives) {
  const ClusterConfig cfg = parse_cluster_config(
      kMinimal +
      "heartbeat-interval-ms 125\n"
      "epoch-ns 123456789012345\n"
      "request-timeout-ms 80\n"
      "faults burst(p=0.05,r=0.25);slow(factor=0.5,start=1,stop=2)\n");
  EXPECT_DOUBLE_EQ(cfg.heartbeat_interval_ms, 125.0);
  EXPECT_EQ(cfg.clock_epoch_ns, 123456789012345);
  EXPECT_TRUE(cfg.request_timeout_set);
  ASSERT_EQ(cfg.faults.bursts.size(), 1u);
  EXPECT_DOUBLE_EQ(cfg.faults.bursts[0].channel.p_enter, 0.05);
  ASSERT_EQ(cfg.faults.slows.size(), 1u);
  EXPECT_DOUBLE_EQ(cfg.faults.slows[0].factor, 0.5);
}

TEST(ClusterConfig, DefaultsLeaveLiveKnobsNeutral) {
  const ClusterConfig cfg = parse_cluster_config(kMinimal);
  // A config that does not mention request-timeout-ms leaves the flag
  // unset, so daemon mode may apply its retry-hardening default without
  // overriding an operator's explicit choice.
  EXPECT_FALSE(cfg.request_timeout_set);
  EXPECT_TRUE(cfg.faults.empty());
  EXPECT_EQ(cfg.clock_epoch_ns, -1);
}

TEST(ClusterConfig, LiveDirectiveErrorsAreCaught) {
  expect_error(kMinimal + "heartbeat-interval-ms -1\n", "heartbeat");
  expect_error(kMinimal + "epoch-ns xyz\n", "integer");
  expect_error(kMinimal + "faults nonsense(\n", "fault plan");
  // Churn means simulated process death — real daemons die for real; the
  // harness --chaos schedule owns that.
  expect_error(kMinimal + "faults churn(period=1,down=0.5)\n", "chaos");
}

TEST(ClusterConfig, LoadReportsUnreadablePath) {
  EXPECT_THROW(load_cluster_config("/nonexistent/cluster.conf"),
               std::runtime_error);
}

}  // namespace
}  // namespace epicast::runtime
