// Seam conformance: both Runtime backends must honour the same contract —
// timer deadline ordering with FIFO tie-break, one-shot cancellation
// semantics, a monotonic clock, periodic-timer lifecycle, and transport
// delivery with correct sender/channel attribution. The protocol layer is
// written against exactly these properties; a backend that violates one
// breaks gossip scheduling in ways unit tests of the protocols would only
// catch indirectly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "epicast/net/topology.hpp"
#include "epicast/net/transport.hpp"
#include "epicast/pubsub/messages.hpp"
#include "epicast/runtime/async_runtime.hpp"
#include "epicast/runtime/runtime.hpp"
#include "epicast/runtime/sim_runtime.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {
namespace {

/// One backend under test: the seam plus a way to let its time pass.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual runtime::Runtime& rt() = 0;
  /// Runs the backend until at least `d` of its time has passed.
  virtual void advance(Duration d) = 0;
};

class SimBackend final : public Backend {
 public:
  SimBackend() : sim_(1), rt_(sim_) {}
  runtime::Runtime& rt() override { return rt_; }
  void advance(Duration d) override { sim_.run_until(sim_.now() + d); }

 private:
  Simulator sim_;
  runtime::SimRuntime rt_;
};

class AsyncBackend final : public Backend {
 public:
  AsyncBackend() : rt_(config()) {}
  runtime::Runtime& rt() override { return rt_; }
  void advance(Duration d) override { rt_.run_for(d); }

  runtime::AsyncRuntime& async() { return rt_; }

 private:
  static runtime::AsyncRuntimeConfig config() {
    runtime::AsyncRuntimeConfig c;
    c.seed = 1;
    c.sizing = SizingMode::Wire;
    return c;
  }
  runtime::AsyncRuntime rt_;
};

class RuntimeConformanceTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Backend> make_backend() {
    if (std::string(GetParam()) == "sim") {
      return std::make_unique<SimBackend>();
    }
    return std::make_unique<AsyncBackend>();
  }
};

TEST_P(RuntimeConformanceTest, TimersFireInDeadlineOrderFifoOnTies) {
  auto b = make_backend();
  std::vector<char> order;
  // A and C share a deadline; A was scheduled first and must fire first.
  b->rt().after(Duration::millis(20), [&order]() { order.push_back('A'); });
  b->rt().after(Duration::millis(5), [&order]() { order.push_back('B'); });
  b->rt().after(Duration::millis(20), [&order]() { order.push_back('C'); });
  b->advance(Duration::millis(60));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 'B');
  EXPECT_EQ(order[1], 'A');
  EXPECT_EQ(order[2], 'C');
}

TEST_P(RuntimeConformanceTest, CancelPreventsCallbackExactlyOnce) {
  auto b = make_backend();
  bool fired = false;
  runtime::TimerHandle h =
      b->rt().after(Duration::millis(10), [&fired]() { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());       // first cancel wins
  EXPECT_FALSE(h.cancel());      // second is a no-op
  EXPECT_FALSE(h.pending());
  b->advance(Duration::millis(40));
  EXPECT_FALSE(fired);
}

TEST_P(RuntimeConformanceTest, CancelAfterFiringReportsNotPending) {
  auto b = make_backend();
  bool fired = false;
  runtime::TimerHandle h =
      b->rt().after(Duration::millis(5), [&fired]() { fired = true; });
  b->advance(Duration::millis(40));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST_P(RuntimeConformanceTest, ClockIsMonotonicAndAdvances) {
  auto b = make_backend();
  const SimTime t0 = b->rt().now();
  EXPECT_GE(b->rt().now(), t0);
  b->advance(Duration::millis(10));
  const SimTime t1 = b->rt().now();
  EXPECT_GT(t1, t0);
  b->advance(Duration::millis(10));
  EXPECT_GE(b->rt().now(), t1);
}

TEST_P(RuntimeConformanceTest, TimerSeesNonDecreasingTimeAtFiring) {
  auto b = make_backend();
  const SimTime scheduled_at = b->rt().now();
  SimTime fired_at = SimTime::zero();
  b->rt().after(Duration::millis(10),
                [&]() { fired_at = b->rt().now(); });
  b->advance(Duration::millis(50));
  ASSERT_GT(fired_at, SimTime::zero());
  EXPECT_GE((fired_at - scheduled_at).count_nanos(),
            Duration::millis(9).count_nanos());
}

TEST_P(RuntimeConformanceTest, PeriodicTimerTicksAndStops) {
  auto b = make_backend();
  int ticks = 0;
  runtime::PeriodicTimer t = b->rt().every(
      Duration::millis(5), Duration::millis(5), [&ticks]() { ++ticks; });
  EXPECT_TRUE(t.running());
  b->advance(Duration::millis(40));
  EXPECT_GE(ticks, 2);  // async timing is approximate; sim would give 8
  t.stop();
  EXPECT_FALSE(t.running());
  const int at_stop = ticks;
  b->advance(Duration::millis(30));
  EXPECT_EQ(ticks, at_stop);
}

TEST_P(RuntimeConformanceTest, ForkRngStreamsDiffer) {
  auto b = make_backend();
  Rng a = b->rt().fork_rng();
  Rng c = b->rt().fork_rng();
  bool differ = false;
  for (int i = 0; i < 8; ++i) {
    if (a.next() != c.next()) differ = true;
  }
  EXPECT_TRUE(differ);
}

INSTANTIATE_TEST_SUITE_P(Backends, RuntimeConformanceTest,
                         ::testing::Values("sim", "async"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// -- transport conformance ----------------------------------------------------
// Delivery attribution (sender id, channel) and stale-route drops must look
// identical above the seam whether the bytes crossed a simulated link or a
// real socket.

struct Received {
  NodeId from;
  bool overlay;
  MessageClass cls;
};

class Sink final : public TransportReceiver {
 public:
  void on_overlay_message(NodeId from, const MessagePtr& msg) override {
    received.push_back({from, true, msg->message_class()});
  }
  void on_direct_message(NodeId from, const MessagePtr& msg) override {
    received.push_back({from, false, msg->message_class()});
  }
  std::vector<Received> received;
};

MessagePtr make_sub_message() {
  return std::make_shared<SubscribeMessage>(Pattern{3}, true);
}

void check_transport_contract(runtime::Transport& tr, Sink sinks[3],
                              const std::function<void()>& pump) {
  // 0—1 linked: overlay delivery carries the sender and the channel.
  tr.send_overlay(NodeId{0}, NodeId{1}, make_sub_message());
  pump();
  ASSERT_EQ(sinks[1].received.size(), 1u);
  EXPECT_EQ(sinks[1].received[0].from, NodeId{0});
  EXPECT_TRUE(sinks[1].received[0].overlay);
  EXPECT_EQ(sinks[1].received[0].cls, MessageClass::Control);

  // Direct channel ignores overlay links (0—2 are not neighbours).
  ASSERT_FALSE(tr.has_link(NodeId{0}, NodeId{2}));
  tr.send_direct(NodeId{0}, NodeId{2}, make_sub_message());
  pump();
  ASSERT_EQ(sinks[2].received.size(), 1u);
  EXPECT_EQ(sinks[2].received[0].from, NodeId{0});
  EXPECT_FALSE(sinks[2].received[0].overlay);

  // Overlay without a link: dropped, never delivered.
  tr.send_overlay(NodeId{0}, NodeId{2}, make_sub_message());
  pump();
  EXPECT_EQ(sinks[2].received.size(), 1u);

  // neighbors() reflects the line topology.
  ASSERT_EQ(tr.neighbors(NodeId{1}).size(), 2u);
  EXPECT_EQ(tr.node_count(), 3u);
}

TEST(TransportConformance, SimBackendHonoursContract) {
  Simulator sim(1);
  Topology topo = Topology::line(3);
  TransportConfig tc;
  tc.link.loss_rate = 0.0;
  tc.direct_loss_rate = 0.0;
  Transport transport(sim, topo, tc);
  runtime::SimRuntime rt(sim, &transport);
  Sink sinks[3];
  for (std::uint32_t i = 0; i < 3; ++i) {
    rt.transport().attach(NodeId{i}, sinks[i]);
  }
  check_transport_contract(rt.transport(), sinks, [&sim]() {
    sim.run_until(sim.now() + Duration::seconds(1.0));
  });
}

TEST(TransportConformance, AsyncBackendHonoursContract) {
  runtime::AsyncRuntimeConfig rc;
  rc.sizing = SizingMode::Wire;
  runtime::AsyncRuntime rt(rc);
  for (std::uint32_t i = 0; i < 3; ++i) {
    rt.set_peer(NodeId{i}, runtime::PeerEndpoint{"127.0.0.1", 0});
  }
  rt.add_link(NodeId{0}, NodeId{1});
  rt.add_link(NodeId{1}, NodeId{2});
  Sink sinks[3];
  for (std::uint32_t i = 0; i < 3; ++i) {
    rt.attach(NodeId{i}, sinks[i]);
  }
  check_transport_contract(rt, sinks, [&rt]() {
    // A few loop turns so the datagram crosses the loopback and the queue.
    for (int i = 0; i < 20; ++i) rt.poll(Duration::millis(5));
  });
  EXPECT_EQ(rt.stats().drops_no_link, 1u);
  EXPECT_EQ(rt.stats().decode_errors, 0u);
}

TEST(TransportConformance, AsyncBoundedQueueDropsNewestOnOverflow) {
  runtime::AsyncRuntimeConfig rc;
  rc.sizing = SizingMode::Wire;
  rc.inbound_queue_capacity = 2;
  runtime::AsyncRuntime rt(rc);
  rt.set_peer(NodeId{0}, runtime::PeerEndpoint{"127.0.0.1", 0});
  rt.set_peer(NodeId{1}, runtime::PeerEndpoint{"127.0.0.1", 0});
  Sink sinks[2];
  rt.attach(NodeId{0}, sinks[0]);
  rt.attach(NodeId{1}, sinks[1]);

  // Burst without polling: the datagrams pile up in the kernel buffer, one
  // drain sees them all, and the bounded queue keeps only its capacity.
  constexpr int kBurst = 30;
  for (int i = 0; i < kBurst; ++i) {
    rt.send_direct(NodeId{0}, NodeId{1}, make_sub_message());
  }
  for (int i = 0; i < 20; ++i) rt.poll(Duration::millis(5));

  const auto& st = rt.stats();
  EXPECT_EQ(st.datagrams_sent, static_cast<std::uint64_t>(kBurst));
  EXPECT_GE(st.queue_overflows, 1u);
  EXPECT_LT(sinks[1].received.size(), static_cast<std::size_t>(kBurst));
  // Nothing vanished unaccounted: every received datagram was either
  // delivered or counted as an overflow drop.
  EXPECT_EQ(st.datagrams_received,
            sinks[1].received.size() + st.queue_overflows);
}

}  // namespace
}  // namespace epicast
