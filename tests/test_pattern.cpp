// Unit and property tests for the pattern universe: distinct sampling,
// uniformity, and the analytical match probability used by Fig. 7.
#include "epicast/pubsub/pattern.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace epicast {
namespace {

TEST(PatternUniverse, AllEnumeratesEverything) {
  PatternUniverse u(5);
  const auto all = u.all();
  ASSERT_EQ(all.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(all[i], Pattern{i});
  EXPECT_EQ(u.at(3), Pattern{3});
}

TEST(PatternUniverse, SampleDistinctIsDistinctSortedAndInRange) {
  PatternUniverse u(70);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = u.sample_distinct(3, rng);
    ASSERT_EQ(sample.size(), 3u);
    EXPECT_LT(sample[0], sample[1]);
    EXPECT_LT(sample[1], sample[2]);
    EXPECT_LT(sample[2].value(), 70u);
  }
}

TEST(PatternUniverse, SampleAllYieldsWholeUniverse) {
  PatternUniverse u(8);
  Rng rng(3);
  const auto sample = u.sample_distinct(8, rng);
  EXPECT_EQ(sample, u.all());
}

TEST(PatternUniverse, SampleIsUniform) {
  PatternUniverse u(10);
  Rng rng(7);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 50'000;
  for (int i = 0; i < kTrials; ++i) {
    for (Pattern p : u.sample_distinct(2, rng)) ++counts[p.value()];
  }
  // Each pattern appears in a 2-of-10 sample with probability 0.2.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.2, 0.01);
  }
}

TEST(PatternUniverse, MatchProbabilityClosedForm) {
  PatternUniverse u(70);
  // πmax = 2 subscriptions, 3 patterns per event:
  // 1 - (68·67·66)/(70·69·68) = 1 - (67·66)/(70·69).
  EXPECT_NEAR(u.match_probability(2, 3), 1.0 - (67.0 * 66.0) / (70.0 * 69.0),
              1e-12);
  EXPECT_DOUBLE_EQ(u.match_probability(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(u.match_probability(70, 3), 1.0);
  EXPECT_DOUBLE_EQ(u.match_probability(68, 3), 1.0);  // pigeonhole
}

TEST(PatternUniverse, MatchProbabilityAgreesWithSimulation) {
  PatternUniverse u(70);
  Rng rng(11);
  constexpr int kTrials = 40'000;
  int matches = 0;
  for (int i = 0; i < kTrials; ++i) {
    const auto subs = u.sample_distinct(5, rng);
    const auto event = u.sample_distinct(3, rng);
    bool hit = false;
    for (Pattern p : event) {
      for (Pattern s : subs) {
        if (p == s) hit = true;
      }
    }
    matches += hit ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(matches) / kTrials, u.match_probability(5, 3),
              0.01);
}

TEST(PatternUniverse, MatchProbabilityMonotoneInSubscriptions) {
  PatternUniverse u(70);
  double prev = 0.0;
  for (std::uint32_t subs = 1; subs <= 30; ++subs) {
    const double p = u.match_probability(subs, 3);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

class SampleSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SampleSizeSweep, SampleCountsMatchRequest) {
  PatternUniverse u(70);
  Rng rng(GetParam());
  const auto sample = u.sample_distinct(GetParam(), rng);
  std::set<Pattern> unique(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), GetParam());
  EXPECT_EQ(unique.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SampleSizeSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 10u, 30u, 69u,
                                           70u));

}  // namespace
}  // namespace epicast
