// Failure-injection integration tests: loss bursts, a dead recovery
// channel, asymmetric links, and partitions. These probe the system's
// behaviour at the edges the stochastic scenarios rarely hit.
#include <gtest/gtest.h>

#include "epicast/gossip/pull_base.hpp"
#include "epicast/scenario/runner.hpp"
#include "gossip_harness.hpp"

namespace epicast {
namespace {

using testing::GossipHarness;

TEST(FailureInjection, LossBurstIsRecoveredAfterwards) {
  // Drop EVERY event crossing 1→2 for a while (a burst, like a fading
  // radio link), then heal. Pull recovery must backfill the burst.
  GossipHarness h(3, Algorithm::CombinedPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  std::vector<EventId> burst;
  (void)pub.publish({Pattern{1}});  // initialize sequence expectations
  h.run_for(0.1);

  for (int i = 0; i < 8; ++i) {
    const EventPtr e = pub.publish({Pattern{1}});
    h.drop_event_on_link(NodeId{1}, NodeId{2}, e->id());
    burst.push_back(e->id());
    h.run_for(0.02);
  }
  h.run_for(0.05);
  (void)pub.publish({Pattern{1}});  // heals: reveals the gap
  h.run_for(3.0);

  for (const EventId& id : burst) {
    EXPECT_TRUE(h.delivered(2, id));
    EXPECT_TRUE(h.recovered(2, id));
  }
}

TEST(FailureInjection, DeadRecoveryChannelDegradesToBaseline) {
  // If every gossip-class message is dropped, recovery must contribute
  // nothing — and must not corrupt normal dispatching either.
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(Algorithm::CombinedPull);
  cfg.nodes = 25;
  cfg.seed = 3;
  cfg.measure = Duration::seconds(1.5);
  cfg.oob_loss_rate = 1.0;  // requests and replies all die
  const ScenarioResult crippled = run_scenario(cfg);

  cfg.algorithm = Algorithm::NoRecovery;
  cfg.oob_loss_rate = 0.0;
  const ScenarioResult baseline = run_scenario(cfg);

  EXPECT_EQ(crippled.recovered_pairs, 0u);
  // Same seed, same tree, same event process → delivery within noise of
  // the baseline (gossip still consumes some link capacity).
  EXPECT_NEAR(crippled.delivery_rate, baseline.delivery_rate, 0.05);
}

TEST(FailureInjection, AsymmetricLinkLosesOneDirectionOnly) {
  GossipHarness h(2, Algorithm::NoRecovery);
  h.subscribe_and_settle({{0, 1}, {1, 1}});

  // Kill 0→1 for events, keep 1→0 alive.
  h.drop_all_events_on_link(NodeId{0}, NodeId{1});
  const EventPtr fwd = h.net().node(NodeId{0}).publish({Pattern{1}});
  const EventPtr back = h.net().node(NodeId{1}).publish({Pattern{1}});
  h.run_for(0.5);

  EXPECT_FALSE(h.delivered(1, fwd->id()));
  EXPECT_TRUE(h.delivered(0, back->id()));
}

TEST(FailureInjection, PartitionThenRepairBackfillsViaGossip) {
  // Physically remove the only link to the subscriber mid-stream; events
  // published meanwhile are unroutable. After the overlay is repaired and
  // routes rebuilt, pull recovery fetches the missed interval.
  GossipHarness h(3, Algorithm::CombinedPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  h.run_for(0.1);

  h.topology().remove_link(NodeId{1}, NodeId{2});
  std::vector<EventId> missed;
  for (int i = 0; i < 5; ++i) {
    missed.push_back(pub.publish({Pattern{1}})->id());
    h.run_for(0.02);
  }
  h.topology().add_link(NodeId{1}, NodeId{2});
  h.net().rebuild_routes();
  (void)pub.publish({Pattern{1}});  // reveals the gap post-repair
  h.run_for(3.0);

  for (const EventId& id : missed) {
    EXPECT_TRUE(h.recovered(2, id)) << "seq gap not backfilled";
  }
}

TEST(FailureInjection, CacheTooSmallToRecoverEverything) {
  // A 2-event cache cannot hold a 6-event burst: recovery must restore at
  // most the events still buffered somewhere and leave the rest lost,
  // without looping forever (entries expire).
  GossipConfig g = GossipHarness::default_gossip();
  g.buffer_size = 2;
  g.lost_entry_ttl = Duration::seconds(1.0);
  GossipHarness h(3, Algorithm::CombinedPull, g);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  h.run_for(0.1);
  std::vector<EventId> burst;
  for (int i = 0; i < 6; ++i) {
    const EventPtr e = pub.publish({Pattern{1}});
    h.drop_event_on_link(NodeId{1}, NodeId{2}, e->id());
    burst.push_back(e->id());
  }
  h.run_for(0.05);
  (void)pub.publish({Pattern{1}});
  h.run_for(3.0);

  int recovered = 0;
  for (const EventId& id : burst) recovered += h.recovered(2, id) ? 1 : 0;
  EXPECT_LE(recovered, 2);  // at most what a 2-slot cache can serve
  // And the bookkeeping drained (expired via TTL), not stuck retrying.
  auto* pull =
      dynamic_cast<PullProtocolBase*>(h.net().node(NodeId{2}).recovery());
  ASSERT_NE(pull, nullptr);
  EXPECT_TRUE(pull->lost().empty());
}

TEST(FailureInjection, GossipStormDoesNotDuplicateDeliveries) {
  // Saturate with redundant recoveries: multiple holders answer the same
  // digest; the subscriber must still deliver each event exactly once.
  GossipConfig g = GossipHarness::default_gossip();
  g.forward_probability = 1.0;  // maximum redundancy
  GossipHarness h(5, Algorithm::CombinedPull, g);
  h.subscribe_and_settle({{0, 1}, {1, 1}, {3, 1}, {4, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  h.run_for(0.1);
  const EventPtr lost = pub.publish({Pattern{1}});
  h.drop_event_on_link(NodeId{3}, NodeId{4}, lost->id());
  h.run_for(0.1);
  (void)pub.publish({Pattern{1}});
  h.run_for(2.0);

  EXPECT_TRUE(h.recovered(4, lost->id()));
  EXPECT_EQ(h.net().node(NodeId{4}).stats().delivered,
            3u);  // three events, once each
}

TEST(RetryHardening, PushRequestRetriesAfterLostRequest) {
  // Push flow: digest → request → reply. Kill the subscriber's first two
  // requests on the out-of-band channel; with request_timeout set the
  // protocol must notice the silence, re-send, and still recover.
  GossipConfig g = GossipHarness::default_gossip();
  g.request_timeout = Duration::millis(60);
  g.request_max_retries = 4;
  GossipHarness h(3, Algorithm::Push, g);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  int requests_killed = 0;
  h.transport().add_fault_filter(
      [&requests_killed](NodeId from, NodeId, const Message& m, bool) {
        if (from == NodeId{2} &&
            m.message_class() == MessageClass::GossipRequest &&
            requests_killed < 2) {
          ++requests_killed;
          return false;
        }
        return true;
      });

  auto& pub = h.net().node(NodeId{0});
  const EventPtr lost = pub.publish({Pattern{1}});
  h.drop_event_on_link(NodeId{1}, NodeId{2}, lost->id());
  h.run_for(3.0);

  EXPECT_EQ(requests_killed, 2);
  EXPECT_TRUE(h.recovered(2, lost->id()));
  // Each push round may open a fresh exchange for the same id, and a timer
  // whose ids arrived meanwhile counts nothing — so the floor is one
  // timeout and one retry, not one per killed request.
  const GossipStats& s = h.protocol(2)->stats();
  EXPECT_GE(s.request_timeouts, 1u);
  EXPECT_GE(s.request_retries, 1u);
  EXPECT_EQ(s.requests_abandoned, 0u);
}

TEST(RetryHardening, RequestIsAbandonedAfterMaxRetries) {
  // Nothing ever answers: after request_max_retries re-sends the request
  // must be given up on — bounded, not an infinite retry loop.
  GossipConfig g = GossipHarness::default_gossip();
  g.request_timeout = Duration::millis(50);
  g.request_max_retries = 2;
  GossipHarness h(3, Algorithm::Push, g);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  h.transport().add_fault_filter([](NodeId from, NodeId, const Message& m,
                                    bool) {
    return !(from == NodeId{2} &&
             m.message_class() == MessageClass::GossipRequest);
  });

  auto& pub = h.net().node(NodeId{0});
  const EventPtr lost = pub.publish({Pattern{1}});
  h.drop_event_on_link(NodeId{1}, NodeId{2}, lost->id());
  h.run_for(3.0);

  EXPECT_FALSE(h.delivered(2, lost->id()));
  const GossipStats& s = h.protocol(2)->stats();
  EXPECT_GE(s.requests_abandoned, 1u);
  // Bounded: every exchange costs at most request_max_retries re-sends, so
  // retries can never outrun timeouts.
  EXPECT_LE(s.request_retries, s.request_timeouts);
}

TEST(RetryHardening, PullDigestSilenceCountsTimeouts) {
  // Swallow every pull digest the subscriber originates: the watch fires,
  // counts one timeout per silent exchange, and marks the targets suspect.
  GossipConfig g = GossipHarness::default_gossip();
  g.request_timeout = Duration::millis(60);
  GossipHarness h(3, Algorithm::CombinedPull, g);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  h.transport().add_fault_filter([](NodeId from, NodeId, const Message& m,
                                    bool) {
    return !(from == NodeId{2} &&
             m.message_class() == MessageClass::GossipDigest);
  });

  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  h.run_for(0.1);
  const EventPtr lost = pub.publish({Pattern{1}});
  h.drop_event_on_link(NodeId{1}, NodeId{2}, lost->id());
  h.run_for(0.1);
  (void)pub.publish({Pattern{1}});  // reveals the gap
  h.run_for(2.0);

  EXPECT_FALSE(h.recovered(2, lost->id()));
  EXPECT_GE(h.protocol(2)->stats().request_timeouts, 1u);
}

TEST(RetryHardening, DisabledByDefaultKeepsCountersZero) {
  // request_timeout defaults to zero: even under heavy loss no timer is
  // armed and every retry counter stays exactly zero (the paper's
  // behaviour, pinned by the determinism seed guards).
  GossipHarness h(3, Algorithm::CombinedPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  h.run_for(0.1);
  const EventPtr lost = pub.publish({Pattern{1}});
  h.drop_event_on_link(NodeId{1}, NodeId{2}, lost->id());
  h.run_for(0.1);
  (void)pub.publish({Pattern{1}});
  h.run_for(2.0);

  EXPECT_TRUE(h.recovered(2, lost->id()));
  for (std::uint32_t n = 0; n < 3; ++n) {
    const GossipStats& s = h.protocol(n)->stats();
    EXPECT_EQ(s.request_timeouts, 0u);
    EXPECT_EQ(s.request_retries, 0u);
    EXPECT_EQ(s.requests_abandoned, 0u);
  }
}

}  // namespace
}  // namespace epicast
