// Failure-injection integration tests: loss bursts, a dead recovery
// channel, asymmetric links, and partitions. These probe the system's
// behaviour at the edges the stochastic scenarios rarely hit.
#include <gtest/gtest.h>

#include "epicast/gossip/pull_base.hpp"
#include "epicast/scenario/runner.hpp"
#include "gossip_harness.hpp"

namespace epicast {
namespace {

using testing::GossipHarness;

TEST(FailureInjection, LossBurstIsRecoveredAfterwards) {
  // Drop EVERY event crossing 1→2 for a while (a burst, like a fading
  // radio link), then heal. Pull recovery must backfill the burst.
  GossipHarness h(3, Algorithm::CombinedPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  std::vector<EventId> burst;
  (void)pub.publish({Pattern{1}});  // initialize sequence expectations
  h.run_for(0.1);

  for (int i = 0; i < 8; ++i) {
    const EventPtr e = pub.publish({Pattern{1}});
    h.drop_event_on_link(NodeId{1}, NodeId{2}, e->id());
    burst.push_back(e->id());
    h.run_for(0.02);
  }
  h.run_for(0.05);
  (void)pub.publish({Pattern{1}});  // heals: reveals the gap
  h.run_for(3.0);

  for (const EventId& id : burst) {
    EXPECT_TRUE(h.delivered(2, id));
    EXPECT_TRUE(h.recovered(2, id));
  }
}

TEST(FailureInjection, DeadRecoveryChannelDegradesToBaseline) {
  // If every gossip-class message is dropped, recovery must contribute
  // nothing — and must not corrupt normal dispatching either.
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(Algorithm::CombinedPull);
  cfg.nodes = 25;
  cfg.seed = 3;
  cfg.measure = Duration::seconds(1.5);
  cfg.oob_loss_rate = 1.0;  // requests and replies all die
  const ScenarioResult crippled = run_scenario(cfg);

  cfg.algorithm = Algorithm::NoRecovery;
  cfg.oob_loss_rate = 0.0;
  const ScenarioResult baseline = run_scenario(cfg);

  EXPECT_EQ(crippled.recovered_pairs, 0u);
  // Same seed, same tree, same event process → delivery within noise of
  // the baseline (gossip still consumes some link capacity).
  EXPECT_NEAR(crippled.delivery_rate, baseline.delivery_rate, 0.05);
}

TEST(FailureInjection, AsymmetricLinkLosesOneDirectionOnly) {
  GossipHarness h(2, Algorithm::NoRecovery);
  h.subscribe_and_settle({{0, 1}, {1, 1}});

  // Kill 0→1 for events, keep 1→0 alive.
  h.drop_all_events_on_link(NodeId{0}, NodeId{1});
  const EventPtr fwd = h.net().node(NodeId{0}).publish({Pattern{1}});
  const EventPtr back = h.net().node(NodeId{1}).publish({Pattern{1}});
  h.run_for(0.5);

  EXPECT_FALSE(h.delivered(1, fwd->id()));
  EXPECT_TRUE(h.delivered(0, back->id()));
}

TEST(FailureInjection, PartitionThenRepairBackfillsViaGossip) {
  // Physically remove the only link to the subscriber mid-stream; events
  // published meanwhile are unroutable. After the overlay is repaired and
  // routes rebuilt, pull recovery fetches the missed interval.
  GossipHarness h(3, Algorithm::CombinedPull);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  h.run_for(0.1);

  h.topology().remove_link(NodeId{1}, NodeId{2});
  std::vector<EventId> missed;
  for (int i = 0; i < 5; ++i) {
    missed.push_back(pub.publish({Pattern{1}})->id());
    h.run_for(0.02);
  }
  h.topology().add_link(NodeId{1}, NodeId{2});
  h.net().rebuild_routes();
  (void)pub.publish({Pattern{1}});  // reveals the gap post-repair
  h.run_for(3.0);

  for (const EventId& id : missed) {
    EXPECT_TRUE(h.recovered(2, id)) << "seq gap not backfilled";
  }
}

TEST(FailureInjection, CacheTooSmallToRecoverEverything) {
  // A 2-event cache cannot hold a 6-event burst: recovery must restore at
  // most the events still buffered somewhere and leave the rest lost,
  // without looping forever (entries expire).
  GossipConfig g = GossipHarness::default_gossip();
  g.buffer_size = 2;
  g.lost_entry_ttl = Duration::seconds(1.0);
  GossipHarness h(3, Algorithm::CombinedPull, g);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  h.run_for(0.1);
  std::vector<EventId> burst;
  for (int i = 0; i < 6; ++i) {
    const EventPtr e = pub.publish({Pattern{1}});
    h.drop_event_on_link(NodeId{1}, NodeId{2}, e->id());
    burst.push_back(e->id());
  }
  h.run_for(0.05);
  (void)pub.publish({Pattern{1}});
  h.run_for(3.0);

  int recovered = 0;
  for (const EventId& id : burst) recovered += h.recovered(2, id) ? 1 : 0;
  EXPECT_LE(recovered, 2);  // at most what a 2-slot cache can serve
  // And the bookkeeping drained (expired via TTL), not stuck retrying.
  auto* pull =
      dynamic_cast<PullProtocolBase*>(h.net().node(NodeId{2}).recovery());
  ASSERT_NE(pull, nullptr);
  EXPECT_TRUE(pull->lost().empty());
}

TEST(FailureInjection, GossipStormDoesNotDuplicateDeliveries) {
  // Saturate with redundant recoveries: multiple holders answer the same
  // digest; the subscriber must still deliver each event exactly once.
  GossipConfig g = GossipHarness::default_gossip();
  g.forward_probability = 1.0;  // maximum redundancy
  GossipHarness h(5, Algorithm::CombinedPull, g);
  h.subscribe_and_settle({{0, 1}, {1, 1}, {3, 1}, {4, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  h.run_for(0.1);
  const EventPtr lost = pub.publish({Pattern{1}});
  h.drop_event_on_link(NodeId{3}, NodeId{4}, lost->id());
  h.run_for(0.1);
  (void)pub.publish({Pattern{1}});
  h.run_for(2.0);

  EXPECT_TRUE(h.recovered(4, lost->id()));
  EXPECT_EQ(h.net().node(NodeId{4}).stats().delivered,
            3u);  // three events, once each
}

}  // namespace
}  // namespace epicast
