// Contract (death) tests and small edge cases across modules, plus a
// compile check of the umbrella header.
#include "epicast/epicast.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

TEST(Contracts, SchedulerRejectsPastAndNull) {
  Scheduler s;
  s.schedule_at(SimTime::seconds(1.0), [] {});
  s.run();
  EXPECT_DEATH(s.schedule_at(SimTime::seconds(0.5), [] {}), "past");
  EXPECT_DEATH(s.schedule_after(Duration::millis(-1), [] {}), "negative");
}

TEST(Contracts, CacheRejectsZeroCapacity) {
  EXPECT_DEATH(EventCache(0, CachePolicy::Fifo, Rng{1}), "positive");
}

TEST(Contracts, RngRejectsZeroBound) {
  Rng rng(1);
  EXPECT_DEATH((void)rng.next_below(0), "positive bound");
}

TEST(Contracts, TransportRejectsSelfDirectSend) {
  Simulator sim(1);
  Topology topo = Topology::line(2);
  Transport transport(sim, topo, TransportConfig{});
  class Dummy final : public Message {
    MessageClass message_class() const override {
      return MessageClass::GossipReply;
    }
    std::size_t size_bytes() const override { return 1; }
  };
  EXPECT_DEATH(transport.send_direct(NodeId{0}, NodeId{0},
                                     std::make_shared<Dummy>()),
               "self");
}

TEST(Contracts, TransportRequiresAttachedReceiver) {
  Simulator sim(1);
  Topology topo = Topology::line(2);
  Transport transport(sim, topo, TransportConfig{});
  class Dummy final : public Message {
    MessageClass message_class() const override {
      return MessageClass::Event;
    }
    std::size_t size_bytes() const override { return 1; }
  };
  transport.send_overlay(NodeId{0}, NodeId{1}, std::make_shared<Dummy>());
  EXPECT_DEATH(sim.run(), "no receiver");
}

TEST(Contracts, DoubleAttachIsRejected) {
  Simulator sim(1);
  Topology topo = Topology::line(2);
  Transport transport(sim, topo, TransportConfig{});
  PubSubNetwork net(sim, transport, DispatcherConfig{});  // attaches 0 and 1
  class Sink final : public TransportReceiver {
    void on_overlay_message(NodeId, const MessagePtr&) override {}
    void on_direct_message(NodeId, const MessagePtr&) override {}
  } sink;
  EXPECT_DEATH(transport.attach(NodeId{0}, sink), "already has a receiver");
}

TEST(Contracts, PublishRequiresContent) {
  Simulator sim(1);
  Topology topo = Topology::line(2);
  Transport transport(sim, topo, TransportConfig{});
  PubSubNetwork net(sim, transport, DispatcherConfig{});
  EXPECT_DEATH(net.node(NodeId{0}).publish({}), "non-empty");
}

TEST(AlgorithmNames, AreStableAndComplete) {
  EXPECT_STREQ(to_string(Algorithm::NoRecovery), "no-recovery");
  EXPECT_STREQ(to_string(Algorithm::Push), "push");
  EXPECT_STREQ(to_string(Algorithm::SubscriberPull), "subscriber-pull");
  EXPECT_STREQ(to_string(Algorithm::PublisherPull), "publisher-pull");
  EXPECT_STREQ(to_string(Algorithm::CombinedPull), "combined-pull");
  EXPECT_STREQ(to_string(Algorithm::RandomPull), "random-pull");
}

TEST(AlgorithmRoutes, OnlyPublisherVariantsNeedRoutes) {
  EXPECT_FALSE(algorithm_needs_routes(Algorithm::NoRecovery));
  EXPECT_FALSE(algorithm_needs_routes(Algorithm::Push));
  EXPECT_FALSE(algorithm_needs_routes(Algorithm::SubscriberPull));
  EXPECT_TRUE(algorithm_needs_routes(Algorithm::PublisherPull));
  EXPECT_TRUE(algorithm_needs_routes(Algorithm::CombinedPull));
  EXPECT_FALSE(algorithm_needs_routes(Algorithm::RandomPull));
}

TEST(ProtocolFactory, ProducesCorrectlyNamedProtocols) {
  Simulator sim(1);
  Topology topo = Topology::line(2);
  Transport transport(sim, topo, TransportConfig{});
  PubSubNetwork net(sim, transport, DispatcherConfig{});
  for (Algorithm a :
       {Algorithm::NoRecovery, Algorithm::Push, Algorithm::SubscriberPull,
        Algorithm::PublisherPull, Algorithm::CombinedPull,
        Algorithm::RandomPull}) {
    auto proto = make_recovery(a, net.node(NodeId{0}), GossipConfig{});
    ASSERT_NE(proto, nullptr);
    EXPECT_STREQ(proto->name(), to_string(a));
  }
}

}  // namespace
}  // namespace epicast
