// SweepRunner tests: serial-vs-parallel equivalence (the determinism
// contract under parallel execution), input-order preservation, timing
// stats, and jobs resolution.
#include "epicast/scenario/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

namespace epicast {
namespace {

ScenarioConfig tiny(Algorithm a, std::uint64_t seed) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(a);
  cfg.nodes = 20;
  cfg.seed = seed;
  cfg.warmup = Duration::seconds(0.3);
  cfg.measure = Duration::seconds(0.8);
  cfg.recovery_horizon = Duration::seconds(0.8);
  return cfg;
}

std::vector<LabeledConfig> small_sweep() {
  std::vector<LabeledConfig> configs;
  int i = 0;
  for (Algorithm a : {Algorithm::NoRecovery, Algorithm::Push,
                      Algorithm::CombinedPull}) {
    for (const double eps : {0.05, 0.1}) {
      ScenarioConfig cfg = tiny(a, 2026);
      cfg.link_error_rate = eps;
      configs.push_back({"cfg" + std::to_string(i++), cfg});
    }
  }
  return configs;
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.events_published, b.events_published);
  EXPECT_EQ(a.expected_pairs, b.expected_pairs);
  EXPECT_EQ(a.delivered_pairs, b.delivered_pairs);
  EXPECT_EQ(a.recovered_pairs, b.recovered_pairs);
  EXPECT_EQ(a.sim_events_executed, b.sim_events_executed);
  EXPECT_EQ(a.traffic.gossip_sends(), b.traffic.gossip_sends());
  EXPECT_EQ(a.traffic.event_sends(), b.traffic.event_sends());
  EXPECT_DOUBLE_EQ(a.delivery_rate, b.delivery_rate);
  ASSERT_EQ(a.delivery_series.size(), b.delivery_series.size());
  for (std::size_t p = 0; p < a.delivery_series.size(); ++p) {
    EXPECT_DOUBLE_EQ(a.delivery_series.points()[p].y,
                     b.delivery_series.points()[p].y);
  }
}

TEST(SweepRunner, SerialAndParallelResultsAreIdentical) {
  const std::vector<LabeledConfig> configs = small_sweep();

  SweepRunner serial(SweepOptions{1, /*progress=*/false});
  SweepRunner parallel(SweepOptions{4, /*progress=*/false});
  const auto a = serial.run(configs);
  const auto b = parallel.run(configs);

  ASSERT_EQ(a.size(), configs.size());
  ASSERT_EQ(b.size(), configs.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(configs[i].label);
    expect_identical(a[i].result, b[i].result);
  }
}

TEST(SweepRunner, ResultsComeBackInInputOrder) {
  const std::vector<LabeledConfig> configs = small_sweep();
  SweepRunner runner(SweepOptions{3, /*progress=*/false});
  const auto results = runner.run(configs);
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].label, configs[i].label);
  }
}

TEST(SweepRunner, UnlabeledOverloadMatchesLabeled) {
  const std::vector<LabeledConfig> labeled = small_sweep();
  std::vector<ScenarioConfig> bare;
  for (const LabeledConfig& lc : labeled) bare.push_back(lc.config);

  SweepRunner runner(SweepOptions{2, /*progress=*/false});
  const auto a = runner.run(bare);
  const auto b = runner.run(labeled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical(a[i], b[i].result);
  }
}

TEST(SweepRunner, RecordsPerScenarioAndAggregateWallTime) {
  const std::vector<LabeledConfig> configs = small_sweep();
  SweepRunner runner(SweepOptions{2, /*progress=*/false});
  const auto results = runner.run(configs);
  (void)results;

  const SweepStats& stats = runner.last_stats();
  EXPECT_EQ(stats.jobs_used, 2u);
  EXPECT_EQ(stats.scenarios, configs.size());
  ASSERT_EQ(stats.scenario_wall_seconds.size(), configs.size());
  double sum = 0.0;
  for (const double s : stats.scenario_wall_seconds) {
    EXPECT_GT(s, 0.0);
    sum += s;
  }
  EXPECT_GT(stats.wall_seconds, 0.0);
  // Aggregate wall time can't exceed the summed per-scenario time (workers
  // overlap) but must cover at least the longest scenario.
  EXPECT_LE(stats.wall_seconds, sum + 1.0);
  EXPECT_GT(stats.sim_events_executed, 0u);
  EXPECT_GT(stats.scenarios_per_second(), 0.0);
  EXPECT_GT(stats.events_per_second(), 0.0);
}

TEST(SweepRunner, EmptySweepIsANoop) {
  SweepRunner runner(SweepOptions{4, /*progress=*/false});
  EXPECT_TRUE(runner.run(std::vector<ScenarioConfig>{}).empty());
  EXPECT_EQ(runner.last_stats().scenarios, 0u);
}

TEST(SweepRunner, ResolveJobsPrefersExplicitThenEnvThenHardware) {
  ASSERT_EQ(setenv("EPICAST_JOBS", "3", 1), 0);
  EXPECT_EQ(SweepRunner::resolve_jobs(5), 5u);
  EXPECT_EQ(SweepRunner::resolve_jobs(0), 3u);
  ASSERT_EQ(setenv("EPICAST_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(SweepRunner::resolve_jobs(0), 1u);
  ASSERT_EQ(unsetenv("EPICAST_JOBS"), 0);
  EXPECT_GE(SweepRunner::resolve_jobs(0), 1u);
}

TEST(SweepRunner, AvailableParallelismIsClampedToAffinity) {
  const unsigned avail = SweepRunner::available_parallelism();
  EXPECT_GE(avail, 1u);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) EXPECT_LE(avail, hw);

  // Auto-detection (no explicit request, no env) must resolve to exactly
  // the clamped value — oversubscribing a restricted affinity mask is the
  // regression this pins.
  ASSERT_EQ(unsetenv("EPICAST_JOBS"), 0);
  EXPECT_EQ(SweepRunner::resolve_jobs(0), avail);
  // Explicit requests are honoured verbatim, even beyond the clamp.
  EXPECT_EQ(SweepRunner::resolve_jobs(avail + 7), avail + 7);
}

}  // namespace
}  // namespace epicast
