// Tests for workload generation: subscription counts, publish rates,
// event shape, and determinism.
#include "epicast/scenario/workload.hpp"

#include <gtest/gtest.h>

#include <set>

namespace epicast {
namespace {

struct WorkloadRig {
  explicit WorkloadRig(std::uint64_t seed, ScenarioConfig cfg = base_config())
      : config(cfg),
        sim(seed),
        topo_rng(sim.fork_rng()),
        topo(Topology::random_tree(config.nodes, 4, topo_rng)),
        transport(sim, topo, TransportConfig{}),
        net(sim, transport, DispatcherConfig{}),
        workload(sim, net, config) {}

  static ScenarioConfig base_config() {
    ScenarioConfig cfg;
    cfg.nodes = 20;
    cfg.pattern_universe = 10;
    cfg.patterns_per_subscriber = 3;
    cfg.patterns_per_event = 2;
    cfg.publish_rate_hz = 50.0;
    return cfg;
  }

  ScenarioConfig config;
  Simulator sim;
  Rng topo_rng;
  Topology topo;
  Transport transport;
  PubSubNetwork net;
  Workload workload;
};

TEST(Workload, EveryNodeGetsExactlyPiMaxDistinctPatterns) {
  WorkloadRig rig(1);
  rig.workload.issue_subscriptions();
  for (std::uint32_t i = 0; i < 20; ++i) {
    const auto& subs = rig.workload.subscriptions_of(NodeId{i});
    std::set<Pattern> unique(subs.begin(), subs.end());
    EXPECT_EQ(subs.size(), 3u);
    EXPECT_EQ(unique.size(), 3u);
    for (Pattern p : subs) EXPECT_LT(p.value(), 10u);
    EXPECT_TRUE(rig.net.node(NodeId{i}).table().has_local(subs[0]));
  }
}

TEST(Workload, PublishRateIsApproximatelyPoisson) {
  WorkloadRig rig(2);
  rig.workload.issue_subscriptions();
  rig.sim.run_until(SimTime::seconds(0.5));
  rig.workload.start_publishing(SimTime::seconds(0.5), SimTime::seconds(4.5));
  rig.sim.run_until(SimTime::seconds(5.0));
  // 20 nodes × 50/s × 4 s = 4000 expected publishes; Poisson σ ≈ 63.
  EXPECT_NEAR(static_cast<double>(rig.workload.events_published()), 4000.0,
              250.0);
}

TEST(Workload, EventsCarryRequestedPatternCount) {
  WorkloadRig rig(3);
  rig.workload.issue_subscriptions();
  std::size_t checked = 0;
  rig.net.for_each([&](Dispatcher& d) {
    d.set_delivery_listener({});
    (void)d;
  });
  rig.workload.set_publish_listener([&](const EventPtr& e) {
    EXPECT_EQ(e->patterns().size(), 2u);
    for (const PatternSeq& ps : e->patterns()) {
      EXPECT_LT(ps.pattern.value(), 10u);
      EXPECT_GE(ps.seq.value(), 1u);
    }
    ++checked;
  });
  rig.sim.run_until(SimTime::seconds(0.5));
  rig.workload.start_publishing(SimTime::seconds(0.5), SimTime::seconds(1.0));
  rig.sim.run_until(SimTime::seconds(1.2));
  EXPECT_GT(checked, 100u);
}

TEST(Workload, DeterministicAcrossIdenticalRuns) {
  auto collect = [](std::uint64_t seed) {
    WorkloadRig rig(seed);
    rig.workload.issue_subscriptions();
    std::vector<EventId> ids;
    rig.workload.set_publish_listener(
        [&](const EventPtr& e) { ids.push_back(e->id()); });
    rig.sim.run_until(SimTime::seconds(0.5));
    rig.workload.start_publishing(SimTime::seconds(0.5),
                                  SimTime::seconds(1.0));
    rig.sim.run_until(SimTime::seconds(1.0));
    return ids;
  };
  EXPECT_EQ(collect(7), collect(7));
  EXPECT_NE(collect(7), collect(8));
}

TEST(Workload, PublishingStopsAtDeadline) {
  WorkloadRig rig(4);
  rig.workload.issue_subscriptions();
  rig.sim.run_until(SimTime::seconds(0.5));
  rig.workload.start_publishing(SimTime::seconds(0.5), SimTime::seconds(1.0));
  rig.sim.run_until(SimTime::seconds(3.0));
  const auto count = rig.workload.events_published();
  rig.sim.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(rig.workload.events_published(), count);
}

}  // namespace
}  // namespace epicast
