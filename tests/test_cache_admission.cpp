// Tests for the probabilistic cache-admission extension (GossipConfig::
// cache_admission_probability).
#include <gtest/gtest.h>

#include "gossip_harness.hpp"

namespace epicast {
namespace {

using testing::GossipHarness;

GossipConfig with_admission(double q) {
  GossipConfig g = GossipHarness::default_gossip();
  g.cache_admission_probability = q;
  g.buffer_size = 4096;
  return g;
}

TEST(CacheAdmission, ZeroMeansSubscribersNeverCache) {
  GossipHarness h(3, Algorithm::Push, with_admission(0.0));
  h.subscribe_and_settle({{2, 1}});
  const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
  h.run_for(0.2);
  EXPECT_TRUE(h.protocol(0)->cache().contains(e->id()));   // publisher: always
  EXPECT_FALSE(h.protocol(2)->cache().contains(e->id()));  // subscriber: never
}

TEST(CacheAdmission, OneReproducesPaperBehaviour) {
  GossipHarness h(3, Algorithm::Push, with_admission(1.0));
  h.subscribe_and_settle({{2, 1}});
  const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
  h.run_for(0.2);
  EXPECT_TRUE(h.protocol(2)->cache().contains(e->id()));
}

TEST(CacheAdmission, HalfAdmitsRoughlyHalf) {
  GossipHarness h(2, Algorithm::Push, with_admission(0.5));
  h.subscribe_and_settle({{1, 1}});
  constexpr int kEvents = 2000;
  for (int i = 0; i < kEvents; ++i) {
    h.net().node(NodeId{0}).publish({Pattern{1}});
    if (i % 50 == 0) h.run_for(0.05);
  }
  h.run_for(0.5);
  const double admitted =
      static_cast<double>(h.protocol(1)->cache().size()) / kEvents;
  EXPECT_NEAR(admitted, 0.5, 0.05);
}

TEST(CacheAdmission, RecoveryStillWorksViaPublisherBackstop) {
  // Even with q = 0, the publisher's own cache keeps recovery possible.
  GossipHarness h(3, Algorithm::CombinedPull, with_admission(0.0));
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.start_recovery();

  auto& pub = h.net().node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  h.run_for(0.1);
  const EventPtr lost = pub.publish({Pattern{1}});
  h.drop_event_on_link(NodeId{1}, NodeId{2}, lost->id());
  h.run_for(0.1);
  (void)pub.publish({Pattern{1}});
  h.run_for(3.0);
  EXPECT_TRUE(h.recovered(2, lost->id()));
}

}  // namespace
}  // namespace epicast
