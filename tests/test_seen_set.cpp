// Tests for the per-source seen-id bitmap, checked against the
// std::unordered_set<EventId> it replaced.
#include "epicast/pubsub/seen_set.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "epicast/common/rng.hpp"

namespace epicast {
namespace {

TEST(SeenSet, InsertReportsNovelty) {
  SeenSet s;
  const EventId id{NodeId{3}, 17};
  EXPECT_FALSE(s.contains(id));
  EXPECT_TRUE(s.insert(id));
  EXPECT_TRUE(s.contains(id));
  EXPECT_FALSE(s.insert(id));
  EXPECT_EQ(s.size(), 1u);
}

TEST(SeenSet, SourcesAreIndependent) {
  SeenSet s;
  s.insert(EventId{NodeId{0}, 5});
  EXPECT_FALSE(s.contains(EventId{NodeId{1}, 5}));
  EXPECT_FALSE(s.contains(EventId{NodeId{0}, 4}));
  EXPECT_FALSE(s.contains(EventId{NodeId{0}, 6}));
}

TEST(SeenSet, WordBoundarySeqs) {
  SeenSet s;
  for (std::uint64_t seq : {0ull, 63ull, 64ull, 127ull, 128ull}) {
    EXPECT_TRUE(s.insert(EventId{NodeId{2}, seq}));
    EXPECT_TRUE(s.contains(EventId{NodeId{2}, seq}));
  }
  EXPECT_EQ(s.size(), 5u);
}

TEST(SeenSet, ContainsBeyondGrownRangeIsFalse) {
  SeenSet s;
  s.insert(EventId{NodeId{1}, 2});
  EXPECT_FALSE(s.contains(EventId{NodeId{1}, 1000}));  // row too short
  EXPECT_FALSE(s.contains(EventId{NodeId{9}, 0}));     // source never seen
}

TEST(SeenSet, PropertyAgainstReferenceSet) {
  Rng rng(11);
  SeenSet s;
  std::unordered_set<EventId> ref;
  for (int step = 0; step < 20000; ++step) {
    const EventId id{NodeId{static_cast<std::uint32_t>(rng.next_below(16))},
                     rng.next_below(512)};
    if (rng.chance(0.5)) {
      ASSERT_EQ(s.insert(id), ref.insert(id).second);
    } else {
      ASSERT_EQ(s.contains(id), ref.contains(id));
    }
    ASSERT_EQ(s.size(), ref.size());
  }
}

}  // namespace
}  // namespace epicast
