// Unit and property tests for the width-dynamic pattern bitset: set/clear/
// test, ascending iteration order, nth() select, set algebra, and growth
// beyond the inline two words — all checked against a std::set<Pattern>
// reference implementation under random workloads, since the hot paths rely
// on bit-for-bit agreement with the sorted vectors the bitset replaced.
#include "epicast/common/pattern_set.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "epicast/common/arena.hpp"
#include "epicast/common/rng.hpp"

namespace epicast {
namespace {

std::vector<Pattern> members(const PatternSet& s) {
  std::vector<Pattern> out;
  s.for_each([&out](Pattern p) { out.push_back(p); });
  return out;
}

TEST(PatternSet, StartsEmpty) {
  PatternSet s;
  EXPECT_TRUE(s.none());
  EXPECT_FALSE(s.any());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.test(Pattern{0}));
  EXPECT_TRUE(members(s).empty());
  EXPECT_EQ(s.capacity(), PatternSet::kInlineCapacity);
  EXPECT_EQ(s.memory_bytes(), 0u);
}

TEST(PatternSet, SetClearTestRoundTrip) {
  PatternSet s;
  EXPECT_TRUE(s.set(Pattern{5}));
  EXPECT_FALSE(s.set(Pattern{5}));  // already present
  EXPECT_TRUE(s.test(Pattern{5}));
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.clear(Pattern{5}));
  EXPECT_FALSE(s.clear(Pattern{5}));  // already absent
  EXPECT_TRUE(s.none());
}

TEST(PatternSet, WordBoundaryPatterns) {
  // Bits 63/64 straddle the two inline words; 127 is the last inline bit.
  PatternSet s;
  for (std::uint32_t v : {0u, 63u, 64u, 127u}) {
    EXPECT_TRUE(s.set(Pattern{v}));
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.memory_bytes(), 0u);  // still inline
  const auto m = members(s);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m[0], Pattern{0});
  EXPECT_EQ(m[1], Pattern{63});
  EXPECT_EQ(m[2], Pattern{64});
  EXPECT_EQ(m[3], Pattern{127});
  for (std::size_t k = 0; k < m.size(); ++k) EXPECT_EQ(s.nth(k), m[k]);
}

TEST(PatternSet, TestBeyondWidthIsFalse) {
  PatternSet s;
  s.set(Pattern{3});
  EXPECT_FALSE(s.test(Pattern{PatternSet::kInlineCapacity}));
  EXPECT_FALSE(s.test(Pattern{1u << 20}));
  EXPECT_FALSE(s.clear(Pattern{PatternSet::kInlineCapacity + 9}));
}

TEST(PatternSet, GrowsBeyondInlineOnSet) {
  PatternSet s;
  s.set(Pattern{5});
  EXPECT_TRUE(s.set(Pattern{300}));
  EXPECT_GT(s.capacity(), 300u);
  EXPECT_GT(s.memory_bytes(), 0u);
  EXPECT_TRUE(s.test(Pattern{5}));
  EXPECT_TRUE(s.test(Pattern{300}));
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(members(s), (std::vector<Pattern>{Pattern{5}, Pattern{300}}));
  EXPECT_EQ(s.nth(0), Pattern{5});
  EXPECT_EQ(s.nth(1), Pattern{300});
}

TEST(PatternSet, ReservePresizesWithoutMembers) {
  PatternSet s(1000);
  EXPECT_GE(s.capacity(), 1000u);
  EXPECT_TRUE(s.none());
  EXPECT_TRUE(s.set(Pattern{999}));
  EXPECT_EQ(s.count(), 1u);
}

TEST(PatternSet, ArenaBackedGrowth) {
  Arena arena;
  PatternSet s(5000, &arena);
  EXPECT_GE(s.capacity(), 5000u);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  s.set(Pattern{4999});
  // Growth past the reservation also draws from the arena.
  const std::size_t before = arena.bytes_allocated();
  s.set(Pattern{20000});
  EXPECT_GT(arena.bytes_allocated(), before);
  EXPECT_TRUE(s.test(Pattern{4999}));
  EXPECT_TRUE(s.test(Pattern{20000}));
}

TEST(PatternSet, CopyAndMovePreserveMembersAcrossWidths) {
  PatternSet wide;
  wide.set(Pattern{2});
  wide.set(Pattern{500});

  PatternSet copy(wide);
  EXPECT_EQ(copy, wide);
  EXPECT_EQ(members(copy), members(wide));

  PatternSet assigned;
  assigned.set(Pattern{70});
  assigned = wide;
  EXPECT_EQ(assigned, wide);

  PatternSet moved(std::move(copy));
  EXPECT_EQ(moved, wide);
  PatternSet move_assigned;
  move_assigned = std::move(moved);
  EXPECT_EQ(move_assigned, wide);
}

TEST(PatternSet, FullInlineSet) {
  PatternSet s;
  for (std::uint32_t v = 0; v < PatternSet::kInlineCapacity; ++v)
    s.set(Pattern{v});
  EXPECT_EQ(s.count(), static_cast<std::size_t>(PatternSet::kInlineCapacity));
  for (std::uint32_t v = 0; v < PatternSet::kInlineCapacity; ++v) {
    EXPECT_TRUE(s.test(Pattern{v}));
    EXPECT_EQ(s.nth(v), Pattern{v});
  }
}

TEST(PatternSet, AlgebraMatchesSetOperations) {
  PatternSet a, b;
  for (std::uint32_t v : {1u, 5u, 64u, 100u}) a.set(Pattern{v});
  for (std::uint32_t v : {5u, 7u, 100u, 127u}) b.set(Pattern{v});

  const PatternSet u = a | b;
  const PatternSet i = a & b;
  EXPECT_EQ(u.count(), 6u);
  EXPECT_EQ(i.count(), 2u);
  EXPECT_TRUE(i.test(Pattern{5}));
  EXPECT_TRUE(i.test(Pattern{100}));
  EXPECT_TRUE(a.intersects(b));

  PatternSet disjoint;
  disjoint.set(Pattern{2});
  EXPECT_FALSE(a.intersects(disjoint));
  EXPECT_TRUE((a & disjoint).none());
}

TEST(PatternSet, AlgebraAcrossDifferentWidths) {
  PatternSet narrow, wide;
  narrow.set(Pattern{3});
  wide.set(Pattern{3});
  wide.set(Pattern{400});

  EXPECT_TRUE(narrow.intersects(wide));
  EXPECT_TRUE(wide.intersects(narrow));

  PatternSet u = narrow;
  u |= wide;
  EXPECT_EQ(members(u), (std::vector<Pattern>{Pattern{3}, Pattern{400}}));

  PatternSet i = wide;
  i &= narrow;  // wider &= narrower must drop bits beyond the narrow width
  EXPECT_EQ(members(i), (std::vector<Pattern>{Pattern{3}}));
}

TEST(PatternSet, EqualityIsValueEqualityAndWidthInsensitive) {
  PatternSet a, b;
  a.set(Pattern{9});
  b.set(Pattern{9});
  EXPECT_EQ(a, b);
  b.set(Pattern{64});
  EXPECT_NE(a, b);

  // Widen b without adding members beyond a's: still equal.
  PatternSet c;
  c.set(Pattern{9});
  c.set(Pattern{64});
  c.set(Pattern{999});
  c.clear(Pattern{999});
  EXPECT_EQ(b, c);
  EXPECT_EQ(c, b);
}

// Property test: a long random stream of set/clear operations keeps the
// bitset in lockstep with std::set<Pattern> — membership, count, ascending
// iteration, and nth() select at every step. Runs once confined to the
// inline words and once over a universe that forces multi-word growth.
void run_reference_property(std::uint32_t universe, std::uint64_t seed) {
  Rng rng(seed);
  PatternSet s;
  std::set<Pattern> ref;

  for (int step = 0; step < 5000; ++step) {
    const Pattern p{static_cast<std::uint32_t>(rng.next_below(universe))};
    if (rng.chance(0.6)) {
      EXPECT_EQ(s.set(p), ref.insert(p).second);
    } else {
      EXPECT_EQ(s.clear(p), ref.erase(p) > 0);
    }
    ASSERT_EQ(s.count(), ref.size());
    ASSERT_EQ(s.any(), !ref.empty());

    if (step % 50 != 0) continue;  // full scans are O(|ref|); sample them
    const std::vector<Pattern> expect(ref.begin(), ref.end());
    ASSERT_EQ(members(s), expect);
    for (std::size_t k = 0; k < expect.size(); ++k)
      ASSERT_EQ(s.nth(k), expect[k]);
    for (std::uint32_t v = 0; v < universe; ++v)
      ASSERT_EQ(s.test(Pattern{v}), ref.contains(Pattern{v}));
  }
}

TEST(PatternSet, PropertyAgainstReferenceSetInline) {
  run_reference_property(PatternSet::kInlineCapacity, 42);
}

TEST(PatternSet, PropertyAgainstReferenceSetMultiWord) {
  run_reference_property(700, 43);
}

// The union/intersection operators must agree with element-wise reference
// results for random operands, including operands of different widths.
TEST(PatternSet, PropertyAlgebraAgainstReference) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    // Odd trials push one operand beyond the inline words.
    const std::uint32_t ua = PatternSet::kInlineCapacity;
    const std::uint32_t ub = (trial % 2) != 0 ? 600 : ua;
    PatternSet a, b;
    std::set<Pattern> ra, rb;
    for (int i = 0; i < 12; ++i) {
      const Pattern pa{static_cast<std::uint32_t>(rng.next_below(ua))};
      const Pattern pb{static_cast<std::uint32_t>(rng.next_below(ub))};
      a.set(pa);
      ra.insert(pa);
      b.set(pb);
      rb.insert(pb);
    }
    std::set<Pattern> runion = ra;
    runion.insert(rb.begin(), rb.end());
    std::set<Pattern> rinter;
    for (Pattern p : ra)
      if (rb.contains(p)) rinter.insert(p);

    EXPECT_EQ(members(a | b),
              std::vector<Pattern>(runion.begin(), runion.end()));
    EXPECT_EQ(members(a & b),
              std::vector<Pattern>(rinter.begin(), rinter.end()));
    EXPECT_EQ(a.intersects(b), !rinter.empty());
    EXPECT_EQ(b.intersects(a), !rinter.empty());
  }
}

}  // namespace
}  // namespace epicast
