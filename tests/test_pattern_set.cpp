// Unit and property tests for the two-word pattern bitset: set/clear/test,
// ascending iteration order, nth() select, and set algebra — all checked
// against a std::set<Pattern> reference implementation under random
// workloads, since the hot paths rely on bit-for-bit agreement with the
// sorted vectors the bitset replaced.
#include "epicast/common/pattern_set.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "epicast/common/rng.hpp"

namespace epicast {
namespace {

std::vector<Pattern> members(const PatternSet& s) {
  std::vector<Pattern> out;
  s.for_each([&out](Pattern p) { out.push_back(p); });
  return out;
}

TEST(PatternSet, StartsEmpty) {
  PatternSet s;
  EXPECT_TRUE(s.none());
  EXPECT_FALSE(s.any());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.test(Pattern{0}));
  EXPECT_TRUE(members(s).empty());
}

TEST(PatternSet, SetClearTestRoundTrip) {
  PatternSet s;
  EXPECT_TRUE(s.set(Pattern{5}));
  EXPECT_FALSE(s.set(Pattern{5}));  // already present
  EXPECT_TRUE(s.test(Pattern{5}));
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.clear(Pattern{5}));
  EXPECT_FALSE(s.clear(Pattern{5}));  // already absent
  EXPECT_TRUE(s.none());
}

TEST(PatternSet, WordBoundaryPatterns) {
  // Bits 63/64 straddle the two words; 127 is the last representable bit.
  PatternSet s;
  for (std::uint32_t v : {0u, 63u, 64u, 127u}) {
    ASSERT_TRUE(PatternSet::representable(Pattern{v}));
    EXPECT_TRUE(s.set(Pattern{v}));
  }
  EXPECT_EQ(s.count(), 4u);
  const auto m = members(s);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m[0], Pattern{0});
  EXPECT_EQ(m[1], Pattern{63});
  EXPECT_EQ(m[2], Pattern{64});
  EXPECT_EQ(m[3], Pattern{127});
  for (std::size_t k = 0; k < m.size(); ++k) EXPECT_EQ(s.nth(k), m[k]);
}

TEST(PatternSet, NonRepresentableTestsFalse) {
  EXPECT_FALSE(PatternSet::representable(Pattern{PatternSet::kCapacity}));
  PatternSet s;
  s.set(Pattern{3});
  EXPECT_FALSE(s.test(Pattern{PatternSet::kCapacity}));
  EXPECT_FALSE(s.test(Pattern{1u << 20}));
}

TEST(PatternSet, FullSet) {
  PatternSet s;
  for (std::uint32_t v = 0; v < PatternSet::kCapacity; ++v)
    s.set(Pattern{v});
  EXPECT_EQ(s.count(), static_cast<std::size_t>(PatternSet::kCapacity));
  for (std::uint32_t v = 0; v < PatternSet::kCapacity; ++v) {
    EXPECT_TRUE(s.test(Pattern{v}));
    EXPECT_EQ(s.nth(v), Pattern{v});
  }
}

TEST(PatternSet, AlgebraMatchesSetOperations) {
  PatternSet a, b;
  for (std::uint32_t v : {1u, 5u, 64u, 100u}) a.set(Pattern{v});
  for (std::uint32_t v : {5u, 7u, 100u, 127u}) b.set(Pattern{v});

  const PatternSet u = a | b;
  const PatternSet i = a & b;
  EXPECT_EQ(u.count(), 6u);
  EXPECT_EQ(i.count(), 2u);
  EXPECT_TRUE(i.test(Pattern{5}));
  EXPECT_TRUE(i.test(Pattern{100}));
  EXPECT_TRUE(a.intersects(b));

  PatternSet disjoint;
  disjoint.set(Pattern{2});
  EXPECT_FALSE(a.intersects(disjoint));
  EXPECT_TRUE((a & disjoint).none());
}

TEST(PatternSet, EqualityIsValueEquality) {
  PatternSet a, b;
  a.set(Pattern{9});
  b.set(Pattern{9});
  EXPECT_EQ(a, b);
  b.set(Pattern{64});
  EXPECT_NE(a, b);
}

// Property test: a long random stream of set/clear operations keeps the
// bitset in lockstep with std::set<Pattern> — membership, count, ascending
// iteration, and nth() select at every step.
TEST(PatternSet, PropertyAgainstReferenceSet) {
  Rng rng(42);
  PatternSet s;
  std::set<Pattern> ref;

  for (int step = 0; step < 5000; ++step) {
    const Pattern p{static_cast<std::uint32_t>(
        rng.next_below(PatternSet::kCapacity))};
    if (rng.chance(0.6)) {
      EXPECT_EQ(s.set(p), ref.insert(p).second);
    } else {
      EXPECT_EQ(s.clear(p), ref.erase(p) > 0);
    }
    ASSERT_EQ(s.count(), ref.size());
    ASSERT_EQ(s.any(), !ref.empty());

    if (step % 50 != 0) continue;  // full scans are O(|ref|); sample them
    const std::vector<Pattern> expect(ref.begin(), ref.end());
    ASSERT_EQ(members(s), expect);
    for (std::size_t k = 0; k < expect.size(); ++k)
      ASSERT_EQ(s.nth(k), expect[k]);
    for (std::uint32_t v = 0; v < PatternSet::kCapacity; ++v)
      ASSERT_EQ(s.test(Pattern{v}), ref.contains(Pattern{v}));
  }
}

// The union/intersection operators must agree with element-wise reference
// results for random operands.
TEST(PatternSet, PropertyAlgebraAgainstReference) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    PatternSet a, b;
    std::set<Pattern> ra, rb;
    for (int i = 0; i < 12; ++i) {
      const Pattern pa{static_cast<std::uint32_t>(
          rng.next_below(PatternSet::kCapacity))};
      const Pattern pb{static_cast<std::uint32_t>(
          rng.next_below(PatternSet::kCapacity))};
      a.set(pa);
      ra.insert(pa);
      b.set(pb);
      rb.insert(pb);
    }
    std::set<Pattern> runion = ra;
    runion.insert(rb.begin(), rb.end());
    std::set<Pattern> rinter;
    for (Pattern p : ra)
      if (rb.contains(p)) rinter.insert(p);

    EXPECT_EQ(members(a | b),
              std::vector<Pattern>(runion.begin(), runion.end()));
    EXPECT_EQ(members(a & b),
              std::vector<Pattern>(rinter.begin(), rinter.end()));
    EXPECT_EQ(a.intersects(b), !rinter.empty());
  }
}

}  // namespace
}  // namespace epicast
