// Property tests pinning the behavior of the >128-pattern overflow path
// against plain std::set / std::map reference models.
//
// Written against the pre-migration implementation (dense two-word masks
// plus a sorted overflow map) and kept through the width-dynamic PatternSet
// migration: everything here is expressed through the public API, so it is
// the behavioral baseline the migration must preserve — membership,
// ascending enumeration order, sampling population counts/selects, route
// target order, and pruning, for universes straddling the old 128-pattern
// bitset boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "epicast/common/rng.hpp"
#include "epicast/gossip/lost_buffer.hpp"
#include "epicast/pubsub/event.hpp"
#include "epicast/pubsub/subscription_table.hpp"

namespace epicast {
namespace {

// Universe deliberately straddling the historic PatternSet::kCapacity = 128
// boundary: values in [0, 300) hit the dense path, the boundary words, and
// the overflow fallback.
constexpr std::uint32_t kUniverse = 300;

Pattern random_pattern(Rng& rng) {
  return Pattern{static_cast<std::uint32_t>(rng.next_below(kUniverse))};
}

NodeId random_neighbor(Rng& rng) {
  return NodeId{static_cast<std::uint32_t>(rng.next_below(6))};
}

/// Reference model: the table is exactly a local-subscription set plus a
/// sorted (pattern → sorted next-hop set) route map.
struct ReferenceTable {
  std::set<Pattern> local;
  std::map<Pattern, std::set<NodeId>> routes;

  [[nodiscard]] std::set<Pattern> known() const {
    std::set<Pattern> out = local;
    for (const auto& [p, hops] : routes) {
      if (!hops.empty()) out.insert(p);
    }
    return out;
  }
};

EventPtr event_with(const std::vector<Pattern>& content) {
  std::vector<PatternSeq> ps;
  std::uint64_t seq = 1;
  for (Pattern p : content) ps.push_back({p, SeqNo{seq++}});
  return std::make_shared<EventData>(EventId{NodeId{0}, 0}, std::move(ps), 10,
                                     SimTime::zero());
}

void expect_equivalent(const SubscriptionTable& t, const ReferenceTable& ref) {
  const std::set<Pattern> known = ref.known();
  ASSERT_EQ(t.known_pattern_count(), known.size());

  const std::vector<Pattern> known_sorted(known.begin(), known.end());
  ASSERT_EQ(t.known_patterns(), known_sorted);
  for (std::size_t k = 0; k < known_sorted.size(); ++k) {
    ASSERT_EQ(t.known_pattern_at(k), known_sorted[k]);
  }

  const std::vector<Pattern> local_sorted(ref.local.begin(), ref.local.end());
  ASSERT_EQ(t.local_patterns(), local_sorted);

  for (std::uint32_t v = 0; v < kUniverse; ++v) {
    const Pattern p{v};
    ASSERT_EQ(t.has_local(p), ref.local.contains(p));
    ASSERT_EQ(t.knows(p), known.contains(p));
    auto it = ref.routes.find(p);
    const std::set<NodeId> hops =
        it == ref.routes.end() ? std::set<NodeId>{} : it->second;
    ASSERT_EQ(t.route_targets(p, NodeId::invalid()),
              std::vector<NodeId>(hops.begin(), hops.end()));
  }
}

// A long random stream of add/remove local/route, remove_neighbor, and
// clear_routes keeps the table in lockstep with the reference model, for
// patterns on both sides of the 128 boundary.
TEST(OverflowReference, SubscriptionTablePropertyAgainstReference) {
  Rng rng(20260808);
  SubscriptionTable t;
  ReferenceTable ref;

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.30) {
      const Pattern p = random_pattern(rng);
      ASSERT_EQ(t.add_local(p), ref.local.insert(p).second);
    } else if (roll < 0.45) {
      const Pattern p = random_pattern(rng);
      ASSERT_EQ(t.remove_local(p), ref.local.erase(p) > 0);
    } else if (roll < 0.80) {
      const Pattern p = random_pattern(rng);
      const NodeId m = random_neighbor(rng);
      ASSERT_EQ(t.add_route(p, m), ref.routes[p].insert(m).second);
      ASSERT_TRUE(t.has_route(p, m));
    } else if (roll < 0.93) {
      const Pattern p = random_pattern(rng);
      const NodeId m = random_neighbor(rng);
      const bool ref_removed =
          ref.routes.contains(p) && ref.routes[p].erase(m) > 0;
      ASSERT_EQ(t.remove_route(p, m), ref_removed);
      ASSERT_FALSE(t.has_route(p, m));
    } else if (roll < 0.98) {
      const NodeId m = random_neighbor(rng);
      t.remove_neighbor(m);
      for (auto& [p, hops] : ref.routes) hops.erase(m);
    } else {
      t.clear_routes();
      ref.routes.clear();
    }

    if (step % 100 == 0) expect_equivalent(t, ref);
  }
  expect_equivalent(t, ref);
}

// Event matching and route-target union for events whose content straddles
// the boundary (including content entirely above it).
TEST(OverflowReference, EventMatchingAcrossBoundary) {
  Rng rng(7);
  SubscriptionTable t;
  ReferenceTable ref;
  for (int i = 0; i < 120; ++i) {
    const Pattern p = random_pattern(rng);
    if (rng.chance(0.5)) {
      t.add_local(p);
      ref.local.insert(p);
    }
    const NodeId m = random_neighbor(rng);
    t.add_route(p, m);
    ref.routes[p].insert(m);
  }

  for (int trial = 0; trial < 300; ++trial) {
    std::set<Pattern> content;
    const std::size_t n = 1 + rng.next_below(3);
    while (content.size() < n) content.insert(random_pattern(rng));
    const std::vector<Pattern> patterns(content.begin(), content.end());
    const EventPtr ev = event_with(patterns);

    for (Pattern p : patterns) ASSERT_TRUE(ev->matches(p));
    ASSERT_FALSE(ev->matches(Pattern{kUniverse + 1}));

    const bool ref_local = std::any_of(
        patterns.begin(), patterns.end(),
        [&ref](Pattern p) { return ref.local.contains(p); });
    ASSERT_EQ(t.matches_local(*ev), ref_local);

    const NodeId exclude = random_neighbor(rng);
    std::set<NodeId> ref_targets;
    for (Pattern p : patterns) {
      auto it = ref.routes.find(p);
      if (it == ref.routes.end()) continue;
      for (NodeId hop : it->second) {
        if (hop != exclude) ref_targets.insert(hop);
      }
    }
    ASSERT_EQ(t.route_targets(*ev, exclude),
              std::vector<NodeId>(ref_targets.begin(), ref_targets.end()));
  }
}

// LostBuffer's distinct-pattern summary (count + k-th select, ascending)
// must match a reference multiset for patterns across the boundary.
TEST(OverflowReference, LostBufferPatternSummaryAgainstReference) {
  Rng rng(99);
  LostBuffer lost(10000, Duration::seconds(100));
  std::map<Pattern, std::uint32_t> ref_counts;
  std::set<LostEntryInfo> ref_entries;

  for (int step = 0; step < 3000; ++step) {
    LostEntryInfo e;
    e.source = NodeId{static_cast<std::uint32_t>(rng.next_below(5))};
    e.pattern = random_pattern(rng);
    e.seq = SeqNo{1 + rng.next_below(40)};
    if (rng.chance(0.65)) {
      const bool added = ref_entries.insert(e).second;
      ASSERT_EQ(lost.add(e, SimTime::zero()), added);
      if (added) ++ref_counts[e.pattern];
    } else {
      const bool removed = ref_entries.erase(e) > 0;
      ASSERT_EQ(lost.remove(e), removed);
      if (removed && --ref_counts[e.pattern] == 0) {
        ref_counts.erase(e.pattern);
      }
    }

    if (step % 100 != 0) continue;
    ASSERT_EQ(lost.size(), ref_entries.size());
    ASSERT_EQ(lost.patterns_with_losses_count(), ref_counts.size());
    std::vector<Pattern> expect;
    expect.reserve(ref_counts.size());
    for (const auto& [p, c] : ref_counts) expect.push_back(p);
    ASSERT_EQ(lost.patterns_with_losses(), expect);
    for (std::size_t k = 0; k < expect.size(); ++k) {
      ASSERT_EQ(lost.pattern_with_losses_at(k), expect[k]);
    }
  }
}

}  // namespace
}  // namespace epicast
