// Unit tests of the conservative engine's synchronization machinery:
// lookahead derivation vs the link model's minimum delay, stall-freedom on
// cyclic shard graphs, FIFO order at equal deadlines across shard
// boundaries, and cross-shard cancel semantics (mailbox entries and lane
// events).
#include <gtest/gtest.h>

#include <vector>

#include "epicast/common/rng.hpp"
#include "epicast/net/link_model.hpp"
#include "epicast/sim/shard_engine.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {
namespace {

constexpr Duration kLook = Duration::micros(50);

/// Engine over `nodes` nodes in `shards` shards with the paper-default
/// 50 µs lookahead.
struct EngineFixture {
  Simulator sim{1};
  ShardEngine engine;
  EngineFixture(std::uint32_t nodes, std::uint32_t shards)
      : engine(sim, nodes, shards, kLook) {}
};

TEST(Lookahead, IsTheSmallerOfPropagationAndDirectMinimum) {
  EXPECT_EQ(ShardEngine::compute_lookahead(Duration::micros(50),
                                           Duration::micros(500)),
            Duration::micros(50));
  // Direct minimum governs when it is smaller; backed off 1 ns for the
  // nearest-nanosecond rounding of the uniform latency draw.
  EXPECT_EQ(ShardEngine::compute_lookahead(Duration::millis(1),
                                           Duration::micros(500)),
            Duration::micros(500) - Duration::nanos(1));
}

TEST(Lookahead, DegenerateModelsGiveNoWindow) {
  // A zero direct-latency floor (or zero propagation) leaves no safe
  // window; the runner must fall back to the serial path then.
  EXPECT_LE(ShardEngine::compute_lookahead(Duration::micros(50),
                                           Duration::zero()),
            Duration::zero());
  EXPECT_LE(ShardEngine::compute_lookahead(Duration::zero(),
                                           Duration::micros(500)),
            Duration::zero());
}

TEST(Lookahead, LinkModelNeverDeliversInsideTheWindow) {
  // Every overlay transmit costs at least the propagation delay, whatever
  // the queue state, message size, or bandwidth degradation — the bound
  // compute_lookahead takes for the overlay channel.
  LinkParams params;  // 10 Mbit/s, 50 µs propagation
  Rng rng(7);
  LinkModel model(params, Rng(11), /*nodes=*/8);
  const Duration look =
      ShardEngine::compute_lookahead(params.propagation, Duration::millis(2));
  SimTime now;
  for (int i = 0; i < 2000; ++i) {
    const NodeId from{static_cast<std::uint32_t>(rng.next_below(8))};
    NodeId to{static_cast<std::uint32_t>(rng.next_below(8))};
    if (to == from) to = NodeId{(to.value() + 1) % 8};
    const std::size_t bytes = 1 + rng.next_below(2000);
    const LinkModel::Outcome tx =
        model.transmit(from, to, bytes, now, /*lossless=*/false);
    EXPECT_GE(tx.delay, params.propagation);
    EXPECT_GE(tx.delay, look);
    now = now + Duration::micros(rng.next_below(200));
  }
}

TEST(Lookahead, DirectLatencyDrawsRespectTheRoundingBackoff) {
  // The direct channel draws uniform seconds and rounds to the nearest
  // nanosecond — the draw may land half a nanosecond under the configured
  // minimum, which is exactly why compute_lookahead backs off 1 ns.
  const Duration min = Duration::micros(500);
  const Duration max = Duration::millis(2);
  const Duration floor = min - Duration::nanos(1);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const Duration latency =
        Duration::seconds(rng.uniform(min.to_seconds(), max.to_seconds()));
    EXPECT_GE(latency, floor);
  }
}

TEST(Mailbox, CyclicShardGraphDoesNotStall) {
  // Two shards ping-ponging arrivals with long idle gaps between rounds:
  // both mailboxes are empty most of the time, so a horizon scheme that
  // waits for neighbour traffic would deadlock. The window base jumps to
  // the global minimum event time instead.
  EngineFixture f(2, 2);
  const Duration hop = kLook * 20;
  int rounds = 0;
  std::function<void(NodeId)> bounce = [&](NodeId to) {
    ++rounds;
    if (rounds >= 50) return;
    f.engine.schedule_arrival(NodeId{1u - to.value()}, hop,
                              [&bounce, to]() mutable {
                                bounce(NodeId{1u - to.value()});
                              });
  };
  f.engine.schedule_node_at(NodeId{0}, SimTime::zero() + kLook,
                            [&]() { bounce(NodeId{0}); });
  const SimTime deadline = SimTime::zero() + Duration::seconds(1.0);
  f.engine.run_until(deadline);
  EXPECT_EQ(rounds, 50);
  EXPECT_EQ(f.engine.now(), deadline);
  EXPECT_EQ(f.sim.now(), deadline);  // lockstep clock followed
  EXPECT_GT(f.engine.stats().windows, 0u);
  EXPECT_EQ(f.engine.stats().cross_posted, 49u);
}

TEST(Mailbox, FifoAtEqualDeadlineHoldsAcrossShardBoundaries) {
  // Lane events and mailbox arrivals for different shards landing at the
  // same instant must fire in scheduling order — the shared tie-break
  // counter is global, not per-lane.
  EngineFixture f(4, 4);  // one node per shard
  const SimTime t = SimTime::zero() + Duration::millis(1);
  std::vector<int> order;
  f.engine.schedule_node_at(NodeId{0}, t, [&]() { order.push_back(0); });
  f.engine.schedule_node_at(NodeId{3}, t, [&]() { order.push_back(1); });
  f.engine.schedule_arrival(NodeId{1}, t - SimTime::zero(),
                            [&]() { order.push_back(2); });
  f.engine.schedule_arrival(NodeId{2}, t - SimTime::zero(),
                            [&]() { order.push_back(3); });
  f.engine.schedule_master_at(t, [&]() { order.push_back(4); });
  f.engine.run_until(t + kLook);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Mailbox, ArrivalOrderSurvivesTheBarrierDrain) {
  // Arrivals posted from inside an executing event carry the (time, seq)
  // stamped at send time; the barrier drain re-inserting them into another
  // lane's heap must not reorder equal-deadline entries.
  EngineFixture f(2, 2);
  std::vector<int> order;
  f.engine.schedule_node_at(NodeId{0}, SimTime::zero() + kLook, [&]() {
    // Same destination, same deadline, three posts: FIFO expected.
    for (int i = 0; i < 3; ++i) {
      f.engine.schedule_arrival(NodeId{1}, kLook * 4,
                                [&order, i]() { order.push_back(i); });
    }
  });
  f.engine.run_until(SimTime::zero() + Duration::millis(1));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(f.engine.stats().drained, 3u);
}

TEST(Mailbox, CancelBeforeDrainSuppressesTheArrival) {
  EngineFixture f(2, 2);
  bool fired = false;
  const MailRef ref = f.engine.schedule_arrival(
      NodeId{1}, Duration::millis(1), [&]() { fired = true; });
  EXPECT_TRUE(f.engine.cancel(ref));
  EXPECT_FALSE(f.engine.cancel(ref));  // idempotent
  f.engine.run_until(SimTime::zero() + Duration::millis(2));
  EXPECT_FALSE(fired);
  EXPECT_EQ(f.engine.stats().cancelled, 1u);
  EXPECT_EQ(f.engine.stats().drained, 0u);
}

TEST(Mailbox, CancelAfterDrainIsInert) {
  EngineFixture f(2, 2);
  int fired = 0;
  const MailRef ref = f.engine.schedule_arrival(
      NodeId{1}, Duration::millis(1), [&]() { ++fired; });
  f.engine.run_until(SimTime::zero() + Duration::millis(2));
  EXPECT_EQ(fired, 1);
  // The entry moved into the lane heap (and executed) at the barrier;
  // the stale MailRef must not touch whatever occupies the slot now.
  EXPECT_FALSE(f.engine.cancel(ref));
  EXPECT_FALSE(f.engine.cancel(MailRef{}));  // default ref is inert too
}

TEST(Mailbox, CrossShardLaneEventCancelWorksMidWindow) {
  // An event executing on shard 0 cancels a timer on shard 1 scheduled
  // later in the same lookahead window. The merged execution re-scans all
  // lane heads each step, so the cancellation must take effect.
  EngineFixture f(2, 2);
  bool victim_fired = false;
  const SimTime t0 = SimTime::zero() + Duration::millis(1);
  EventHandle victim =
      f.engine.schedule_node_at(NodeId{1}, t0 + Duration::nanos(10),
                                [&]() { victim_fired = true; });
  f.engine.schedule_node_at(NodeId{0}, t0, [&]() {
    EXPECT_TRUE(victim.pending());
    EXPECT_TRUE(victim.cancel());
  });
  f.engine.run_until(t0 + Duration::millis(1));
  EXPECT_FALSE(victim_fired);
}

TEST(Mailbox, ExecutedCountsEventsAcrossAllLanes) {
  EngineFixture f(4, 2);
  int fired = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    f.engine.schedule_node_at(NodeId{n},
                              SimTime::zero() + Duration::micros(100 * (n + 1)),
                              [&]() { ++fired; });
  }
  f.engine.schedule_master_at(SimTime::zero() + Duration::millis(1),
                              [&]() { ++fired; });
  f.engine.run_until(SimTime::zero() + Duration::millis(2));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(f.engine.executed(), 5u);
}

}  // namespace
}  // namespace epicast
