// Randomized stress sweep over the serial-vs-sharded equivalence space:
// each iteration draws a scenario (node count, shard count, worker-thread
// count, algorithm, loss, sizing, optional churn/overlay variation) and
// asserts the sharded run's result_json is byte-identical to the serial
// one. CI runs this at
// EPICAST_STRESS_ITERS=200 under ASan and TSan; the default is sized for
// the tier-1 budget on small hosts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "epicast/common/rng.hpp"
#include "epicast/metrics/result_json.hpp"
#include "epicast/scenario/runner.hpp"

namespace epicast {
namespace {

using metrics::result_json;

int stress_iterations() {
  const char* env = std::getenv("EPICAST_STRESS_ITERS");
  if (env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return 40;
}

TEST(ShardStress, RandomScenariosMatchSerialByteForByte) {
  const int iters = stress_iterations();
  Rng rng(0xE51CA57);
  constexpr Algorithm kAlgorithms[] = {
      Algorithm::NoRecovery,     Algorithm::Push,
      Algorithm::SubscriberPull, Algorithm::PublisherPull,
      Algorithm::CombinedPull,   Algorithm::RandomPull,
  };
  for (int i = 0; i < iters; ++i) {
    const Algorithm a = kAlgorithms[rng.next_below(6)];
    ScenarioConfig cfg = ScenarioConfig::paper_defaults(a);
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    cfg.nodes = 10 + static_cast<std::uint32_t>(rng.next_below(31));
    cfg.warmup = Duration::seconds(0.2);
    cfg.measure = Duration::seconds(0.5 + 0.1 * rng.next_below(4));
    cfg.recovery_horizon = Duration::seconds(0.5);
    cfg.link_error_rate = 0.05 * rng.next_below(5);  // {0 .. 0.2}
    cfg.sizing_mode =
        rng.next_below(2) == 0 ? SizingMode::Nominal : SizingMode::Wire;
    if (rng.next_below(4) == 0) {
      cfg.reconfiguration_interval = Duration::seconds(0.25);
      cfg.route_repair = rng.next_below(2) == 0
                             ? ScenarioConfig::RouteRepair::Oracle
                             : ScenarioConfig::RouteRepair::Protocol;
    }
    if (rng.next_below(4) == 0) {
      // Cyclic overlays require the oracle bootstrap (flooding does not
      // converge routes on them — the serial path rejects the combination
      // too).
      cfg.overlay = OverlayKind::RandomRegular;
      cfg.overlay_degree = 4;
      cfg.bootstrap = ScenarioConfig::SubscriptionBootstrap::Oracle;
    }
    const std::uint32_t shards =
        2 + static_cast<std::uint32_t>(rng.next_below(7));  // 2..8
    const std::uint32_t threads =
        1 + static_cast<std::uint32_t>(rng.next_below(4));  // 1..4

    cfg.shards = 1;
    cfg.threads = 1;
    const std::string serial = result_json(run_scenario(cfg));
    cfg.shards = shards;
    cfg.threads = threads;
    const std::string sharded = result_json(run_scenario(cfg));
    EXPECT_EQ(sharded, serial)
        << "iteration " << i << ": algorithm=" << to_string(a)
        << " nodes=" << cfg.nodes << " shards=" << shards
        << " threads=" << threads << " loss=" << cfg.link_error_rate
        << " seed=" << cfg.seed;
    if (HasFailure()) break;  // one full diff is enough to debug
  }
}

}  // namespace
}  // namespace epicast
