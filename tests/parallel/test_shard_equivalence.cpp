// Serial-vs-sharded equivalence: the conservative engine must reproduce
// the serial scheduler's results BIT-IDENTICALLY — same result_json bytes,
// same oracle check count — for every algorithm, sizing mode, loss rate,
// seed, shard count, and worker-thread count. This is the contract that
// makes `--shards`/`--threads` results publishable interchangeably with
// serial runs.
#include <gtest/gtest.h>

#include <string>

#include "epicast/fault/plan.hpp"
#include "epicast/metrics/result_json.hpp"
#include "epicast/scenario/runner.hpp"

namespace epicast {
namespace {

using metrics::result_json;

/// Small but complete scenario: every phase (flood, warmup, window,
/// recovery horizon) runs, every protocol path is exercised.
ScenarioConfig quick(Algorithm a, std::uint64_t seed) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(a);
  cfg.nodes = 20;
  cfg.warmup = Duration::seconds(0.5);
  cfg.measure = Duration::seconds(1.0);
  cfg.recovery_horizon = Duration::seconds(1.0);
  cfg.seed = seed;
  return cfg;
}

/// Runs `cfg` serially, then at each shards in {2, 4, 7} × threads in
/// {1, 2, 4}, and asserts every sharded/threaded run is byte-identical to
/// the serial one. threads > shards clamps inside the runner, so the
/// duplicate corner (shards=2, threads=4) still covers the clamp path.
void expect_equivalent(ScenarioConfig cfg, const std::string& what) {
  cfg.shards = 1;
  cfg.threads = 1;
  const ScenarioResult serial = run_scenario(cfg);
  const std::string serial_json = result_json(serial);
  for (const std::uint32_t k : {2u, 4u, 7u}) {
    for (const std::uint32_t t : {1u, 2u, 4u}) {
      cfg.shards = k;
      cfg.threads = t;
      const ScenarioResult sharded = run_scenario(cfg);
      EXPECT_EQ(result_json(sharded), serial_json)
          << what << " diverged at shards=" << k << " threads=" << t;
      EXPECT_EQ(sharded.oracle_checks, serial.oracle_checks)
          << what << " oracle activity differs at shards=" << k
          << " threads=" << t;
      EXPECT_EQ(sharded.sim_events_executed, serial.sim_events_executed)
          << what << " event count differs at shards=" << k
          << " threads=" << t;
    }
  }
}

class ShardEquivalence : public ::testing::TestWithParam<Algorithm> {};

// Each algorithm gets three configurations chosen so that, across the six
// algorithms, the grid covers both sizing modes, losses {0, 0.05, 0.2},
// and seeds 1–5. (The full cross product would be 720 scenario runs;
// the stress test samples that space randomly instead.)
TEST_P(ShardEquivalence, MatchesSerialAcrossSizingLossAndSeeds) {
  const Algorithm a = GetParam();
  const auto idx = static_cast<std::uint64_t>(a);
  struct Combo {
    SizingMode sizing;
    double loss;
    std::uint64_t seed;
  };
  const Combo combos[] = {
      {SizingMode::Nominal, 0.0, 1 + idx % 5},
      {SizingMode::Wire, 0.05, 1 + (idx + 2) % 5},
      {(idx % 2 == 0) ? SizingMode::Nominal : SizingMode::Wire, 0.2,
       1 + (idx + 4) % 5},
  };
  for (const Combo& c : combos) {
    ScenarioConfig cfg = quick(a, c.seed);
    cfg.sizing_mode = c.sizing;
    cfg.link_error_rate = c.loss;
    expect_equivalent(
        cfg, "loss=" + std::to_string(c.loss) +
                 " seed=" + std::to_string(c.seed) +
                 (c.sizing == SizingMode::Wire ? " wire" : " nominal"));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ShardEquivalence,
    ::testing::Values(Algorithm::NoRecovery, Algorithm::Push,
                      Algorithm::SubscriberPull, Algorithm::PublisherPull,
                      Algorithm::CombinedPull, Algorithm::RandomPull),
    [](const auto& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ShardEquivalenceSpecial, ChurnWithProtocolRouteRepair) {
  ScenarioConfig cfg = quick(Algorithm::Push, 3);
  cfg.reconfiguration_interval = Duration::seconds(0.2);
  cfg.route_repair = ScenarioConfig::RouteRepair::Protocol;
  expect_equivalent(cfg, "churn + protocol route repair");
}

TEST(ShardEquivalenceSpecial, ChaosFaultPlan) {
  ScenarioConfig cfg = quick(Algorithm::CombinedPull, 7);
  std::string err;
  const auto plan = fault::parse_plan(
      "churn(period=0.3,down=0.1);burst(p=0.05,r=0.5,start=0.2,stop=1.0)",
      &err);
  ASSERT_TRUE(plan) << err;
  cfg.faults = *plan;
  expect_equivalent(cfg, "chaos fault plan");
}

TEST(ShardEquivalenceSpecial, OracleBootstrapWithRestrictedPublishers) {
  // The scale path: converged routes installed directly, publishing
  // restricted to a subset — exercises the master lane heavily.
  ScenarioConfig cfg = quick(Algorithm::RandomPull, 9);
  cfg.nodes = 120;
  cfg.bootstrap = ScenarioConfig::SubscriptionBootstrap::Oracle;
  cfg.publisher_count = 12;
  expect_equivalent(cfg, "oracle bootstrap, 120 nodes, 12 publishers");
}

TEST(ShardEquivalenceSpecial, ShardsClampToNodeCount) {
  // More shards than nodes clamps rather than creating empty lanes.
  ScenarioConfig cfg = quick(Algorithm::SubscriberPull, 2);
  cfg.shards = 1;
  const std::string serial = result_json(run_scenario(cfg));
  cfg.shards = 64;  // > nodes = 20
  EXPECT_EQ(result_json(run_scenario(cfg)), serial);
}

}  // namespace
}  // namespace epicast
