// Data-race regression tier for the worker pool. These scenarios are
// chosen to maximise cross-thread traffic through every shared structure
// the threaded engine touches — mailbox posts from worker lanes, deferred
// observer/oracle/tracker replay, pool hand-offs of cross-shard
// MessagePtrs, fault-filter reads of master-written crash state — and are
// meant to run under TSan (ctest -L parallel on the sanitizer job, with
// EPICAST_THREADS=4). Functionally they assert the same byte-identity
// contract as the equivalence tier, so they also earn their keep in plain
// builds.
#include <gtest/gtest.h>

#include <string>

#include "epicast/fault/plan.hpp"
#include "epicast/metrics/result_json.hpp"
#include "epicast/scenario/runner.hpp"

namespace epicast {
namespace {

using metrics::result_json;

void expect_threaded_matches_serial(ScenarioConfig cfg,
                                    const std::string& what) {
  cfg.shards = 1;
  cfg.threads = 1;
  const ScenarioResult serial = run_scenario(cfg);
  const std::string serial_json = result_json(serial);
  for (const std::uint32_t t : {2u, 4u}) {
    cfg.shards = 4;
    cfg.threads = t;
    const ScenarioResult threaded = run_scenario(cfg);
    EXPECT_EQ(result_json(threaded), serial_json)
        << what << " diverged at threads=" << t;
    EXPECT_EQ(threaded.oracle_checks, serial.oracle_checks)
        << what << " oracle activity differs at threads=" << t;
    // Pool stats are deliberately NOT compared: deferred callbacks hold
    // message blocks across barriers, so allocation/reuse patterns are
    // execution artifacts — excluded from result_json for the same reason.
    // Races in the pool itself are TSan's job on the sanitizer run.
  }
}

// Dense cross-shard gossip: every node publishes, pull-based recovery keeps
// request/reply pairs crossing lane boundaries for the whole run.
TEST(ThreadRaces, DenseGossipCrossTraffic) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(Algorithm::CombinedPull);
  cfg.nodes = 32;
  cfg.seed = 21;
  cfg.warmup = Duration::seconds(0.3);
  cfg.measure = Duration::seconds(1.0);
  cfg.recovery_horizon = Duration::seconds(0.8);
  cfg.link_error_rate = 0.15;  // plenty of recovery traffic
  expect_threaded_matches_serial(cfg, "dense gossip");
}

// Churn + chaos: master-lane topology mutations and crash/burst state are
// written in serial windows and read by workers — the barrier
// happens-before edge under test.
TEST(ThreadRaces, ChurnAndChaosMasterState) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(Algorithm::Push);
  cfg.nodes = 24;
  cfg.seed = 5;
  cfg.warmup = Duration::seconds(0.3);
  cfg.measure = Duration::seconds(1.0);
  cfg.recovery_horizon = Duration::seconds(0.8);
  cfg.reconfiguration_interval = Duration::seconds(0.2);
  std::string err;
  const auto plan = fault::parse_plan(
      "churn(period=0.3,down=0.1);burst(p=0.05,r=0.5,start=0.2,stop=1.0)",
      &err);
  ASSERT_TRUE(plan) << err;
  cfg.faults = *plan;
  expect_threaded_matches_serial(cfg, "churn + chaos");
}

// Wire sizing walks the codec on every send from worker threads; the
// profiler timing path adds the per-lane clock reads.
TEST(ThreadRaces, WireSizingWithProfiler) {
  ScenarioConfig cfg =
      ScenarioConfig::paper_defaults(Algorithm::SubscriberPull);
  cfg.nodes = 28;
  cfg.seed = 13;
  cfg.warmup = Duration::seconds(0.3);
  cfg.measure = Duration::seconds(1.0);
  cfg.recovery_horizon = Duration::seconds(0.8);
  cfg.sizing_mode = SizingMode::Wire;
  cfg.profile_hotpath = true;
  expect_threaded_matches_serial(cfg, "wire sizing + profiler");
}

}  // namespace
}  // namespace epicast
