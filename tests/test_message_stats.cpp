// Unit tests for traffic accounting (overhead metrics, §IV-E).
#include "epicast/metrics/message_stats.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

class FakeMessage final : public Message {
 public:
  explicit FakeMessage(MessageClass cls) : cls_(cls) {}
  MessageClass message_class() const override { return cls_; }
  std::size_t size_bytes() const override { return 1; }

 private:
  MessageClass cls_;
};

TEST(MessageStats, CountsSendsPerClassAndChannel) {
  MessageStats stats(3);
  stats.on_send(NodeId{0}, NodeId{1}, FakeMessage{MessageClass::Event}, true);
  stats.on_send(NodeId{0}, NodeId{1}, FakeMessage{MessageClass::Event}, true);
  stats.on_send(NodeId{1}, NodeId{2},
                FakeMessage{MessageClass::GossipDigest}, true);
  stats.on_send(NodeId{2}, NodeId{0},
                FakeMessage{MessageClass::GossipReply}, false);
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.sends_of(MessageClass::Event), 2u);
  EXPECT_EQ(snap.gossip_sends(), 2u);
  EXPECT_EQ(snap.overlay_sends, 3u);
  EXPECT_EQ(snap.direct_sends, 1u);
  EXPECT_DOUBLE_EQ(snap.gossip_event_ratio(), 1.0);
}

TEST(MessageStats, PerNodeAttribution) {
  MessageStats stats(3);
  stats.on_send(NodeId{1}, NodeId{2},
                FakeMessage{MessageClass::GossipDigest}, true);
  stats.on_send(NodeId{1}, NodeId{0},
                FakeMessage{MessageClass::GossipRequest}, false);
  stats.on_send(NodeId{1}, NodeId{2}, FakeMessage{MessageClass::Event}, true);
  EXPECT_EQ(stats.gossip_sends_by(NodeId{1}), 2u);
  EXPECT_EQ(stats.event_sends_by(NodeId{1}), 1u);
  EXPECT_EQ(stats.gossip_sends_by(NodeId{0}), 0u);
}

TEST(MessageStats, LossAndDropCounters) {
  MessageStats stats(2);
  stats.on_loss(NodeId{0}, NodeId{1}, FakeMessage{MessageClass::Event}, true);
  stats.on_drop_no_link(NodeId{0}, NodeId{1},
                        FakeMessage{MessageClass::Event});
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.losses_of(MessageClass::Event), 1u);
  EXPECT_EQ(snap.drops_no_link, 1u);
}

TEST(MessageStats, SnapshotDifferenceIsolatesWindow) {
  MessageStats stats(2);
  stats.on_send(NodeId{0}, NodeId{1}, FakeMessage{MessageClass::Event}, true);
  const auto before = stats.snapshot();
  stats.on_send(NodeId{0}, NodeId{1}, FakeMessage{MessageClass::Event}, true);
  stats.on_send(NodeId{0}, NodeId{1},
                FakeMessage{MessageClass::GossipDigest}, true);
  const auto window = stats.snapshot() - before;
  EXPECT_EQ(window.sends_of(MessageClass::Event), 1u);
  EXPECT_EQ(window.gossip_sends(), 1u);
  EXPECT_DOUBLE_EQ(window.gossip_event_ratio(), 1.0);
}

TEST(MessageStats, RatioWithNoEventsIsZero) {
  MessageStats stats(2);
  stats.on_send(NodeId{0}, NodeId{1},
                FakeMessage{MessageClass::GossipDigest}, true);
  EXPECT_DOUBLE_EQ(stats.snapshot().gossip_event_ratio(), 0.0);
}

TEST(MessageClassNames, AreStable) {
  EXPECT_STREQ(to_string(MessageClass::Event), "event");
  EXPECT_STREQ(to_string(MessageClass::Control), "control");
  EXPECT_STREQ(to_string(MessageClass::GossipDigest), "gossip-digest");
  EXPECT_TRUE(is_gossip(MessageClass::GossipRequest));
  EXPECT_FALSE(is_gossip(MessageClass::Event));
}

}  // namespace
}  // namespace epicast
