// Unit tests for traffic accounting (overhead metrics, §IV-E).
#include "epicast/metrics/message_stats.hpp"

#include <gtest/gtest.h>

#include "epicast/gossip/messages.hpp"
#include "epicast/pubsub/messages.hpp"

namespace epicast {
namespace {

class FakeMessage final : public Message {
 public:
  explicit FakeMessage(MessageClass cls, std::size_t bytes = 1)
      : cls_(cls), bytes_(bytes) {}
  MessageClass message_class() const override { return cls_; }
  std::size_t size_bytes() const override { return bytes_; }

 private:
  MessageClass cls_;
  std::size_t bytes_;
};

TEST(MessageStats, CountsSendsPerClassAndChannel) {
  MessageStats stats(3);
  stats.on_send(NodeId{0}, NodeId{1}, FakeMessage{MessageClass::Event}, true);
  stats.on_send(NodeId{0}, NodeId{1}, FakeMessage{MessageClass::Event}, true);
  stats.on_send(NodeId{1}, NodeId{2},
                FakeMessage{MessageClass::GossipDigest}, true);
  stats.on_send(NodeId{2}, NodeId{0},
                FakeMessage{MessageClass::GossipReply}, false);
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.sends_of(MessageClass::Event), 2u);
  EXPECT_EQ(snap.gossip_sends(), 2u);
  EXPECT_EQ(snap.overlay_sends, 3u);
  EXPECT_EQ(snap.direct_sends, 1u);
  EXPECT_DOUBLE_EQ(snap.gossip_event_ratio(), 1.0);
}

TEST(MessageStats, PerNodeAttribution) {
  MessageStats stats(3);
  stats.on_send(NodeId{1}, NodeId{2},
                FakeMessage{MessageClass::GossipDigest}, true);
  stats.on_send(NodeId{1}, NodeId{0},
                FakeMessage{MessageClass::GossipRequest}, false);
  stats.on_send(NodeId{1}, NodeId{2}, FakeMessage{MessageClass::Event}, true);
  EXPECT_EQ(stats.gossip_sends_by(NodeId{1}), 2u);
  EXPECT_EQ(stats.event_sends_by(NodeId{1}), 1u);
  EXPECT_EQ(stats.gossip_sends_by(NodeId{0}), 0u);
}

TEST(MessageStats, LossAndDropCounters) {
  MessageStats stats(2);
  stats.on_loss(NodeId{0}, NodeId{1}, FakeMessage{MessageClass::Event}, true);
  stats.on_drop_no_link(NodeId{0}, NodeId{1},
                        FakeMessage{MessageClass::Event});
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.losses_of(MessageClass::Event), 1u);
  EXPECT_EQ(snap.drops_no_link, 1u);
}

TEST(MessageStats, SnapshotDifferenceIsolatesWindow) {
  MessageStats stats(2);
  stats.on_send(NodeId{0}, NodeId{1}, FakeMessage{MessageClass::Event}, true);
  const auto before = stats.snapshot();
  stats.on_send(NodeId{0}, NodeId{1}, FakeMessage{MessageClass::Event}, true);
  stats.on_send(NodeId{0}, NodeId{1},
                FakeMessage{MessageClass::GossipDigest}, true);
  const auto window = stats.snapshot() - before;
  EXPECT_EQ(window.sends_of(MessageClass::Event), 1u);
  EXPECT_EQ(window.gossip_sends(), 1u);
  EXPECT_DOUBLE_EQ(window.gossip_event_ratio(), 1.0);
}

TEST(MessageStats, RatioWithNoEventsIsZero) {
  MessageStats stats(2);
  stats.on_send(NodeId{0}, NodeId{1},
                FakeMessage{MessageClass::GossipDigest}, true);
  EXPECT_DOUBLE_EQ(stats.snapshot().gossip_event_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(stats.snapshot().gossip_event_byte_ratio(), 0.0);
}

TEST(MessageStats, NominalModeChargesNominalBytes) {
  MessageStats stats(2, SizingMode::Nominal);
  stats.on_send(NodeId{0}, NodeId{1},
                FakeMessage{MessageClass::Event, /*bytes=*/200}, true);
  stats.on_send(NodeId{0}, NodeId{1},
                FakeMessage{MessageClass::GossipDigest, /*bytes=*/100}, true);
  stats.on_send(NodeId{0}, NodeId{1},
                FakeMessage{MessageClass::GossipReply, /*bytes=*/50}, false);
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.event_bytes(), 200u);
  EXPECT_EQ(snap.gossip_bytes(), 150u);
  EXPECT_DOUBLE_EQ(snap.gossip_event_byte_ratio(), 150.0 / 200.0);
}

TEST(MessageStats, WireModeChargesCodecFrameBytes) {
  MessageStats stats(2, SizingMode::Wire);
  const SubscribeMessage msg(Pattern{7}, true);
  stats.on_send(NodeId{0}, NodeId{1}, msg, true);
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.bytes_of(MessageClass::Control), msg.wire_size_bytes());
  // The wire frame of a subscription is far smaller than its 64-byte
  // nominal stand-in.
  EXPECT_LT(snap.bytes_of(MessageClass::Control), SubscribeMessage::kWireBytes);
}

TEST(MessageStats, SnapshotDifferenceIsolatesBytes) {
  MessageStats stats(2, SizingMode::Nominal);
  stats.on_send(NodeId{0}, NodeId{1},
                FakeMessage{MessageClass::Event, 10}, true);
  const auto before = stats.snapshot();
  stats.on_send(NodeId{0}, NodeId{1},
                FakeMessage{MessageClass::Event, 30}, true);
  const auto window = stats.snapshot() - before;
  EXPECT_EQ(window.event_bytes(), 30u);
}

TEST(MessageClassNames, AreStable) {
  EXPECT_STREQ(to_string(MessageClass::Event), "event");
  EXPECT_STREQ(to_string(MessageClass::Control), "control");
  EXPECT_STREQ(to_string(MessageClass::GossipDigest), "gossip-digest");
  EXPECT_TRUE(is_gossip(MessageClass::GossipRequest));
  EXPECT_FALSE(is_gossip(MessageClass::Event));
}

}  // namespace
}  // namespace epicast
