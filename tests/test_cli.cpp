// Unit tests for the epicast_sim flag parser.
#include "epicast/scenario/cli.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

CliParse parse(std::initializer_list<const char*> args) {
  std::vector<std::string> v;
  for (const char* a : args) v.emplace_back(a);
  return parse_cli(v);
}

TEST(Cli, DefaultsArePaperDefaults) {
  const CliParse p = parse({});
  EXPECT_FALSE(p.error.has_value());
  EXPECT_EQ(p.config.nodes, 100u);
  EXPECT_EQ(p.config.algorithm, Algorithm::CombinedPull);
  EXPECT_DOUBLE_EQ(p.config.link_error_rate, 0.1);
  EXPECT_EQ(p.config.gossip.buffer_size, 1500u);
}

TEST(Cli, ParsesEveryFlag) {
  const CliParse p = parse({"--algorithm=push", "--nodes=40",
                            "--epsilon=0.05", "--rate=5", "--seed=9",
                            "--beta=700", "--interval=0.02",
                            "--pforward=0.8", "--psource=0.3", "--pi-max=4",
                            "--patterns-per-event=2", "--universe=50",
                            "--measure=2.5", "--warmup=0.5", "--horizon=4",
                            "--oob-loss=0.02", "--csv"});
  ASSERT_FALSE(p.error.has_value()) << *p.error;
  const ScenarioConfig& c = p.config;
  EXPECT_EQ(c.algorithm, Algorithm::Push);
  EXPECT_EQ(c.nodes, 40u);
  EXPECT_DOUBLE_EQ(c.link_error_rate, 0.05);
  EXPECT_DOUBLE_EQ(c.publish_rate_hz, 5.0);
  EXPECT_EQ(c.seed, 9u);
  EXPECT_EQ(c.gossip.buffer_size, 700u);
  EXPECT_EQ(c.gossip.interval, Duration::millis(20));
  EXPECT_DOUBLE_EQ(c.gossip.forward_probability, 0.8);
  EXPECT_DOUBLE_EQ(c.gossip.source_probability, 0.3);
  EXPECT_EQ(c.patterns_per_subscriber, 4u);
  EXPECT_EQ(c.patterns_per_event, 2u);
  EXPECT_EQ(c.pattern_universe, 50u);
  EXPECT_EQ(c.measure, Duration::seconds(2.5));
  EXPECT_EQ(c.warmup, Duration::seconds(0.5));
  EXPECT_EQ(c.recovery_horizon, Duration::seconds(4.0));
  EXPECT_DOUBLE_EQ(c.effective_oob_loss(), 0.02);
  EXPECT_TRUE(p.emit_csv);
}

TEST(Cli, ReconfigDefaultsToReliableLinks) {
  const CliParse p = parse({"--reconfig=0.2"});
  ASSERT_FALSE(p.error.has_value());
  ASSERT_TRUE(p.config.reconfiguration_interval.has_value());
  EXPECT_EQ(*p.config.reconfiguration_interval, Duration::millis(200));
  EXPECT_DOUBLE_EQ(p.config.link_error_rate, 0.0);
}

TEST(Cli, ReconfigWithExplicitEpsilonKeepsIt) {
  const CliParse p = parse({"--reconfig=0.2", "--epsilon=0.05"});
  ASSERT_FALSE(p.error.has_value());
  EXPECT_DOUBLE_EQ(p.config.link_error_rate, 0.05);
}

TEST(Cli, RouteRepairModes) {
  EXPECT_EQ(parse({"--route-repair=protocol"}).config.route_repair,
            ScenarioConfig::RouteRepair::Protocol);
  EXPECT_EQ(parse({"--route-repair=oracle"}).config.route_repair,
            ScenarioConfig::RouteRepair::Oracle);
  EXPECT_TRUE(parse({"--route-repair=magic"}).error.has_value());
}

TEST(Cli, HelpFlag) {
  EXPECT_TRUE(parse({"--help"}).show_help);
  EXPECT_TRUE(parse({"-h"}).show_help);
  EXPECT_NE(cli_usage().find("--algorithm"), std::string::npos);
}

TEST(Cli, RejectsUnknownFlagsAndBadValues) {
  EXPECT_TRUE(parse({"--bogus=1"}).error.has_value());
  EXPECT_TRUE(parse({"--nodes=abc"}).error.has_value());
  EXPECT_TRUE(parse({"--nodes=1"}).error.has_value());     // < 2
  EXPECT_TRUE(parse({"--epsilon=1.5"}).error.has_value());
  EXPECT_TRUE(parse({"--algorithm=magic"}).error.has_value());
  EXPECT_TRUE(parse({"stray"}).error.has_value());
  EXPECT_TRUE(parse({"--interval=-0.1"}).error.has_value());
}

TEST(Cli, ParsedConfigValidates) {
  const CliParse p = parse({"--algorithm=random-pull", "--nodes=30",
                            "--measure=1"});
  ASSERT_FALSE(p.error.has_value());
  p.config.validate();  // must not die
}

}  // namespace
}  // namespace epicast
