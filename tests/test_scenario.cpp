// Integration tests on whole scenarios: determinism, the paper's headline
// qualitative claims on small instances, the reconfiguration scenario, and
// config plumbing. Sizes are kept small so the suite stays fast.
#include "epicast/scenario/runner.hpp"

#include <gtest/gtest.h>

#include "epicast/scenario/config.hpp"

namespace epicast {
namespace {

ScenarioConfig small(Algorithm algorithm, std::uint64_t seed = 11) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(algorithm);
  cfg.nodes = 30;
  cfg.seed = seed;
  cfg.warmup = Duration::seconds(1.0);
  cfg.measure = Duration::seconds(2.0);
  return cfg;
}

TEST(Scenario, SameSeedBitIdenticalResults) {
  const ScenarioResult a = run_scenario(small(Algorithm::CombinedPull));
  const ScenarioResult b = run_scenario(small(Algorithm::CombinedPull));
  EXPECT_EQ(a.events_published, b.events_published);
  EXPECT_EQ(a.expected_pairs, b.expected_pairs);
  EXPECT_EQ(a.delivered_pairs, b.delivered_pairs);
  EXPECT_EQ(a.recovered_pairs, b.recovered_pairs);
  EXPECT_EQ(a.sim_events_executed, b.sim_events_executed);
  EXPECT_DOUBLE_EQ(a.delivery_rate, b.delivery_rate);
}

TEST(Scenario, DifferentSeedsDiffer) {
  const ScenarioResult a = run_scenario(small(Algorithm::NoRecovery, 1));
  const ScenarioResult b = run_scenario(small(Algorithm::NoRecovery, 2));
  EXPECT_NE(a.sim_events_executed, b.sim_events_executed);
}

TEST(Scenario, BaselineMatchesLinkLossAnalytically) {
  // With per-hop loss ε and mean subscriber distance d̄, the no-recovery
  // delivery rate is ≈ (1-ε)^d̄. Loose bounds keep this robust across seeds.
  ScenarioConfig cfg = small(Algorithm::NoRecovery);
  cfg.link_error_rate = 0.05;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_GT(r.delivery_rate, 0.6);
  EXPECT_LT(r.delivery_rate, 0.92);
  EXPECT_EQ(r.recovered_pairs, 0u);
  EXPECT_EQ(r.traffic.gossip_sends(), 0u);
}

TEST(Scenario, ZeroLossDeliversEverything) {
  ScenarioConfig cfg = small(Algorithm::NoRecovery);
  cfg.link_error_rate = 0.0;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_DOUBLE_EQ(r.delivery_rate, 1.0);
}

class RecoveryImproves : public ::testing::TestWithParam<Algorithm> {};

TEST_P(RecoveryImproves, OverNoRecoveryUnderLossyLinks) {
  const ScenarioResult base = run_scenario(small(Algorithm::NoRecovery));
  const ScenarioResult rec = run_scenario(small(GetParam()));
  EXPECT_GT(rec.delivery_rate, base.delivery_rate + 0.03)
      << to_string(GetParam());
  EXPECT_GT(rec.recovered_pairs, 0u);
  EXPECT_GT(rec.traffic.gossip_sends(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, RecoveryImproves,
                         ::testing::Values(Algorithm::Push,
                                           Algorithm::SubscriberPull,
                                           Algorithm::PublisherPull,
                                           Algorithm::CombinedPull,
                                           Algorithm::RandomPull));

TEST(Scenario, CombinedPullBeatsEitherPullAlone) {
  // Averaged over a few seeds: at 30 nodes a single run's margin between
  // combined and publisher-pull is within seed noise.
  const auto mean_delivery = [](Algorithm a) {
    double sum = 0.0;
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
      sum += run_scenario(small(a, seed)).delivery_rate;
    }
    return sum / 3.0;
  };
  const double combined = mean_delivery(Algorithm::CombinedPull);
  const double sub = mean_delivery(Algorithm::SubscriberPull);
  const double pub = mean_delivery(Algorithm::PublisherPull);
  EXPECT_GT(combined, sub);
  EXPECT_GT(combined, pub);
}

TEST(Scenario, ReconfigurationScenarioLosesAndRecovers) {
  ScenarioConfig churny = small(Algorithm::NoRecovery);
  churny.link_error_rate = 0.0;  // losses come from reconfiguration only
  churny.reconfiguration_interval = Duration::millis(200);
  const ScenarioResult base = run_scenario(churny);
  EXPECT_GT(base.reconfig_breaks, 5u);
  // The very last break's repair may still be pending when the run ends.
  EXPECT_GE(base.reconfig_repairs + 1, base.reconfig_breaks);
  EXPECT_GT(base.drops_no_link, 0u);
  EXPECT_LT(base.delivery_rate, 0.999);  // churn does cause loss
  EXPECT_GT(base.delivery_rate, 0.5);

  churny.algorithm = Algorithm::CombinedPull;
  const ScenarioResult rec = run_scenario(churny);
  EXPECT_GT(rec.delivery_rate, base.delivery_rate);
  EXPECT_GT(rec.delivery_rate, 0.97);
}

TEST(Scenario, OverlappingReconfigurationsStillRun) {
  ScenarioConfig cfg = small(Algorithm::CombinedPull);
  cfg.link_error_rate = 0.0;
  cfg.reconfiguration_interval = Duration::millis(30);  // overlapping
  cfg.measure = Duration::seconds(1.5);
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_GT(r.reconfig_breaks, 20u);
  EXPECT_GT(r.delivery_rate, 0.8);
}

TEST(Scenario, ReceiversPerEventMatchesClosedForm) {
  ScenarioConfig cfg = small(Algorithm::NoRecovery);
  cfg.link_error_rate = 0.0;
  const ScenarioResult r = run_scenario(cfg);
  // E[receivers] ≈ (N-1) · P(match), with P from the hypergeometric form.
  const double p_match = 1.0 - (67.0 / 70.0) * (66.0 / 69.0);
  EXPECT_NEAR(r.receivers_per_event, 29.0 * p_match, 0.6);
}

TEST(Scenario, EventualRateNeverBelowHorizonRate) {
  const ScenarioResult r = run_scenario(small(Algorithm::CombinedPull));
  EXPECT_GE(r.eventual_delivery_rate, r.delivery_rate);
  EXPECT_LE(r.delivery_rate, 1.0);
}

TEST(Scenario, GossipTotalsAreConsistent) {
  const ScenarioResult r = run_scenario(small(Algorithm::Push));
  EXPECT_GT(r.gossip_totals.rounds, 0u);
  EXPECT_GE(r.gossip_totals.events_served, r.gossip_totals.events_recovered);
  EXPECT_GT(r.gossip_totals.digests_originated, 0u);
}

TEST(Scenario, LowLoadPullGossipsLessThanPush) {
  // The paper's Fig. 10 claim: at low publish rate and low error rate,
  // reactive pull sends far fewer gossip messages than proactive push.
  ScenarioConfig cfg = small(Algorithm::Push);
  cfg.publish_rate_hz = 5.0;
  cfg.link_error_rate = 0.01;
  const ScenarioResult push = run_scenario(cfg);
  cfg.algorithm = Algorithm::CombinedPull;
  const ScenarioResult pull = run_scenario(cfg);
  EXPECT_LT(pull.gossip_msgs_per_dispatcher,
            0.6 * push.gossip_msgs_per_dispatcher);
}

TEST(ScenarioConfig, DescribeMentionsKeyParameters) {
  const ScenarioConfig cfg = ScenarioConfig::paper_defaults(Algorithm::Push);
  const std::string text = cfg.describe();
  EXPECT_NE(text.find("N (dispatchers)"), std::string::npos);
  EXPECT_NE(text.find("push"), std::string::npos);
  EXPECT_NE(text.find("0.030000s"), std::string::npos);  // T
  EXPECT_NE(text.find("1500"), std::string::npos);       // beta
}

TEST(ScenarioConfig, TimelineAccessors) {
  ScenarioConfig cfg;
  cfg.subscription_phase = Duration::seconds(0.5);
  cfg.warmup = Duration::seconds(1.5);
  cfg.measure = Duration::seconds(10.0);
  EXPECT_EQ(cfg.publish_start(), SimTime::seconds(0.5));
  EXPECT_EQ(cfg.window_start(), SimTime::seconds(2.0));
  EXPECT_EQ(cfg.window_end(), SimTime::seconds(12.0));
  EXPECT_GT(cfg.end_time(), cfg.window_end());
}

TEST(ScenarioConfig, OobLossDefaultsToLinkLoss) {
  ScenarioConfig cfg;
  cfg.link_error_rate = 0.07;
  EXPECT_DOUBLE_EQ(cfg.effective_oob_loss(), 0.07);
  cfg.oob_loss_rate = 0.01;
  EXPECT_DOUBLE_EQ(cfg.effective_oob_loss(), 0.01);
}

TEST(ScenarioConfigDeath, ValidateCatchesNonsense) {
  ScenarioConfig cfg;
  cfg.patterns_per_subscriber = 200;  // exceeds the universe
  EXPECT_DEATH(cfg.validate(), "within the pattern universe");
}

}  // namespace
}  // namespace epicast
