// Wire codec property tests: every message kind survives a
// decode(encode(m)) round trip with its semantic fields intact, the
// arithmetic size calculation is pinned to the serializer, and malformed
// frames — truncations, corrupt headers, overlong varints, hostile counts,
// arbitrary byte mutations — are rejected with a typed error, never a crash
// (the suite runs under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "epicast/common/rng.hpp"
#include "epicast/gossip/messages.hpp"
#include "epicast/pubsub/messages.hpp"
#include "epicast/wire/codec.hpp"

namespace epicast {
namespace {

using wire::Codec;
using wire::Decoded;
using wire::DecodeError;
using wire::FrameKind;
using wire::WireBuffer;

EventPtr make_event(std::uint32_t source, std::uint64_t seq,
                    std::vector<PatternSeq> patterns,
                    std::size_t payload_bytes = 200,
                    double published_s = 1.25) {
  return std::make_shared<EventData>(EventId{NodeId{source}, seq},
                                     std::move(patterns), payload_bytes,
                                     SimTime::seconds(published_s));
}

std::vector<std::uint8_t> encode_one(const Message& msg) {
  WireBuffer buf;
  Codec::encode(msg, buf);
  return {buf.bytes().begin(), buf.bytes().end()};
}

/// Encodes, decodes, and hands back the decoded message after checking the
/// frame-level invariants every kind shares.
MessagePtr round_trip(const Message& msg) {
  const std::vector<std::uint8_t> frame = encode_one(msg);
  EXPECT_EQ(frame.size(), Codec::encoded_size(msg))
      << "encoded_size must be pinned to encode()";
  EXPECT_EQ(frame.size(), msg.wire_size_bytes());
  const Decoded d = Codec::decode(frame);
  EXPECT_TRUE(d.ok()) << "decode failed: " << to_string(d.error());
  if (!d.ok()) return nullptr;
  EXPECT_EQ(Codec::kind_of(*d.message()), Codec::kind_of(msg));
  EXPECT_EQ(d.message()->message_class(), msg.message_class());
  return d.message();
}

std::vector<LostEntryInfo> some_losses() {
  return {{NodeId{3}, Pattern{7}, SeqNo{41}},
          {NodeId{3}, Pattern{7}, SeqNo{99}},
          {NodeId{250}, Pattern{69}, SeqNo{0}},
          {NodeId{1u << 20}, Pattern{0}, SeqNo{1u << 30}}};
}

// -- round trips, one per frame kind ------------------------------------------

TEST(WireRoundTrip, EventMessage) {
  const EventPtr ev = make_event(
      9, 1234567,
      {{Pattern{2}, SeqNo{10}}, {Pattern{5}, SeqNo{77}}, {Pattern{64}, SeqNo{3}}});
  const EventMessage msg(ev, {NodeId{9}, NodeId{4}, NodeId{17}});
  const MessagePtr out = round_trip(msg);
  ASSERT_NE(out, nullptr);
  const auto& m = static_cast<const EventMessage&>(*out);
  EXPECT_EQ(m.event()->id(), ev->id());
  EXPECT_EQ(m.event()->patterns(), ev->patterns());
  EXPECT_EQ(m.event()->payload_bytes(), ev->payload_bytes());
  EXPECT_EQ(m.event()->published_at(), ev->published_at());
  EXPECT_EQ(m.route(), msg.route());
}

TEST(WireRoundTrip, EventMessageEmptyRoute) {
  const EventMessage msg(make_event(0, 0, {{Pattern{0}, SeqNo{0}}}, 0, 0.0),
                         {});
  const MessagePtr out = round_trip(msg);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(static_cast<const EventMessage&>(*out).route().empty());
}

TEST(WireRoundTrip, SubscribeMessage) {
  for (const bool subscribe : {true, false}) {
    const SubscribeMessage msg(Pattern{68}, subscribe);
    const MessagePtr out = round_trip(msg);
    ASSERT_NE(out, nullptr);
    const auto& m = static_cast<const SubscribeMessage&>(*out);
    EXPECT_EQ(m.pattern(), msg.pattern());
    EXPECT_EQ(m.is_subscribe(), subscribe);
  }
}

// Satellite pin: the exact bytes of a SubscribeMessage frame. The live
// subscribe path (a restarted daemon re-announcing its subscriptions over
// the wire) depends on this framing staying stable across versions.
TEST(WireRoundTrip, SubscribeMessageFramingIsPinned) {
  const SubscribeMessage sub(Pattern{5}, /*subscribe=*/true);
  const std::vector<std::uint8_t> expected = {
      0x04, 0x00, 0x00, 0x00,  // len = 4 (ver + kind + pattern + flag)
      0x01,                    // version
      0x01,                    // kind = Subscribe
      0x05,                    // pattern 5 (varint)
      0x01,                    // subscribe flag
  };
  EXPECT_EQ(encode_one(sub), expected);

  const SubscribeMessage unsub(Pattern{5}, /*subscribe=*/false);
  std::vector<std::uint8_t> expected_unsub = expected;
  expected_unsub.back() = 0x00;
  EXPECT_EQ(encode_one(unsub), expected_unsub);
}

TEST(WireRoundTrip, Heartbeat) {
  for (const std::uint64_t incarnation : {std::uint64_t{1}, std::uint64_t{7},
                                          std::uint64_t{1} << 40}) {
    const HeartbeatMessage msg(incarnation);
    const MessagePtr out = round_trip(msg);
    ASSERT_NE(out, nullptr);
    const auto& m = static_cast<const HeartbeatMessage&>(*out);
    EXPECT_EQ(m.incarnation(), incarnation);
    EXPECT_TRUE(m.marks().empty());
    EXPECT_EQ(m.message_class(), MessageClass::Control);
  }
}

TEST(WireRoundTrip, HeartbeatCarriesStreamMarks) {
  const std::vector<StreamMark> marks = {
      {NodeId{3}, Pattern{0}, SeqNo{42}},
      {NodeId{200}, Pattern{15}, SeqNo{std::uint64_t{1} << 33}},
  };
  const HeartbeatMessage msg(/*incarnation=*/2, marks);
  const MessagePtr out = round_trip(msg);
  ASSERT_NE(out, nullptr);
  const auto& m = static_cast<const HeartbeatMessage&>(*out);
  EXPECT_EQ(m.incarnation(), 2u);
  EXPECT_EQ(m.marks(), marks);
}

TEST(WireRoundTrip, PushDigest) {
  const PushDigestMessage msg(
      NodeId{12}, /*nominal_bytes=*/100, Pattern{33},
      {{NodeId{1}, 5}, {NodeId{1}, 6}, {NodeId{200}, 1u << 24}}, /*hops=*/2);
  const MessagePtr out = round_trip(msg);
  ASSERT_NE(out, nullptr);
  const auto& m = static_cast<const PushDigestMessage&>(*out);
  EXPECT_EQ(m.gossiper(), msg.gossiper());
  EXPECT_EQ(m.pattern(), msg.pattern());
  EXPECT_EQ(m.ids(), msg.ids());
  EXPECT_EQ(m.hops(), msg.hops());
}

TEST(WireRoundTrip, SubscriberPullDigest) {
  const SubscriberPullDigestMessage msg(NodeId{4}, 100, Pattern{7},
                                        some_losses(), /*hops=*/5);
  const MessagePtr out = round_trip(msg);
  ASSERT_NE(out, nullptr);
  const auto& m = static_cast<const SubscriberPullDigestMessage&>(*out);
  EXPECT_EQ(m.gossiper(), msg.gossiper());
  EXPECT_EQ(m.pattern(), msg.pattern());
  EXPECT_EQ(m.wanted(), msg.wanted());
  EXPECT_EQ(m.hops(), msg.hops());
}

TEST(WireRoundTrip, PublisherPullDigest) {
  const PublisherPullDigestMessage msg(NodeId{4}, 100, NodeId{77},
                                       some_losses(),
                                       {NodeId{5}, NodeId{6}, NodeId{77}});
  const MessagePtr out = round_trip(msg);
  ASSERT_NE(out, nullptr);
  const auto& m = static_cast<const PublisherPullDigestMessage&>(*out);
  EXPECT_EQ(m.gossiper(), msg.gossiper());
  EXPECT_EQ(m.source(), msg.source());
  EXPECT_EQ(m.wanted(), msg.wanted());
  EXPECT_EQ(m.route(), msg.route());
}

TEST(WireRoundTrip, RandomPullDigest) {
  const RandomPullDigestMessage msg(NodeId{4}, 100, some_losses(), /*hops=*/1);
  const MessagePtr out = round_trip(msg);
  ASSERT_NE(out, nullptr);
  const auto& m = static_cast<const RandomPullDigestMessage&>(*out);
  EXPECT_EQ(m.gossiper(), msg.gossiper());
  EXPECT_EQ(m.wanted(), msg.wanted());
  EXPECT_EQ(m.hops(), msg.hops());
}

TEST(WireRoundTrip, RecoveryRequest) {
  const RecoveryRequestMessage msg(NodeId{19}, 100,
                                   {{NodeId{2}, 9}, {NodeId{3}, 0}});
  const MessagePtr out = round_trip(msg);
  ASSERT_NE(out, nullptr);
  const auto& m = static_cast<const RecoveryRequestMessage&>(*out);
  EXPECT_EQ(m.gossiper(), msg.gossiper());
  EXPECT_EQ(m.ids(), msg.ids());
}

TEST(WireRoundTrip, RecoveryReply) {
  const RecoveryReplyMessage msg(
      NodeId{19}, 100,
      {make_event(2, 9, {{Pattern{1}, SeqNo{4}}}),
       make_event(3, 0, {{Pattern{0}, SeqNo{1}}, {Pattern{68}, SeqNo{2}}}, 64)});
  const MessagePtr out = round_trip(msg);
  ASSERT_NE(out, nullptr);
  const auto& m = static_cast<const RecoveryReplyMessage&>(*out);
  EXPECT_EQ(m.gossiper(), msg.gossiper());
  ASSERT_EQ(m.events().size(), msg.events().size());
  for (std::size_t i = 0; i < m.events().size(); ++i) {
    EXPECT_EQ(m.events()[i]->id(), msg.events()[i]->id());
    EXPECT_EQ(m.events()[i]->patterns(), msg.events()[i]->patterns());
    EXPECT_EQ(m.events()[i]->payload_bytes(), msg.events()[i]->payload_bytes());
  }
}

// -- frame- and buffer-level properties ---------------------------------------

TEST(WireCodec, EncodeIsDeterministicAndBufferAppends) {
  const RecoveryRequestMessage msg(NodeId{1}, 100, {{NodeId{2}, 9}});
  const std::vector<std::uint8_t> once = encode_one(msg);

  // Re-encoding into a cleared buffer reproduces the bytes; encoding twice
  // without clearing concatenates two identical frames (batching contract).
  WireBuffer buf;
  Codec::encode(msg, buf);
  buf.clear();
  Codec::encode(msg, buf);
  Codec::encode(msg, buf);
  ASSERT_EQ(buf.size(), 2 * once.size());
  const auto bytes = buf.bytes();
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(bytes[i], once[i]);
    EXPECT_EQ(bytes[once.size() + i], once[i]);
  }
}

TEST(WireCodec, EventFrameChargesPayloadBytes) {
  // The paper's event size is dominated by payload; the wire frame must
  // carry it, not just the header fields (DESIGN.md "Wire format"). 300 vs
  // 500 keeps the payload-size varint at two bytes in both frames.
  const EventMessage small(make_event(1, 1, {{Pattern{1}, SeqNo{1}}}, 300), {});
  const EventMessage large(make_event(1, 1, {{Pattern{1}, SeqNo{1}}}, 500), {});
  EXPECT_EQ(Codec::encoded_size(large), Codec::encoded_size(small) + 200);
}

TEST(WireCodec, DecodedGossipMessageReportsFrameSizeAsNominal) {
  const PushDigestMessage msg(NodeId{12}, /*nominal_bytes=*/100, Pattern{3},
                              {{NodeId{1}, 5}}, 0);
  const std::vector<std::uint8_t> frame = encode_one(msg);
  const Decoded d = Codec::decode(frame);
  ASSERT_TRUE(d.ok());
  // The configured nominal size (100) is not carried on the wire; a decoded
  // message's size is its true frame size in both sizing modes.
  EXPECT_EQ(d.message()->size_bytes(), frame.size());
  EXPECT_EQ(d.message()->wire_size_bytes(), frame.size());
}

TEST(WireCodec, ForeignMessageSubclassFallsBackToNominalSize) {
  // Message types the codec has no frame for (the pure-gossip comparator,
  // test doubles) must keep working under SizingMode::Wire: their wire size
  // is their nominal size, and try_kind_of reports them as non-encodable.
  class Foreign final : public Message {
   public:
    MessageClass message_class() const override { return MessageClass::Event; }
    std::size_t size_bytes() const override { return 123; }
  };
  const Foreign msg;
  EXPECT_EQ(Codec::try_kind_of(msg), std::nullopt);
  EXPECT_EQ(Codec::encoded_size(msg), 123u);
  EXPECT_EQ(msg.wire_size_bytes(), 123u);
  EXPECT_EQ(sized_bytes(msg, SizingMode::Wire), 123u);
  EXPECT_EQ(sized_bytes(msg, SizingMode::Nominal), 123u);
}

TEST(WireCodec, WireSizeIsCachedPerMessage) {
  const SubscribeMessage msg(Pattern{5}, true);
  const std::size_t first = msg.wire_size_bytes();
  EXPECT_EQ(first, msg.wire_size_bytes());
  EXPECT_EQ(first, Codec::encoded_size(msg));
}

// -- malformed frames ---------------------------------------------------------

std::vector<std::uint8_t> valid_reply_frame() {
  const RecoveryReplyMessage msg(
      NodeId{19}, 100,
      {make_event(2, 9, {{Pattern{1}, SeqNo{4}}}, 32),
       make_event(3, 1, {{Pattern{2}, SeqNo{1}}, {Pattern{68}, SeqNo{2}}}, 48)});
  return encode_one(msg);
}

TEST(WireMalformed, EveryTruncationOfAValidFrameIsRejected) {
  const std::vector<std::uint8_t> frame = valid_reply_frame();
  ASSERT_GE(frame.size(), 64u) << "need 64+ prefixes for coverage";
  for (std::size_t n = 0; n < frame.size(); ++n) {
    const Decoded d =
        Codec::decode(std::span<const std::uint8_t>(frame.data(), n));
    EXPECT_FALSE(d.ok()) << "prefix of " << n << " bytes decoded";
    if (n < Codec::kHeaderBytes) {
      EXPECT_EQ(d.error(), DecodeError::TruncatedHeader) << "prefix " << n;
    } else {
      EXPECT_EQ(d.error(), DecodeError::TruncatedPayload) << "prefix " << n;
    }
  }
}

TEST(WireMalformed, LengthPrefixMismatchesAreTyped) {
  std::vector<std::uint8_t> frame = valid_reply_frame();

  auto patch_len = [&](std::uint32_t len) {
    std::vector<std::uint8_t> f = frame;
    f[0] = static_cast<std::uint8_t>(len);
    f[1] = static_cast<std::uint8_t>(len >> 8);
    f[2] = static_cast<std::uint8_t>(len >> 16);
    f[3] = static_cast<std::uint8_t>(len >> 24);
    return f;
  };
  const auto true_len = static_cast<std::uint32_t>(frame.size() - 4);

  EXPECT_EQ(Codec::decode(patch_len(0)).error(), DecodeError::BadLength);
  EXPECT_EQ(Codec::decode(patch_len(1)).error(), DecodeError::BadLength);
  EXPECT_EQ(Codec::decode(patch_len(Codec::kMaxFrameLen + 1)).error(),
            DecodeError::BadLength);
  EXPECT_EQ(Codec::decode(patch_len(0xFFFFFFFFu)).error(),
            DecodeError::BadLength);
  // Length claims more than the buffer holds / less than it holds.
  EXPECT_EQ(Codec::decode(patch_len(true_len + 1)).error(),
            DecodeError::TruncatedPayload);
  EXPECT_EQ(Codec::decode(patch_len(true_len - 1)).error(),
            DecodeError::TrailingBytes);

  std::vector<std::uint8_t> extra = frame;
  extra.push_back(0);
  EXPECT_EQ(Codec::decode(extra).error(), DecodeError::TrailingBytes);
}

TEST(WireMalformed, UnknownVersionAndKindAreTyped) {
  std::vector<std::uint8_t> frame = valid_reply_frame();
  for (const std::uint8_t v : {std::uint8_t{0}, std::uint8_t{2},
                               std::uint8_t{255}}) {
    std::vector<std::uint8_t> f = frame;
    f[4] = v;
    EXPECT_EQ(Codec::decode(f).error(), DecodeError::UnknownVersion);
  }
  for (const std::uint8_t k : {std::uint8_t{9}, std::uint8_t{42},
                               std::uint8_t{200}, std::uint8_t{255}}) {
    std::vector<std::uint8_t> f = frame;
    f[5] = k;
    EXPECT_EQ(Codec::decode(f).error(), DecodeError::UnknownKind);
  }
}

/// Hand-builds a frame around a raw payload (bypassing the encoder) so the
/// payload can be deliberately malformed.
std::vector<std::uint8_t> raw_frame(FrameKind kind,
                                    const std::vector<std::uint8_t>& payload) {
  const auto len = static_cast<std::uint32_t>(2 + payload.size());
  std::vector<std::uint8_t> f;
  f.reserve(Codec::kHeaderBytes + payload.size());
  f.push_back(static_cast<std::uint8_t>(len));
  f.push_back(static_cast<std::uint8_t>(len >> 8));
  f.push_back(static_cast<std::uint8_t>(len >> 16));
  f.push_back(static_cast<std::uint8_t>(len >> 24));
  f.push_back(Codec::kVersion);
  f.push_back(static_cast<std::uint8_t>(kind));
  for (const std::uint8_t b : payload) f.push_back(b);
  return f;
}

TEST(WireMalformed, OverlongVarintsAreRejected) {
  // pattern = 0 encoded non-canonically as 0x80 0x00 (plus a flags byte so
  // only the varint is at fault).
  EXPECT_EQ(Codec::decode(raw_frame(FrameKind::Subscribe, {0x80, 0x00, 0x01}))
                .error(),
            DecodeError::OverlongVarint);
  // Ten continuation bytes: a varint longer than any encodable u64.
  EXPECT_EQ(
      Codec::decode(raw_frame(FrameKind::Subscribe,
                              {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                               0x80, 0x80, 0x01}))
          .error(),
      DecodeError::OverlongVarint);
  // 10-byte varint whose final byte sets bits beyond 2^64.
  EXPECT_EQ(
      Codec::decode(raw_frame(FrameKind::Subscribe,
                              {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                               0xFF, 0x7F, 0x01}))
          .error(),
      DecodeError::OverlongVarint);
}

TEST(WireMalformed, HostileFieldValuesAreRejected) {
  // NodeId is 32-bit on the wire model; a 2^35 gossiper must not wrap.
  EXPECT_EQ(Codec::decode(raw_frame(FrameKind::RecoveryRequest,
                                    {0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 0x00}))
                .error(),
            DecodeError::ValueOutOfRange);
  // Subscribe flags byte must be 0/1.
  EXPECT_EQ(Codec::decode(raw_frame(FrameKind::Subscribe, {0x05, 0x02}))
                .error(),
            DecodeError::ValueOutOfRange);
  // A count claiming ~2^28 lost entries in a 3-byte payload: rejected before
  // any allocation happens (gossiper=1, count=0x80..0x01).
  EXPECT_EQ(Codec::decode(raw_frame(FrameKind::RandomPullDigest,
                                    {0x01, 0x00, 0x80, 0x80, 0x80, 0x80, 0x01}))
                .error(),
            DecodeError::BadCount);
  // An event with zero patterns (EventData's invariant is ≥ 1).
  EXPECT_EQ(Codec::decode(raw_frame(FrameKind::Event,
                                    {/*source*/ 0x01, /*seq*/ 0x01,
                                     /*published_at*/ 0x00, /*payload*/ 0x00,
                                     /*n_patterns*/ 0x00, /*route n*/ 0x00}))
                .error(),
            DecodeError::ValueOutOfRange);
  // An event with non-increasing patterns (duplicate pattern 1).
  EXPECT_EQ(Codec::decode(raw_frame(FrameKind::Event,
                                    {0x01, 0x01, 0x00, 0x00, /*n*/ 0x02,
                                     /*p=1*/ 0x01, /*seq*/ 0x01,
                                     /*p=1*/ 0x01, /*seq*/ 0x02, 0x00}))
                .error(),
            DecodeError::ValueOutOfRange);
}

TEST(WireMalformed, ByteMutationFuzzNeverCrashes) {
  // Deterministic single-byte corruption sweep over valid frames of every
  // kind: each decode must either succeed or return a typed error; memory
  // safety is checked by the sanitizer jobs.
  std::vector<std::vector<std::uint8_t>> frames;
  frames.push_back(valid_reply_frame());
  frames.push_back(encode_one(EventMessage(
      make_event(9, 123, {{Pattern{2}, SeqNo{10}}, {Pattern{5}, SeqNo{7}}}, 16),
      {NodeId{9}, NodeId{4}})));
  frames.push_back(encode_one(SubscribeMessage(Pattern{68}, true)));
  frames.push_back(encode_one(PushDigestMessage(
      NodeId{12}, 100, Pattern{33}, {{NodeId{1}, 5}, {NodeId{200}, 6}}, 2)));
  frames.push_back(encode_one(SubscriberPullDigestMessage(
      NodeId{4}, 100, Pattern{7}, some_losses(), 5)));
  frames.push_back(encode_one(PublisherPullDigestMessage(
      NodeId{4}, 100, NodeId{77}, some_losses(), {NodeId{5}, NodeId{77}})));
  frames.push_back(encode_one(
      RandomPullDigestMessage(NodeId{4}, 100, some_losses(), 1)));
  frames.push_back(encode_one(
      RecoveryRequestMessage(NodeId{19}, 100, {{NodeId{2}, 9}})));

  Rng rng(2024);
  std::uint64_t rejected = 0, accepted = 0;
  for (const std::vector<std::uint8_t>& frame : frames) {
    for (std::size_t pos = 0; pos < frame.size(); ++pos) {
      for (int variant = 0; variant < 4; ++variant) {
        std::vector<std::uint8_t> f = frame;
        f[pos] ^= static_cast<std::uint8_t>(
            1u << rng.next_below(8));  // flip one random bit
        const Decoded d = Codec::decode(f);
        if (d.ok()) {
          ++accepted;  // some flips land in don't-care bits (payload zeros)
        } else {
          ++rejected;
          EXPECT_NE(to_string(d.error()), std::string("?"));
        }
      }
    }
  }
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace epicast
