// Gilbert–Elliott channel: the empirical chain must match the closed
// forms the header documents — stationary loss rate, geometric burst
// lengths — and the degenerate parameterizations must collapse to the
// i.i.d. cases.
#include <gtest/gtest.h>

#include <cmath>

#include "epicast/fault/gilbert_elliott.hpp"

namespace epicast::fault {
namespace {

GilbertElliottParams textbook(double p, double r) {
  GilbertElliottParams params;
  params.p_enter = p;
  params.p_exit = r;
  params.loss_good = 0.0;
  params.loss_bad = 1.0;
  return params;
}

TEST(GilbertElliott, ClosedFormsMatchHandComputation) {
  const GilbertElliottParams params = textbook(0.1, 0.4);
  EXPECT_TRUE(params.valid());
  // Textbook loss_good=0 / loss_bad=1 reduces L to p/(p+r).
  EXPECT_DOUBLE_EQ(params.stationary_loss_rate(), 0.1 / 0.5);
  EXPECT_DOUBLE_EQ(params.mean_burst_length(), 2.5);

  GilbertElliottParams leaky = textbook(0.05, 0.5);
  leaky.loss_good = 0.01;
  leaky.loss_bad = 0.9;
  EXPECT_DOUBLE_EQ(leaky.stationary_loss_rate(),
                   (0.5 * 0.01 + 0.05 * 0.9) / 0.55);
}

TEST(GilbertElliott, StationaryLossMatchesClosedFormAcrossSeeds) {
  const GilbertElliottParams params = textbook(0.1, 0.4);
  const double expected = params.stationary_loss_rate();
  constexpr std::uint64_t kMessages = 200000;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    GilbertElliottChannel channel(params, Rng(seed));
    std::uint64_t lost = 0;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      if (channel.transmit_lost()) ++lost;
    }
    const double empirical =
        static_cast<double>(lost) / static_cast<double>(kMessages);
    EXPECT_NEAR(empirical, expected, 0.01) << "seed " << seed;
    EXPECT_EQ(channel.stats().messages, kMessages);
    EXPECT_EQ(channel.stats().lost, lost);
  }
}

TEST(GilbertElliott, MeanBurstLengthIsGeometric) {
  // Transition-then-loss makes the time spent in Bad per visit exactly
  // geometric with mean 1/p_exit: count bad-state steps per entered burst.
  const GilbertElliottParams params = textbook(0.05, 0.25);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    GilbertElliottChannel channel(params, Rng(seed));
    std::uint64_t bad_steps = 0;
    for (std::uint64_t i = 0; i < 400000; ++i) {
      (void)channel.transmit_lost();
      if (channel.in_bad_state()) ++bad_steps;
    }
    const auto bursts = channel.stats().bursts_entered;
    ASSERT_GT(bursts, 0u);
    const double mean_burst =
        static_cast<double>(bad_steps) / static_cast<double>(bursts);
    EXPECT_NEAR(mean_burst, params.mean_burst_length(),
                0.1 * params.mean_burst_length())
        << "seed " << seed;
  }
}

TEST(GilbertElliott, NeverEnteringBadIsLossFree) {
  // p_enter = 0 degenerates to an i.i.d. loss_good channel; with
  // loss_good = 0 that is a perfect link.
  GilbertElliottParams params = textbook(0.0, 0.0);
  EXPECT_TRUE(params.valid());  // p_exit may be 0 when Bad is unreachable
  EXPECT_DOUBLE_EQ(params.stationary_loss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(params.mean_burst_length(), 0.0);
  GilbertElliottChannel channel(params, Rng(7));
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(channel.transmit_lost());
    EXPECT_FALSE(channel.in_bad_state());
  }
  EXPECT_EQ(channel.stats().lost, 0u);
  EXPECT_EQ(channel.stats().bursts_entered, 0u);
}

TEST(GilbertElliott, UnityLossRatesDropEverything) {
  // loss_good = loss_bad = 1 collapses to ε = 1 regardless of the chain.
  GilbertElliottParams params = textbook(0.2, 0.5);
  params.loss_good = 1.0;
  params.loss_bad = 1.0;
  EXPECT_TRUE(params.valid());
  EXPECT_DOUBLE_EQ(params.stationary_loss_rate(), 1.0);
  GilbertElliottChannel channel(params, Rng(3));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(channel.transmit_lost());
  }
}

TEST(GilbertElliott, InvalidParameterCombinationsAreRejected) {
  EXPECT_FALSE(textbook(1.5, 0.5).valid());   // probability out of range
  EXPECT_FALSE(textbook(0.5, -0.1).valid());
  EXPECT_FALSE(textbook(0.5, 0.0).valid());   // Bad state is absorbing
  GilbertElliottParams bad_loss = textbook(0.1, 0.5);
  bad_loss.loss_bad = 1.1;
  EXPECT_FALSE(bad_loss.valid());
}

TEST(GilbertElliott, ResetReturnsToGoodWithoutDraws) {
  GilbertElliottParams params = textbook(1.0, 0.1);
  GilbertElliottChannel channel(params, Rng(5));
  (void)channel.transmit_lost();  // p_enter = 1: now certainly Bad
  ASSERT_TRUE(channel.in_bad_state());
  channel.reset();
  EXPECT_FALSE(channel.in_bad_state());
  // Statistics survive the reset: they describe the traffic, not the state.
  EXPECT_EQ(channel.stats().messages, 1u);
}

TEST(GilbertElliott, SameSeedGivesSameLossSequence) {
  const GilbertElliottParams params = textbook(0.1, 0.3);
  GilbertElliottChannel a(params, Rng(42));
  GilbertElliottChannel b(params, Rng(42));
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(a.transmit_lost(), b.transmit_lost()) << "message " << i;
  }
}

}  // namespace
}  // namespace epicast::fault
