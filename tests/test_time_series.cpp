// Unit tests for the series container and table rendering used by the
// figure benchmarks.
#include "epicast/metrics/time_series.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace epicast {
namespace {

TEST(TimeSeries, CollectsPointsAndAggregates) {
  TimeSeries s{"demo"};
  EXPECT_TRUE(s.empty());
  s.add(0.0, 1.0);
  s.add(1.0, 3.0);
  s.add(2.0, 2.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.mean_y(), 2.0);
  EXPECT_DOUBLE_EQ(s.min_y(), 1.0);
  EXPECT_DOUBLE_EQ(s.max_y(), 3.0);
  EXPECT_EQ(s.name(), "demo");
}

TEST(TimeSeries, MeanOfEmptyIsZero) {
  TimeSeries s{"empty"};
  EXPECT_DOUBLE_EQ(s.mean_y(), 0.0);
}

TEST(RenderSeriesTable, AlignsSharedXAxis) {
  TimeSeries a{"alpha"};
  a.add(1.0, 0.5);
  a.add(2.0, 0.75);
  TimeSeries b{"beta"};
  b.add(1.0, 0.25);
  b.add(2.0, 0.5);
  const std::string table = render_series_table("x", {a, b});
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("0.7500"), std::string::npos);
  // Header + two rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);
}

TEST(RenderSeriesTable, MissingPointsRenderAsDash) {
  TimeSeries a{"alpha"};
  a.add(1.0, 0.5);
  TimeSeries b{"beta"};
  b.add(2.0, 0.25);
  const std::string table = render_series_table("x", {a, b});
  EXPECT_NE(table.find('-'), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);
}

}  // namespace
}  // namespace epicast
