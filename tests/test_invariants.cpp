// Cross-algorithm invariant property tests: facts that must hold for every
// recovery algorithm, every seed, and both unreliable scenarios. These are
// the safety net behind the figure-level comparisons.
#include <gtest/gtest.h>

#include "epicast/scenario/runner.hpp"

namespace epicast {
namespace {

struct Case {
  Algorithm algorithm;
  std::uint64_t seed;
  bool churn;
  SizingMode sizing;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (Algorithm a :
       {Algorithm::NoRecovery, Algorithm::Push, Algorithm::SubscriberPull,
        Algorithm::PublisherPull, Algorithm::CombinedPull,
        Algorithm::RandomPull}) {
    for (std::uint64_t seed : {3ull, 17ull}) {
      for (bool churn : {false, true}) {
        for (SizingMode sizing : {SizingMode::Nominal, SizingMode::Wire}) {
          cases.push_back(Case{a, seed, churn, sizing});
        }
      }
    }
  }
  return cases;
}

class InvariantSweep : public ::testing::TestWithParam<Case> {};

TEST_P(InvariantSweep, HoldsUnderLossAndChurn) {
  const Case& c = GetParam();
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(c.algorithm);
  cfg.nodes = 25;
  cfg.seed = c.seed;
  cfg.warmup = Duration::seconds(0.5);
  cfg.measure = Duration::seconds(1.5);
  cfg.recovery_horizon = Duration::seconds(1.5);
  cfg.sizing_mode = c.sizing;
  if (c.churn) {
    cfg.link_error_rate = 0.05;
    cfg.reconfiguration_interval = Duration::millis(150);
  }
  const ScenarioResult r = run_scenario(cfg);

  // I1: never more deliveries than expected pairs (no duplicate delivery,
  //     no delivery to a non-subscriber) — enforced structurally by the
  //     tracker's contract, restated here on the totals.
  EXPECT_LE(r.delivered_pairs, r.expected_pairs);

  // I2: rates are proper probabilities and eventual ≥ horizon-bounded.
  EXPECT_GE(r.delivery_rate, 0.0);
  EXPECT_LE(r.delivery_rate, 1.0);
  EXPECT_GE(r.eventual_delivery_rate, r.delivery_rate);
  EXPECT_LE(r.eventual_delivery_rate, 1.0);

  // I3: recovered pairs are a subset of delivered pairs.
  EXPECT_LE(r.recovered_pairs, r.delivered_pairs);

  // I4: only recovery-capable algorithms recover; and recovered events
  //     were necessarily served by someone.
  if (c.algorithm == Algorithm::NoRecovery) {
    EXPECT_EQ(r.recovered_pairs, 0u);
    EXPECT_EQ(r.traffic.gossip_sends(), 0u);
  } else {
    EXPECT_GE(r.gossip_totals.events_served, r.gossip_totals.events_recovered);
  }

  // I5: recovery latencies are ordered and inside the horizon.
  EXPECT_LE(r.recovery_latency_p50_s, r.recovery_latency_p90_s);
  EXPECT_LE(r.recovery_latency_p90_s, r.recovery_latency_p99_s);
  EXPECT_LE(r.recovery_latency_p99_s, 1.5 + 1e-9);

  // I6: traffic accounting is self-consistent.
  EXPECT_EQ(r.traffic.gossip_sends(),
            r.traffic.sends_of(MessageClass::GossipDigest) +
                r.traffic.sends_of(MessageClass::GossipRequest) +
                r.traffic.sends_of(MessageClass::GossipReply));

  // I7: churn bookkeeping appears exactly when churn is on.
  if (c.churn) {
    EXPECT_GT(r.reconfig_breaks, 0u);
  } else {
    EXPECT_EQ(r.reconfig_breaks, 0u);
    EXPECT_EQ(r.drops_no_link, 0u);
  }

  // I8: the conformance oracle suite was live — and silent — for this run
  //     (a violation would have aborted before we got here).
  EXPECT_GT(r.oracle_checks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, InvariantSweep, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = to_string(info.param.algorithm);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      name += "_seed" + std::to_string(info.param.seed);
      name += info.param.churn ? "_churn" : "_lossy";
      name += info.param.sizing == SizingMode::Wire ? "_wire" : "";
      return name;
    });

}  // namespace
}  // namespace epicast
