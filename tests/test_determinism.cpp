// Determinism property tests: a scenario is a pure function of
// (config, seed) for every algorithm and for the churn scenario; unrelated
// configuration flips do not leak randomness between components.
#include <gtest/gtest.h>

#include "epicast/common/rng.hpp"
#include "epicast/scenario/runner.hpp"
#include "epicast/sim/scheduler.hpp"

namespace epicast {
namespace {

ScenarioConfig quick(Algorithm a, std::uint64_t seed) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(a);
  cfg.nodes = 20;
  cfg.seed = seed;
  cfg.warmup = Duration::seconds(0.5);
  cfg.measure = Duration::seconds(1.0);
  cfg.recovery_horizon = Duration::seconds(1.0);
  return cfg;
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.events_published, b.events_published);
  EXPECT_EQ(a.expected_pairs, b.expected_pairs);
  EXPECT_EQ(a.delivered_pairs, b.delivered_pairs);
  EXPECT_EQ(a.recovered_pairs, b.recovered_pairs);
  EXPECT_EQ(a.sim_events_executed, b.sim_events_executed);
  EXPECT_EQ(a.traffic.gossip_sends(), b.traffic.gossip_sends());
  EXPECT_EQ(a.traffic.event_sends(), b.traffic.event_sends());
  EXPECT_DOUBLE_EQ(a.delivery_rate, b.delivery_rate);
  ASSERT_EQ(a.delivery_series.size(), b.delivery_series.size());
  for (std::size_t i = 0; i < a.delivery_series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delivery_series.points()[i].y,
                     b.delivery_series.points()[i].y);
  }
}

class AlgorithmDeterminism : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AlgorithmDeterminism, RerunIsBitIdentical) {
  const ScenarioConfig cfg = quick(GetParam(), 404);
  expect_identical(run_scenario(cfg), run_scenario(cfg));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AlgorithmDeterminism,
                         ::testing::Values(Algorithm::NoRecovery,
                                           Algorithm::Push,
                                           Algorithm::SubscriberPull,
                                           Algorithm::PublisherPull,
                                           Algorithm::CombinedPull,
                                           Algorithm::RandomPull));

TEST(Determinism, ChurnScenarioIsReproducible) {
  ScenarioConfig cfg = quick(Algorithm::Push, 11);
  cfg.link_error_rate = 0.0;
  cfg.reconfiguration_interval = Duration::millis(100);
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  expect_identical(a, b);
  EXPECT_EQ(a.reconfig_breaks, b.reconfig_breaks);
  EXPECT_EQ(a.drops_no_link, b.drops_no_link);
}

TEST(Determinism, SeedChangesEverything) {
  const ScenarioResult a = run_scenario(quick(Algorithm::CombinedPull, 1));
  const ScenarioResult b = run_scenario(quick(Algorithm::CombinedPull, 2));
  EXPECT_NE(a.sim_events_executed, b.sim_events_executed);
}

// The scheduler's slab recycles slots aggressively under cancel churn; the
// firing order must stay a pure function of the schedule/cancel sequence —
// FIFO at equal timestamps, regardless of which slots the survivors landed
// in.
TEST(Determinism, SchedulerOrderUnderCancelChurnIsReproducible) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    Scheduler s;
    std::vector<std::uint64_t> fired;
    std::vector<EventHandle> handles;
    std::uint64_t next = 0;
    for (int op = 0; op < 2000; ++op) {
      if (rng.chance(0.6) || handles.empty()) {
        const std::uint64_t id = next++;
        // Only 3 distinct timestamps: most events tie, stressing the FIFO
        // tie-break while slots are recycled underneath.
        handles.push_back(
            s.schedule_at(SimTime::seconds(1.0 + rng.next_below(3)),
                          [&fired, id] { fired.push_back(id); }));
      } else {
        handles[rng.next_below(handles.size())].cancel();
      }
    }
    s.run();
    return fired;
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << "seed " << seed;
  }
}

TEST(Determinism, SchedulerFifoHoldsAfterMassCancellation) {
  // Cancel a large prefix scheduled at the same instant, then add more at
  // that instant: the survivors and late-comers fire strictly in
  // scheduling order.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventHandle> first_wave;
  for (int i = 0; i < 500; ++i) {
    first_wave.push_back(
        s.schedule_at(SimTime::seconds(2.0), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 400; ++i) EXPECT_TRUE(first_wave[i].cancel());
  for (int i = 500; i < 600; ++i) {
    s.schedule_at(SimTime::seconds(2.0), [&order, i] { order.push_back(i); });
  }
  s.run();
  std::vector<int> expected;
  for (int i = 400; i < 600; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(Determinism, SeedVarianceIsSmall) {
  // The paper (§IV-A) reports 1–2% variation across seeds and therefore
  // plots single runs. Verify the reproduction behaves the same way.
  double min_rate = 1.0, max_rate = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioConfig cfg = quick(Algorithm::CombinedPull, seed);
    cfg.nodes = 40;
    const double rate = run_scenario(cfg).delivery_rate;
    min_rate = std::min(min_rate, rate);
    max_rate = std::max(max_rate, rate);
  }
  EXPECT_LT(max_rate - min_rate, 0.08);
}

}  // namespace
}  // namespace epicast
