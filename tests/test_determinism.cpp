// Determinism property tests: a scenario is a pure function of
// (config, seed) for every algorithm and for the churn scenario; unrelated
// configuration flips do not leak randomness between components.
#include <gtest/gtest.h>

#include <string>

#include "epicast/common/rng.hpp"
#include "epicast/scenario/runner.hpp"
#include "epicast/sim/scheduler.hpp"

namespace epicast {
namespace {

ScenarioConfig quick(Algorithm a, std::uint64_t seed) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(a);
  cfg.nodes = 20;
  cfg.seed = seed;
  cfg.warmup = Duration::seconds(0.5);
  cfg.measure = Duration::seconds(1.0);
  cfg.recovery_horizon = Duration::seconds(1.0);
  return cfg;
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.events_published, b.events_published);
  EXPECT_EQ(a.expected_pairs, b.expected_pairs);
  EXPECT_EQ(a.delivered_pairs, b.delivered_pairs);
  EXPECT_EQ(a.recovered_pairs, b.recovered_pairs);
  EXPECT_EQ(a.sim_events_executed, b.sim_events_executed);
  EXPECT_EQ(a.traffic.gossip_sends(), b.traffic.gossip_sends());
  EXPECT_EQ(a.traffic.event_sends(), b.traffic.event_sends());
  EXPECT_DOUBLE_EQ(a.delivery_rate, b.delivery_rate);
  ASSERT_EQ(a.delivery_series.size(), b.delivery_series.size());
  for (std::size_t i = 0; i < a.delivery_series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delivery_series.points()[i].y,
                     b.delivery_series.points()[i].y);
  }
}

class AlgorithmDeterminism : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AlgorithmDeterminism, RerunIsBitIdentical) {
  const ScenarioConfig cfg = quick(GetParam(), 404);
  expect_identical(run_scenario(cfg), run_scenario(cfg));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AlgorithmDeterminism,
                         ::testing::Values(Algorithm::NoRecovery,
                                           Algorithm::Push,
                                           Algorithm::SubscriberPull,
                                           Algorithm::PublisherPull,
                                           Algorithm::CombinedPull,
                                           Algorithm::RandomPull));

TEST(Determinism, ChurnScenarioIsReproducible) {
  ScenarioConfig cfg = quick(Algorithm::Push, 11);
  cfg.link_error_rate = 0.0;
  cfg.reconfiguration_interval = Duration::millis(100);
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  expect_identical(a, b);
  EXPECT_EQ(a.reconfig_breaks, b.reconfig_breaks);
  EXPECT_EQ(a.drops_no_link, b.drops_no_link);
}

TEST(Determinism, SeedChangesEverything) {
  const ScenarioResult a = run_scenario(quick(Algorithm::CombinedPull, 1));
  const ScenarioResult b = run_scenario(quick(Algorithm::CombinedPull, 2));
  EXPECT_NE(a.sim_events_executed, b.sim_events_executed);
}

// Seed guard against the pre-wire-layer reference run: in SizingMode::Nominal
// the simulation must reproduce the exact numbers the codebase produced
// before the codec existed — the wire layer may only change behaviour when
// explicitly opted into. Constants captured from the seed build at
// quick(a, 404). If a change legitimately alters the simulation (paper-
// fidelity fix, RNG reordering), re-capture them in the same commit and say
// so in the message.
TEST(Determinism, NominalModeMatchesPreWireSeedReference) {
  struct Reference {
    Algorithm algorithm;
    std::uint64_t events_published, expected_pairs, delivered_pairs,
        recovered_pairs, sim_events_executed, gossip_sends, event_sends;
    double delivery_rate;
  };
  // Pin bump (worker-pool PR): the link/direct/burst loss and latency
  // streams moved from one shared RNG to per-sender forks so worker lanes
  // never contend on a stream. That reorders the draw sequence once, in
  // serial and sharded paths alike; values re-captured at this commit.
  const Reference refs[] = {
      {Algorithm::Push, 2653, 1580, 1356, 280, 19531, 2451, 3493,
       0x1.b769a3f839087p-1},
      {Algorithm::CombinedPull, 2653, 1580, 1321, 256, 15931, 611, 3514,
       0x1.ac12259701f1cp-1},
  };
  for (const Reference& ref : refs) {
    // shards=4 runs through the conservative parallel engine and
    // shards=4/threads=4 through its worker pool — both bit-identical to
    // the serial path by contract, so the committed pins must hold
    // unchanged there too.
    for (const auto& [shards, threads] :
         {std::pair{1u, 1u}, {4u, 1u}, {4u, 4u}}) {
      ScenarioConfig cfg = quick(ref.algorithm, 404);
      // Pin explicitly: this guard must hold even when the suite runs under
      // EPICAST_SIZING=wire (the CI wire job).
      cfg.sizing_mode = SizingMode::Nominal;
      cfg.shards = shards;
      cfg.threads = threads;
      const ScenarioResult r = run_scenario(cfg);
      SCOPED_TRACE(std::string(to_string(ref.algorithm)) + " shards=" +
                   std::to_string(shards) + " threads=" +
                   std::to_string(threads));
      EXPECT_EQ(r.events_published, ref.events_published);
      EXPECT_EQ(r.expected_pairs, ref.expected_pairs);
      EXPECT_EQ(r.delivered_pairs, ref.delivered_pairs);
      EXPECT_EQ(r.recovered_pairs, ref.recovered_pairs);
      EXPECT_EQ(r.sim_events_executed, ref.sim_events_executed);
      EXPECT_EQ(r.traffic.gossip_sends(), ref.gossip_sends);
      EXPECT_EQ(r.traffic.event_sends(), ref.event_sends);
      EXPECT_DOUBLE_EQ(r.delivery_rate, ref.delivery_rate);
    }
  }
}

// Companion guard in SizingMode::Wire, capturing the same seed build with
// byte-accurate frame sizing. Together with the nominal guard above it pins
// the full behaviour surface of the hot-path work (pooled allocation,
// pattern bitsets, flat caches): none of it may move a single RNG draw or
// reorder a single send in either mode.
TEST(Determinism, WireModeMatchesSeedReference) {
  struct Reference {
    Algorithm algorithm;
    std::uint64_t delivered_pairs, recovered_pairs, sim_events_executed,
        gossip_sends, event_sends, gossip_bytes, event_bytes;
    double delivery_rate;
  };
  // Re-captured together with the nominal pins above (same per-sender RNG
  // stream partition, same commit).
  const Reference refs[] = {
      {Algorithm::Push, 1356, 301, 19445, 2410, 3484, 109556, 776932,
       0x1.b769a3f839087p-1},
      {Algorithm::CombinedPull, 1332, 263, 16026, 674, 3582, 51313, 808817,
       0x1.afa2ac651a928p-1},
  };
  for (const Reference& ref : refs) {
    for (const auto& [shards, threads] :
         {std::pair{1u, 1u}, {4u, 1u}, {4u, 4u}}) {
      ScenarioConfig cfg = quick(ref.algorithm, 404);
      cfg.sizing_mode = SizingMode::Wire;
      cfg.shards = shards;
      cfg.threads = threads;
      const ScenarioResult r = run_scenario(cfg);
      SCOPED_TRACE(std::string(to_string(ref.algorithm)) + " shards=" +
                   std::to_string(shards) + " threads=" +
                   std::to_string(threads));
      EXPECT_EQ(r.events_published, 2653u);
      EXPECT_EQ(r.expected_pairs, 1580u);
      EXPECT_EQ(r.delivered_pairs, ref.delivered_pairs);
      EXPECT_EQ(r.recovered_pairs, ref.recovered_pairs);
      EXPECT_EQ(r.sim_events_executed, ref.sim_events_executed);
      EXPECT_EQ(r.traffic.gossip_sends(), ref.gossip_sends);
      EXPECT_EQ(r.traffic.event_sends(), ref.event_sends);
      EXPECT_EQ(r.traffic.gossip_bytes(), ref.gossip_bytes);
      EXPECT_EQ(r.traffic.event_bytes(), ref.event_bytes);
      EXPECT_DOUBLE_EQ(r.delivery_rate, ref.delivery_rate);
    }
  }
}

TEST(Determinism, ShardingIsOptIn) {
  // The parallel engine only engages when asked: the default config (no
  // EPICAST_SHARDS in the environment, no --shards flag) is serial, so
  // every existing pin and published figure runs the serial scheduler.
  EXPECT_EQ(ScenarioConfig{}.shards, 1u);
  EXPECT_EQ(ScenarioConfig::paper_defaults(Algorithm::Push).shards, 1u);
}

TEST(Determinism, EmptyFaultPlanAndRetryDefaultsAreInert) {
  // The chaos subsystem must be invisible when unused: the default config
  // carries an empty plan (no controller, no forked RNG streams — the seed
  // guards above pin the bit-identity) and request_timeout = 0 keeps every
  // retry counter at zero. Assert directly so a regression names the
  // culprit instead of showing up as a seed-guard mismatch.
  ScenarioConfig cfg = quick(Algorithm::CombinedPull, 404);
  EXPECT_TRUE(cfg.faults.empty());
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_EQ(r.fault.stats.crashes, 0u);
  EXPECT_EQ(r.fault.stats.burst_drops, 0u);
  EXPECT_EQ(r.fault.stats.partitions_applied, 0u);
  EXPECT_TRUE(r.fault.epochs.empty());
  EXPECT_DOUBLE_EQ(r.fault.last_heal_s, 0.0);
  EXPECT_EQ(r.gossip_totals.request_timeouts, 0u);
  EXPECT_EQ(r.gossip_totals.request_retries, 0u);
  EXPECT_EQ(r.gossip_totals.requests_abandoned, 0u);
}

TEST(Determinism, PoolModeDoesNotAffectResults) {
  // EPICAST_POOL only switches the allocator under the shared_ptrs; pooled
  // and pass-through builds must be bit-identical. (CI exercises the env
  // switch; here we compare the modes directly through the same scenario.)
  const ScenarioConfig cfg = quick(Algorithm::Push, 404);
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  expect_identical(a, b);
  // Pool counters are observability only, but they must be deterministic
  // too, and coherent: the snapshot is taken while the delivery tracker
  // still holds the published events, so exactly those are live.
  EXPECT_GT(a.pool.allocations, 0u);
  EXPECT_EQ(a.pool.allocations, b.pool.allocations);
  EXPECT_EQ(a.pool.reuses, b.pool.reuses);
  EXPECT_LE(a.pool.deallocations, a.pool.allocations);
  EXPECT_EQ(a.pool.live(), a.events_published);
}

TEST(Determinism, ProfilerTimingFlagDoesNotAffectResults) {
  // The hot-path profiler draws no randomness and sends no messages: runs
  // with and without nanosecond timing must be bit-identical, timing only
  // changes what the snapshot reports.
  ScenarioConfig off = quick(Algorithm::CombinedPull, 404);
  off.profile_hotpath = false;
  ScenarioConfig on = off;
  on.profile_hotpath = true;
  const ScenarioResult a = run_scenario(off);
  const ScenarioResult b = run_scenario(on);
  expect_identical(a, b);
  // Op counts are always on and mode-independent...
  EXPECT_EQ(a.hotpath[HotPhase::Dispatch].ops, b.hotpath[HotPhase::Dispatch].ops);
  EXPECT_FALSE(a.hotpath.timed);
  EXPECT_TRUE(b.hotpath.timed);
  // ...while nanoseconds only accumulate when timing is enabled.
  EXPECT_EQ(a.hotpath[HotPhase::Dispatch].ns, 0u);
  EXPECT_GT(b.hotpath[HotPhase::Dispatch].ns, 0u);
}

TEST(Determinism, WireSizingRerunIsBitIdentical) {
  ScenarioConfig cfg = quick(Algorithm::CombinedPull, 404);
  cfg.sizing_mode = SizingMode::Wire;
  expect_identical(run_scenario(cfg), run_scenario(cfg));
}

TEST(Determinism, WireSizingChargesDifferentBytesThanNominal) {
  ScenarioConfig nominal = quick(Algorithm::Push, 404);
  nominal.sizing_mode = SizingMode::Nominal;
  ScenarioConfig wire = nominal;
  wire.sizing_mode = SizingMode::Wire;
  const ScenarioResult a = run_scenario(nominal);
  const ScenarioResult b = run_scenario(wire);
  // Messages flow in both modes and the byte accounting reflects the mode:
  // nominal charges the configured constants, wire the actual frames.
  EXPECT_GT(a.traffic.gossip_bytes(), 0u);
  EXPECT_GT(b.traffic.gossip_bytes(), 0u);
  EXPECT_NE(a.traffic.gossip_bytes(), b.traffic.gossip_bytes());
  EXPECT_NE(a.traffic.event_bytes(), b.traffic.event_bytes());
}

// The scheduler's slab recycles slots aggressively under cancel churn; the
// firing order must stay a pure function of the schedule/cancel sequence —
// FIFO at equal timestamps, regardless of which slots the survivors landed
// in.
TEST(Determinism, SchedulerOrderUnderCancelChurnIsReproducible) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    Scheduler s;
    std::vector<std::uint64_t> fired;
    std::vector<EventHandle> handles;
    std::uint64_t next = 0;
    for (int op = 0; op < 2000; ++op) {
      if (rng.chance(0.6) || handles.empty()) {
        const std::uint64_t id = next++;
        // Only 3 distinct timestamps: most events tie, stressing the FIFO
        // tie-break while slots are recycled underneath.
        handles.push_back(
            s.schedule_at(SimTime::seconds(1.0 + rng.next_below(3)),
                          [&fired, id] { fired.push_back(id); }));
      } else {
        handles[rng.next_below(handles.size())].cancel();
      }
    }
    s.run();
    return fired;
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << "seed " << seed;
  }
}

TEST(Determinism, SchedulerFifoHoldsAfterMassCancellation) {
  // Cancel a large prefix scheduled at the same instant, then add more at
  // that instant: the survivors and late-comers fire strictly in
  // scheduling order.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventHandle> first_wave;
  for (int i = 0; i < 500; ++i) {
    first_wave.push_back(
        s.schedule_at(SimTime::seconds(2.0), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 400; ++i) EXPECT_TRUE(first_wave[i].cancel());
  for (int i = 500; i < 600; ++i) {
    s.schedule_at(SimTime::seconds(2.0), [&order, i] { order.push_back(i); });
  }
  s.run();
  std::vector<int> expected;
  for (int i = 400; i < 600; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(Determinism, SeedVarianceIsSmall) {
  // The paper (§IV-A) reports 1–2% variation across seeds and therefore
  // plots single runs. Verify the reproduction behaves the same way.
  double min_rate = 1.0, max_rate = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioConfig cfg = quick(Algorithm::CombinedPull, seed);
    cfg.nodes = 40;
    const double rate = run_scenario(cfg).delivery_rate;
    min_rate = std::min(min_rate, rate);
    max_rate = std::max(max_rate, rate);
  }
  EXPECT_LT(max_rate - min_rate, 0.08);
}

}  // namespace
}  // namespace epicast
