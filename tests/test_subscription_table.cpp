// Unit tests for the subscription table: local marks, routes, matching,
// target computation, and pruning.
#include "epicast/pubsub/subscription_table.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

EventPtr event_with(std::vector<Pattern> patterns) {
  std::vector<PatternSeq> ps;
  std::uint64_t seq = 1;
  for (Pattern p : patterns) ps.push_back({p, SeqNo{seq++}});
  return std::make_shared<EventData>(EventId{NodeId{0}, 0}, std::move(ps), 10,
                                     SimTime::zero());
}

TEST(SubscriptionTable, LocalAddRemove) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add_local(Pattern{1}));
  EXPECT_FALSE(t.add_local(Pattern{1}));  // idempotent
  EXPECT_TRUE(t.has_local(Pattern{1}));
  EXPECT_TRUE(t.knows(Pattern{1}));
  EXPECT_TRUE(t.remove_local(Pattern{1}));
  EXPECT_FALSE(t.remove_local(Pattern{1}));
  EXPECT_FALSE(t.knows(Pattern{1}));  // pruned
}

TEST(SubscriptionTable, RouteAddRemove) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add_route(Pattern{1}, NodeId{5}));
  EXPECT_FALSE(t.add_route(Pattern{1}, NodeId{5}));
  EXPECT_TRUE(t.has_route(Pattern{1}, NodeId{5}));
  EXPECT_FALSE(t.has_route(Pattern{1}, NodeId{6}));
  EXPECT_TRUE(t.remove_route(Pattern{1}, NodeId{5}));
  EXPECT_FALSE(t.remove_route(Pattern{1}, NodeId{5}));
  EXPECT_FALSE(t.knows(Pattern{1}));
}

TEST(SubscriptionTable, MatchesLocalOnAnyEventPattern) {
  SubscriptionTable t;
  t.add_local(Pattern{3});
  EXPECT_TRUE(t.matches_local(*event_with({Pattern{1}, Pattern{3}})));
  EXPECT_FALSE(t.matches_local(*event_with({Pattern{1}, Pattern{2}})));
}

TEST(SubscriptionTable, RouteTargetsUnionAcrossPatternsDeduped) {
  SubscriptionTable t;
  t.add_route(Pattern{1}, NodeId{7});
  t.add_route(Pattern{2}, NodeId{7});
  t.add_route(Pattern{2}, NodeId{8});
  const auto targets =
      t.route_targets(*event_with({Pattern{1}, Pattern{2}}), NodeId::invalid());
  EXPECT_EQ(targets, (std::vector<NodeId>{NodeId{7}, NodeId{8}}));
}

TEST(SubscriptionTable, RouteTargetsExcludeUpstream) {
  SubscriptionTable t;
  t.add_route(Pattern{1}, NodeId{7});
  t.add_route(Pattern{1}, NodeId{8});
  const auto targets =
      t.route_targets(*event_with({Pattern{1}}), NodeId{7});
  EXPECT_EQ(targets, (std::vector<NodeId>{NodeId{8}}));
  const auto single = t.route_targets(Pattern{1}, NodeId{8});
  EXPECT_EQ(single, (std::vector<NodeId>{NodeId{7}}));
}

TEST(SubscriptionTable, LocalDoesNotCreateRouteTargets) {
  SubscriptionTable t;
  t.add_local(Pattern{1});
  EXPECT_TRUE(
      t.route_targets(*event_with({Pattern{1}}), NodeId::invalid()).empty());
}

TEST(SubscriptionTable, KnownVsLocalPatterns) {
  SubscriptionTable t;
  t.add_local(Pattern{1});
  t.add_route(Pattern{2}, NodeId{3});
  t.add_local(Pattern{2});
  EXPECT_EQ(t.known_patterns(), (std::vector<Pattern>{Pattern{1}, Pattern{2}}));
  EXPECT_EQ(t.local_patterns(), (std::vector<Pattern>{Pattern{1}, Pattern{2}}));
  t.remove_local(Pattern{1});
  EXPECT_EQ(t.known_patterns(), (std::vector<Pattern>{Pattern{2}}));
  EXPECT_EQ(t.local_patterns(), (std::vector<Pattern>{Pattern{2}}));
}

TEST(SubscriptionTable, RemoveNeighborDropsAllItsRoutes) {
  SubscriptionTable t;
  t.add_route(Pattern{1}, NodeId{3});
  t.add_route(Pattern{2}, NodeId{3});
  t.add_route(Pattern{2}, NodeId{4});
  t.add_local(Pattern{3});
  t.remove_neighbor(NodeId{3});
  EXPECT_FALSE(t.knows(Pattern{1}));
  EXPECT_TRUE(t.has_route(Pattern{2}, NodeId{4}));
  EXPECT_FALSE(t.has_route(Pattern{2}, NodeId{3}));
  EXPECT_TRUE(t.has_local(Pattern{3}));
}

TEST(SubscriptionTable, ClearRoutesKeepsLocal) {
  SubscriptionTable t;
  t.add_local(Pattern{1});
  t.add_route(Pattern{1}, NodeId{2});
  t.add_route(Pattern{5}, NodeId{2});
  t.clear_routes();
  EXPECT_TRUE(t.has_local(Pattern{1}));
  EXPECT_FALSE(t.has_route(Pattern{1}, NodeId{2}));
  EXPECT_FALSE(t.knows(Pattern{5}));
}

TEST(SubscriptionTable, EntryCountCountsLocalAndRoutes) {
  SubscriptionTable t;
  EXPECT_EQ(t.entry_count(), 0u);
  t.add_local(Pattern{1});
  t.add_route(Pattern{1}, NodeId{2});
  t.add_route(Pattern{2}, NodeId{3});
  EXPECT_EQ(t.entry_count(), 3u);
}

TEST(SubscriptionTable, IntoVariantsMatchAllocatingVariants) {
  SubscriptionTable t;
  t.add_local(Pattern{4});
  t.add_route(Pattern{4}, NodeId{1});
  t.add_route(Pattern{9}, NodeId{2});
  t.add_route(Pattern{9}, NodeId{5});
  t.add_local(Pattern{70});  // near the top of the paper's universe

  std::vector<Pattern> patterns{Pattern{999}};  // scratch must be cleared
  t.known_patterns_into(patterns);
  EXPECT_EQ(patterns, t.known_patterns());
  t.local_patterns_into(patterns);
  EXPECT_EQ(patterns, t.local_patterns());

  std::vector<NodeId> hops{NodeId{42}};
  t.route_targets_into(Pattern{9}, NodeId{5}, hops);
  EXPECT_EQ(hops, t.route_targets(Pattern{9}, NodeId{5}));
  const EventPtr ev = event_with({Pattern{4}, Pattern{9}});
  t.route_targets_into(*ev, NodeId::invalid(), hops);
  EXPECT_EQ(hops, t.route_targets(*ev, NodeId::invalid()));
}

TEST(SubscriptionTable, CountAndAtMatchKnownPatterns) {
  SubscriptionTable t;
  t.add_route(Pattern{63}, NodeId{1});
  t.add_local(Pattern{0});
  t.add_local(Pattern{64});
  const auto known = t.known_patterns();
  ASSERT_EQ(t.known_pattern_count(), known.size());
  for (std::size_t k = 0; k < known.size(); ++k)
    EXPECT_EQ(t.known_pattern_at(k), known[k]);
}

TEST(SubscriptionTable, MasksTrackLocalAndKnown) {
  SubscriptionTable t;
  t.add_local(Pattern{3});
  t.add_route(Pattern{5}, NodeId{1});
  EXPECT_TRUE(t.local_mask().test(Pattern{3}));
  EXPECT_FALSE(t.local_mask().test(Pattern{5}));
  EXPECT_TRUE(t.known_mask().test(Pattern{3}));
  EXPECT_TRUE(t.known_mask().test(Pattern{5}));
  t.remove_local(Pattern{3});
  EXPECT_FALSE(t.local_mask().test(Pattern{3}));
  EXPECT_FALSE(t.known_mask().test(Pattern{3}));
}

TEST(SubscriptionTable, OversizedPatternsStayOnMaskPath) {
  // Patterns beyond the inline mask width widen the masks and must behave
  // identically through every query and enumeration.
  const Pattern big{PatternSet::kInlineCapacity + 5};
  SubscriptionTable t;
  EXPECT_TRUE(t.add_local(big));
  EXPECT_FALSE(t.add_local(big));
  EXPECT_TRUE(t.add_route(big, NodeId{2}));
  t.add_local(Pattern{1});

  EXPECT_TRUE(t.has_local(big));
  EXPECT_TRUE(t.knows(big));
  EXPECT_TRUE(t.local_mask().test(big));
  EXPECT_EQ(t.known_patterns(), (std::vector<Pattern>{Pattern{1}, big}));
  EXPECT_EQ(t.local_patterns(), (std::vector<Pattern>{Pattern{1}, big}));
  ASSERT_EQ(t.known_pattern_count(), 2u);
  EXPECT_EQ(t.known_pattern_at(1), big);

  const EventPtr ev = event_with({big});
  EXPECT_TRUE(t.matches_local(*ev));
  EXPECT_EQ(t.route_targets(*ev, NodeId::invalid()),
            (std::vector<NodeId>{NodeId{2}}));

  EXPECT_TRUE(t.remove_route(big, NodeId{2}));
  EXPECT_TRUE(t.remove_local(big));
  EXPECT_FALSE(t.knows(big));
  EXPECT_EQ(t.known_patterns(), (std::vector<Pattern>{Pattern{1}}));
}

TEST(SubscriptionTable, MixedInlineAndWideEventMatching) {
  const Pattern big{200};
  SubscriptionTable t;
  t.add_route(Pattern{2}, NodeId{1});
  t.add_route(big, NodeId{3});
  const EventPtr ev = event_with({Pattern{2}, big});
  EXPECT_FALSE(t.matches_local(*ev));
  EXPECT_EQ(t.route_targets(*ev, NodeId::invalid()),
            (std::vector<NodeId>{NodeId{1}, NodeId{3}}));
  t.add_local(big);
  EXPECT_TRUE(t.matches_local(*ev));
}

TEST(SubscriptionTable, ReserveUniversePresizesMasksFromArena) {
  Arena arena;
  SubscriptionTable t;
  t.reserve_universe(2000, &arena);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  t.add_local(Pattern{1999});
  t.add_route(Pattern{1500}, NodeId{3});
  EXPECT_TRUE(t.local_mask().test(Pattern{1999}));
  EXPECT_TRUE(t.known_mask().test(Pattern{1500}));
  EXPECT_EQ(t.route_targets(Pattern{1500}, NodeId::invalid()),
            (std::vector<NodeId>{NodeId{3}}));
  EXPECT_GT(t.memory_bytes(), 0u);
}

}  // namespace
}  // namespace epicast
