// Unit tests for the subscription table: local marks, routes, matching,
// target computation, and pruning.
#include "epicast/pubsub/subscription_table.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

EventPtr event_with(std::vector<Pattern> patterns) {
  std::vector<PatternSeq> ps;
  std::uint64_t seq = 1;
  for (Pattern p : patterns) ps.push_back({p, SeqNo{seq++}});
  return std::make_shared<EventData>(EventId{NodeId{0}, 0}, std::move(ps), 10,
                                     SimTime::zero());
}

TEST(SubscriptionTable, LocalAddRemove) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add_local(Pattern{1}));
  EXPECT_FALSE(t.add_local(Pattern{1}));  // idempotent
  EXPECT_TRUE(t.has_local(Pattern{1}));
  EXPECT_TRUE(t.knows(Pattern{1}));
  EXPECT_TRUE(t.remove_local(Pattern{1}));
  EXPECT_FALSE(t.remove_local(Pattern{1}));
  EXPECT_FALSE(t.knows(Pattern{1}));  // pruned
}

TEST(SubscriptionTable, RouteAddRemove) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add_route(Pattern{1}, NodeId{5}));
  EXPECT_FALSE(t.add_route(Pattern{1}, NodeId{5}));
  EXPECT_TRUE(t.has_route(Pattern{1}, NodeId{5}));
  EXPECT_FALSE(t.has_route(Pattern{1}, NodeId{6}));
  EXPECT_TRUE(t.remove_route(Pattern{1}, NodeId{5}));
  EXPECT_FALSE(t.remove_route(Pattern{1}, NodeId{5}));
  EXPECT_FALSE(t.knows(Pattern{1}));
}

TEST(SubscriptionTable, MatchesLocalOnAnyEventPattern) {
  SubscriptionTable t;
  t.add_local(Pattern{3});
  EXPECT_TRUE(t.matches_local(*event_with({Pattern{1}, Pattern{3}})));
  EXPECT_FALSE(t.matches_local(*event_with({Pattern{1}, Pattern{2}})));
}

TEST(SubscriptionTable, RouteTargetsUnionAcrossPatternsDeduped) {
  SubscriptionTable t;
  t.add_route(Pattern{1}, NodeId{7});
  t.add_route(Pattern{2}, NodeId{7});
  t.add_route(Pattern{2}, NodeId{8});
  const auto targets =
      t.route_targets(*event_with({Pattern{1}, Pattern{2}}), NodeId::invalid());
  EXPECT_EQ(targets, (std::vector<NodeId>{NodeId{7}, NodeId{8}}));
}

TEST(SubscriptionTable, RouteTargetsExcludeUpstream) {
  SubscriptionTable t;
  t.add_route(Pattern{1}, NodeId{7});
  t.add_route(Pattern{1}, NodeId{8});
  const auto targets =
      t.route_targets(*event_with({Pattern{1}}), NodeId{7});
  EXPECT_EQ(targets, (std::vector<NodeId>{NodeId{8}}));
  const auto single = t.route_targets(Pattern{1}, NodeId{8});
  EXPECT_EQ(single, (std::vector<NodeId>{NodeId{7}}));
}

TEST(SubscriptionTable, LocalDoesNotCreateRouteTargets) {
  SubscriptionTable t;
  t.add_local(Pattern{1});
  EXPECT_TRUE(
      t.route_targets(*event_with({Pattern{1}}), NodeId::invalid()).empty());
}

TEST(SubscriptionTable, KnownVsLocalPatterns) {
  SubscriptionTable t;
  t.add_local(Pattern{1});
  t.add_route(Pattern{2}, NodeId{3});
  t.add_local(Pattern{2});
  EXPECT_EQ(t.known_patterns(), (std::vector<Pattern>{Pattern{1}, Pattern{2}}));
  EXPECT_EQ(t.local_patterns(), (std::vector<Pattern>{Pattern{1}, Pattern{2}}));
  t.remove_local(Pattern{1});
  EXPECT_EQ(t.known_patterns(), (std::vector<Pattern>{Pattern{2}}));
  EXPECT_EQ(t.local_patterns(), (std::vector<Pattern>{Pattern{2}}));
}

TEST(SubscriptionTable, RemoveNeighborDropsAllItsRoutes) {
  SubscriptionTable t;
  t.add_route(Pattern{1}, NodeId{3});
  t.add_route(Pattern{2}, NodeId{3});
  t.add_route(Pattern{2}, NodeId{4});
  t.add_local(Pattern{3});
  t.remove_neighbor(NodeId{3});
  EXPECT_FALSE(t.knows(Pattern{1}));
  EXPECT_TRUE(t.has_route(Pattern{2}, NodeId{4}));
  EXPECT_FALSE(t.has_route(Pattern{2}, NodeId{3}));
  EXPECT_TRUE(t.has_local(Pattern{3}));
}

TEST(SubscriptionTable, ClearRoutesKeepsLocal) {
  SubscriptionTable t;
  t.add_local(Pattern{1});
  t.add_route(Pattern{1}, NodeId{2});
  t.add_route(Pattern{5}, NodeId{2});
  t.clear_routes();
  EXPECT_TRUE(t.has_local(Pattern{1}));
  EXPECT_FALSE(t.has_route(Pattern{1}, NodeId{2}));
  EXPECT_FALSE(t.knows(Pattern{5}));
}

TEST(SubscriptionTable, EntryCountCountsLocalAndRoutes) {
  SubscriptionTable t;
  EXPECT_EQ(t.entry_count(), 0u);
  t.add_local(Pattern{1});
  t.add_route(Pattern{1}, NodeId{2});
  t.add_route(Pattern{2}, NodeId{3});
  EXPECT_EQ(t.entry_count(), 3u);
}

}  // namespace
}  // namespace epicast
