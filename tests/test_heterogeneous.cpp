// Heterogeneous-deployment tests: a dispatching network where nodes run
// *different* recovery algorithms (the realistic rolling-upgrade case).
// Foreign digests must be tolerated and, where possible, served.
#include <gtest/gtest.h>

#include "epicast/gossip/pull_base.hpp"
#include "epicast/metrics/message_stats.hpp"
#include "epicast/net/topology.hpp"
#include "epicast/pubsub/network.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {
namespace {

struct MixedRig {
  // Line 0 — 1 — 2 with per-node algorithm choice.
  explicit MixedRig(std::vector<Algorithm> algorithms, std::uint64_t seed = 1)
      : sim(seed),
        topo(Topology::line(static_cast<std::uint32_t>(algorithms.size()))),
        transport(sim, topo, lossless()),
        net(sim, transport, dispatcher_config()) {
    transport.add_observer(stats);
    for (std::uint32_t i = 0; i < algorithms.size(); ++i) {
      auto& d = net.node(NodeId{i});
      d.set_recovery(make_recovery(algorithms[i], d, gossip_config()));
    }
    net.set_delivery_listener(
        [this](NodeId node, const EventPtr& e, bool recovered) {
          if (recovered) recovered_at.emplace_back(node, e->id());
        });
  }

  static TransportConfig lossless() {
    TransportConfig c;
    c.link.loss_rate = 0.0;
    c.direct_loss_rate = 0.0;
    return c;
  }
  static DispatcherConfig dispatcher_config() {
    DispatcherConfig dc;
    dc.record_routes = true;  // superset: publisher variants may be present
    return dc;
  }
  static GossipConfig gossip_config() {
    GossipConfig g;
    g.interval = Duration::millis(30);
    g.buffer_size = 64;
    return g;
  }

  void settle_subscriptions(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& subs) {
    for (auto [node, pattern] : subs) {
      net.node(NodeId{node}).subscribe(Pattern{pattern});
    }
    run(0.5);
  }
  void start() {
    net.for_each([](Dispatcher& d) { d.recovery()->start(); });
  }
  void run(double s) { sim.run_until(sim.now() + Duration::seconds(s)); }

  bool recovered(std::uint32_t node, const EventId& id) const {
    for (const auto& [n, e] : recovered_at) {
      if (n == NodeId{node} && e == id) return true;
    }
    return false;
  }

  /// Publishes from node 0: a baseline event, a dropped event (on 1→2),
  /// and a revealer. Returns the dropped event's id.
  EventId gap_at_two() {
    auto& pub = net.node(NodeId{0});
    (void)pub.publish({Pattern{1}});
    run(0.1);
    const EventPtr lost = pub.publish({Pattern{1}});
    transport.add_fault_filter(
        [id = lost->id()](NodeId from, NodeId to, const Message& m, bool) {
          if (m.message_class() != MessageClass::Event) return true;
          const auto& em = static_cast<const EventMessage&>(m);
          return !(from == NodeId{1} && to == NodeId{2} &&
                   em.event()->id() == id);
        });
    run(0.1);
    (void)pub.publish({Pattern{1}});
    run(0.1);
    return lost->id();
  }

  Simulator sim;
  Topology topo;
  Transport transport;
  MessageStats stats{8};
  PubSubNetwork net;
  std::vector<std::pair<NodeId, EventId>> recovered_at;
};

TEST(Heterogeneous, PullNodeRecoversThroughPushNeighbours) {
  // Subscriber (node 2) runs combined pull; everyone else runs push. The
  // pull digest travelling towards node 0 must be served by push nodes.
  MixedRig rig({Algorithm::Push, Algorithm::Push, Algorithm::CombinedPull});
  rig.settle_subscriptions({{0, 1}, {2, 1}});
  rig.start();
  const EventId lost = rig.gap_at_two();
  rig.run(2.0);
  EXPECT_TRUE(rig.recovered(2, lost));
}

TEST(Heterogeneous, PushNodeStillServesAndPullNodeAnswersDigests) {
  // Subscriber (node 2) runs push; node 0 runs subscriber pull. Push
  // digests from node 0's side reach node 2, which requests the missing
  // event — and the pull node serves the request from its cache.
  MixedRig rig(
      {Algorithm::SubscriberPull, Algorithm::SubscriberPull, Algorithm::Push});
  rig.settle_subscriptions({{0, 1}, {2, 1}});
  rig.start();
  (void)rig.gap_at_two();
  rig.run(2.0);
  // Recovery path: node 2 (push) never originates pull digests, but node
  // 0's push-tolerant serving plus node 2's reaction to any received push
  // digest can fill the gap. At minimum the network must not crash and the
  // event must not be double-delivered anywhere.
  EXPECT_LE(rig.net.node(NodeId{2}).stats().delivered, 3u);
}

TEST(Heterogeneous, MixedPullVariantsInteroperate) {
  MixedRig rig({Algorithm::PublisherPull, Algorithm::RandomPull,
                Algorithm::SubscriberPull, Algorithm::CombinedPull});
  rig.settle_subscriptions({{0, 1}, {3, 1}});
  rig.start();

  auto& pub = rig.net.node(NodeId{0});
  (void)pub.publish({Pattern{1}});
  rig.run(0.1);
  const EventPtr lost = pub.publish({Pattern{1}});
  rig.transport.add_fault_filter(
      [id = lost->id()](NodeId from, NodeId to, const Message& m, bool) {
        if (m.message_class() != MessageClass::Event) return true;
        const auto& em = static_cast<const EventMessage&>(m);
        return !(from == NodeId{2} && to == NodeId{3} &&
                 em.event()->id() == id);
      });
  rig.run(0.1);
  (void)pub.publish({Pattern{1}});
  rig.run(3.0);
  EXPECT_TRUE(rig.recovered(3, lost->id()));
}

TEST(Heterogeneous, ForeignDigestsDoNotCrashAnyPairing) {
  // Smoke across all ordered pairs of algorithms on a 3-node line with a
  // gap at the subscriber: nothing may abort, deliveries stay single.
  const std::vector<Algorithm> algos = {
      Algorithm::Push, Algorithm::SubscriberPull, Algorithm::PublisherPull,
      Algorithm::CombinedPull, Algorithm::RandomPull};
  for (Algorithm a : algos) {
    for (Algorithm b : algos) {
      MixedRig rig({a, a, b});
      rig.settle_subscriptions({{0, 1}, {2, 1}});
      rig.start();
      (void)rig.gap_at_two();
      rig.run(1.0);
      ASSERT_LE(rig.net.node(NodeId{2}).stats().delivered, 3u)
          << to_string(a) << "+" << to_string(b);
    }
  }
}

}  // namespace
}  // namespace epicast
