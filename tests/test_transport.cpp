// Unit tests for the transport layer: overlay delivery with queueing and
// loss, stale-route drops, in-flight link breakage, the out-of-band channel,
// observer accounting, and fault injection.
#include "epicast/net/transport.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "epicast/metrics/message_stats.hpp"
#include "epicast/net/topology.hpp"
#include "epicast/sim/simulator.hpp"

namespace epicast {
namespace {

class TestMessage final : public Message {
 public:
  explicit TestMessage(MessageClass cls, std::size_t bytes = 100)
      : cls_(cls), bytes_(bytes) {}
  MessageClass message_class() const override { return cls_; }
  std::size_t size_bytes() const override { return bytes_; }

 private:
  MessageClass cls_;
  std::size_t bytes_;
};

struct Received {
  NodeId from;
  bool overlay;
  MessageClass cls;
};

class Sink final : public TransportReceiver {
 public:
  void on_overlay_message(NodeId from, const MessagePtr& msg) override {
    received.push_back({from, true, msg->message_class()});
  }
  void on_direct_message(NodeId from, const MessagePtr& msg) override {
    received.push_back({from, false, msg->message_class()});
  }
  std::vector<Received> received;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : sim_(1), topo_(Topology::line(3)), transport_(sim_, topo_, config()) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      transport_.attach(NodeId{i}, sinks_[i]);
    }
    transport_.add_observer(stats_);
  }

  static TransportConfig config() {
    TransportConfig c;
    c.link.loss_rate = 0.0;
    c.direct_loss_rate = 0.0;
    return c;
  }

  Simulator sim_;
  Topology topo_;
  Transport transport_;
  Sink sinks_[3];
  MessageStats stats_{3};
};

TEST_F(TransportTest, OverlayDeliversToNeighbor) {
  transport_.send_overlay(NodeId{0}, NodeId{1},
                          std::make_shared<TestMessage>(MessageClass::Event));
  sim_.run();
  ASSERT_EQ(sinks_[1].received.size(), 1u);
  EXPECT_EQ(sinks_[1].received[0].from, NodeId{0});
  EXPECT_TRUE(sinks_[1].received[0].overlay);
  EXPECT_GT(sim_.now(), SimTime::zero());  // took serialization+propagation
}

TEST_F(TransportTest, OverlayToNonNeighborIsDropped) {
  transport_.send_overlay(NodeId{0}, NodeId{2},
                          std::make_shared<TestMessage>(MessageClass::Event));
  sim_.run();
  EXPECT_TRUE(sinks_[2].received.empty());
  EXPECT_EQ(stats_.snapshot().drops_no_link, 1u);
  EXPECT_EQ(stats_.snapshot().sends_of(MessageClass::Event), 1u);
}

TEST_F(TransportTest, InFlightMessageDiesWithItsLink) {
  transport_.send_overlay(NodeId{0}, NodeId{1},
                          std::make_shared<TestMessage>(MessageClass::Event));
  // The message is on the wire; break the link before it lands.
  topo_.remove_link(NodeId{0}, NodeId{1});
  sim_.run();
  EXPECT_TRUE(sinks_[1].received.empty());
  EXPECT_EQ(stats_.snapshot().drops_no_link, 1u);
}

TEST_F(TransportTest, DirectChannelIgnoresTopology) {
  transport_.send_direct(
      NodeId{0}, NodeId{2},
      std::make_shared<TestMessage>(MessageClass::GossipRequest));
  sim_.run();
  ASSERT_EQ(sinks_[2].received.size(), 1u);
  EXPECT_FALSE(sinks_[2].received[0].overlay);
  EXPECT_EQ(stats_.snapshot().direct_sends, 1u);
}

TEST_F(TransportTest, FaultFilterDropsSelectedMessages) {
  transport_.add_fault_filter([](NodeId from, NodeId, const Message&, bool) {
    return from != NodeId{0};  // drop everything node 0 sends
  });
  transport_.send_overlay(NodeId{0}, NodeId{1},
                          std::make_shared<TestMessage>(MessageClass::Event));
  transport_.send_overlay(NodeId{1}, NodeId{2},
                          std::make_shared<TestMessage>(MessageClass::Event));
  sim_.run();
  EXPECT_TRUE(sinks_[1].received.empty());
  ASSERT_EQ(sinks_[2].received.size(), 1u);
  EXPECT_EQ(stats_.snapshot().losses_of(MessageClass::Event), 1u);
}

TEST_F(TransportTest, FaultFiltersCompose) {
  // Two stacked filters: either one saying "drop" drops the message, and
  // both keep being consulted after the other fires.
  transport_.add_fault_filter([](NodeId from, NodeId, const Message&, bool) {
    return from != NodeId{0};
  });
  transport_.add_fault_filter([](NodeId, NodeId to, const Message&, bool) {
    return to != NodeId{2};
  });
  transport_.send_overlay(NodeId{0}, NodeId{1},
                          std::make_shared<TestMessage>(MessageClass::Event));
  transport_.send_overlay(NodeId{1}, NodeId{2},
                          std::make_shared<TestMessage>(MessageClass::Event));
  transport_.send_overlay(NodeId{1}, NodeId{0},
                          std::make_shared<TestMessage>(MessageClass::Event));
  sim_.run();
  EXPECT_TRUE(sinks_[1].received.empty());  // first filter dropped 0→1
  EXPECT_TRUE(sinks_[2].received.empty());  // second filter dropped 1→2
  ASSERT_EQ(sinks_[0].received.size(), 1u);  // 1→0 passes both
}

TEST_F(TransportTest, ObserverCountsPerClass) {
  transport_.send_overlay(NodeId{0}, NodeId{1},
                          std::make_shared<TestMessage>(MessageClass::Event));
  transport_.send_overlay(
      NodeId{0}, NodeId{1},
      std::make_shared<TestMessage>(MessageClass::GossipDigest));
  transport_.send_direct(
      NodeId{1}, NodeId{2},
      std::make_shared<TestMessage>(MessageClass::GossipReply));
  sim_.run();
  const auto snap = stats_.snapshot();
  EXPECT_EQ(snap.sends_of(MessageClass::Event), 1u);
  EXPECT_EQ(snap.sends_of(MessageClass::GossipDigest), 1u);
  EXPECT_EQ(snap.sends_of(MessageClass::GossipReply), 1u);
  EXPECT_EQ(snap.gossip_sends(), 2u);
  EXPECT_EQ(snap.overlay_sends, 2u);
  EXPECT_EQ(snap.direct_sends, 1u);
}

TEST(TransportLoss, LossyOverlayDropsStatistically) {
  Simulator sim(3);
  Topology topo = Topology::line(2);
  TransportConfig cfg;
  cfg.link.loss_rate = 0.2;
  Transport transport(sim, topo, cfg);
  Sink a, b;
  transport.attach(NodeId{0}, a);
  transport.attach(NodeId{1}, b);

  constexpr int kSends = 20'000;
  for (int i = 0; i < kSends; ++i) {
    transport.send_overlay(NodeId{0}, NodeId{1},
                           std::make_shared<TestMessage>(MessageClass::Event,
                                                         10));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(b.received.size()) / kSends, 0.8, 0.02);
}

TEST(TransportLoss, ControlIsLosslessByDefault) {
  Simulator sim(3);
  Topology topo = Topology::line(2);
  TransportConfig cfg;
  cfg.link.loss_rate = 0.5;
  cfg.control_lossless = true;
  Transport transport(sim, topo, cfg);
  Sink a, b;
  transport.attach(NodeId{0}, a);
  transport.attach(NodeId{1}, b);
  for (int i = 0; i < 500; ++i) {
    transport.send_overlay(
        NodeId{0}, NodeId{1},
        std::make_shared<TestMessage>(MessageClass::Control, 10));
  }
  sim.run();
  EXPECT_EQ(b.received.size(), 500u);
}

TEST(TransportLoss, DirectChannelLossIsIndependent) {
  Simulator sim(5);
  Topology topo = Topology::line(2);
  TransportConfig cfg;
  cfg.link.loss_rate = 0.0;
  cfg.direct_loss_rate = 0.3;
  Transport transport(sim, topo, cfg);
  Sink a, b;
  transport.attach(NodeId{0}, a);
  transport.attach(NodeId{1}, b);
  constexpr int kSends = 20'000;
  for (int i = 0; i < kSends; ++i) {
    transport.send_direct(
        NodeId{0}, NodeId{1},
        std::make_shared<TestMessage>(MessageClass::GossipReply, 10));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(b.received.size()) / kSends, 0.7, 0.02);
}

TEST(TransportDeterminism, SameSeedSameDeliverySet) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    Topology topo = Topology::line(2);
    TransportConfig cfg;
    cfg.link.loss_rate = 0.3;
    Transport transport(sim, topo, cfg);
    Sink a, b;
    transport.attach(NodeId{0}, a);
    transport.attach(NodeId{1}, b);
    for (int i = 0; i < 200; ++i) {
      transport.send_overlay(
          NodeId{0}, NodeId{1},
          std::make_shared<TestMessage>(MessageClass::Event, 10));
    }
    sim.run();
    return b.received.size();
  };
  EXPECT_EQ(run(123), run(123));
}

}  // namespace
}  // namespace epicast
