// Model-based property test: the Scheduler against a trivially correct
// reference (a sorted vector of (time, seq) pairs), under randomized
// schedule/cancel interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "epicast/common/rng.hpp"
#include "epicast/sim/scheduler.hpp"

namespace epicast {
namespace {

class SchedulerModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerModelSweep, MatchesReferenceModel) {
  Rng rng(GetParam());
  Scheduler scheduler;

  struct ModelEntry {
    std::int64_t at_ns;
    std::uint64_t seq;
    bool cancelled = false;
  };
  std::vector<ModelEntry> model;
  std::vector<EventHandle> handles;
  std::vector<std::uint64_t> fired;  // seq numbers in firing order
  std::uint64_t next_seq = 0;

  // Phase 1: random schedule/cancel operations.
  for (int op = 0; op < 400; ++op) {
    if (rng.chance(0.75) || handles.empty()) {
      const std::int64_t at_ns =
          static_cast<std::int64_t>(rng.next_below(50)) * 1'000'000;
      const std::uint64_t seq = next_seq++;
      model.push_back(ModelEntry{at_ns, seq});
      handles.push_back(scheduler.schedule_at(
          SimTime::zero() + Duration::nanos(at_ns),
          [&fired, seq]() { fired.push_back(seq); }));
    } else {
      const std::size_t pick = rng.next_below(handles.size());
      if (handles[pick].cancel()) model[pick].cancelled = true;
    }
  }

  // Phase 2: run; compare to the model's prediction (stable sort by time,
  // FIFO-by-seq for ties, cancelled entries omitted).
  scheduler.run();
  std::vector<ModelEntry> expected;
  for (const ModelEntry& e : model) {
    if (!e.cancelled) expected.push_back(e);
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const ModelEntry& a, const ModelEntry& b) {
                     if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
                     return a.seq < b.seq;
                   });
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], expected[i].seq) << "position " << i;
  }
  EXPECT_EQ(scheduler.executed(), fired.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerModelSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace epicast
