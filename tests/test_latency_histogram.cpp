// Publish→deliver latency histogram: 64 power-of-two nanosecond buckets,
// quantiles at the geometric bucket midpoint, sparse JSON, and the
// element-wise merge the cluster harness uses to aggregate per-node
// histograms into cluster-wide percentiles.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "epicast/metrics/latency_histogram.hpp"

namespace epicast::metrics {
namespace {

TEST(LatencyHistogram, StartsEmpty) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.5), 0.0);
  EXPECT_NE(h.json().find("\"count\": 0"), std::string::npos);
}

TEST(LatencyHistogram, BucketsArePowersOfTwo) {
  LatencyHistogram h;
  h.record(1);        // bucket 0: [1, 2)
  h.record(1023);     // bucket 9: [512, 1024)
  h.record(1024);     // bucket 10: [1024, 2048)
  ASSERT_EQ(h.count(), 3u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
  EXPECT_EQ(h.buckets()[10], 1u);
  EXPECT_EQ(h.max_ns(), 1024);
}

TEST(LatencyHistogram, NegativeAndZeroClampToTheFirstBucket) {
  // A delivery clocked "before" its publish (clock skew between the
  // monotonic reads) must not crash or wrap — it lands in bucket 0.
  LatencyHistogram h;
  h.record(0);
  h.record(-5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.buckets()[0], 2u);
}

TEST(LatencyHistogram, QuantilesSitAtTheGeometricMidpoint) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(1 << 20);  // ~1 ms, bucket 20
  h.record(std::int64_t{1} << 30);                 // ~1.07 s, bucket 30
  const double mid20 = std::ldexp(1.0, 20) * std::sqrt(2.0) * 1e-9;
  const double mid30 = std::ldexp(1.0, 30) * std::sqrt(2.0) * 1e-9;
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.5), mid20);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.99), mid20);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(1.0), mid30);
}

TEST(LatencyHistogram, JsonIsSparse) {
  LatencyHistogram h;
  h.record(1 << 12);
  h.record(1 << 12);
  const std::string json = h.json();
  EXPECT_NE(json.find("[12, 2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50_s\""), std::string::npos);
  EXPECT_NE(json.find("\"p90_s\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_s\""), std::string::npos);
  EXPECT_NE(json.find("\"max_s\""), std::string::npos);
  // Only the occupied bucket appears.
  EXPECT_EQ(json.find("[11,"), std::string::npos);
}

TEST(LatencyHistogram, MergeIsElementWise) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(1 << 8);
  b.record(1 << 8);
  b.record(1 << 16);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.buckets()[8], 2u);
  EXPECT_EQ(a.buckets()[16], 1u);
  EXPECT_EQ(a.max_ns(), 1 << 16);
}

}  // namespace
}  // namespace epicast::metrics
