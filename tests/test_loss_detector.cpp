// Unit tests for sequence-gap loss detection.
#include "epicast/gossip/loss_detector.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

TEST(LossDetector, FirstContactDetectsNothing) {
  LossDetector d(64);
  EXPECT_TRUE(d.observe(NodeId{0}, Pattern{1}, SeqNo{5}).empty());
  EXPECT_EQ(d.high_watermark(NodeId{0}, Pattern{1}), SeqNo{5});
  EXPECT_EQ(d.streams_tracked(), 1u);
}

TEST(LossDetector, ConsecutiveSequenceIsClean) {
  LossDetector d(64);
  (void)d.observe(NodeId{0}, Pattern{1}, SeqNo{1});
  for (std::uint64_t s = 2; s <= 10; ++s) {
    EXPECT_TRUE(d.observe(NodeId{0}, Pattern{1}, SeqNo{s}).empty());
  }
  EXPECT_EQ(d.gaps_detected(), 0u);
}

TEST(LossDetector, GapYieldsExactlyTheMissingSeqs) {
  LossDetector d(64);
  (void)d.observe(NodeId{0}, Pattern{1}, SeqNo{2});
  const auto missing = d.observe(NodeId{0}, Pattern{1}, SeqNo{6});
  EXPECT_EQ(missing, (std::vector<SeqNo>{SeqNo{3}, SeqNo{4}, SeqNo{5}}));
  EXPECT_EQ(d.gaps_detected(), 3u);
  EXPECT_EQ(d.high_watermark(NodeId{0}, Pattern{1}), SeqNo{6});
}

TEST(LossDetector, LateArrivalIsNotALoss) {
  LossDetector d(64);
  (void)d.observe(NodeId{0}, Pattern{1}, SeqNo{5});
  EXPECT_TRUE(d.observe(NodeId{0}, Pattern{1}, SeqNo{3}).empty());
  EXPECT_TRUE(d.observe(NodeId{0}, Pattern{1}, SeqNo{5}).empty());
  EXPECT_EQ(d.high_watermark(NodeId{0}, Pattern{1}), SeqNo{5});
}

TEST(LossDetector, StreamsAreIndependent) {
  LossDetector d(64);
  (void)d.observe(NodeId{0}, Pattern{1}, SeqNo{1});
  (void)d.observe(NodeId{0}, Pattern{2}, SeqNo{1});
  (void)d.observe(NodeId{1}, Pattern{1}, SeqNo{1});
  // A gap on (0, p1) says nothing about the other streams.
  EXPECT_EQ(d.observe(NodeId{0}, Pattern{1}, SeqNo{3}).size(), 1u);
  EXPECT_TRUE(d.observe(NodeId{0}, Pattern{2}, SeqNo{2}).empty());
  EXPECT_TRUE(d.observe(NodeId{1}, Pattern{1}, SeqNo{2}).empty());
  EXPECT_EQ(d.streams_tracked(), 3u);
}

TEST(LossDetector, HugeGapIsClampedToNewest) {
  LossDetector d(4);
  (void)d.observe(NodeId{0}, Pattern{1}, SeqNo{1});
  const auto missing = d.observe(NodeId{0}, Pattern{1}, SeqNo{100});
  ASSERT_EQ(missing.size(), 4u);
  EXPECT_EQ(missing.front(), SeqNo{96});
  EXPECT_EQ(missing.back(), SeqNo{99});
}

TEST(LossDetector, RecoveredGapThenNextEventIsClean) {
  LossDetector d(64);
  (void)d.observe(NodeId{0}, Pattern{1}, SeqNo{1});
  (void)d.observe(NodeId{0}, Pattern{1}, SeqNo{3});  // 2 missing
  // 2 arrives via recovery (late), then 4 arrives normally: only nothing new.
  EXPECT_TRUE(d.observe(NodeId{0}, Pattern{1}, SeqNo{2}).empty());
  EXPECT_TRUE(d.observe(NodeId{0}, Pattern{1}, SeqNo{4}).empty());
}

TEST(LossDetector, SeedRaisesTheWatermarkWithoutReportingAGap) {
  LossDetector d(64);
  d.seed(NodeId{0}, Pattern{1}, SeqNo{5});
  EXPECT_EQ(d.high_watermark(NodeId{0}, Pattern{1}), SeqNo{5});
  EXPECT_EQ(d.gaps_detected(), 0u);
  // The first live observation after the seed exposes the outage window —
  // this is how a warm-restarted daemon learns what it slept through.
  const std::vector<SeqNo> missing = d.observe(NodeId{0}, Pattern{1}, SeqNo{8});
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing.front(), SeqNo{6});
  EXPECT_EQ(missing.back(), SeqNo{7});
}

TEST(LossDetector, SeedNeverLowersAnExistingWatermark) {
  LossDetector d(64);
  (void)d.observe(NodeId{0}, Pattern{1}, SeqNo{9});
  d.seed(NodeId{0}, Pattern{1}, SeqNo{4});  // stale snapshot entry
  EXPECT_EQ(d.high_watermark(NodeId{0}, Pattern{1}), SeqNo{9});
  EXPECT_TRUE(d.observe(NodeId{0}, Pattern{1}, SeqNo{10}).empty());
}

TEST(LossDetectorDeath, SequenceNumbersStartAtOne) {
  LossDetector d(64);
  EXPECT_DEATH((void)d.observe(NodeId{0}, Pattern{1}, SeqNo{0}), "start at 1");
}

}  // namespace
}  // namespace epicast
