// Conformance tier — the oracle layer's own tests.
//
// Two obligations, per ISSUE: (a) every oracle demonstrably *fires* when
// fed a deliberate violation (FailMode::Record suites driven through the
// public hooks and verify_* seams), and (b) the suite is wired into
// run_scenario and performs a non-zero number of checks in real runs —
// and none when disabled.
#include <gtest/gtest.h>

#include <memory>

#include "../gossip_harness.hpp"
#include "epicast/epicast.hpp"

namespace {

using namespace epicast;
using epicast::oracle::BufferBoundOracle;
using epicast::oracle::ConservationOracle;
using epicast::oracle::DigestCoverageOracle;
using epicast::oracle::FailMode;
using epicast::oracle::MatchingDeliveryOracle;
using epicast::oracle::OracleContext;
using epicast::oracle::OracleSuite;
using epicast::oracle::UniqueDeliveryOracle;
using epicast::oracle::WireRoundTripOracle;
using GossipHarness = epicast::testing::GossipHarness;

EventPtr make_event(std::uint32_t source, std::uint64_t seq,
                    std::uint32_t pattern = 1) {
  return std::make_shared<const EventData>(
      EventId{NodeId{source}, seq},
      std::vector<PatternSeq>{{Pattern{pattern}, SeqNo{seq}}},
      /*payload_bytes=*/64, SimTime::zero());
}

/// A Record-mode suite with no live scenario behind it — hooks are driven
/// by hand. The context may carry a harness's sim/network when the oracle
/// under test needs them.
std::unique_ptr<OracleSuite> record_suite(OracleContext ctx = {}) {
  return std::make_unique<OracleSuite>(ctx, FailMode::Record);
}

TEST(UniqueDeliveryOracleTest, FiresOnDuplicateDelivery) {
  auto suite = record_suite();
  suite->add(std::make_unique<UniqueDeliveryOracle>());

  const EventPtr e = make_event(0, 1);
  suite->notify_delivery(NodeId{3}, e, false);
  EXPECT_TRUE(suite->violations().empty());
  suite->notify_delivery(NodeId{4}, e, false);  // other node: still fine
  EXPECT_TRUE(suite->violations().empty());

  suite->notify_delivery(NodeId{3}, e, false);  // same (event, node) again
  ASSERT_EQ(suite->violations().size(), 1u);
  EXPECT_EQ(suite->violations()[0].oracle, "unique-delivery");
  EXPECT_EQ(suite->violations()[0].node, NodeId{3});
  EXPECT_GT(suite->checks(), 0u);
}

TEST(MatchingDeliveryOracleTest, FiresOnDeliveryToNonSubscriber) {
  // A real 3-node network: node 2 subscribes to pattern 1, node 1 to
  // nothing. The oracle consults the live subscription tables.
  GossipHarness h(3, Algorithm::NoRecovery);
  h.subscribe_and_settle({{2, 1}});

  auto suite = record_suite({&h.sim(), &h.net(), SizingMode::Nominal});
  suite->add(std::make_unique<MatchingDeliveryOracle>());

  const EventPtr e = make_event(0, 1, /*pattern=*/1);
  suite->notify_delivery(NodeId{2}, e, false);  // subscribed: fine
  EXPECT_TRUE(suite->violations().empty());

  suite->notify_delivery(NodeId{1}, e, false);  // not subscribed
  ASSERT_EQ(suite->violations().size(), 1u);
  EXPECT_EQ(suite->violations()[0].oracle, "matching-delivery");
  EXPECT_EQ(suite->violations()[0].node, NodeId{1});
}

TEST(ConservationOracleTest, FiresOnUnpublishedDelivery) {
  auto suite = record_suite();
  suite->add(std::make_unique<ConservationOracle>());

  const EventPtr e = make_event(0, 7);
  // Delivered at node 5 (not the source), never published.
  suite->notify_delivery(NodeId{5}, e, false);
  ASSERT_EQ(suite->violations().size(), 1u);
  EXPECT_EQ(suite->violations()[0].oracle, "conservation");
}

TEST(ConservationOracleTest, FiresOnRecoveredDeliveryWithoutReply) {
  auto suite = record_suite();
  suite->add(std::make_unique<ConservationOracle>());

  const EventPtr e = make_event(0, 7);
  suite->notify_publish(e);
  suite->notify_delivery(NodeId{5}, e, /*recovered=*/true);
  ASSERT_EQ(suite->violations().size(), 1u);
  EXPECT_EQ(suite->violations()[0].oracle, "conservation");
  EXPECT_EQ(suite->violations()[0].node, NodeId{5});
}

TEST(ConservationOracleTest, AcceptsRecoveredDeliveryAfterReply) {
  auto suite = record_suite();
  suite->add(std::make_unique<ConservationOracle>());

  const EventPtr e = make_event(0, 7);
  suite->notify_publish(e);
  const RecoveryReplyMessage reply(NodeId{1}, /*nominal_bytes=*/100, {e});
  suite->on_send(NodeId{1}, NodeId{5}, reply, /*overlay=*/false);
  suite->notify_delivery(NodeId{5}, e, /*recovered=*/true);
  EXPECT_TRUE(suite->violations().empty());
}

TEST(BufferBoundOracleTest, FiresOnOccupancyAboveBeta) {
  auto suite = record_suite();
  auto* oracle = new BufferBoundOracle();
  suite->add(std::unique_ptr<BufferBoundOracle>(oracle));

  oracle->verify_occupancy(NodeId{2}, /*size=*/4, /*capacity=*/4);
  EXPECT_TRUE(suite->violations().empty());
  oracle->verify_occupancy(NodeId{2}, /*size=*/5, /*capacity=*/4);
  ASSERT_EQ(suite->violations().size(), 1u);
  EXPECT_EQ(suite->violations()[0].oracle, "buffer-bound");
  EXPECT_EQ(suite->violations()[0].node, NodeId{2});
}

TEST(DigestCoverageOracleTest, FiresOnDigestOfUnbufferedEvent) {
  // Node 0 runs a real push protocol and caches its own publish; a forged
  // originated digest claiming a never-published id must fire.
  GossipHarness h(3, Algorithm::Push);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  const EventPtr e = h.net().node(NodeId{0}).publish({Pattern{1}});
  h.run_for(0.1);
  ASSERT_TRUE(h.protocol(0)->cache().contains(e->id()));

  auto suite = record_suite({&h.sim(), &h.net(), SizingMode::Nominal});
  suite->add(std::make_unique<DigestCoverageOracle>());

  const PushDigestMessage honest(NodeId{0}, 100, Pattern{1}, {e->id()},
                                 /*hops=*/0);
  suite->on_send(NodeId{0}, NodeId{1}, honest, /*overlay=*/true);
  EXPECT_TRUE(suite->violations().empty());

  const EventId bogus{NodeId{0}, 999};
  const PushDigestMessage forged(NodeId{0}, 100, Pattern{1}, {bogus},
                                 /*hops=*/0);
  // A *forwarded* copy (hops > 0) is exempt: the ids are the originator's.
  const PushDigestMessage forwarded(NodeId{0}, 100, Pattern{1}, {bogus},
                                    /*hops=*/1);
  suite->on_send(NodeId{1}, NodeId{2}, forwarded, /*overlay=*/true);
  EXPECT_TRUE(suite->violations().empty());

  suite->on_send(NodeId{0}, NodeId{1}, forged, /*overlay=*/true);
  ASSERT_EQ(suite->violations().size(), 1u);
  EXPECT_EQ(suite->violations()[0].oracle, "digest-coverage");
  EXPECT_EQ(suite->violations()[0].node, NodeId{0});
}

TEST(DigestCoverageOracleTest, FiresOnReplyOfUnbufferedEvent) {
  GossipHarness h(3, Algorithm::Push);
  h.subscribe_and_settle({{0, 1}, {2, 1}});
  h.net().node(NodeId{0}).publish({Pattern{1}});
  h.run_for(0.1);

  auto suite = record_suite({&h.sim(), &h.net(), SizingMode::Nominal});
  suite->add(std::make_unique<DigestCoverageOracle>());

  // A reply carrying an event the sender never buffered (it was "served"
  // by node 1, a mere router with an empty cache).
  const EventPtr foreign = make_event(0, 999);
  const RecoveryReplyMessage reply(NodeId{1}, 100, {foreign});
  suite->on_send(NodeId{1}, NodeId{2}, reply, /*overlay=*/false);
  ASSERT_EQ(suite->violations().size(), 1u);
  EXPECT_EQ(suite->violations()[0].oracle, "digest-coverage");
}

TEST(WireRoundTripOracleTest, PassesOnHonestFrameAndFiresOnCorruptBytes) {
  auto suite = record_suite({nullptr, nullptr, SizingMode::Wire});
  auto* oracle = new WireRoundTripOracle();
  suite->add(std::unique_ptr<WireRoundTripOracle>(oracle));

  const RecoveryRequestMessage req(NodeId{3}, 100,
                                   {EventId{NodeId{1}, 4}});
  oracle->verify_frame(NodeId{3}, req);
  EXPECT_TRUE(suite->violations().empty());
  EXPECT_GT(suite->checks(), 0u);

  // Truncate the honest frame: decode must fail and the oracle must fire.
  wire::WireBuffer buf;
  wire::Codec::encode(req, buf);
  const auto frame = buf.bytes();
  oracle->verify_bytes(NodeId{3}, frame.subspan(0, frame.size() - 1));
  ASSERT_EQ(suite->violations().size(), 1u);
  EXPECT_EQ(suite->violations()[0].oracle, "wire-round-trip");
  EXPECT_EQ(suite->violations()[0].node, NodeId{3});
}

// -- wiring into run_scenario -------------------------------------------------

ScenarioConfig small_scenario(SizingMode mode) {
  ScenarioConfig cfg = ScenarioConfig::paper_defaults(Algorithm::CombinedPull);
  cfg.nodes = 16;
  cfg.warmup = Duration::seconds(0.5);
  cfg.measure = Duration::seconds(0.5);
  cfg.seed = 7;
  cfg.sizing_mode = mode;
  return cfg;
}

TEST(OracleSuiteWiring, EveryScenarioRunsWithActiveOracles) {
  ScenarioConfig cfg = small_scenario(SizingMode::Nominal);
  ASSERT_TRUE(cfg.oracles) << "oracles must default on in tests";
  const ScenarioResult r = run_scenario(cfg);
  // Millions of sim events, thousands of deliveries: the six oracles must
  // have checked plenty — and aborted nothing (we got here).
  EXPECT_GT(r.oracle_checks, 1000u);
}

TEST(OracleSuiteWiring, WireModeExercisesRoundTripOracle) {
  const ScenarioResult nominal = run_scenario(small_scenario(SizingMode::Nominal));
  const ScenarioResult wire = run_scenario(small_scenario(SizingMode::Wire));
  // The wire-round-trip oracle only checks under SizingMode::Wire, so the
  // wire run performs strictly more checks on the same traffic.
  EXPECT_GT(wire.oracle_checks, nominal.oracle_checks);
}

TEST(OracleSuiteWiring, DisabledScenarioPerformsNoChecks) {
  ScenarioConfig cfg = small_scenario(SizingMode::Nominal);
  cfg.oracles = false;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_EQ(r.oracle_checks, 0u);
}

TEST(OracleSuiteWiring, DisabledScenarioIsBitIdentical) {
  ScenarioConfig cfg = small_scenario(SizingMode::Nominal);
  const ScenarioResult with = run_scenario(cfg);
  cfg.oracles = false;
  const ScenarioResult without = run_scenario(cfg);
  // Oracles are pure observers: enabling them cannot change the run.
  EXPECT_EQ(with.sim_events_executed, without.sim_events_executed);
  EXPECT_EQ(with.delivered_pairs, without.delivered_pairs);
  EXPECT_EQ(with.expected_pairs, without.expected_pairs);
  EXPECT_EQ(with.delivery_rate, without.delivery_rate);
}

TEST(OracleSuiteWiring, DefaultSuiteHasSixOracles) {
  OracleSuite suite({}, FailMode::Record);
  oracle::add_default_oracles(suite);
  EXPECT_EQ(suite.oracle_count(), 6u);
}

}  // namespace
