// Conformance tier — seed-replication stability (§IV-A methodology).
//
// The paper reports that "results of 10 simulations ran with different
// random seeds showed that variations are limited, around 1%-2%". This
// pins the reduced-scale analogue: the combined-pull delivery rate at
// N=40 must not spread more than a few points across seeds — a regression
// here means the simulation became seed-sensitive (lost determinism, or a
// protocol change made outcomes fragile).
#include <gtest/gtest.h>

#include "epicast/epicast.hpp"
#include "shape_spec.hpp"

namespace {

using namespace epicast;

struct ReplicationSpec {
  std::uint32_t nodes = 40;
  unsigned replicas = 5;
  double measure_seconds = 3.0;
  double eps = 0.10;
  /// max − min delivery across seeds stays within this.
  double max_spread = 0.03;
  /// the mean stays in the figure's qualitative band (combined pull at
  /// ε=0.1 sits far above no-recovery's ~0.5 and below 1.0).
  double mean_low = 0.80;
  double mean_high = 1.00;
};

TEST(SeedReplication, CombinedPullSpreadIsSmall) {
  const ReplicationSpec spec;

  ScenarioConfig base = figures::fig3a(Algorithm::CombinedPull, spec.eps,
                                       spec.measure_seconds);
  base.nodes = spec.nodes;
  const ReplicatedResult rep =
      run_replicated(base, spec.replicas, /*max_parallel=*/0);

  ASSERT_EQ(rep.runs.size(), spec.replicas);
  for (const ScenarioResult& r : rep.runs) {
    EXPECT_GT(r.oracle_checks, 0u) << "oracles must be active in every run";
  }
  std::printf("  delivery over %u seeds: mean=%.4f stddev=%.4f min=%.4f "
              "max=%.4f\n",
              spec.replicas, rep.mean_delivery, rep.stddev_delivery,
              rep.min_delivery, rep.max_delivery);

  EXPECT_LE(rep.max_delivery - rep.min_delivery, spec.max_spread)
      << "seed-to-seed spread exceeds the paper's stability claim";
  EXPECT_GE(rep.mean_delivery, spec.mean_low);
  EXPECT_LE(rep.mean_delivery, spec.mean_high);
}

}  // namespace
