// Conformance tier — overhead-shape regressions for Fig. 9 and Fig. 10,
// at reduced scale. The asserted quantities are the paper's §IV-E metrics:
// gossip messages per dispatcher (absolute) and the gossip/event traffic
// ratio. See EXPERIMENTS.md ("Enforced by tests/conformance").
#include "shape_spec.hpp"

namespace {

using namespace epicast;
using namespace epicast::conformance;

void expect_oracles_ran(const std::vector<LabeledResult>& results) {
  for (const auto& r : results) {
    EXPECT_GT(r.result.oracle_checks, 0u)
        << "oracles were not active in scenario " << r.label;
  }
}

// -- Fig. 9: overhead vs N and vs πmax ----------------------------------------

struct Fig9Spec {
  /// Fig. 9(a)'s trends need the bench's N regime (40→200, EXPERIMENTS.md):
  /// below N≈40 combined pull's gossip has not yet saturated and its ratio
  /// is still flat. 40→120 is the smallest span that shows both trends.
  std::vector<std::uint32_t> sizes{40, 120};
  std::vector<std::uint32_t> pis{2, 10};
  double measure_seconds = 2.0;
  double warmup_seconds = 1.0;
  ShapeScale scale;
  /// ratio-falls monotonicity slack (per step).
  double fall_slack = 0.02;
  /// sublinearity: per-dispatcher gossip may grow by at most this fraction
  /// of the N growth factor (1.0 would be exactly linear).
  double sublinear_fraction = 0.75;
};

TEST(Fig9a, RatioFallsAndGossipSublinearInN) {
  const Fig9Spec spec;
  const std::vector<Algorithm> algos = {Algorithm::Push,
                                        Algorithm::CombinedPull};

  std::vector<LabeledConfig> configs;
  for (std::uint32_t n : spec.sizes) {
    for (Algorithm a : algos) {
      // Fig. 9(a) measures overhead on the Fig. 6 scenario (β scaled with
      // N for ~4 s persistence) — N goes through the builder.
      ScenarioConfig cfg = figures::fig6(a, n, spec.measure_seconds);
      cfg.warmup = Duration::seconds(spec.warmup_seconds);
      configs.push_back(
          {std::string(to_string(a)) + " N=" + std::to_string(n), cfg});
    }
  }
  const auto results = run_shapes(std::move(configs));
  expect_oracles_ran(results);

  for (std::size_t s = 0; s < algos.size(); ++s) {
    Curve ratio{std::string(to_string(algos[s])) + " ratio(N)", {}, {}};
    Curve abs{std::string(to_string(algos[s])) + " msgs(N)", {}, {}};
    for (std::size_t i = 0; i < spec.sizes.size(); ++i) {
      const auto& r = results[i * algos.size() + s].result;
      ratio.xs.push_back(spec.sizes[i]);
      ratio.ys.push_back(r.gossip_event_ratio);
      abs.xs.push_back(spec.sizes[i]);
      abs.ys.push_back(r.gossip_msgs_per_dispatcher);
    }
    log_curves({ratio, abs});

    EXPECT_SHAPE("Fig. 9(a)", "gossip/event ratio falls with N",
                 monotone(ratio, -1, spec.fall_slack));
    const double n_factor =
        double(spec.sizes.back()) / double(spec.sizes.front());
    const double growth = abs.ys.back() / abs.ys.front();
    EXPECT_LE(growth, 1.0 + spec.sublinear_fraction * (n_factor - 1.0))
        << "Fig. 9(a) — per-dispatcher gossip must grow well below "
           "linearly with N; "
        << render(abs);
  }
}

TEST(Fig9b, RatioFallsWithPatternCount) {
  const Fig9Spec spec;
  const std::vector<Algorithm> algos = {Algorithm::Push,
                                        Algorithm::CombinedPull};

  std::vector<LabeledConfig> configs;
  for (std::uint32_t pi : spec.pis) {
    for (Algorithm a : algos) {
      configs.push_back(
          {std::string(to_string(a)) + " pi=" + std::to_string(pi),
           at_scale(figures::fig9b(a, pi, spec.measure_seconds),
                    spec.scale)});
    }
  }
  const auto results = run_shapes(std::move(configs));
  expect_oracles_ran(results);

  for (std::size_t s = 0; s < algos.size(); ++s) {
    Curve ratio{std::string(to_string(algos[s])) + " ratio(pi)", {}, {}};
    for (std::size_t i = 0; i < spec.pis.size(); ++i) {
      ratio.xs.push_back(spec.pis[i]);
      ratio.ys.push_back(
          results[i * algos.size() + s].result.gossip_event_ratio);
    }
    log_curves({ratio});
    EXPECT_SHAPE("Fig. 9(b)", "gossip/event ratio falls with pi_max",
                 monotone(ratio, -1, spec.fall_slack));
  }
}

// -- Fig. 10: overhead vs ε ---------------------------------------------------

struct Fig10Spec {
  std::vector<double> epsilons{0.02, 0.10};
  double high_rate_hz = 50.0;
  double low_rate_hz = 5.0;
  double low_eps = 0.01;
  double measure_seconds = 2.0;
  ShapeScale scale;
  /// combined pull stays below push at every ε by this margin (msgs).
  double below_push_margin = 0.0;
  /// combined's reactive overhead rises with ε (per-step slack, msgs).
  double rise_slack = 20.0;
  /// push is ~flat in ε: its spread stays within this factor.
  double push_flat_factor = 1.6;
  /// the paper's headline: at low load and ε=0.01, pull's overhead is a
  /// small fraction of push's — bound the ratio by this.
  double low_load_ratio_bound = 0.5;
};

TEST(Fig10, HighLoadOverheadShapes) {
  const Fig10Spec spec;
  const std::vector<Algorithm> algos = {Algorithm::Push,
                                        Algorithm::CombinedPull};

  std::vector<LabeledConfig> configs;
  for (double eps : spec.epsilons) {
    for (Algorithm a : algos) {
      configs.push_back(
          {std::string(to_string(a)) + " eps=" + std::to_string(eps),
           at_scale(figures::fig10(a, spec.high_rate_hz, eps,
                                   spec.measure_seconds),
                    spec.scale)});
    }
  }
  const auto results = run_shapes(std::move(configs));
  expect_oracles_ran(results);

  Curve push{"push msgs(eps)", {}, {}};
  Curve combined{"combined-pull msgs(eps)", {}, {}};
  for (std::size_t i = 0; i < spec.epsilons.size(); ++i) {
    push.xs.push_back(spec.epsilons[i]);
    push.ys.push_back(results[i * 2].result.gossip_msgs_per_dispatcher);
    combined.xs.push_back(spec.epsilons[i]);
    combined.ys.push_back(
        results[i * 2 + 1].result.gossip_msgs_per_dispatcher);
  }
  log_curves({push, combined});

  EXPECT_SHAPE("Fig. 10 (high load)", "combined pull stays below push",
               ordered_above(push, combined, spec.below_push_margin));
  EXPECT_SHAPE("Fig. 10 (high load)",
               "combined pull's reactive overhead rises with eps",
               monotone(combined, +1, spec.rise_slack));
  EXPECT_SHAPE("Fig. 10 (high load)", "push overhead is ~flat in eps",
               flat_within_factor(push, spec.push_flat_factor));
}

TEST(Fig10, LowLoadPullIsFractionOfPush) {
  const Fig10Spec spec;

  std::vector<LabeledConfig> configs;
  for (Algorithm a : {Algorithm::Push, Algorithm::CombinedPull}) {
    // fig10 applies the low-load timing (20 s warm-up / horizon) itself;
    // only N is reduced here.
    ScenarioConfig cfg = figures::fig10(a, spec.low_rate_hz, spec.low_eps,
                                        spec.measure_seconds);
    cfg.nodes = spec.scale.nodes;
    configs.push_back(
        {std::string(to_string(a)) + " low-load eps=0.01", cfg});
  }
  const auto results = run_shapes(std::move(configs));
  expect_oracles_ran(results);

  const double push_msgs = results[0].result.gossip_msgs_per_dispatcher;
  const double pull_msgs = results[1].result.gossip_msgs_per_dispatcher;
  std::printf("  low-load msgs/dispatcher: push=%g combined=%g\n", push_msgs,
              pull_msgs);
  EXPECT_SHAPE("Fig. 10 (low load)",
               "at eps=0.01 reactive pull costs a small fraction of push",
               ratio_below(pull_msgs, push_msgs, spec.low_load_ratio_bound));
}

}  // namespace
