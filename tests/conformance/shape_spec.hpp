// Conformance shape-spec mini-framework.
//
// A figure's reproduction target is a *shape* — who wins, what rises, what
// plateaus, what a ratio stays below — not a point value. Each test in this
// tier declares a small spec struct naming its scenario scale and
// tolerances, builds the figure's scenarios through the same
// figures:: builders the benches use (bench/scenario_builders.hpp), and
// asserts the shapes EXPERIMENTS.md records via the predicates below.
//
// Every predicate returns a testing::AssertionResult that renders the
// offending curves, so a failing shape reads like the figure it pins.
// Tolerances always come in as parameters from the calling spec — none are
// hard-coded here.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "epicast/epicast.hpp"
#include "scenario_builders.hpp"

namespace epicast::conformance {

/// A named series over a swept x: one curve of a figure.
struct Curve {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

inline std::string render(const Curve& c) {
  std::ostringstream os;
  os << c.name << " = [";
  for (std::size_t i = 0; i < c.ys.size(); ++i) {
    if (i != 0) os << ", ";
    os << "(" << c.xs[i] << ": " << c.ys[i] << ")";
  }
  os << "]";
  return os.str();
}

/// `hi` stays at least `margin` above `lo` at every shared x (orderings:
/// "combined > subscriber-pull > no-recovery").
inline ::testing::AssertionResult ordered_above(const Curve& hi,
                                                const Curve& lo,
                                                double margin) {
  for (std::size_t i = 0; i < hi.ys.size() && i < lo.ys.size(); ++i) {
    if (hi.ys[i] < lo.ys[i] + margin) {
      return ::testing::AssertionFailure()
             << hi.name << " is not above " << lo.name << " by " << margin
             << " at x=" << hi.xs[i] << ": " << render(hi) << " vs "
             << render(lo);
    }
  }
  return ::testing::AssertionSuccess();
}

/// |a − b| ≤ tol at every shared x ("combined ≈ push").
inline ::testing::AssertionResult within(const Curve& a, const Curve& b,
                                         double tol) {
  for (std::size_t i = 0; i < a.ys.size() && i < b.ys.size(); ++i) {
    if (std::abs(a.ys[i] - b.ys[i]) > tol) {
      return ::testing::AssertionFailure()
             << a.name << " and " << b.name << " differ by more than " << tol
             << " at x=" << a.xs[i] << ": " << render(a) << " vs "
             << render(b);
    }
  }
  return ::testing::AssertionSuccess();
}

/// Monotone in `direction` (+1 rising, −1 falling) within `slack`: each
/// step may move against the trend by at most `slack` (seed noise), and the
/// last point must actually sit past the first in the trend direction.
inline ::testing::AssertionResult monotone(const Curve& c, int direction,
                                           double slack) {
  for (std::size_t i = 1; i < c.ys.size(); ++i) {
    const double step = (c.ys[i] - c.ys[i - 1]) * direction;
    if (step < -slack) {
      return ::testing::AssertionFailure()
             << c.name << " is not "
             << (direction > 0 ? "rising" : "falling") << " (slack " << slack
             << ") at step x=" << c.xs[i] << ": " << render(c);
    }
  }
  if (!c.ys.empty() &&
      (c.ys.back() - c.ys.front()) * direction <= 0.0) {
    return ::testing::AssertionFailure()
           << c.name << " shows no net "
           << (direction > 0 ? "rise" : "fall") << " end to end: "
           << render(c);
  }
  return ::testing::AssertionSuccess();
}

/// max − min ≤ band (absolute plateau: "subscriber pull is flat in β").
inline ::testing::AssertionResult plateau(const Curve& c, double band) {
  double lo = c.ys.front(), hi = c.ys.front();
  for (double y : c.ys) {
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  if (hi - lo > band) {
    return ::testing::AssertionFailure()
           << c.name << " spreads " << (hi - lo) << " > band " << band << ": "
           << render(c);
  }
  return ::testing::AssertionSuccess();
}

/// max ≤ factor × min (relative plateau, for count-valued curves whose
/// absolute level depends on scale: "push overhead is ~flat in ε").
inline ::testing::AssertionResult flat_within_factor(const Curve& c,
                                                     double factor) {
  double lo = c.ys.front(), hi = c.ys.front();
  for (double y : c.ys) {
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  if (lo <= 0.0 || hi > factor * lo) {
    return ::testing::AssertionFailure()
           << c.name << " varies by more than " << factor << "x: " << render(c);
  }
  return ::testing::AssertionSuccess();
}

/// The hi−lo gap at the last x exceeds the gap at the first x by at least
/// `by` ("the recovery gap over the baseline widens with N").
inline ::testing::AssertionResult gap_widens(const Curve& hi, const Curve& lo,
                                             double by) {
  const double first = hi.ys.front() - lo.ys.front();
  const double last = hi.ys.back() - lo.ys.back();
  if (last < first + by) {
    return ::testing::AssertionFailure()
           << "gap " << hi.name << " - " << lo.name << " does not widen by "
           << by << " (first " << first << ", last " << last << "): "
           << render(hi) << " vs " << render(lo);
  }
  return ::testing::AssertionSuccess();
}

/// value ≤ bound × reference (overhead-ratio claims: "pull costs below
/// half of push at low load").
inline ::testing::AssertionResult ratio_below(double value, double reference,
                                              double bound) {
  if (reference <= 0.0 || value > bound * reference) {
    return ::testing::AssertionFailure()
           << "ratio " << value << " / " << reference << " = "
           << (reference > 0.0 ? value / reference : 0.0)
           << " is not below " << bound;
  }
  return ::testing::AssertionSuccess();
}

/// Ties a predicate result to the figure and EXPERIMENTS.md claim it
/// enforces, so a failure names the regressed figure directly.
#define EXPECT_SHAPE(figure, claim, result) \
  EXPECT_TRUE(result) << "\n" << (figure) << " — " << (claim)

/// Reduced-scale knobs for shape runs: small N and short windows keep one
/// scenario around a second of wall time while preserving the figure's
/// qualitative shape. N sweeps (Fig. 6 / 9a) pass nodes through the
/// builder instead, because β scales with N there.
struct ShapeScale {
  std::uint32_t nodes = 32;
  double warmup_seconds = 1.0;
};

inline ScenarioConfig at_scale(ScenarioConfig cfg, const ShapeScale& s = {}) {
  cfg.nodes = s.nodes;
  cfg.warmup = Duration::seconds(s.warmup_seconds);
  return cfg;
}

/// Runs configs on the parallel sweep runner without progress chatter.
inline std::vector<LabeledResult> run_shapes(
    std::vector<LabeledConfig> configs) {
  return run_sweep(std::move(configs), /*max_parallel=*/0, /*verbose=*/false);
}

/// Prints the measured points (calibration aid: failing tolerances are
/// retuned from this output, not guessed).
inline void log_curves(const std::vector<Curve>& curves) {
  for (const Curve& c : curves) {
    std::printf("  %s\n", render(c).c_str());
  }
}

}  // namespace epicast::conformance
