// Conformance tier — structural-shape regressions for the scale overlay
// generators (net/overlays). The scale figure family (BENCH_scale.json)
// is only meaningful if the generators actually produce the structures
// they claim, so the witnesses asserted here are the ones the bench's
// interpretation leans on:
//
//   * Barabási–Albert degrees are heavy-tailed — the CCDF log-log slope
//     sits in the preferential-attachment band (γ ≈ 3 ⇒ slope ≈ -2);
//   * Watts–Strogatz keeps lattice-like clustering, far above a
//     same-degree random-regular graph (the small-world signature);
//   * every family yields a connected overlay at the bench's degree
//     across several seeds — delivery-rate denominators stay meaningful.
#include <gtest/gtest.h>

#include "epicast/common/rng.hpp"
#include "epicast/net/overlays.hpp"

namespace {

using namespace epicast;

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 20040301, 99};

TEST(Overlays, BarabasiAlbertDegreesAreHeavyTailed) {
  for (std::uint64_t seed : kSeeds) {
    Rng rng(seed);
    const Topology t = barabasi_albert(4000, 2, rng);
    const double slope = degree_ccdf_slope(t);
    // Finite-size BA runs a little shallower or steeper than the ideal
    // -(γ-1) = -2; anything in this band is unmistakably heavy-tailed,
    // while a regular or Poisson degree graph falls far outside it.
    EXPECT_LT(slope, -1.2) << "seed " << seed;
    EXPECT_GT(slope, -3.5) << "seed " << seed;
  }
}

TEST(Overlays, WattsStrogatzClustersAboveRandomRegular) {
  for (std::uint64_t seed : kSeeds) {
    Rng ws_rng(seed);
    Rng rr_rng(seed);
    const Topology ws = watts_strogatz(2000, 8, 0.1, ws_rng);
    const Topology rr = random_regular(2000, 8, rr_rng);
    const double c_ws = clustering_coefficient(ws);
    const double c_rr = clustering_coefficient(rr);
    // Ring lattice with k = 8 clusters at 3(k-2)/(4(k-1)) ≈ 0.64; 10%
    // rewiring erodes it to ≈ 0.64·(1-p)³ ≈ 0.47. A random regular graph
    // clusters at ≈ d/N ≈ 0.004. A 10× margin keeps the assertion far
    // from seed noise while catching any lattice/rewire regression.
    EXPECT_GT(c_ws, 10.0 * c_rr) << "seed " << seed;
    EXPECT_GT(c_ws, 0.2) << "seed " << seed;
  }
}

TEST(Overlays, EveryFamilyConnectedAtBenchDegree) {
  const OverlayKind families[] = {
      OverlayKind::Tree, OverlayKind::BarabasiAlbert,
      OverlayKind::WattsStrogatz, OverlayKind::RandomRegular,
      OverlayKind::GeoCluster};
  for (OverlayKind kind : families) {
    for (std::uint64_t seed : kSeeds) {
      Rng rng(seed);
      // Degree 4 is what figures::scale runs; 1000 nodes keeps the five
      // seeds cheap while leaving room for fragmentation bugs to show.
      const Topology t = make_overlay(kind, 1000, 4, 0.1, rng);
      EXPECT_TRUE(t.connected())
          << to_string(kind) << " seed " << seed << " is disconnected";
      EXPECT_EQ(t.node_count(), 1000u) << to_string(kind);
    }
  }
}

/// The generators must be deterministic in (parameters, rng state): the
/// scale benches and their committed baselines depend on it.
TEST(Overlays, GenerationIsDeterministic) {
  for (OverlayKind kind :
       {OverlayKind::BarabasiAlbert, OverlayKind::WattsStrogatz,
        OverlayKind::RandomRegular, OverlayKind::GeoCluster}) {
    Rng a(7);
    Rng b(7);
    const Topology ta = make_overlay(kind, 500, 4, 0.1, a);
    const Topology tb = make_overlay(kind, 500, 4, 0.1, b);
    ASSERT_EQ(ta.node_count(), tb.node_count());
    for (std::uint32_t n = 0; n < ta.node_count(); ++n) {
      const auto na = ta.neighbors(NodeId{n});
      const auto nb = tb.neighbors(NodeId{n});
      ASSERT_EQ(std::vector<NodeId>(na.begin(), na.end()),
                std::vector<NodeId>(nb.begin(), nb.end()))
          << to_string(kind) << " node " << n;
    }
  }
}

}  // namespace
