// Conformance tier — delivery-shape regressions for Fig. 3(a), Fig. 4, and
// Fig. 6, at reduced scale (N≈25–40, short windows, fixed seeds).
//
// Each spec struct states the scenario scale and every tolerance used by
// its assertions; the claims are the ones EXPERIMENTS.md records (see its
// "Enforced by tests/conformance" annotations). Scenarios are built by the
// same figures:: builders the benches use, so a shape asserted here is
// measured on the bench's scenario at a smaller scale.
#include "shape_spec.hpp"

namespace {

using namespace epicast;
using namespace epicast::conformance;

/// Every conformance scenario must have run with live oracles — this is
/// the "all six oracles active in every ctest scenario run" guarantee.
void expect_oracles_ran(const std::vector<LabeledResult>& results) {
  for (const auto& r : results) {
    EXPECT_GT(r.result.oracle_checks, 0u)
        << "oracles were not active in scenario " << r.label;
  }
}

// -- Fig. 3(a): delivery on lossy links ---------------------------------------

struct Fig3aSpec {
  std::vector<double> epsilons{0.05, 0.10};
  double measure_seconds = 2.0;
  ShapeScale scale;
  /// combined pull ≈ push: their gap never exceeds this.
  double near_equal = 0.10;
  /// strict-ordering margin: the higher curve clears the lower by this.
  double order_margin = 0.02;
  /// ε-monotonicity: per-step counter-movement allowed (seed noise).
  double fall_slack = 0.01;
};

TEST(Fig3a, OrderingsAndErrorMonotonicity) {
  const Fig3aSpec spec;
  const std::vector<Algorithm> algos = {
      Algorithm::NoRecovery, Algorithm::SubscriberPull,
      Algorithm::CombinedPull, Algorithm::Push};

  std::vector<LabeledConfig> configs;
  for (double eps : spec.epsilons) {
    for (Algorithm a : algos) {
      configs.push_back(
          {std::string(to_string(a)) + " eps=" + std::to_string(eps),
           at_scale(figures::fig3a(a, eps, spec.measure_seconds),
                    spec.scale)});
    }
  }
  const auto results = run_shapes(std::move(configs));
  expect_oracles_ran(results);

  std::vector<Curve> curves;
  for (std::size_t s = 0; s < algos.size(); ++s) {
    Curve c{to_string(algos[s]), {}, {}};
    for (std::size_t e = 0; e < spec.epsilons.size(); ++e) {
      c.xs.push_back(spec.epsilons[e]);
      c.ys.push_back(results[e * algos.size() + s].result.delivery_rate);
    }
    curves.push_back(std::move(c));
  }
  log_curves(curves);
  const Curve& norec = curves[0];
  const Curve& subscriber = curves[1];
  const Curve& combined = curves[2];
  const Curve& push = curves[3];

  EXPECT_SHAPE("Fig. 3(a)", "combined pull ~= push at every eps",
               within(combined, push, spec.near_equal));
  EXPECT_SHAPE("Fig. 3(a)", "push above subscriber-based pull",
               ordered_above(push, subscriber, spec.order_margin));
  EXPECT_SHAPE("Fig. 3(a)", "combined pull above subscriber-based pull",
               ordered_above(combined, subscriber, spec.order_margin));
  EXPECT_SHAPE("Fig. 3(a)", "subscriber-based pull above no-recovery",
               ordered_above(subscriber, norec, spec.order_margin));
  EXPECT_SHAPE("Fig. 3(a)", "no-recovery delivery falls with eps",
               monotone(norec, -1, spec.fall_slack));
  EXPECT_SHAPE("Fig. 3(a)", "push delivery falls with eps",
               monotone(push, -1, spec.fall_slack));
  EXPECT_SHAPE("Fig. 3(a)", "combined-pull delivery falls with eps",
               monotone(combined, -1, spec.fall_slack));
}

// -- Fig. 4: buffer size and gossip interval ----------------------------------

struct Fig4Spec {
  std::vector<double> betas{250, 1000, 4000};
  std::vector<double> intervals{0.010, 0.055};
  double measure_seconds = 2.0;
  ShapeScale scale;
  /// β-monotonicity: per-step counter-movement allowed for push's rise.
  double rise_slack = 0.015;
  /// subscriber pull is resource-insensitive: its spread over β stays in
  /// this band.
  double subscriber_band = 0.06;
  /// T-sensitivity: push must lose at least this much delivery from the
  /// shortest to the longest interval…
  double interval_drop_min = 0.03;
  /// …and lose at least as much as combined pull does (steepest in T),
  /// with this much tolerance.
  double steepness_tol = 0.02;
};

TEST(Fig4, BufferAndIntervalMonotonicity) {
  const Fig4Spec spec;

  std::vector<LabeledConfig> configs;
  for (double beta : spec.betas) {
    for (Algorithm a : {Algorithm::Push, Algorithm::SubscriberPull}) {
      configs.push_back(
          {std::string(to_string(a)) + " beta=" + std::to_string(int(beta)),
           at_scale(figures::fig4_buffer(a, static_cast<std::size_t>(beta),
                                         spec.measure_seconds),
                    spec.scale)});
    }
  }
  for (double t : spec.intervals) {
    for (Algorithm a : {Algorithm::Push, Algorithm::CombinedPull}) {
      configs.push_back(
          {std::string(to_string(a)) + " T=" + std::to_string(t),
           at_scale(figures::fig4_interval(a, t, spec.measure_seconds),
                    spec.scale)});
    }
  }
  const auto results = run_shapes(std::move(configs));
  expect_oracles_ran(results);

  Curve push_beta{"push(beta)", {}, {}};
  Curve subscriber_beta{"subscriber-pull(beta)", {}, {}};
  for (std::size_t b = 0; b < spec.betas.size(); ++b) {
    push_beta.xs.push_back(spec.betas[b]);
    push_beta.ys.push_back(results[b * 2].result.delivery_rate);
    subscriber_beta.xs.push_back(spec.betas[b]);
    subscriber_beta.ys.push_back(results[b * 2 + 1].result.delivery_rate);
  }
  const std::size_t off = spec.betas.size() * 2;
  Curve push_t{"push(T)", {}, {}};
  Curve combined_t{"combined-pull(T)", {}, {}};
  for (std::size_t i = 0; i < spec.intervals.size(); ++i) {
    push_t.xs.push_back(spec.intervals[i]);
    push_t.ys.push_back(results[off + i * 2].result.delivery_rate);
    combined_t.xs.push_back(spec.intervals[i]);
    combined_t.ys.push_back(results[off + i * 2 + 1].result.delivery_rate);
  }
  log_curves({push_beta, subscriber_beta, push_t, combined_t});

  EXPECT_SHAPE("Fig. 4 (top)", "push delivery rises with beta",
               monotone(push_beta, +1, spec.rise_slack));
  EXPECT_SHAPE("Fig. 4 (top)",
               "subscriber-based pull plateaus regardless of beta",
               plateau(subscriber_beta, spec.subscriber_band));
  EXPECT_SHAPE("Fig. 4 (bottom)", "push delivery falls as T grows",
               monotone(push_t, -1, 0.0));
  const double push_drop = push_t.ys.front() - push_t.ys.back();
  const double combined_drop = combined_t.ys.front() - combined_t.ys.back();
  EXPECT_GE(push_drop, spec.interval_drop_min)
      << "Fig. 4 (bottom) — push must be clearly T-sensitive; "
      << render(push_t);
  EXPECT_GE(push_drop, combined_drop - spec.steepness_tol)
      << "Fig. 4 (bottom) — push is the steepest in T; " << render(push_t)
      << " vs " << render(combined_t);
}

// -- Fig. 6: scalability in N -------------------------------------------------

struct Fig6Spec {
  std::vector<std::uint32_t> sizes{20, 60};
  double measure_seconds = 2.0;
  double warmup_seconds = 1.0;
  /// combined pull clears the no-recovery baseline by this at every N.
  double order_margin = 0.05;
  /// the recovery gap over the baseline grows with N by at least this.
  double widen_min = 0.01;
  /// epidemic scalability: combined pull stays within this band across N.
  double combined_band = 0.08;
};

TEST(Fig6, ScalabilityTrend) {
  const Fig6Spec spec;

  std::vector<LabeledConfig> configs;
  for (std::uint32_t n : spec.sizes) {
    for (Algorithm a : {Algorithm::NoRecovery, Algorithm::CombinedPull}) {
      // N goes through the builder: β scales with N for ~4 s persistence.
      ScenarioConfig cfg = figures::fig6(a, n, spec.measure_seconds);
      cfg.warmup = Duration::seconds(spec.warmup_seconds);
      configs.push_back(
          {std::string(to_string(a)) + " N=" + std::to_string(n), cfg});
    }
  }
  const auto results = run_shapes(std::move(configs));
  expect_oracles_ran(results);

  Curve norec{"no-recovery(N)", {}, {}};
  Curve combined{"combined-pull(N)", {}, {}};
  for (std::size_t i = 0; i < spec.sizes.size(); ++i) {
    norec.xs.push_back(spec.sizes[i]);
    norec.ys.push_back(results[i * 2].result.delivery_rate);
    combined.xs.push_back(spec.sizes[i]);
    combined.ys.push_back(results[i * 2 + 1].result.delivery_rate);
  }
  log_curves({norec, combined});

  EXPECT_SHAPE("Fig. 6", "combined pull above the baseline at every N",
               ordered_above(combined, norec, spec.order_margin));
  EXPECT_SHAPE("Fig. 6", "the recovery gap over the baseline widens with N",
               gap_widens(combined, norec, spec.widen_min));
  EXPECT_SHAPE("Fig. 6", "combined pull is roughly flat in N",
               plateau(combined, spec.combined_band));
}

}  // namespace
