// Unit tests for SimTime/Duration: exact integer arithmetic, conversions,
// rounding, ordering, and rendering.
#include "epicast/sim/time.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::micros(1).count_nanos(), 1000);
  EXPECT_EQ(Duration::millis(1).count_nanos(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1.0).count_nanos(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(30), Duration::seconds(0.03));
}

TEST(Duration, SecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::seconds(1e-9).count_nanos(), 1);
  EXPECT_EQ(Duration::seconds(1.4e-9).count_nanos(), 1);
  EXPECT_EQ(Duration::seconds(1.6e-9).count_nanos(), 2);
  EXPECT_EQ(Duration::seconds(-1.6e-9).count_nanos(), -2);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(5);
  const Duration b = Duration::millis(3);
  EXPECT_EQ((a + b).count_nanos(), 8'000'000);
  EXPECT_EQ((a - b).count_nanos(), 2'000'000);
  EXPECT_EQ((b - a).count_nanos(), -2'000'000);
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_EQ((a * 3).count_nanos(), 15'000'000);
  EXPECT_EQ((a * 0.5).count_nanos(), 2'500'000);
  Duration c = a;
  c += b;
  EXPECT_EQ(c, Duration::millis(8));
}

TEST(Duration, ComparisonsAndZero) {
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GE(Duration::seconds(0.002), Duration::millis(2));
  EXPECT_FALSE(Duration::zero().is_negative());
}

TEST(Duration, ToSecondsRoundTrips) {
  const Duration d = Duration::seconds(12.345678);
  EXPECT_NEAR(d.to_seconds(), 12.345678, 1e-12);
}

TEST(SimTime, StartsAtZero) {
  EXPECT_EQ(SimTime{}, SimTime::zero());
  EXPECT_EQ(SimTime::zero().nanos_since_start(), 0);
}

TEST(SimTime, OffsetAndDifference) {
  const SimTime t = SimTime::zero() + Duration::millis(100);
  EXPECT_EQ(t.nanos_since_start(), 100'000'000);
  const SimTime u = t + Duration::millis(50);
  EXPECT_EQ(u - t, Duration::millis(50));
  EXPECT_EQ(t - u, Duration::millis(-50));
  EXPECT_LT(t, u);
}

TEST(SimTime, SecondsFactory) {
  EXPECT_EQ(SimTime::seconds(1.5).nanos_since_start(), 1'500'000'000);
}

TEST(TimeToString, RendersSeconds) {
  EXPECT_EQ(to_string(Duration::millis(1500)), "1.500000s");
  EXPECT_EQ(to_string(SimTime::seconds(0.25)), "0.250000s");
}

}  // namespace
}  // namespace epicast
