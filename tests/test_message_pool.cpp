// Unit tests for the per-scenario slab/freelist allocator: block reuse and
// recycling, pass-through mode, oversize fall-through, and the lifetime
// guarantee that pooled objects may outlive the MessagePool handle.
#include "epicast/common/message_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

namespace epicast {
namespace {

TEST(MessagePool, FreedBlockIsReused) {
  MessagePool pool(MessagePool::Mode::Pooling);
  void* a = pool.allocate(48);
  pool.deallocate(a, 48);
  void* b = pool.allocate(40);  // same 64-byte class as 48
  EXPECT_EQ(a, b);
  pool.deallocate(b, 40);

  const MessagePool::Stats& s = pool.stats();
  EXPECT_EQ(s.allocations, 2u);
  EXPECT_EQ(s.deallocations, 2u);
  EXPECT_EQ(s.reuses, 1u);
  EXPECT_EQ(s.oversize, 0u);
  EXPECT_EQ(s.live(), 0u);
  EXPECT_EQ(s.slab_bytes, MessagePool::kSlabBytes);
}

TEST(MessagePool, DistinctClassesDoNotShareFreelists) {
  MessagePool pool(MessagePool::Mode::Pooling);
  void* small = pool.allocate(32);
  pool.deallocate(small, 32);
  void* large = pool.allocate(200);  // different class — must not reuse
  EXPECT_NE(small, large);
  EXPECT_EQ(pool.stats().reuses, 0u);
  pool.deallocate(large, 200);
}

TEST(MessagePool, FreelistIsLifo) {
  MessagePool pool(MessagePool::Mode::Pooling);
  void* a = pool.allocate(64);
  void* b = pool.allocate(64);
  pool.deallocate(a, 64);
  pool.deallocate(b, 64);
  EXPECT_EQ(pool.allocate(64), b);  // last freed, first reused
  EXPECT_EQ(pool.allocate(64), a);
}

TEST(MessagePool, OversizeFallsThroughToNew) {
  MessagePool pool(MessagePool::Mode::Pooling);
  const std::size_t big =
      MessagePool::kGranularity * MessagePool::kClasses + 1;
  void* p = pool.allocate(big);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, big);  // must be writable storage
  pool.deallocate(p, big);
  EXPECT_EQ(pool.stats().oversize, 1u);
  EXPECT_EQ(pool.stats().reuses, 0u);
  EXPECT_EQ(pool.stats().slab_bytes, 0u);  // no slab for oversize traffic
}

TEST(MessagePool, PassThroughNeverRecycles) {
  MessagePool pool(MessagePool::Mode::PassThrough);
  void* a = pool.allocate(48);
  pool.deallocate(a, 48);
  void* b = pool.allocate(48);
  pool.deallocate(b, 48);
  EXPECT_EQ(pool.stats().allocations, 2u);
  EXPECT_EQ(pool.stats().reuses, 0u);
  EXPECT_EQ(pool.stats().slab_bytes, 0u);
}

TEST(MessagePool, SlabGrowsOnDemand) {
  MessagePool pool(MessagePool::Mode::Pooling);
  // Exhaust the first slab with 1024-byte blocks (largest class).
  const std::size_t block = MessagePool::kGranularity * MessagePool::kClasses;
  const std::size_t per_slab = MessagePool::kSlabBytes / block;
  std::vector<void*> blocks;
  for (std::size_t i = 0; i < per_slab + 1; ++i)
    blocks.push_back(pool.allocate(block));
  EXPECT_EQ(pool.stats().slab_bytes, 2 * MessagePool::kSlabBytes);
  for (void* p : blocks) pool.deallocate(p, block);
  // Everything now recycles out of the freelist: no further slab growth.
  for (std::size_t i = 0; i < per_slab + 1; ++i)
    blocks[i] = pool.allocate(block);
  EXPECT_EQ(pool.stats().slab_bytes, 2 * MessagePool::kSlabBytes);
  EXPECT_EQ(pool.stats().reuses, per_slab + 1);
  for (void* p : blocks) pool.deallocate(p, block);
}

TEST(MessagePool, MakePooledConstructsAndDestroys) {
  struct Probe {
    explicit Probe(int* flag) : flag_(flag) { *flag_ = 1; }
    ~Probe() { *flag_ = 2; }
    int* flag_;
    char pad[40] = {};
  };
  int flag = 0;
  MessagePool pool(MessagePool::Mode::Pooling);
  {
    std::shared_ptr<Probe> p = make_pooled<Probe>(pool, &flag);
    EXPECT_EQ(flag, 1);
    EXPECT_EQ(pool.stats().live(), 1u);
  }
  EXPECT_EQ(flag, 2);
  EXPECT_EQ(pool.stats().live(), 0u);
  EXPECT_EQ(pool.stats().allocations, 1u);  // object + control block fused
}

TEST(MessagePool, PooledObjectOutlivesPoolHandle) {
  // The allocator keeps the pool state alive via shared_ptr, so destroying
  // the MessagePool handle while objects are outstanding is safe.
  std::shared_ptr<std::vector<int>> survivor;
  {
    MessagePool pool(MessagePool::Mode::Pooling);
    survivor = make_pooled<std::vector<int>>(pool, 100, 7);
  }
  ASSERT_EQ(survivor->size(), 100u);
  EXPECT_EQ((*survivor)[99], 7);
  survivor.reset();  // releases into the (still-alive) pool state
}

TEST(MessagePool, ManyLiveObjectsStayIntact) {
  MessagePool pool(MessagePool::Mode::Pooling);
  std::vector<std::shared_ptr<int>> ints;
  for (int i = 0; i < 10000; ++i) ints.push_back(make_pooled<int>(pool, i));
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(*ints[i], i);
  ints.clear();
  EXPECT_EQ(pool.stats().live(), 0u);
}

TEST(MessagePool, DefaultModeIsEnvAndSanitizerAware) {
#if defined(EPICAST_ASAN)
  const MessagePool::Mode expected_plain = MessagePool::Mode::PassThrough;
#else
  const MessagePool::Mode expected_plain = MessagePool::Mode::Pooling;
#endif
  const char* v = std::getenv("EPICAST_POOL");
  MessagePool::Mode expected = expected_plain;
  if (v && (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0))
    expected = MessagePool::Mode::PassThrough;
  if (v && (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0))
    expected = MessagePool::Mode::Pooling;
  EXPECT_EQ(MessagePool::default_mode(), expected);
  EXPECT_EQ(MessagePool().mode(), MessagePool::default_mode());
}

}  // namespace
}  // namespace epicast
