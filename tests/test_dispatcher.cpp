// Tests for the best-effort dispatcher: subscription forwarding with
// duplicate suppression, reverse-path event routing, duplicate events,
// unsubscription pruning, and route recording.
#include "epicast/pubsub/dispatcher.hpp"

#include <gtest/gtest.h>

#include "epicast/metrics/message_stats.hpp"
#include "epicast/pubsub/network.hpp"

namespace epicast {
namespace {

/// Records every route an event carried when it was delivered.
class RouteProbe final : public RecoveryProtocol {
 public:
  void on_event(const EventPtr& event, const EventContext& ctx) override {
    last_event = event;
    last_ctx = ctx;
  }
  void on_gossip(NodeId, const MessagePtr&) override {}
  const char* name() const override { return "probe"; }

  EventPtr last_event;
  EventContext last_ctx;
};

class DispatcherHarness : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 6;

  // Line topology: 0 - 1 - 2 - 3 - 4 - 5.
  DispatcherHarness()
      : sim_(1),
        topo_(Topology::line(kNodes)),
        transport_(sim_, topo_, lossless()),
        net_(sim_, transport_, DispatcherConfig{}) {
    transport_.add_observer(stats_);
  }

  static TransportConfig lossless() {
    TransportConfig c;
    c.link.loss_rate = 0.0;
    c.direct_loss_rate = 0.0;
    return c;
  }

  void settle() { sim_.run_until(sim_.now() + Duration::seconds(0.5)); }

  Simulator sim_;
  Topology topo_;
  Transport transport_;
  MessageStats stats_{kNodes};
  PubSubNetwork net_;
};

TEST_F(DispatcherHarness, SubscriptionFloodLaysReversePaths) {
  net_.node(NodeId{4}).subscribe(Pattern{1});
  settle();
  // Every other node's next hop for pattern 1 points towards node 4.
  EXPECT_TRUE(net_.node(NodeId{0}).table().has_route(Pattern{1}, NodeId{1}));
  EXPECT_TRUE(net_.node(NodeId{3}).table().has_route(Pattern{1}, NodeId{4}));
  EXPECT_TRUE(net_.node(NodeId{5}).table().has_route(Pattern{1}, NodeId{4}));
  EXPECT_TRUE(net_.node(NodeId{4}).table().has_local(Pattern{1}));
  EXPECT_TRUE(net_.routes_consistent());
}

TEST_F(DispatcherHarness, SecondSubscriberReusesAndExtendsRoutes) {
  net_.node(NodeId{4}).subscribe(Pattern{1});
  settle();
  const auto before = stats_.snapshot().sends_of(MessageClass::Control);
  net_.node(NodeId{1}).subscribe(Pattern{1});
  settle();
  // Node 2's events must now be able to reach both 1 and 4.
  EXPECT_TRUE(net_.node(NodeId{2}).table().has_route(Pattern{1}, NodeId{1}));
  EXPECT_TRUE(net_.node(NodeId{2}).table().has_route(Pattern{1}, NodeId{3}));
  EXPECT_TRUE(net_.routes_consistent());
  // Duplicate suppression: the second flood sends far fewer messages than a
  // full flood of the 5-link line (which took 2·5 - edge effects).
  const auto second_flood =
      stats_.snapshot().sends_of(MessageClass::Control) - before;
  EXPECT_LE(second_flood, 5u);
}

TEST_F(DispatcherHarness, EventsFollowRoutesAndDeliver) {
  net_.node(NodeId{0}).subscribe(Pattern{1});
  net_.node(NodeId{5}).subscribe(Pattern{2});
  settle();

  std::vector<std::pair<NodeId, EventId>> deliveries;
  net_.set_delivery_listener(
      [&](NodeId node, const EventPtr& e, bool) {
        deliveries.emplace_back(node, e->id());
      });

  const EventPtr e =
      net_.node(NodeId{3}).publish({Pattern{1}, Pattern{2}});
  settle();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].second, e->id());
  // Both subscribers got it; nobody else did.
  std::vector<NodeId> who{deliveries[0].first, deliveries[1].first};
  std::sort(who.begin(), who.end());
  EXPECT_EQ(who, (std::vector<NodeId>{NodeId{0}, NodeId{5}}));
}

TEST_F(DispatcherHarness, NoSubscriberMeansNoTraffic) {
  settle();
  net_.node(NodeId{2}).publish({Pattern{9}});
  settle();
  EXPECT_EQ(stats_.snapshot().sends_of(MessageClass::Event), 0u);
}

TEST_F(DispatcherHarness, PublisherSelfDeliveryCountsOnce) {
  net_.node(NodeId{2}).subscribe(Pattern{1});
  settle();
  int deliveries = 0;
  net_.set_delivery_listener([&](NodeId, const EventPtr&, bool) {
    ++deliveries;
  });
  net_.node(NodeId{2}).publish({Pattern{1}});
  settle();
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(net_.node(NodeId{2}).stats().delivered, 1u);
}

TEST_F(DispatcherHarness, PerSourcePerPatternSequencesIncrement) {
  net_.node(NodeId{5}).subscribe(Pattern{1});
  net_.node(NodeId{5}).subscribe(Pattern{2});
  settle();
  auto& pub = net_.node(NodeId{0});
  const EventPtr e1 = pub.publish({Pattern{1}});
  const EventPtr e2 = pub.publish({Pattern{1}, Pattern{2}});
  const EventPtr e3 = pub.publish({Pattern{2}});
  EXPECT_EQ(e1->seq_for(Pattern{1}), SeqNo{1});
  EXPECT_EQ(e2->seq_for(Pattern{1}), SeqNo{2});
  EXPECT_EQ(e2->seq_for(Pattern{2}), SeqNo{1});
  EXPECT_EQ(e3->seq_for(Pattern{2}), SeqNo{2});
  EXPECT_EQ(e1->id().source_seq + 1, e2->id().source_seq);
}

TEST_F(DispatcherHarness, UnsubscribePrunesRoutes) {
  net_.node(NodeId{4}).subscribe(Pattern{1});
  settle();
  net_.node(NodeId{4}).unsubscribe(Pattern{1});
  settle();
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    EXPECT_FALSE(net_.node(NodeId{i}).table().knows(Pattern{1})) << i;
  }
  EXPECT_TRUE(net_.routes_consistent());
}

TEST_F(DispatcherHarness, UnsubscribeKeepsRoutesForRemainingSubscriber) {
  net_.node(NodeId{0}).subscribe(Pattern{1});
  net_.node(NodeId{5}).subscribe(Pattern{1});
  settle();
  net_.node(NodeId{0}).unsubscribe(Pattern{1});
  settle();
  EXPECT_TRUE(net_.routes_consistent());
  EXPECT_TRUE(net_.node(NodeId{2}).table().has_route(Pattern{1}, NodeId{3}));
  EXPECT_FALSE(net_.node(NodeId{2}).table().has_route(Pattern{1}, NodeId{1}));
  // Events still reach node 5.
  int deliveries = 0;
  net_.set_delivery_listener([&](NodeId node, const EventPtr&, bool) {
    EXPECT_EQ(node, NodeId{5});
    ++deliveries;
  });
  net_.node(NodeId{2}).publish({Pattern{1}});
  settle();
  EXPECT_EQ(deliveries, 1);
}

TEST_F(DispatcherHarness, ResubscribeAfterUnsubscribeWorks) {
  net_.node(NodeId{4}).subscribe(Pattern{1});
  settle();
  net_.node(NodeId{4}).unsubscribe(Pattern{1});
  settle();
  net_.node(NodeId{4}).subscribe(Pattern{1});
  settle();
  EXPECT_TRUE(net_.routes_consistent());
  EXPECT_TRUE(net_.node(NodeId{0}).table().has_route(Pattern{1}, NodeId{1}));
}

TEST(DispatcherRoutes, RecordedRouteListsTraversedDispatchers) {
  Simulator sim(1);
  Topology topo = Topology::line(4);
  TransportConfig tc;
  Transport transport(sim, topo, tc);
  DispatcherConfig dc;
  dc.record_routes = true;
  PubSubNetwork net(sim, transport, dc);

  auto probe = std::make_unique<RouteProbe>();
  RouteProbe* probe_ptr = probe.get();
  net.node(NodeId{3}).set_recovery(std::move(probe));

  net.node(NodeId{3}).subscribe(Pattern{1});
  sim.run_until(SimTime::seconds(0.5));
  net.node(NodeId{0}).publish({Pattern{1}});
  sim.run_until(SimTime::seconds(1.0));

  ASSERT_NE(probe_ptr->last_event, nullptr);
  // Publisher first, each forwarder appended: 0 → 1 → 2 (receiver 3 not
  // included).
  EXPECT_EQ(probe_ptr->last_ctx.route,
            (std::vector<NodeId>{NodeId{0}, NodeId{1}, NodeId{2}}));
  EXPECT_EQ(probe_ptr->last_ctx.from, NodeId{2});
}

TEST(DispatcherDuplicates, SecondCopyIsSuppressed) {
  Simulator sim(1);
  Topology topo = Topology::line(2);
  TransportConfig tc;
  Transport transport(sim, topo, tc);
  PubSubNetwork net(sim, transport, DispatcherConfig{});
  net.node(NodeId{1}).subscribe(Pattern{1});
  sim.run_until(SimTime::seconds(0.5));

  int deliveries = 0;
  net.set_delivery_listener([&](NodeId, const EventPtr&, bool) {
    ++deliveries;
  });
  const EventPtr e = net.node(NodeId{0}).publish({Pattern{1}});
  sim.run_until(SimTime::seconds(1.0));
  // Replay the same event message out of band via accept_recovered: no
  // second delivery.
  EXPECT_FALSE(net.node(NodeId{1}).accept_recovered(e));
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(net.node(NodeId{1}).stats().duplicates, 1u);
}

TEST(DispatcherRecovered, AcceptRecoveredDeliversOnce) {
  Simulator sim(1);
  Topology topo = Topology::line(2);
  TransportConfig tc;
  Transport transport(sim, topo, tc);
  PubSubNetwork net(sim, transport, DispatcherConfig{});
  net.node(NodeId{1}).subscribe(Pattern{1});
  sim.run_until(SimTime::seconds(0.5));

  std::vector<bool> recovered_flags;
  net.set_delivery_listener([&](NodeId, const EventPtr&, bool recovered) {
    recovered_flags.push_back(recovered);
  });
  // Hand-craft an event that never travelled the overlay.
  auto e = std::make_shared<EventData>(
      EventId{NodeId{0}, 77},
      std::vector<PatternSeq>{{Pattern{1}, SeqNo{1}}}, 100, sim.now());
  EXPECT_TRUE(net.node(NodeId{1}).accept_recovered(e));
  ASSERT_EQ(recovered_flags.size(), 1u);
  EXPECT_TRUE(recovered_flags[0]);
  EXPECT_EQ(net.node(NodeId{1}).stats().delivered_recovered, 1u);
}

}  // namespace
}  // namespace epicast
