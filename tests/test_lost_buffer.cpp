// Unit tests for the Lost buffer: bookkeeping of missing events, TTL
// expiry, overflow, and the query surfaces the pull variants rely on.
#include "epicast/gossip/lost_buffer.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

LostEntryInfo entry(std::uint32_t src, std::uint32_t pat, std::uint64_t seq) {
  return LostEntryInfo{NodeId{src}, Pattern{pat}, SeqNo{seq}};
}

TEST(LostBuffer, AddRemoveContains) {
  LostBuffer buf(8, Duration::seconds(5.0));
  EXPECT_TRUE(buf.add(entry(0, 1, 1), SimTime::zero()));
  EXPECT_FALSE(buf.add(entry(0, 1, 1), SimTime::zero()));  // duplicate
  EXPECT_TRUE(buf.contains(entry(0, 1, 1)));
  EXPECT_TRUE(buf.remove(entry(0, 1, 1)));
  EXPECT_FALSE(buf.remove(entry(0, 1, 1)));
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.stats().added, 1u);
  EXPECT_EQ(buf.stats().recovered, 1u);
}

TEST(LostBuffer, ExpireDropsOnlyOldEntries) {
  LostBuffer buf(8, Duration::seconds(1.0));
  buf.add(entry(0, 1, 1), SimTime::seconds(0.0));
  buf.add(entry(0, 1, 2), SimTime::seconds(0.8));
  EXPECT_EQ(buf.expire(SimTime::seconds(1.5)), 1u);
  EXPECT_FALSE(buf.contains(entry(0, 1, 1)));
  EXPECT_TRUE(buf.contains(entry(0, 1, 2)));
  EXPECT_EQ(buf.stats().expired, 1u);
}

TEST(LostBuffer, OverflowEvictsOldest) {
  LostBuffer buf(2, Duration::seconds(5.0));
  buf.add(entry(0, 1, 1), SimTime::zero());
  buf.add(entry(0, 1, 2), SimTime::zero());
  buf.add(entry(0, 1, 3), SimTime::zero());
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_FALSE(buf.contains(entry(0, 1, 1)));
  EXPECT_EQ(buf.stats().overflowed, 1u);
}

TEST(LostBuffer, QueriesFilterAndPreserveAge) {
  LostBuffer buf(16, Duration::seconds(5.0));
  buf.add(entry(0, 1, 1), SimTime::zero());
  buf.add(entry(1, 2, 1), SimTime::zero());
  buf.add(entry(0, 2, 5), SimTime::zero());
  buf.add(entry(1, 1, 9), SimTime::zero());

  EXPECT_EQ(buf.entries_for_pattern(Pattern{1}, 0),
            (std::vector<LostEntryInfo>{entry(0, 1, 1), entry(1, 1, 9)}));
  EXPECT_EQ(buf.entries_for_source(NodeId{1}, 0),
            (std::vector<LostEntryInfo>{entry(1, 2, 1), entry(1, 1, 9)}));
  EXPECT_EQ(buf.entries_for_pattern(Pattern{1}, 1),
            (std::vector<LostEntryInfo>{entry(0, 1, 1)}));  // capped
  EXPECT_EQ(buf.all_entries(0).size(), 4u);
  EXPECT_EQ(buf.patterns_with_losses(),
            (std::vector<Pattern>{Pattern{1}, Pattern{2}}));
  EXPECT_EQ(buf.sources_with_losses(),
            (std::vector<NodeId>{NodeId{0}, NodeId{1}}));
}

TEST(LostBuffer, OldestSourcesOrdersByEntryAgeAndFilters) {
  LostBuffer buf(16, Duration::seconds(5.0));
  buf.add(entry(3, 1, 1), SimTime::seconds(0.1));
  buf.add(entry(1, 1, 1), SimTime::seconds(0.2));
  buf.add(entry(3, 1, 2), SimTime::seconds(0.3));
  buf.add(entry(2, 1, 1), SimTime::seconds(0.4));

  const auto all = buf.oldest_sources(10, [](NodeId) { return true; });
  EXPECT_EQ(all, (std::vector<NodeId>{NodeId{3}, NodeId{1}, NodeId{2}}));

  const auto capped = buf.oldest_sources(2, [](NodeId) { return true; });
  EXPECT_EQ(capped, (std::vector<NodeId>{NodeId{3}, NodeId{1}}));

  const auto filtered =
      buf.oldest_sources(10, [](NodeId n) { return n != NodeId{3}; });
  EXPECT_EQ(filtered, (std::vector<NodeId>{NodeId{1}, NodeId{2}}));
}

TEST(LostBuffer, RemoveThenReaddResetsAge) {
  LostBuffer buf(16, Duration::seconds(1.0));
  buf.add(entry(0, 1, 1), SimTime::seconds(0.0));
  buf.remove(entry(0, 1, 1));
  buf.add(entry(0, 1, 1), SimTime::seconds(0.9));
  EXPECT_EQ(buf.expire(SimTime::seconds(1.5)), 0u);
  EXPECT_TRUE(buf.contains(entry(0, 1, 1)));
}

}  // namespace
}  // namespace epicast
