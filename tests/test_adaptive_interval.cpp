// Unit tests for the adaptive gossip-interval extension (§IV-E suggestion).
#include "epicast/gossip/adaptive_interval.hpp"

#include <gtest/gtest.h>

namespace epicast {
namespace {

TEST(AdaptiveInterval, DisabledAlwaysReturnsBase) {
  AdaptiveIntervalConfig cfg;  // enabled = false
  AdaptiveIntervalController c(cfg, Duration::millis(30));
  EXPECT_EQ(c.next(true), Duration::millis(30));
  EXPECT_EQ(c.next(false), Duration::millis(30));
  EXPECT_FALSE(c.enabled());
}

TEST(AdaptiveInterval, BacksOffWhileIdle) {
  AdaptiveIntervalConfig cfg;
  cfg.enabled = true;
  cfg.min_interval = Duration::millis(10);
  cfg.max_interval = Duration::millis(100);
  cfg.backoff_factor = 2.0;
  AdaptiveIntervalController c(cfg, Duration::millis(30));
  EXPECT_EQ(c.current(), Duration::millis(10));
  EXPECT_EQ(c.next(false), Duration::millis(20));
  EXPECT_EQ(c.next(false), Duration::millis(40));
  EXPECT_EQ(c.next(false), Duration::millis(80));
  EXPECT_EQ(c.next(false), Duration::millis(100));  // capped
  EXPECT_EQ(c.next(false), Duration::millis(100));
}

TEST(AdaptiveInterval, ActivitySnapsBackToMin) {
  AdaptiveIntervalConfig cfg;
  cfg.enabled = true;
  cfg.min_interval = Duration::millis(10);
  cfg.max_interval = Duration::millis(100);
  cfg.backoff_factor = 3.0;
  AdaptiveIntervalController c(cfg, Duration::millis(30));
  (void)c.next(false);
  (void)c.next(false);
  EXPECT_GT(c.current(), Duration::millis(10));
  EXPECT_EQ(c.next(true), Duration::millis(10));
  EXPECT_EQ(c.current(), Duration::millis(10));
}

}  // namespace
}  // namespace epicast
