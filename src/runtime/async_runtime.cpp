#include "epicast/runtime/async_runtime.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <string>
#include <utility>

#include "epicast/common/assert.hpp"
#include "epicast/wire/codec.hpp"

namespace epicast::runtime {
namespace {

// Datagram header in front of every codec frame: identifies the sender (UDP
// source ports say nothing about NodeIds) and the logical channel.
//   ┌──────┬──────┬─────────┬────────────┬──────────────┐
//   │ 'E'  │ 'C'  │ ver: u8 │ channel:u8 │ from: u32 LE │
//   └──────┴──────┴─────────┴────────────┴──────────────┘
constexpr std::size_t kDgramHeaderBytes = 8;
constexpr std::uint8_t kDgramVersion = 1;
constexpr std::uint8_t kChannelOverlay = 0;
constexpr std::uint8_t kChannelDirect = 1;

// epoll user-data tag for the timerfd (NodeIds are dense and far smaller).
constexpr std::uint32_t kTimerTag = 0xffffffffu;

constexpr std::size_t kMaxDatagram = 65536;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

/// A cancellable one-shot timer. The runtime's map owns one reference; the
/// TimerHandle the caller got owns another, so cancel()/pending() stay valid
/// after the timer fires and the map entry is gone.
struct AsyncRuntime::AsyncTimerState final : TimerHandle::State {
  bool cancelled = false;
  bool fired = false;
  TimerService::Callback cb;

  bool cancel() override {
    if (cancelled || fired) return false;
    cancelled = true;
    cb = nullptr;  // free captures eagerly; the map entry is skipped later
    return true;
  }
  [[nodiscard]] bool pending() const override { return !cancelled && !fired; }
};

struct AsyncRuntime::LocalNode {
  NodeId id;
  int fd = -1;
  TransportReceiver* receiver = nullptr;

  ~LocalNode() {
    if (fd >= 0) ::close(fd);
  }
};

AsyncRuntime::AsyncRuntime(AsyncRuntimeConfig config)
    : config_(config),
      root_rng_(config.seed),
      drop_rng_(root_rng_.fork()) {
  if (config_.sizing != SizingMode::Wire) {
    // Satellite guarantee: real sockets carry real codec frames, so the only
    // honest accounting is the frame's byte count. Nominal sizing would
    // silently misreport link occupancy and overhead figures.
    throw std::invalid_argument(
        "AsyncRuntime requires SizingMode::Wire: real UDP transport carries "
        "codec frames whose on-the-wire size is the frame size; nominal "
        "sizing (requested: " +
        std::string(to_string(config_.sizing)) +
        ") would misaccount link occupancy. Set sizing=wire in the cluster "
        "config or EPICAST_SIZING=wire.");
  }
  if (config_.inbound_queue_capacity == 0) {
    throw std::invalid_argument("inbound_queue_capacity must be > 0");
  }
  if (!config_.faults.churns.empty()) {
    // Churn means process death. In daemon mode processes really die: the
    // cluster harness --chaos schedule SIGKILLs and relaunches epicastd.
    // Emulating churn inside a live runtime would be a lie twice over.
    throw std::invalid_argument(
        "AsyncRuntime fault plans cannot contain churn(...): daemon-mode "
        "process death is real — use the cluster harness --chaos schedule "
        "(SIGKILL + relaunch) instead of a synthetic churn process");
  }
  config_.faults.validate();
  if (!(config_.slow_bandwidth_bytes_per_s > 0.0)) {
    throw std::invalid_argument("slow_bandwidth_bytes_per_s must be > 0");
  }
  {
    // One fork per fault process, in plan order, off the *cluster-wide*
    // seed: every daemon derives the same blackhole victim stream, while
    // burst channels (whose losses are local anyway) stay deterministic
    // per process.
    Rng fault_rng(config_.fault_seed);
    wire_bursts_.reserve(config_.faults.bursts.size());
    for (const fault::BurstSpec& b : config_.faults.bursts) {
      wire_bursts_.push_back(WireBurst{b, fault_rng.fork(), {}});
    }
    wire_blackholes_.reserve(config_.faults.partitions.size());
    for (const fault::PartitionSpec& p : config_.faults.partitions) {
      wire_blackholes_.push_back(WireBlackhole{p, fault_rng.fork(), {}, false});
    }
  }

  start_ns_ = config_.clock_epoch_ns >= 0 ? config_.clock_epoch_ns : mono_ns();
  recv_buf_.resize(kMaxDatagram);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd_ < 0) throw_errno("timerfd_create");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u32 = kTimerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(timerfd)");
  }
}

AsyncRuntime::~AsyncRuntime() {
  local_.clear();  // closes node sockets
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

// -- cluster wiring ----------------------------------------------------------

void AsyncRuntime::set_peer(NodeId id, const PeerEndpoint& ep) {
  EPICAST_ASSERT(id.valid());
  const std::size_t need = id.value() + 1;
  if (peers_.size() < need) {
    peers_.resize(need);
    addr4_.resize(need);
    links_.resize(need);
    local_.resize(need);
  }
  in_addr addr{};
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr) != 1) {
    throw std::invalid_argument("peer host is not an IPv4 address: " +
                                ep.host);
  }
  peers_[id.value()] = ep;
  addr4_[id.value()] = {addr.s_addr, ep.port};
}

void AsyncRuntime::add_link(NodeId a, NodeId b) {
  EPICAST_ASSERT(a.value() < links_.size() && b.value() < links_.size());
  EPICAST_ASSERT(a != b);
  auto insert = [this](NodeId x, NodeId y) {
    auto& adj = links_[x.value()];
    auto it = std::lower_bound(adj.begin(), adj.end(), y);
    if (it == adj.end() || *it != y) adj.insert(it, y);
  };
  insert(a, b);
  insert(b, a);
}

void AsyncRuntime::remove_link(NodeId a, NodeId b) {
  auto erase = [this](NodeId x, NodeId y) {
    auto& adj = links_[x.value()];
    auto it = std::lower_bound(adj.begin(), adj.end(), y);
    if (it != adj.end() && *it == y) adj.erase(it);
  };
  erase(a, b);
  erase(b, a);
}

const PeerEndpoint& AsyncRuntime::peer(NodeId id) const {
  EPICAST_ASSERT(id.value() < peers_.size());
  return peers_[id.value()];
}

// -- Clock -------------------------------------------------------------------

std::int64_t AsyncRuntime::mono_ns() const {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

SimTime AsyncRuntime::now() const {
  return SimTime::zero() + Duration::nanos(mono_ns() - start_ns_);
}

// -- TimerService ------------------------------------------------------------

TimerHandle AsyncRuntime::after(Duration delay, Callback cb) {
  EPICAST_ASSERT(cb != nullptr);
  auto state = std::make_shared<AsyncTimerState>();
  state->cb = std::move(cb);
  const std::int64_t deadline =
      mono_ns() + std::max<std::int64_t>(0, delay.count_nanos());
  timers_.emplace(std::make_pair(deadline, timer_seq_++), state);
  if (armed_deadline_ns_ < 0 || deadline < armed_deadline_ns_) {
    rearm_timerfd();
  }
  return TimerHandle{std::move(state)};
}

void AsyncRuntime::rearm_timerfd() {
  itimerspec spec{};  // zeroed = disarm
  std::int64_t deadline = -1;
  if (!timers_.empty()) {
    deadline = timers_.begin()->first.first;
    spec.it_value.tv_sec = deadline / 1'000'000'000;
    spec.it_value.tv_nsec = deadline % 1'000'000'000;
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
      spec.it_value.tv_nsec = 1;  // 0/0 would disarm; fire "immediately"
    }
  }
  if (deadline == armed_deadline_ns_) return;
  if (::timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &spec, nullptr) < 0) {
    throw_errno("timerfd_settime");
  }
  armed_deadline_ns_ = deadline;
}

void AsyncRuntime::fire_due_timers() {
  const std::int64_t now = mono_ns();
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    auto node = timers_.extract(timers_.begin());
    AsyncTimerState& t = *node.mapped();
    if (t.cancelled) continue;
    t.fired = true;
    TimerService::Callback cb = std::move(t.cb);
    t.cb = nullptr;
    ++stats_.timers_fired;
    cb();  // may insert new timers; the map is not iterated across this call
  }
}

// -- Transport ---------------------------------------------------------------

void AsyncRuntime::attach(NodeId node, TransportReceiver& receiver) {
  EPICAST_ASSERT_MSG(node.value() < peers_.size(),
                     "attach() before set_peer() for this node");
  EPICAST_ASSERT_MSG(local_[node.value()] == nullptr, "node already attached");

  auto ln = std::make_unique<LocalNode>();
  ln->id = node;
  ln->receiver = &receiver;
  ln->fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ln->fd < 0) throw_errno("socket");

  const int one = 1;
  ::setsockopt(ln->fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (config_.socket_rcvbuf_bytes > 0) {
    ::setsockopt(ln->fd, SOL_SOCKET, SO_RCVBUF, &config_.socket_rcvbuf_bytes,
                 sizeof(config_.socket_rcvbuf_bytes));
  }

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = addr4_[node.value()].first;
  sa.sin_port = htons(peers_[node.value()].port);
  if (::bind(ln->fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    throw_errno("bind " + peers_[node.value()].host + ":" +
                std::to_string(peers_[node.value()].port));
  }
  if (peers_[node.value()].port == 0) {
    // Ephemeral bind (in-process clusters): publish the kernel-chosen port
    // so peers sharing this runtime instance can address us.
    socklen_t len = sizeof(sa);
    if (::getsockname(ln->fd, reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
      throw_errno("getsockname");
    }
    peers_[node.value()].port = ntohs(sa.sin_port);
    addr4_[node.value()].second = peers_[node.value()].port;
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u32 = node.value();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, ln->fd, &ev) < 0) {
    throw_errno("epoll_ctl(node socket)");
  }
  local_[node.value()] = std::move(ln);

  if (static_links_.empty()) {
    // Snapshot the configured topology before anything dynamic (route
    // repair) mutates it: blackhole victim choice must agree across
    // processes, and repair timing never will.
    for (std::uint32_t a = 0; a < links_.size(); ++a) {
      for (NodeId b : links_[a]) {
        if (b.value() > a) static_links_.emplace_back(NodeId{a}, b);
      }
    }
  }
}

void AsyncRuntime::send_overlay(NodeId from, NodeId to, MessagePtr msg) {
  send(from, to, std::move(msg), /*overlay=*/true);
}

void AsyncRuntime::send_direct(NodeId from, NodeId to, MessagePtr msg) {
  send(from, to, std::move(msg), /*overlay=*/false);
}

void AsyncRuntime::send(NodeId from, NodeId to, MessagePtr msg, bool overlay) {
  EPICAST_ASSERT(msg != nullptr);
  EPICAST_ASSERT(to.value() < peers_.size());
  LocalNode* self =
      from.value() < local_.size() ? local_[from.value()].get() : nullptr;
  EPICAST_ASSERT_MSG(self != nullptr, "send from a non-attached node");

  if (overlay && !has_link(from, to)) {
    // Same stale-route semantics as the simulated transport: the message
    // evaporates and the observers hear about it.
    ++stats_.drops_no_link;
    for (TransportObserver* o : observers_) o->on_drop_no_link(from, to, *msg);
    return;
  }

  for (TransportObserver* o : observers_) o->on_send(from, to, *msg, overlay);

  encode_buf_.clear();
  encode_buf_.put_u8('E');
  encode_buf_.put_u8('C');
  encode_buf_.put_u8(kDgramVersion);
  encode_buf_.put_u8(overlay ? kChannelOverlay : kChannelDirect);
  encode_buf_.put_u32le(from.value());
  wire::Codec::encode(*msg, encode_buf_);

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = addr4_[to.value()].first;
  sa.sin_port = htons(addr4_[to.value()].second);
  const ssize_t n =
      ::sendto(self->fd, encode_buf_.data(), encode_buf_.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n < 0) {
    // EAGAIN (full send buffer) and friends are just loss — UDP semantics.
    ++stats_.send_failures;
    for (TransportObserver* o : observers_) o->on_loss(from, to, *msg, overlay);
    return;
  }
  ++stats_.datagrams_sent;
  stats_.bytes_sent += static_cast<std::uint64_t>(n);
}

std::span<const NodeId> AsyncRuntime::neighbors(NodeId node) const {
  EPICAST_ASSERT(node.value() < links_.size());
  return links_[node.value()];
}

bool AsyncRuntime::has_link(NodeId a, NodeId b) const {
  if (a.value() >= links_.size()) return false;
  const auto& adj = links_[a.value()];
  return std::binary_search(adj.begin(), adj.end(), b);
}

std::uint32_t AsyncRuntime::node_count() const {
  return static_cast<std::uint32_t>(peers_.size());
}

// -- event loop --------------------------------------------------------------

void AsyncRuntime::drain_socket(LocalNode& node) {
  for (;;) {
    sockaddr_in sa{};
    socklen_t sa_len = sizeof(sa);
    const ssize_t n =
        ::recvfrom(node.fd, recv_buf_.data(), recv_buf_.size(), 0,
                   reinterpret_cast<sockaddr*>(&sa), &sa_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // Transient socket errors (e.g. ICMP unreachable surfacing) — count
      // and keep the loop alive rather than killing the node.
      ++stats_.decode_errors;
      return;
    }
    ++stats_.datagrams_received;
    stats_.bytes_received += static_cast<std::uint64_t>(n);

    if (static_cast<std::size_t>(n) < kDgramHeaderBytes ||
        recv_buf_[0] != 'E' || recv_buf_[1] != 'C' ||
        recv_buf_[2] != kDgramVersion ||
        (recv_buf_[3] != kChannelOverlay && recv_buf_[3] != kChannelDirect)) {
      ++stats_.decode_errors;
      continue;
    }
    const std::uint32_t from_raw =
        static_cast<std::uint32_t>(recv_buf_[4]) |
        (static_cast<std::uint32_t>(recv_buf_[5]) << 8) |
        (static_cast<std::uint32_t>(recv_buf_[6]) << 16) |
        (static_cast<std::uint32_t>(recv_buf_[7]) << 24);
    if (from_raw >= peers_.size()) {
      ++stats_.decode_errors;
      continue;
    }

    if (inbound_.size() >= config_.inbound_queue_capacity) {
      // Drop-newest: the frames already queued are older and thus closer to
      // their retransmission deadlines; the arriving one is the cheapest to
      // re-request. Gossip recovery repairs the hole either way.
      ++stats_.queue_overflows;
      continue;
    }
    InboundFrame f;
    f.to = node.id;
    f.from = NodeId{from_raw};
    f.overlay = recv_buf_[3] == kChannelOverlay;
    f.frame.assign(recv_buf_.begin() + kDgramHeaderBytes,
                   recv_buf_.begin() + n);
    inbound_.push_back(std::move(f));
  }
}

bool AsyncRuntime::window_active(Duration start,
                                 const std::optional<Duration>& stop) const {
  const Duration origin = Duration::seconds(config_.fault_origin_s);
  const SimTime t = now();
  if (t < SimTime::zero() + origin + start) return false;
  if (stop && t >= SimTime::zero() + origin + *stop) return false;
  return true;
}

void AsyncRuntime::choose_blackhole_victims(WireBlackhole& bh) {
  bh.chosen = true;
  if (static_links_.empty()) {
    // No attach happened (or links came late): fall back to the live table.
    for (std::uint32_t a = 0; a < links_.size(); ++a) {
      for (NodeId b : links_[a]) {
        if (b.value() > a) static_links_.emplace_back(NodeId{a}, b);
      }
    }
  }
  // Partial Fisher–Yates over a copy: k distinct links, draw order fixed,
  // so every process picks the same victims from the same seed.
  std::vector<std::pair<NodeId, NodeId>> pool = static_links_;
  const std::size_t want =
      std::min<std::size_t>(bh.spec.links, pool.size());
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(bh.rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    bh.victims.push_back(pool[i]);
  }
}

bool AsyncRuntime::fault_drops_frame(const InboundFrame& f,
                                     const Message& msg) {
  const bool control = msg.message_class() == MessageClass::Control;

  // Scheduled blackholes first: a dead link carries *nothing*, control
  // included — this is what starves the failure detector and exercises the
  // suspect machinery end to end.
  for (WireBlackhole& bh : wire_blackholes_) {
    if (!window_active(bh.spec.at, bh.spec.heal)) continue;
    if (!bh.chosen) choose_blackhole_victims(bh);
    const std::pair<NodeId, NodeId> key =
        f.from.value() < f.to.value() ? std::make_pair(f.from, f.to)
                                      : std::make_pair(f.to, f.from);
    for (const auto& victim : bh.victims) {
      if (victim == key) {
        ++stats_.blackhole_drops;
        for (TransportObserver* o : observers_) {
          o->on_loss(f.from, f.to, msg, f.overlay);
        }
        return true;
      }
    }
  }

  // Gilbert–Elliott windows: the chain advances for every frame on the
  // directed link (the burst weather doesn't care what's in the packets)
  // but only non-control frames are actually lost, mirroring
  // control_lossless in the simulated transport.
  for (WireBurst& wb : wire_bursts_) {
    if (!window_active(wb.spec.start, wb.spec.stop)) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(f.from.value()) << 32) | f.to.value();
    auto it = wb.channels.find(key);
    if (it == wb.channels.end()) {
      it = wb.channels
               .emplace(key, fault::GilbertElliottChannel(wb.spec.channel,
                                                          wb.rng.fork()))
               .first;
    }
    if (it->second.transmit_lost() && !control) {
      ++stats_.burst_drops;
      for (TransportObserver* o : observers_) {
        o->on_loss(f.from, f.to, msg, f.overlay);
      }
      return true;
    }
  }

  if (config_.inbound_drop_rate > 0.0 && !control &&
      drop_rng_.chance(config_.inbound_drop_rate)) {
    // Synthetic ε: localhost UDP is effectively lossless, so the paper's
    // link error rate is re-introduced receive-side. Control traffic is
    // exempt, mirroring TransportConfig::control_lossless.
    ++stats_.drops_injected;
    for (TransportObserver* o : observers_) {
      o->on_loss(f.from, f.to, msg, f.overlay);
    }
    return true;
  }
  return false;
}

Duration AsyncRuntime::slow_delay(std::size_t frame_bytes) const {
  double factor = 1.0;
  for (const fault::SlowSpec& s : config_.faults.slows) {
    if (window_active(s.start, s.stop)) factor = std::min(factor, s.factor);
  }
  if (factor >= 1.0) return Duration::zero();
  // Inside a slow window the frame takes bytes/(bandwidth·factor) instead
  // of effectively zero on loopback; charge the whole serialization time.
  const double bw =
      config_.slow_bandwidth_bytes_per_s * std::max(factor, 1e-6);
  return Duration::seconds(static_cast<double>(frame_bytes) / bw);
}

void AsyncRuntime::deliver_frame(const InboundFrame& f, const MessagePtr& msg) {
  if (frame_obs_) frame_obs_(f.from, f.to, f.overlay, f.frame, msg);

  LocalNode* dest = local_[f.to.value()].get();
  if (dest == nullptr || dest->receiver == nullptr) return;
  if (f.overlay) {
    dest->receiver->on_overlay_message(f.from, msg);
  } else {
    dest->receiver->on_direct_message(f.from, msg);
  }
}

void AsyncRuntime::process_inbound() {
  while (!inbound_.empty()) {
    InboundFrame f = std::move(inbound_.front());
    inbound_.pop_front();

    wire::Decoded decoded = wire::Codec::decode(f.frame);
    if (!decoded.ok()) {
      ++stats_.decode_errors;
      continue;
    }
    const MessagePtr& msg = decoded.message();

    if (fault_drops_frame(f, *msg)) continue;

    if (msg->message_class() != MessageClass::Control) {
      const Duration delay = slow_delay(f.frame.size() + kDgramHeaderBytes);
      if (delay > Duration::zero()) {
        // Re-dispatch through the timer wheel; control frames stay prompt
        // so a slow window degrades throughput without faking peer death.
        ++stats_.slowdown_delays;
        auto held = std::make_shared<InboundFrame>(std::move(f));
        MessagePtr held_msg = msg;
        after(delay, [this, held, held_msg] { deliver_frame(*held, held_msg); });
        continue;
      }
    }

    deliver_frame(f, msg);
  }
}

void AsyncRuntime::poll(Duration max_wait) {
  fire_due_timers();
  rearm_timerfd();

  const std::int64_t wait_ns =
      std::max<std::int64_t>(0, max_wait.count_nanos());
  const int timeout_ms = static_cast<int>(
      std::min<std::int64_t>((wait_ns + 999'999) / 1'000'000, 60'000));

  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return;  // signal (e.g. SIGTERM) — let the loop turn
    throw_errno("epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    const std::uint32_t tag = events[i].data.u32;
    if (tag == kTimerTag) {
      std::uint64_t expirations = 0;
      while (::read(timer_fd_, &expirations, sizeof(expirations)) > 0) {
      }
      // The armed deadline has been consumed; force a real re-arm next time.
      armed_deadline_ns_ = -1;
      continue;  // timers fire below, off the ordered map
    }
    if (tag < local_.size() && local_[tag] != nullptr) {
      drain_socket(*local_[tag]);
    }
  }
  process_inbound();
  fire_due_timers();
  rearm_timerfd();
}

void AsyncRuntime::run_until(SimTime deadline) {
  stop_ = false;
  while (!stop_ && !(stop_flag_ != nullptr && *stop_flag_ != 0)) {
    const SimTime t = now();
    if (t >= deadline) return;
    Duration wait = deadline - t;
    // Cap the wait so an external stop flag is noticed promptly even on an
    // otherwise idle node (timer wakeups come via timerfd regardless).
    if (wait > Duration::millis(50)) wait = Duration::millis(50);
    poll(wait);
  }
}

}  // namespace epicast::runtime
