#include "epicast/runtime/shard_runtime.hpp"

#include <utility>

#include "epicast/common/assert.hpp"
#include "epicast/net/topology.hpp"
#include "epicast/net/transport.hpp"

namespace epicast::runtime {

namespace {

/// TimerHandle state over a lane EventHandle; cancellation works across
/// lanes because the merged execution re-scans every lane head.
struct LaneTimerState final : TimerHandle::State {
  EventHandle handle;
  bool cancel() override { return handle.cancel(); }
  [[nodiscard]] bool pending() const override { return handle.pending(); }
};

}  // namespace

ShardRuntime::ShardRuntime(ShardEngine& engine, std::uint32_t lane,
                           Simulator& sim, epicast::Transport* transport,
                           bool own_pool)
    : sim_(sim), engine_(&engine), lane_(lane) {
  if (own_pool) pool_ = std::make_unique<MessagePool>();
  clock_.engine = &engine;
  timers_.engine = &engine;
  timers_.lane = lane;
  transport_.net = transport;
}

Transport& ShardRuntime::transport() {
  EPICAST_ASSERT_MSG(transport_.net != nullptr,
                     "ShardRuntime was built without a transport");
  return transport_;
}

// During parallel windows the engine's clock is the master's replay clock;
// code running on a worker lane reads its own lane context's event time.
SimTime ShardRuntime::ShardClock::now() const {
  return LaneContext::now_or(engine->now());
}

TimerHandle ShardRuntime::ShardTimers::after(Duration delay, Callback cb) {
  auto state = std::make_shared<LaneTimerState>();
  state->handle = engine->schedule_lane(
      lane, LaneContext::now_or(engine->now()) + delay, std::move(cb));
  return TimerHandle(std::move(state));
}

void ShardRuntime::NetTransport::attach(NodeId node,
                                        TransportReceiver& receiver) {
  net->attach(node, receiver);
}

void ShardRuntime::NetTransport::send_overlay(NodeId from, NodeId to,
                                              MessagePtr msg) {
  net->send_overlay(from, to, std::move(msg));
}

void ShardRuntime::NetTransport::send_direct(NodeId from, NodeId to,
                                             MessagePtr msg) {
  net->send_direct(from, to, std::move(msg));
}

std::span<const NodeId> ShardRuntime::NetTransport::neighbors(
    NodeId node) const {
  return net->topology().neighbors(node);
}

bool ShardRuntime::NetTransport::has_link(NodeId a, NodeId b) const {
  return net->topology().has_link(a, b);
}

std::uint32_t ShardRuntime::NetTransport::node_count() const {
  return net->topology().node_count();
}

}  // namespace epicast::runtime
