#include "epicast/runtime/cluster.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace epicast::runtime {
namespace {

[[noreturn]] void fail_line(std::size_t line_no, const std::string& why) {
  throw std::invalid_argument("cluster config line " +
                              std::to_string(line_no) + ": " + why);
}

std::uint64_t parse_u64(const std::string& tok, std::size_t line_no) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    fail_line(line_no, "expected an unsigned integer, got '" + tok + "'");
  }
}

double parse_f64(const std::string& tok, std::size_t line_no) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    fail_line(line_no, "expected a number, got '" + tok + "'");
  }
}

}  // namespace

Algorithm parse_algorithm_name(const std::string& name) {
  if (name == "no-recovery" || name == "none") return Algorithm::NoRecovery;
  if (name == "push") return Algorithm::Push;
  if (name == "subscriber-pull") return Algorithm::SubscriberPull;
  if (name == "publisher-pull") return Algorithm::PublisherPull;
  if (name == "combined-pull") return Algorithm::CombinedPull;
  if (name == "random-pull") return Algorithm::RandomPull;
  throw std::invalid_argument("unknown algorithm '" + name +
                              "' (expected no-recovery, push, "
                              "subscriber-pull, publisher-pull, "
                              "combined-pull or random-pull)");
}

void ClusterConfig::validate() const {
  if (endpoints.empty()) {
    throw std::invalid_argument("cluster config declares no nodes");
  }
  const std::uint32_t n = node_count();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (endpoints[i].host.empty()) {
      throw std::invalid_argument("node " + std::to_string(i) +
                                  " missing (ids must be dense [0, N))");
    }
  }
  auto check_node = [n](NodeId id, const char* what) {
    if (!id.valid() || id.value() >= n) {
      throw std::invalid_argument(std::string(what) + " references node " +
                                  std::to_string(id.value()) +
                                  " outside [0, " + std::to_string(n) + ")");
    }
  };
  for (const auto& [a, b] : links) {
    check_node(a, "link");
    check_node(b, "link");
    if (a == b) throw std::invalid_argument("link to self");
  }
  for (const auto& [node, p] : subscriptions) {
    check_node(node, "sub");
    if (p.value() >= pattern_universe) {
      throw std::invalid_argument(
          "sub pattern " + std::to_string(p.value()) +
          " outside universe [0, " + std::to_string(pattern_universe) + ")");
    }
  }
  for (NodeId p : publishers) check_node(p, "publisher");
  if (pattern_universe == 0) {
    throw std::invalid_argument("pattern-universe must be > 0");
  }
  if (patterns_per_event == 0 || patterns_per_event > pattern_universe) {
    throw std::invalid_argument(
        "patterns-per-event must be in [1, pattern-universe]");
  }
  if (publish_rate_hz < 0.0) {
    throw std::invalid_argument("rate must be >= 0");
  }
  if (drop_rate < 0.0 || drop_rate >= 1.0) {
    throw std::invalid_argument("drop-rate must be in [0, 1)");
  }
  if (run_seconds <= 0.0 || settle_seconds < 0.0 || drain_seconds < 0.0) {
    throw std::invalid_argument(
        "settle/run/drain must be non-negative (run > 0)");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("queue-capacity must be > 0");
  }
  if (gossip.forward_probability < 0.0 || gossip.forward_probability > 1.0 ||
      gossip.source_probability < 0.0 || gossip.source_probability > 1.0) {
    throw std::invalid_argument("pforward/psource must be in [0, 1]");
  }
  if (heartbeat_interval_ms < 0.0) {
    throw std::invalid_argument("heartbeat-interval-ms must be >= 0");
  }
  if (!faults.churns.empty()) {
    throw std::invalid_argument(
        "cluster fault plans cannot contain churn(...): daemon processes "
        "really die — use the cluster harness --chaos schedule instead");
  }
  faults.validate();
}

ClusterConfig parse_cluster_config(const std::string& text) {
  ClusterConfig cfg;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line

    std::vector<std::string> toks;
    for (std::string t; ls >> t;) toks.push_back(std::move(t));
    auto want = [&](std::size_t n) {
      if (toks.size() != n) {
        fail_line(line_no, "'" + key + "' takes " + std::to_string(n) +
                               " argument(s), got " +
                               std::to_string(toks.size()));
      }
    };

    if (key == "node") {
      want(3);
      const auto id = parse_u64(toks[0], line_no);
      const auto port = parse_u64(toks[2], line_no);
      if (port > 65535) fail_line(line_no, "port out of range");
      // Grow with an empty-host sentinel so validate() catches sparse ids
      // (PeerEndpoint's default host would otherwise look declared).
      if (cfg.endpoints.size() <= id) {
        cfg.endpoints.resize(id + 1, PeerEndpoint{"", 0});
      }
      cfg.endpoints[id] =
          PeerEndpoint{toks[1], static_cast<std::uint16_t>(port)};
    } else if (key == "link") {
      want(2);
      cfg.links.emplace_back(
          NodeId{static_cast<std::uint32_t>(parse_u64(toks[0], line_no))},
          NodeId{static_cast<std::uint32_t>(parse_u64(toks[1], line_no))});
    } else if (key == "sub") {
      want(2);
      cfg.subscriptions.emplace_back(
          NodeId{static_cast<std::uint32_t>(parse_u64(toks[0], line_no))},
          Pattern{static_cast<std::uint32_t>(parse_u64(toks[1], line_no))});
    } else if (key == "algorithm") {
      want(1);
      try {
        cfg.algorithm = parse_algorithm_name(toks[0]);
      } catch (const std::invalid_argument& e) {
        fail_line(line_no, e.what());
      }
    } else if (key == "gossip-interval-ms") {
      want(1);
      cfg.gossip.interval = Duration::millis(parse_f64(toks[0], line_no));
    } else if (key == "beta") {
      want(1);
      cfg.gossip.buffer_size = parse_u64(toks[0], line_no);
    } else if (key == "pforward") {
      want(1);
      cfg.gossip.forward_probability = parse_f64(toks[0], line_no);
    } else if (key == "psource") {
      want(1);
      cfg.gossip.source_probability = parse_f64(toks[0], line_no);
    } else if (key == "request-timeout-ms") {
      want(1);
      cfg.gossip.request_timeout =
          Duration::millis(parse_f64(toks[0], line_no));
      cfg.request_timeout_set = true;
    } else if (key == "heartbeat-interval-ms") {
      want(1);
      cfg.heartbeat_interval_ms = parse_f64(toks[0], line_no);
    } else if (key == "epoch-ns") {
      want(1);
      try {
        cfg.clock_epoch_ns = std::stoll(toks[0]);
      } catch (const std::exception&) {
        fail_line(line_no, "expected an integer, got '" + toks[0] + "'");
      }
    } else if (key == "faults") {
      // The spec may contain no spaces (the plan grammar is ';'-separated)
      // but tolerate accidental splits by re-joining the tokens.
      if (toks.empty()) fail_line(line_no, "'faults' takes a plan spec");
      std::string spec;
      for (const std::string& t : toks) spec += t;
      std::string error;
      const auto plan = fault::parse_plan(spec, &error);
      if (!plan) fail_line(line_no, "bad fault plan: " + error);
      cfg.faults = *plan;
    } else if (key == "pattern-universe") {
      want(1);
      cfg.pattern_universe =
          static_cast<std::uint32_t>(parse_u64(toks[0], line_no));
    } else if (key == "patterns-per-event") {
      want(1);
      cfg.patterns_per_event =
          static_cast<std::uint32_t>(parse_u64(toks[0], line_no));
    } else if (key == "payload-bytes") {
      want(1);
      cfg.event_payload_bytes = parse_u64(toks[0], line_no);
    } else if (key == "rate") {
      want(1);
      cfg.publish_rate_hz = parse_f64(toks[0], line_no);
    } else if (key == "publisher") {
      want(1);
      cfg.publishers.push_back(
          NodeId{static_cast<std::uint32_t>(parse_u64(toks[0], line_no))});
    } else if (key == "settle") {
      want(1);
      cfg.settle_seconds = parse_f64(toks[0], line_no);
    } else if (key == "run") {
      want(1);
      cfg.run_seconds = parse_f64(toks[0], line_no);
    } else if (key == "drain") {
      want(1);
      cfg.drain_seconds = parse_f64(toks[0], line_no);
    } else if (key == "drop-rate") {
      want(1);
      cfg.drop_rate = parse_f64(toks[0], line_no);
    } else if (key == "seed") {
      want(1);
      cfg.seed = parse_u64(toks[0], line_no);
    } else if (key == "sizing") {
      want(1);
      if (toks[0] == "wire") {
        cfg.sizing = SizingMode::Wire;
      } else if (toks[0] == "nominal") {
        cfg.sizing = SizingMode::Nominal;
      } else {
        fail_line(line_no, "sizing must be 'wire' or 'nominal'");
      }
    } else if (key == "queue-capacity") {
      want(1);
      cfg.queue_capacity = parse_u64(toks[0], line_no);
    } else if (key == "oracles") {
      want(1);
      if (toks[0] == "on") {
        cfg.oracles = true;
      } else if (toks[0] == "off") {
        cfg.oracles = false;
      } else {
        fail_line(line_no, "oracles must be 'on' or 'off'");
      }
    } else {
      fail_line(line_no, "unknown directive '" + key + "'");
    }
  }
  cfg.validate();
  return cfg;
}

ClusterConfig load_cluster_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read cluster config: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_cluster_config(buf.str());
}

}  // namespace epicast::runtime
