#include "epicast/runtime/runtime.hpp"

#include <utility>

#include "epicast/common/assert.hpp"

namespace epicast::runtime {

void PeriodicTimer::stop() {
  if (state_) {
    state_->handle.cancel();
    state_.reset();
  }
}

void PeriodicTimer::set_interval(Duration interval) {
  EPICAST_ASSERT(interval > Duration::zero());
  EPICAST_ASSERT_MSG(state_ != nullptr, "timer is not running");
  state_->interval = interval;
  // Re-arm immediately: the next tick happens `interval` from now, whether
  // the previous one was already scheduled or we are inside a tick callback.
  state_->handle.cancel();
  arm(state_);
}

void PeriodicTimer::arm(const std::shared_ptr<State>& state) {
  // Weak capture: if the owning PeriodicTimer is destroyed, the chain stops
  // instead of keeping the state alive through self-reference.
  std::weak_ptr<State> weak = state;
  state->handle = state->timers->after(state->interval, [weak]() {
    auto live = weak.lock();
    if (!live) return;
    live->on_tick();
    // on_tick may have re-armed via set_interval; don't double-arm.
    if (!live->handle.pending()) arm(live);
  });
}

PeriodicTimer Runtime::every(Duration first_delay, Duration interval,
                             std::function<void()> on_tick) {
  EPICAST_ASSERT(interval > Duration::zero());
  EPICAST_ASSERT(!first_delay.is_negative());
  EPICAST_ASSERT(on_tick != nullptr);

  auto state = std::make_shared<PeriodicTimer::State>();
  state->timers = &timers();
  state->interval = interval;
  state->on_tick = std::move(on_tick);

  // First tick honours first_delay, then arm() repeats every interval.
  std::weak_ptr<PeriodicTimer::State> weak = state;
  state->handle = timers().after(first_delay, [weak]() {
    auto live = weak.lock();
    if (!live) return;
    live->on_tick();
    if (!live->handle.pending()) PeriodicTimer::arm(live);
  });

  PeriodicTimer timer;
  timer.state_ = std::move(state);
  return timer;
}

}  // namespace epicast::runtime
