#include "epicast/runtime/sim_runtime.hpp"

#include <utility>

#include "epicast/common/assert.hpp"
#include "epicast/net/topology.hpp"
#include "epicast/net/transport.hpp"

namespace epicast::runtime {

namespace {

/// TimerHandle state over a scheduler EventHandle. The scheduler already
/// implements {slot, generation} cancellation; this just carries the handle
/// across the seam.
struct SimTimerState final : TimerHandle::State {
  EventHandle handle;
  bool cancel() override { return handle.cancel(); }
  [[nodiscard]] bool pending() const override { return handle.pending(); }
};

}  // namespace

SimRuntime::SimRuntime(Simulator& sim, epicast::Transport* transport)
    : sim_(sim) {
  clock_.sim = &sim;
  timers_.sim = &sim;
  transport_.net = transport;
}

Transport& SimRuntime::transport() {
  EPICAST_ASSERT_MSG(transport_.net != nullptr,
                     "SimRuntime was built without a transport");
  return transport_;
}

SimTime SimRuntime::SimClock::now() const { return sim->now(); }

TimerHandle SimRuntime::SimTimers::after(Duration delay, Callback cb) {
  auto state = std::make_shared<SimTimerState>();
  state->handle = sim->after(delay, std::move(cb));
  return TimerHandle(std::move(state));
}

void SimRuntime::SimTransport::attach(NodeId node,
                                      TransportReceiver& receiver) {
  net->attach(node, receiver);
}

void SimRuntime::SimTransport::send_overlay(NodeId from, NodeId to,
                                            MessagePtr msg) {
  net->send_overlay(from, to, std::move(msg));
}

void SimRuntime::SimTransport::send_direct(NodeId from, NodeId to,
                                           MessagePtr msg) {
  net->send_direct(from, to, std::move(msg));
}

std::span<const NodeId> SimRuntime::SimTransport::neighbors(
    NodeId node) const {
  return net->topology().neighbors(node);
}

bool SimRuntime::SimTransport::has_link(NodeId a, NodeId b) const {
  return net->topology().has_link(a, b);
}

std::uint32_t SimRuntime::SimTransport::node_count() const {
  return net->topology().node_count();
}

}  // namespace epicast::runtime
