#include "epicast/sim/scheduler.hpp"

#include <utility>

#include "epicast/common/assert.hpp"

namespace epicast {

bool EventHandle::cancel() {
  if (!cancelled_ || *cancelled_) return false;
  *cancelled_ = true;
  return true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

EventHandle Scheduler::schedule_at(SimTime at, Callback cb) {
  EPICAST_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  EPICAST_ASSERT(cb != nullptr);
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Entry{at, next_seq_++, std::move(cb), cancelled});
  return EventHandle{std::move(cancelled)};
}

EventHandle Scheduler::schedule_after(Duration delay, Callback cb) {
  EPICAST_ASSERT_MSG(!delay.is_negative(), "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Scheduler::pop_live(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the Entry must be moved out via a
    // const_cast-free copy of the small members plus move of the callback.
    out.at = heap_.top().at;
    out.seq = heap_.top().seq;
    out.cb = std::move(const_cast<Entry&>(heap_.top()).cb);
    out.cancelled = heap_.top().cancelled;
    heap_.pop();
    if (!*out.cancelled) return true;
  }
  return false;
}

bool Scheduler::step() {
  Entry e;
  if (!pop_live(e)) return false;
  now_ = e.at;
  *e.cancelled = true;  // fired — pending() must become false
  ++executed_;
  e.cb();
  return true;
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(SimTime deadline) {
  EPICAST_ASSERT(deadline >= now_);
  while (!heap_.empty()) {
    if (*heap_.top().cancelled) {
      heap_.pop();
      continue;
    }
    if (heap_.top().at > deadline) break;
    step();
  }
  now_ = deadline;
}

}  // namespace epicast
