#include "epicast/sim/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "epicast/common/assert.hpp"

namespace epicast {

bool EventHandle::cancel() {
  if (scheduler_ == nullptr) return false;
  return scheduler_->cancel_slot(slot_, generation_);
}

bool EventHandle::pending() const {
  if (scheduler_ == nullptr) return false;
  return scheduler_->slot_pending(slot_, generation_);
}

EventHandle Scheduler::schedule_at(SimTime at, Callback cb) {
  EPICAST_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  EPICAST_ASSERT(static_cast<bool>(cb));
  const std::uint64_t seq =
      external_seq_ != nullptr ? (*external_seq_)++ : next_seq_++;
  return insert_entry(at, seq, std::move(cb));
}

EventHandle Scheduler::schedule_at_seq(SimTime at, std::uint64_t seq,
                                       Callback cb) {
  EPICAST_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  EPICAST_ASSERT(static_cast<bool>(cb));
  return insert_entry(at, seq, std::move(cb));
}

EventHandle Scheduler::insert_entry(SimTime at, std::uint64_t seq,
                                    Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.live_seq = seq;
  heap_push(HeapEntry{at, seq, slot});
  return EventHandle{this, slot, s.generation};
}

EventHandle Scheduler::schedule_after(Duration delay, Callback cb) {
  EPICAST_ASSERT_MSG(!delay.is_negative(), "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Scheduler::peek(SimTime& at, std::uint64_t& seq) {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (!entry_live(top)) {
      heap_pop_front();  // cancelled; collect lazily
      continue;
    }
    at = top.at;
    seq = top.seq;
    return true;
  }
  return false;
}

Scheduler::Callback Scheduler::take_front() {
  EPICAST_ASSERT(!heap_.empty());
  const HeapEntry top = heap_.front();
  EPICAST_ASSERT_MSG(entry_live(top), "take_front without a successful peek");
  heap_pop_front();
  now_ = top.at;
  Callback cb = release_slot(top.slot);
  ++executed_;
  return cb;
}

void Scheduler::heap_push(HeapEntry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Scheduler::heap_pop_front() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = i;
    for (std::size_t c = first; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

Scheduler::Callback Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  Callback cb = std::move(s.cb);
  s.cb = nullptr;
  s.live_seq = kFreeSeq;
  ++s.generation;  // every handle to the old occupant is now inert
  free_slots_.push_back(slot);
  return cb;
}

bool Scheduler::cancel_slot(std::uint32_t slot, std::uint64_t gen) {
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  if (s.generation != gen || s.live_seq == kFreeSeq) return false;
  // Drop the callback eagerly so captured state is freed at cancel time;
  // the heap entry goes stale and is skipped when it reaches the front.
  release_slot(slot);
  return true;
}

bool Scheduler::slot_pending(std::uint32_t slot, std::uint64_t gen) const {
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  return s.generation == gen && s.live_seq != kFreeSeq;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    heap_pop_front();
    if (!entry_live(top)) continue;  // cancelled; collect lazily
    now_ = top.at;
    // Free the slot before invoking: pending() must be false inside the
    // callback, and the callback may reschedule into the same slot.
    Callback cb = release_slot(top.slot);
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(SimTime deadline) {
  EPICAST_ASSERT(deadline >= now_);
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (!entry_live(top)) {
      heap_pop_front();
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  now_ = deadline;
}

}  // namespace epicast
