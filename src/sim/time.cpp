#include "epicast/sim/time.hpp"

#include <cmath>
#include <cstdio>

#include "epicast/common/assert.hpp"

namespace epicast {

Duration Duration::seconds(double s) {
  EPICAST_ASSERT_MSG(std::isfinite(s), "duration must be finite");
  return Duration::nanos(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::string to_string(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6fs", d.to_seconds());
  return buf;
}

std::string to_string(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6fs", t.to_seconds());
  return buf;
}

}  // namespace epicast
