#include "epicast/sim/shard_engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "epicast/common/assert.hpp"

namespace epicast {

ShardEngine::ShardEngine(Simulator& sim, std::uint32_t nodes,
                         std::uint32_t shards, Duration lookahead,
                         std::uint32_t threads)
    : sim_(sim),
      nodes_(nodes),
      shards_(shards),
      block_((nodes + shards - 1) / shards),
      lookahead_(lookahead),
      threads_(std::min(threads == 0 ? 1u : threads, shards)),
      current_lane_(shards) {
  EPICAST_ASSERT(shards_ >= 1 && nodes_ >= shards_);
  EPICAST_ASSERT_MSG(lookahead_ > Duration::zero(),
                     "conservative engine needs positive lookahead");
  lanes_.reserve(lane_count());
  for (std::uint32_t i = 0; i < lane_count(); ++i) {
    lanes_.push_back(std::make_unique<Scheduler>());
    lanes_.back()->use_external_seq(&next_seq_);
  }
  mail_.resize(static_cast<std::size_t>(lane_count()) * lane_count());
  lw_.resize(lane_count());
  lane_profilers_.resize(shards_);
  for (std::uint32_t l = 0; l < lane_count(); ++l) lw_[l].ctx.lane = l;
  for (std::uint32_t l = 0; l < shards_; ++l) {
    lw_[l].ctx.profiler = &lane_profilers_[l];
  }
  if (threads_ > 1) {
    workers_.reserve(threads_);
    for (std::uint32_t w = 0; w < threads_; ++w) {
      workers_.emplace_back(&ShardEngine::worker_main, this, w);
    }
  }
}

ShardEngine::~ShardEngine() {
  if (!workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

Duration ShardEngine::compute_lookahead(Duration link_propagation,
                                        Duration direct_latency_min) {
  const Duration direct = direct_latency_min - Duration::nanos(1);
  return link_propagation < direct ? link_propagation : direct;
}

std::uint64_t ShardEngine::executed() const {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->executed();
  return total;
}

EventHandle ShardEngine::schedule_lane(std::uint32_t lane, SimTime at,
                                       Callback cb) {
  EPICAST_ASSERT(lane < lane_count());
  // A worker may only schedule onto the lane it is draining — anything
  // else would race the owning worker's heap.
  EPICAST_ASSERT(LaneContext::current() == nullptr ||
                 LaneContext::current()->lane == lane);
  EPICAST_ASSERT_MSG(at >= LaneContext::now_or(now_),
                     "cannot schedule into the past");
  return lanes_[lane]->schedule_at(at, std::move(cb));
}

MailRef ShardEngine::schedule_arrival(NodeId node, Duration delay,
                                      Callback cb) {
  EPICAST_ASSERT(!delay.is_negative());
  LaneContext* ctx = LaneContext::current();
  const std::uint32_t from_lane = ctx != nullptr ? ctx->lane : current_lane_;
  const SimTime at = (ctx != nullptr ? ctx->now : now_) + delay;
  // Conservative-sync safety: while a window is open, every arrival an
  // executing event produces must land at or beyond the window end, or the
  // lookahead bound fed to the constructor was wrong.
  EPICAST_ASSERT_MSG(!in_window_ || at >= window_end_,
                     "arrival inside the open lookahead window");
  const std::uint32_t to_lane = lane_of(node);
  const std::uint32_t pair = from_lane * lane_count() + to_lane;
  Mailbox& box = mail_[pair];
  LaneWindow& lw = lw_[from_lane];
  // Mailbox posts draw from the same counter as heap schedules (the lane's
  // provisional counter during parallel windows), preserving the creation
  // interleaving the serial engine would have produced.
  const std::uint64_t seq = ctx != nullptr ? lw.prov_next++ : next_seq_++;
  if (box.entries.empty()) lw.dirty.push_back(pair);
  box.entries.push_back(MailEntry{at, seq, std::move(cb), false});
  if (ctx != nullptr) {
    ++lw.posted;
    if (to_lane != from_lane) ++lw.crossed;
  } else {
    ++stats_.mailbox_posted;
    if (to_lane != from_lane) ++stats_.cross_posted;
  }
  return MailRef{pair, static_cast<std::uint32_t>(box.entries.size() - 1),
                 box.drain_epoch};
}

bool ShardEngine::cancel(const MailRef& ref) {
  // Cross-shard cancels (crash paths) only run from master-lane events,
  // which execute in serial windows.
  EPICAST_ASSERT(LaneContext::current() == nullptr);
  if (ref.pair == MailRef::kInvalid || ref.pair >= mail_.size()) return false;
  Mailbox& box = mail_[ref.pair];
  if (box.drain_epoch != ref.epoch) return false;  // already drained
  if (ref.index >= box.entries.size()) return false;
  MailEntry& entry = box.entries[ref.index];
  if (entry.cancelled) return false;
  entry.cancelled = true;
  entry.cb = nullptr;  // free captured state at cancel time, like the slab
  ++stats_.cancelled;
  return true;
}

void ShardEngine::drain_mailboxes() {
  // Only pairs made nonempty since the last drain are walked (each source
  // lane records its own dirty list, so posting stays lane-local under the
  // worker pool). Drain order across pairs is irrelevant for correctness:
  // entries carry the (at, seq) stamped at post time and the lane heaps
  // re-establish the global order. Fixed iteration (lane-major, post
  // order within a lane) keeps the walk itself deterministic.
  for (std::uint32_t l = 0; l < lane_count(); ++l) {
    LaneWindow& lw = lw_[l];
    if (lw.dirty.empty()) continue;
    for (const std::uint32_t pair : lw.dirty) {
      Mailbox& box = mail_[pair];
      const std::uint32_t to_lane = pair % lane_count();
      for (MailEntry& entry : box.entries) {
        if (entry.cancelled) continue;
        // Destination lane clocks trail the global clock, so the insert
        // precondition at >= lane.now() holds for every undrained entry.
        lanes_[to_lane]->schedule_at_seq(entry.at, entry.seq,
                                         std::move(entry.cb));
        ++stats_.drained;
      }
      box.entries.clear();
      ++box.drain_epoch;
    }
    lw.dirty.clear();
  }
}

bool ShardEngine::global_min(SimTime& at, std::uint64_t& seq,
                             std::uint32_t& lane) {
  bool found = false;
  for (std::uint32_t i = 0; i < lane_count(); ++i) {
    SimTime lane_at;
    std::uint64_t lane_seq;
    if (!lanes_[i]->peek(lane_at, lane_seq)) continue;
    if (!found || lane_at < at || (lane_at == at && lane_seq < seq)) {
      at = lane_at;
      seq = lane_seq;
      lane = i;
      found = true;
    }
  }
  return found;
}

bool ShardEngine::can_run_parallel(SimTime deadline) {
  if (threads_ <= 1) return false;
  SimTime at;
  std::uint64_t seq;
  // Master-lane events (topology mutations, faults, snapshots) serialize
  // the whole window — workers may read the state they mutate.
  if (lanes_[master_lane()]->peek(at, seq) && at < window_end_ &&
      at <= deadline) {
    return false;
  }
  std::uint32_t active = 0;
  for (std::uint32_t l = 0; l < shards_; ++l) {
    if (lanes_[l]->peek(at, seq) && at < window_end_ && at <= deadline) {
      if (++active >= 2) return true;
    }
  }
  return false;
}

void ShardEngine::run_until(SimTime deadline) {
  EPICAST_ASSERT(deadline >= now_);
  for (;;) {
    drain_mailboxes();
    SimTime at;
    std::uint64_t seq;
    std::uint32_t lane;
    if (!global_min(at, seq, lane)) break;
    if (at > deadline) break;
    // Open a window at the global minimum: idle gaps are jumped in one
    // step, so an empty-mailbox cyclic shard graph can never stall.
    window_end_ = at + lookahead_;
    in_window_ = true;
    ++stats_.windows;
    if (can_run_parallel(deadline)) {
      run_parallel_window(deadline);
    } else {
      // Serial window. The do-while reuses the (at, seq, lane) minimum the
      // window was opened with, so each event costs exactly one lane scan.
      std::uint64_t events = 0;
      do {
        now_ = at;
        current_lane_ = lane;
        // Lockstep the master simulator's clock so components reading
        // sim.now() (oracles, trackers, workload guards) see the executing
        // event's time. Its own heap must stay empty — every schedule goes
        // through the engine — or run_until would fire events out of order.
        EPICAST_ASSERT(sim_.scheduler().queued() == 0);
        sim_.run_until(at);
        Scheduler::Callback cb = lanes_[lane]->take_front();
        cb();
        ++events;
      } while (global_min(at, seq, lane) && at < window_end_ &&
               at <= deadline);
      stats_.window_events += events;
    }
    in_window_ = false;
  }
  now_ = deadline;
  EPICAST_ASSERT(sim_.scheduler().queued() == 0);
  sim_.run_until(deadline);
}

void ShardEngine::run_parallel_window(SimTime deadline) {
  ++stats_.parallel_windows;
  // Settle lazily-rebuilt shared read-only caches before workers start.
  if (prologue_) prologue_();
  work_deadline_ = deadline;
  for (std::uint32_t l = 0; l < shards_; ++l) {
    LaneWindow& lw = lw_[l];
    EPICAST_ASSERT(lw.execs.empty() && lw.ctx.effects.empty());
    lw.finals.clear();
    lw.prov_next = kProvBit | (static_cast<std::uint64_t>(l) << 40);
    lanes_[l]->rebind_external_seq(&lw.prov_next);
  }
  const auto wait_start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mu_);
    outstanding_ = threads_;
    ++work_epoch_;
    cv_start_.notify_all();
    cv_done_.wait(lock, [this]() { return outstanding_ == 0; });
  }
  stats_.barrier_wait_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wait_start)
          .count());
  for (std::uint32_t l = 0; l < shards_; ++l) {
    lanes_[l]->rebind_external_seq(&next_seq_);
  }
  merge_and_replay();
}

void ShardEngine::worker_main(std::uint32_t worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_start_.wait(lock,
                   [this, seen]() { return stop_ || work_epoch_ != seen; });
    if (stop_) return;
    seen = work_epoch_;
    lock.unlock();
    for (std::uint32_t l = worker; l < shards_; l += threads_) {
      run_lane_window(l);
    }
    lock.lock();
    if (--outstanding_ == 0) cv_done_.notify_one();
  }
}

void ShardEngine::run_lane_window(std::uint32_t lane) {
  LaneWindow& lw = lw_[lane];
  LaneContext::set_current(&lw.ctx);
  SimTime at;
  std::uint64_t seq;
  while (lanes_[lane]->peek(at, seq) && at < window_end_ &&
         at <= work_deadline_) {
    lw.ctx.now = at;
    const std::uint64_t created0 = lw.prov_next;
    const std::size_t fx0 = lw.ctx.effects.size();
    Callback cb = lanes_[lane]->take_front();
    cb();
    cb = nullptr;  // release captured state here, as the serial path does
    lw.execs.push_back(
        ExecRec{at, seq, static_cast<std::uint32_t>(lw.prov_next - created0),
                static_cast<std::uint32_t>(lw.ctx.effects.size() - fx0)});
  }
  LaneContext::set_current(nullptr);
}

std::uint64_t ShardEngine::resolve_seq(std::uint64_t seq) const {
  if (seq < kProvBit) return seq;
  const auto lane = static_cast<std::uint32_t>((seq >> 40) & 0x7FFFFF);
  const std::uint64_t idx = seq & kProvIdxMask;
  EPICAST_ASSERT(lane < shards_ && idx < lw_[lane].finals.size());
  return lw_[lane].finals[idx];
}

void ShardEngine::merge_and_replay() {
  // K-way merge of the per-lane event lists by (time, final seq): exactly
  // the order the serial engine would have executed them in. Walking it,
  // final seqs are assigned to each event's creations — reproducing the
  // serial shared-counter values — and the deferred side effects replay on
  // the master thread with the clock in lockstep.
  //
  // A head rec's provisional seq always resolves: its creator executed
  // earlier on the same lane (cross-lane creations travel via mailboxes and
  // land beyond the window), so the creator's rec — earlier in the lane
  // list — was already consumed and assigned the finals entry.
  std::uint64_t events = 0;
  for (;;) {
    std::uint32_t best = lane_count();
    SimTime best_at;
    std::uint64_t best_seq = 0;
    for (std::uint32_t l = 0; l < shards_; ++l) {
      const LaneWindow& lw = lw_[l];
      if (lw.merged >= lw.execs.size()) continue;
      const ExecRec& r = lw.execs[lw.merged];
      const std::uint64_t rseq = resolve_seq(r.seq);
      if (best == lane_count() || r.at < best_at ||
          (r.at == best_at && rseq < best_seq)) {
        best = l;
        best_at = r.at;
        best_seq = rseq;
      }
    }
    if (best == lane_count()) break;
    LaneWindow& lw = lw_[best];
    const ExecRec& r = lw.execs[lw.merged++];
    ++events;
    for (std::uint32_t i = 0; i < r.created; ++i) {
      lw.finals.push_back(next_seq_++);
    }
    if (r.effects > 0) {
      now_ = r.at;
      current_lane_ = best;
      EPICAST_ASSERT(sim_.scheduler().queued() == 0);
      sim_.run_until(r.at);
      for (std::uint32_t i = 0; i < r.effects; ++i) {
        Callback& fx = lw.ctx.effects[lw.fx_replayed++];
        fx();
        fx = nullptr;
      }
    }
  }
  stats_.window_events += events;
  // Every creation now has its final seq. Rewrite the provisional keys in
  // this window's mailbox posts and in the lane heaps (the map is strictly
  // monotone per heap, so heap order is untouched), then fold the lane
  // counters. next_seq_ ends exactly where the serial run's would.
  for (std::uint32_t l = 0; l < shards_; ++l) {
    LaneWindow& lw = lw_[l];
    for (const std::uint32_t pair : lw.dirty) {
      for (MailEntry& e : mail_[pair].entries) {
        if (e.seq >= kProvBit) e.seq = resolve_seq(e.seq);
      }
    }
    lanes_[l]->renumber_pending(
        kProvBit, [this](std::uint64_t s) { return resolve_seq(s); });
    EPICAST_ASSERT(lw.fx_replayed == lw.ctx.effects.size());
    lw.ctx.effects.clear();
    lw.execs.clear();
    lw.merged = 0;
    lw.fx_replayed = 0;
    stats_.mailbox_posted += lw.posted;
    stats_.cross_posted += lw.crossed;
    lw.posted = 0;
    lw.crossed = 0;
  }
}

}  // namespace epicast
