#include "epicast/sim/shard_engine.hpp"

#include <utility>

#include "epicast/common/assert.hpp"

namespace epicast {

ShardEngine::ShardEngine(Simulator& sim, std::uint32_t nodes,
                         std::uint32_t shards, Duration lookahead)
    : sim_(sim),
      nodes_(nodes),
      shards_(shards),
      block_((nodes + shards - 1) / shards),
      lookahead_(lookahead),
      current_lane_(shards) {
  EPICAST_ASSERT(shards_ >= 1 && nodes_ >= shards_);
  EPICAST_ASSERT_MSG(lookahead_ > Duration::zero(),
                     "conservative engine needs positive lookahead");
  lanes_.reserve(lane_count());
  for (std::uint32_t i = 0; i < lane_count(); ++i) {
    lanes_.push_back(std::make_unique<Scheduler>());
    lanes_.back()->use_external_seq(&next_seq_);
  }
  mail_.resize(static_cast<std::size_t>(lane_count()) * lane_count());
}

Duration ShardEngine::compute_lookahead(Duration link_propagation,
                                        Duration direct_latency_min) {
  const Duration direct = direct_latency_min - Duration::nanos(1);
  return link_propagation < direct ? link_propagation : direct;
}

std::uint64_t ShardEngine::executed() const {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->executed();
  return total;
}

EventHandle ShardEngine::schedule_lane(std::uint32_t lane, SimTime at,
                                       Callback cb) {
  EPICAST_ASSERT(lane < lane_count());
  EPICAST_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  return lanes_[lane]->schedule_at(at, std::move(cb));
}

MailRef ShardEngine::schedule_arrival(NodeId node, Duration delay,
                                      Callback cb) {
  EPICAST_ASSERT(!delay.is_negative());
  const SimTime at = now_ + delay;
  // Conservative-sync safety: while a window is open, every arrival an
  // executing event produces must land at or beyond the window end, or the
  // lookahead bound fed to the constructor was wrong.
  EPICAST_ASSERT_MSG(!in_window_ || at >= window_end_,
                     "arrival inside the open lookahead window");
  const std::uint32_t to_lane = lane_of(node);
  Mailbox& box = mailbox(current_lane_, to_lane);
  const std::uint64_t seq = next_seq_++;
  box.entries.push_back(MailEntry{at, seq, std::move(cb), false});
  ++stats_.mailbox_posted;
  if (to_lane != current_lane_) ++stats_.cross_posted;
  return MailRef{current_lane_ * lane_count() + to_lane,
                 static_cast<std::uint32_t>(box.entries.size() - 1),
                 box.drain_epoch};
}

bool ShardEngine::cancel(const MailRef& ref) {
  if (ref.pair == MailRef::kInvalid || ref.pair >= mail_.size()) return false;
  Mailbox& box = mail_[ref.pair];
  if (box.drain_epoch != ref.epoch) return false;  // already drained
  if (ref.index >= box.entries.size()) return false;
  MailEntry& entry = box.entries[ref.index];
  if (entry.cancelled) return false;
  entry.cancelled = true;
  entry.cb = nullptr;  // free captured state at cancel time, like the slab
  ++stats_.cancelled;
  return true;
}

void ShardEngine::drain_mailboxes() {
  // Drain order across pairs is irrelevant for correctness: entries carry
  // the (at, seq) stamped at post time and the lane heaps re-establish the
  // global order. Fixed iteration keeps the walk itself deterministic.
  for (std::uint32_t pair = 0; pair < mail_.size(); ++pair) {
    Mailbox& box = mail_[pair];
    if (box.entries.empty()) continue;  // nothing to move or invalidate
    const std::uint32_t to_lane = pair % lane_count();
    for (MailEntry& entry : box.entries) {
      if (entry.cancelled) continue;
      // Destination lane clocks trail the global clock, so the insert
      // precondition at >= lane.now() holds for every undrained entry.
      lanes_[to_lane]->schedule_at_seq(entry.at, entry.seq,
                                       std::move(entry.cb));
      ++stats_.drained;
    }
    box.entries.clear();
    ++box.drain_epoch;
  }
}

bool ShardEngine::global_min(SimTime& at, std::uint64_t& seq,
                             std::uint32_t& lane) {
  bool found = false;
  for (std::uint32_t i = 0; i < lane_count(); ++i) {
    SimTime lane_at;
    std::uint64_t lane_seq;
    if (!lanes_[i]->peek(lane_at, lane_seq)) continue;
    if (!found || lane_at < at || (lane_at == at && lane_seq < seq)) {
      at = lane_at;
      seq = lane_seq;
      lane = i;
      found = true;
    }
  }
  return found;
}

void ShardEngine::run_until(SimTime deadline) {
  EPICAST_ASSERT(deadline >= now_);
  for (;;) {
    drain_mailboxes();
    SimTime at;
    std::uint64_t seq;
    std::uint32_t lane;
    if (!global_min(at, seq, lane)) break;
    if (at > deadline) break;
    // Open a window at the global minimum: idle gaps are jumped in one
    // step, so an empty-mailbox cyclic shard graph can never stall.
    window_end_ = at + lookahead_;
    in_window_ = true;
    ++stats_.windows;
    while (global_min(at, seq, lane) && at < window_end_ && at <= deadline) {
      now_ = at;
      current_lane_ = lane;
      // Lockstep the master simulator's clock so components reading
      // sim.now() (oracles, trackers, workload guards) see the executing
      // event's time. Its own heap must stay empty — every schedule goes
      // through the engine — or run_until would fire events out of order.
      EPICAST_ASSERT(sim_.scheduler().queued() == 0);
      sim_.run_until(at);
      Scheduler::Callback cb = lanes_[lane]->take_front();
      cb();
    }
    in_window_ = false;
  }
  now_ = deadline;
  EPICAST_ASSERT(sim_.scheduler().queued() == 0);
  sim_.run_until(deadline);
}

}  // namespace epicast
