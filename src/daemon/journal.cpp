#include "epicast/daemon/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "epicast/pubsub/messages.hpp"
#include "epicast/wire/buffer.hpp"
#include "epicast/wire/codec.hpp"

namespace epicast::daemon {

namespace {

bool parse_publish(std::istringstream& in, Journal::PublishEntry& out) {
  std::string patterns;
  if (!(in >> out.seq >> out.t_s >> patterns)) return false;
  std::size_t pos = 0;
  while (pos < patterns.size()) {
    std::size_t end = patterns.find(',', pos);
    if (end == std::string::npos) end = patterns.size();
    try {
      out.patterns.push_back(
          static_cast<std::uint32_t>(std::stoul(patterns.substr(pos, end - pos))));
    } catch (const std::exception&) {
      return false;
    }
    pos = end + 1;
  }
  return !out.patterns.empty();
}

bool parse_delivery(std::istringstream& in, Journal::DeliveryEntry& out) {
  int recovered = 0;
  if (!(in >> out.source >> out.seq >> out.t_s >> recovered)) return false;
  out.recovered = recovered != 0;
  return true;
}

}  // namespace

Journal::Journal(std::string path) : path_(std::move(path)) {
  // Replay before opening for append, so a replayed record can never be one
  // this incarnation wrote.
  std::ifstream in(path_);
  if (in) {
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream is(line);
      char tag = 0;
      if (!(is >> tag)) continue;
      switch (tag) {
        case 'B': {
          ++replay_.boots;
          break;
        }
        case 'P': {
          PublishEntry e;
          if (parse_publish(is, e)) replay_.publishes.push_back(std::move(e));
          break;
        }
        case 'D': {
          DeliveryEntry e;
          if (parse_delivery(is, e)) replay_.deliveries.push_back(e);
          break;
        }
        default:
          break;  // torn tail of a crashed write — skip
      }
    }
  }

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open journal " + path_ + ": " +
                             std::strerror(errno));
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::append(const std::string& line) {
  // One write(2) per record: O_APPEND makes it atomic with respect to any
  // other appender, and a SIGKILL between records loses nothing.
  ssize_t off = 0;
  const auto* data = line.data();
  auto left = static_cast<ssize_t>(line.size());
  while (left > 0) {
    const ssize_t n = ::write(fd_, data + off, static_cast<std::size_t>(left));
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // journaling is best-effort; the run itself must not die
    }
    off += n;
    left -= n;
  }
}

void Journal::log_boot(std::uint64_t incarnation,
                       fault::RestartPolicy policy) {
  std::ostringstream os;
  os << "B " << incarnation << " " << fault::to_string(policy) << "\n";
  append(os.str());
}

void Journal::log_publish(const PublishEntry& e) {
  std::ostringstream os;
  os.precision(17);
  os << "P " << e.seq << " " << e.t_s << " ";
  for (std::size_t i = 0; i < e.patterns.size(); ++i) {
    os << (i == 0 ? "" : ",") << e.patterns[i];
  }
  os << "\n";
  append(os.str());
}

void Journal::log_delivery(const DeliveryEntry& e) {
  std::ostringstream os;
  os.precision(17);
  os << "D " << e.source << " " << e.seq << " " << e.t_s << " "
     << (e.recovered ? 1 : 0) << "\n";
  append(os.str());
}

void write_cache_snapshot(const std::string& path,
                          const std::vector<EventPtr>& events) {
  wire::WireBuffer buf;
  for (const EventPtr& e : events) {
    const EventMessage msg(e, /*route=*/{});
    wire::Codec::encode(msg, buf);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    if (!out) return;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) std::remove(tmp.c_str());
}

std::vector<EventPtr> read_cache_snapshot(const std::string& path) {
  std::vector<EventPtr> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  std::size_t pos = 0;
  while (pos + 4 <= bytes.size()) {
    const std::uint32_t len = static_cast<std::uint32_t>(bytes[pos]) |
                              (static_cast<std::uint32_t>(bytes[pos + 1]) << 8) |
                              (static_cast<std::uint32_t>(bytes[pos + 2]) << 16) |
                              (static_cast<std::uint32_t>(bytes[pos + 3]) << 24);
    const std::size_t total = 4u + len;
    if (len > wire::Codec::kMaxFrameLen || pos + total > bytes.size()) break;
    const wire::Decoded d = wire::Codec::decode(
        std::span<const std::uint8_t>(bytes.data() + pos, total));
    pos += total;
    if (!d.ok()) break;
    if (const auto* em = dynamic_cast<const EventMessage*>(d.message().get())) {
      out.push_back(em->event());
    }
  }
  return out;
}

}  // namespace epicast::daemon
