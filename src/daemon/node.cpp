#include "epicast/daemon/node.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <utility>

#include "epicast/common/assert.hpp"
#include "epicast/gossip/protocol.hpp"
#include "epicast/gossip/pull_base.hpp"
#include "epicast/metrics/result_json.hpp"

namespace epicast::daemon {

NodeDaemon::NodeDaemon(runtime::ClusterConfig cluster, NodeId self,
                       DaemonOptions opts)
    : cluster_(std::move(cluster)),
      self_(self),
      opts_(std::move(opts)),
      universe_(cluster_.pattern_universe),
      // Workload stream decoupled from the runtime's forks; offset by the
      // node id so no two daemons publish in lock-step.
      pub_rng_(cluster_.seed * 0x9e3779b97f4a7c15ULL + self_.value()) {
  cluster_.validate();
  EPICAST_ASSERT_MSG(self_.value() < cluster_.node_count(),
                     "--node-id outside the cluster");

  if (!opts_.journal_path.empty()) {
    journal_ = std::make_unique<Journal>(opts_.journal_path);
    incarnation_ = journal_->replay().boots + 1;
    restarted_ = journal_->replay().boots > 0;
  }

  // Daemon-mode default: retry hardening on (3× the gossip interval) unless
  // the config said otherwise. Real links time out; a daemon that never
  // retries a lost pull request leaks losses the simulator's defaults were
  // never meant to model. The simulator's own default stays off — the
  // determinism seed guards pin fault-free sim results bit-exactly.
  if (!cluster_.request_timeout_set &&
      cluster_.gossip.request_timeout == Duration::zero()) {
    cluster_.gossip.request_timeout = cluster_.gossip.interval * 3;
  }

  runtime::AsyncRuntimeConfig rc;
  rc.seed = cluster_.seed + self_.value();
  rc.sizing = cluster_.sizing;  // != Wire throws std::invalid_argument here
  rc.inbound_queue_capacity = cluster_.queue_capacity;
  rc.inbound_drop_rate = cluster_.drop_rate;
  rc.faults = cluster_.faults;
  rc.fault_origin_s = cluster_.settle_seconds;  // plan times ~ publish_start
  rc.fault_seed = cluster_.seed;  // cluster-wide: blackhole choices agree
  rc.clock_epoch_ns = cluster_.clock_epoch_ns;
  rt_ = std::make_unique<runtime::AsyncRuntime>(rc);

  for (std::uint32_t i = 0; i < cluster_.node_count(); ++i) {
    rt_->set_peer(NodeId{i}, cluster_.endpoints[i]);
  }
  for (const auto& [a, b] : cluster_.links) rt_->add_link(a, b);

  if (cluster_.oracles) {
    // The daemon sees no Simulator and no PubSubNetwork; the suite's
    // context-free oracles still hold over real traffic. Abort mode: a
    // violated safety property should kill the node visibly, not skew the
    // harness's delivery numbers silently.
    oracles_ = std::make_unique<oracle::OracleSuite>(
        oracle::OracleContext{nullptr, nullptr, cluster_.sizing},
        oracle::FailMode::Abort);
    oracles_->add(std::make_unique<oracle::UniqueDeliveryOracle>());
    auto wire = std::make_unique<oracle::WireRoundTripOracle>();
    wire_oracle_ = wire.get();
    oracles_->add(std::move(wire));
    rt_->add_observer(*oracles_);
  }
  // Receive side: every accepted frame must round-trip bit-exactly, and
  // any frame from a peer proves its process is alive.
  rt_->set_frame_observer([this](NodeId from, NodeId to, bool,
                                 std::span<const std::uint8_t> frame,
                                 const MessagePtr&) {
    if (wire_oracle_ != nullptr) wire_oracle_->verify_bytes(to, frame);
    if (failure_detector_ != nullptr) failure_detector_->note_traffic(from);
  });

  DispatcherConfig dc;
  dc.default_payload_bytes = cluster_.event_payload_bytes;
  dc.record_routes = algorithm_needs_routes(cluster_.algorithm);
  dispatcher_ = std::make_unique<Dispatcher>(self_, *rt_, dc);

  dispatcher_->set_delivery_listener(
      [this](NodeId node, const EventPtr& event, bool recovered) {
        if (oracles_ != nullptr) {
          oracles_->notify_delivery(node, event, recovered);
        }
        const SimTime now = rt_->now();
        delivered_.push_back(DeliveryRecord{event->source().value(),
                                            event->id().source_seq,
                                            now.to_seconds(), recovered});
        // published_at rides inside the event frame; on a shared clock
        // epoch (epoch-ns) this is a cross-process publish→deliver time.
        latency_.record((now - event->published_at()).count_nanos());
        if (journal_ != nullptr) {
          journal_->log_delivery(Journal::DeliveryEntry{
              event->source().value(), event->id().source_seq,
              now.to_seconds(), recovered});
        }
      });

  for (const auto& [node, p] : cluster_.subscriptions) {
    if (node == self_) dispatcher_->subscribe_local(p);
  }
  install_routes();

  dispatcher_->set_recovery(
      make_recovery(cluster_.algorithm, *dispatcher_, cluster_.gossip));

  replay_journal();
  if (journal_ != nullptr) {
    journal_->log_boot(incarnation_, opts_.restart_policy);
  }

  if (cluster_.heartbeat_interval_ms > 0.0) {
    FailureDetectorConfig fc;
    fc.interval = Duration::seconds(cluster_.heartbeat_interval_ms * 1e-3);
    fc.incarnation = incarnation_;
    failure_detector_ =
        std::make_unique<FailureDetector>(*dispatcher_, *rt_, fc);
    dispatcher_->set_heartbeat_listener(
        [this](NodeId from, const HeartbeatMessage& hb) {
          failure_detector_->on_heartbeat(from, hb);
        });
    failure_detector_->set_on_peer_dead(
        [this](NodeId dead) { repair_routes_around(dead); });
    failure_detector_->set_on_peer_returned(
        [this](NodeId back) { restore_links_of(back); });
  }

  publish_start_ = SimTime::seconds(cluster_.settle_seconds);
  publish_end_ = publish_start_ + Duration::seconds(cluster_.run_seconds);
  drain_end_ = publish_end_ + Duration::seconds(cluster_.drain_seconds);
}

void NodeDaemon::replay_journal() {
  if (journal_ == nullptr || !restarted_) return;
  const Journal::Replay& rp = journal_->replay();
  std::uint64_t next_seq = 0;
  std::unordered_map<Pattern, std::uint64_t> pattern_seq;
  for (const Journal::PublishEntry& p : rp.publishes) {
    published_.push_back(PublishRecord{p.seq, p.t_s, p.patterns});
    next_seq = std::max(next_seq, p.seq + 1);
    for (const std::uint32_t pat : p.patterns) ++pattern_seq[Pattern{pat}];
    // Our own prior publishes must never be re-accepted as fresh events.
    dispatcher_->note_seen(EventId{self_, p.seq});
  }
  for (const Journal::DeliveryEntry& d : rp.deliveries) {
    delivered_.push_back(DeliveryRecord{d.source, d.seq, d.t_s, d.recovered});
    // Re-gossiped copies of events delivered in a previous incarnation are
    // duplicates, not deliveries — this keeps the unique-delivery oracle
    // true across the crash.
    dispatcher_->note_seen(EventId{NodeId{d.source}, d.seq});
  }
  dispatcher_->restore_sequences(next_seq, pattern_seq);
  dispatcher_->recovery()->on_restart(opts_.restart_policy);
  if (opts_.restart_policy == fault::RestartPolicy::Warm &&
      opts_.cache_snapshot) {
    dispatcher_->recovery()->preload_cache(
        read_cache_snapshot(opts_.journal_path + ".cache"));
  }
}

void NodeDaemon::repair_routes_around(NodeId dead) {
  // Our side of the Reconfigurator handshake, driven by the failure
  // detector instead of a scripted topology change: drop every link into
  // the corpse, retract routes through it, then stitch its (statically
  // known) neighbours into a chain so the overlay stays connected. The
  // chain is computed from the shared config alone — every surviving
  // neighbour derives the same detour without a coordination round.
  std::vector<NodeId> around;
  for (const auto& [a, b] : cluster_.links) {
    if (a == dead) around.push_back(b);
    if (b == dead) around.push_back(a);
  }
  std::sort(around.begin(), around.end());
  around.erase(std::unique(around.begin(), around.end()), around.end());

  for (const NodeId n : around) rt_->remove_link(dead, n);
  dispatcher_->handle_link_break(dead);

  for (std::size_t i = 0; i + 1 < around.size(); ++i) {
    const NodeId u = around[i];
    const NodeId v = around[i + 1];
    if (rt_->has_link(u, v)) continue;
    rt_->add_link(u, v);
    if (u == self_) dispatcher_->handle_link_add(v);
    if (v == self_) dispatcher_->handle_link_add(u);
  }
}

void NodeDaemon::restore_links_of(NodeId returned) {
  // The peer is back (incarnation jump or fresh heartbeat after death):
  // re-attach its configured links and re-advertise our subscriptions
  // across them. Detour links stay — redundant edges only give the
  // dispatching tree duplicate suppression more to do.
  for (const auto& [a, b] : cluster_.links) {
    if (a != returned && b != returned) continue;
    if (!rt_->has_link(a, b)) rt_->add_link(a, b);
    const NodeId other = a == returned ? b : a;
    if (other == self_) dispatcher_->handle_link_add(returned);
  }
}

void NodeDaemon::write_snapshot() {
  const EventCache* c = dispatcher_->recovery()->event_cache();
  if (c == nullptr) return;
  write_cache_snapshot(opts_.journal_path + ".cache", c->snapshot_events());
}

void NodeDaemon::install_routes() {
  // The cluster-wide routing oracle, mirrored from
  // PubSubNetwork::compute_oracle()/rebuild_routes(): one BFS per
  // subscriber; every node routes the subscriber's patterns towards its
  // BFS predecessor. Only self's rows are installed here, plus the
  // duplicate-suppression marks for neighbours that route *through* self.
  const std::uint32_t n = cluster_.node_count();
  std::vector<std::vector<NodeId>> adj(n);
  for (const auto& [a, b] : cluster_.links) {
    adj[a.value()].push_back(b);
    adj[b.value()].push_back(a);
  }
  std::vector<PatternSet> local(n);
  for (const auto& [node, p] : cluster_.subscriptions) {
    local[node.value()].set(p);
  }

  std::vector<NodeId> pred(n);
  std::vector<bool> seen(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (local[s].none()) continue;
    std::fill(seen.begin(), seen.end(), false);
    seen[s] = true;
    std::deque<NodeId> frontier{NodeId{s}};
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      for (NodeId nxt : adj[cur.value()]) {
        if (seen[nxt.value()]) continue;
        seen[nxt.value()] = true;
        pred[nxt.value()] = cur;
        frontier.push_back(nxt);
      }
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      if (v == s || !seen[v]) continue;
      const NodeId hop = pred[v];
      if (v == self_.value()) {
        local[s].for_each(
            [&](Pattern p) { dispatcher_->table().add_route(p, hop); });
      }
      if (hop == self_) {
        // v holds routes towards self for s's patterns, i.e. self's flood
        // of sub(p) crossed the self—v link — record that fact so route
        // maintenance stays consistent with the flooded-bootstrap state.
        local[s].for_each(
            [&](Pattern p) { dispatcher_->note_sub_sent(p, NodeId{v}); });
      }
    }
  }
}

bool NodeDaemon::is_publisher() const {
  if (cluster_.publish_rate_hz <= 0.0) return false;
  if (cluster_.publishers.empty()) return true;
  return std::find(cluster_.publishers.begin(), cluster_.publishers.end(),
                   self_) != cluster_.publishers.end();
}

void NodeDaemon::publish_one() {
  const std::vector<Pattern> content =
      universe_.sample_distinct(cluster_.patterns_per_event, pub_rng_);
  const EventPtr event = dispatcher_->publish(content);
  PublishRecord rec;
  rec.seq = event->id().source_seq;
  rec.t_s = rt_->now().to_seconds();
  rec.patterns.reserve(content.size());
  for (Pattern p : content) rec.patterns.push_back(p.value());
  if (journal_ != nullptr) {
    journal_->log_publish(
        Journal::PublishEntry{rec.seq, rec.t_s, rec.patterns});
  }
  published_.push_back(std::move(rec));
  if (oracles_ != nullptr) oracles_->notify_publish(event);
  schedule_next_publish();
}

void NodeDaemon::schedule_next_publish() {
  const Duration gap =
      Duration::seconds(pub_rng_.exponential(1.0 / cluster_.publish_rate_hz));
  const SimTime at = std::max(rt_->now(), publish_start_) + gap;
  if (at >= publish_end_) return;
  publish_timer_ = rt_->after(at - rt_->now(), [this]() {
    if (rt_->now() >= publish_end_) return;
    publish_one();
  });
}

void NodeDaemon::run(const volatile std::sig_atomic_t* stop_flag) {
  rt_->set_stop_flag(stop_flag);
  EPICAST_ASSERT(dispatcher_->recovery() != nullptr);
  dispatcher_->recovery()->start();
  if (failure_detector_ != nullptr) failure_detector_->start();
  if (restarted_) {
    // Re-announce our subscriptions over the wire: peers that repaired
    // around our death retracted their routes toward us, and a late joiner
    // was never in anyone's tables to begin with. Clearing the suppression
    // marks makes the flood unconditional.
    dispatcher_->clear_sub_sent();
    for (const auto& [node, p] : cluster_.subscriptions) {
      if (node == self_) dispatcher_->subscribe(p);
    }
  }
  if (journal_ != nullptr && opts_.cache_snapshot &&
      opts_.restart_policy == fault::RestartPolicy::Warm) {
    // Half the drain window would also work; 500 ms keeps the snapshot
    // fresh enough that a SIGKILL loses at most half a second of cache.
    snapshot_timer_ = rt_->every(Duration::millis(500), Duration::millis(500),
                                 [this]() { write_snapshot(); });
  }
  if (is_publisher()) schedule_next_publish();
  rt_->run_until(drain_end_);
  publish_timer_.cancel();
  snapshot_timer_.stop();
  if (failure_detector_ != nullptr) failure_detector_->stop();
  dispatcher_->recovery()->stop();
  // One last drain turn so frames already queued locally are delivered
  // (and recorded) before the stats dump.
  rt_->poll(Duration::zero());
  if (oracles_ != nullptr) oracles_->notify_scenario_end();
}

std::string NodeDaemon::stats_json() const {
  std::ostringstream os;
  os.precision(17);

  // Locally known slice of a ScenarioResult, rendered by the same
  // serializer epicast_sim --json uses (satellite contract: one JSON shape
  // on both sides of the sim/real comparison).
  ScenarioResult local;
  local.events_published = published_.size();
  local.delivered_pairs = delivered_.size();
  for (const DeliveryRecord& d : delivered_) {
    if (d.recovered) ++local.recovered_pairs;
  }
  if (const GossipStats* g = dispatcher_->recovery()->gossip_stats()) {
    local.gossip_totals = *g;
  }
  local.memory.node_count = 1;
  local.memory.routing_bytes = dispatcher_->routing_memory_bytes();
  local.memory.seen_bytes = dispatcher_->seen_memory_bytes();
  if (const EventCache* c = dispatcher_->recovery()->event_cache()) {
    local.memory.cache_bytes = c->memory_bytes();
  }
  if (oracles_ != nullptr) local.oracle_checks = oracles_->checks();

  const auto& ds = dispatcher_->stats();
  const auto& ts = rt_->stats();
  os << "{\n"
     << "  \"node\": " << self_.value() << ",\n"
     << "  \"algorithm\": \"" << to_string(cluster_.algorithm) << "\",\n"
     << "  \"settle_s\": " << cluster_.settle_seconds << ",\n"
     << "  \"run_s\": " << cluster_.run_seconds << ",\n"
     << "  \"drain_s\": " << cluster_.drain_seconds << ",\n"
     << "  \"subscriptions\": [";
  bool first = true;
  for (const auto& [node, p] : cluster_.subscriptions) {
    if (node != self_) continue;
    os << (first ? "" : ", ") << p.value();
    first = false;
  }
  os << "],\n"
     << "  \"published\": [";
  for (std::size_t i = 0; i < published_.size(); ++i) {
    const PublishRecord& r = published_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"seq\": " << r.seq
       << ", \"t_s\": " << r.t_s << ", \"patterns\": [";
    for (std::size_t j = 0; j < r.patterns.size(); ++j) {
      os << (j == 0 ? "" : ", ") << r.patterns[j];
    }
    os << "]}";
  }
  os << (published_.empty() ? "],\n" : "\n  ],\n") << "  \"delivered\": [";
  for (std::size_t i = 0; i < delivered_.size(); ++i) {
    const DeliveryRecord& r = delivered_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"src\": " << r.source
       << ", \"seq\": " << r.seq << ", \"t_s\": " << r.t_s
       << ", \"recovered\": " << (r.recovered ? "true" : "false") << "}";
  }
  os << (delivered_.empty() ? "],\n" : "\n  ],\n");
  if (const auto* pull =
          dynamic_cast<const PullProtocolBase*>(dispatcher_->recovery())) {
    const GossipStats& gs = *pull->gossip_stats();
    os << "  \"recovery\": {\n"
       << "    \"rounds\": " << gs.rounds << ",\n"
       << "    \"events_recovered\": " << gs.events_recovered << ",\n"
       << "    \"events_served\": " << gs.events_served << ",\n"
       << "    \"request_timeouts\": " << gs.request_timeouts << ",\n"
       << "    \"lost_pending\": " << pull->lost().size() << ",\n"
       << "    \"lost_expired\": " << pull->lost().stats().expired << ",\n"
       << "    \"gaps_detected\": " << pull->detector().gaps_detected()
       << "\n  },\n";
  }
  os << "  \"dispatcher\": {\n"
     << "    \"published\": " << ds.published << ",\n"
     << "    \"delivered\": " << ds.delivered << ",\n"
     << "    \"delivered_recovered\": " << ds.delivered_recovered << ",\n"
     << "    \"duplicates\": " << ds.duplicates << ",\n"
     << "    \"forwarded\": " << ds.forwarded << "\n"
     << "  },\n"
     << "  \"transport\": {\n"
     << "    \"datagrams_sent\": " << ts.datagrams_sent << ",\n"
     << "    \"datagrams_received\": " << ts.datagrams_received << ",\n"
     << "    \"bytes_sent\": " << ts.bytes_sent << ",\n"
     << "    \"bytes_received\": " << ts.bytes_received << ",\n"
     << "    \"send_failures\": " << ts.send_failures << ",\n"
     << "    \"decode_errors\": " << ts.decode_errors << ",\n"
     << "    \"queue_overflows\": " << ts.queue_overflows << ",\n"
     << "    \"drops_injected\": " << ts.drops_injected << ",\n"
     << "    \"drops_no_link\": " << ts.drops_no_link << ",\n"
     << "    \"timers_fired\": " << ts.timers_fired << ",\n"
     << "    \"burst_drops\": " << ts.burst_drops << ",\n"
     << "    \"blackhole_drops\": " << ts.blackhole_drops << ",\n"
     << "    \"slowdown_delays\": " << ts.slowdown_delays << ",\n"
     << "    \"heartbeats_sent\": " << ts.heartbeats_sent << ",\n"
     << "    \"heartbeats_received\": " << ts.heartbeats_received << ",\n"
     << "    \"peers_suspected\": " << ts.peers_suspected << ",\n"
     << "    \"peers_confirmed_dead\": " << ts.peers_confirmed_dead << ",\n"
     << "    \"restarts_observed\": " << ts.restarts_observed << "\n"
     << "  },\n"
     << "  \"incarnation\": " << incarnation_ << ",\n"
     << "  \"restarted\": " << (restarted_ ? "true" : "false") << ",\n"
     << "  \"latency\": " << latency_.json() << ",\n"
     << "  \"oracle_checks\": "
     << (oracles_ != nullptr ? oracles_->checks() : 0) << ",\n"
     << "  \"result\": " << metrics::result_json(local) << "}\n";
  return os.str();
}

}  // namespace epicast::daemon
