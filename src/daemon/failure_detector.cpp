#include "epicast/daemon/failure_detector.hpp"

#include <utility>

#include "epicast/common/message_pool.hpp"

namespace epicast::daemon {

FailureDetector::FailureDetector(Dispatcher& dispatcher,
                                 runtime::AsyncRuntime& rt,
                                 FailureDetectorConfig config)
    : d_(dispatcher), rt_(rt), cfg_(config) {}

void FailureDetector::start() {
  const SimTime now = rt_.now();
  for (NodeId n : d_.neighbors()) {
    PeerState& st = peers_[n.value()];
    st.last_heard = now;
    st.suspected = false;
    st.dead = false;
  }
  // Desynchronize the first beat across daemons (same trick as the gossip
  // round timer) so a cluster of simultaneous launches doesn't thump.
  const Duration first = cfg_.interval * d_.rng().uniform(0.5, 1.0);
  timer_ = d_.runtime().every(first, cfg_.interval, [this]() { tick(); });
}

void FailureDetector::stop() { timer_.stop(); }

void FailureDetector::tick() {
  const SimTime now = rt_.now();
  // The anti-entropy slice is the same for every neighbour this beat: one
  // rotating window over the recovery protocol's witnessed watermarks.
  marks_scratch_.clear();
  if (cfg_.marks_per_beat > 0 && d_.recovery() != nullptr) {
    mark_cursor_ = d_.recovery()->stream_marks_into(
        mark_cursor_, cfg_.marks_per_beat, marks_scratch_);
  }
  for (NodeId n : d_.neighbors()) {
    MessagePtr hb = make_pooled<HeartbeatMessage>(d_.pool(), cfg_.incarnation,
                                                  marks_scratch_);
    d_.send_overlay(n, std::move(hb));
    rt_.note_heartbeat_sent();
    // A neighbour gained through route repair starts with a fresh deadline.
    peers_.try_emplace(n.value(), PeerState{now, 0, false, false});
  }

  // Escalation is scoped to *current overlay neighbours*: those are the
  // peers obliged to heartbeat us. Anyone else in the table — a one-shot
  // pull partner, a detour peer whose link was since repaired away — owes
  // us no traffic, and suspecting it would poison recovery's target
  // selection cluster-wide.
  for (auto& [raw, st] : peers_) {
    if (st.dead) continue;
    const NodeId peer{raw};
    if (!d_.has_link_to(peer)) continue;
    const Duration silence = now - st.last_heard;
    const auto missed = static_cast<std::uint64_t>(
        silence.count_nanos() / std::max<std::int64_t>(
                                    1, cfg_.interval.count_nanos()));
    if (!st.suspected && missed >= cfg_.suspect_after_missed) {
      st.suspected = true;
      rt_.note_peer_suspected();
      if (d_.recovery() != nullptr) d_.recovery()->on_peer_suspected(peer);
      if (on_suspected_) on_suspected_(peer);
    }
    if (st.suspected && missed >= cfg_.dead_after_missed) {
      st.dead = true;
      rt_.note_peer_confirmed_dead();
      if (on_dead_) on_dead_(peer);
    }
  }
}

void FailureDetector::mark_alive(NodeId from) {
  auto [it, inserted] =
      peers_.try_emplace(from.value(), PeerState{rt_.now(), 0, false, false});
  PeerState& st = it->second;
  st.last_heard = rt_.now();
  if (!st.suspected && !st.dead) return;
  const bool was_dead = st.dead;
  st.suspected = false;
  st.dead = false;
  if (d_.recovery() != nullptr) d_.recovery()->on_peer_alive(from);
  if (was_dead && on_returned_) on_returned_(from);
}

void FailureDetector::note_traffic(NodeId from) {
  // Refresh only: any frame proves life, but a frame from a non-monitored
  // peer (a pull request from across the cluster) must not start a
  // liveness deadline that peer never agreed to keep.
  if (peers_.find(from.value()) == peers_.end()) return;
  mark_alive(from);
}

void FailureDetector::on_heartbeat(NodeId from, const HeartbeatMessage& hb) {
  rt_.note_heartbeat_received();
  if (!hb.marks().empty() && d_.recovery() != nullptr) {
    d_.recovery()->on_stream_marks(hb.marks());
  }
  auto [it, inserted] =
      peers_.try_emplace(from.value(), PeerState{rt_.now(), 0, false, false});
  PeerState& st = it->second;
  if (st.incarnation != 0 && hb.incarnation() > st.incarnation) {
    // The peer rebooted between two heartbeats we saw — count the restart
    // even if silence never crossed the death threshold here.
    rt_.note_restart_observed();
    const bool quiet_restart = !st.suspected && !st.dead;
    st.incarnation = hb.incarnation();
    mark_alive(from);
    if (quiet_restart && on_returned_) on_returned_(from);
    return;
  }
  st.incarnation = hb.incarnation();
  mark_alive(from);
}

bool FailureDetector::suspected(NodeId peer) const {
  const auto it = peers_.find(peer.value());
  return it != peers_.end() && it->second.suspected;
}

bool FailureDetector::confirmed_dead(NodeId peer) const {
  const auto it = peers_.find(peer.value());
  return it != peers_.end() && it->second.dead;
}

}  // namespace epicast::daemon
