#include "epicast/common/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace epicast::detail {

void assert_fail(std::string_view expr, std::string_view file, int line,
                 std::string_view msg) {
  std::fprintf(stderr, "epicast: contract violation: %.*s at %.*s:%d",
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line);
  if (!msg.empty()) {
    std::fprintf(stderr, " — %.*s", static_cast<int>(msg.size()), msg.data());
  }
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace epicast::detail
