#include "epicast/common/message_pool.hpp"

#include <cstdlib>
#include <cstring>

#include "epicast/common/assert.hpp"

namespace epicast {
namespace {

/// Size class of a request, or kClasses for oversize requests.
std::size_t class_of(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  const std::size_t c = (bytes - 1) / MessagePool::kGranularity;
  return c < MessagePool::kClasses ? c : MessagePool::kClasses;
}

constexpr std::size_t class_bytes(std::size_t c) {
  return (c + 1) * MessagePool::kGranularity;
}

}  // namespace

MessagePool::Mode MessagePool::default_mode() {
  static const Mode mode = [] {
    if (const char* v = std::getenv("EPICAST_POOL")) {
      if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
        return Mode::PassThrough;
      }
      if (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0) {
        return Mode::Pooling;
      }
    }
#ifdef EPICAST_ASAN
    return Mode::PassThrough;
#else
    return Mode::Pooling;
#endif
  }();
  return mode;
}

MessagePool::MessagePool(Mode mode) : state_(std::make_shared<State>(mode)) {}

MessagePool::Mode MessagePool::mode() const { return state_->mode; }

const MessagePool::Stats& MessagePool::stats() const { return state_->stats; }

void* MessagePool::allocate(std::size_t bytes) {
  return state_->allocate(bytes);
}

void MessagePool::deallocate(void* p, std::size_t bytes) noexcept {
  state_->deallocate(p, bytes);
}

void MessagePool::set_thread_safe(bool on) { state_->thread_safe = on; }

MessagePool::State::~State() {
  for (void* slab : slabs) ::operator delete(slab);
}

void* MessagePool::State::allocate(std::size_t bytes) {
  std::unique_lock<std::mutex> lock(mu, std::defer_lock);
  if (thread_safe) lock.lock();
  ++stats.allocations;
  const std::size_t c = class_of(bytes);
  if (mode == Mode::PassThrough || c == kClasses) {
    if (c == kClasses) ++stats.oversize;
    return ::operator new(bytes);
  }
  if (void* block = free_[c]) {
    std::memcpy(&free_[c], block, sizeof(void*));  // pop the freelist head
    ++stats.reuses;
    return block;
  }
  const std::size_t need = class_bytes(c);
  if (bump_left < need) {
    // 64-byte blocks carved from an operator-new slab stay aligned for any
    // alignof(std::max_align_t) type; that covers every pooled message.
    bump = static_cast<std::byte*>(::operator new(kSlabBytes));
    bump_left = kSlabBytes;
    slabs.push_back(bump);
    stats.slab_bytes += kSlabBytes;
  }
  void* block = bump;
  bump += need;
  bump_left -= need;
  return block;
}

void MessagePool::State::deallocate(void* p, std::size_t bytes) noexcept {
  std::unique_lock<std::mutex> lock(mu, std::defer_lock);
  if (thread_safe) lock.lock();
  ++stats.deallocations;
  const std::size_t c = class_of(bytes);
  if (mode == Mode::PassThrough || c == kClasses) {
    ::operator delete(p);
    return;
  }
  std::memcpy(p, &free_[c], sizeof(void*));  // push onto the freelist
  free_[c] = p;
}

}  // namespace epicast
