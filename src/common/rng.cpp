#include "epicast/common/rng.hpp"

#include <cmath>

#include "epicast/common/assert.hpp"

namespace epicast {
namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value, as
// recommended by the xoshiro authors.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  EPICAST_ASSERT_MSG(bound > 0, "next_below requires a positive bound");
  // Lemire 2019: unbiased bounded integers without division in the fast path.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 random bits → [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::uniform(double lo, double hi) {
  EPICAST_ASSERT(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  EPICAST_ASSERT_MSG(mean > 0.0, "exponential requires a positive mean");
  // Inverse CDF; 1 - U avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

Rng Rng::fork() {
  // A fresh seed drawn from this stream fully determines the child; the
  // splitmix scramble in the constructor decorrelates parent and child.
  return Rng{next()};
}

}  // namespace epicast
