#include "epicast/common/logging.hpp"

#include <cstdio>

namespace epicast::log {
namespace {

LogLevel g_level = LogLevel::Warn;

const char* name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

LogLevel level() { return g_level; }

void set_level(LogLevel level) { g_level = level; }

bool enabled(LogLevel level) {
  return level >= g_level && g_level != LogLevel::Off;
}

void write(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s\n", name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace epicast::log
