#include "epicast/gossip/adaptive_interval.hpp"

#include <algorithm>

#include "epicast/common/assert.hpp"

namespace epicast {

AdaptiveIntervalController::AdaptiveIntervalController(
    const AdaptiveIntervalConfig& config, Duration base_interval)
    : config_(config), base_(base_interval), current_(base_interval) {
  if (config_.enabled) {
    EPICAST_ASSERT(config_.min_interval > Duration::zero());
    EPICAST_ASSERT(config_.min_interval <= config_.max_interval);
    EPICAST_ASSERT(config_.backoff_factor > 1.0);
    current_ = config_.min_interval;
  }
}

Duration AdaptiveIntervalController::next(bool had_activity) {
  if (!config_.enabled) return base_;
  if (had_activity) {
    current_ = config_.min_interval;
  } else {
    current_ = std::min(config_.max_interval, current_ * config_.backoff_factor);
  }
  return current_;
}

}  // namespace epicast
