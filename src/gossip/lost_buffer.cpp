#include "epicast/gossip/lost_buffer.hpp"

#include <algorithm>

#include "epicast/common/assert.hpp"

namespace epicast {

LostBuffer::LostBuffer(std::size_t capacity, Duration ttl)
    : capacity_(capacity), ttl_(ttl) {
  EPICAST_ASSERT(capacity > 0);
  EPICAST_ASSERT(ttl > Duration::zero());
}

void LostBuffer::note_added(Pattern p) {
  if (p.value() >= pattern_counts_.size()) {
    pattern_counts_.resize(p.value() + 1, 0);
  }
  if (pattern_counts_[p.value()]++ == 0) pattern_mask_.set(p);
}

void LostBuffer::note_removed(Pattern p) {
  EPICAST_ASSERT(p.value() < pattern_counts_.size());
  EPICAST_ASSERT(pattern_counts_[p.value()] > 0);
  if (--pattern_counts_[p.value()] == 0) pattern_mask_.clear(p);
}

bool LostBuffer::add(const LostEntryInfo& entry, SimTime now) {
  if (by_key_.contains(entry)) return false;
  if (by_key_.size() >= capacity_) {
    // Overflow: the oldest entry is the least likely to still be cached
    // anywhere, so it is the right one to abandon.
    note_removed(order_.front().info.pattern);
    by_key_.erase(order_.front().info);
    order_.pop_front();
    ++stats_.overflowed;
  }
  order_.push_back(Node{entry, now});
  by_key_.emplace(entry, std::prev(order_.end()));
  note_added(entry.pattern);
  ++stats_.added;
  return true;
}

bool LostBuffer::remove(const LostEntryInfo& entry) {
  // Fast reject via the pattern summary: this runs once per pattern of
  // every received event and almost always misses.
  if (surely_absent(entry.pattern)) return false;
  auto it = by_key_.find(entry);
  if (it == by_key_.end()) return false;
  order_.erase(it->second);
  by_key_.erase(it);
  note_removed(entry.pattern);
  ++stats_.recovered;
  return true;
}

std::size_t LostBuffer::expire(SimTime now) {
  std::size_t n = 0;
  while (!order_.empty() && now - order_.front().detected_at > ttl_) {
    note_removed(order_.front().info.pattern);
    by_key_.erase(order_.front().info);
    order_.pop_front();
    ++n;
  }
  stats_.expired += n;
  return n;
}

bool LostBuffer::contains(const LostEntryInfo& entry) const {
  return by_key_.contains(entry);
}

void LostBuffer::clear() {
  order_.clear();
  by_key_.clear();
  pattern_mask_ = PatternSet{};
  std::fill(pattern_counts_.begin(), pattern_counts_.end(), 0);
}

template <typename Pred>
std::vector<LostEntryInfo> LostBuffer::collect(Pred&& pred,
                                               std::size_t max_entries) const {
  std::vector<LostEntryInfo> out;
  for (const Node& node : order_) {
    if (!pred(node.info)) continue;
    out.push_back(node.info);
    if (max_entries != 0 && out.size() >= max_entries) break;
  }
  return out;
}

std::vector<LostEntryInfo> LostBuffer::entries_for_pattern(
    Pattern p, std::size_t max_entries) const {
  std::vector<LostEntryInfo> out;
  entries_for_pattern_into(p, max_entries, out);
  return out;
}

void LostBuffer::entries_for_pattern_into(
    Pattern p, std::size_t max_entries,
    std::vector<LostEntryInfo>& out) const {
  out.clear();
  if (surely_absent(p)) return;
  for (const Node& node : order_) {
    if (node.info.pattern != p) continue;
    out.push_back(node.info);
    if (max_entries != 0 && out.size() >= max_entries) break;
  }
}

std::vector<LostEntryInfo> LostBuffer::entries_for_source(
    NodeId s, std::size_t max_entries) const {
  return collect([s](const LostEntryInfo& e) { return e.source == s; },
                 max_entries);
}

std::vector<LostEntryInfo> LostBuffer::all_entries(
    std::size_t max_entries) const {
  return collect([](const LostEntryInfo&) { return true; }, max_entries);
}

std::vector<Pattern> LostBuffer::patterns_with_losses() const {
  // The summary already holds the distinct patterns in ascending order —
  // no walk over order_, no sort (the old implementation rescanned the
  // whole list every gossip round).
  std::vector<Pattern> out;
  out.reserve(patterns_with_losses_count());
  pattern_mask_.for_each([&out](Pattern p) { out.push_back(p); });
  return out;
}

Pattern LostBuffer::pattern_with_losses_at(std::size_t k) const {
  return pattern_mask_.nth(k);
}

std::vector<NodeId> LostBuffer::oldest_sources(
    std::size_t max_sources, const std::function<bool(NodeId)>& pred) const {
  std::vector<NodeId> out;
  for (const Node& node : order_) {  // order_ is oldest first
    const NodeId s = node.info.source;
    if (std::find(out.begin(), out.end(), s) != out.end()) continue;
    if (!pred(s)) continue;
    out.push_back(s);
    if (out.size() >= max_sources) break;
  }
  return out;
}

std::vector<NodeId> LostBuffer::sources_with_losses() const {
  std::vector<NodeId> out;
  for (const Node& node : order_) out.push_back(node.info.source);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace epicast
