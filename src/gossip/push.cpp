#include "epicast/gossip/push.hpp"

#include <utility>

#include "epicast/common/assert.hpp"

namespace epicast {

bool PushProtocol::on_round() {
  const bool activity = saw_request_since_round_;
  saw_request_since_round_ = false;

  // p is drawn from the whole table: patterns the dispatcher subscribes to
  // *or* routes for. This widens dissemination and speeds up convergence
  // (§III-B).
  const std::size_t n_patterns = d_.table().known_pattern_count();
  if (n_patterns == 0) return activity;
  const Pattern p =
      d_.table().known_pattern_at(d_.rng().next_below(n_patterns));

  cache_.ids_matching_into(p, cfg_.max_digest_entries, ids_scratch_);
  if (ids_scratch_.empty()) return activity;  // nothing worth advertising

  d_.table().route_targets_into(p, NodeId::invalid(), targets_scratch_);
  fanout_into(targets_scratch_, true, fanout_scratch_);
  if (!fanout_scratch_.empty()) {
    // One immutable digest shared by every target this round.
    const MessagePtr digest =
        msgs_.push_digest(d_.id(), p, ids_scratch_, /*hops=*/0);
    for (NodeId to : fanout_scratch_) {
      send_digest(to, digest, /*originated=*/true);
    }
  }
  // Proactive sends are not "activity": only observed demand (requests)
  // keeps the adaptive interval at its minimum.
  return activity;
}

void PushProtocol::handle_digest(NodeId from, const GossipMessage& msg) {
  if (msg.kind() != GossipKind::PushDigest) {
    // Heterogeneous deployment tolerance: a neighbour running a pull
    // variant asked for missing events. Serve what the cache holds; the
    // pull node's own gossip handles any remainder.
    switch (msg.kind()) {
      case GossipKind::SubscriberPullDigest:
        (void)serve_from_cache(
            msg.gossiper(),
            static_cast<const SubscriberPullDigestMessage&>(msg).wanted());
        return;
      case GossipKind::PublisherPullDigest:
        (void)serve_from_cache(
            msg.gossiper(),
            static_cast<const PublisherPullDigestMessage&>(msg).wanted());
        return;
      case GossipKind::RandomPullDigest:
        (void)serve_from_cache(
            msg.gossiper(),
            static_cast<const RandomPullDigestMessage&>(msg).wanted());
        return;
      default:
        EPICAST_UNREACHABLE("unexpected gossip kind in push");
    }
  }
  const auto& digest = static_cast<const PushDigestMessage&>(msg);
  const Pattern p = digest.pattern();

  // A copy of this digest already arrived along another route path (cyclic
  // overlays only — see digest_duplicate()): requests went out then.
  const EventId& head = digest.ids().front();
  if (digest_duplicate(mix_digest_key(
          (static_cast<std::uint64_t>(digest.gossiper().value()) << 34) |
              (static_cast<std::uint64_t>(p.value()) << 2) | 1u,
          (static_cast<std::uint64_t>(digest.ids().size()) << 48) ^
              (static_cast<std::uint64_t>(head.source.value()) << 24) ^
              head.source_seq))) {
    return;
  }

  // Only dispatchers actually subscribed to p compare the digest against
  // their own event history (§III-B).
  if (d_.table().has_local(p) && digest.gossiper() != d_.id()) {
    std::vector<EventId> missing;
    for (const EventId& id : digest.ids()) {
      if (!d_.has_seen(id)) missing.push_back(id);
    }
    if (!missing.empty()) send_request(digest.gossiper(), std::move(missing));
  }

  // Propagate along the tree like an event matching p, with P_forward
  // subsetting at every hop.
  if (digest.hops() + 1 > cfg_.max_hops) return;
  d_.table().route_targets_into(p, from, targets_scratch_);
  fanout_into(targets_scratch_, true, fanout_scratch_);
  if (!fanout_scratch_.empty()) {
    const MessagePtr fwd = msgs_.push_digest(digest.gossiper(), p,
                                             digest.ids(), digest.hops() + 1);
    for (NodeId to : fanout_scratch_) {
      send_digest(to, fwd, /*originated=*/false);
    }
  }
}

void PushProtocol::handle_request(NodeId from,
                                  const RecoveryRequestMessage& msg) {
  saw_request_since_round_ = true;
  GossipProtocolBase::handle_request(from, msg);
}

}  // namespace epicast
