#include "epicast/gossip/push.hpp"

#include <utility>

#include "epicast/common/assert.hpp"

namespace epicast {

bool PushProtocol::on_round() {
  const bool activity = saw_request_since_round_;
  saw_request_since_round_ = false;

  // p is drawn from the whole table: patterns the dispatcher subscribes to
  // *or* routes for. This widens dissemination and speeds up convergence
  // (§III-B).
  const std::vector<Pattern> patterns = d_.table().known_patterns();
  if (patterns.empty()) return activity;
  const Pattern p = patterns[d_.rng().next_below(patterns.size())];

  std::vector<EventId> ids = cache_.ids_matching(p, cfg_.max_digest_entries);
  if (ids.empty()) return activity;  // nothing worth advertising

  const std::vector<NodeId> targets =
      fanout(d_.table().route_targets(p, NodeId::invalid()), true);
  for (NodeId to : targets) {
    send_digest(to, msgs_.push_digest(d_.id(), p, ids, /*hops=*/0),
                /*originated=*/true);
  }
  // Proactive sends are not "activity": only observed demand (requests)
  // keeps the adaptive interval at its minimum.
  return activity;
}

void PushProtocol::handle_digest(NodeId from, const GossipMessage& msg) {
  if (msg.kind() != GossipKind::PushDigest) {
    // Heterogeneous deployment tolerance: a neighbour running a pull
    // variant asked for missing events. Serve what the cache holds; the
    // pull node's own gossip handles any remainder.
    switch (msg.kind()) {
      case GossipKind::SubscriberPullDigest:
        (void)serve_from_cache(
            msg.gossiper(),
            static_cast<const SubscriberPullDigestMessage&>(msg).wanted());
        return;
      case GossipKind::PublisherPullDigest:
        (void)serve_from_cache(
            msg.gossiper(),
            static_cast<const PublisherPullDigestMessage&>(msg).wanted());
        return;
      case GossipKind::RandomPullDigest:
        (void)serve_from_cache(
            msg.gossiper(),
            static_cast<const RandomPullDigestMessage&>(msg).wanted());
        return;
      default:
        EPICAST_UNREACHABLE("unexpected gossip kind in push");
    }
  }
  const auto& digest = static_cast<const PushDigestMessage&>(msg);
  const Pattern p = digest.pattern();

  // Only dispatchers actually subscribed to p compare the digest against
  // their own event history (§III-B).
  if (d_.table().has_local(p) && digest.gossiper() != d_.id()) {
    std::vector<EventId> missing;
    for (const EventId& id : digest.ids()) {
      if (!d_.has_seen(id)) missing.push_back(id);
    }
    if (!missing.empty()) send_request(digest.gossiper(), std::move(missing));
  }

  // Propagate along the tree like an event matching p, with P_forward
  // subsetting at every hop.
  if (digest.hops() + 1 > cfg_.max_hops) return;
  for (NodeId to : fanout(d_.table().route_targets(p, from), true)) {
    send_digest(to,
                msgs_.push_digest(digest.gossiper(), p, digest.ids(),
                                  digest.hops() + 1),
                /*originated=*/false);
  }
}

void PushProtocol::handle_request(NodeId from,
                                  const RecoveryRequestMessage& msg) {
  saw_request_since_round_ = true;
  GossipProtocolBase::handle_request(from, msg);
}

}  // namespace epicast
