#include "epicast/gossip/pull_base.hpp"

#include <algorithm>
#include <utility>

#include "epicast/common/assert.hpp"

namespace epicast {

PullProtocolBase::PullProtocolBase(Dispatcher& dispatcher, GossipConfig config)
    : GossipProtocolBase(dispatcher, config),
      detector_(config.max_gap_report),
      lost_(config.lost_capacity, config.lost_entry_ttl) {}

void PullProtocolBase::on_event(const EventPtr& event,
                                const EventContext& ctx) {
  GossipProtocolBase::on_event(event, ctx);  // caching

  const NodeId source = event->source();
  for (const PatternSeq& ps : event->patterns()) {
    // Whatever way the event arrived, it is no longer lost.
    lost_.remove(LostEntryInfo{source, ps.pattern, ps.seq});

    // Gap detection runs only on locally subscribed patterns: those are the
    // streams this dispatcher is guaranteed to receive in full (§III-B).
    if (!d_.table().has_local(ps.pattern)) continue;
    for (SeqNo missing : detector_.observe(source, ps.pattern, ps.seq)) {
      lost_.add(LostEntryInfo{source, ps.pattern, missing},
                d_.now());
    }
  }

  // Remember the way back to the publisher (publisher-based pull). Routes
  // come only from normally-routed events; recoveries carry none.
  if (!ctx.recovered && !ctx.route.empty()) {
    routes_.update(source, ctx.route);
  }
}

void PullProtocolBase::preload_cache(const std::vector<EventPtr>& events) {
  GossipProtocolBase::preload_cache(events);
  for (const EventPtr& e : events) {
    for (const PatternSeq& ps : e->patterns()) {
      detector_.seed(e->source(), ps.pattern, ps.seq);
    }
  }
}

void PullProtocolBase::on_stream_marks(const std::vector<StreamMark>& marks) {
  for (const StreamMark& m : marks) {
    if (!d_.table().has_local(m.pattern)) continue;
    const std::uint64_t high =
        detector_.high_watermark(m.source, m.pattern).value();
    if (m.seq.value() <= high) continue;
    // Everything in (high, mark] exists somewhere and never arrived here —
    // including the mark itself (unlike a live observation). The gap
    // detector's first-contact rule does not apply: sequence numbers start
    // at 1 by construction, so a mark for a stream never heard from (its
    // head was lost, or this node cold-restarted) pins down the missing
    // range exactly. Clamp like the gap detector so a long outage cannot
    // flood the Lost buffer.
    std::uint64_t from = high + 1;
    const std::uint64_t to = m.seq.value();  // inclusive
    if (to - high > cfg_.max_gap_report) from = to - cfg_.max_gap_report + 1;
    for (std::uint64_t s = from; s <= to; ++s) {
      lost_.add(LostEntryInfo{m.source, m.pattern, SeqNo{s}}, d_.now());
    }
    detector_.seed(m.source, m.pattern, m.seq);
  }
}

void PullProtocolBase::on_restart(fault::RestartPolicy policy) {
  GossipProtocolBase::on_restart(policy);
  if (policy == fault::RestartPolicy::Cold) {
    detector_.reset();
    lost_.clear();
    routes_.clear();
  }
}

void PullProtocolBase::watch_digest(const std::vector<NodeId>& targets,
                                    const std::vector<LostEntryInfo>& wanted) {
  const std::uint64_t epoch = restart_epoch();
  d_.runtime().after(
      cfg_.request_timeout, [this, targets, wanted, epoch]() {
        if (epoch != restart_epoch() || !active()) return;
        for (const LostEntryInfo& w : wanted) {
          if (!lost_.contains(w)) return;  // the exchange recovered something
        }
        // Every entry is still missing: the digest (or its replies) went
        // nowhere. One timeout for the exchange; every target is suspect.
        ++stats_.request_timeouts;
        for (NodeId t : targets) note_peer_timeout(t);
      });
}

bool PullProtocolBase::round_subscriber() {
  lost_.expire(d_.now());
  // The pull gossiper draws p from subscriptions issued *locally* — the
  // goal is retrieving events relevant to itself, not dissemination
  // (§III-B). Lost entries only ever involve local patterns, so the
  // buffer's pattern set is exactly that population.
  const std::size_t n_patterns = lost_.patterns_with_losses_count();
  if (n_patterns == 0) return false;
  const Pattern p =
      lost_.pattern_with_losses_at(d_.rng().next_below(n_patterns));

  lost_.entries_for_pattern_into(p, cfg_.max_digest_entries, wanted_scratch_);
  EPICAST_ASSERT(!wanted_scratch_.empty());

  d_.table().route_targets_into(p, NodeId::invalid(), targets_scratch_);
  fanout_into(targets_scratch_, true, fanout_scratch_);
  if (retry_hardening()) prune_suspects(fanout_scratch_);
  if (!fanout_scratch_.empty()) {
    // One immutable digest shared by every target this round.
    const MessagePtr digest =
        msgs_.subscriber_pull_digest(d_.id(), p, wanted_scratch_, /*hops=*/0);
    for (NodeId to : fanout_scratch_) {
      send_digest(to, digest, /*originated=*/true);
    }
    if (retry_hardening()) watch_digest(fanout_scratch_, wanted_scratch_);
  }
  return true;
}

bool PullProtocolBase::round_publisher() {
  lost_.expire(d_.now());
  // Candidate sources: losses we can actually steer towards — a route back
  // to the publisher must be known. Oldest pending loss first, so no source
  // starves while the buffer churns (cf. GossipConfig's
  // publisher_sources_per_round rationale).
  const std::vector<NodeId> sources = lost_.oldest_sources(
      std::max<std::size_t>(1, cfg_.publisher_sources_per_round),
      [this](NodeId s) { return routes_.knows(s); });
  if (sources.empty()) return false;

  for (NodeId source : sources) {
    std::vector<LostEntryInfo> wanted =
        lost_.entries_for_source(source, cfg_.max_digest_entries);
    EPICAST_ASSERT(!wanted.empty());

    // Visit only the first publisher_route_hops of the stored route (the
    // part most likely still valid and most likely to short-circuit), then
    // go straight for the publisher.
    std::vector<NodeId> route = routes_.route_to(source);
    if (cfg_.publisher_route_hops > 0 &&
        route.size() > cfg_.publisher_route_hops + 1) {
      route.erase(route.begin() +
                      static_cast<std::ptrdiff_t>(cfg_.publisher_route_hops),
                  route.end() - 1);
    }
    forward_towards_publisher(d_.id(), source, std::move(wanted),
                              std::move(route), /*originated=*/true);
  }
  return true;
}

void PullProtocolBase::forward_towards_publisher(
    NodeId gossiper, NodeId source, std::vector<LostEntryInfo> wanted,
    std::vector<NodeId> route, bool originated) {
  // Drop leading hops equal to self (defensive: routes never include the
  // local node, but a stale route could).
  while (!route.empty() && route.front() == d_.id()) {
    route.erase(route.begin());
  }
  if (route.empty()) return;  // reached the recorded end of the route

  NodeId next = route.front();
  route.erase(route.begin());
  // Crash-aware re-selection: hop over next hops the digest layer has seen
  // go silent, as long as further hops remain — the final hop (the
  // publisher itself) is always attempted.
  while (retry_hardening() && peer_suspect(next) && !route.empty()) {
    next = route.front();
    route.erase(route.begin());
  }
  MessagePtr msg = msgs_.publisher_pull_digest(gossiper, source,
                                               std::move(wanted),
                                               std::move(route));

  if (d_.has_link_to(next)) {
    send_digest(next, std::move(msg), originated);
  } else {
    // The recorded route predates a reconfiguration; the next hop is no
    // longer adjacent. Fall back to the out-of-band channel so the digest
    // still makes progress towards the publisher.
    if (originated) {
      ++stats_.digests_originated;
    } else {
      ++stats_.digests_forwarded;
    }
    d_.send_direct(next, std::move(msg));
  }
}

void PullProtocolBase::handle_digest(NodeId from, const GossipMessage& msg) {
  switch (msg.kind()) {
    case GossipKind::SubscriberPullDigest:
      handle_subscriber_digest(
          from, static_cast<const SubscriberPullDigestMessage&>(msg));
      return;
    case GossipKind::PublisherPullDigest:
      handle_publisher_digest(
          static_cast<const PublisherPullDigestMessage&>(msg));
      return;
    case GossipKind::RandomPullDigest:
      handle_random_digest(from,
                           static_cast<const RandomPullDigestMessage&>(msg));
      return;
    case GossipKind::PushDigest: {
      // Heterogeneous deployment tolerance: a neighbour running push
      // advertised its cache. Behave like a push receiver — request what we
      // are subscribed to and missing — but do not forward (we cannot know
      // push's fan-out discipline is wanted here).
      const auto& digest = static_cast<const PushDigestMessage&>(msg);
      if (d_.table().has_local(digest.pattern()) &&
          digest.gossiper() != d_.id()) {
        std::vector<EventId> missing;
        for (const EventId& id : digest.ids()) {
          if (!d_.has_seen(id)) missing.push_back(id);
        }
        if (!missing.empty()) {
          send_request(digest.gossiper(), std::move(missing));
        }
      }
      return;
    }
    default:
      EPICAST_UNREACHABLE("pull received a foreign digest");
  }
}

void PullProtocolBase::handle_subscriber_digest(
    NodeId from, const SubscriberPullDigestMessage& msg) {
  if (msg.gossiper() == d_.id()) return;  // defensive; trees have no cycles
  // A copy of this digest already arrived along another route path (cyclic
  // overlays only — see digest_duplicate()): it was served and forwarded
  // then.
  const LostEntryInfo& head = msg.wanted().front();
  if (digest_duplicate(mix_digest_key(
          (static_cast<std::uint64_t>(msg.gossiper().value()) << 34) |
              (static_cast<std::uint64_t>(msg.pattern().value()) << 2) | 2u,
          (static_cast<std::uint64_t>(msg.wanted().size()) << 48) ^
              (static_cast<std::uint64_t>(head.source.value()) << 24) ^
              (static_cast<std::uint64_t>(head.pattern.value()) << 16) ^
              head.seq.value()))) {
    return;
  }
  // This dispatcher may not subscribe to msg.pattern() at all — it can sit
  // on the route and still own the events because they also match one of
  // its own patterns p' != p (§III-B).
  std::vector<LostEntryInfo> remaining =
      serve_from_cache(msg.gossiper(), msg.wanted());
  if (remaining.empty()) return;  // fully short-circuited
  if (msg.hops() + 1 > cfg_.max_hops) return;
  d_.table().route_targets_into(msg.pattern(), from, targets_scratch_);
  fanout_into(targets_scratch_, true, fanout_scratch_);
  if (retry_hardening()) prune_suspects(fanout_scratch_);
  if (!fanout_scratch_.empty()) {
    const MessagePtr fwd = msgs_.subscriber_pull_digest(
        msg.gossiper(), msg.pattern(), std::move(remaining), msg.hops() + 1);
    for (NodeId to : fanout_scratch_) {
      send_digest(to, fwd, /*originated=*/false);
    }
  }
}

void PullProtocolBase::handle_publisher_digest(
    const PublisherPullDigestMessage& msg) {
  if (msg.gossiper() == d_.id()) return;
  std::vector<LostEntryInfo> remaining =
      serve_from_cache(msg.gossiper(), msg.wanted());
  if (remaining.empty()) return;
  forward_towards_publisher(msg.gossiper(), msg.source(),
                            std::move(remaining), msg.route(),
                            /*originated=*/false);
}

void PullProtocolBase::handle_random_digest(
    NodeId from, const RandomPullDigestMessage& msg) {
  if (msg.gossiper() == d_.id()) return;
  // See handle_subscriber_digest: drop route-path duplicates.
  const LostEntryInfo& rhead = msg.wanted().front();
  if (digest_duplicate(mix_digest_key(
          (static_cast<std::uint64_t>(msg.gossiper().value()) << 34) | 3u,
          (static_cast<std::uint64_t>(msg.wanted().size()) << 48) ^
              (static_cast<std::uint64_t>(rhead.source.value()) << 24) ^
              (static_cast<std::uint64_t>(rhead.pattern.value()) << 16) ^
              rhead.seq.value()))) {
    return;
  }
  std::vector<LostEntryInfo> remaining =
      serve_from_cache(msg.gossiper(), msg.wanted());
  if (remaining.empty()) return;
  if (msg.hops() + 1 > cfg_.max_hops) return;
  targets_scratch_.clear();
  for (NodeId n : d_.neighbors()) {
    if (n != from) targets_scratch_.push_back(n);
  }
  fanout_into(targets_scratch_, false, fanout_scratch_);
  if (!fanout_scratch_.empty()) {
    const MessagePtr fwd = msgs_.random_pull_digest(
        msg.gossiper(), std::move(remaining), msg.hops() + 1);
    for (NodeId to : fanout_scratch_) {
      send_digest(to, fwd, /*originated=*/false);
    }
  }
}

}  // namespace epicast
