#include "epicast/gossip/loss_detector.hpp"

#include <algorithm>

#include "epicast/common/assert.hpp"

namespace epicast {

LossDetector::LossDetector(std::uint64_t max_gap_report)
    : max_gap_report_(max_gap_report) {
  EPICAST_ASSERT(max_gap_report >= 1);
}

std::vector<SeqNo> LossDetector::observe(NodeId source, Pattern pattern,
                                         SeqNo seq) {
  EPICAST_ASSERT_MSG(seq.value() >= 1, "sequence numbers start at 1");
  std::vector<SeqNo> missing;

  auto [it, first_contact] = high_.try_emplace(Key{source, pattern}, 0);
  std::uint64_t& high = it->second;
  if (first_contact) {
    // Expectation starts here; earlier history is unknowable (§III-B).
    high = seq.value();
    return missing;
  }
  if (seq.value() <= high) return missing;  // old or recovered copy

  const std::uint64_t gap_begin = high + 1;
  const std::uint64_t gap_end = seq.value();  // exclusive
  std::uint64_t from = gap_begin;
  if (gap_end - gap_begin > max_gap_report_) {
    from = gap_end - max_gap_report_;  // clamp: report newest only
  }
  for (std::uint64_t s = from; s < gap_end; ++s) {
    missing.emplace_back(s);
  }
  gaps_detected_ += missing.size();
  high = seq.value();
  return missing;
}

void LossDetector::seed(NodeId source, Pattern pattern, SeqNo seq) {
  auto [it, first_contact] = high_.try_emplace(Key{source, pattern}, 0);
  it->second = std::max(it->second, seq.value());
}

SeqNo LossDetector::high_watermark(NodeId source, Pattern pattern) const {
  auto it = high_.find(Key{source, pattern});
  return it == high_.end() ? SeqNo{0} : SeqNo{it->second};
}

}  // namespace epicast
