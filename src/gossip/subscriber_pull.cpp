// Intentionally almost empty: SubscriberPullProtocol is fully expressed via
// PullProtocolBase (see pull_base.cpp). This translation unit anchors the
// class for the build system.
#include "epicast/gossip/subscriber_pull.hpp"
