#include "epicast/gossip/combined_pull.hpp"

namespace epicast {

bool CombinedPullProtocol::on_round() {
  // Which steering to use this round is decided probabilistically via
  // P_source (§IV-A). If the chosen variant has nothing to do (e.g., no
  // route known back to any relevant publisher), fall through to the other
  // rather than wasting the round.
  if (d_.rng().chance(cfg_.source_probability)) {
    return round_publisher() || round_subscriber();
  }
  return round_subscriber() || round_publisher();
}

}  // namespace epicast
