// Intentionally almost empty: PublisherPullProtocol is fully expressed via
// PullProtocolBase (see pull_base.cpp). This translation unit anchors the
// class for the build system.
#include "epicast/gossip/publisher_pull.hpp"
