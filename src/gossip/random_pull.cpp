#include "epicast/gossip/random_pull.hpp"

#include <utility>

namespace epicast {

bool RandomPullProtocol::on_round() {
  lost_.expire(d_.now());
  if (lost_.empty()) return false;

  // Same per-round scope as the steered pulls — losses of one randomly
  // chosen pattern — so the only difference under test is the routing.
  const Pattern p = lost_.pattern_with_losses_at(
      d_.rng().next_below(lost_.patterns_with_losses_count()));
  lost_.entries_for_pattern_into(p, cfg_.max_digest_entries, wanted_scratch_);
  fanout_into(d_.neighbors(), false, fanout_scratch_);
  if (!fanout_scratch_.empty()) {
    const MessagePtr digest =
        msgs_.random_pull_digest(d_.id(), wanted_scratch_, /*hops=*/0);
    for (NodeId to : fanout_scratch_) {
      send_digest(to, digest, /*originated=*/true);
    }
  }
  return true;
}

}  // namespace epicast
