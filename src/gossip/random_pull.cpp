#include "epicast/gossip/random_pull.hpp"

#include <utility>

namespace epicast {

bool RandomPullProtocol::on_round() {
  lost_.expire(d_.simulator().now());
  if (lost_.empty()) return false;

  // Same per-round scope as the steered pulls — losses of one randomly
  // chosen pattern — so the only difference under test is the routing.
  const std::vector<Pattern> patterns = lost_.patterns_with_losses();
  const Pattern p = patterns[d_.rng().next_below(patterns.size())];
  std::vector<LostEntryInfo> wanted =
      lost_.entries_for_pattern(p, cfg_.max_digest_entries);
  for (NodeId to : fanout(d_.neighbors(), false)) {
    send_digest(to, msgs_.random_pull_digest(d_.id(), wanted, /*hops=*/0),
                /*originated=*/true);
  }
  return true;
}

}  // namespace epicast
