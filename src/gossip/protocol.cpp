#include "epicast/gossip/protocol.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "epicast/common/assert.hpp"
#include "epicast/gossip/combined_pull.hpp"
#include "epicast/gossip/publisher_pull.hpp"
#include "epicast/gossip/push.hpp"
#include "epicast/gossip/random_pull.hpp"
#include "epicast/gossip/subscriber_pull.hpp"

namespace epicast {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::NoRecovery: return "no-recovery";
    case Algorithm::Push: return "push";
    case Algorithm::SubscriberPull: return "subscriber-pull";
    case Algorithm::PublisherPull: return "publisher-pull";
    case Algorithm::CombinedPull: return "combined-pull";
    case Algorithm::RandomPull: return "random-pull";
  }
  return "?";
}

const char* to_string(CachePolicy p) {
  switch (p) {
    case CachePolicy::Fifo: return "fifo";
    case CachePolicy::Lru: return "lru";
    case CachePolicy::Random: return "random";
  }
  return "?";
}

GossipProtocolBase::GossipProtocolBase(Dispatcher& dispatcher,
                                       GossipConfig config)
    : d_(dispatcher),
      cfg_(config),
      cache_(config.buffer_size, config.cache_policy, dispatcher.rng().fork()),
      msgs_(dispatcher.id(), config.gossip_message_bytes,
            &dispatcher.pool()),
      prof_(dispatcher.profiler()),
      adaptive_(config.adaptive, config.interval) {
  cache_.set_profiler(&prof_);
  EPICAST_ASSERT(cfg_.interval > Duration::zero());
  EPICAST_ASSERT(cfg_.forward_probability >= 0.0 &&
                 cfg_.forward_probability <= 1.0);
  EPICAST_ASSERT(cfg_.source_probability >= 0.0 &&
                 cfg_.source_probability <= 1.0);
}

void GossipProtocolBase::start() {
  EPICAST_ASSERT_MSG(!timer_.running(), "protocol already started");
  const Duration first =
      cfg_.start_jitter
          ? Duration::seconds(d_.rng().uniform(0.0, cfg_.interval.to_seconds()))
          : cfg_.interval;
  timer_ = d_.runtime().every(first, current_interval(),
                              [this]() { run_round(); });
}

void GossipProtocolBase::stop() { timer_.stop(); }

void GossipProtocolBase::on_restart(fault::RestartPolicy policy) {
  peer_timeouts_.clear();
  if (policy == fault::RestartPolicy::Cold) {
    cache_.clear();
    digest_marks_.fill({});
    stream_marks_.clear();
    ++restart_epoch_;
  }
}

std::uint64_t GossipProtocolBase::mix_digest_key(std::uint64_t a,
                                                 std::uint64_t b) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ull ^ b;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

bool GossipProtocolBase::digest_duplicate(std::uint64_t key) {
  const SimTime now = d_.now();
  DigestMark& slot = digest_marks_[key & (digest_marks_.size() - 1)];
  const bool dup = slot.key == key && now - slot.at <= cfg_.interval * 0.5;
  slot.key = key;
  slot.at = now;
  return dup;
}

bool GossipProtocolBase::peer_suspect(NodeId peer) const {
  const auto it = peer_timeouts_.find(peer.value());
  return it != peer_timeouts_.end() && it->second >= kSuspectAfterTimeouts;
}

void GossipProtocolBase::note_peer_alive(NodeId peer) {
  if (!peer_timeouts_.empty()) peer_timeouts_.erase(peer.value());
}

void GossipProtocolBase::note_peer_timeout(NodeId peer) {
  ++peer_timeouts_[peer.value()];
}

void GossipProtocolBase::on_peer_alive(NodeId peer) { note_peer_alive(peer); }

void GossipProtocolBase::on_peer_suspected(NodeId peer) {
  // Jump straight to the suspicion threshold: the failure detector already
  // applied its own strike policy before telling us.
  std::uint32_t& strikes = peer_timeouts_[peer.value()];
  strikes = std::max(strikes, kSuspectAfterTimeouts);
}

void GossipProtocolBase::preload_cache(const std::vector<EventPtr>& events) {
  for (const EventPtr& e : events) {
    cache_.insert(e);
    note_stream_marks(*e);
  }
}

void GossipProtocolBase::note_stream_marks(const EventData& event) {
  for (const PatternSeq& ps : event.patterns()) {
    std::uint64_t& high =
        stream_marks_[{event.source().value(), ps.pattern.value()}];
    high = std::max(high, ps.seq.value());
  }
}

std::size_t GossipProtocolBase::stream_marks_into(
    std::size_t cursor, std::size_t max_entries,
    std::vector<StreamMark>& out) const {
  const std::size_t n = stream_marks_.size();
  if (n == 0 || max_entries == 0) return 0;
  cursor %= n;
  auto it = stream_marks_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(cursor));
  for (std::size_t i = 0; i < std::min(max_entries, n); ++i) {
    out.push_back(StreamMark{NodeId{it->first.first},
                             Pattern{it->first.second}, SeqNo{it->second}});
    if (++it == stream_marks_.end()) it = stream_marks_.begin();
    ++cursor;
  }
  return cursor % n;
}

void GossipProtocolBase::prune_suspects(std::vector<NodeId>& targets) const {
  bool any_healthy = false;
  for (NodeId n : targets) {
    if (!peer_suspect(n)) {
      any_healthy = true;
      break;
    }
  }
  if (!any_healthy) return;  // no better choice; keep the set as picked
  std::erase_if(targets, [this](NodeId n) { return peer_suspect(n); });
}

void GossipProtocolBase::run_round() {
  HotpathProfiler::Scope scope(prof_, HotPhase::GossipRound);
  ++stats_.rounds;
  const bool had_activity = on_round();
  if (!had_activity) ++stats_.rounds_skipped;
  if (adaptive_.enabled()) {
    timer_.set_interval(adaptive_.next(had_activity));
  }
}

void GossipProtocolBase::on_event(const EventPtr& event,
                                  const EventContext& ctx) {
  note_stream_marks(*event);
  if (!responsible_for(*event, ctx.local_publish)) return;
  // Publishers always cache their own events (publisher-based pull relies
  // on the source as the recovery backstop, §III-B); subscribers are
  // subject to the admission probability.
  if (!ctx.local_publish &&
      !d_.rng().chance(cfg_.cache_admission_probability)) {
    return;
  }
  cache_.insert(event);
}

bool GossipProtocolBase::responsible_for(const EventData& event,
                                         bool local_publish) const {
  return local_publish || d_.table().matches_local(event);
}

void GossipProtocolBase::on_gossip(NodeId from, const MessagePtr& msg) {
  HotpathProfiler::Scope scope(prof_, HotPhase::GossipHandle);
  if (retry_hardening()) note_peer_alive(from);
  const auto& gmsg = static_cast<const GossipMessage&>(*msg);
  switch (gmsg.kind()) {
    case GossipKind::Request:
      handle_request(from, static_cast<const RecoveryRequestMessage&>(gmsg));
      return;
    case GossipKind::Reply:
      handle_reply(static_cast<const RecoveryReplyMessage&>(gmsg));
      return;
    default:
      handle_digest(from, gmsg);
      return;
  }
}

void GossipProtocolBase::handle_request(NodeId from,
                                        const RecoveryRequestMessage& msg) {
  std::vector<EventPtr> found;
  for (const EventId& id : msg.ids()) {
    if (EventPtr event = cache_.get(id)) found.push_back(std::move(event));
  }
  if (!found.empty()) {
    stats_.events_served += found.size();
    send_reply(from, std::move(found));
  }
}

std::vector<LostEntryInfo> GossipProtocolBase::serve_from_cache(
    NodeId gossiper, const std::vector<LostEntryInfo>& wanted) {
  std::vector<EventPtr> found;
  std::vector<LostEntryInfo> remaining;
  for (const LostEntryInfo& w : wanted) {
    if (EventPtr event = cache_.find(w.source, w.pattern, w.seq)) {
      found.push_back(std::move(event));
    } else {
      remaining.push_back(w);
    }
  }
  if (!found.empty()) {
    // The same event can satisfy several wanted entries (it matches several
    // patterns); send each copy once.
    std::sort(found.begin(), found.end(),
              [](const EventPtr& a, const EventPtr& b) {
                return a->id() < b->id();
              });
    found.erase(std::unique(found.begin(), found.end(),
                            [](const EventPtr& a, const EventPtr& b) {
                              return a->id() == b->id();
                            }),
                found.end());
    stats_.events_served += found.size();
    send_reply(gossiper, std::move(found));
  }
  return remaining;
}

void GossipProtocolBase::handle_reply(const RecoveryReplyMessage& msg) {
  for (const EventPtr& event : msg.events()) {
    if (d_.accept_recovered(event)) {
      ++stats_.events_recovered;
    } else {
      ++stats_.reply_duplicates;
    }
  }
}

std::vector<NodeId> GossipProtocolBase::fanout(std::vector<NodeId> candidates,
                                               bool ensure_progress) {
  std::vector<NodeId> out;
  fanout_into(candidates, ensure_progress, out);
  return out;
}

void GossipProtocolBase::fanout_into(std::span<const NodeId> candidates,
                                     bool ensure_progress,
                                     std::vector<NodeId>& out) {
  out.clear();
  out.reserve(candidates.size());
  for (NodeId n : candidates) {
    if (d_.rng().chance(cfg_.forward_probability)) out.push_back(n);
  }
  if (out.empty() && ensure_progress && !candidates.empty()) {
    out.push_back(candidates[d_.rng().next_below(candidates.size())]);
  }
}

void GossipProtocolBase::send_digest(NodeId to, MessagePtr msg,
                                     bool originated) {
  if (originated) {
    ++stats_.digests_originated;
  } else {
    ++stats_.digests_forwarded;
  }
  d_.send_overlay(to, std::move(msg));
}

void GossipProtocolBase::send_request(NodeId to, std::vector<EventId> ids) {
  EPICAST_ASSERT(!ids.empty());
  ++stats_.requests_sent;
  if (retry_hardening()) track_request(to, ids, /*attempt=*/0);
  d_.send_direct(to, msgs_.request(std::move(ids)));
}

void GossipProtocolBase::track_request(NodeId to, std::vector<EventId> ids,
                                       std::uint32_t attempt) {
  double scale = 1.0;
  for (std::uint32_t i = 0; i < attempt; ++i) scale *= cfg_.request_backoff;
  const Duration wait =
      Duration::seconds(cfg_.request_timeout.to_seconds() * scale);
  const std::uint64_t epoch = restart_epoch_;
  d_.runtime().after(
      wait, [this, to, ids = std::move(ids), attempt, epoch]() {
        // Stale deadline: the node cold-restarted (epoch moved on) or is
        // currently down / stopped — a dead node neither counts timeouts
        // nor retries.
        if (epoch != restart_epoch_ || !active()) return;
        std::vector<EventId> missing;
        for (const EventId& id : ids) {
          if (!d_.has_seen(id)) missing.push_back(id);
        }
        if (missing.empty()) return;  // everything arrived in time
        ++stats_.request_timeouts;
        note_peer_timeout(to);
        if (attempt >= cfg_.request_max_retries) {
          ++stats_.requests_abandoned;
          return;
        }
        ++stats_.request_retries;
        ++stats_.requests_sent;
        track_request(to, missing, attempt + 1);
        d_.send_direct(to, msgs_.request(std::move(missing)));
      });
}

void GossipProtocolBase::send_reply(NodeId to, std::vector<EventPtr> events) {
  EPICAST_ASSERT(!events.empty());
  ++stats_.replies_sent;
  d_.send_direct(to, msgs_.reply(std::move(events)));
}

std::unique_ptr<RecoveryProtocol> make_recovery(Algorithm algorithm,
                                                Dispatcher& dispatcher,
                                                const GossipConfig& config) {
  switch (algorithm) {
    case Algorithm::NoRecovery:
      return std::make_unique<NoRecoveryProtocol>();
    case Algorithm::Push:
      return std::make_unique<PushProtocol>(dispatcher, config);
    case Algorithm::SubscriberPull:
      return std::make_unique<SubscriberPullProtocol>(dispatcher, config);
    case Algorithm::PublisherPull:
      return std::make_unique<PublisherPullProtocol>(dispatcher, config);
    case Algorithm::CombinedPull:
      return std::make_unique<CombinedPullProtocol>(dispatcher, config);
    case Algorithm::RandomPull:
      return std::make_unique<RandomPullProtocol>(dispatcher, config);
  }
  EPICAST_UNREACHABLE("unknown algorithm");
}

bool algorithm_needs_routes(Algorithm algorithm) {
  return algorithm == Algorithm::PublisherPull ||
         algorithm == Algorithm::CombinedPull;
}

}  // namespace epicast
