#include "epicast/gossip/routes_buffer.hpp"

#include <algorithm>

#include "epicast/common/assert.hpp"

namespace epicast {

void RoutesBuffer::update(NodeId source,
                          const std::vector<NodeId>& forward_route) {
  if (forward_route.empty()) return;
  EPICAST_ASSERT_MSG(forward_route.front() == source,
                     "recorded route must start at the publisher");
  std::vector<NodeId> back(forward_route.rbegin(), forward_route.rend());
  routes_[source] = std::move(back);
}

const std::vector<NodeId>& RoutesBuffer::route_to(NodeId source) const {
  auto it = routes_.find(source);
  return it == routes_.end() ? empty_ : it->second;
}

std::vector<NodeId> RoutesBuffer::known_sources() const {
  std::vector<NodeId> out;
  out.reserve(routes_.size());
  for (const auto& [source, route] : routes_) out.push_back(source);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace epicast
