#include "epicast/gossip/event_cache.hpp"

#include <algorithm>

#include "epicast/common/assert.hpp"

namespace epicast {

std::size_t EventCache::SpKeyHash::operator()(const SpKey& k) const noexcept {
  std::uint64_t x = (static_cast<std::uint64_t>(k.source.value()) << 32) ^
                    k.pattern.value();
  x ^= k.seq.value() + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 29;
  return static_cast<std::size_t>(x);
}

EventCache::EventCache(std::size_t capacity, CachePolicy policy, Rng rng)
    : capacity_(capacity), policy_(policy), rng_(rng) {
  EPICAST_ASSERT_MSG(capacity > 0, "cache capacity must be positive");
}

bool EventCache::insert(const EventPtr& event) {
  EPICAST_ASSERT(event != nullptr);
  if (by_id_.contains(event->id())) return false;
  while (by_id_.size() >= capacity_) evict_one();

  order_.push_back(event);
  by_id_.emplace(event->id(), std::prev(order_.end()));
  if (policy_ == CachePolicy::Random) {
    random_pos_.emplace(event->id(), random_pool_.size());
    random_pool_.push_back(event->id());
  }
  index_patterns(event);
  ++stats_.insertions;
  return true;
}

void EventCache::index_patterns(const EventPtr& event) {
  for (const PatternSeq& ps : event->patterns()) {
    by_source_pattern_[SpKey{event->source(), ps.pattern, ps.seq}] =
        event->id();
    by_pattern_[ps.pattern].push_back(event->id());
  }
}

void EventCache::unindex_patterns(const EventData& event) {
  for (const PatternSeq& ps : event.patterns()) {
    by_source_pattern_.erase(SpKey{event.source(), ps.pattern, ps.seq});
    // by_pattern_ entries are purged lazily in ids_matching().
  }
}

void EventCache::evict_one() {
  EPICAST_ASSERT(!order_.empty());
  EventId victim;
  if (policy_ == CachePolicy::Random) {
    victim = random_pool_[rng_.next_below(random_pool_.size())];
  } else {
    victim = order_.front()->id();  // FIFO and LRU both evict the front
  }
  drop(victim);
  ++stats_.evictions;
}

void EventCache::drop(const EventId& id) {
  auto it = by_id_.find(id);
  EPICAST_ASSERT(it != by_id_.end());
  unindex_patterns(**it->second);
  order_.erase(it->second);
  by_id_.erase(it);
  if (policy_ == CachePolicy::Random) {
    // Swap-pop keeps the sampling pool dense.
    const std::size_t pos = random_pos_.at(id);
    const EventId last = random_pool_.back();
    random_pool_[pos] = last;
    random_pos_[last] = pos;
    random_pool_.pop_back();
    random_pos_.erase(id);
  }
}

bool EventCache::contains(const EventId& id) const {
  return by_id_.contains(id);
}

EventPtr EventCache::get(const EventId& id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  if (policy_ == CachePolicy::Lru) {
    order_.splice(order_.end(), order_, it->second);  // refresh recency
  }
  return *it->second;
}

EventPtr EventCache::find(NodeId source, Pattern pattern, SeqNo seq) {
  auto it = by_source_pattern_.find(SpKey{source, pattern, seq});
  if (it == by_source_pattern_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  return get(it->second);
}

std::vector<EventId> EventCache::ids_matching(Pattern pattern,
                                              std::size_t max_entries) {
  std::vector<EventId> out;
  auto bucket = by_pattern_.find(pattern);
  if (bucket == by_pattern_.end()) return out;

  std::deque<EventId>& ids = bucket->second;
  // Lazy purge: evicted ids are dropped as they are encountered. Under FIFO
  // they cluster at the front, making the purge amortized O(1) per insert.
  std::size_t live = 0;
  for (const EventId& id : ids) {
    if (!by_id_.contains(id)) continue;
    out.push_back(id);
    ++live;
  }
  if (live * 2 < ids.size()) {
    // Compact when more than half the bucket is stale (LRU/random scatter).
    std::deque<EventId> fresh(out.begin(), out.end());
    ids.swap(fresh);
  } else {
    while (!ids.empty() && !by_id_.contains(ids.front())) ids.pop_front();
  }
  if (max_entries != 0 && out.size() > max_entries) {
    // Keep the newest entries: they are the ones receivers most likely miss
    // and the ones that will survive longest in our own buffer.
    out.erase(out.begin(),
              out.end() - static_cast<std::ptrdiff_t>(max_entries));
  }
  return out;
}

}  // namespace epicast
