#include "epicast/gossip/event_cache.hpp"

#include <algorithm>

#include "epicast/common/assert.hpp"

namespace epicast {

std::size_t EventCache::SpKeyHash::operator()(const SpKey& k) const noexcept {
  std::uint64_t x = (static_cast<std::uint64_t>(k.source.value()) << 32) ^
                    k.pattern.value();
  x ^= k.seq.value() + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 29;
  return static_cast<std::size_t>(x);
}

EventCache::EventCache(std::size_t capacity, CachePolicy policy, Rng rng)
    : capacity_(capacity), policy_(policy), rng_(rng) {
  EPICAST_ASSERT_MSG(capacity > 0, "cache capacity must be positive");
  // The cache runs at exactly `capacity` entries in steady state; sizing
  // everything up front keeps the insert-evict churn rehash- and
  // reallocation-free.
  nodes_.reserve(capacity);
  by_id_.reserve(capacity);
  if (policy == CachePolicy::Random) {
    random_pool_.reserve(capacity);
    random_pos_.reserve(capacity);
  }
}

void EventCache::link_back(std::uint32_t slot) {
  Node& n = nodes_[slot];
  n.prev = tail_;
  n.next = kNil;
  if (tail_ != kNil) {
    nodes_[tail_].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;
}

void EventCache::unlink(std::uint32_t slot) {
  Node& n = nodes_[slot];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
}

bool EventCache::insert(const EventPtr& event) {
  EPICAST_ASSERT(event != nullptr);
  HotpathProfiler::MaybeScope scope(profiler_, HotPhase::CacheOp);
  if (by_id_.contains(event->id())) return false;
  while (by_id_.size() >= capacity_) evict_one();

  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[slot].event = event;
  link_back(slot);
  by_id_.emplace(event->id(), slot);
  if (policy_ == CachePolicy::Random) {
    random_pos_.emplace(event->id(), random_pool_.size());
    random_pool_.push_back(event->id());
  }
  index_patterns(event);
  ++stats_.insertions;
  return true;
}

void EventCache::index_patterns(const EventPtr& event) {
  for (const PatternSeq& ps : event->patterns()) {
    by_source_pattern_[SpKey{event->source(), ps.pattern, ps.seq}] =
        event->id();
    by_pattern_[ps.pattern].push_back(event->id());
  }
}

void EventCache::unindex_patterns(const EventData& event) {
  // Precondition (see drop()): the event is already out of by_id_, so its
  // ids count as stale below.
  for (const PatternSeq& ps : event.patterns()) {
    by_source_pattern_.erase(SpKey{event.source(), ps.pattern, ps.seq});
    // Eager head purge: under FIFO eviction the victim sits at the front
    // of its pattern deques, so the index cannot grow unboundedly at small
    // β. Stale ids in the middle (LRU/random) fall to ids_matching()'s
    // lazy purge.
    auto bucket = by_pattern_.find(ps.pattern);
    if (bucket == by_pattern_.end()) continue;
    std::deque<EventId>& ids = bucket->second;
    while (!ids.empty() && !by_id_.contains(ids.front())) ids.pop_front();
    if (ids.empty()) by_pattern_.erase(bucket);
  }
}

void EventCache::evict_one() {
  EPICAST_ASSERT(head_ != kNil);
  EventId victim;
  if (policy_ == CachePolicy::Random) {
    victim = random_pool_[rng_.next_below(random_pool_.size())];
  } else {
    victim = nodes_[head_].event->id();  // FIFO and LRU evict the head
  }
  drop(victim);
  ++stats_.evictions;
}

void EventCache::drop(const EventId& id) {
  auto it = by_id_.find(id);
  EPICAST_ASSERT(it != by_id_.end());
  const std::uint32_t slot = it->second;
  // Remove from by_id_ before unindexing so the eager purge sees the
  // victim's own ids as stale.
  const EventPtr victim = std::move(nodes_[slot].event);
  unlink(slot);
  free_.push_back(slot);
  by_id_.erase(it);
  unindex_patterns(*victim);
  if (policy_ == CachePolicy::Random) {
    // Swap-pop keeps the sampling pool dense.
    const std::size_t pos = random_pos_.at(id);
    const EventId last = random_pool_.back();
    random_pool_[pos] = last;
    random_pos_[last] = pos;
    random_pool_.pop_back();
    random_pos_.erase(id);
  }
}

void EventCache::clear() {
  nodes_.clear();
  free_.clear();
  head_ = kNil;
  tail_ = kNil;
  by_id_.clear();
  random_pool_.clear();
  random_pos_.clear();
  by_source_pattern_.clear();
  by_pattern_.clear();
  nodes_.reserve(capacity_);
  by_id_.reserve(capacity_);
}

std::vector<EventPtr> EventCache::snapshot_events() const {
  std::vector<EventPtr> out;
  out.reserve(by_id_.size());
  for (std::uint32_t i = head_; i != kNil; i = nodes_[i].next) {
    out.push_back(nodes_[i].event);
  }
  return out;
}

bool EventCache::contains(const EventId& id) const {
  return by_id_.contains(id);
}

EventPtr EventCache::lookup(const EventId& id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  if (policy_ == CachePolicy::Lru && it->second != tail_) {
    unlink(it->second);  // refresh recency
    link_back(it->second);
  }
  return nodes_[it->second].event;
}

EventPtr EventCache::get(const EventId& id) {
  HotpathProfiler::MaybeScope scope(profiler_, HotPhase::CacheOp);
  return lookup(id);
}

EventPtr EventCache::find(NodeId source, Pattern pattern, SeqNo seq) {
  HotpathProfiler::MaybeScope scope(profiler_, HotPhase::CacheOp);
  auto it = by_source_pattern_.find(SpKey{source, pattern, seq});
  if (it == by_source_pattern_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  return lookup(it->second);
}

std::vector<EventId> EventCache::ids_matching(Pattern pattern,
                                              std::size_t max_entries) {
  std::vector<EventId> out;
  ids_matching_into(pattern, max_entries, out);
  return out;
}

void EventCache::ids_matching_into(Pattern pattern, std::size_t max_entries,
                                   std::vector<EventId>& out) {
  out.clear();
  HotpathProfiler::MaybeScope scope(profiler_, HotPhase::CacheOp);
  auto bucket = by_pattern_.find(pattern);
  if (bucket == by_pattern_.end()) return;

  std::deque<EventId>& ids = bucket->second;
  if (policy_ == CachePolicy::Fifo) {
    // FIFO invariant: every eviction removes the globally oldest event,
    // whose ids sit at the fronts of its own pattern deques — the eager
    // purge in unindex_patterns() strips them immediately, so the deques
    // hold live ids only and no per-id liveness probe is needed. Copy the
    // newest max_entries straight out (they are the ones receivers most
    // likely miss and the ones that survive longest in our own buffer).
    const std::size_t n = (max_entries != 0 && ids.size() > max_entries)
                              ? max_entries
                              : ids.size();
    out.insert(out.end(), ids.end() - static_cast<std::ptrdiff_t>(n),
               ids.end());
    return;
  }
  // Lazy purge: evicted ids are dropped as they are encountered (LRU and
  // random eviction scatter stale ids through the deque).
  std::size_t live = 0;
  for (const EventId& id : ids) {
    if (!by_id_.contains(id)) continue;
    out.push_back(id);
    ++live;
  }
  if (live * 2 < ids.size()) {
    // Compact when more than half the bucket is stale (LRU/random scatter).
    std::deque<EventId> fresh(out.begin(), out.end());
    ids.swap(fresh);
  } else {
    while (!ids.empty() && !by_id_.contains(ids.front())) ids.pop_front();
  }
  if (max_entries != 0 && out.size() > max_entries) {
    // Keep the newest entries: they are the ones receivers most likely miss
    // and the ones that will survive longest in our own buffer.
    out.erase(out.begin(),
              out.end() - static_cast<std::ptrdiff_t>(max_entries));
  }
}

std::size_t EventCache::pattern_index_entries() const {
  std::size_t n = 0;
  for (const auto& [p, ids] : by_pattern_) n += ids.size();
  return n;
}

std::size_t EventCache::memory_bytes() const {
  // Hash-map nodes carry roughly a bucket pointer + hash + next alongside
  // the payload; 16 bytes approximates that overhead across libstdc++/libc++.
  constexpr std::size_t kMapOverhead = 16;
  std::size_t bytes = nodes_.capacity() * sizeof(Node);
  bytes += free_.capacity() * sizeof(std::uint32_t);
  bytes += by_id_.size() * (sizeof(EventId) + sizeof(std::uint32_t) + kMapOverhead);
  bytes += random_pool_.capacity() * sizeof(EventId);
  bytes += random_pos_.size() * (sizeof(EventId) + sizeof(std::size_t) + kMapOverhead);
  bytes += by_source_pattern_.size() *
           (sizeof(SpKey) + sizeof(EventId) + kMapOverhead);
  for (const auto& [p, ids] : by_pattern_) {
    bytes += sizeof(p) + kMapOverhead + ids.size() * sizeof(EventId);
  }
  return bytes;
}

}  // namespace epicast
